package spio

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"spio/internal/core"
	"spio/internal/reader"
)

// Time-series conventions: a simulation writes one dataset directory per
// checkpoint under a common base directory, named t000000, t000001, ….
// These helpers manage such a series.

// StepDir returns the dataset directory for one timestep.
func StepDir(base string, step int) string {
	return filepath.Join(base, fmt.Sprintf("t%06d", step))
}

// Steps lists the timesteps present under base (directories matching the
// StepDir convention that contain a readable metadata file), sorted.
func Steps(base string) ([]int, error) {
	entries, err := os.ReadDir(base)
	if err != nil {
		return nil, err
	}
	var steps []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		var step int
		if _, err := fmt.Sscanf(e.Name(), "t%06d", &step); err != nil {
			continue
		}
		if e.Name() != fmt.Sprintf("t%06d", step) {
			continue
		}
		if _, err := reader.Open(filepath.Join(base, e.Name())); err != nil {
			continue
		}
		steps = append(steps, step)
	}
	sort.Ints(steps)
	return steps, nil
}

// WriteStep writes one timestep of a series (Write into StepDir).
func WriteStep(c *Comm, base string, step int, cfg WriteConfig, local *Buffer) (WriteResult, error) {
	return core.Write(c, StepDir(base, step), cfg, local)
}

// OpenStep opens one timestep of a series.
func OpenStep(base string, step int) (*Dataset, error) {
	return reader.Open(StepDir(base, step))
}

// Restart collectively loads the particles of each calling rank's patch
// from a checkpoint, for a job of any size (simDims.Volume() must equal
// the world size, but need not match the writer count).
func Restart(c *Comm, dir string, domain Box, simDims Idx3) (*Buffer, error) {
	return reader.Restart(c, dir, domain, simDims)
}

// ProgressiveReader streams a file set level by level; see
// Dataset.Progressive.
type ProgressiveReader = reader.Progressive
