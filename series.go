package spio

import (
	"spio/internal/core"
	"spio/internal/reader"
)

// Time-series conventions: a simulation writes one dataset directory per
// checkpoint under a common base directory, named t000000, t000001, ….
// These helpers manage such a series.

// StepDir returns the dataset directory for one timestep.
func StepDir(base string, step int) string { return reader.StepDir(base, step) }

// Steps lists the timesteps present under base (directories matching the
// StepDir convention that contain a readable metadata file), sorted.
func Steps(base string) ([]int, error) { return reader.Steps(base) }

// LatestStep returns the newest readable timestep under base — the
// checkpoint a "serve newest" consumer (spiod's name@latest references)
// should open. ok is false when no complete checkpoint exists.
func LatestStep(base string) (step int, ok bool, err error) {
	return reader.LatestStep(base)
}

// WriteStep writes one timestep of a series (Write into StepDir).
func WriteStep(c *Comm, base string, step int, cfg WriteConfig, local *Buffer) (WriteResult, error) {
	return core.Write(c, StepDir(base, step), cfg, local)
}

// OpenStep opens one timestep of a series.
func OpenStep(base string, step int) (*Dataset, error) {
	return reader.Open(StepDir(base, step))
}

// Restart collectively loads the particles of each calling rank's patch
// from a checkpoint, for a job of any size (simDims.Volume() must equal
// the world size, but need not match the writer count).
func Restart(c *Comm, dir string, domain Box, simDims Idx3) (*Buffer, error) {
	return reader.Restart(c, dir, domain, simDims)
}

// ProgressiveReader streams a file set level by level; see
// Dataset.Progressive.
type ProgressiveReader = reader.Progressive
