package spio_test

// Acceptance test: one scripted scenario exercising the whole public
// surface the way a simulation + analysis campaign would — asynchronous
// checkpointing of a moving workload, integrity checking, restart on a
// smaller job, and every flavour of read (box, batch-tile, LOD,
// progressive, projected, KNN, halo, density, rendering).

import (
	"math"
	"path/filepath"
	"testing"

	"spio"
)

func TestEndToEndCampaign(t *testing.T) {
	base := t.TempDir()
	domain := spio.UnitBox()
	simDims := spio.I3(4, 2, 1)
	nRanks := simDims.Volume()
	grid := spio.NewGrid(domain, simDims)
	cfg := spio.WriteConfig{
		Agg:           spio.AggConfig{Domain: domain, SimDims: simDims, Factor: spio.I3(2, 2, 1)},
		FieldRanges:   true,
		Checksum:      true,
		ValidateInput: true,
		Seed:          99,
	}

	// --- Simulation: 3 steps, async checkpoints, particle migration. ---
	const perRank = 1500
	err := spio.Run(nRanks, func(c *spio.Comm) error {
		patch := grid.CellBox(spio.Unlinear(c.Rank(), simDims))
		local := spio.Uniform(spio.UintahSchema(), patch, perRank, 5, c.Rank())
		var pending *spio.PendingWrite
		for step := 0; step < 3; step++ {
			snapshot := spio.NewBuffer(local.Schema(), local.Len())
			snapshot.AppendBuffer(local)
			if pending != nil {
				if _, err := pending.Wait(); err != nil {
					return err
				}
			}
			pending = spio.WriteAsync(c, spio.StepDir(base, step), cfg, snapshot)

			// Advance while the checkpoint drains.
			spio.Advect(local, domain, spio.V3(0.3, 0.15, -0.2), 0.2)
			outgoing := make([][]byte, c.Size())
			buckets := make([]*spio.Buffer, c.Size())
			for i := 0; i < local.Len(); i++ {
				owner := grid.Locate(local.Position(i)).Linear(simDims)
				if buckets[owner] == nil {
					buckets[owner] = spio.NewBuffer(local.Schema(), 0)
				}
				buckets[owner].AppendFrom(local, i)
			}
			for r, b := range buckets {
				if b != nil {
					outgoing[r] = b.Encode()
				}
			}
			merged := spio.NewBuffer(local.Schema(), local.Len())
			for _, data := range c.Alltoall(outgoing) {
				if err := merged.DecodeRecords(data); err != nil {
					return err
				}
			}
			local = merged
		}
		_, err := pending.Wait()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	// --- Series discovery + integrity. ---
	steps, err := spio.Steps(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("steps = %v", steps)
	}
	for _, s := range steps {
		ds, err := spio.OpenStep(base, s)
		if err != nil {
			t.Fatal(err)
		}
		if problems := ds.Fsck(spio.FsckOptions{Deep: true, Checksums: true}); len(problems) > 0 {
			t.Fatalf("step %d corrupt: %v", s, problems)
		}
		if ds.Meta().Total != int64(nRanks*perRank) {
			t.Fatalf("step %d total = %d", s, ds.Meta().Total)
		}
	}

	// --- Restart the last step on half the ranks; totals conserved. ---
	restartDims := spio.I3(2, 2, 1)
	counts := make([]int, restartDims.Volume())
	err = spio.Run(restartDims.Volume(), func(c *spio.Comm) error {
		buf, err := spio.Restart(c, spio.StepDir(base, 2), domain, restartDims)
		if err != nil {
			return err
		}
		counts[c.Rank()] = buf.Len()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != nRanks*perRank {
		t.Fatalf("restart recovered %d of %d", total, nRanks*perRank)
	}

	// --- Analysis on step 0 with a warm file cache. ---
	ds, err := spio.OpenStep(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	ds.SetFileCache(8)
	defer ds.Close()

	// Batch tile queries cover the dataset exactly once.
	tiles := spio.NewGrid(domain, spio.I3(2, 2, 1))
	var qs []spio.Box
	for i := 0; i < 4; i++ {
		qs = append(qs, tiles.CellBox(spio.Unlinear(i, spio.I3(2, 2, 1))))
	}
	outs, _, err := ds.QueryBoxes(qs, spio.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, o := range outs {
		sum += o.Len()
	}
	if int64(sum) != ds.Meta().Total {
		t.Fatalf("tiles hold %d of %d", sum, ds.Meta().Total)
	}

	// Progressive streaming equals batch LOD reads.
	p, err := ds.Progressive(spio.AssignFiles(ds.Meta(), 1, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	streamed := 0
	for {
		inc, ok, err := p.NextLevel()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		streamed += inc.Len()
	}
	if int64(streamed) != ds.Meta().Total {
		t.Fatalf("streamed %d", streamed)
	}

	// Projected field read agrees with the full read.
	proj, _, err := ds.ReadAll(spio.QueryOptions{Fields: []string{"density"}})
	if err != nil {
		t.Fatal(err)
	}
	if int64(proj.Len()) != ds.Meta().Total || proj.Schema().Stride() != 32 {
		t.Fatalf("projection: %d particles, stride %d", proj.Len(), proj.Schema().Stride())
	}

	// KNN against brute force.
	all, _, err := ds.ReadAll(spio.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	probe := spio.V3(0.4, 0.4, 0.6)
	_, dists, _, err := spio.KNN(ds, probe, 3)
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	for i := 0; i < all.Len(); i++ {
		if d := probe.Dist(all.Position(i)); d < best {
			best = d
		}
	}
	if math.Abs(best-dists[0]) > 1e-12 {
		t.Fatalf("KNN nearest %v, brute force %v", dists[0], best)
	}

	// Halo, density, rendering.
	own, ghost, _, err := spio.Halo(ds, qs[0], 0.04, spio.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if own.Len() == 0 || ghost.Len() == 0 {
		t.Fatalf("halo: %d own, %d ghost", own.Len(), ghost.Len())
	}
	counts2, frac, _, err := spio.DensityGrid(ds, spio.I3(2, 2, 1), 0, 1)
	if err != nil || frac != 1 {
		t.Fatalf("density: %v frac %v", err, frac)
	}
	var dsum float64
	for _, c := range counts2 {
		dsum += c
	}
	if int64(dsum) != ds.Meta().Total {
		t.Fatalf("density sums to %v", dsum)
	}
	img := spio.Render(all, domain, spio.RenderOptions{Width: 64, Height: 64})
	if err := img.WritePGM(filepath.Join(base, "frame.pgm")); err != nil {
		t.Fatal(err)
	}
	lowLOD, _, err := ds.ReadAll(spio.QueryOptions{Levels: 5})
	if err != nil {
		t.Fatal(err)
	}
	opts := spio.RenderOptions{Width: 64, Height: 64,
		SampleFraction: float64(lowLOD.Len()) / float64(all.Len())}
	psnr, err := spio.ImagePSNR(img, spio.Render(lowLOD, domain, opts))
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 5 {
		t.Errorf("low-LOD render PSNR %.1f dB implausibly bad", psnr)
	}

	// Cache effectiveness across all those reads.
	cs := ds.CacheStats()
	if cs.Hits == 0 || cs.Misses == 0 || cs.Misses > int64(len(ds.Meta().Files)) {
		t.Errorf("cache stats: %d hits, %d misses", cs.Hits, cs.Misses)
	}
	if cs.BytesFromCache == 0 {
		t.Errorf("cache stats: %d hits but no bytes served from cache", cs.Hits)
	}
}
