package spio_test

import (
	"fmt"
	"log"
	"os"

	"spio"
)

// Example demonstrates the full round trip: a 4-rank collective write
// through the spatially-aware pipeline, followed by a metadata-driven
// box query.
func Example() {
	dir, err := os.MkdirTemp("", "spio-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	simDims := spio.I3(2, 2, 1)
	domain := spio.UnitBox()
	grid := spio.NewGrid(domain, simDims)
	cfg := spio.WriteConfig{
		Agg: spio.AggConfig{Domain: domain, SimDims: simDims, Factor: spio.I3(2, 1, 1)},
	}
	err = spio.Run(4, func(c *spio.Comm) error {
		patch := grid.CellBox(spio.Unlinear(c.Rank(), simDims))
		local := spio.Uniform(spio.UintahSchema(), patch, 1000, 7, c.Rank())
		_, werr := spio.Write(c, dir, cfg, local)
		return werr
	})
	if err != nil {
		log.Fatal(err)
	}

	ds, err := spio.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d particles in %d files\n", ds.Meta().Total, len(ds.Meta().Files))

	// The lower-left quadrant lives in exactly one file.
	q := spio.NewBox(spio.V3(0.05, 0.05, 0.05), spio.V3(0.45, 0.45, 0.95))
	_, st, err := ds.QueryBox(q, spio.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("box query opened %d of %d files\n", st.FilesOpened, len(ds.Meta().Files))
	// Output:
	// 4000 particles in 2 files
	// box query opened 1 of 2 files
}

// ExampleLevelSizes reproduces the paper's Section 3.4 worked example:
// 100 particles read by one process with P=32, S=2.
func ExampleLevelSizes() {
	fmt.Println(spio.LevelSizes(100, 32, 2))
	// Output: [32 64 4]
}

// ExampleDataset_ReadAll shows progressive level-of-detail reads: each
// additional level roughly doubles the particles delivered.
func ExampleDataset_ReadAll() {
	dir, err := os.MkdirTemp("", "spio-example-lod-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	simDims := spio.I3(2, 1, 1)
	grid := spio.NewGrid(spio.UnitBox(), simDims)
	cfg := spio.WriteConfig{
		Agg: spio.AggConfig{Domain: spio.UnitBox(), SimDims: simDims, Factor: spio.I3(2, 1, 1)},
	}
	err = spio.Run(2, func(c *spio.Comm) error {
		patch := grid.CellBox(spio.Unlinear(c.Rank(), simDims))
		local := spio.Uniform(spio.UintahSchema(), patch, 128, 7, c.Rank())
		_, werr := spio.Write(c, dir, cfg, local)
		return werr
	})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := spio.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	for levels := 1; levels <= 4; levels++ {
		buf, _, err := ds.ReadAll(spio.QueryOptions{Levels: levels})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("levels 1..%d: %d particles\n", levels, buf.Len())
	}
	// Output:
	// levels 1..1: 32 particles
	// levels 1..2: 96 particles
	// levels 1..3: 224 particles
	// levels 1..4: 256 particles
}
