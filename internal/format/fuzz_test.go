package format

import (
	"os"
	"path/filepath"
	"testing"

	"spio/internal/geom"
	"spio/internal/lod"
	"spio/internal/particle"
)

// Fuzz targets: the decoders must never panic or hang on arbitrary
// bytes — they either parse a valid file or return an error. Run with
// `go test -fuzz=FuzzOpenDataFile ./internal/format` to explore; plain
// `go test` exercises the seed corpus.

func validDataFileBytes(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	buf := particle.Uniform(particle.Uintah(), geom.UnitBox(), 20, 1, 0)
	path := filepath.Join(dir, "seed.spd")
	if err := WriteDataFile(nil, path, DataHeader{LOD: lod.DefaultParams(), PayloadCRC: true}, buf); err != nil {
		tb.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

func validCompressedDataFileBytes(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	buf := particle.Uniform(particle.Uintah(), geom.UnitBox(), 200, 2, 0)
	path := filepath.Join(dir, "seed-comp.spd")
	hdr := DataHeader{LOD: lod.DefaultParams(), PayloadCRC: true, Codec: particle.LosslessSpec(particle.Uintah())}
	if err := WriteDataFile(nil, path, hdr, buf); err != nil {
		tb.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

func FuzzOpenDataFile(f *testing.F) {
	raw := validDataFileBytes(f)
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add([]byte(dataMagic))
	f.Add([]byte{})
	mut := append([]byte(nil), raw...)
	mut[9] ^= 0xff
	f.Add(mut)
	comp := validCompressedDataFileBytes(f)
	f.Add(comp)
	f.Add(comp[:len(comp)*3/4])
	cmut := append([]byte(nil), comp...)
	cmut[len(cmut)/2] ^= 0xff
	f.Add(cmut)
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.spd")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		df, err := OpenDataFile(path)
		if err != nil {
			return // rejected: fine
		}
		defer df.Close()
		// Anything that opens must be internally consistent enough to
		// read fully without panicking.
		if _, err := df.ReadAll(); err != nil {
			return
		}
		if df.Header.PayloadCRC {
			_ = df.VerifyPayload()
		}
	})
}

func validMetaBytes(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	domain := geom.UnitBox()
	g := geom.NewGrid(domain, geom.I3(2, 1, 1))
	m := &Meta{
		Domain:          domain,
		SimDims:         geom.I3(2, 1, 1),
		PartitionFactor: geom.I3(1, 1, 1),
		AggDims:         geom.I3(2, 1, 1),
		Schema:          particle.Uintah(),
		LOD:             lod.DefaultParams(),
		Total:           10,
		Files: []FileEntry{
			{BoxIndex: 0, AggRank: 0, Name: DataFileName(0), Partition: g.CellBoxLinear(0), Bounds: g.CellBoxLinear(0), Count: 4},
			{BoxIndex: 1, AggRank: 1, Name: DataFileName(1), Partition: g.CellBoxLinear(1), Bounds: g.CellBoxLinear(1), Count: 6},
		},
	}
	if err := WriteMeta(nil, dir, m); err != nil {
		tb.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, MetaFileName))
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

func FuzzReadMeta(f *testing.F) {
	raw := validMetaBytes(f)
	f.Add(raw)
	f.Add(raw[:20])
	f.Add([]byte(metaMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, MetaFileName), data, 0o644); err != nil {
			t.Skip()
		}
		m, err := ReadMeta(dir)
		if err != nil {
			return
		}
		// A successfully parsed meta must satisfy its own invariants.
		if err := m.Validate(); err != nil {
			t.Fatalf("ReadMeta returned invalid metadata: %v", err)
		}
	})
}
