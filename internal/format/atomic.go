package format

import (
	"bufio"
	"io"
	"path/filepath"
	"time"

	"spio/internal/fault"
)

// Crash-consistent file landing. Every spio file (data and metadata)
// is written to a temporary sibling, flushed, fsynced, and atomically
// renamed into place, so a reader never observes a torn or partial
// file under its canonical name: either the old content (or nothing)
// is visible, or the complete new content is. A crash mid-write leaves
// at most a *.spio-tmp file, which Fsck reports and a re-run
// overwrites. Transient errors (fault.IsTransient) get a bounded
// retry with exponential backoff before the write is declared failed.

// TempSuffix is appended to a file's canonical path while it is being
// written; a leftover temp file marks an interrupted write.
const TempSuffix = ".spio-tmp"

const (
	// writeAttempts bounds the retry loop: one initial try plus up to
	// two retries of transient failures.
	writeAttempts = 3
	// retryBackoff is the base backoff, doubled each retry.
	retryBackoff = time.Millisecond
)

// fsOrOS resolves a possibly-nil injected filesystem to the real one.
func fsOrOS(fsys fault.WriteFS) fault.WriteFS {
	if fsys == nil {
		return fault.OS()
	}
	return fsys
}

// writeFileAtomic lands emit's output at path via temp file + fsync +
// rename, retrying transient failures. emit must be repeatable: it is
// called once per attempt against a fresh truncated temp file.
func writeFileAtomic(fsys fault.WriteFS, path string, emit func(w io.Writer) error) error {
	var err error
	for attempt := 0; attempt < writeAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(retryBackoff << (attempt - 1))
		}
		err = writeFileOnce(fsys, path, emit)
		if err == nil || !fault.IsTransient(err) {
			return err
		}
	}
	return err
}

// writebackWriter forwards writes to the underlying file and, every
// kickEvery bytes, nudges the kernel to start background writeback of
// the range just written (kickWriteback). Streaming a multi-megabyte
// payload otherwise leaves every page dirty until the final fsync, which
// then serializes the entire disk transfer behind the encode; kicking
// early overlaps the two. Advisory only — durability still comes from
// the Sync before rename.
type writebackWriter struct {
	f      fault.File
	off    int64 // bytes forwarded so far
	kicked int64 // start of the first range not yet kicked
}

// kickEvery matches the bufio buffer size above: one kick per flush.
const kickEvery = 1 << 20

func (w *writebackWriter) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	w.off += int64(n)
	if w.off-w.kicked >= kickEvery {
		kickWriteback(w.f, w.kicked, w.off-w.kicked)
		w.kicked = w.off
	}
	return n, err
}

// writeFileOnce is one attempt of the temp+fsync+rename sequence. On
// any failure the temp file is removed, so aborted writes leave the
// directory as it was.
func writeFileOnce(fsys fault.WriteFS, path string, emit func(w io.Writer) error) error {
	tmp := path + TempSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	wk := &writebackWriter{f: f}
	// The buffer coalesces small header/trailer writes; it is deliberately
	// smaller than the ~1MB payload chunks the data-file emitters produce,
	// so bufio's large-write fast path hands those to the file directly
	// instead of memmove-ing every payload byte through the buffer first.
	bw := bufio.NewWriterSize(wk, 1<<18)
	err = emit(bw)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		// The data must be durable before the rename publishes it:
		// rename-before-fsync can surface a complete-looking file with
		// missing content after a crash. The writebackWriter has already
		// pushed most pages toward the disk, so this mostly waits for the
		// tail instead of flushing the whole file cold.
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = fsys.Rename(tmp, path)
	}
	if err != nil {
		_ = fsys.Remove(tmp) // best effort: never leave a temp behind
		return err
	}
	// Directory sync is best-effort: the rename is already atomic for
	// live readers, and some filesystems refuse to fsync directories.
	_ = fsys.SyncDir(filepath.Dir(path))
	return nil
}
