package format

import (
	"fmt"

	"spio/internal/particle"
)

const maxFieldName = 4096

// encodeSchema writes a schema's field list.
func encodeSchema(e *writer, s *particle.Schema) {
	e.uvarint(uint64(s.NumFields()))
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		e.str(f.Name)
		e.u8(uint8(f.Kind))
		e.uvarint(uint64(f.Components))
	}
}

// decodeSchema reads a field list and validates it through NewSchema.
func decodeSchema(d *reader) (*particle.Schema, error) {
	n := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if n == 0 || n > 1024 {
		return nil, fmt.Errorf("format: implausible field count %d", n)
	}
	fields := make([]particle.Field, n)
	for i := range fields {
		fields[i].Name = d.str(maxFieldName)
		fields[i].Kind = particle.Kind(d.u8())
		fields[i].Components = int(d.uvarint())
		if d.err != nil {
			return nil, d.err
		}
	}
	return particle.NewSchema(fields)
}
