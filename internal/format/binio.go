// Package format defines spio's on-disk layout: per-aggregator data files
// holding LOD-ordered particle records, and the spatial metadata file of
// paper Section 3.5 / Fig. 4 mapping each data file to the bounding box
// of the particles it holds. Both are little-endian binary with explicit
// magic, version and checksum, so readers can validate files from any
// writer configuration.
package format

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"spio/internal/geom"
)

// writer is a sticky-error little-endian encoder that maintains a CRC of
// everything written.
type writer struct {
	w   io.Writer
	crc uint32
	n   int64
	err error
}

func newWriter(w io.Writer) *writer { return &writer{w: w} }

func (e *writer) bytes(p []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(p)
	e.crc = crc32.Update(e.crc, crc32.IEEETable, p)
	e.n += int64(len(p))
}

func (e *writer) u8(v uint8) { e.bytes([]byte{v}) }

func (e *writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.bytes(b[:])
}

func (e *writer) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.bytes(b[:])
}

func (e *writer) i64(v int64) { e.u64(uint64(v)) }

func (e *writer) uvarint(v uint64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	e.bytes(b[:n])
}

func (e *writer) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *writer) str(s string) {
	e.uvarint(uint64(len(s)))
	e.bytes([]byte(s))
}

func (e *writer) vec3(v geom.Vec3) {
	e.f64(v.X)
	e.f64(v.Y)
	e.f64(v.Z)
}

func (e *writer) box(b geom.Box) {
	e.vec3(b.Lo)
	e.vec3(b.Hi)
}

func (e *writer) idx3(i geom.Idx3) {
	e.uvarint(uint64(i.X))
	e.uvarint(uint64(i.Y))
	e.uvarint(uint64(i.Z))
}

// reader is the sticky-error decoding counterpart of writer.
type reader struct {
	r   io.Reader
	crc uint32
	n   int64
	err error
}

func newReader(r io.Reader) *reader { return &reader{r: r} }

func (d *reader) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *reader) bytes(p []byte) {
	if d.err != nil {
		return
	}
	if _, err := io.ReadFull(d.r, p); err != nil {
		d.err = fmt.Errorf("format: short read at offset %d: %w", d.n, err)
		return
	}
	d.crc = crc32.Update(d.crc, crc32.IEEETable, p)
	d.n += int64(len(p))
}

func (d *reader) u8() uint8 {
	var b [1]byte
	d.bytes(b[:])
	return b[0]
}

func (d *reader) u32() uint32 {
	var b [4]byte
	d.bytes(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (d *reader) u64() uint64 {
	var b [8]byte
	d.bytes(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (d *reader) i64() int64 { return int64(d.u64()) }

func (d *reader) uvarint() uint64 {
	v, err := binary.ReadUvarint(byteReader{d})
	if err != nil && d.err == nil {
		d.err = fmt.Errorf("format: bad varint at offset %d: %w", d.n, err)
	}
	return v
}

func (d *reader) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *reader) str(maxLen uint64) string {
	n := d.uvarint()
	if n > maxLen {
		d.fail(fmt.Errorf("format: string length %d exceeds limit %d", n, maxLen))
		return ""
	}
	b := make([]byte, n)
	d.bytes(b)
	return string(b)
}

func (d *reader) vec3() geom.Vec3 {
	return geom.Vec3{X: d.f64(), Y: d.f64(), Z: d.f64()}
}

func (d *reader) boxv() geom.Box {
	return geom.Box{Lo: d.vec3(), Hi: d.vec3()}
}

func (d *reader) idx3() geom.Idx3 {
	return geom.Idx3{X: int(d.uvarint()), Y: int(d.uvarint()), Z: int(d.uvarint())}
}

// byteReader adapts reader for binary.ReadUvarint while keeping the CRC
// and byte count up to date.
type byteReader struct{ d *reader }

func (b byteReader) ReadByte() (byte, error) {
	var buf [1]byte
	b.d.bytes(buf[:])
	if b.d.err != nil {
		return 0, b.d.err
	}
	return buf[0], nil
}
