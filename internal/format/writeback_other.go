//go:build !linux

package format

import "spio/internal/fault"

// kickWriteback is the no-op fallback where sync_file_range does not
// exist; the fsync before rename still provides durability, the write
// just loses the early-writeback overlap.
func kickWriteback(fault.File, int64, int64) {}
