package format

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"spio/internal/geom"
	"spio/internal/lod"
	"spio/internal/particle"
)

// writeCodecPair writes the same LOD-ordered buffer twice — once raw,
// once under spec — and returns both paths plus the buffer. The raw
// file is the ground truth every compressed read is compared against.
func writeCodecPair(t *testing.T, n int, spec particle.Spec, crc bool) (raw, comp string, buf *particle.Buffer) {
	t.Helper()
	dir := t.TempDir()
	buf = particle.Uniform(particle.Uintah(), geom.UnitBox(), n, 99, 0)
	lod.Shuffle(buf, 3)
	raw = filepath.Join(dir, "raw.spd")
	comp = filepath.Join(dir, "comp.spd")
	hdr := DataHeader{LOD: lod.DefaultParams(), Heuristic: lod.Random, Seed: 3, PayloadCRC: crc}
	if err := WriteDataFile(nil, raw, hdr, buf); err != nil {
		t.Fatal(err)
	}
	hdr.Codec = spec
	if err := WriteDataFile(nil, comp, hdr, buf); err != nil {
		t.Fatal(err)
	}
	return raw, comp, buf
}

func TestCompressedDataFileRoundTrip(t *testing.T) {
	_, comp, buf := writeCodecPair(t, 1777, particle.LosslessSpec(particle.Uintah()), false)
	df, err := OpenDataFile(comp)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	if !df.Compressed() {
		t.Fatal("Compressed() = false for a compressed file")
	}
	if df.PayloadBytes() >= int64(buf.Len()*buf.Schema().Stride()) {
		t.Errorf("compressed payload %d bytes did not shrink below raw %d",
			df.PayloadBytes(), buf.Len()*buf.Schema().Stride())
	}
	back, err := df.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(buf) {
		t.Error("compressed ReadAll is not byte-identical to the written buffer")
	}
}

// TestCompressedReadRangeMatchesRaw drives random ranges — many
// straddling compressed block boundaries — through both layouts and
// demands byte-identity.
func TestCompressedReadRangeMatchesRaw(t *testing.T) {
	raw, comp, _ := writeCodecPair(t, 2500, particle.LosslessSpec(particle.Uintah()), false)
	rf, err := OpenDataFile(raw)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	cf, err := OpenDataFile(comp)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	r := rand.New(rand.NewSource(11))
	count := rf.Header.Count
	ranges := [][2]int64{{0, 0}, {0, count}, {count, count}, {1, 2}}
	for i := 0; i < 40; i++ {
		lo := r.Int63n(count + 1)
		hi := lo + r.Int63n(count+1-lo)
		ranges = append(ranges, [2]int64{lo, hi})
	}
	for _, rg := range ranges {
		want, err := rf.ReadRange(rg[0], rg[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := cf.ReadRange(rg[0], rg[1])
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("range [%d,%d): compressed read diverges from raw", rg[0], rg[1])
		}
	}
}

// TestCompressedLODPrefixValidity is the acceptance criterion: at every
// LOD level boundary, the compressed file's prefix read equals the raw
// file's — compression after the reorder preserved the LOD contract.
func TestCompressedLODPrefixValidity(t *testing.T) {
	raw, comp, _ := writeCodecPair(t, 3000, particle.LosslessSpec(particle.Uintah()), false)
	rf, err := OpenDataFile(raw)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	cf, err := OpenDataFile(comp)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	p := rf.Header.LOD
	prefix := int64(0)
	for _, lv := range lod.LevelSizes(rf.Header.Count, int64(p.BasePerReader), p.Scale) {
		prefix += lv
		want, err := rf.ReadPrefix(prefix)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cf.ReadPrefix(prefix)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("LOD prefix %d: compressed read diverges from raw", prefix)
		}
	}
	if prefix != rf.Header.Count {
		t.Fatalf("level sizes sum to %d of %d", prefix, rf.Header.Count)
	}
}

func TestCompressedProjectedRead(t *testing.T) {
	raw, comp, _ := writeCodecPair(t, 900, particle.LosslessSpec(particle.Uintah()), false)
	rf, err := OpenDataFile(raw)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	cf, err := OpenDataFile(comp)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	proj, err := rf.Header.Schema.Project([]string{particle.PositionField, "id"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := rf.ReadRangeProjected(100, 800, proj)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cf.ReadRangeProjected(100, 800, proj)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("projected compressed read diverges from raw")
	}
}

func TestCompressedLossyBound(t *testing.T) {
	const bound = 1e-4
	schema := particle.Uintah()
	raw, comp, _ := writeCodecPair(t, 1200, particle.LossySpec(schema, bound), false)
	rf, err := OpenDataFile(raw)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	cf, err := OpenDataFile(comp)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if !cf.Header.Codec.Lossy() {
		t.Fatal("lossy spec did not survive the header round trip")
	}
	want, err := rf.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	got, err := cf.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	pos, posGot := want.Float64Field(0), got.Float64Field(0)
	for i := range pos {
		if d := math.Abs(pos[i] - posGot[i]); d > bound {
			t.Fatalf("position component %d: error %g exceeds bound %g", i, d, bound)
		}
	}
	for fi := 1; fi < schema.NumFields(); fi++ {
		if schema.Field(fi).Kind != particle.Float64 {
			continue
		}
		a, b := want.Float64Field(fi), got.Float64Field(fi)
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("field %q drifted under a position-only lossy spec", schema.Field(fi).Name)
			}
		}
	}
}

func TestCompressedVerifyPayload(t *testing.T) {
	_, comp, _ := writeCodecPair(t, 600, particle.LosslessSpec(particle.Uintah()), true)
	df, err := OpenDataFile(comp)
	if err != nil {
		t.Fatal(err)
	}
	if err := df.VerifyPayload(); err != nil {
		t.Errorf("VerifyPayload on intact compressed file: %v", err)
	}
	df.Close()

	// Flip a payload byte: the CRC covers the stored (compressed) stream.
	data, err := os.ReadFile(comp)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0x01
	if err := os.WriteFile(comp, data, 0o644); err != nil {
		t.Fatal(err)
	}
	df, err = OpenDataFile(comp)
	if err != nil {
		t.Fatal(err) // header is intact; only the payload changed
	}
	defer df.Close()
	if err := df.VerifyPayload(); err == nil {
		t.Error("VerifyPayload passed on a corrupted compressed payload")
	}
}

func TestCompressedTruncationDetected(t *testing.T) {
	_, comp, _ := writeCodecPair(t, 600, particle.LosslessSpec(particle.Uintah()), false)
	data, err := os.ReadFile(comp)
	if err != nil {
		t.Fatal(err)
	}
	short := filepath.Join(t.TempDir(), "short.spd")
	if err := os.WriteFile(short, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDataFile(short); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated compressed file: err = %v, want ErrTruncated", err)
	}
}

func TestCompressedEmptyFile(t *testing.T) {
	dir := t.TempDir()
	buf := particle.NewBuffer(particle.Uintah(), 0)
	path := filepath.Join(dir, "empty.spd")
	hdr := DataHeader{LOD: lod.DefaultParams(), Codec: particle.LosslessSpec(particle.Uintah())}
	if err := WriteDataFile(nil, path, hdr, buf); err != nil {
		t.Fatal(err)
	}
	df, err := OpenDataFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	if !df.Compressed() || df.Header.Count != 0 {
		t.Fatalf("Compressed=%v Count=%d", df.Compressed(), df.Header.Count)
	}
	back, err := df.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Errorf("empty compressed file read %d records", back.Len())
	}
}

// TestCompressedOrderedWrite checks WriteDataFileOrdered under a codec:
// the on-disk records must equal applying the permutation first.
func TestCompressedOrderedWrite(t *testing.T) {
	buf := particle.Uniform(particle.Uintah(), geom.UnitBox(), 500, 5, 0)
	order := rand.New(rand.NewSource(6)).Perm(500)
	dir := t.TempDir()
	path := filepath.Join(dir, "ordered.spd")
	hdr := DataHeader{LOD: lod.DefaultParams(), Codec: particle.LosslessSpec(particle.Uintah())}
	if err := WriteDataFileOrdered(nil, path, hdr, buf, order); err != nil {
		t.Fatal(err)
	}
	df, err := OpenDataFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	back, err := df.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := particle.NewBuffer(particle.Uintah(), 500)
	for _, idx := range order {
		want.AppendFrom(buf, idx)
	}
	if !back.Equal(want) {
		t.Error("ordered compressed write diverges from permute-then-write")
	}
}
