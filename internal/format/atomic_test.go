package format

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spio/internal/fault"
	"spio/internal/geom"
	"spio/internal/lod"
	"spio/internal/particle"
)

func atomicTestBuf(t *testing.T, n int) *particle.Buffer {
	t.Helper()
	return particle.Uniform(particle.PositionOnly(), geom.UnitBox(), n, 11, 0)
}

// listDir returns the sorted names in dir.
func listDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// A failed data-file write must leave the directory untouched: no
// canonical file, no temp file.
func TestWriteDataFileFailureLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	in := fault.NewInjector()
	in.Add(0, fault.Fault{Op: fault.OpWrite})
	path := filepath.Join(dir, "file_0.spd")
	err := WriteDataFile(in.FS(0), path, DataHeader{LOD: lod.DefaultParams()}, atomicTestBuf(t, 100))
	if !errors.Is(err, fault.ErrNoSpace) {
		t.Fatalf("WriteDataFile: got %v, want ErrNoSpace", err)
	}
	if names := listDir(t, dir); len(names) != 0 {
		t.Fatalf("failed write left files behind: %v", names)
	}
}

// A torn write (half the chunk lands, then the error) must also stay
// invisible: the temp file is removed, nothing is renamed.
func TestWriteDataFileTornWriteInvisible(t *testing.T) {
	dir := t.TempDir()
	in := fault.NewInjector()
	in.Add(0, fault.Fault{Op: fault.OpWrite, Torn: true})
	path := filepath.Join(dir, "file_0.spd")
	err := WriteDataFile(in.FS(0), path, DataHeader{LOD: lod.DefaultParams()}, atomicTestBuf(t, 100))
	if err == nil {
		t.Fatal("torn write reported success")
	}
	if names := listDir(t, dir); len(names) != 0 {
		t.Fatalf("torn write left files behind: %v", names)
	}
}

// A transient failure is retried and the write succeeds; the fault
// provably fired.
func TestWriteDataFileRetriesTransient(t *testing.T) {
	dir := t.TempDir()
	in := fault.NewInjector()
	in.Add(0, fault.Fault{Op: fault.OpWrite, Count: 1, Err: fault.Transient(errors.New("eagain"))})
	path := filepath.Join(dir, "file_0.spd")
	buf := atomicTestBuf(t, 100)
	if err := WriteDataFile(in.FS(0), path, DataHeader{LOD: lod.DefaultParams()}, buf); err != nil {
		t.Fatalf("WriteDataFile with one transient fault: %v", err)
	}
	if in.Injected() == 0 {
		t.Fatal("transient fault never fired")
	}
	df, err := OpenDataFile(path)
	if err != nil {
		t.Fatalf("OpenDataFile after retry: %v", err)
	}
	defer df.Close()
	if df.Header.Count != 100 {
		t.Fatalf("count = %d, want 100", df.Header.Count)
	}
	// No temp residue after success.
	for _, name := range listDir(t, dir) {
		if strings.HasSuffix(name, TempSuffix) {
			t.Fatalf("temp file %s left after successful write", name)
		}
	}
}

// A persistent (non-transient) failure is not retried forever: the
// rule fires once, and the error surfaces.
func TestWriteDataFileNoRetryOnPersistent(t *testing.T) {
	dir := t.TempDir()
	in := fault.NewInjector()
	in.Add(0, fault.Fault{Op: fault.OpSync})
	err := WriteDataFile(in.FS(0), filepath.Join(dir, "f.spd"), DataHeader{LOD: lod.DefaultParams()}, atomicTestBuf(t, 4))
	if !errors.Is(err, fault.ErrNoSpace) {
		t.Fatalf("got %v, want ErrNoSpace", err)
	}
	if got := in.Injected(); got != 1 {
		t.Fatalf("persistent fault fired %d times, want 1 (no retry)", got)
	}
}

// Rename failures clean up the temp file too.
func TestWriteMetaRenameFailureCleansTemp(t *testing.T) {
	dir := t.TempDir()
	in := fault.NewInjector()
	in.Add(0, fault.Fault{Op: fault.OpRename})
	err := WriteMeta(in.FS(0), dir, testMeta(t))
	if !errors.Is(err, fault.ErrNoSpace) {
		t.Fatalf("WriteMeta: got %v, want ErrNoSpace", err)
	}
	if names := listDir(t, dir); len(names) != 0 {
		t.Fatalf("failed meta write left files behind: %v", names)
	}
}

// A truncated data file is classified with ErrTruncated, both when the
// payload is cut short and when the header itself ends early.
func TestOpenDataFileClassifiesTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "file_0.spd")
	if err := WriteDataFile(nil, path, DataHeader{LOD: lod.DefaultParams()}, atomicTestBuf(t, 64)); err != nil {
		t.Fatalf("WriteDataFile: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}

	// Payload cut short.
	if err := os.Truncate(path, st.Size()-10); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if _, err := OpenDataFile(path); !errors.Is(err, ErrTruncated) {
		t.Fatalf("payload-truncated open: got %v, want ErrTruncated", err)
	}

	// Header cut short.
	if err := os.Truncate(path, 10); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if _, err := OpenDataFile(path); !errors.Is(err, ErrTruncated) {
		t.Fatalf("header-truncated open: got %v, want ErrTruncated", err)
	}
}
