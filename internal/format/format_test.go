package format

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spio/internal/geom"
	"spio/internal/lod"
	"spio/internal/particle"
)

func writeTestDataFile(t *testing.T, n int) (string, *particle.Buffer) {
	t.Helper()
	dir := t.TempDir()
	buf := particle.Uniform(particle.Uintah(), geom.UnitBox(), n, 42, 0)
	lod.Shuffle(buf, 7)
	path := filepath.Join(dir, DataFileName(0))
	hdr := DataHeader{LOD: lod.DefaultParams(), Heuristic: lod.Random, Seed: 7}
	if err := WriteDataFile(nil, path, hdr, buf); err != nil {
		t.Fatal(err)
	}
	return path, buf
}

func TestDataFileRoundTrip(t *testing.T) {
	path, buf := writeTestDataFile(t, 257)
	df, err := OpenDataFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	if df.Header.Count != 257 {
		t.Errorf("Count = %d", df.Header.Count)
	}
	if !df.Header.Schema.Equal(particle.Uintah()) {
		t.Error("schema mismatch")
	}
	if df.Header.Bounds != buf.Bounds() {
		t.Errorf("bounds %v != %v", df.Header.Bounds, buf.Bounds())
	}
	back, err := df.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(buf) {
		t.Error("payload mismatch")
	}
}

func TestDataFileReadRange(t *testing.T) {
	path, buf := writeTestDataFile(t, 100)
	df, err := OpenDataFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	mid, err := df.ReadRange(30, 70)
	if err != nil {
		t.Fatal(err)
	}
	if !mid.Equal(buf.Slice(30, 70)) {
		t.Error("range read mismatch")
	}
	if _, err := df.ReadRange(-1, 5); err == nil {
		t.Error("negative lo should fail")
	}
	if _, err := df.ReadRange(0, 101); err == nil {
		t.Error("hi beyond count should fail")
	}
	empty, err := df.ReadRange(50, 50)
	if err != nil || empty.Len() != 0 {
		t.Errorf("empty range: %v, len %d", err, empty.Len())
	}
}

func TestDataFileReadPrefixClamps(t *testing.T) {
	path, buf := writeTestDataFile(t, 40)
	df, err := OpenDataFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	p, err := df.ReadPrefix(1000)
	if err != nil || p.Len() != 40 {
		t.Errorf("over-long prefix: err=%v len=%d", err, p.Len())
	}
	p, err = df.ReadPrefix(-3)
	if err != nil || p.Len() != 0 {
		t.Errorf("negative prefix: err=%v len=%d", err, p.Len())
	}
	p, err = df.ReadPrefix(10)
	if err != nil || !p.Equal(buf.Slice(0, 10)) {
		t.Error("prefix read mismatch")
	}
}

func TestDataFileReadLevels(t *testing.T) {
	path, _ := writeTestDataFile(t, 100)
	df, err := OpenDataFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	// Per-file base 32, S=2: levels are 32, 64, 4.
	l1, err := df.ReadLevels(32, 1)
	if err != nil || l1.Len() != 32 {
		t.Errorf("level 1: err=%v len=%d", err, l1.Len())
	}
	l2, err := df.ReadLevels(32, 2)
	if err != nil || l2.Len() != 96 {
		t.Errorf("levels 2: err=%v len=%d", err, l2.Len())
	}
	l3, err := df.ReadLevels(32, 3)
	if err != nil || l3.Len() != 100 {
		t.Errorf("levels 3: err=%v len=%d", err, l3.Len())
	}
	// Progressive refinement: earlier levels are prefixes of later reads.
	if !l2.Slice(0, 32).Equal(l1) {
		t.Error("level 1 is not a prefix of levels 1..2")
	}
}

func TestDataFileEmpty(t *testing.T) {
	dir := t.TempDir()
	buf := particle.NewBuffer(particle.Uintah(), 0)
	path := filepath.Join(dir, DataFileName(3))
	if err := WriteDataFile(nil, path, DataHeader{LOD: lod.DefaultParams()}, buf); err != nil {
		t.Fatal(err)
	}
	df, err := OpenDataFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	if df.Header.Count != 0 {
		t.Errorf("Count = %d", df.Header.Count)
	}
	all, err := df.ReadAll()
	if err != nil || all.Len() != 0 {
		t.Errorf("ReadAll on empty: %v, %d", err, all.Len())
	}
}

func TestDataFileRejectsCorruption(t *testing.T) {
	path, _ := writeTestDataFile(t, 10)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad magic", func(t *testing.T) {
		mut := append([]byte(nil), raw...)
		mut[0] = 'X'
		p := filepath.Join(t.TempDir(), "x.spd")
		os.WriteFile(p, mut, 0o644)
		if _, err := OpenDataFile(p); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		mut := append([]byte(nil), raw...)
		mut[8] = 99
		p := filepath.Join(t.TempDir(), "x.spd")
		os.WriteFile(p, mut, 0o644)
		if _, err := OpenDataFile(p); err == nil || !strings.Contains(err.Error(), "version") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("flipped header byte", func(t *testing.T) {
		mut := append([]byte(nil), raw...)
		mut[20] ^= 0xff // inside the header body
		p := filepath.Join(t.TempDir(), "x.spd")
		os.WriteFile(p, mut, 0o644)
		if _, err := OpenDataFile(p); err == nil {
			t.Error("corrupt header accepted")
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		p := filepath.Join(t.TempDir(), "x.spd")
		os.WriteFile(p, raw[:len(raw)-5], 0o644)
		if _, err := OpenDataFile(p); err == nil || !strings.Contains(err.Error(), "size") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("extra bytes", func(t *testing.T) {
		p := filepath.Join(t.TempDir(), "x.spd")
		os.WriteFile(p, append(append([]byte(nil), raw...), 0, 0), 0o644)
		if _, err := OpenDataFile(p); err == nil {
			t.Error("oversized file accepted")
		}
	})
}

func TestWriteDataFileSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	buf := particle.Uniform(particle.Uintah(), geom.UnitBox(), 5, 1, 0)
	hdr := DataHeader{Schema: particle.PositionOnly(), LOD: lod.DefaultParams()}
	if err := WriteDataFile(nil, filepath.Join(dir, "x.spd"), hdr, buf); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestDataFileNameConvention(t *testing.T) {
	// Fig. 4: agg rank derives the file name.
	if DataFileName(12) != "file_12.spd" {
		t.Errorf("DataFileName(12) = %q", DataFileName(12))
	}
}

func testMeta(t *testing.T) *Meta {
	t.Helper()
	domain := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	g := geom.NewGrid(domain, geom.I3(2, 2, 1))
	m := &Meta{
		Domain:          domain,
		SimDims:         geom.I3(4, 4, 1),
		PartitionFactor: geom.I3(2, 2, 1),
		AggDims:         geom.I3(2, 2, 1),
		Schema:          particle.Uintah(),
		LOD:             lod.DefaultParams(),
		Heuristic:       lod.Random,
		Total:           4000,
	}
	for i := 0; i < 4; i++ {
		box := g.CellBoxLinear(i)
		m.Files = append(m.Files, FileEntry{
			BoxIndex:  i,
			AggRank:   i * 4,
			Name:      DataFileName(i * 4),
			Partition: box,
			Bounds:    box,
			Count:     1000,
		})
	}
	return m
}

func TestMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := testMeta(t)
	if err := WriteMeta(nil, dir, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Total != m.Total || len(back.Files) != len(m.Files) {
		t.Fatalf("meta mismatch: %+v", back)
	}
	if back.Domain != m.Domain || back.SimDims != m.SimDims ||
		back.PartitionFactor != m.PartitionFactor || back.AggDims != m.AggDims {
		t.Error("geometry fields mismatch")
	}
	if !back.Schema.Equal(m.Schema) {
		t.Error("schema mismatch")
	}
	for i := range m.Files {
		if back.Files[i].Name != m.Files[i].Name ||
			back.Files[i].Partition != m.Files[i].Partition ||
			back.Files[i].Count != m.Files[i].Count ||
			back.Files[i].AggRank != m.Files[i].AggRank ||
			back.Files[i].BoxIndex != m.Files[i].BoxIndex {
			t.Errorf("entry %d mismatch", i)
		}
	}
}

func TestMetaFig4Layout(t *testing.T) {
	// Fig. 4's example: 4 aggregation partitions over the unit square,
	// aggregator ranks 0, 4, 8, 12, with Low/High columns.
	m := testMeta(t)
	m.Files[1].AggRank = 4
	m.Files[1].Name = DataFileName(4)
	m.Files[2].AggRank = 8
	m.Files[2].Name = DataFileName(8)
	m.Files[3].AggRank = 12
	m.Files[3].Name = DataFileName(12)
	dir := t.TempDir()
	if err := WriteMeta(nil, dir, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Box 0 covers [0,0]..[0.5,0.5] as in the figure.
	if back.Files[0].Partition.Lo != geom.V3(0, 0, 0) ||
		back.Files[0].Partition.Hi.X != 0.5 || back.Files[0].Partition.Hi.Y != 0.5 {
		t.Errorf("box 0 = %v", back.Files[0].Partition)
	}
	if back.Files[3].Partition.Hi != geom.V3(1, 1, 1) {
		t.Errorf("box 3 = %v", back.Files[3].Partition)
	}
}

func TestMetaWithFieldRanges(t *testing.T) {
	m := testMeta(t)
	comps := totalComponents(m.Schema) // 16 for Uintah
	if comps != 16 {
		t.Fatalf("Uintah components = %d", comps)
	}
	for i := range m.Files {
		mins := make([]float64, comps)
		maxs := make([]float64, comps)
		for j := range mins {
			mins[j] = float64(i) - 1
			maxs[j] = float64(i) + 1
		}
		m.Files[i].FieldMin = mins
		m.Files[i].FieldMax = maxs
	}
	dir := t.TempDir()
	if err := WriteMeta(nil, dir, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := range back.Files {
		if len(back.Files[i].FieldMin) != comps {
			t.Fatalf("entry %d: %d minima", i, len(back.Files[i].FieldMin))
		}
		if back.Files[i].FieldMin[3] != float64(i)-1 || back.Files[i].FieldMax[5] != float64(i)+1 {
			t.Errorf("entry %d ranges wrong", i)
		}
	}
}

func TestMetaValidateRejects(t *testing.T) {
	mutations := map[string]func(m *Meta){
		"overlapping partitions": func(m *Meta) { m.Files[1].Partition = m.Files[0].Partition },
		"count mismatch":         func(m *Meta) { m.Files[0].Count += 5 },
		"negative count":         func(m *Meta) { m.Files[0].Count = -1; m.Total -= 1001 },
		"escaping partition": func(m *Meta) {
			m.Files[0].Partition = geom.NewBox(geom.V3(-1, 0, 0), geom.V3(0.5, 0.5, 1))
		},
		"bad lod":        func(m *Meta) { m.LOD.Scale = 1 },
		"empty domain":   func(m *Meta) { m.Domain = geom.EmptyBox() },
		"min/max length": func(m *Meta) { m.Files[0].FieldMin = []float64{1} },
	}
	for name, mutate := range mutations {
		m := testMeta(t)
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: validation passed", name)
		}
	}
}

func TestMetaFilesIntersecting(t *testing.T) {
	m := testMeta(t)
	// Query inside box 0 only.
	q := geom.NewBox(geom.V3(0.1, 0.1, 0.1), geom.V3(0.2, 0.2, 0.2))
	hits := m.FilesIntersecting(q)
	if len(hits) != 1 || hits[0].BoxIndex != 0 {
		t.Errorf("hits = %v", hits)
	}
	// Query spanning the whole domain hits all 4.
	if got := m.FilesIntersecting(m.Domain); len(got) != 4 {
		t.Errorf("domain query hit %d files", len(got))
	}
	// Disjoint query hits none.
	if got := m.FilesIntersecting(geom.NewBox(geom.V3(5, 5, 5), geom.V3(6, 6, 6))); len(got) != 0 {
		t.Errorf("disjoint query hit %d files", len(got))
	}
}

func TestMetaRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	if err := WriteMeta(nil, dir, testMeta(t)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, MetaFileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), raw...)
	mut[40] ^= 0x01
	os.WriteFile(path, mut, 0o644)
	if _, err := ReadMeta(dir); err == nil {
		t.Error("corrupt metadata accepted")
	}
	os.WriteFile(path, raw[:30], 0o644)
	if _, err := ReadMeta(dir); err == nil {
		t.Error("truncated metadata accepted")
	}
}

func TestMetaMissingFile(t *testing.T) {
	if _, err := ReadMeta(t.TempDir()); err == nil {
		t.Error("missing metadata file should error")
	}
}

func TestWriteMetaValidatesFirst(t *testing.T) {
	m := testMeta(t)
	m.Total = 1 // inconsistent
	if err := WriteMeta(nil, t.TempDir(), m); err == nil {
		t.Error("invalid meta written")
	}
}
