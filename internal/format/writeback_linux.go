//go:build linux

package format

import (
	"syscall"

	"spio/internal/fault"
)

// syncFileRangeWrite is SYNC_FILE_RANGE_WRITE from the kernel ABI:
// start writeback of the given dirty range without waiting for it.
// The syscall package binds sync_file_range but not its flag values.
const syncFileRangeWrite = 0x2

// kickWriteback asks the kernel to start writing [off, off+n) of f to
// disk in the background. It is purely advisory and never a substitute
// for the fsync that precedes the publishing rename: it only moves disk
// work earlier so that fsync finds most pages already clean instead of
// flushing the whole file cold. Failures (unsupported filesystem,
// non-file descriptor) are ignored — durability is carried by Sync.
func kickWriteback(f fault.File, off, n int64) {
	fd, ok := f.(interface{ Fd() uintptr })
	if !ok {
		return
	}
	_ = syscall.SyncFileRange(int(fd.Fd()), off, n, syncFileRangeWrite)
}
