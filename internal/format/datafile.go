package format

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"spio/internal/fault"
	"spio/internal/geom"
	"spio/internal/lod"
	"spio/internal/particle"
)

// Data file layout (little-endian):
//
//	magic "SPIODATA" | version u32 | header CRC32 of the fields below
//	schema | count u64 | bounds box | lod params | heuristic u8 | seed i64 | flags u8
//	[codec table + block index when flags&flagCompressed]
//	particle records (count × schema.Stride() bytes), or the
//	compressed block stream when flags&flagCompressed
//	[payload CRC32 when flags&flagPayloadCRC]
//
// The particles are stored in LOD order: any prefix is a valid
// lower-resolution subset (Section 3.4). The header is always
// checksummed (header corruption misroutes readers); the payload
// checksum is optional so huge checkpoint writes can stay single-pass,
// and is verified only on demand (VerifyPayload).
//
// Compressed files (flagCompressed) extend the checksummed header with a
// per-field codec table (codec u8 + error bound f64 per schema field)
// and a block index (block count, then record count + compressed byte
// length per block). Blocks are cut at the LOD level boundaries of the
// canonical single-reader schedule (oversized levels split at
// maxCodecBlockRecords), and the compression happens after the LOD
// reorder, so every whole-block prefix of the payload decompresses to a
// valid LOD prefix of the particle sequence. Uncompressed files carry
// no table at all — codec 0 is the absence of the flag — so every
// pre-codec file reads unchanged, and readers that predate the flag
// reject compressed files cleanly via the unknown-flags check.

const (
	dataMagic   = "SPIODATA"
	dataVersion = 2 // v2 added the flags byte + optional payload CRC
)

// ErrTruncated marks a data file whose on-disk size disagrees with its
// header — a torn or truncated write (the atomic-rename path never
// produces one; an fsck hit means the file was mutilated out-of-band
// or written by a pre-atomic version). errors.Is-matchable.
var ErrTruncated = errors.New("torn or truncated data file")

// DataHeader is the decoded header of a data file.
type DataHeader struct {
	Schema    *particle.Schema
	Count     int64
	Bounds    geom.Box // closed bounding box of the contained particles
	LOD       lod.Params
	Heuristic lod.Heuristic
	Seed      int64
	// PayloadCRC, when true, means a CRC32 of the particle records is
	// stored after the payload; VerifyPayload checks it.
	PayloadCRC bool
	// Codec is the per-field compression spec the payload was written
	// under. The zero value (raw) writes the classic uncompressed
	// layout, byte-identical to pre-codec files.
	Codec particle.Spec
	// CodecWorkers bounds the concurrent block compressions of one
	// data-file write (<= 0 means GOMAXPROCS). A write-time knob only —
	// it is not stored in the file, and the bytes written do not depend
	// on it.
	CodecWorkers int
}

// header flag bits.
const (
	flagPayloadCRC = 1
	// flagCompressed marks a payload stored as the compressed block
	// stream described atop this file. The CRC (when present) covers the
	// compressed bytes as stored.
	flagCompressed = 2
)

// maxCodecBlockRecords caps one compressed block. Blocks are cut at LOD
// level boundaries first; levels larger than this split, which keeps a
// random record read from decompressing more than ~1 MiB of records
// while leaving every block boundary on a valid LOD prefix.
const maxCodecBlockRecords = 8192

// codecBlock is one entry of a compressed file's block index.
type codecBlock struct {
	recs  int64 // records in the block
	bytes int64 // compressed byte length
}

// codecBlockLens cuts count records into compressed-block lengths along
// the LOD level boundaries of the canonical single-reader schedule
// (base = BasePerReader), splitting oversized levels. Any whole-block
// prefix of the resulting partition is therefore a valid LOD prefix.
func codecBlockLens(count int64, p lod.Params) []int64 {
	var lens []int64
	for _, lv := range lod.LevelSizes(count, int64(p.BasePerReader), p.Scale) {
		for lv > maxCodecBlockRecords {
			lens = append(lens, maxCodecBlockRecords)
			lv -= maxCodecBlockRecords
		}
		if lv > 0 {
			lens = append(lens, lv)
		}
	}
	return lens
}

// DataFileName derives a data file's name from its aggregator rank, the
// paper's Fig. 4 convention ("Agg rank is used to derive the name of the
// data file").
func DataFileName(aggRank int) string { return fmt.Sprintf("file_%d.spd", aggRank) }

// encodeDataHeader writes everything after the magic+version+crc
// prefix. blocks is the compressed block index (nil for raw payloads);
// compressed headers carry the codec table and the index after the
// flags byte.
func encodeDataHeader(e *writer, h *DataHeader, blocks []codecBlock) {
	encodeSchema(e, h.Schema)
	e.u64(uint64(h.Count))
	e.box(h.Bounds)
	e.uvarint(uint64(h.LOD.BasePerReader))
	e.uvarint(uint64(h.LOD.Scale))
	e.u8(uint8(h.Heuristic))
	e.i64(h.Seed)
	var flags uint8
	if h.PayloadCRC {
		flags |= flagPayloadCRC
	}
	compressed := blocks != nil
	if compressed {
		flags |= flagCompressed
	}
	e.u8(flags)
	if compressed {
		for i := 0; i < h.Schema.NumFields(); i++ {
			fc := h.Codec.Fields[i]
			e.u8(uint8(fc.ID))
			e.f64(fc.ErrBound)
		}
		e.uvarint(uint64(len(blocks)))
		for _, b := range blocks {
			e.uvarint(uint64(b.recs))
			e.uvarint(uint64(b.bytes))
		}
	}
}

// WriteDataFile writes a complete data file at path. buf must already be
// in LOD order; hdr.Count and hdr.Bounds are filled from buf. The file
// lands via temp-file + fsync + atomic rename (fsys nil means the real
// filesystem), so readers never observe a torn data file under path.
func WriteDataFile(fsys fault.WriteFS, path string, hdr DataHeader, buf *particle.Buffer) error {
	return WriteDataFileOrdered(fsys, path, hdr, buf, nil)
}

// WriteDataFileOrdered is WriteDataFile for a buffer that is not yet in
// LOD order: record i of the payload is particle order[i] of buf, so the
// permuted payload streams out without the reorder ever being
// materialized in memory. A nil order writes buf as-is. The bytes on
// disk are identical to applying the permutation to buf and calling
// WriteDataFile.
func WriteDataFileOrdered(fsys fault.WriteFS, path string, hdr DataHeader, buf *particle.Buffer, order []int) error {
	if order != nil && len(order) != buf.Len() {
		return fmt.Errorf("format: order has %d indices, buffer has %d particles", len(order), buf.Len())
	}
	if hdr.Schema == nil {
		hdr.Schema = buf.Schema()
	}
	if !hdr.Schema.Equal(buf.Schema()) {
		return fmt.Errorf("format: header schema %v != buffer schema %v", hdr.Schema, buf.Schema())
	}
	if err := hdr.LOD.Validate(); err != nil {
		return err
	}
	if err := hdr.Codec.Validate(hdr.Schema); err != nil {
		return err
	}
	hdr.Count = int64(buf.Len())
	hdr.Bounds = buf.Bounds()

	// Compress first when the spec asks for it: the header's block index
	// needs every compressed length before the first payload byte lands.
	var blocks []codecBlock
	var blockData [][]byte
	if !hdr.Codec.IsRaw() {
		var err error
		blocks, blockData, err = compressPayload(&hdr, buf, order)
		if err != nil {
			return err
		}
	}

	// Encode the header body once to learn its CRC.
	var body headerBuf
	e := newWriter(&body)
	encodeDataHeader(e, &hdr, blocks)
	if e.err != nil {
		return e.err
	}

	// Pre-encode the full file prefix (everything before the payload)
	// so each write attempt only replays raw bytes plus the record
	// stream.
	var prefix headerBuf
	pre := newWriter(&prefix)
	pre.bytes([]byte(dataMagic))
	pre.u32(dataVersion)
	pre.u32(crc32.ChecksumIEEE(body.b))
	pre.bytes(body.b)
	if pre.err != nil {
		return pre.err
	}

	if blocks != nil {
		return writeFileAtomic(fsOrOS(fsys), path, func(w io.Writer) error {
			return writeCompressedPayload(w, prefix.b, &hdr, blockData)
		})
	}
	return writeFileAtomic(fsOrOS(fsys), path, func(w io.Writer) error {
		return writeDataPayload(w, prefix.b, &hdr, buf, order)
	})
}

// compressPayload gathers the LOD-ordered records block by block
// (payload record i is particle order[i], so compression happens
// strictly after the reorder) and compresses the blocks under the
// header's codec spec. It returns the block index and the compressed
// bytes, held in memory until the write: the index precedes the payload
// on disk.
//
// Blocks are compressed concurrently (CompressBlocks, bounded by
// hdr.CodecWorkers) in runs whose gathered raw records fit one pooled
// image of at most maxImageBytes, so a huge payload never materializes
// fully while the workers still get a run's worth of independent
// blocks. The frames are byte-identical to the serial per-block loop.
func compressPayload(hdr *DataHeader, buf *particle.Buffer, order []int) ([]codecBlock, [][]byte, error) {
	lens := codecBlockLens(hdr.Count, hdr.LOD)
	blocks := make([]codecBlock, 0, len(lens))
	blockData := make([][]byte, 0, len(lens))
	stride := hdr.Schema.Stride()
	lo := int64(0)
	for start := 0; start < len(lens); {
		// Extend the run while the next block's records still fit the
		// image budget (a run always takes at least one block).
		end, runRecs := start, int64(0)
		for end < len(lens) && (end == start || (runRecs+lens[end])*int64(stride) <= maxImageBytes) {
			runRecs += lens[end]
			end++
		}
		raw := fromPool(&imagePool, int(runRecs)*stride)
		raws := make([][]byte, 0, end-start)
		off := int64(0)
		for _, n := range lens[start:end] {
			hi := lo + n
			r := raw[off*int64(stride) : (off+n)*int64(stride)]
			if order != nil {
				buf.EncodeRecordsGather(r, order[lo:hi])
			} else {
				buf.EncodeRecordsInto(r, int(lo), int(hi))
			}
			raws = append(raws, r)
			lo, off = hi, off+n
		}
		comp, err := particle.CompressBlocks(hdr.Schema, hdr.Codec, raws, hdr.CodecWorkers)
		toPool(&imagePool, raw)
		if err != nil {
			return nil, nil, err
		}
		for i, c := range comp {
			blocks = append(blocks, codecBlock{recs: lens[start+i], bytes: int64(len(c))})
			blockData = append(blockData, c)
		}
		start = end
	}
	// A compressed file always carries an index, even an empty one: the
	// flag, not the block count, is what distinguishes the layouts.
	if blocks == nil {
		blocks = []codecBlock{}
	}
	return blocks, blockData, nil
}

// writeCompressedPayload streams the prefix and the pre-compressed
// blocks, checksumming the stored (compressed) bytes if requested.
func writeCompressedPayload(w io.Writer, prefix []byte, hdr *DataHeader, blockData [][]byte) error {
	if _, err := w.Write(prefix); err != nil {
		return err
	}
	var payloadCRC uint32
	for _, b := range blockData {
		if hdr.PayloadCRC {
			payloadCRC = crc32.Update(payloadCRC, crc32.IEEETable, b)
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	if hdr.PayloadCRC {
		var tail [4]byte
		binary.LittleEndian.PutUint32(tail[:], payloadCRC)
		if _, err := w.Write(tail[:]); err != nil {
			return err
		}
	}
	return nil
}

// chunkRecords is the streaming granularity of the payload writers:
// ~1MB of records per Write, large enough for bufio's direct-write path
// and for a writeback kick per chunk.
const chunkRecords = 8192

// maxImageBytes bounds the materialized AoS image of the ordered fast
// path below; payloads past it fall back to the bounded-memory per-chunk
// gather so a huge file never doubles its buffer's footprint.
const maxImageBytes = 64 << 20

// scratchPool and imagePool recycle the payload writers' staging slices
// across data-file writes (every byte of a staging slice is overwritten
// before it is read, so stale pooled contents are harmless).
var scratchPool, imagePool sync.Pool // *[]byte

func fromPool(p *sync.Pool, n int) []byte {
	if v, _ := p.Get().(*[]byte); v != nil && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]byte, n)
}

func toPool(p *sync.Pool, b []byte) {
	p.Put(&b)
}

// writeDataPayload streams the prefix and the particle records in
// ~1MB chunks, checksumming along the way if requested. A non-nil order
// gathers records through it: payload record i is particle order[i].
//
// The ordered path copies whole rows through the permutation out of an
// AoS image of the buffer: the random access the shuffle forces then
// costs one bounded copy per record instead of one column read per
// element. The image is the buffer's encoded mirror when the exchange
// assembled one (free), otherwise a pooled sequential encode — whose
// SoA -> AoS transpose runs at its sequential speed. Payloads larger
// than maxImageBytes gather per chunk straight from the columns
// instead, so a huge file never doubles its buffer's footprint.
func writeDataPayload(w io.Writer, prefix []byte, hdr *DataHeader, buf *particle.Buffer, order []int) error {
	if _, err := w.Write(prefix); err != nil {
		return err
	}
	stride := buf.Schema().Stride()
	total := buf.Len() * stride
	image := buf.EncodedMirror() // valid while buf is unmutated, which holds through this write
	if image == nil && order != nil && total > 0 && total <= maxImageBytes {
		img := fromPool(&imagePool, total)
		defer toPool(&imagePool, img)
		buf.EncodeRecordsInto(img, 0, buf.Len())
		image = img
	}
	chunk := chunkRecords
	if buf.Len() < chunk {
		chunk = buf.Len()
	}
	var scratch []byte
	if order != nil || image == nil {
		scratch = fromPool(&scratchPool, chunk*stride)
		defer toPool(&scratchPool, scratch)
	}
	var payloadCRC uint32
	for lo := 0; lo < buf.Len(); lo += chunk {
		hi := lo + chunk
		if hi > buf.Len() {
			hi = buf.Len()
		}
		var p []byte
		switch {
		case order == nil && image != nil:
			// Unordered with a mirror in hand: the payload bytes already
			// exist, stream them out directly.
			p = image[lo*stride : hi*stride]
		case image != nil:
			p = scratch[:(hi-lo)*stride]
			for i, rec := range order[lo:hi] {
				copy(p[i*stride:(i+1)*stride], image[rec*stride:(rec+1)*stride])
			}
		case order != nil:
			p = scratch[:(hi-lo)*stride]
			buf.EncodeRecordsGather(p, order[lo:hi])
		default:
			p = scratch[:(hi-lo)*stride]
			buf.EncodeRecordsInto(p, lo, hi)
		}
		if hdr.PayloadCRC {
			payloadCRC = crc32.Update(payloadCRC, crc32.IEEETable, p)
		}
		if _, err := w.Write(p); err != nil {
			return err
		}
	}
	if hdr.PayloadCRC {
		var tail [4]byte
		binary.LittleEndian.PutUint32(tail[:], payloadCRC)
		if _, err := w.Write(tail[:]); err != nil {
			return err
		}
	}
	return nil
}

// headerBuf is a minimal growing byte sink for header pre-encoding.
type headerBuf struct{ b []byte }

func (h *headerBuf) Write(p []byte) (int, error) {
	h.b = append(h.b, p...)
	return len(p), nil
}

// DataFile is an open handle to a data file supporting random-access
// record-range reads (the primitive behind LOD prefix reads).
type DataFile struct {
	f          *os.File
	ra         io.ReaderAt // payload read seam; defaults to f
	Header     DataHeader
	payloadOff int64
	path       string
	// Compressed-file block index (nil for raw payloads): cumulative
	// record starts and payload byte offsets, both len(nBlocks)+1.
	blockRecs []int64
	blockOffs []int64
	// payloadBytes is the stored payload length: compressed bytes for
	// compressed files, Count*Stride for raw ones.
	payloadBytes int64

	// decoded is the optional decoded-block cache tier (SetDecodedCache);
	// nil means every block decode runs in place.
	decoded DecodedBlockCache
	// cached records that a serving-layer cache sits under ra, which is
	// what makes readahead worth its bytes.
	cached bool
	// lastHi is the record end of the most recent range read; a read
	// starting there (or at 0) is a sequential pattern and arms the
	// readahead.
	lastHi atomic.Int64
	// raBusy admits one in-flight readahead; raWG is its join point
	// (tests drain it — Close deliberately does not block on it).
	raBusy atomic.Bool
	raWG   sync.WaitGroup
}

// Compressed reports whether the payload is stored compressed.
func (df *DataFile) Compressed() bool { return df.blockRecs != nil }

// PayloadBytes returns the stored payload length in bytes (the
// compressed length for compressed files).
func (df *DataFile) PayloadBytes() int64 { return df.payloadBytes }

// ReaderAt returns the io.ReaderAt payload reads currently go through
// (the underlying file unless SetReaderAt replaced it).
func (df *DataFile) ReaderAt() io.ReaderAt { return df.ra }

// SetReaderAt reroutes every payload read (ReadRange, projections,
// VerifyPayload) through ra — the seam a serving layer uses to slide a
// shared block cache under the record reads. ra must serve the exact
// bytes of the underlying file. Not safe to call concurrently with
// reads; install it right after open. Installing a seam also arms the
// sequential readahead: prefetched bytes land somewhere they can be
// found again.
func (df *DataFile) SetReaderAt(ra io.ReaderAt) {
	//spio:allow racegate -- documented contract: installed right after open, before any concurrent reads; read-only afterwards
	df.ra = ra
	//spio:allow racegate -- same open-time contract as df.ra: set before any concurrent reads
	df.cached = true
}

// DecodedBlockCache is the seam for a decoded-block cache tier in front
// of the compressed-resident one: it holds whole decoded codec blocks
// so a hot working set pays inflate once. Implementations must be safe
// for concurrent use — range reads run their block decodes in parallel.
type DecodedBlockCache interface {
	// GetBlock returns the decoded AoS record bytes of block bi, or nil.
	// The returned slice is shared and must not be written.
	GetBlock(bi int) []byte
	// PutBlock offers block bi's decoded bytes to the cache, which takes
	// ownership of the slice (the caller never writes it again).
	PutBlock(bi int, recs []byte)
}

// SetDecodedCache installs a decoded-block cache tier. Like
// SetReaderAt, install it right after open, not concurrently with
// reads. Compressed files only (a raw payload has no decode to save).
func (df *DataFile) SetDecodedCache(c DecodedBlockCache) {
	//spio:allow racegate -- documented contract: installed right after open, before any concurrent reads; read-only afterwards
	df.decoded = c
	df.cached = true
}

// OpenDataFile opens and validates a data file.
func OpenDataFile(path string) (*DataFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	df, err := readDataFileHeader(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return df, nil
}

func readDataFileHeader(f *os.File, path string) (*DataFile, error) {
	br := bufio.NewReaderSize(f, 64<<10)
	d := newReader(br)
	magic := make([]byte, len(dataMagic))
	d.bytes(magic)
	if d.err == nil && string(magic) != dataMagic {
		return nil, fmt.Errorf("format: %s: not a spio data file (magic %q)", path, magic)
	}
	version := d.u32()
	if d.err == nil && version != dataVersion {
		return nil, fmt.Errorf("format: %s: unsupported data version %d", path, version)
	}
	wantCRC := d.u32()
	if d.err != nil {
		return nil, classifyHeaderErr(path, d.err)
	}

	d.crc = 0 // CRC covers only the header body
	var h DataHeader
	schema, err := decodeSchema(d)
	if err != nil {
		return nil, fmt.Errorf("format: %s: %w", path, err)
	}
	h.Schema = schema
	h.Count = int64(d.u64())
	h.Bounds = d.boxv()
	h.LOD.BasePerReader = int(d.uvarint())
	h.LOD.Scale = int(d.uvarint())
	h.Heuristic = lod.Heuristic(d.u8())
	h.Seed = d.i64()
	flags := d.u8()
	h.PayloadCRC = flags&flagPayloadCRC != 0
	compressed := flags&flagCompressed != 0
	if d.err == nil && flags&^uint8(flagPayloadCRC|flagCompressed) != 0 {
		return nil, fmt.Errorf("format: %s: unknown header flags %#x", path, flags)
	}
	var blockRecs, blockOffs []int64
	if compressed {
		h.Codec.Fields = make([]particle.FieldCodec, schema.NumFields())
		for i := range h.Codec.Fields {
			h.Codec.Fields[i].ID = particle.CodecID(d.u8())
			h.Codec.Fields[i].ErrBound = d.f64()
		}
		nBlocks := d.uvarint()
		if d.err == nil && h.Count >= 0 && nBlocks > uint64(h.Count) {
			// Every block holds at least one record; a larger claim is
			// corrupt, and rejecting it here bounds the index allocation.
			return nil, fmt.Errorf("format: %s: %d compressed blocks for %d records", path, nBlocks, h.Count)
		}
		blockRecs = append(blockRecs, 0)
		blockOffs = append(blockOffs, 0)
		// Per block, the per-field fallback guarantees the stored bytes
		// never exceed the raw records plus the field framing.
		maxOverhead := int64(schema.NumFields()) * 16
		for i := uint64(0); i < nBlocks && d.err == nil; i++ {
			recs := int64(d.uvarint())
			bytes := int64(d.uvarint())
			if d.err != nil {
				break
			}
			if recs <= 0 || recs > h.Count-blockRecs[len(blockRecs)-1] {
				return nil, fmt.Errorf("format: %s: compressed block %d holds %d records", path, i, recs)
			}
			if bytes < 0 || bytes > recs*int64(schema.Stride())+maxOverhead {
				return nil, fmt.Errorf("format: %s: compressed block %d claims %d bytes for %d records", path, i, bytes, recs)
			}
			blockRecs = append(blockRecs, blockRecs[len(blockRecs)-1]+recs)
			blockOffs = append(blockOffs, blockOffs[len(blockOffs)-1]+bytes)
		}
	}
	if d.err != nil {
		return nil, classifyHeaderErr(path, d.err)
	}
	if d.crc != wantCRC {
		return nil, fmt.Errorf("format: %s: header checksum mismatch", path)
	}
	if h.Count < 0 {
		return nil, fmt.Errorf("format: %s: negative count", path)
	}
	if err := h.LOD.Validate(); err != nil {
		return nil, fmt.Errorf("format: %s: %w", path, err)
	}
	if err := h.Codec.Validate(schema); err != nil {
		return nil, fmt.Errorf("format: %s: %w", path, err)
	}
	payloadBytes := h.Count * int64(h.Schema.Stride())
	if compressed {
		if got := blockRecs[len(blockRecs)-1]; got != h.Count {
			return nil, fmt.Errorf("format: %s: compressed blocks cover %d of %d records", path, got, h.Count)
		}
		payloadBytes = blockOffs[len(blockOffs)-1]
	}
	// d.n counts every byte consumed so far (magic, version, crc, header
	// body), which is exactly where the payload starts.
	payloadOff := d.n

	// Verify payload size against the file size.
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	want := payloadOff + payloadBytes
	if h.PayloadCRC {
		want += 4
	}
	if st.Size() != want {
		return nil, fmt.Errorf("format: %s: size %d, want %d (%d records): %w", path, st.Size(), want, h.Count, ErrTruncated)
	}
	return &DataFile{f: f, ra: f, Header: h, payloadOff: payloadOff, path: path,
		blockRecs: blockRecs, blockOffs: blockOffs, payloadBytes: payloadBytes}, nil
}

// classifyHeaderErr tags header reads that ran off the end of the file
// as truncation, so fsck can tell a torn file from a corrupt one.
func classifyHeaderErr(path string, err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("format: %s: header ends early: %w", path, ErrTruncated)
	}
	return fmt.Errorf("format: %s: %w", path, err)
}

// Path returns the file's path.
func (df *DataFile) Path() string { return df.path }

// Close releases the file handle. It does not wait for an in-flight
// readahead: callers routinely close files under cache locks, and a
// blocking Close would stall them. A straggling prefetch reading a
// closed *os.File gets ErrClosed (os.File serializes Close against
// ReadAt internally) and drops it like any other readahead error.
func (df *DataFile) Close() error {
	return df.f.Close()
}

// payloadRange materializes the AoS record bytes of records [lo, hi).
// Raw payloads are read directly at their fixed offsets. Compressed
// payloads read whole compressed blocks through the ra seam — so a
// serving layer's block cache holds compressed bytes, multiplying its
// effective capacity — and decode on the way out (decode-on-egress).
//
// The block walk is a read→decode pipeline: every overlapping block is
// handled by a bounded worker fan-out, so the ReadAts overlap each
// other (and, through the singleflight BlockCache, any disk latency)
// while finished reads decode in parallel into disjoint regions of the
// result. Blocks fully inside [lo, hi) decode in place into the result
// slice; only the edge blocks pay an overlap copy. A sequential access
// pattern (a read starting at 0 or where the previous one ended — the
// ReadPrefix/progressive-LOD shape) arms a best-effort readahead of the
// next block.
func (df *DataFile) payloadRange(lo, hi int64) ([]byte, error) {
	stride := int64(df.Header.Schema.Stride())
	data := make([]byte, (hi-lo)*stride)
	if df.blockRecs == nil {
		if len(data) == 0 {
			return data, nil
		}
		if _, err := df.ra.ReadAt(data, df.payloadOff+lo*stride); err != nil {
			return nil, err
		}
		return data, nil
	}
	sequential := lo == 0 || lo == df.lastHi.Load()
	df.lastHi.Store(hi)
	// Block range [b0, b1) overlapping [lo, hi): first block extending
	// past lo, then every block starting before hi.
	b0 := sort.Search(len(df.blockRecs)-1, func(i int) bool { return df.blockRecs[i+1] > lo })
	b1 := b0
	for b1 < len(df.blockRecs)-1 && df.blockRecs[b1] < hi {
		b1++
	}
	if err := df.decodeBlockRange(data, lo, hi, b0, b1); err != nil {
		return nil, err
	}
	if sequential && df.cached && b1 < len(df.blockRecs)-1 {
		df.readahead(b1)
	}
	return data, nil
}

// decodeBlockRange runs the read→decode pipeline for blocks [b0, b1)
// of a compressed payload into data (the record image of [lo, hi)).
// The ra seam and decoded tier are loaded once here, on the caller's
// goroutine, and handed to the workers by value: the setters that
// install them are ordered before any read, and the workers must not
// touch the fields themselves.
func (df *DataFile) decodeBlockRange(data []byte, lo, hi int64, b0, b1 int) error {
	ra, decoded := df.ra, df.decoded
	n := b1 - b0
	if n <= 1 {
		for bi := b0; bi < b1; bi++ {
			if err := df.readDecodeBlock(ra, decoded, data, lo, hi, bi); err != nil {
				return err
			}
		}
		return nil
	}
	// At least a few workers even on one P: a ReadAt parked in the
	// kernel releases its P, so the fan-out still overlaps disk latency
	// when it cannot overlap decode.
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, workers)
		mu       sync.Mutex
		firstErr error
	)
	for bi := b0; bi < b1; bi++ {
		wg.Add(1)
		go func(bi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := df.readDecodeBlock(ra, decoded, data, lo, hi, bi); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(bi)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}

// readDecodeBlock reads one compressed block through the ra seam (and
// the decoded tier, when installed) and lands its overlap with [lo, hi)
// in data. Safe to call concurrently for distinct blocks: each block's
// records occupy a disjoint region of data.
func (df *DataFile) readDecodeBlock(ra io.ReaderAt, decoded DecodedBlockCache, data []byte, lo, hi int64, bi int) error {
	stride := int64(df.Header.Schema.Stride())
	bLo, bHi := df.blockRecs[bi], df.blockRecs[bi+1]
	cLo, cHi := max(lo, bLo), min(hi, bHi)
	if decoded != nil {
		if recs := decoded.GetBlock(bi); recs != nil {
			copy(data[(cLo-lo)*stride:(cHi-lo)*stride], recs[(cLo-bLo)*stride:(cHi-bLo)*stride])
			return nil
		}
		recs, err := df.decodeWholeBlock(ra, bi)
		if err != nil {
			return err
		}
		copy(data[(cLo-lo)*stride:(cHi-lo)*stride], recs[(cLo-bLo)*stride:(cHi-bLo)*stride])
		// The tier takes ownership only after the copy out: once offered,
		// the bytes are shared and immutable.
		decoded.PutBlock(bi, recs)
		return nil
	}
	comp := fromPool(&scratchPool, int(df.blockOffs[bi+1]-df.blockOffs[bi]))
	defer toPool(&scratchPool, comp)
	if _, err := ra.ReadAt(comp, df.payloadOff+df.blockOffs[bi]); err != nil {
		return err
	}
	if cLo == bLo && cHi == bHi {
		// Fully covered: decode straight into the block's slot of the
		// result, no intermediate record image.
		return particle.DecompressBlockInto(df.Header.Schema, comp, int(bHi-bLo),
			data[(bLo-lo)*stride:(bHi-lo)*stride])
	}
	recs := fromPool(&imagePool, int((bHi-bLo)*stride))
	defer toPool(&imagePool, recs)
	if err := particle.DecompressBlockInto(df.Header.Schema, comp, int(bHi-bLo), recs); err != nil {
		return err
	}
	copy(data[(cLo-lo)*stride:(cHi-lo)*stride], recs[(cLo-bLo)*stride:(cHi-bLo)*stride])
	return nil
}

// decodeWholeBlock reads and decodes one whole compressed block into a
// fresh slice (the decoded tier takes ownership of it).
func (df *DataFile) decodeWholeBlock(ra io.ReaderAt, bi int) ([]byte, error) {
	comp := fromPool(&scratchPool, int(df.blockOffs[bi+1]-df.blockOffs[bi]))
	defer toPool(&scratchPool, comp)
	if _, err := ra.ReadAt(comp, df.payloadOff+df.blockOffs[bi]); err != nil {
		return nil, err
	}
	return particle.DecompressBlock(df.Header.Schema, comp, int(df.blockRecs[bi+1]-df.blockRecs[bi]))
}

// readahead prefetches block bi in the background: its ReadAt warms the
// compressed cache under the ra seam, and with a decoded tier installed
// the decoded bytes land there too, so the next sequential read starts
// hot. One readahead runs at a time (raBusy); errors are dropped — a
// prefetch that fails only costs the head start, and the foreground
// read that follows will surface any real fault. The ra seam and
// decoded tier are captured here, on the caller's goroutine, so the
// prefetch never reads the installable fields. raWG is the join point
// (tests drain it); Close does not block on it.
func (df *DataFile) readahead(bi int) {
	if !df.raBusy.CompareAndSwap(false, true) {
		return
	}
	ra, decoded := df.ra, df.decoded
	df.raWG.Add(1)
	go func() {
		defer df.raWG.Done()
		defer df.raBusy.Store(false)
		if decoded != nil {
			if decoded.GetBlock(bi) != nil {
				return
			}
			if recs, err := df.decodeWholeBlock(ra, bi); err == nil {
				decoded.PutBlock(bi, recs)
			}
			return
		}
		comp := fromPool(&scratchPool, int(df.blockOffs[bi+1]-df.blockOffs[bi]))
		_, _ = ra.ReadAt(comp, df.payloadOff+df.blockOffs[bi])
		toPool(&scratchPool, comp)
	}()
}

// ReadRange reads records [lo, hi) into a new buffer.
func (df *DataFile) ReadRange(lo, hi int64) (*particle.Buffer, error) {
	if lo < 0 || hi > df.Header.Count || lo > hi {
		return nil, fmt.Errorf("format: %s: range [%d,%d) out of [0,%d)", df.path, lo, hi, df.Header.Count)
	}
	data, err := df.payloadRange(lo, hi)
	if err != nil {
		return nil, fmt.Errorf("format: %s: %w", df.path, err)
	}
	return particle.Decode(df.Header.Schema, data)
}

// ReadPrefix reads the first n records — a level-of-detail read. n is
// clamped to the record count.
func (df *DataFile) ReadPrefix(n int64) (*particle.Buffer, error) {
	if n > df.Header.Count {
		n = df.Header.Count
	}
	if n < 0 {
		n = 0
	}
	return df.ReadRange(0, n)
}

// ReadAll reads every record.
func (df *DataFile) ReadAll() (*particle.Buffer, error) {
	return df.ReadRange(0, df.Header.Count)
}

// ReadLevels reads levels [0, levels) of the file's LOD hierarchy. The
// caller supplies the per-file level-0 budget perFileBase (spio
// distributes the dataset-wide budget n·P of Section 3.4 uniformly over
// data files, so perFileBase = n·P / numFiles, at least 1); the prefix
// length is PrefixCount(count, perFileBase, S, levels).
func (df *DataFile) ReadLevels(perFileBase int64, levels int) (*particle.Buffer, error) {
	n := lod.PrefixCount(df.Header.Count, perFileBase, df.Header.LOD.Scale, levels)
	return df.ReadPrefix(n)
}

// ReadRangeProjected reads records [lo, hi) keeping only the fields of
// the projection (which must have been built from this file's schema).
func (df *DataFile) ReadRangeProjected(lo, hi int64, p *particle.Projection) (*particle.Buffer, error) {
	if !p.Source().Equal(df.Header.Schema) {
		return nil, fmt.Errorf("format: %s: projection source schema mismatch", df.path)
	}
	if lo < 0 || hi > df.Header.Count || lo > hi {
		return nil, fmt.Errorf("format: %s: range [%d,%d) out of [0,%d)", df.path, lo, hi, df.Header.Count)
	}
	data, err := df.payloadRange(lo, hi)
	if err != nil {
		return nil, fmt.Errorf("format: %s: %w", df.path, err)
	}
	out := particle.NewBuffer(p.Schema(), int(hi-lo))
	if err := p.DecodeRecords(out, data); err != nil {
		return nil, fmt.Errorf("format: %s: %w", df.path, err)
	}
	return out, nil
}

// VerifyPayload re-reads the whole payload and checks it against the
// stored CRC32 (the CRC covers the stored bytes — the compressed stream
// for compressed files). It fails if the file was written without
// PayloadCRC.
func (df *DataFile) VerifyPayload() error {
	if !df.Header.PayloadCRC {
		return fmt.Errorf("format: %s: no payload checksum stored", df.path)
	}
	payloadLen := df.payloadBytes
	var crc uint32
	buf := make([]byte, 1<<20)
	for off := int64(0); off < payloadLen; {
		n := int64(len(buf))
		if off+n > payloadLen {
			n = payloadLen - off
		}
		if _, err := df.ra.ReadAt(buf[:n], df.payloadOff+off); err != nil {
			return fmt.Errorf("format: %s: %w", df.path, err)
		}
		crc = crc32.Update(crc, crc32.IEEETable, buf[:n])
		off += n
	}
	var tail [4]byte
	if _, err := df.ra.ReadAt(tail[:], df.payloadOff+payloadLen); err != nil {
		return fmt.Errorf("format: %s: %w", df.path, err)
	}
	if want := binary.LittleEndian.Uint32(tail[:]); crc != want {
		return fmt.Errorf("format: %s: payload checksum mismatch (%#x != %#x)", df.path, crc, want)
	}
	return nil
}

var _ io.Closer = (*DataFile)(nil)
