package format

import (
	"path/filepath"
	"testing"

	"spio/internal/geom"
	"spio/internal/lod"
	"spio/internal/particle"
)

func BenchmarkWriteDataFile64K(b *testing.B) {
	dir := b.TempDir()
	buf := particle.Uniform(particle.Uintah(), geom.UnitBox(), 65536, 7, 0)
	hdr := DataHeader{LOD: lod.DefaultParams()}
	b.SetBytes(buf.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteDataFile(nil, filepath.Join(dir, "bench.spd"), hdr, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadDataFile64K(b *testing.B) {
	dir := b.TempDir()
	buf := particle.Uniform(particle.Uintah(), geom.UnitBox(), 65536, 7, 0)
	path := filepath.Join(dir, "bench.spd")
	if err := WriteDataFile(nil, path, DataHeader{LOD: lod.DefaultParams()}, buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(buf.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		df, err := OpenDataFile(path)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := df.ReadAll(); err != nil {
			b.Fatal(err)
		}
		df.Close()
	}
}

func BenchmarkReadPrefix4K(b *testing.B) {
	dir := b.TempDir()
	buf := particle.Uniform(particle.Uintah(), geom.UnitBox(), 65536, 7, 0)
	path := filepath.Join(dir, "bench.spd")
	if err := WriteDataFile(nil, path, DataHeader{LOD: lod.DefaultParams()}, buf); err != nil {
		b.Fatal(err)
	}
	df, err := OpenDataFile(path)
	if err != nil {
		b.Fatal(err)
	}
	defer df.Close()
	b.SetBytes(4096 * 124)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := df.ReadPrefix(4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMetaRoundTrip1KFiles(b *testing.B) {
	dir := b.TempDir()
	domain := geom.UnitBox()
	g := geom.NewGrid(domain, geom.I3(16, 8, 8))
	m := &Meta{
		Domain:          domain,
		SimDims:         geom.I3(32, 16, 16),
		PartitionFactor: geom.I3(2, 2, 2),
		AggDims:         geom.I3(16, 8, 8),
		Schema:          particle.Uintah(),
		LOD:             lod.DefaultParams(),
	}
	for i := 0; i < g.Cells(); i++ {
		box := g.CellBoxLinear(i)
		m.Files = append(m.Files, FileEntry{
			BoxIndex: i, AggRank: i * 8, Name: DataFileName(i * 8),
			Partition: box, Bounds: box, Count: 1000,
		})
		m.Total += 1000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteMeta(nil, dir, m); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadMeta(dir); err != nil {
			b.Fatal(err)
		}
	}
}
