package format

import (
	"os"
	"path/filepath"
	"testing"

	"spio/internal/geom"
	"spio/internal/lod"
	"spio/internal/particle"
)

func writeChecksummed(t *testing.T, n int) (string, *particle.Buffer) {
	t.Helper()
	dir := t.TempDir()
	buf := particle.Uniform(particle.Uintah(), geom.UnitBox(), n, 3, 0)
	path := filepath.Join(dir, "c.spd")
	hdr := DataHeader{LOD: lod.DefaultParams(), PayloadCRC: true}
	if err := WriteDataFile(nil, path, hdr, buf); err != nil {
		t.Fatal(err)
	}
	return path, buf
}

func TestPayloadChecksumRoundTrip(t *testing.T) {
	path, buf := writeChecksummed(t, 500)
	df, err := OpenDataFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	if !df.Header.PayloadCRC {
		t.Fatal("flag not round-tripped")
	}
	if err := df.VerifyPayload(); err != nil {
		t.Errorf("pristine payload failed verification: %v", err)
	}
	all, err := df.ReadAll()
	if err != nil || !all.Equal(buf) {
		t.Error("checksummed file payload mismatch")
	}
}

func TestPayloadChecksumDetectsCorruption(t *testing.T) {
	path, _ := writeChecksummed(t, 200)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the payload (headers end well before
	// half the file).
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	df, err := OpenDataFile(path)
	if err != nil {
		t.Fatal(err) // header is intact; open succeeds
	}
	defer df.Close()
	if err := df.VerifyPayload(); err == nil {
		t.Error("corrupt payload passed verification")
	}
}

func TestVerifyPayloadWithoutChecksum(t *testing.T) {
	path, _ := writeTestDataFile(t, 10)
	df, err := OpenDataFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	if err := df.VerifyPayload(); err == nil {
		t.Error("verification without stored checksum should fail")
	}
}

func TestChecksummedFileSizeValidation(t *testing.T) {
	path, _ := writeChecksummed(t, 50)
	raw, _ := os.ReadFile(path)
	// Dropping the trailing CRC must fail the size check.
	os.WriteFile(path, raw[:len(raw)-4], 0o644)
	if _, err := OpenDataFile(path); err == nil {
		t.Error("missing payload CRC trailer accepted")
	}
}

func TestReadRangeProjected(t *testing.T) {
	path, buf := writeTestDataFile(t, 120)
	df, err := OpenDataFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	p, err := particle.Uintah().Project([]string{"density"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := df.ReadRangeProjected(20, 80, p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 60 {
		t.Fatalf("len = %d", got.Len())
	}
	want := buf.Slice(20, 80)
	wantDens := want.Float64Field(want.Schema().FieldIndex("density"))
	gotDens := got.Float64Field(got.Schema().FieldIndex("density"))
	for i := 0; i < 60; i++ {
		if got.Position(i) != want.Position(i) || gotDens[i] != wantDens[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
	// Bad ranges and mismatched projections fail.
	if _, err := df.ReadRangeProjected(-1, 5, p); err == nil {
		t.Error("bad range accepted")
	}
	wrong, _ := particle.PositionOnly().Project(nil)
	if _, err := df.ReadRangeProjected(0, 5, wrong); err == nil {
		t.Error("projection from wrong schema accepted")
	}
}
