package format

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"spio/internal/fault"
	"spio/internal/geom"
	"spio/internal/lod"
	"spio/internal/particle"
)

// Spatial metadata file (paper Section 3.5, Fig. 4). One per dataset,
// written by rank 0 after an Allgather of aggregator bounding boxes. It
// maps every data file to the disjoint spatial partition whose particles
// it holds, letting readers open exactly the files intersecting a box
// query.
//
// Layout (little-endian):
//
//	magic "SPIOMETA" | version u32 | body CRC32
//	domain box | sim dims idx3 | partition factor idx3 | agg dims idx3
//	schema | lod params | heuristic u8 | total count u64
//	file count uvarint | entries...
//
// Each entry is: box index uvarint | agg rank uvarint | name string |
// partition box | tight bounds box | count u64 | range-summary flag u8
// [+ per-component min/max f64 pairs]. The per-component min/max is the
// range-query extension the paper plans in Section 3.5 ("storing, e.g.,
// the minimum and maximum values of scalar fields"); spio implements it
// behind a flag so paper-faithful files can omit it.

const (
	metaMagic   = "SPIOMETA"
	metaVersion = 1
	// MetaFileName is the canonical name of the metadata file inside a
	// dataset directory.
	MetaFileName = "meta.spmd"
)

// FileEntry is one row of the metadata table: one data file written by
// one aggregator.
type FileEntry struct {
	// BoxIndex is the row-major linear index of the aggregation
	// partition in the aggregation-grid (the "Box #" column of Fig. 4).
	BoxIndex int
	// AggRank is the writer rank (the "Agg rank" column); the file name
	// is derived from it.
	AggRank int
	// Name is the data file's name relative to the dataset directory.
	Name string
	// Partition is the aggregation partition box ("Low"/"High" columns):
	// disjoint from every other entry's, and covering the domain.
	Partition geom.Box
	// Bounds is the tight closed bounding box of the particles actually
	// present in the file (⊆ Partition up to boundary closure).
	Bounds geom.Box
	// Count is the number of particles in the file.
	Count int64
	// FieldMin/FieldMax, when present, hold per-component minima and
	// maxima of every schema field, flattened in schema order. Length is
	// either 0 or the schema's total component count.
	FieldMin, FieldMax []float64
}

// Meta is the decoded metadata file.
type Meta struct {
	// Domain is the full simulation domain.
	Domain geom.Box
	// SimDims is the simulation's patch decomposition (one patch per
	// writer rank).
	SimDims geom.Idx3
	// PartitionFactor is (Px, Py, Pz) of Section 3.1.
	PartitionFactor geom.Idx3
	// AggDims = SimDims / PartitionFactor is the aggregation-grid shape;
	// its volume is the file count for uniform datasets.
	AggDims geom.Idx3
	// Schema describes the particle records in every data file.
	Schema *particle.Schema
	// LOD and Heuristic describe the within-file ordering.
	LOD       lod.Params
	Heuristic lod.Heuristic
	// Total is the dataset-wide particle count.
	Total int64
	// Files lists every data file. For adaptive datasets entries may
	// cover only the occupied subdomain.
	Files []FileEntry
}

// Validate checks structural invariants: positive dims, every entry's
// partition inside the domain, disjoint partitions, counts summing to
// Total.
func (m *Meta) Validate() error {
	if m.Schema == nil {
		return fmt.Errorf("format: meta has no schema")
	}
	if err := m.LOD.Validate(); err != nil {
		return err
	}
	if m.Domain.IsEmpty() {
		return fmt.Errorf("format: meta domain %v is empty", m.Domain)
	}
	var sum int64
	comps := totalComponents(m.Schema)
	for i, f := range m.Files {
		if f.Count < 0 {
			return fmt.Errorf("format: file %d has negative count", i)
		}
		if !f.Partition.IsValid() || f.Partition.IsEmpty() {
			return fmt.Errorf("format: file %d partition %v invalid", i, f.Partition)
		}
		if !m.Domain.ContainsBox(f.Partition) {
			return fmt.Errorf("format: file %d partition %v escapes domain %v", i, f.Partition, m.Domain)
		}
		if len(f.FieldMin) != 0 && len(f.FieldMin) != comps {
			return fmt.Errorf("format: file %d has %d field minima, want 0 or %d", i, len(f.FieldMin), comps)
		}
		if len(f.FieldMin) != len(f.FieldMax) {
			return fmt.Errorf("format: file %d min/max length mismatch", i)
		}
		for j := 0; j < i; j++ {
			if m.Files[j].Partition.Intersects(f.Partition) {
				return fmt.Errorf("format: files %d and %d have overlapping partitions", j, i)
			}
		}
		sum += f.Count
	}
	if sum != m.Total {
		return fmt.Errorf("format: file counts sum to %d, meta total is %d", sum, m.Total)
	}
	return nil
}

func totalComponents(s *particle.Schema) int {
	n := 0
	for i := 0; i < s.NumFields(); i++ {
		n += s.Field(i).Components
	}
	return n
}

// FilesIntersecting returns the entries whose partition intersects q, in
// file order — the metadata-driven file selection of Section 4.
func (m *Meta) FilesIntersecting(q geom.Box) []*FileEntry {
	var out []*FileEntry
	for i := range m.Files {
		if m.Files[i].Partition.Intersects(q) {
			out = append(out, &m.Files[i])
		}
	}
	return out
}

// WriteMeta writes the metadata file into dir, atomically: the bytes
// land in a temp file that is fsynced and renamed over the canonical
// name (fsys nil means the real filesystem), so a reader either sees
// the previous metadata or the complete new table — never a torn one.
// Since the metadata is the dataset's commit record, this makes the
// whole write pipeline fail-stop: no meta.spmd, no dataset.
func WriteMeta(fsys fault.WriteFS, dir string, m *Meta) error {
	// The metadata is small: pre-encode the complete file so each
	// atomic-write attempt just replays the bytes.
	var full headerBuf
	if err := EncodeMeta(&full, m); err != nil {
		return err
	}
	return writeFileAtomic(fsOrOS(fsys), filepath.Join(dir, MetaFileName), func(w io.Writer) error {
		_, err := w.Write(full.b)
		return err
	})
}

// EncodeMeta serializes the complete metadata file image — magic,
// version, checksum, body — to w. It is the wire twin of WriteMeta: a
// dataset-serving daemon ships exactly these bytes to remote clients,
// so the remote and on-disk representations cannot drift.
func EncodeMeta(w io.Writer, m *Meta) error {
	if err := m.Validate(); err != nil {
		return err
	}

	var body headerBuf
	e := newWriter(&body)
	e.box(m.Domain)
	e.idx3(m.SimDims)
	e.idx3(m.PartitionFactor)
	e.idx3(m.AggDims)
	encodeSchema(e, m.Schema)
	e.uvarint(uint64(m.LOD.BasePerReader))
	e.uvarint(uint64(m.LOD.Scale))
	e.u8(uint8(m.Heuristic))
	e.u64(uint64(m.Total))
	e.uvarint(uint64(len(m.Files)))
	for _, fe := range m.Files {
		e.uvarint(uint64(fe.BoxIndex))
		e.uvarint(uint64(fe.AggRank))
		e.str(fe.Name)
		e.box(fe.Partition)
		e.box(fe.Bounds)
		e.u64(uint64(fe.Count))
		if len(fe.FieldMin) > 0 {
			e.u8(1)
			for i := range fe.FieldMin {
				e.f64(fe.FieldMin[i])
				e.f64(fe.FieldMax[i])
			}
		} else {
			e.u8(0)
		}
	}
	if e.err != nil {
		return e.err
	}

	out := newWriter(w)
	out.bytes([]byte(metaMagic))
	out.u32(metaVersion)
	out.u32(crc32.ChecksumIEEE(body.b))
	out.bytes(body.b)
	return out.err
}

// ReadMeta reads and validates the metadata file in dir.
func ReadMeta(dir string) (*Meta, error) {
	path := filepath.Join(dir, MetaFileName)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return decodeMeta(bufio.NewReader(f), path)
}

// DecodeMeta decodes a metadata file image produced by EncodeMeta (or
// read from disk) from r.
func DecodeMeta(r io.Reader) (*Meta, error) {
	return decodeMeta(r, "metadata")
}

// decodeMeta decodes and validates one metadata image; path labels
// errors.
func decodeMeta(r io.Reader, path string) (*Meta, error) {
	var err error
	d := newReader(r)
	magic := make([]byte, len(metaMagic))
	d.bytes(magic)
	if d.err == nil && string(magic) != metaMagic {
		return nil, fmt.Errorf("format: %s: not a spio metadata file", path)
	}
	version := d.u32()
	if d.err == nil && version != metaVersion {
		return nil, fmt.Errorf("format: %s: unsupported metadata version %d", path, version)
	}
	wantCRC := d.u32()
	if d.err != nil {
		return nil, d.err
	}
	d.crc = 0

	var m Meta
	m.Domain = d.boxv()
	m.SimDims = d.idx3()
	m.PartitionFactor = d.idx3()
	m.AggDims = d.idx3()
	m.Schema, err = decodeSchema(d)
	if err != nil {
		return nil, fmt.Errorf("format: %s: %w", path, err)
	}
	m.LOD.BasePerReader = int(d.uvarint())
	m.LOD.Scale = int(d.uvarint())
	m.Heuristic = lod.Heuristic(d.u8())
	m.Total = int64(d.u64())
	nFiles := d.uvarint()
	if d.err != nil {
		return nil, fmt.Errorf("format: %s: %w", path, d.err)
	}
	if nFiles > 1<<28 {
		return nil, fmt.Errorf("format: %s: implausible file count %d", path, nFiles)
	}
	comps := totalComponents(m.Schema)
	m.Files = make([]FileEntry, nFiles)
	for i := range m.Files {
		fe := &m.Files[i]
		fe.BoxIndex = int(d.uvarint())
		fe.AggRank = int(d.uvarint())
		fe.Name = d.str(maxFieldName)
		fe.Partition = d.boxv()
		fe.Bounds = d.boxv()
		fe.Count = int64(d.u64())
		if d.u8() != 0 {
			fe.FieldMin = make([]float64, comps)
			fe.FieldMax = make([]float64, comps)
			for j := 0; j < comps; j++ {
				fe.FieldMin[j] = d.f64()
				fe.FieldMax[j] = d.f64()
			}
		}
		if d.err != nil {
			return nil, fmt.Errorf("format: %s: %w", path, d.err)
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("format: %s: %w", path, d.err)
	}
	if d.crc != wantCRC {
		return nil, fmt.Errorf("format: %s: checksum mismatch", path)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("format: %s: %w", path, err)
	}
	return &m, nil
}
