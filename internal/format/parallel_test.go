package format

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"spio/internal/particle"
)

// mapDecodedCache is a minimal DecodedBlockCache for seam tests: an
// unbounded map with hit/put counters.
type mapDecodedCache struct {
	mu     sync.Mutex
	blocks map[int][]byte
	hits   int
	puts   int
}

func newMapDecodedCache() *mapDecodedCache {
	return &mapDecodedCache{blocks: map[int][]byte{}}
}

func (c *mapDecodedCache) GetBlock(bi int) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	recs := c.blocks[bi]
	if recs != nil {
		c.hits++
	}
	return recs
}

func (c *mapDecodedCache) PutBlock(bi int, recs []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.blocks[bi]; !dup {
		c.blocks[bi] = recs
		c.puts++
	}
}

// TestDecodedTierServesRepeatReads pins the decoded-tier seam: repeat
// range reads must hit the tier instead of re-inflating, and every
// answer must stay byte-identical to the raw layout.
func TestDecodedTierServesRepeatReads(t *testing.T) {
	raw, comp, _ := writeCodecPair(t, 3000, particle.LosslessSpec(particle.Uintah()), false)
	rf, err := OpenDataFile(raw)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	cf, err := OpenDataFile(comp)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	tier := newMapDecodedCache()
	cf.SetDecodedCache(tier)

	r := rand.New(rand.NewSource(31))
	count := cf.Header.Count
	for pass := 0; pass < 2; pass++ {
		r = rand.New(rand.NewSource(31)) // identical ranges both passes
		for i := 0; i < 25; i++ {
			lo := r.Int63n(count)
			hi := lo + 1 + r.Int63n(count-lo)
			want, err := rf.ReadRange(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cf.ReadRange(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("pass %d range [%d,%d): decoded-tier read diverges from raw", pass, lo, hi)
			}
		}
	}
	tier.mu.Lock()
	hits, puts := tier.hits, tier.puts
	tier.mu.Unlock()
	if puts == 0 || hits == 0 {
		t.Errorf("decoded tier unused: %d puts, %d hits", puts, hits)
	}
	if hits < puts {
		t.Errorf("second pass over identical ranges should hit more than it fills: %d hits < %d puts", hits, puts)
	}
}

// TestConcurrentPayloadRangeSharedFile is the -race stress of the
// read→decode pipeline: many goroutines drive random overlapping ranges
// through ONE DataFile — shared decode fan-out, shared decoded tier,
// shared readahead state — and every result must match the raw ground
// truth. GOMAXPROCS is raised so the workers genuinely interleave on
// the single-CPU CI machine.
func TestConcurrentPayloadRangeSharedFile(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	raw, comp, _ := writeCodecPair(t, 5000, particle.LosslessSpec(particle.Uintah()), false)
	rf, err := OpenDataFile(raw)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	want, err := rf.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	truth := want.Encode()
	stride := int64(want.Schema().Stride())

	for _, tier := range []bool{false, true} {
		cf, err := OpenDataFile(comp)
		if err != nil {
			t.Fatal(err)
		}
		if tier {
			cf.SetDecodedCache(newMapDecodedCache())
		}
		count := cf.Header.Count
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for i := 0; i < 40; i++ {
					var lo, hi int64
					if r.Intn(3) == 0 {
						hi = 1 + r.Int63n(count) // prefix: arms the readahead
					} else {
						lo = r.Int63n(count)
						hi = lo + 1 + r.Int63n(count-lo)
					}
					got, err := cf.ReadRange(lo, hi)
					if err != nil {
						t.Errorf("range [%d,%d): %v", lo, hi, err)
						return
					}
					ref, err := particle.Decode(want.Schema(), truth[lo*stride:hi*stride])
					if err != nil {
						t.Error(err)
						return
					}
					if !got.Equal(ref) {
						t.Errorf("tier=%v range [%d,%d): concurrent read diverged", tier, lo, hi)
						return
					}
				}
			}(int64(g))
		}
		wg.Wait()
		cf.raWG.Wait() // readahead must settle before the file closes under -race
		if err := cf.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSequentialReadaheadWarmsTier pins the prefetch contract: a
// sequential (prefix-shaped) read arms a readahead of the next block,
// which lands whole in the decoded tier before any foreground read
// wants it.
func TestSequentialReadaheadWarmsTier(t *testing.T) {
	_, comp, _ := writeCodecPair(t, 6000, particle.LosslessSpec(particle.Uintah()), false)
	cf, err := OpenDataFile(comp)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if len(cf.blockRecs) < 4 {
		t.Skipf("only %d blocks; need 3+ for a readahead target", len(cf.blockRecs)-1)
	}
	tier := newMapDecodedCache()
	cf.SetDecodedCache(tier)

	// A prefix read covering block 0 only: blocks [0,1) decode, block 1
	// is the readahead target.
	if _, err := cf.ReadRange(0, cf.blockRecs[1]); err != nil {
		t.Fatal(err)
	}
	cf.raWG.Wait()
	tier.mu.Lock()
	_, warmed := tier.blocks[1]
	tier.mu.Unlock()
	if !warmed {
		t.Error("sequential prefix read did not warm the next block into the decoded tier")
	}

	// A random (non-sequential) read must not arm it: block 3 stays cold
	// after a read ending inside block 2 that did not start at lastHi.
	cold, err := OpenDataFile(comp)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	tier2 := newMapDecodedCache()
	cold.SetDecodedCache(tier2)
	cold.lastHi.Store(-1) // no prior read
	mid := cold.blockRecs[2] + 1
	if _, err := cold.ReadRange(mid, cold.blockRecs[3]); err != nil {
		t.Fatal(err)
	}
	cold.raWG.Wait()
	tier2.mu.Lock()
	_, armed := tier2.blocks[3]
	tier2.mu.Unlock()
	if armed {
		t.Error("non-sequential read armed the readahead")
	}
}
