package particle

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Per-field compression codecs over the AoS record encoding. A block of
// records (already in LOD order — compression happens strictly after the
// reorder, so any block prefix of the file remains a valid LOD prefix)
// is compressed field by field: each field's column is extracted from
// the record image, run through its codec, and framed with the codec
// identity and payload length. The frame is self-describing — the
// decoder follows the per-field codec bytes, never a side-channel spec —
// so a writer is free to fall back per field (and per block) when a
// codec does not apply, and old payloads decode under new specs.
//
// Block layout, fields in schema order:
//
//	codec u8 | payload length uvarint | payload
//
// CodecRaw is id 0 everywhere (disk flag, wire byte, field byte):
// absent/zero always means "the uncompressed AoS bytes", which is what
// keeps pre-codec files and peers readable unchanged.

// CodecID identifies one field compression codec.
type CodecID uint8

const (
	// CodecRaw stores the column bytes verbatim.
	CodecRaw CodecID = 0
	// CodecShuffleDeflate byte-plane-transposes the column (all first
	// bytes, then all second bytes, ...) and deflates the result;
	// lossless for any field. The shuffle groups the slowly-varying
	// sign/exponent bytes of neighbouring values so flate sees long
	// runs.
	CodecShuffleDeflate CodecID = 1
	// CodecDeltaVarint encodes integer-valued float64 columns (particle
	// ids, type tags) as zigzag varints of consecutive differences;
	// lossless. Falls back to CodecShuffleDeflate when a value is not an
	// exact integer.
	CodecDeltaVarint CodecID = 2
	// CodecQuantize is the error-bounded lossy codec for float64
	// coordinates: per component it stores a minimum and a step, then
	// each value as the uvarint round((v-min)/step). Reconstruction
	// error is at most FieldCodec.ErrBound. Falls back to
	// CodecShuffleDeflate when a value is non-finite or the range is too
	// wide for the bound.
	CodecQuantize CodecID = 3

	codecMax = CodecQuantize
)

func (c CodecID) String() string {
	switch c {
	case CodecRaw:
		return "raw"
	case CodecShuffleDeflate:
		return "shuffle+deflate"
	case CodecDeltaVarint:
		return "delta+varint"
	case CodecQuantize:
		return "quantize"
	}
	return fmt.Sprintf("codec(%d)", uint8(c))
}

// FieldCodec is one field's compression choice. ErrBound is meaningful
// only for CodecQuantize: the largest absolute reconstruction error the
// codec may introduce (must be positive).
type FieldCodec struct {
	ID       CodecID
	ErrBound float64
}

// Spec assigns a codec to every field of a schema, in schema order. The
// zero value (no fields) is the raw spec: no compression anywhere.
type Spec struct {
	Fields []FieldCodec
}

// IsRaw reports whether the spec compresses nothing.
func (s Spec) IsRaw() bool {
	for _, f := range s.Fields {
		if f.ID != CodecRaw {
			return false
		}
	}
	return true
}

// Validate checks the spec against a schema: one entry per field (or
// none at all), known codec ids, positive error bounds where required,
// and quantize only on float64 fields.
func (s Spec) Validate(schema *Schema) error {
	if len(s.Fields) == 0 {
		return nil
	}
	if len(s.Fields) != schema.NumFields() {
		return fmt.Errorf("particle: codec spec has %d entries, schema has %d fields", len(s.Fields), schema.NumFields())
	}
	for i, fc := range s.Fields {
		f := schema.Field(i)
		if fc.ID > codecMax {
			return fmt.Errorf("particle: field %q: unknown codec %d", f.Name, fc.ID)
		}
		if fc.ID == CodecQuantize {
			if f.Kind != Float64 {
				return fmt.Errorf("particle: field %q: quantize requires float64, got %v", f.Name, f.Kind)
			}
			if !(fc.ErrBound > 0) || math.IsInf(fc.ErrBound, 0) {
				return fmt.Errorf("particle: field %q: quantize needs a positive finite error bound, got %v", f.Name, fc.ErrBound)
			}
		} else if fc.ErrBound != 0 {
			return fmt.Errorf("particle: field %q: error bound set on lossless codec %v", f.Name, fc.ID)
		}
	}
	return nil
}

// Lossy reports whether any field uses an error-introducing codec.
func (s Spec) Lossy() bool {
	for _, f := range s.Fields {
		if f.ID == CodecQuantize {
			return true
		}
	}
	return false
}

// idLikeField reports whether a field holds integer-valued labels
// (particle ids, material/type tags) that delta-coding exploits.
func idLikeField(f Field) bool {
	return f.Name == "id" || f.Name == "type"
}

// coordField reports whether a field holds spatial coordinates that an
// error-bounded lossy codec may target.
func coordField(f Field) bool {
	return f.Name == PositionField || f.Name == "velocity"
}

// LosslessSpec compresses every field without loss: delta/varint for
// id-like integer fields, byte-shuffle + deflate for everything else.
func LosslessSpec(schema *Schema) Spec {
	s := Spec{Fields: make([]FieldCodec, schema.NumFields())}
	for i := range s.Fields {
		f := schema.Field(i)
		if idLikeField(f) && f.Kind == Float64 {
			s.Fields[i] = FieldCodec{ID: CodecDeltaVarint}
		} else {
			s.Fields[i] = FieldCodec{ID: CodecShuffleDeflate}
		}
	}
	return s
}

// LossySpec is LosslessSpec with error-bounded quantization (absolute
// error at most bound) on float64 coordinate fields (position,
// velocity). Ids and every other field stay lossless.
func LossySpec(schema *Schema, bound float64) Spec {
	s := LosslessSpec(schema)
	for i := range s.Fields {
		f := schema.Field(i)
		if coordField(f) && f.Kind == Float64 {
			s.Fields[i] = FieldCodec{ID: CodecQuantize, ErrBound: bound}
		}
	}
	return s
}

// ParseCodecSpec builds a spec from the CLI surface syntax: "none" (or
// "raw", ""), "lossless", or "lossy:<bound>" (e.g. "lossy:1e-3").
func ParseCodecSpec(schema *Schema, s string) (Spec, error) {
	switch s {
	case "", "none", "raw":
		return Spec{}, nil
	case "lossless":
		return LosslessSpec(schema), nil
	}
	if rest, ok := strings.CutPrefix(s, "lossy:"); ok {
		bound, err := strconv.ParseFloat(rest, 64)
		if err != nil || !(bound > 0) || math.IsInf(bound, 0) {
			return Spec{}, fmt.Errorf("particle: bad lossy error bound %q", rest)
		}
		return LossySpec(schema, bound), nil
	}
	return Spec{}, fmt.Errorf("particle: unknown codec spec %q (want none, lossless, or lossy:<bound>)", s)
}

// CompressBlock compresses one block of AoS records (a whole number of
// records in LOD order) under the spec, returning the self-describing
// per-field frame. Codecs that do not apply to the data at hand fall
// back per field — quantize on non-finite values or over-wide ranges,
// delta on non-integer values — and any compressed column that would
// exceed the raw column is stored raw, so a compressed block never
// costs more than the records plus a few framing bytes per field.
func CompressBlock(schema *Schema, spec Spec, records []byte) ([]byte, error) {
	if err := spec.Validate(schema); err != nil {
		return nil, err
	}
	stride := schema.Stride()
	if len(records)%stride != 0 {
		return nil, fmt.Errorf("particle: %d bytes is not a multiple of record size %d", len(records), stride)
	}
	count := len(records) / stride
	out := make([]byte, 0, len(records)/2+16*schema.NumFields())
	var varbuf [binary.MaxVarintLen64]byte
	for fi := 0; fi < schema.NumFields(); fi++ {
		f := schema.Field(fi)
		col := make([]byte, count*f.Bytes())
		gatherColumn(records, stride, schema.Offset(fi), f.Bytes(), col)

		want := CodecRaw
		var bound float64
		if len(spec.Fields) > 0 {
			want = spec.Fields[fi].ID
			bound = spec.Fields[fi].ErrBound
		}
		id, payload := encodeColumn(f, want, bound, col, count)
		if len(payload) >= len(col) {
			id, payload = CodecRaw, col
		}
		out = append(out, byte(id))
		n := binary.PutUvarint(varbuf[:], uint64(len(payload)))
		out = append(out, varbuf[:n]...)
		out = append(out, payload...)
	}
	return out, nil
}

// encodeColumn applies the wanted codec to one field column, degrading
// to shuffle+deflate when the codec's preconditions fail.
func encodeColumn(f Field, want CodecID, bound float64, col []byte, count int) (CodecID, []byte) {
	switch want {
	case CodecDeltaVarint:
		if f.Kind == Float64 {
			if p, ok := encodeDeltaVarint(col, count*f.Components); ok {
				return CodecDeltaVarint, p
			}
		}
		return CodecShuffleDeflate, encodeShuffleDeflate(col, f.Kind.Size())
	case CodecQuantize:
		if p, ok := encodeQuantize(col, count, f.Components, bound); ok {
			return CodecQuantize, p
		}
		return CodecShuffleDeflate, encodeShuffleDeflate(col, f.Kind.Size())
	case CodecShuffleDeflate:
		return CodecShuffleDeflate, encodeShuffleDeflate(col, f.Kind.Size())
	default:
		return CodecRaw, col
	}
}

// DecompressBlock reverses CompressBlock: data is one block frame, count
// the record count it holds; the result is exactly count*Stride() AoS
// bytes. data may arrive from disk or the network, so every length is
// bounds-checked against count before it sizes an allocation.
func DecompressBlock(schema *Schema, data []byte, count int) ([]byte, error) {
	if count < 0 {
		return nil, fmt.Errorf("particle: negative record count %d", count)
	}
	stride := schema.Stride()
	records := make([]byte, count*stride)
	for fi := 0; fi < schema.NumFields(); fi++ {
		f := schema.Field(fi)
		if len(data) < 1 {
			return nil, fmt.Errorf("particle: compressed block ends before field %q", f.Name)
		}
		id := CodecID(data[0])
		data = data[1:]
		plen, n := binary.Uvarint(data)
		if n <= 0 || plen > uint64(len(data)-n) {
			return nil, fmt.Errorf("particle: field %q: bad compressed payload length", f.Name)
		}
		payload := data[n : n+int(plen)]
		data = data[n+int(plen):]

		colLen := count * f.Bytes()
		var col []byte
		var err error
		switch id {
		case CodecRaw:
			if len(payload) != colLen {
				return nil, fmt.Errorf("particle: field %q: raw column has %d bytes, want %d", f.Name, len(payload), colLen)
			}
			col = payload
		case CodecShuffleDeflate:
			col, err = decodeShuffleDeflate(payload, f.Kind.Size(), colLen)
		case CodecDeltaVarint:
			if f.Kind != Float64 {
				return nil, fmt.Errorf("particle: field %q: delta codec on %v column", f.Name, f.Kind)
			}
			col, err = decodeDeltaVarint(payload, count*f.Components)
		case CodecQuantize:
			if f.Kind != Float64 {
				return nil, fmt.Errorf("particle: field %q: quantize codec on %v column", f.Name, f.Kind)
			}
			col, err = decodeQuantize(payload, count, f.Components)
		default:
			return nil, fmt.Errorf("particle: field %q: unknown codec %d", f.Name, id)
		}
		if err != nil {
			return nil, fmt.Errorf("particle: field %q: %w", f.Name, err)
		}
		scatterColumn(records, stride, schema.Offset(fi), f.Bytes(), col)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("particle: %d trailing bytes after compressed block", len(data))
	}
	return records, nil
}

// gatherColumn extracts one field's bytes from an AoS record image into
// col (count*w bytes, record-major).
func gatherColumn(records []byte, stride, off, w int, col []byte) {
	count := len(col) / w
	for i := 0; i < count; i++ {
		copy(col[i*w:(i+1)*w], records[i*stride+off:i*stride+off+w])
	}
}

// scatterColumn writes one field's bytes back into an AoS record image.
func scatterColumn(records []byte, stride, off, w int, col []byte) {
	count := len(col) / w
	for i := 0; i < count; i++ {
		copy(records[i*stride+off:i*stride+off+w], col[i*w:(i+1)*w])
	}
}

// encodeShuffleDeflate byte-plane-transposes the column — all values'
// byte 0, then all byte 1, ... — and deflates the planes. sz is the
// component byte width (4 or 8).
func encodeShuffleDeflate(col []byte, sz int) []byte {
	nelem := len(col) / sz
	shuf := make([]byte, len(col))
	for plane := 0; plane < sz; plane++ {
		row := shuf[plane*nelem : (plane+1)*nelem]
		for e := 0; e < nelem; e++ {
			row[e] = col[e*sz+plane]
		}
	}
	var zb bytes.Buffer
	zw, err := flate.NewWriter(&zb, flate.BestSpeed)
	if err != nil {
		// flate.NewWriter only fails on an invalid level, which BestSpeed
		// is not.
		panic(err)
	}
	_, _ = zw.Write(shuf) // bytes.Buffer writes cannot fail
	_ = zw.Close()
	return zb.Bytes()
}

// decodeShuffleDeflate inflates and un-shuffles a column of colLen bytes.
func decodeShuffleDeflate(payload []byte, sz, colLen int) ([]byte, error) {
	shuf := make([]byte, colLen)
	zr := flate.NewReader(bytes.NewReader(payload))
	if _, err := io.ReadFull(zr, shuf); err != nil {
		return nil, fmt.Errorf("inflate: %w", err)
	}
	// The stream must end exactly at the column boundary; trailing data
	// means a corrupt or hostile frame.
	var one [1]byte
	if n, _ := zr.Read(one[:]); n != 0 {
		return nil, fmt.Errorf("inflate: stream longer than column")
	}
	_ = zr.Close()
	col := make([]byte, colLen)
	nelem := colLen / sz
	for plane := 0; plane < sz; plane++ {
		row := shuf[plane*nelem : (plane+1)*nelem]
		for e := 0; e < nelem; e++ {
			col[e*sz+plane] = row[e]
		}
	}
	return col, nil
}

// maxExactInt is the largest magnitude delta-coded values may take:
// beyond 2^53 float64 no longer represents every integer, so the
// int64 round-trip below would silently lose bits.
const maxExactInt = int64(1) << 53

// encodeDeltaVarint encodes nelem float64 values as zigzag varints of
// consecutive integer differences. ok is false when any value is not an
// exactly-representable integer (the caller falls back to a lossless
// byte codec).
func encodeDeltaVarint(col []byte, nelem int) ([]byte, bool) {
	out := make([]byte, 0, nelem+16)
	var varbuf [binary.MaxVarintLen64]byte
	prev := int64(0)
	for e := 0; e < nelem; e++ {
		v := math.Float64frombits(binary.LittleEndian.Uint64(col[e*8:]))
		iv := int64(v)
		if float64(iv) != v || iv > maxExactInt || iv < -maxExactInt {
			return nil, false
		}
		n := binary.PutVarint(varbuf[:], iv-prev)
		out = append(out, varbuf[:n]...)
		prev = iv
	}
	return out, true
}

// decodeDeltaVarint reverses encodeDeltaVarint into a float64 column.
func decodeDeltaVarint(payload []byte, nelem int) ([]byte, error) {
	col := make([]byte, nelem*8)
	prev := int64(0)
	for e := 0; e < nelem; e++ {
		d, n := binary.Varint(payload)
		if n <= 0 {
			return nil, fmt.Errorf("delta stream ends at element %d of %d", e, nelem)
		}
		payload = payload[n:]
		prev += d
		binary.LittleEndian.PutUint64(col[e*8:], math.Float64bits(float64(prev)))
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("%d trailing bytes in delta stream", len(payload))
	}
	return col, nil
}

// maxQuantLevels bounds the quantization index so the float round-trip
// q = round((v-min)/step); v' = min + q*step stays exact in the integer
// part; ranges needing more levels fall back to lossless.
const maxQuantLevels = float64(int64(1) << 51)

// encodeQuantize encodes a float64 column of count records × comps
// components with per-component affine quantization: f64 min, f64 max,
// f64 step, then count uvarint indices per component (component-major).
// The reconstruction min(min + q*step, max) is within bound of the
// original; the max clamp matters because rounding alone can overshoot
// the column's true range by step/2 — enough to push a boundary
// particle outside its partition (or the domain) and fail a deep fsck.
// ok is false when a value is non-finite or a component's range needs
// too many levels for the bound.
func encodeQuantize(col []byte, count, comps int, bound float64) ([]byte, bool) {
	val := func(i, k int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(col[(i*comps+k)*8:]))
	}
	out := make([]byte, 0, count*comps*2+24*comps)
	var varbuf [binary.MaxVarintLen64]byte
	for k := 0; k < comps; k++ {
		mn, mx := math.Inf(1), math.Inf(-1)
		for i := 0; i < count; i++ {
			v := val(i, k)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, false
			}
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if count == 0 {
			mn, mx = 0, 0
		}
		step := bound
		if (mx-mn)/step > maxQuantLevels {
			return nil, false
		}
		var b8 [8]byte
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(mn))
		out = append(out, b8[:]...)
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(mx))
		out = append(out, b8[:]...)
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(step))
		out = append(out, b8[:]...)
		for i := 0; i < count; i++ {
			q := math.Round((val(i, k) - mn) / step)
			n := binary.PutUvarint(varbuf[:], uint64(q))
			out = append(out, varbuf[:n]...)
		}
	}
	return out, true
}

// decodeQuantize reverses encodeQuantize into a float64 column.
func decodeQuantize(payload []byte, count, comps int) ([]byte, error) {
	col := make([]byte, count*comps*8)
	for k := 0; k < comps; k++ {
		if len(payload) < 24 {
			return nil, fmt.Errorf("quantize stream ends in component %d header", k)
		}
		mn := math.Float64frombits(binary.LittleEndian.Uint64(payload))
		mx := math.Float64frombits(binary.LittleEndian.Uint64(payload[8:]))
		step := math.Float64frombits(binary.LittleEndian.Uint64(payload[16:]))
		payload = payload[24:]
		for i := 0; i < count; i++ {
			q, n := binary.Uvarint(payload)
			if n <= 0 {
				return nil, fmt.Errorf("quantize stream ends at record %d of %d", i, count)
			}
			payload = payload[n:]
			v := mn + float64(q)*step
			// Rounding can overshoot the column range by step/2; clamping
			// back to it only moves the value toward the original, so the
			// error bound is preserved and boundary particles stay inside
			// their partition.
			if v > mx {
				v = mx
			}
			binary.LittleEndian.PutUint64(col[(i*comps+k)*8:], math.Float64bits(v))
		}
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("%d trailing bytes in quantize stream", len(payload))
	}
	return col, nil
}
