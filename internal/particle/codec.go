package particle

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Per-field compression codecs over the AoS record encoding. A block of
// records (already in LOD order — compression happens strictly after the
// reorder, so any block prefix of the file remains a valid LOD prefix)
// is compressed field by field: each field's column is extracted from
// the record image, run through its codec, and framed with the codec
// identity and payload length. The frame is self-describing — the
// decoder follows the per-field codec bytes, never a side-channel spec —
// so a writer is free to fall back per field (and per block) when a
// codec does not apply, and old payloads decode under new specs.
//
// Block layout, fields in schema order:
//
//	codec u8 | payload length uvarint | payload
//
// CodecRaw is id 0 everywhere (disk flag, wire byte, field byte):
// absent/zero always means "the uncompressed AoS bytes", which is what
// keeps pre-codec files and peers readable unchanged.
//
// All (de)compression entry points share pooled codec state (flate
// writer/reader, LZ match table, shuffle scratch — see codec_state.go),
// so steady-state compression of a block stream allocates only the
// output frames themselves.

// CodecID identifies one field compression codec.
type CodecID uint8

const (
	// CodecRaw stores the column bytes verbatim.
	CodecRaw CodecID = 0
	// CodecShuffleDeflate byte-plane-transposes the column (all first
	// bytes, then all second bytes, ...) and deflates the result;
	// lossless for any field. The shuffle groups the slowly-varying
	// sign/exponent bytes of neighbouring values so flate sees long
	// runs.
	CodecShuffleDeflate CodecID = 1
	// CodecDeltaVarint encodes integer-valued float64 columns (particle
	// ids, type tags) as zigzag varints of consecutive differences;
	// lossless. Falls back to CodecShuffleDeflate when a value is not an
	// exact integer.
	CodecDeltaVarint CodecID = 2
	// CodecQuantize is the error-bounded lossy codec for float64
	// coordinates: per component it stores a minimum and a step, then
	// each value as the uvarint round((v-min)/step). Reconstruction
	// error is at most FieldCodec.ErrBound. Falls back to
	// CodecShuffleDeflate when a value is non-finite or the range is too
	// wide for the bound.
	CodecQuantize CodecID = 3
	// CodecShuffleLZ byte-plane-transposes the column and runs the
	// planes through the fast LZ codec (lz.go) instead of flate;
	// lossless for any field. It trades a few percent of ratio for
	// several times the codec throughput, which is the right trade
	// wherever the codec competes with the network or a warm cache
	// rather than a cold disk.
	CodecShuffleLZ CodecID = 4

	codecMax = CodecShuffleLZ
)

func (c CodecID) String() string {
	switch c {
	case CodecRaw:
		return "raw"
	case CodecShuffleDeflate:
		return "shuffle+deflate"
	case CodecDeltaVarint:
		return "delta+varint"
	case CodecQuantize:
		return "quantize"
	case CodecShuffleLZ:
		return "shuffle+lz"
	}
	return fmt.Sprintf("codec(%d)", uint8(c))
}

// FieldCodec is one field's compression choice. ErrBound is meaningful
// only for CodecQuantize: the largest absolute reconstruction error the
// codec may introduce (must be positive).
type FieldCodec struct {
	ID       CodecID
	ErrBound float64
}

// Spec assigns a codec to every field of a schema, in schema order. The
// zero value (no fields) is the raw spec: no compression anywhere.
type Spec struct {
	Fields []FieldCodec
}

// IsRaw reports whether the spec compresses nothing.
func (s Spec) IsRaw() bool {
	for _, f := range s.Fields {
		if f.ID != CodecRaw {
			return false
		}
	}
	return true
}

// Validate checks the spec against a schema: one entry per field (or
// none at all), known codec ids, positive error bounds where required,
// and quantize only on float64 fields.
func (s Spec) Validate(schema *Schema) error {
	if len(s.Fields) == 0 {
		return nil
	}
	if len(s.Fields) != schema.NumFields() {
		return fmt.Errorf("particle: codec spec has %d entries, schema has %d fields", len(s.Fields), schema.NumFields())
	}
	for i, fc := range s.Fields {
		f := schema.Field(i)
		if fc.ID > codecMax {
			return fmt.Errorf("particle: field %q: unknown codec %d", f.Name, fc.ID)
		}
		if fc.ID == CodecQuantize {
			if f.Kind != Float64 {
				return fmt.Errorf("particle: field %q: quantize requires float64, got %v", f.Name, f.Kind)
			}
			if !(fc.ErrBound > 0) || math.IsInf(fc.ErrBound, 0) {
				return fmt.Errorf("particle: field %q: quantize needs a positive finite error bound, got %v", f.Name, fc.ErrBound)
			}
		} else if fc.ErrBound != 0 {
			return fmt.Errorf("particle: field %q: error bound set on lossless codec %v", f.Name, fc.ID)
		}
	}
	return nil
}

// Lossy reports whether any field uses an error-introducing codec.
func (s Spec) Lossy() bool {
	for _, f := range s.Fields {
		if f.ID == CodecQuantize {
			return true
		}
	}
	return false
}

// idLikeField reports whether a field holds integer-valued labels
// (particle ids, material/type tags) that delta-coding exploits.
func idLikeField(f Field) bool {
	return f.Name == "id" || f.Name == "type"
}

// coordField reports whether a field holds spatial coordinates that an
// error-bounded lossy codec may target.
func coordField(f Field) bool {
	return f.Name == PositionField || f.Name == "velocity"
}

// LosslessSpec compresses every field without loss: delta/varint for
// id-like integer fields, byte-shuffle + deflate for everything else.
// It is the disk default, where ratio buys read bandwidth.
func LosslessSpec(schema *Schema) Spec {
	s := Spec{Fields: make([]FieldCodec, schema.NumFields())}
	for i := range s.Fields {
		f := schema.Field(i)
		if idLikeField(f) && f.Kind == Float64 {
			s.Fields[i] = FieldCodec{ID: CodecDeltaVarint}
		} else {
			s.Fields[i] = FieldCodec{ID: CodecShuffleDeflate}
		}
	}
	return s
}

// FastSpec compresses every field without loss, preferring codec
// throughput over the last few percent of ratio: delta/varint for
// id-like integer fields, byte-shuffle + LZ for everything else. It is
// the wire default, where the codec competes with the network and a
// slow codec costs more time than the saved bytes recover.
func FastSpec(schema *Schema) Spec {
	s := Spec{Fields: make([]FieldCodec, schema.NumFields())}
	for i := range s.Fields {
		f := schema.Field(i)
		if idLikeField(f) && f.Kind == Float64 {
			s.Fields[i] = FieldCodec{ID: CodecDeltaVarint}
		} else {
			s.Fields[i] = FieldCodec{ID: CodecShuffleLZ}
		}
	}
	return s
}

// LossySpec is LosslessSpec with error-bounded quantization (absolute
// error at most bound) on float64 coordinate fields (position,
// velocity). Ids and every other field stay lossless.
func LossySpec(schema *Schema, bound float64) Spec {
	s := LosslessSpec(schema)
	for i := range s.Fields {
		f := schema.Field(i)
		if coordField(f) && f.Kind == Float64 {
			s.Fields[i] = FieldCodec{ID: CodecQuantize, ErrBound: bound}
		}
	}
	return s
}

// ParseCodecSpec builds a spec from the CLI surface syntax: "none" (or
// "raw", ""), "lossless", "fast", or "lossy:<bound>" (e.g. "lossy:1e-3").
func ParseCodecSpec(schema *Schema, s string) (Spec, error) {
	switch s {
	case "", "none", "raw":
		return Spec{}, nil
	case "lossless":
		return LosslessSpec(schema), nil
	case "fast":
		return FastSpec(schema), nil
	}
	if rest, ok := strings.CutPrefix(s, "lossy:"); ok {
		bound, err := strconv.ParseFloat(rest, 64)
		if err != nil || !(bound > 0) || math.IsInf(bound, 0) {
			return Spec{}, fmt.Errorf("particle: bad lossy error bound %q", rest)
		}
		return LossySpec(schema, bound), nil
	}
	return Spec{}, fmt.Errorf("particle: unknown codec spec %q (want none, lossless, fast, or lossy:<bound>)", s)
}

// Narrowing probes: NarrowSpec compresses this many leading records to
// learn which fields pay for their codec, and keeps a field compressed
// only when the probe recovered at least narrowKeepNum/narrowKeepDen of
// its bytes. One part in ten is the wire break-even: below that, the
// encoder spends more time than the saved bytes are worth on any link
// faster than a few hundred Mbps.
const (
	narrowProbeRecords = 1024
	narrowKeepNum      = 1
	narrowKeepDen      = 10
)

// NarrowSpec returns spec with fields that do not pay for their codec
// demoted to CodecRaw, learned by compressing a probe prefix of records
// (up to narrowProbeRecords of them). A field is demoted when its probe
// frame came back raw or recovered less than a tenth of the column
// bytes — noisy float columns whose shuffled planes are mostly mantissa
// entropy cost full codec time for a few percent of ratio, and on the
// wire path that time loses to just sending the bytes. Lossy fields
// (CodecQuantize) are never demoted: the caller asked for the error
// bound, not for speed. The result depends only on schema, spec, and
// the record bytes, so two encoders narrow identically; frames stay
// self-describing, so decoders never see the spec at all. On any
// malformed input the spec is returned unchanged.
func NarrowSpec(schema *Schema, spec Spec, records []byte) Spec {
	if len(spec.Fields) == 0 || spec.Validate(schema) != nil {
		return spec
	}
	stride := schema.Stride()
	count := len(records) / stride
	if count == 0 || len(records)%stride != 0 {
		return spec
	}
	if count > narrowProbeRecords {
		count = narrowProbeRecords
	}
	frame, err := CompressBlock(schema, spec, records[:count*stride])
	if err != nil {
		return spec
	}
	narrowed := spec
	var fields []FieldCodec // copied lazily, only if something demotes
	off := 0
	for fi := 0; fi < schema.NumFields(); fi++ {
		f := schema.Field(fi)
		if off >= len(frame) {
			return spec
		}
		id := CodecID(frame[off])
		off++
		plen, n := binary.Uvarint(frame[off:])
		if n <= 0 {
			return spec
		}
		off += n + int(plen)
		if spec.Fields[fi].ID == CodecRaw || spec.Fields[fi].ID == CodecQuantize {
			continue
		}
		colLen := count * f.Bytes()
		saved := colLen - int(plen)
		if id == CodecRaw || saved*narrowKeepDen < colLen*narrowKeepNum {
			if fields == nil {
				fields = append([]FieldCodec(nil), spec.Fields...)
				narrowed.Fields = fields
			}
			fields[fi] = FieldCodec{ID: CodecRaw}
		}
	}
	return narrowed
}

// CompressBlock compresses one block of AoS records (a whole number of
// records in LOD order) under the spec, returning the self-describing
// per-field frame. Codecs that do not apply to the data at hand fall
// back per field — quantize on non-finite values or over-wide ranges,
// delta on non-integer values — and any compressed column that would
// exceed the raw column is stored raw, so a compressed block never
// costs more than the records plus a few framing bytes per field.
//
// The one allocation per call is the returned frame; everything else
// runs on pooled codec state. AppendCompressedBlock avoids even that
// when the caller owns a reusable destination.
func CompressBlock(schema *Schema, spec Spec, records []byte) ([]byte, error) {
	out := make([]byte, 0, len(records)+16*schema.NumFields())
	return AppendCompressedBlock(out, schema, spec, records)
}

// AppendCompressedBlock appends the compressed frame for one block of
// AoS records onto dst and returns the extended slice. Semantics are
// those of CompressBlock.
func AppendCompressedBlock(dst []byte, schema *Schema, spec Spec, records []byte) ([]byte, error) {
	if err := spec.Validate(schema); err != nil {
		return nil, err
	}
	stride := schema.Stride()
	if len(records)%stride != 0 {
		return nil, fmt.Errorf("particle: %d bytes is not a multiple of record size %d", len(records), stride)
	}
	st := getCodecState()
	defer putCodecState(st)
	return st.appendBlock(dst, schema, spec, records), nil
}

// appendBlock encodes every field frame of one block onto out.
func (st *codecState) appendBlock(out []byte, schema *Schema, spec Spec, records []byte) []byte {
	stride := schema.Stride()
	count := len(records) / stride
	var varbuf [binary.MaxVarintLen64]byte
	for fi := 0; fi < schema.NumFields(); fi++ {
		f := schema.Field(fi)
		off := schema.Offset(fi)
		colLen := count * f.Bytes()

		want := CodecRaw
		var bound float64
		if len(spec.Fields) > 0 {
			want = spec.Fields[fi].ID
			bound = spec.Fields[fi].ErrBound
		}
		id, payload := st.encodeField(f, want, bound, records, stride, off, count)
		if id != CodecRaw && len(payload) < colLen {
			out = append(out, byte(id))
			n := binary.PutUvarint(varbuf[:], uint64(len(payload)))
			out = append(out, varbuf[:n]...)
			out = append(out, payload...)
			continue
		}
		// Raw fallback: gather the column straight into the output frame,
		// with no intermediate column image.
		out = append(out, byte(CodecRaw))
		n := binary.PutUvarint(varbuf[:], uint64(colLen))
		out = append(out, varbuf[:n]...)
		var base int
		out, base = growFrame(out, colLen)
		gatherColumn(records, stride, off, f.Bytes(), out[base:])
	}
	return out
}

// encodeField applies the wanted codec to one field of the record image,
// degrading to shuffle+deflate when the codec's preconditions fail. The
// returned payload aliases st's scratch and is valid until st encodes
// again. A CodecRaw result carries a nil payload — the caller gathers
// raw columns itself.
func (st *codecState) encodeField(f Field, want CodecID, bound float64, records []byte, stride, off, count int) (CodecID, []byte) {
	switch want {
	case CodecDeltaVarint:
		if f.Kind == Float64 {
			p, ok := appendDeltaVarint(st.out.b[:0], records, stride, off, count, f.Components)
			st.out.b = p
			if ok {
				return CodecDeltaVarint, p
			}
		}
		return st.encodeShuffle(CodecShuffleDeflate, f, records, stride, off, count)
	case CodecQuantize:
		p, ok := appendQuantize(st.out.b[:0], records, stride, off, count, f.Components, bound)
		st.out.b = p
		if ok {
			return CodecQuantize, p
		}
		return st.encodeShuffle(CodecShuffleDeflate, f, records, stride, off, count)
	case CodecShuffleDeflate, CodecShuffleLZ:
		return st.encodeShuffle(want, f, records, stride, off, count)
	default:
		return CodecRaw, nil
	}
}

// encodeShuffle byte-plane-transposes one field straight out of the
// record image (fused gather+shuffle, see codec_state.go) and entropy-
// codes the planes with flate or the fast LZ.
func (st *codecState) encodeShuffle(id CodecID, f Field, records []byte, stride, off, count int) (CodecID, []byte) {
	shuf := st.shuffled(count * f.Bytes())
	shuffleFromRecords(shuf, records, stride, off, f.Kind.Size(), f.Components, count)
	if id == CodecShuffleLZ {
		st.out.b = appendLZ(st.out.b[:0], shuf, st.tab)
		return CodecShuffleLZ, st.out.b
	}
	zw := st.flateWriter()
	_, _ = zw.Write(shuf) // sliceWriter writes cannot fail
	_ = zw.Close()
	return CodecShuffleDeflate, st.out.b
}

// growFrame extends b by n bytes (contents unspecified) and returns the
// slice plus the start of the new region.
func growFrame(b []byte, n int) ([]byte, int) {
	base := len(b)
	if cap(b)-base < n {
		return append(b, make([]byte, n)...), base
	}
	return b[:base+n], base
}

// DecompressBlock reverses CompressBlock: data is one block frame, count
// the record count it holds; the result is exactly count*Stride() AoS
// bytes. data may arrive from disk or the network, so every length is
// bounds-checked against count before it sizes an allocation.
func DecompressBlock(schema *Schema, data []byte, count int) ([]byte, error) {
	if count < 0 {
		return nil, fmt.Errorf("particle: negative record count %d", count)
	}
	records := make([]byte, count*schema.Stride())
	if err := DecompressBlockInto(schema, data, count, records); err != nil {
		return nil, err
	}
	return records, nil
}

// DecompressBlockInto decodes one block frame of count records directly
// into dst, which must be exactly count*Stride() bytes — the zero-copy
// path for callers that own the destination (range reads decoding into
// the middle of a result slice, batch decodes into disjoint regions).
// It allocates nothing in steady state.
func DecompressBlockInto(schema *Schema, data []byte, count int, dst []byte) error {
	if count < 0 {
		return fmt.Errorf("particle: negative record count %d", count)
	}
	stride := schema.Stride()
	if len(dst) != count*stride {
		return fmt.Errorf("particle: destination holds %d bytes, block decodes to %d", len(dst), count*stride)
	}
	st := getCodecState()
	defer putCodecState(st)
	return st.decompressInto(schema, data, count, dst)
}

// decompressInto walks the per-field frames, decoding each straight into
// the field's slots of the dst record image.
func (st *codecState) decompressInto(schema *Schema, data []byte, count int, dst []byte) error {
	stride := schema.Stride()
	for fi := 0; fi < schema.NumFields(); fi++ {
		f := schema.Field(fi)
		off := schema.Offset(fi)
		if len(data) < 1 {
			return fmt.Errorf("particle: compressed block ends before field %q", f.Name)
		}
		id := CodecID(data[0])
		data = data[1:]
		plen, n := binary.Uvarint(data)
		if n <= 0 || plen > uint64(len(data)-n) {
			return fmt.Errorf("particle: field %q: bad compressed payload length", f.Name)
		}
		payload := data[n : n+int(plen)]
		data = data[n+int(plen):]

		colLen := count * f.Bytes()
		var err error
		switch id {
		case CodecRaw:
			if len(payload) != colLen {
				return fmt.Errorf("particle: field %q: raw column has %d bytes, want %d", f.Name, len(payload), colLen)
			}
			scatterColumn(dst, stride, off, f.Bytes(), payload)
		case CodecShuffleDeflate:
			err = st.decodeShuffleDeflate(payload, dst, stride, off, f, count)
		case CodecShuffleLZ:
			shuf := st.shuffled(colLen)
			if err = decodeLZ(shuf, payload); err == nil {
				unshuffleToRecords(dst, shuf, stride, off, f.Kind.Size(), f.Components, count)
			}
		case CodecDeltaVarint:
			if f.Kind != Float64 {
				return fmt.Errorf("particle: field %q: delta codec on %v column", f.Name, f.Kind)
			}
			err = decodeDeltaVarintInto(dst, stride, off, payload, count, f.Components)
		case CodecQuantize:
			if f.Kind != Float64 {
				return fmt.Errorf("particle: field %q: quantize codec on %v column", f.Name, f.Kind)
			}
			err = decodeQuantizeInto(dst, stride, off, payload, count, f.Components)
		default:
			return fmt.Errorf("particle: field %q: unknown codec %d", f.Name, id)
		}
		if err != nil {
			return fmt.Errorf("particle: field %q: %w", f.Name, err)
		}
	}
	if len(data) != 0 {
		return fmt.Errorf("particle: %d trailing bytes after compressed block", len(data))
	}
	return nil
}

// decodeShuffleDeflate inflates one field's byte planes on the pooled
// flate reader and unshuffles them into the record image.
func (st *codecState) decodeShuffleDeflate(payload, dst []byte, stride, off int, f Field, count int) error {
	shuf := st.shuffled(count * f.Bytes())
	zr := st.flateReader(payload)
	if _, err := io.ReadFull(zr, shuf); err != nil {
		return fmt.Errorf("inflate: %w", err)
	}
	// The stream must end exactly at the column boundary; trailing data
	// means a corrupt or hostile frame.
	var one [1]byte
	if n, _ := zr.Read(one[:]); n != 0 {
		return fmt.Errorf("inflate: stream longer than column")
	}
	unshuffleToRecords(dst, shuf, stride, off, f.Kind.Size(), f.Components, count)
	return nil
}

// gatherColumn extracts one field's bytes from an AoS record image into
// col (count*w bytes, record-major).
func gatherColumn(records []byte, stride, off, w int, col []byte) {
	count := len(col) / w
	for i := 0; i < count; i++ {
		copy(col[i*w:(i+1)*w], records[i*stride+off:i*stride+off+w])
	}
}

// scatterColumn writes one field's bytes back into an AoS record image.
func scatterColumn(records []byte, stride, off, w int, col []byte) {
	count := len(col) / w
	for i := 0; i < count; i++ {
		copy(records[i*stride+off:i*stride+off+w], col[i*w:(i+1)*w])
	}
}

// maxExactInt is the largest magnitude delta-coded values may take:
// beyond 2^53 float64 no longer represents every integer, so the
// int64 round-trip below would silently lose bits.
const maxExactInt = int64(1) << 53

// appendDeltaVarint encodes one float64 field of the record image as
// zigzag varints of consecutive integer differences, appended onto dst.
// ok is false when any value is not an exactly-representable integer
// (the caller falls back to a lossless byte codec and discards the
// partial output).
func appendDeltaVarint(dst, records []byte, stride, off, count, comps int) ([]byte, bool) {
	var varbuf [binary.MaxVarintLen64]byte
	prev := int64(0)
	for i := 0; i < count; i++ {
		for k := 0; k < comps; k++ {
			v := math.Float64frombits(binary.LittleEndian.Uint64(records[i*stride+off+k*8:]))
			iv := int64(v)
			if float64(iv) != v || iv > maxExactInt || iv < -maxExactInt {
				return dst, false
			}
			n := binary.PutVarint(varbuf[:], iv-prev)
			dst = append(dst, varbuf[:n]...)
			prev = iv
		}
	}
	return dst, true
}

// decodeDeltaVarintInto reverses appendDeltaVarint straight into the
// field's slots of a record image.
func decodeDeltaVarintInto(dst []byte, stride, off int, payload []byte, count, comps int) error {
	nelem := count * comps
	prev := int64(0)
	for e := 0; e < nelem; e++ {
		d, n := binary.Varint(payload)
		if n <= 0 {
			return fmt.Errorf("delta stream ends at element %d of %d", e, nelem)
		}
		payload = payload[n:]
		prev += d
		i, k := e/comps, e%comps
		binary.LittleEndian.PutUint64(dst[i*stride+off+k*8:], math.Float64bits(float64(prev)))
	}
	if len(payload) != 0 {
		return fmt.Errorf("%d trailing bytes in delta stream", len(payload))
	}
	return nil
}

// maxQuantLevels bounds the quantization index so the float round-trip
// q = round((v-min)/step); v' = min + q*step stays exact in the integer
// part; ranges needing more levels fall back to lossless.
const maxQuantLevels = float64(int64(1) << 51)

// appendQuantize encodes one float64 field of count records × comps
// components with per-component affine quantization: f64 min, f64 max,
// f64 step, then count uvarint indices per component (component-major),
// appended onto dst. The reconstruction min(min + q*step, max) is within
// bound of the original; the max clamp matters because rounding alone
// can overshoot the column's true range by step/2 — enough to push a
// boundary particle outside its partition (or the domain) and fail a
// deep fsck. ok is false when a value is non-finite or a component's
// range needs too many levels for the bound.
func appendQuantize(dst, records []byte, stride, off, count, comps int, bound float64) ([]byte, bool) {
	val := func(i, k int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(records[i*stride+off+k*8:]))
	}
	var varbuf [binary.MaxVarintLen64]byte
	for k := 0; k < comps; k++ {
		mn, mx := math.Inf(1), math.Inf(-1)
		for i := 0; i < count; i++ {
			v := val(i, k)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return dst, false
			}
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if count == 0 {
			mn, mx = 0, 0
		}
		step := bound
		if (mx-mn)/step > maxQuantLevels {
			return dst, false
		}
		var b8 [8]byte
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(mn))
		dst = append(dst, b8[:]...)
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(mx))
		dst = append(dst, b8[:]...)
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(step))
		dst = append(dst, b8[:]...)
		for i := 0; i < count; i++ {
			q := math.Round((val(i, k) - mn) / step)
			n := binary.PutUvarint(varbuf[:], uint64(q))
			dst = append(dst, varbuf[:n]...)
		}
	}
	return dst, true
}

// decodeQuantizeInto reverses appendQuantize straight into the field's
// slots of a record image.
func decodeQuantizeInto(dst []byte, stride, off int, payload []byte, count, comps int) error {
	for k := 0; k < comps; k++ {
		if len(payload) < 24 {
			return fmt.Errorf("quantize stream ends in component %d header", k)
		}
		mn := math.Float64frombits(binary.LittleEndian.Uint64(payload))
		mx := math.Float64frombits(binary.LittleEndian.Uint64(payload[8:]))
		step := math.Float64frombits(binary.LittleEndian.Uint64(payload[16:]))
		payload = payload[24:]
		for i := 0; i < count; i++ {
			q, n := binary.Uvarint(payload)
			if n <= 0 {
				return fmt.Errorf("quantize stream ends at record %d of %d", i, count)
			}
			payload = payload[n:]
			v := mn + float64(q)*step
			// Rounding can overshoot the column range by step/2; clamping
			// back to it only moves the value toward the original, so the
			// error bound is preserved and boundary particles stay inside
			// their partition.
			if v > mx {
				v = mx
			}
			binary.LittleEndian.PutUint64(dst[i*stride+off+k*8:], math.Float64bits(v))
		}
	}
	if len(payload) != 0 {
		return fmt.Errorf("%d trailing bytes in quantize stream", len(payload))
	}
	return nil
}
