package particle

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// testBlock builds a Uintah-schema record block with id-like ids,
// constant-ish stress, and random positions — the shape real workloads
// hand the codecs.
func testBlock(t *testing.T, n int, seed int64) (*Schema, []byte) {
	t.Helper()
	schema := Uintah()
	r := rand.New(rand.NewSource(seed))
	buf := NewBuffer(schema, n)
	for i := 0; i < n; i++ {
		pos := []float64{r.Float64() * 100, r.Float64() * 100, r.Float64() * 100}
		stress := make([]float64, 9)
		for k := range stress {
			stress[k] = 1.5 // constant: flate should crush it
		}
		buf.Append(pos, stress,
			[]float64{1000 + r.Float64()},
			[]float64{1e-6},
			[]float64{float64(i + 7)},
			[]float64{float64(i % 4)})
	}
	return schema, buf.Encode()
}

func TestCodecRoundTripLossless(t *testing.T) {
	schema, records := testBlock(t, 1000, 1)
	for _, spec := range []Spec{{}, LosslessSpec(schema)} {
		comp, err := CompressBlock(schema, spec, records)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecompressBlock(schema, comp, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, records) {
			t.Fatalf("spec %+v: round trip not byte-identical", spec)
		}
	}
}

func TestCodecLosslessShrinks(t *testing.T) {
	schema, records := testBlock(t, 4096, 2)
	comp, err := CompressBlock(schema, LosslessSpec(schema), records)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(records) {
		t.Errorf("lossless compression grew the block: %d -> %d bytes", len(records), len(comp))
	}
	t.Logf("lossless: %d -> %d bytes (%.1f%%)", len(records), len(comp), 100*float64(len(comp))/float64(len(records)))
}

func TestCodecQuantizeErrorBound(t *testing.T) {
	const bound = 1e-3
	schema, records := testBlock(t, 2000, 3)
	spec := LossySpec(schema, bound)
	comp, err := CompressBlock(schema, spec, records)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressBlock(schema, comp, 2000)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Decode(schema, records)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(schema, got)
	if err != nil {
		t.Fatal(err)
	}
	pos := want.Float64Field(0)
	posDec := dec.Float64Field(0)
	for i := range pos {
		if d := math.Abs(pos[i] - posDec[i]); d > bound {
			t.Fatalf("component %d: error %g exceeds bound %g", i, d, bound)
		}
	}
	// Non-coordinate fields must survive bit-exactly even under a lossy
	// spec.
	for fi := 1; fi < schema.NumFields(); fi++ {
		f := schema.Field(fi)
		if f.Kind != Float64 {
			continue
		}
		a, b := want.Float64Field(fi), dec.Float64Field(fi)
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("lossless field %q drifted at %d", f.Name, i)
			}
		}
	}
}

// TestCodecQuantizeStaysInRange is the regression test for the
// partition-boundary overshoot spioinspect -verify caught: rounding to
// the quantization grid can land up to step/2 past the column's true
// maximum, decoding a boundary particle to just outside its partition
// (e.g. y = 1.0000147 in a unit domain). The decoder must clamp back
// to the encoded range.
func TestCodecQuantizeStaysInRange(t *testing.T) {
	schema := PositionOnly()
	buf := NewBuffer(schema, 64)
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 64; i++ {
		// Values packed against the upper boundary, including exactly 1.0:
		// the worst case for round-up overshoot.
		buf.Append([]float64{1 - r.Float64()*1e-4, 1.0, 0.5 + r.Float64()*0.5})
	}
	want, _ := Decode(schema, buf.Encode())
	for _, bound := range []float64{1e-3, 1e-4, 1e-6} {
		comp, err := CompressBlock(schema, LossySpec(schema, bound), buf.Encode())
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecompressBlock(schema, comp, 64)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(schema, got)
		if err != nil {
			t.Fatal(err)
		}
		a, b := want.Float64Field(0), dec.Float64Field(0)
		for k := 0; k < 3; k++ {
			mn, mx := math.Inf(1), math.Inf(-1)
			for i := k; i < len(a); i += 3 {
				mn, mx = math.Min(mn, a[i]), math.Max(mx, a[i])
			}
			for i := k; i < len(b); i += 3 {
				if b[i] > mx || b[i] < mn {
					t.Fatalf("bound %g component %d: decoded %v escapes original range [%v, %v]", bound, k, b[i], mn, mx)
				}
				if d := math.Abs(a[i] - b[i]); d > bound {
					t.Fatalf("bound %g component %d: error %g exceeds bound", bound, k, d)
				}
			}
		}
	}
}

func TestCodecQuantizeFallbackOnNonFinite(t *testing.T) {
	schema := PositionOnly()
	buf := NewBuffer(schema, 4)
	buf.Append([]float64{1, 2, 3})
	buf.Append([]float64{math.NaN(), 2, 3})
	records := buf.Encode()
	comp, err := CompressBlock(schema, LossySpec(schema, 1e-3), records)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressBlock(schema, comp, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The fallback is lossless, so even the NaN round-trips bit-exactly.
	if !bytes.Equal(got, records) {
		t.Fatal("non-finite fallback was not byte-identical")
	}
}

func TestCodecDeltaFallbackOnNonInteger(t *testing.T) {
	schema := MustSchema([]Field{
		{Name: PositionField, Kind: Float64, Components: 3},
		{Name: "id", Kind: Float64, Components: 1},
	})
	buf := NewBuffer(schema, 4)
	buf.Append([]float64{1, 2, 3}, []float64{1.5}) // not an integer id
	buf.Append([]float64{4, 5, 6}, []float64{2.5})
	records := buf.Encode()
	comp, err := CompressBlock(schema, LosslessSpec(schema), records)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressBlock(schema, comp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, records) {
		t.Fatal("delta fallback was not byte-identical")
	}
}

func TestCodecEmptyBlock(t *testing.T) {
	schema := Uintah()
	comp, err := CompressBlock(schema, LosslessSpec(schema), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressBlock(schema, comp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty block decoded to %d bytes", len(got))
	}
}

func TestCodecSpecValidate(t *testing.T) {
	schema := Uintah()
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{}, true},
		{LosslessSpec(schema), true},
		{LossySpec(schema, 1e-3), true},
		{Spec{Fields: []FieldCodec{{ID: CodecRaw}}}, false},                      // wrong arity
		{Spec{Fields: make([]FieldCodec, schema.NumFields())}, true},             // all raw
		{LossySpec(schema, 0), false},                                            // zero bound
		{Spec{Fields: append(make([]FieldCodec, 5), FieldCodec{ID: 99})}, false}, // unknown id
	}
	for i, c := range cases {
		err := c.spec.Validate(schema)
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate = %v, want ok=%v", i, err, c.ok)
		}
	}
	// Quantize on a float32 field is rejected.
	bad := LosslessSpec(schema)
	bad.Fields[schema.FieldIndex("type")] = FieldCodec{ID: CodecQuantize, ErrBound: 1}
	if bad.Validate(schema) == nil {
		t.Error("quantize on float32 field validated")
	}
}

func TestParseCodecSpec(t *testing.T) {
	schema := Uintah()
	for _, s := range []string{"", "none", "raw"} {
		spec, err := ParseCodecSpec(schema, s)
		if err != nil || !spec.IsRaw() {
			t.Errorf("ParseCodecSpec(%q) = %+v, %v", s, spec, err)
		}
	}
	spec, err := ParseCodecSpec(schema, "lossless")
	if err != nil || spec.IsRaw() || spec.Lossy() {
		t.Errorf("lossless: %+v, %v", spec, err)
	}
	spec, err = ParseCodecSpec(schema, "lossy:1e-3")
	if err != nil || !spec.Lossy() {
		t.Errorf("lossy: %+v, %v", spec, err)
	}
	for _, s := range []string{"lossy:", "lossy:-1", "lossy:x", "zstd"} {
		if _, err := ParseCodecSpec(schema, s); err == nil {
			t.Errorf("ParseCodecSpec(%q) accepted", s)
		}
	}
}

// TestDecompressBlockHostile throws mutated frames at the decoder: it
// must error or succeed, never panic or over-allocate past the count
// bound.
func TestDecompressBlockHostile(t *testing.T) {
	schema, records := testBlock(t, 64, 4)
	comp, err := CompressBlock(schema, LosslessSpec(schema), records)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		m := append([]byte(nil), comp...)
		for k := 0; k < 1+r.Intn(4); k++ {
			m[r.Intn(len(m))] ^= byte(1 << r.Intn(8))
		}
		if r.Intn(4) == 0 {
			m = m[:r.Intn(len(m)+1)]
		}
		got, err := DecompressBlock(schema, m, 64)
		if err == nil && len(got) != 64*schema.Stride() {
			t.Fatalf("trial %d: no error but %d bytes", trial, len(got))
		}
	}
}

func FuzzCodecRoundTrip(f *testing.F) {
	schema := Uintah()
	_, records := testBlockF(schema, 32)
	comp, _ := CompressBlock(schema, LosslessSpec(schema), records)
	f.Add(comp, 32)
	fast, _ := CompressBlock(schema, FastSpec(schema), records)
	f.Add(fast, 32)
	f.Add([]byte{}, 0)
	f.Add([]byte{0, 0, 1}, 1)
	f.Fuzz(func(t *testing.T, data []byte, count int) {
		if count < 0 || count > 1<<12 {
			return
		}
		got, err := DecompressBlock(schema, data, count)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode to the same bytes.
		re, err := CompressBlock(schema, LosslessSpec(schema), got)
		if err != nil {
			t.Fatalf("recompress of decoded block: %v", err)
		}
		back, err := DecompressBlock(schema, re, count)
		if err != nil {
			t.Fatalf("decode of recompressed block: %v", err)
		}
		if !bytes.Equal(back, got) {
			t.Fatal("lossless re-round-trip drifted")
		}
	})
}

// testBlockF is testBlock without the *testing.T, for fuzz seeding.
func testBlockF(schema *Schema, n int) (*Schema, []byte) {
	buf := NewBuffer(schema, n)
	for i := 0; i < n; i++ {
		buf.Append([]float64{float64(i), 1, 2}, make([]float64, 9),
			[]float64{1}, []float64{2}, []float64{float64(i)}, []float64{0})
	}
	return schema, buf.Encode()
}

// noisyBlock builds a Uintah block whose stress tensor is pure entropy
// (random mantissa and exponent) while position, id, and type stay
// structured — the shape that makes narrowing fire on exactly one
// field.
func noisyBlock(t *testing.T, n int) (*Schema, []byte) {
	t.Helper()
	schema := Uintah()
	r := rand.New(rand.NewSource(9))
	buf := NewBuffer(schema, n)
	for i := 0; i < n; i++ {
		pos := []float64{float64(i) * 0.001, float64(i) * 0.002, 3}
		stress := make([]float64, 9)
		for k := range stress {
			stress[k] = r.Float64() * math.Pow(2, float64(r.Intn(40)-20))
		}
		buf.Append(pos, stress, []float64{1000}, []float64{1e-6},
			[]float64{float64(i)}, []float64{0})
	}
	return schema, buf.Encode()
}

func TestNarrowSpec(t *testing.T) {
	schema, records := noisyBlock(t, 4096)
	spec := FastSpec(schema)
	narrowed := NarrowSpec(schema, spec, records)

	want := map[string]CodecID{
		"position": CodecShuffleLZ,   // structured: stays compressed
		"stress":   CodecRaw,         // entropy: demoted
		"id":       CodecDeltaVarint, // integer: stays
	}
	for fi := 0; fi < schema.NumFields(); fi++ {
		f := schema.Field(fi)
		if w, ok := want[f.Name]; ok && narrowed.Fields[fi].ID != w {
			t.Errorf("field %q: narrowed to %v, want %v", f.Name, narrowed.Fields[fi].ID, w)
		}
	}
	if &narrowed.Fields[0] == &spec.Fields[0] {
		t.Error("NarrowSpec mutated the input spec instead of copying")
	}

	// The narrowed spec must still round-trip byte-identically.
	comp, err := CompressBlock(schema, narrowed, records)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressBlock(schema, comp, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, records) {
		t.Fatal("narrowed spec round trip not byte-identical")
	}

	// Narrowing is deterministic: same inputs, same spec.
	again := NarrowSpec(schema, spec, records)
	for fi := range narrowed.Fields {
		if again.Fields[fi] != narrowed.Fields[fi] {
			t.Fatalf("narrowing not deterministic at field %d", fi)
		}
	}
}

func TestNarrowSpecKeepsLossyFields(t *testing.T) {
	schema, records := noisyBlock(t, 4096)
	spec := FastSpec(schema)
	// The user asked for an error bound on the noisy field: narrowing
	// must not silently trade it for speed.
	for fi := 0; fi < schema.NumFields(); fi++ {
		if schema.Field(fi).Name == "stress" {
			spec.Fields[fi] = FieldCodec{ID: CodecQuantize, ErrBound: 1e-3}
		}
	}
	narrowed := NarrowSpec(schema, spec, records)
	for fi := 0; fi < schema.NumFields(); fi++ {
		if schema.Field(fi).Name == "stress" && narrowed.Fields[fi].ID != CodecQuantize {
			t.Errorf("lossy field demoted to %v", narrowed.Fields[fi].ID)
		}
	}
}

func TestNarrowSpecDegenerate(t *testing.T) {
	schema, records := testBlock(t, 64, 3)
	if got := NarrowSpec(schema, Spec{}, records); len(got.Fields) != 0 {
		t.Error("raw spec should pass through unchanged")
	}
	spec := FastSpec(schema)
	if got := NarrowSpec(schema, spec, nil); &got.Fields[0] != &spec.Fields[0] {
		t.Error("empty records should return the spec unchanged")
	}
	if got := NarrowSpec(schema, spec, records[:schema.Stride()-1]); &got.Fields[0] != &spec.Fields[0] {
		t.Error("partial record should return the spec unchanged")
	}
}
