package particle

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// batchSchema builds a random schema: position plus a handful of
// float32/float64 fields of random arity, one sometimes id-like.
func batchSchema(r *rand.Rand) *Schema {
	fields := []Field{{Name: PositionField, Kind: Float64, Components: 3}}
	n := 1 + r.Intn(5)
	for i := 0; i < n; i++ {
		kind := Float64
		if r.Intn(2) == 0 {
			kind = Float32
		}
		name := fmt.Sprintf("v%d", i)
		if i == 0 && r.Intn(2) == 0 {
			name, kind = "id", Float64 // id-like: exercises the delta codec
		}
		fields = append(fields, Field{Name: name, Kind: kind, Components: 1 + r.Intn(4)})
	}
	return MustSchema(fields)
}

// batchRecords fills a random record image. Half the time the bytes are
// pure noise (the hardest lossless input: every codec falls back to
// raw); otherwise a compressible pattern with id-like runs.
func batchRecords(r *rand.Rand, schema *Schema, count int) []byte {
	records := make([]byte, count*schema.Stride())
	if r.Intn(2) == 0 {
		r.Read(records)
		return records
	}
	buf := NewBuffer(schema, count)
	vals := make([][]float64, schema.NumFields())
	for i := 0; i < count; i++ {
		for fi := range vals {
			f := schema.Field(fi)
			col := make([]float64, f.Components)
			for k := range col {
				if f.Name == "id" {
					col[k] = float64(i*f.Components + k)
				} else {
					col[k] = r.Float64() * 100
				}
			}
			vals[fi] = col
		}
		buf.Append(vals...)
	}
	copy(records, buf.Encode())
	return records
}

// specFor picks one of the codec specs a batch can run under.
func specFor(r *rand.Rand, schema *Schema) Spec {
	switch r.Intn(4) {
	case 0:
		return Spec{}
	case 1:
		return LosslessSpec(schema)
	case 2:
		return FastSpec(schema)
	default:
		return LossySpec(schema, 1e-3)
	}
}

// TestBatchCompressMatchesSerial is half the differential property:
// for random schemas, specs, block counts, and worker counts, the
// frames CompressBlocks produces are byte-identical to a serial
// CompressBlock loop — parallel compression must not depend on
// scheduling.
func TestBatchCompressMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		schema := batchSchema(r)
		spec := specFor(r, schema)
		blocks := make([][]byte, 1+r.Intn(7))
		for i := range blocks {
			blocks[i] = batchRecords(r, schema, r.Intn(300))
		}
		want := make([][]byte, len(blocks))
		for i, recs := range blocks {
			frame, err := CompressBlock(schema, spec, recs)
			if err != nil {
				t.Fatalf("trial %d: serial compress: %v", trial, err)
			}
			want[i] = frame
		}
		for _, workers := range []int{0, 1, 2, 8} {
			got, err := CompressBlocks(schema, spec, blocks, workers)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("trial %d workers %d: block %d frame differs from serial", trial, workers, i)
				}
			}
		}
	}
}

// TestBatchDecompressMatchesSerial is the other half: concatenate the
// frames, split them back with SplitFrames, and decode — in parallel,
// serially, and over random sub-ranges of blocks — demanding
// byte-identity with the original records everywhere.
func TestBatchDecompressMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 60; trial++ {
		schema := batchSchema(r)
		stride := schema.Stride()
		// Lossless specs only: the differential compares against the
		// original bytes.
		specs := []Spec{{}, LosslessSpec(schema), FastSpec(schema)}
		spec := specs[r.Intn(len(specs))]
		nblocks := 1 + r.Intn(7)
		counts := make([]int, nblocks)
		var want []byte
		var stream []byte
		total := 0
		for i := range counts {
			counts[i] = r.Intn(300)
			recs := batchRecords(r, schema, counts[i])
			frame, err := CompressBlock(schema, spec, recs)
			if err != nil {
				t.Fatalf("trial %d: compress: %v", trial, err)
			}
			want = append(want, recs...)
			stream = append(stream, frame...)
			total += counts[i]
		}
		blocks, err := SplitFrames(schema, stream, counts)
		if err != nil {
			t.Fatalf("trial %d: SplitFrames: %v", trial, err)
		}
		// Serial reference via DecompressBlockInto.
		ref := make([]byte, total*stride)
		for bi, blk := range blocks {
			region := ref[blk.At*stride : (blk.At+blk.Count)*stride]
			if err := DecompressBlockInto(schema, blk.Frame, blk.Count, region); err != nil {
				t.Fatalf("trial %d: serial decode block %d: %v", trial, bi, err)
			}
		}
		if !bytes.Equal(ref, want) {
			t.Fatalf("trial %d: serial round trip not byte-identical", trial)
		}
		for _, workers := range []int{0, 1, 2, 8} {
			dst := make([]byte, total*stride)
			if err := DecompressBlocks(schema, blocks, dst, workers); err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			if !bytes.Equal(dst, want) {
				t.Fatalf("trial %d workers %d: parallel decode differs from serial", trial, workers)
			}
		}
		// A random sub-range of blocks into a smaller destination: the
		// At offsets are the caller's to re-base.
		b0 := r.Intn(nblocks)
		b1 := b0 + 1 + r.Intn(nblocks-b0)
		sub := make([]CompressedBlock, 0, b1-b0)
		base := blocks[b0].At
		for _, blk := range blocks[b0:b1] {
			blk.At -= base
			sub = append(sub, blk)
		}
		subTotal := 0
		for _, blk := range sub {
			subTotal += blk.Count
		}
		dst := make([]byte, subTotal*stride)
		if err := DecompressBlocks(schema, sub, dst, 4); err != nil {
			t.Fatalf("trial %d: sub-range decode: %v", trial, err)
		}
		if !bytes.Equal(dst, want[base*stride:(base+subTotal)*stride]) {
			t.Fatalf("trial %d: sub-range [%d,%d) decode differs", trial, b0, b1)
		}
	}
}

// TestFastSpecRoundTrip pins the shuffle+LZ spec's lossless contract on
// both structured and adversarial (pure noise) record images.
func TestFastSpecRoundTrip(t *testing.T) {
	schema, records := testBlock(t, 1500, 7)
	spec := FastSpec(schema)
	for trial, recs := range [][]byte{records, func() []byte {
		noise := make([]byte, len(records))
		rand.New(rand.NewSource(8)).Read(noise)
		return noise
	}()} {
		comp, err := CompressBlock(schema, spec, recs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecompressBlock(schema, comp, 1500)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, recs) {
			t.Fatalf("trial %d: fast spec round trip not byte-identical", trial)
		}
	}
}

// TestSplitFramesHostile feeds SplitFrames corrupt streams: it must
// error, never panic or hand out frames past the stream.
func TestSplitFramesHostile(t *testing.T) {
	schema, records := testBlock(t, 100, 9)
	frame, err := CompressBlock(schema, LosslessSpec(schema), records)
	if err != nil {
		t.Fatal(err)
	}
	stream := append(append([]byte(nil), frame...), frame...)
	if _, err := SplitFrames(schema, stream, []int{100, 100}); err != nil {
		t.Fatalf("intact stream: %v", err)
	}
	cases := []struct {
		name   string
		stream []byte
		counts []int
	}{
		{"truncated", stream[:len(stream)-3], []int{100, 100}},
		{"trailing bytes", append(append([]byte(nil), stream...), 0xAB), []int{100, 100}},
		{"too few counts", stream, []int{100}},
		{"too many counts", stream, []int{100, 100, 100}},
		{"empty stream, one block", nil, []int{100}},
	}
	for _, c := range cases {
		if _, err := SplitFrames(schema, c.stream, c.counts); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
	// Mutated field headers: random corruption must never walk out of
	// bounds (an error or a wrong-but-in-bounds split are both fine).
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 2000; trial++ {
		m := append([]byte(nil), stream...)
		for k := 0; k < 1+r.Intn(4); k++ {
			m[r.Intn(len(m))] ^= byte(1 << r.Intn(8))
		}
		blocks, err := SplitFrames(schema, m, []int{100, 100})
		if err != nil {
			continue
		}
		for _, blk := range blocks {
			if len(blk.Frame) > len(m) {
				t.Fatalf("trial %d: frame longer than stream", trial)
			}
		}
	}
}

// TestBatchDecompressBadRegion pins the upfront bounds check: a block
// whose region escapes the destination must fail before any decode.
func TestBatchDecompressBadRegion(t *testing.T) {
	schema, records := testBlock(t, 50, 11)
	frame, err := CompressBlock(schema, LosslessSpec(schema), records)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 50*schema.Stride())
	bad := []CompressedBlock{
		{Frame: frame, Count: 50, At: 1},  // runs past the end
		{Frame: frame, Count: 50, At: -1}, // negative offset
		{Frame: frame, Count: -1, At: 0},  // negative count
		{Frame: frame, Count: 500, At: 0}, // count alone too large
	}
	for i, blk := range bad {
		if err := DecompressBlocks(schema, []CompressedBlock{blk}, dst, 2); err == nil {
			t.Errorf("case %d: no error for region [%d,+%d)", i, blk.At, blk.Count)
		}
	}
}

// TestCodecAllocs pins the pooled-state contract (the PR's allocation
// satellite): steady-state CompressBlock allocates only its output
// frame, and DecompressBlockInto allocates nothing of its own. The
// shuffle+deflate decode bound is looser because the stdlib inflater
// allocates Huffman link tables per dynamic block inside Read — churn
// the pool cannot reach; shuffle+LZ has no such tax, which is the
// point of the fast spec. Each bound leaves slack for a GC emptying
// the state pool mid-run.
func TestCodecAllocs(t *testing.T) {
	schema, records := testBlock(t, 4096, 13)
	cases := []struct {
		name     string
		spec     Spec
		decBound float64
	}{
		{"lossless", LosslessSpec(schema), 75}, // stdlib inflate Huffman tables
		{"fast", FastSpec(schema), 1},          // pooled state only
	}
	for _, c := range cases {
		comp, err := CompressBlock(schema, c.spec, records)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]byte, len(records))
		if err := DecompressBlockInto(schema, comp, 4096, dst); err != nil {
			t.Fatal(err)
		}

		compAllocs := testing.AllocsPerRun(50, func() {
			if _, err := CompressBlock(schema, c.spec, records); err != nil {
				t.Fatal(err)
			}
		})
		if compAllocs > 2 {
			t.Errorf("%s: CompressBlock: %.1f allocs/op, want <= 2 (output frame only)",
				c.name, compAllocs)
		}
		decAllocs := testing.AllocsPerRun(50, func() {
			if err := DecompressBlockInto(schema, comp, 4096, dst); err != nil {
				t.Fatal(err)
			}
		})
		if decAllocs > c.decBound {
			t.Errorf("%s: DecompressBlockInto: %.1f allocs/op, want <= %.0f",
				c.name, decAllocs, c.decBound)
		}
	}
}

// TestDecompressBlockIntoSizeCheck pins the destination contract: dst
// must be exactly count*stride.
func TestDecompressBlockIntoSizeCheck(t *testing.T) {
	schema, records := testBlock(t, 10, 15)
	comp, err := CompressBlock(schema, LosslessSpec(schema), records)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 9 * schema.Stride(), 11 * schema.Stride()} {
		if err := DecompressBlockInto(schema, comp, 10, make([]byte, n)); err == nil {
			t.Errorf("dst of %d bytes accepted for 10 records", n)
		}
	}
}
