package particle

import (
	"testing"

	"spio/internal/geom"
)

func TestProjectSchemaSubset(t *testing.T) {
	p, err := Uintah().Project([]string{"density", "type"})
	if err != nil {
		t.Fatal(err)
	}
	sub := p.Schema()
	if sub.NumFields() != 3 { // position + density + type
		t.Fatalf("projected fields = %d", sub.NumFields())
	}
	if sub.Field(0).Name != PositionField {
		t.Error("position must come first")
	}
	if sub.Stride() != 24+8+4 {
		t.Errorf("projected stride = %d", sub.Stride())
	}
}

func TestProjectAlwaysIncludesPosition(t *testing.T) {
	p, err := Uintah().Project(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Schema().Equal(PositionOnly()) {
		t.Error("empty projection should be position-only")
	}
	// Naming position explicitly does not duplicate it.
	p2, err := Uintah().Project([]string{PositionField, PositionField, "id"})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Schema().NumFields() != 2 {
		t.Errorf("fields = %d", p2.Schema().NumFields())
	}
}

func TestProjectUnknownField(t *testing.T) {
	if _, err := Uintah().Project([]string{"nope"}); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestProjectionDecodeRecords(t *testing.T) {
	src := Uniform(Uintah(), geom.UnitBox(), 100, 7, 0)
	data := src.Encode()
	p, err := Uintah().Project([]string{"density", "id"})
	if err != nil {
		t.Fatal(err)
	}
	dst := NewBuffer(p.Schema(), 100)
	if err := p.DecodeRecords(dst, data); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 100 {
		t.Fatalf("decoded %d", dst.Len())
	}
	srcDens := src.Float64Field(src.Schema().FieldIndex("density"))
	dstDens := dst.Float64Field(dst.Schema().FieldIndex("density"))
	srcIDs := src.Float64Field(src.Schema().FieldIndex("id"))
	dstIDs := dst.Float64Field(dst.Schema().FieldIndex("id"))
	for i := 0; i < 100; i++ {
		if dst.Position(i) != src.Position(i) {
			t.Fatalf("position %d mismatch", i)
		}
		if dstDens[i] != srcDens[i] || dstIDs[i] != srcIDs[i] {
			t.Fatalf("scalar %d mismatch", i)
		}
	}
}

func TestProjectionDecodeErrors(t *testing.T) {
	p, _ := Uintah().Project([]string{"id"})
	wrong := NewBuffer(Uintah(), 0)
	if err := p.DecodeRecords(wrong, nil); err == nil {
		t.Error("wrong target schema accepted")
	}
	dst := NewBuffer(p.Schema(), 0)
	if err := p.DecodeRecords(dst, []byte{1, 2, 3}); err == nil {
		t.Error("partial record accepted")
	}
}

func TestProjectionApply(t *testing.T) {
	src := Uniform(Uintah(), geom.UnitBox(), 50, 9, 1)
	p, _ := Uintah().Project([]string{"stress"})
	got, err := p.Apply(src)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 50 {
		t.Fatalf("len = %d", got.Len())
	}
	srcStress := src.Float64Field(1)
	gotStress := got.Float64Field(got.Schema().FieldIndex("stress"))
	for i := range srcStress {
		if srcStress[i] != gotStress[i] {
			t.Fatal("stress tensor corrupted by projection")
		}
	}
	if _, err := p.Apply(NewBuffer(PositionOnly(), 0)); err == nil {
		t.Error("mismatched source buffer accepted")
	}
}

func TestProjectionAgreesWithFullDecode(t *testing.T) {
	src := Uniform(Uintah(), geom.UnitBox(), 64, 3, 2)
	data := src.Encode()
	p, _ := Uintah().Project([]string{"volume"})
	viaBytes := NewBuffer(p.Schema(), 64)
	if err := p.DecodeRecords(viaBytes, data); err != nil {
		t.Fatal(err)
	}
	viaMemory, err := p.Apply(src)
	if err != nil {
		t.Fatal(err)
	}
	if !viaBytes.Equal(viaMemory) {
		t.Error("byte-level and in-memory projection disagree")
	}
}
