package particle

import (
	"math"
	"strings"
	"testing"

	"spio/internal/geom"
)

func TestCheckFinite(t *testing.T) {
	b := Uniform(Uintah(), geom.UnitBox(), 20, 1, 0)
	if err := b.CheckFinite(); err != nil {
		t.Errorf("clean buffer failed: %v", err)
	}
	b.SetPosition(7, geom.V3(0.5, math.Inf(-1), 0.5))
	err := b.CheckFinite()
	if err == nil {
		t.Fatal("Inf position accepted")
	}
	if !strings.Contains(err.Error(), "particle 7") {
		t.Errorf("error does not name the particle: %v", err)
	}
	if NewBuffer(Uintah(), 0).CheckFinite() != nil {
		t.Error("empty buffer should be finite")
	}
}

func TestCheckInside(t *testing.T) {
	box := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	b := Uniform(Uintah(), box, 20, 1, 0)
	if err := b.CheckInside(box); err != nil {
		t.Errorf("in-box buffer failed: %v", err)
	}
	// The closed boundary is allowed.
	b.SetPosition(0, geom.V3(1, 1, 1))
	if err := b.CheckInside(box); err != nil {
		t.Errorf("boundary particle rejected: %v", err)
	}
	b.SetPosition(1, geom.V3(1.0001, 0.5, 0.5))
	if b.CheckInside(box) == nil {
		t.Error("escaped particle accepted")
	}
}
