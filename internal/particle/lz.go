package particle

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// A fast byte-oriented LZ codec in the LZ4 block mold, for columns where
// codec throughput matters more than the last few percent of ratio (the
// wire path: compressing at flate speed costs more time than the saved
// bytes are worth on a fast link). The format is a sequence of
// sequences:
//
//	token u8: literalLen (high nibble) | matchLen-4 (low nibble)
//	[literalLen extension bytes, 255-continued, when nibble == 15]
//	literal bytes
//	match offset u16 little-endian (1-65535, back from the write head)
//	[matchLen extension bytes, 255-continued, when nibble == 15]
//
// The final sequence of a stream carries literals only: it ends after
// its literal bytes, with no offset. Matches are at least 4 bytes.
// Offset 0 is invalid. The shuffled byte planes this codec sees are
// dominated by long runs (neighbouring particles share exponent and
// high-mantissa bytes), which encode as matches at offset 1 and decode
// at memmove speed.

const (
	lzMinMatch  = 4
	lzMaxOffset = 65535
	// lzHashBits sizes the match-finder table; 64 KiB of uint32 entries
	// keeps it L2-resident.
	lzHashBits = 14
)

// lzTable is the encoder's match-finder state, pooled by the codec
// layer so a block compression allocates nothing.
type lzTable [1 << lzHashBits]uint32

func lzHash(v uint64) uint32 {
	// Multiplicative hash of the low 5 bytes (40 bits): enough context
	// to make offset-1 runs and repeated structures collide usefully.
	return uint32(((v << 24) * 2654435761) >> (64 - lzHashBits))
}

// appendLZ compresses src onto dst using tab as scratch state and
// returns the extended slice. The same src always yields the same
// bytes regardless of tab's prior contents (every probed entry is
// validated against src before use, and stale entries from earlier
// blocks are cleared by the epoch check below).
func appendLZ(dst, src []byte, tab *lzTable) []byte {
	// Positions are stored +1 so the zero value never validates; the
	// table is cleared per call. Clearing 64 KiB costs ~2µs, far below
	// one hash-miss per stale entry.
	for i := range tab {
		tab[i] = 0
	}
	var litStart int
	pos := 0
	// The last lzMinMatch+4 bytes are always literals: matching there
	// cannot pay for the token, and the guard keeps the 8-byte loads in
	// bounds.
	limit := len(src) - (lzMinMatch + 4)
	step := 0
	for pos < limit {
		v := binary.LittleEndian.Uint64(src[pos:])
		h := lzHash(v)
		cand := int(tab[h]) - 1
		tab[h] = uint32(pos + 1)
		if cand >= 0 && pos-cand <= lzMaxOffset &&
			binary.LittleEndian.Uint32(src[cand:]) == uint32(v) {
			// Extend the match forward, 8 bytes at a time.
			mlen := lzMinMatch
			for pos+mlen+8 <= len(src) {
				d := binary.LittleEndian.Uint64(src[pos+mlen:]) ^ binary.LittleEndian.Uint64(src[cand+mlen:])
				if d != 0 {
					mlen += bits.TrailingZeros64(d) >> 3
					break
				}
				mlen += 8
			}
			if pos+mlen > len(src)-4 {
				mlen = len(src) - 4 - pos // keep the tail literal-only
			}
			if mlen >= lzMinMatch {
				dst = lzEmit(dst, src[litStart:pos], pos-cand, mlen)
				// Seed the table inside the match sparsely so long runs
				// stay cheap but later references can still land.
				end := pos + mlen
				for p := pos + 1; p+8 <= end && p < limit; p += 13 {
					tab[lzHash(binary.LittleEndian.Uint64(src[p:]))] = uint32(p + 1)
				}
				pos = end
				litStart = pos
				step = 0
				continue
			}
		}
		// Miss: advance faster through incompressible regions (LZ4's
		// acceleration heuristic) so random mantissa planes cost little.
		// The shift is deliberately aggressive (every 16 misses widens the
		// stride): shuffled float planes are bimodal — high-byte planes are
		// runs, low-mantissa planes are noise — and the stride resets on
		// the first match after a noise plane ends, so the cost of a noise
		// plane is near-sqrt of its length while run planes still see
		// every position.
		step++
		pos += 1 + (step >> 4)
	}
	return lzEmit(dst, src[litStart:], 0, 0)
}

// lzEmit appends one sequence: the literals, then (when mlen > 0) a
// match of mlen bytes at the given back-offset. mlen == 0 emits the
// stream-final literal-only sequence.
func lzEmit(dst, lit []byte, offset, mlen int) []byte {
	litLen := len(lit)
	tok := byte(0)
	if litLen >= 15 {
		tok = 15 << 4
	} else {
		tok = byte(litLen) << 4
	}
	m := 0
	if mlen > 0 {
		m = mlen - lzMinMatch
		if m >= 15 {
			tok |= 15
		} else {
			tok |= byte(m)
		}
	}
	dst = append(dst, tok)
	if litLen >= 15 {
		dst = lzExt(dst, litLen-15)
	}
	dst = append(dst, lit...)
	if mlen > 0 {
		dst = append(dst, byte(offset), byte(offset>>8))
		if m >= 15 {
			dst = lzExt(dst, m-15)
		}
	}
	return dst
}

// lzExt appends a 255-continued length extension.
func lzExt(dst []byte, v int) []byte {
	for v >= 255 {
		dst = append(dst, 255)
		v -= 255
	}
	return append(dst, byte(v))
}

// decodeLZ decompresses payload into dst, which must be exactly the
// decoded length. payload may arrive from disk or the network: every
// length and offset is validated before it moves bytes.
func decodeLZ(dst, payload []byte) error {
	di := 0
	pi := 0
	for pi < len(payload) {
		tok := payload[pi]
		pi++
		litLen := int(tok >> 4)
		if litLen == 15 {
			n, adv, err := lzReadExt(payload, pi, len(payload))
			if err != nil {
				return err
			}
			litLen += n
			pi += adv
		}
		if litLen > len(payload)-pi || litLen > len(dst)-di {
			return fmt.Errorf("lz: literal run of %d bytes overruns stream", litLen)
		}
		copy(dst[di:], payload[pi:pi+litLen])
		di += litLen
		pi += litLen
		if pi == len(payload) {
			// Final literal-only sequence. The token's match nibble must
			// be zero or the stream is malformed, but LZ4 tradition (and
			// robustness) is to accept the bare end after literals.
			break
		}
		if pi+2 > len(payload) {
			return fmt.Errorf("lz: truncated match offset")
		}
		offset := int(payload[pi]) | int(payload[pi+1])<<8
		pi += 2
		mlen := int(tok&15) + lzMinMatch
		if tok&15 == 15 {
			n, adv, err := lzReadExt(payload, pi, len(dst))
			if err != nil {
				return err
			}
			mlen += n
			pi += adv
		}
		if offset == 0 || offset > di {
			return fmt.Errorf("lz: match offset %d at output position %d", offset, di)
		}
		if mlen > len(dst)-di {
			return fmt.Errorf("lz: match of %d bytes overruns output", mlen)
		}
		if offset >= mlen {
			copy(dst[di:di+mlen], dst[di-offset:])
			di += mlen
		} else {
			// Overlapping match — the run case, dominant on shuffled
			// planes. Growing the window from a fixed source start keeps
			// byte-by-byte semantics while each copy call is disjoint, so
			// the run fills at memmove speed in O(log) passes.
			s := di - offset
			end := di + mlen
			for di < end {
				di += copy(dst[di:end], dst[s:di])
			}
		}
	}
	if di != len(dst) {
		return fmt.Errorf("lz: stream decodes to %d bytes, want %d", di, len(dst))
	}
	return nil
}

// lzReadExt reads a 255-continued extension at payload[pi:], returning
// the value and bytes consumed. maxLen caps the decoded value — the
// literal count is bounded by the payload, a match length by the
// output — so a hostile chain of 255s cannot spin or overflow.
func lzReadExt(payload []byte, pi, maxLen int) (int, int, error) {
	v, adv := 0, 0
	for {
		if pi+adv >= len(payload) {
			return 0, 0, fmt.Errorf("lz: truncated length extension")
		}
		b := payload[pi+adv]
		adv++
		v += int(b)
		if v > maxLen {
			return 0, 0, fmt.Errorf("lz: length extension overflows stream")
		}
		if b != 255 {
			return v, adv, nil
		}
	}
}
