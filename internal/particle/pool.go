package particle

import (
	"fmt"
	"runtime"
	"sync"
)

// DecodePool decodes record payloads into disjoint regions of one
// pre-sized destination buffer concurrently. It is the consumer side of
// the arrival-order aggregation path: the aggregator sizes its buffer
// from the announced counts, receives payloads in whatever order they
// arrive, and hands each one to the pool with the region offset its
// sender was assigned — so a slow sender delays only its own region's
// decode, never the pipeline behind it.
//
// Ownership contract (statically enforced by spiolint's bufhandoff
// analyzer, like the WriteAsync→Wait window): the destination buffer is
// off-limits to the owner from NewDecodePool until Wait returns.
// Callers must hand each payload a region disjoint from every other
// payload's; the pool checks only that regions stay inside the buffer.
type DecodePool struct {
	dst    *Buffer
	sem    chan struct{}
	inline bool
	wg     sync.WaitGroup

	mu   sync.Mutex
	err  error
	cur  int
	peak int
}

// NewDecodePool returns a pool decoding into dst with at most workers
// concurrent decodes (workers <= 0 means GOMAXPROCS). dst must already
// be sized (SetLen) to cover every region that will be decoded.
func NewDecodePool(dst *Buffer, workers int) *DecodePool {
	if dst == nil {
		panic("particle: NewDecodePool(nil)")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// A single worker cannot overlap decodes, so spawning a goroutine per
	// payload would buy nothing but scheduling: decode synchronously in
	// Go instead. The ownership contract is unchanged.
	return &DecodePool{dst: dst, sem: make(chan struct{}, workers), inline: workers == 1}
}

// Go schedules one payload for decoding into particles starting at
// region offset at. It returns immediately; the decode runs on a pool
// worker. Errors (misaligned payloads, out-of-range regions) are
// collected and reported by Wait. The pool takes ownership of data until
// Wait returns.
func (p *DecodePool) Go(data []byte, at int) {
	if p.inline {
		// The inline path runs on the caller's goroutine, but err/peak are
		// still read through Wait and PeakConcurrency — keep every access
		// under p.mu so the field has one lock discipline on all paths.
		p.mu.Lock()
		p.peak = 1
		p.mu.Unlock()
		if err := p.dst.DecodeRecordsAt(data, at); err != nil {
			p.mu.Lock()
			if p.err == nil {
				p.err = fmt.Errorf("particle: pool decode at %d: %w", at, err)
			}
			p.mu.Unlock()
		}
		return
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		p.mu.Lock()
		p.cur++
		if p.cur > p.peak {
			p.peak = p.cur
		}
		p.mu.Unlock()
		err := p.dst.DecodeRecordsAt(data, at)
		p.mu.Lock()
		p.cur--
		if err != nil && p.err == nil {
			p.err = fmt.Errorf("particle: pool decode at %d: %w", at, err)
		}
		p.mu.Unlock()
	}()
}

// Wait blocks until every scheduled decode has finished and returns the
// first decode error. The destination buffer is owned by the caller
// again once Wait returns. Wait may be called once; scheduling more work
// after Wait is a caller bug.
func (p *DecodePool) Wait() error {
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// PeakConcurrency returns the maximum number of decodes that ran
// simultaneously — the observability hook behind agg.Timing's
// DecodeConcurrency counter. Valid after Wait.
func (p *DecodePool) PeakConcurrency() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}
