package particle

import (
	"strings"
	"testing"
)

func TestUintahSchemaMatchesPaper(t *testing.T) {
	s := Uintah()
	// Section 5.1: 15 double precision values and 1 single precision
	// variable, i.e. 15*8 + 4 = 124 bytes per particle.
	if got := s.Stride(); got != 124 {
		t.Errorf("Uintah stride = %d, want 124", got)
	}
	doubles := 0
	floats := 0
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		switch f.Kind {
		case Float64:
			doubles += f.Components
		case Float32:
			floats += f.Components
		}
	}
	if doubles != 15 || floats != 1 {
		t.Errorf("Uintah has %d doubles and %d floats, want 15 and 1", doubles, floats)
	}
	// 32K particles/core * 124B = ~4MB/core, 64K -> ~8MB (paper: "4 and 8
	// MB respectively, data per core").
	if mb := float64(32768*s.Stride()) / (1 << 20); mb < 3.5 || mb > 4.5 {
		t.Errorf("32K particles = %.2f MB, paper says ~4 MB", mb)
	}
}

func TestSchemaValidation(t *testing.T) {
	cases := []struct {
		name   string
		fields []Field
		substr string
	}{
		{"empty", nil, "at least"},
		{"no position first", []Field{{Name: "density", Kind: Float64, Components: 1}}, "first field"},
		{"position wrong kind", []Field{{Name: PositionField, Kind: Float32, Components: 3}}, "first field"},
		{"position wrong comps", []Field{{Name: PositionField, Kind: Float64, Components: 2}}, "first field"},
		{"duplicate", []Field{
			{Name: PositionField, Kind: Float64, Components: 3},
			{Name: "a", Kind: Float64, Components: 1},
			{Name: "a", Kind: Float64, Components: 1},
		}, "duplicate"},
		{"zero components", []Field{
			{Name: PositionField, Kind: Float64, Components: 3},
			{Name: "a", Kind: Float64, Components: 0},
		}, "positive components"},
		{"empty name", []Field{
			{Name: PositionField, Kind: Float64, Components: 3},
			{Name: "", Kind: Float64, Components: 1},
		}, "empty field name"},
		{"bad kind", []Field{
			{Name: PositionField, Kind: Float64, Components: 3},
			{Name: "a", Kind: Kind(9), Components: 1},
		}, "unknown kind"},
		{"newline in name", []Field{
			{Name: PositionField, Kind: Float64, Components: 3},
			{Name: "a\nb", Kind: Float64, Components: 1},
		}, "forbidden"},
	}
	for _, c := range cases {
		_, err := NewSchema(c.fields)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.substr)
		}
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := Uintah()
	if s.NumFields() != 6 {
		t.Errorf("NumFields = %d", s.NumFields())
	}
	if got := s.FieldIndex("stress"); got != 1 {
		t.Errorf("FieldIndex(stress) = %d", got)
	}
	if got := s.FieldIndex("nope"); got != -1 {
		t.Errorf("FieldIndex(nope) = %d", got)
	}
	fields := s.Fields()
	fields[0].Name = "mutated"
	if s.Field(0).Name != PositionField {
		t.Error("Fields() must return a copy")
	}
}

func TestSchemaEqual(t *testing.T) {
	a, b := Uintah(), Uintah()
	if !a.Equal(b) {
		t.Error("identical schemas not Equal")
	}
	if a.Equal(PositionOnly()) {
		t.Error("different schemas Equal")
	}
	var nilSchema *Schema
	if nilSchema.Equal(a) || a.Equal(nilSchema) {
		t.Error("nil schema comparison")
	}
	if !nilSchema.Equal(nil) {
		t.Error("nil == nil")
	}
}

func TestKindSize(t *testing.T) {
	if Float64.Size() != 8 || Float32.Size() != 4 {
		t.Error("kind sizes wrong")
	}
}

func TestSchemaString(t *testing.T) {
	s := PositionOnly().String()
	if !strings.Contains(s, "position") || !strings.Contains(s, "float64[3]") {
		t.Errorf("String() = %q", s)
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema on invalid schema should panic")
		}
	}()
	MustSchema(nil)
}
