package particle

import (
	"math"
	"testing"

	"spio/internal/geom"
)

var genDomain = geom.NewBox(geom.V3(0, 0, 0), geom.V3(4, 4, 4))

func TestUniformDeterministic(t *testing.T) {
	patch := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	a := Uniform(Uintah(), patch, 100, 7, 3)
	b := Uniform(Uintah(), patch, 100, 7, 3)
	if !a.Equal(b) {
		t.Error("same (seed, rank) should regenerate identical particles")
	}
	c := Uniform(Uintah(), patch, 100, 7, 4)
	if a.Equal(c) {
		t.Error("different ranks should differ")
	}
	d := Uniform(Uintah(), patch, 100, 8, 3)
	if a.Equal(d) {
		t.Error("different seeds should differ")
	}
}

func TestUniformInPatch(t *testing.T) {
	patch := geom.NewBox(geom.V3(2, 0, 1), geom.V3(3, 2, 4))
	b := Uniform(Uintah(), patch, 1000, 1, 0)
	if b.Len() != 1000 {
		t.Fatalf("Len = %d", b.Len())
	}
	for i := 0; i < b.Len(); i++ {
		if !patch.Contains(b.Position(i)) {
			t.Fatalf("particle %d at %v escapes patch %v", i, b.Position(i), patch)
		}
	}
}

func TestUniformGlobalIDsUnique(t *testing.T) {
	patch := geom.UnitBox()
	seen := make(map[float64]bool)
	for rank := 0; rank < 4; rank++ {
		b := Uniform(Uintah(), patch, 50, 1, rank)
		ids := b.Float64Field(b.Schema().FieldIndex("id"))
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("duplicate global id %v", id)
			}
			seen[id] = true
		}
	}
}

func TestUniformAuxFieldsPlausible(t *testing.T) {
	b := Uniform(Uintah(), geom.UnitBox(), 200, 3, 0)
	dens := b.Float64Field(b.Schema().FieldIndex("density"))
	for i, d := range dens {
		if d <= 0 || math.IsNaN(d) {
			t.Fatalf("density[%d] = %v not physical", i, d)
		}
	}
	vols := b.Float64Field(b.Schema().FieldIndex("volume"))
	for i, v := range vols {
		if v <= 0 {
			t.Fatalf("volume[%d] = %v not physical", i, v)
		}
	}
	types := b.Float32Field(b.Schema().FieldIndex("type"))
	for i, ty := range types {
		if ty < 0 || ty > 3 || ty != float32(int(ty)) {
			t.Fatalf("type[%d] = %v not a small integer", i, ty)
		}
	}
}

func TestClusteredInPatchAndClustered(t *testing.T) {
	patch := geom.NewBox(geom.V3(0, 0, 0), geom.V3(2, 2, 2))
	b := Clustered(Uintah(), patch, 2000, 3, 5, 0)
	if b.Len() != 2000 {
		t.Fatalf("Len = %d", b.Len())
	}
	for i := 0; i < b.Len(); i++ {
		if !patch.Contains(b.Position(i)) {
			t.Fatalf("particle escapes patch")
		}
	}
	// Clustering sanity: an 8-cell histogram should be far from uniform.
	g := geom.NewGrid(patch, geom.I3(2, 2, 2))
	counts := make([]int, 8)
	for i := 0; i < b.Len(); i++ {
		counts[g.LocateLinear(b.Position(i))]++
	}
	mx, mn := 0, b.Len()
	for _, c := range counts {
		if c > mx {
			mx = c
		}
		if c < mn {
			mn = c
		}
	}
	if mx < 2*mn+10 {
		t.Errorf("clustered distribution suspiciously uniform: counts %v", counts)
	}
}

func TestInjectionEarlyTimeEmptyFarPatches(t *testing.T) {
	// At t = 0.25 only the first quarter of the X range holds particles.
	farPatch := geom.NewBox(geom.V3(3, 0, 0), geom.V3(4, 4, 4))
	b := Injection(Uintah(), genDomain, farPatch, 1000, 0.25, 9, 1)
	if b.Len() != 0 {
		t.Errorf("far patch should be empty at t=0.25, got %d", b.Len())
	}
	nearPatch := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 4, 4))
	nb := Injection(Uintah(), genDomain, nearPatch, 1000, 0.25, 9, 0)
	if nb.Len() == 0 {
		t.Error("inlet patch should hold particles")
	}
	for i := 0; i < nb.Len(); i++ {
		p := nb.Position(i)
		if p.X >= 1.0 {
			t.Fatalf("particle beyond the injection front: %v", p)
		}
	}
}

func TestInjectionFullTimeFillsDomain(t *testing.T) {
	patch := geom.NewBox(geom.V3(3, 0, 0), geom.V3(4, 4, 4))
	b := Injection(Uintah(), genDomain, patch, 500, 1.0, 9, 2)
	if b.Len() != 500 {
		t.Errorf("full-time far patch should hold its full load, got %d", b.Len())
	}
}

func TestOccupiedRegion(t *testing.T) {
	r := OccupiedRegion(genDomain, 0.25)
	if r.Hi.X != 1 || r.Hi.Y != 4 || r.Hi.Z != 4 {
		t.Errorf("OccupiedRegion(0.25) = %v", r)
	}
	if got := OccupiedRegion(genDomain, 1.0); got != genDomain {
		t.Errorf("OccupiedRegion(1) = %v", got)
	}
}

func TestOccupiedRegionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OccupiedRegion(genDomain, 0)
}

func TestOccupancyConservesTotal(t *testing.T) {
	// 4x1x1 patches over the domain; at q=0.5 the two low-X ranks hold
	// everything, at ~double density, and the total stays n*ranks.
	g := geom.NewGrid(genDomain, geom.I3(4, 1, 1))
	const perRank = 1000
	for _, q := range []float64{1.0, 0.5, 0.25} {
		total := 0
		emptyRanks := 0
		for rank := 0; rank < 4; rank++ {
			patch := g.CellBoxLinear(rank)
			b := Occupancy(Uintah(), genDomain, patch, perRank, q, 11, rank)
			total += b.Len()
			if b.Len() == 0 {
				emptyRanks++
			}
			region := OccupiedRegion(genDomain, q)
			for i := 0; i < b.Len(); i++ {
				if !region.Contains(b.Position(i)) {
					t.Fatalf("q=%v: particle outside occupied region", q)
				}
			}
		}
		if total != 4*perRank {
			t.Errorf("q=%v: total = %d, want %d", q, total, 4*perRank)
		}
		wantEmpty := int(math.Round(4 * (1 - q)))
		if emptyRanks != wantEmpty {
			t.Errorf("q=%v: %d empty ranks, want %d", q, emptyRanks, wantEmpty)
		}
	}
}

func TestAdvectStaysInDomain(t *testing.T) {
	b := Uniform(Uintah(), genDomain, 500, 13, 0)
	for step := 0; step < 20; step++ {
		Advect(b, genDomain, geom.V3(0.9, -0.4, 1.7), 0.5)
		for i := 0; i < b.Len(); i++ {
			if !genDomain.Contains(b.Position(i)) {
				t.Fatalf("step %d: particle %d escaped to %v", step, i, b.Position(i))
			}
		}
	}
}

func TestAdvectMovesParticles(t *testing.T) {
	b := Uniform(Uintah(), genDomain, 10, 13, 0)
	before := b.Slice(0, b.Len())
	Advect(b, genDomain, geom.V3(0.1, 0, 0), 1)
	if b.Equal(before) {
		t.Error("Advect with nonzero velocity should move particles")
	}
}

func TestRankSeedDecorrelated(t *testing.T) {
	seen := make(map[int64]bool)
	for rank := 0; rank < 1000; rank++ {
		s := rankSeed(42, rank)
		if seen[s] {
			t.Fatalf("rankSeed collision at rank %d", rank)
		}
		seen[s] = true
	}
}
