package particle

import "sync"

// Column recycling for the aggregation hot path. The arrival-order
// exchange materializes one multi-megabyte buffer per aggregator per
// write, fills every particle of it (self copy + one decode region per
// sender), and drops it as soon as the data file lands. Allocating those
// columns fresh each time makes the runtime zero memory that is about to
// be overwritten wholesale; recycling them through a pool skips both the
// allocation and the zeroing.
//
// The pools hold columns of mixed lengths (one per field kind, not per
// field shape): Get returns a recycled column only when its capacity
// already covers the request and lets the garbage collector reclaim the
// rest. sync.Pool gives the required happens-before edge between Put and
// a later Get, so recycled columns are race-clean even when the previous
// owner filled them from decode workers.

var (
	colPool64 sync.Pool // *[]float64
	colPool32 sync.Pool // *[]float32
	aosPool   sync.Pool // *[]byte, encoded-mirror staging (mirror.go)
)

// GetAoS returns an n-byte slice for assembling a record-encoded (AoS)
// staging area, recycled when possible. Contents are unspecified — the
// caller must overwrite every byte it will expose (SetEncodedMirror
// consumers read all of it).
func GetAoS(n int) []byte {
	if v, _ := aosPool.Get().(*[]byte); v != nil && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]byte, n)
}

func putAoS(b []byte) {
	aosPool.Put(&b)
}

func getCol64(want int) []float64 {
	if v, _ := colPool64.Get().(*[]float64); v != nil && cap(*v) >= want {
		return (*v)[:want]
	}
	return make([]float64, want)
}

func getCol32(want int) []float32 {
	if v, _ := colPool32.Get().(*[]float32); v != nil && cap(*v) >= want {
		return (*v)[:want]
	}
	return make([]float32, want)
}

// NewBufferOverwrite returns a buffer of length n whose particle values
// are unspecified — possibly stale values from a recycled buffer, never
// guaranteed zeros. It is the allocation primitive for code that
// overwrites every particle before anyone reads one (the arrival-order
// aggregation buffer, columnar gathers): such callers pay for zeroing
// twice with NewBuffer+SetLen and not at all here. Any particle the
// caller fails to overwrite holds garbage, so this is only for
// full-coverage fills; use NewBuffer+SetLen when zero-extension
// semantics matter.
func NewBufferOverwrite(schema *Schema, n int) *Buffer {
	if schema == nil {
		panic("particle: nil schema")
	}
	b := &Buffer{schema: schema, n: n, fieldSlot: make([]int, schema.NumFields())}
	for i := 0; i < schema.NumFields(); i++ {
		f := schema.Field(i)
		switch f.Kind {
		case Float64:
			b.fieldSlot[i] = len(b.f64)
			b.f64 = append(b.f64, getCol64(n*f.Components))
		case Float32:
			b.fieldSlot[i] = len(b.f32)
			b.f32 = append(b.f32, getCol32(n*f.Components))
		}
	}
	return b
}

// Recycle returns b's columns to the recycle pools for a later
// NewBufferOverwrite. The caller must be the buffer's sole owner and
// must not touch b (or any slice previously obtained from its field
// accessors) afterwards.
func Recycle(b *Buffer) {
	if b == nil {
		return
	}
	for i := range b.f64 {
		col := b.f64[i]
		colPool64.Put(&col)
		b.f64[i] = nil
	}
	for i := range b.f32 {
		col := b.f32[i]
		colPool32.Put(&col)
		b.f32[i] = nil
	}
	b.dropMirror()
	b.n = 0
}
