package particle

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"io"
	"sync"
)

// Pooled per-call codec state. A flate.Writer alone is ~600 KiB of
// freshly zeroed tables per NewWriter call, and the serial PR 8 codec
// paid that — plus fresh shuffle scratch and a fresh column — for every
// block of every field. One codecState carries every piece of reusable
// codec machinery; CompressBlock/DecompressBlockInto check one out per
// call, so compressing N blocks on W workers allocates at most W states
// total, regardless of N.
//
// Ownership rule: a codecState is owned by exactly one (de)compression
// call from Get to Put; nothing inside it survives the call — payloads
// returned to callers are always appended onto caller-owned slices.
type codecState struct {
	fw  *flate.Writer // lazily built, Reset per use
	fr  io.ReadCloser // flate reader, Reset per use (flate.Resetter)
	br  bytes.Reader  // resettable source the flate reader drains
	tab *lzTable      // LZ match-finder table, cleared per block
	out sliceWriter   // compressed-bytes staging (flate destination)
	shf []byte        // shuffled byte planes
}

var codecStatePool sync.Pool // *codecState

func getCodecState() *codecState {
	if st, _ := codecStatePool.Get().(*codecState); st != nil {
		return st
	}
	return &codecState{tab: new(lzTable)}
}

func putCodecState(st *codecState) {
	codecStatePool.Put(st)
}

// shuffled returns st's shuffle scratch resized to n bytes (contents
// unspecified; every byte is overwritten before use).
func (st *codecState) shuffled(n int) []byte {
	if cap(st.shf) < n {
		st.shf = make([]byte, n)
	}
	return st.shf[:n]
}

// flateWriter returns the pooled flate writer reset onto st.out (which
// is itself reset to empty).
func (st *codecState) flateWriter() *flate.Writer {
	st.out.b = st.out.b[:0]
	if st.fw == nil {
		zw, err := flate.NewWriter(&st.out, flate.BestSpeed)
		if err != nil {
			// flate.NewWriter fails only on an invalid level, which
			// BestSpeed is not.
			panic(err)
		}
		st.fw = zw
		return zw
	}
	st.fw.Reset(&st.out)
	return st.fw
}

// flateReader returns the pooled flate reader reset onto payload.
func (st *codecState) flateReader(payload []byte) io.Reader {
	st.br.Reset(payload)
	if st.fr == nil {
		st.fr = flate.NewReader(&st.br)
		return st.fr
	}
	// flate.NewReader's concrete type implements flate.Resetter; the
	// stdlib documents Reset as the intended reuse path.
	if err := st.fr.(flate.Resetter).Reset(&st.br, nil); err != nil {
		panic(err) // Reset with a nil dictionary cannot fail
	}
	return st.fr
}

// sliceWriter is an io.Writer appending into a reusable byte slice.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// The byte-plane shuffle, fused with the AoS gather/scatter. A field's
// column inside a record image is already strided; shuffling it into
// planes via an intermediate contiguous column costs two extra full
// passes. These kernels move bytes straight between the record image
// and the plane image, tiled over records so one tile of records stays
// cache-resident while all of its planes are visited.
//
// Plane layout: plane p of a field with c components of sz bytes holds
// byte p of every component value in record-major component order —
// shuf[p*nelem + (i*c + k)] == records[i*stride + off + k*sz + p].

// shuffleTile is the record-tile width of the generic (odd-width)
// kernels: 256 records of a 124-byte stride is ~31 KiB, comfortably
// L1/L2 resident across the sz plane passes.
const shuffleTile = 256

// Masks for the register-resident 8x8 byte-matrix transpose.
const (
	tm8  = 0x00FF00FF00FF00FF
	tm16 = 0x0000FFFF0000FFFF
	tm32 = 0x00000000FFFFFFFF
)

// transpose8x8 transposes an 8x8 byte matrix held row-major in eight
// words: output word p carries byte p of every input word, with input
// j landing at output byte j. Three rounds of masked merges (1-, 2-,
// then 4-byte lanes) — ~36 ALU ops for 64 bytes, no memory traffic.
// The transpose is its own inverse.
func transpose8x8(v0, v1, v2, v3, v4, v5, v6, v7 uint64) (uint64, uint64, uint64, uint64, uint64, uint64, uint64, uint64) {
	a0 := v0&tm8 | v1&tm8<<8
	a1 := v0>>8&tm8 | v1&^tm8
	a2 := v2&tm8 | v3&tm8<<8
	a3 := v2>>8&tm8 | v3&^tm8
	a4 := v4&tm8 | v5&tm8<<8
	a5 := v4>>8&tm8 | v5&^tm8
	a6 := v6&tm8 | v7&tm8<<8
	a7 := v6>>8&tm8 | v7&^tm8

	b0 := a0&tm16 | a2&tm16<<16
	b2 := a0>>16&tm16 | a2&^tm16
	b1 := a1&tm16 | a3&tm16<<16
	b3 := a1>>16&tm16 | a3&^tm16
	b4 := a4&tm16 | a6&tm16<<16
	b6 := a4>>16&tm16 | a6&^tm16
	b5 := a5&tm16 | a7&tm16<<16
	b7 := a5>>16&tm16 | a7&^tm16

	w0 := b0&tm32 | b4<<32
	w4 := b0>>32 | b4&^tm32
	w1 := b1&tm32 | b5<<32
	w5 := b1>>32 | b5&^tm32
	w2 := b2&tm32 | b6<<32
	w6 := b2>>32 | b6&^tm32
	w3 := b3&tm32 | b7<<32
	w7 := b3>>32 | b7&^tm32
	return w0, w1, w2, w3, w4, w5, w6, w7
}

// shuffleFromRecords fills shuf (count*c*sz bytes of byte planes) from
// the field at offset off of a record image.
//
// The 8- and 4-byte widths (every schema-expressible field) get
// word-at-a-time kernels: each component value is loaded once as a
// uint64/uint32 and its bytes scattered to the sz plane rows, so the
// record image is walked exactly once (one wide load per value instead
// of sz strided byte loads) and the sz write streams advance
// sequentially. That single pass is what the wire encode path spends
// most of its time in, so its shape matters.
func shuffleFromRecords(shuf, records []byte, stride, off, sz, c, count int) {
	nelem := count * c
	switch sz {
	case 8:
		p0, p1, p2, p3 := shuf[:nelem], shuf[nelem:2*nelem], shuf[2*nelem:3*nelem], shuf[3*nelem:4*nelem]
		p4, p5, p6, p7 := shuf[4*nelem:5*nelem], shuf[5*nelem:6*nelem], shuf[6*nelem:7*nelem], shuf[7*nelem:8*nelem]
		// Eight elements at a time: gather eight values, transpose the
		// 8x8 byte matrix in registers, store one word per plane.
		pos, k, e := off, 0, 0
		for ; e+8 <= nelem; e += 8 {
			var v [8]uint64
			for j := range v {
				v[j] = binary.LittleEndian.Uint64(records[pos:])
				pos += 8
				if k++; k == c {
					k = 0
					pos += stride - c*8
				}
			}
			w0, w1, w2, w3, w4, w5, w6, w7 := transpose8x8(v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7])
			binary.LittleEndian.PutUint64(p0[e:], w0)
			binary.LittleEndian.PutUint64(p1[e:], w1)
			binary.LittleEndian.PutUint64(p2[e:], w2)
			binary.LittleEndian.PutUint64(p3[e:], w3)
			binary.LittleEndian.PutUint64(p4[e:], w4)
			binary.LittleEndian.PutUint64(p5[e:], w5)
			binary.LittleEndian.PutUint64(p6[e:], w6)
			binary.LittleEndian.PutUint64(p7[e:], w7)
		}
		for ; e < nelem; e++ {
			v := binary.LittleEndian.Uint64(records[pos:])
			pos += 8
			if k++; k == c {
				k = 0
				pos += stride - c*8
			}
			p0[e] = byte(v)
			p1[e] = byte(v >> 8)
			p2[e] = byte(v >> 16)
			p3[e] = byte(v >> 24)
			p4[e] = byte(v >> 32)
			p5[e] = byte(v >> 40)
			p6[e] = byte(v >> 48)
			p7[e] = byte(v >> 56)
		}
	case 4:
		p0, p1, p2, p3 := shuf[:nelem], shuf[nelem:2*nelem], shuf[2*nelem:3*nelem], shuf[3*nelem:4*nelem]
		for i := 0; i < count; i++ {
			base := i*stride + off
			e := i * c
			for k := 0; k < c; k++ {
				v := binary.LittleEndian.Uint32(records[base+k*4:])
				p0[e+k] = byte(v)
				p1[e+k] = byte(v >> 8)
				p2[e+k] = byte(v >> 16)
				p3[e+k] = byte(v >> 24)
			}
		}
	default:
		for lo := 0; lo < count; lo += shuffleTile {
			hi := lo + shuffleTile
			if hi > count {
				hi = count
			}
			for p := 0; p < sz; p++ {
				row := shuf[p*nelem : (p+1)*nelem]
				for i := lo; i < hi; i++ {
					base := i*stride + off + p
					for k := 0; k < c; k++ {
						row[i*c+k] = records[base+k*sz]
					}
				}
			}
		}
	}
}

// unshuffleToRecords is the inverse: it gathers one byte from each
// plane row and stores the reassembled value with a single wide write.
func unshuffleToRecords(records, shuf []byte, stride, off, sz, c, count int) {
	nelem := count * c
	switch sz {
	case 8:
		p0, p1, p2, p3 := shuf[:nelem], shuf[nelem:2*nelem], shuf[2*nelem:3*nelem], shuf[3*nelem:4*nelem]
		p4, p5, p6, p7 := shuf[4*nelem:5*nelem], shuf[5*nelem:6*nelem], shuf[6*nelem:7*nelem], shuf[7*nelem:8*nelem]
		// The byte-matrix transpose is an involution: load one word per
		// plane, transpose, scatter eight reassembled values.
		pos, k, e := off, 0, 0
		for ; e+8 <= nelem; e += 8 {
			w0 := binary.LittleEndian.Uint64(p0[e:])
			w1 := binary.LittleEndian.Uint64(p1[e:])
			w2 := binary.LittleEndian.Uint64(p2[e:])
			w3 := binary.LittleEndian.Uint64(p3[e:])
			w4 := binary.LittleEndian.Uint64(p4[e:])
			w5 := binary.LittleEndian.Uint64(p5[e:])
			w6 := binary.LittleEndian.Uint64(p6[e:])
			w7 := binary.LittleEndian.Uint64(p7[e:])
			v0, v1, v2, v3, v4, v5, v6, v7 := transpose8x8(w0, w1, w2, w3, w4, w5, w6, w7)
			for _, v := range [8]uint64{v0, v1, v2, v3, v4, v5, v6, v7} {
				binary.LittleEndian.PutUint64(records[pos:], v)
				pos += 8
				if k++; k == c {
					k = 0
					pos += stride - c*8
				}
			}
		}
		for ; e < nelem; e++ {
			v := uint64(p0[e]) | uint64(p1[e])<<8 | uint64(p2[e])<<16 | uint64(p3[e])<<24 |
				uint64(p4[e])<<32 | uint64(p5[e])<<40 | uint64(p6[e])<<48 | uint64(p7[e])<<56
			binary.LittleEndian.PutUint64(records[pos:], v)
			pos += 8
			if k++; k == c {
				k = 0
				pos += stride - c*8
			}
		}
	case 4:
		p0, p1, p2, p3 := shuf[:nelem], shuf[nelem:2*nelem], shuf[2*nelem:3*nelem], shuf[3*nelem:4*nelem]
		for i := 0; i < count; i++ {
			base := i*stride + off
			e := i * c
			for k := 0; k < c; k++ {
				v := uint32(p0[e+k]) | uint32(p1[e+k])<<8 | uint32(p2[e+k])<<16 | uint32(p3[e+k])<<24
				binary.LittleEndian.PutUint32(records[base+k*4:], v)
			}
		}
	default:
		for lo := 0; lo < count; lo += shuffleTile {
			hi := lo + shuffleTile
			if hi > count {
				hi = count
			}
			for p := 0; p < sz; p++ {
				row := shuf[p*nelem : (p+1)*nelem]
				for i := lo; i < hi; i++ {
					base := i*stride + off + p
					for k := 0; k < c; k++ {
						records[base+k*sz] = row[i*c+k]
					}
				}
			}
		}
	}
}
