package particle

import (
	"math"
	"math/rand"

	"spio/internal/geom"
)

// Generators produce the evaluation workloads of the paper:
//
//   - Uniform: every rank holds the same number of particles spread
//     uniformly over its patch (the weak-scaling write workload,
//     Section 5.2).
//   - Clustered: Gaussian blobs, a generic non-uniform density
//     (Fig. 10a).
//   - Injection: particles injected near one domain face and advected,
//     the coal-injection style load of Fig. 9 / Fig. 10c.
//   - Occupancy: all particles confined to a fraction of the domain
//     (Fig. 10d and the Fig. 11 adaptive-aggregation study).
//
// All generators are deterministic in (seed, rank) so that distributed
// tests can regenerate any rank's data independently.

// rankSeed derives a per-rank RNG seed from a base seed, using a
// splitmix64 step so that nearby ranks get uncorrelated streams.
func rankSeed(seed int64, rank int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(rank+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// fillAux populates every non-position field of particle i (the last
// appended one) deterministically from its position and global ID, giving
// physically plausible values: symmetric stress, positive density and
// volume, sequential IDs, small integer types.
func fillAux(b *Buffer, i int, globalID float64) {
	pos := b.Position(i)
	for fi := 1; fi < b.schema.NumFields(); fi++ {
		f := b.schema.Field(fi)
		switch f.Name {
		case "stress":
			s := b.Float64Field(fi)
			base := i * f.Components
			for k := 0; k < f.Components; k++ {
				s[base+k] = 0.1 * math.Sin(pos.X*float64(k+1)+pos.Y) * math.Cos(pos.Z)
			}
		case "density":
			b.Float64Field(fi)[i] = 1.0 + 0.5*math.Sin(pos.X*7)*math.Sin(pos.Y*5)
		case "volume":
			b.Float64Field(fi)[i] = 1e-6 * (1 + 0.1*math.Cos(pos.Z*3))
		case "id":
			b.Float64Field(fi)[i] = globalID
		case "type":
			if f.Kind == Float32 {
				b.Float32Field(fi)[i] = float32(int(globalID) % 4)
			} else {
				b.Float64Field(fi)[i] = float64(int(globalID) % 4)
			}
		default:
			// Unknown auxiliary fields get a position-derived value.
			switch f.Kind {
			case Float64:
				s := b.Float64Field(fi)
				base := i * f.Components
				for k := 0; k < f.Components; k++ {
					s[base+k] = pos.Len() + float64(k)
				}
			case Float32:
				s := b.Float32Field(fi)
				base := i * f.Components
				for k := 0; k < f.Components; k++ {
					s[base+k] = float32(pos.Len()) + float32(k)
				}
			}
		}
	}
}

// appendAt appends one particle at position p with every auxiliary field
// filled, growing all field slices by exactly one record.
func appendAt(b *Buffer, p geom.Vec3, globalID float64) {
	for fi := 0; fi < b.schema.NumFields(); fi++ {
		f := b.schema.Field(fi)
		switch f.Kind {
		case Float64:
			slot := b.fieldSlot[fi]
			b.f64[slot] = append(b.f64[slot], make([]float64, f.Components)...)
		case Float32:
			slot := b.fieldSlot[fi]
			b.f32[slot] = append(b.f32[slot], make([]float32, f.Components)...)
		}
	}
	i := b.n
	b.n++
	b.SetPosition(i, p)
	fillAux(b, i, globalID)
}

// Uniform generates n particles uniformly distributed in patch for the
// given rank. IDs are globally unique when every rank generates the same
// n: id = rank*n + i.
func Uniform(schema *Schema, patch geom.Box, n int, seed int64, rank int) *Buffer {
	r := rand.New(rand.NewSource(rankSeed(seed, rank)))
	b := NewBuffer(schema, n)
	sz := patch.Size()
	for i := 0; i < n; i++ {
		p := geom.Vec3{
			X: patch.Lo.X + r.Float64()*sz.X,
			Y: patch.Lo.Y + r.Float64()*sz.Y,
			Z: patch.Lo.Z + r.Float64()*sz.Z,
		}
		appendAt(b, p, float64(rank)*float64(n)+float64(i))
	}
	return b
}

// Clustered generates n particles in patch drawn from `clusters` Gaussian
// blobs whose centers are themselves uniform in the patch. Particles
// falling outside the patch are resampled, so the count is exact.
func Clustered(schema *Schema, patch geom.Box, n, clusters int, seed int64, rank int) *Buffer {
	if clusters <= 0 {
		clusters = 1
	}
	r := rand.New(rand.NewSource(rankSeed(seed, rank)))
	sz := patch.Size()
	centers := make([]geom.Vec3, clusters)
	for c := range centers {
		centers[c] = geom.Vec3{
			X: patch.Lo.X + r.Float64()*sz.X,
			Y: patch.Lo.Y + r.Float64()*sz.Y,
			Z: patch.Lo.Z + r.Float64()*sz.Z,
		}
	}
	sigma := sz.Len() / (6 * float64(clusters))
	b := NewBuffer(schema, n)
	for i := 0; i < n; i++ {
		var p geom.Vec3
		for {
			c := centers[r.Intn(clusters)]
			p = geom.Vec3{
				X: c.X + r.NormFloat64()*sigma,
				Y: c.Y + r.NormFloat64()*sigma,
				Z: c.Z + r.NormFloat64()*sigma,
			}
			if patch.Contains(p) {
				break
			}
		}
		appendAt(b, p, float64(rank)*float64(n)+float64(i))
	}
	return b
}

// Injection generates particles entering the domain through the low-X
// face and advected toward +X. At time t in [0,1] the particle front has
// reached x = Lo.X + t*width, so early timesteps occupy a thin slab —
// the injected-over-time scenario of Fig. 10c. The count generated within
// patch is proportional to the overlap of patch with the occupied slab,
// so ranks outside the front hold zero particles.
func Injection(schema *Schema, domain, patch geom.Box, nPerFullPatch int, t float64, seed int64, rank int) *Buffer {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	front := domain.Lo.X + t*(domain.Hi.X-domain.Lo.X)
	slab := geom.NewBox(domain.Lo, geom.Vec3{X: front, Y: domain.Hi.Y, Z: domain.Hi.Z})
	region := patch.Intersect(slab)
	if region.IsEmpty() {
		return NewBuffer(schema, 0)
	}
	// Keep per-rank load proportional to occupied patch volume; density
	// rises toward the inlet (x = Lo.X).
	frac := region.Volume() / patch.Volume()
	n := int(math.Round(float64(nPerFullPatch) * frac))
	if n == 0 {
		return NewBuffer(schema, 0)
	}
	r := rand.New(rand.NewSource(rankSeed(seed, rank)))
	b := NewBuffer(schema, n)
	sz := region.Size()
	for i := 0; i < n; i++ {
		// Bias x toward the inlet with a squared uniform variate.
		u := r.Float64()
		p := geom.Vec3{
			X: region.Lo.X + u*u*sz.X,
			Y: region.Lo.Y + r.Float64()*sz.Y,
			Z: region.Lo.Z + r.Float64()*sz.Z,
		}
		appendAt(b, p, float64(rank)*float64(nPerFullPatch)+float64(i))
	}
	return b
}

// OccupiedRegion returns the sub-box of domain holding all particles in
// the Fig. 11 occupancy workload: the fraction q (0 < q <= 1) of the
// domain nearest the low-X face.
func OccupiedRegion(domain geom.Box, q float64) geom.Box {
	if q <= 0 || q > 1 {
		panic("particle: occupancy fraction must be in (0, 1]")
	}
	hi := domain.Hi
	hi.X = domain.Lo.X + q*(domain.Hi.X-domain.Lo.X)
	return geom.NewBox(domain.Lo, hi)
}

// Occupancy generates the Fig. 11 workload for one rank: the total
// particle count across all ranks is held constant at nRanks*nPerRank,
// but all particles live inside OccupiedRegion(domain, q). A rank whose
// patch lies outside the region holds zero particles; ranks inside hold
// proportionally more (density 1/q), exactly the "higher density ...
// others may have none at all" setup of Section 6.1.
func Occupancy(schema *Schema, domain, patch geom.Box, nPerRank int, q float64, seed int64, rank int) *Buffer {
	region := OccupiedRegion(domain, q)
	overlap := patch.Intersect(region)
	if overlap.IsEmpty() {
		return NewBuffer(schema, 0)
	}
	// Total = nRanks*nPerRank spread uniformly over region. This rank's
	// share is proportional to its overlap volume.
	share := overlap.Volume() / region.Volume()
	total := float64(nPerRank) / (patch.Volume() / domain.Volume()) // = nRanks*nPerRank for equal patches
	n := int(math.Round(total * share))
	if n == 0 {
		return NewBuffer(schema, 0)
	}
	r := rand.New(rand.NewSource(rankSeed(seed, rank)))
	b := NewBuffer(schema, n)
	sz := overlap.Size()
	for i := 0; i < n; i++ {
		p := geom.Vec3{
			X: overlap.Lo.X + r.Float64()*sz.X,
			Y: overlap.Lo.Y + r.Float64()*sz.Y,
			Z: overlap.Lo.Z + r.Float64()*sz.Z,
		}
		appendAt(b, p, float64(rank)*float64(nPerRank)+float64(i))
	}
	return b
}

// Advect moves every particle by v*dt, reflecting off the walls of
// domain. It is used by the multi-timestep example to evolve a workload
// between checkpoints.
func Advect(b *Buffer, domain geom.Box, v geom.Vec3, dt float64) {
	for i := 0; i < b.Len(); i++ {
		p := b.Position(i).Add(v.Mul(dt))
		p.X = reflect1(p.X, domain.Lo.X, domain.Hi.X)
		p.Y = reflect1(p.Y, domain.Lo.Y, domain.Hi.Y)
		p.Z = reflect1(p.Z, domain.Lo.Z, domain.Hi.Z)
		b.SetPosition(i, p)
	}
}

func reflect1(x, lo, hi float64) float64 {
	w := hi - lo
	for x < lo || x >= hi {
		if x < lo {
			x = lo + (lo - x)
		}
		if x >= hi {
			x = hi - (x - hi)
		}
		if x == hi { // landed exactly on the excluded face
			x = lo + w/2
		}
	}
	return x
}
