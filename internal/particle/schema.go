// Package particle defines the particle data model used by spio: a typed
// schema of per-particle variables, a structure-of-arrays buffer holding a
// rank's particles, a compact binary record encoding, and workload
// generators reproducing the particle distributions of the paper's
// evaluation (uniform Uintah-style loads, clustered and injection-style
// non-uniform loads, and fractional-occupancy loads for the adaptive
// aggregation study).
package particle

import (
	"fmt"
	"strings"
)

// Kind is the element type of a particle variable.
type Kind uint8

const (
	// Float64 is a double-precision variable component.
	Float64 Kind = iota
	// Float32 is a single-precision variable component.
	Float32
)

// Size returns the byte width of one component of the kind.
func (k Kind) Size() int {
	switch k {
	case Float64:
		return 8
	case Float32:
		return 4
	}
	panic(fmt.Sprintf("particle: unknown kind %d", k))
}

func (k Kind) String() string {
	switch k {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Field is one named per-particle variable with a fixed number of
// components, e.g. a 3-component double-precision position or a
// 9-component stress tensor.
type Field struct {
	Name       string
	Kind       Kind
	Components int
}

// Bytes returns the encoded size of the field for one particle.
func (f Field) Bytes() int { return f.Kind.Size() * f.Components }

// PositionField is the canonical name of the mandatory position variable.
const PositionField = "position"

// Schema is an ordered list of particle variables. The first field must
// be the 3-component float64 position; everything else is carried as
// opaque payload by the I/O system (the aggregation algorithm only ever
// inspects positions).
type Schema struct {
	fields  []Field
	stride  int   // encoded bytes per particle
	offsets []int // byte offset of each field within a record
}

// NewSchema validates and builds a schema. The first field must be
// PositionField with Kind Float64 and 3 components, all field names must
// be unique and non-empty, and all component counts positive.
func NewSchema(fields []Field) (*Schema, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("particle: schema needs at least the position field")
	}
	p := fields[0]
	if p.Name != PositionField || p.Kind != Float64 || p.Components != 3 {
		return nil, fmt.Errorf("particle: first field must be %q float64[3], got %q %v[%d]",
			PositionField, p.Name, p.Kind, p.Components)
	}
	seen := make(map[string]bool, len(fields))
	stride := 0
	offsets := make([]int, len(fields))
	for i, f := range fields {
		offsets[i] = stride
		if f.Name == "" {
			return nil, fmt.Errorf("particle: empty field name")
		}
		if strings.ContainsAny(f.Name, "\x00\n") {
			return nil, fmt.Errorf("particle: field name %q contains forbidden characters", f.Name)
		}
		if seen[f.Name] {
			return nil, fmt.Errorf("particle: duplicate field %q", f.Name)
		}
		seen[f.Name] = true
		if f.Components <= 0 {
			return nil, fmt.Errorf("particle: field %q must have positive components, got %d", f.Name, f.Components)
		}
		if f.Kind != Float64 && f.Kind != Float32 {
			return nil, fmt.Errorf("particle: field %q has unknown kind %d", f.Name, f.Kind)
		}
		stride += f.Bytes()
	}
	cp := make([]Field, len(fields))
	copy(cp, fields)
	return &Schema{fields: cp, stride: stride, offsets: offsets}, nil
}

// MustSchema is NewSchema that panics on error, for statically-known
// schemas.
func MustSchema(fields []Field) *Schema {
	s, err := NewSchema(fields)
	if err != nil {
		panic(err)
	}
	return s
}

// Uintah returns the particle schema of the paper's experimental setup
// (Section 5.1): 15 double-precision values — a 3-component position, a
// 9-component stress tensor, density, volume and ID — plus one
// single-precision type variable, 124 bytes per particle.
func Uintah() *Schema {
	return MustSchema([]Field{
		{Name: PositionField, Kind: Float64, Components: 3},
		{Name: "stress", Kind: Float64, Components: 9},
		{Name: "density", Kind: Float64, Components: 1},
		{Name: "volume", Kind: Float64, Components: 1},
		{Name: "id", Kind: Float64, Components: 1},
		{Name: "type", Kind: Float32, Components: 1},
	})
}

// PositionOnly returns the minimal schema: just the position.
func PositionOnly() *Schema {
	return MustSchema([]Field{{Name: PositionField, Kind: Float64, Components: 3}})
}

// Fields returns a copy of the schema's field list.
func (s *Schema) Fields() []Field {
	cp := make([]Field, len(s.fields))
	copy(cp, s.fields)
	return cp
}

// NumFields returns the number of variables.
func (s *Schema) NumFields() int { return len(s.fields) }

// Field returns the i-th field.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// FieldIndex returns the index of the named field, or -1.
func (s *Schema) FieldIndex(name string) int {
	for i, f := range s.fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Stride returns the encoded bytes per particle.
func (s *Schema) Stride() int { return s.stride }

// Offset returns the byte offset of field i within an encoded record.
// Together with Stride it lets per-field kernels address field i of
// record r at r*Stride()+Offset(i) without re-walking the schema.
func (s *Schema) Offset(i int) int { return s.offsets[i] }

// Equal reports whether two schemas have identical field lists.
func (s *Schema) Equal(o *Schema) bool {
	if s == nil || o == nil {
		return s == o
	}
	if len(s.fields) != len(o.fields) {
		return false
	}
	for i := range s.fields {
		if s.fields[i] != o.fields[i] {
			return false
		}
	}
	return true
}

func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString("schema{")
	for i, f := range s.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %v[%d]", f.Name, f.Kind, f.Components)
	}
	b.WriteString("}")
	return b.String()
}
