package particle

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
)

// Batch codec entry points: fan a run of codec blocks over a bounded
// worker pool. They follow the DecodePool discipline (pool.go) that
// racegate already locks down — semaphore-bounded goroutines, a
// WaitGroup joining them, and the first error collected under one mutex
// — and, like DecodePool, degrade to a synchronous loop when a single
// worker could not overlap anything anyway. Workers write only to
// disjoint outputs (their own frame slot, their own record region), so
// the only shared mutable state is the error slot.

// batchWorkers normalizes a worker-count knob: <= 0 means GOMAXPROCS,
// and a batch never needs more workers than items.
func batchWorkers(workers, items int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// batchErr collects the first error from a batch under one mutex.
type batchErr struct {
	mu  sync.Mutex
	err error
}

func (b *batchErr) set(err error) {
	if err == nil {
		return
	}
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

// CompressBlocks compresses each block of AoS records under the spec
// concurrently on at most workers goroutines (workers <= 0 means
// GOMAXPROCS) and returns the per-block frames in block order. The
// result is byte-identical to calling CompressBlock per block: each
// worker checks its own codec state out of the pool, so blocks never
// share mutable state and the frame bytes do not depend on scheduling.
func CompressBlocks(schema *Schema, spec Spec, blocks [][]byte, workers int) ([][]byte, error) {
	if err := spec.Validate(schema); err != nil {
		return nil, err
	}
	out := make([][]byte, len(blocks))
	workers = batchWorkers(workers, len(blocks))
	if workers == 1 {
		for bi, records := range blocks {
			comp, err := CompressBlock(schema, spec, records)
			if err != nil {
				return nil, fmt.Errorf("particle: batch compress block %d: %w", bi, err)
			}
			out[bi] = comp
		}
		return out, nil
	}
	var (
		wg   sync.WaitGroup
		sem  = make(chan struct{}, workers)
		errs batchErr
	)
	for bi := range blocks {
		wg.Add(1)
		go func(bi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			comp, err := CompressBlock(schema, spec, blocks[bi])
			if err != nil {
				errs.set(fmt.Errorf("particle: batch compress block %d: %w", bi, err))
				return
			}
			out[bi] = comp
		}(bi)
	}
	wg.Wait()
	if errs.err != nil {
		return nil, errs.err
	}
	return out, nil
}

// AppendCompressedBlocks appends the frames for a run of blocks onto
// dst in block order and returns the extended slice — the concatenation
// is byte-identical to joining CompressBlocks' results. With one worker
// it streams every frame straight onto dst (no per-block staging at
// all, the shape the egress hot path wants); with more it fans out via
// CompressBlocks and concatenates.
func AppendCompressedBlocks(dst []byte, schema *Schema, spec Spec, blocks [][]byte, workers int) ([]byte, error) {
	if batchWorkers(workers, len(blocks)) == 1 {
		var err error
		for bi, records := range blocks {
			if dst, err = AppendCompressedBlock(dst, schema, spec, records); err != nil {
				return nil, fmt.Errorf("particle: batch compress block %d: %w", bi, err)
			}
		}
		return dst, nil
	}
	frames, err := CompressBlocks(schema, spec, blocks, workers)
	if err != nil {
		return nil, err
	}
	for _, f := range frames {
		dst = append(dst, f...)
	}
	return dst, nil
}

// SplitFrames walks a concatenation of block frames — counts[i] records
// each, in order — and returns the batch inputs for DecompressBlocks,
// each block's At at the running record offset. The walk reads only the
// per-field frame headers, never the payloads, so it costs a few bytes
// per field; stream may be untrusted — every claimed length is checked
// against the remaining bytes, and the frames must tile the stream
// exactly.
func SplitFrames(schema *Schema, stream []byte, counts []int) ([]CompressedBlock, error) {
	blocks := make([]CompressedBlock, 0, len(counts))
	at := 0
	rest := stream
	for bi, count := range counts {
		n, err := frameLen(schema, rest)
		if err != nil {
			return nil, fmt.Errorf("particle: block frame %d: %w", bi, err)
		}
		blocks = append(blocks, CompressedBlock{Frame: rest[:n:n], Count: count, At: at})
		rest = rest[n:]
		at += count
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("particle: %d trailing bytes after %d block frames", len(rest), len(counts))
	}
	return blocks, nil
}

// frameLen measures one block frame by walking its field headers.
func frameLen(schema *Schema, data []byte) (int, error) {
	off := 0
	for fi := 0; fi < schema.NumFields(); fi++ {
		if off >= len(data) {
			return 0, fmt.Errorf("stream ends before field %d", fi)
		}
		off++ // codec id
		plen, n := binary.Uvarint(data[off:])
		if n <= 0 || plen > uint64(len(data)-off-n) {
			return 0, fmt.Errorf("field %d: bad payload length", fi)
		}
		off += n + int(plen)
	}
	return off, nil
}

// CompressedBlock is one input to DecompressBlocks: a self-describing
// block frame, the record count it holds, and the offset (in records)
// of its region in the destination.
type CompressedBlock struct {
	Frame []byte
	Count int
	At    int
}

// DecompressBlocks decodes a set of block frames into disjoint regions
// of one destination record image, fanning the per-block decodes over
// at most workers goroutines (workers <= 0 means GOMAXPROCS). dst must
// hold every region: each block writes records [At, At+Count). Regions
// must not overlap — the pool checks only that they stay inside dst.
// Output is byte-identical to a serial DecompressBlockInto loop.
func DecompressBlocks(schema *Schema, blocks []CompressedBlock, dst []byte, workers int) error {
	stride := schema.Stride()
	for bi, blk := range blocks {
		if blk.Count < 0 || blk.At < 0 || (blk.At+blk.Count)*stride > len(dst) {
			return fmt.Errorf("particle: batch decode block %d: region [%d, %d) outside destination of %d records",
				bi, blk.At, blk.At+blk.Count, len(dst)/stride)
		}
	}
	workers = batchWorkers(workers, len(blocks))
	if workers == 1 {
		for bi, blk := range blocks {
			region := dst[blk.At*stride : (blk.At+blk.Count)*stride]
			if err := DecompressBlockInto(schema, blk.Frame, blk.Count, region); err != nil {
				return fmt.Errorf("particle: batch decode block %d: %w", bi, err)
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		sem  = make(chan struct{}, workers)
		errs batchErr
	)
	for bi := range blocks {
		wg.Add(1)
		go func(bi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			blk := blocks[bi]
			region := dst[blk.At*stride : (blk.At+blk.Count)*stride]
			if err := DecompressBlockInto(schema, blk.Frame, blk.Count, region); err != nil {
				errs.set(fmt.Errorf("particle: batch decode block %d: %w", bi, err))
			}
		}(bi)
	}
	wg.Wait()
	return errs.err
}
