package particle

import (
	"bytes"
	"math/rand"
	"testing"
)

// lzCorpus builds inputs spanning the encoder's regimes: empty, tiny
// (below the match threshold), highly repetitive (long matches, overlap
// copies at every offset), byte-plane-shaped, and incompressible noise.
func lzCorpus() [][]byte {
	r := rand.New(rand.NewSource(21))
	var corpus [][]byte
	corpus = append(corpus, nil, []byte{0}, []byte("abc"), []byte("abcdabcdabcdabcd"))
	// Every small offset: overlap-copy windows 1..18 are the doubling
	// copy's edge cases.
	for off := 1; off <= 18; off++ {
		period := bytes.Repeat([]byte("x123456789abcdefgh")[:off], 400/off+2)
		corpus = append(corpus, period[:400])
	}
	long := make([]byte, 100_000)
	for i := range long {
		long[i] = byte(i / 1000) // long runs, plane-shaped
	}
	corpus = append(corpus, long)
	noise := make([]byte, 65_536)
	r.Read(noise)
	corpus = append(corpus, noise)
	mixed := append(append([]byte(nil), noise[:1000]...), bytes.Repeat([]byte("spio"), 500)...)
	corpus = append(corpus, append(mixed, noise[1000:3000]...))
	return corpus
}

func TestLZRoundTrip(t *testing.T) {
	tab := new(lzTable)
	for i, src := range lzCorpus() {
		comp := appendLZ(nil, src, tab)
		dst := make([]byte, len(src))
		if err := decodeLZ(dst, comp); err != nil {
			t.Fatalf("case %d (%d bytes): %v", i, len(src), err)
		}
		if !bytes.Equal(dst, src) {
			t.Fatalf("case %d (%d bytes): round trip drifted", i, len(src))
		}
	}
}

// TestLZHostileDecode mutates valid streams and length-lies: decodeLZ
// must error or fill dst, never panic or write out of bounds.
func TestLZHostileDecode(t *testing.T) {
	tab := new(lzTable)
	src := bytes.Repeat([]byte("the quick brown fox 0123456789 "), 200)
	comp := appendLZ(nil, src, tab)
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 5000; trial++ {
		m := append([]byte(nil), comp...)
		for k := 0; k < 1+r.Intn(6); k++ {
			m[r.Intn(len(m))] ^= byte(1 << r.Intn(8))
		}
		if r.Intn(3) == 0 {
			m = m[:r.Intn(len(m)+1)]
		}
		// Also lie about the output size in both directions.
		n := len(src)
		switch r.Intn(4) {
		case 0:
			n = r.Intn(len(src))
		case 1:
			n = len(src) + 1 + r.Intn(64)
		}
		dst := make([]byte, n)
		_ = decodeLZ(dst, m) // must not panic
	}
}

func FuzzLZ(f *testing.F) {
	for _, src := range lzCorpus() {
		if len(src) <= 1<<16 {
			f.Add(src)
		}
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		if len(src) > 1<<20 {
			return
		}
		tab := new(lzTable)
		comp := appendLZ(nil, src, tab)
		dst := make([]byte, len(src))
		if err := decodeLZ(dst, comp); err != nil {
			t.Fatalf("decode of own encoding (%d bytes): %v", len(src), err)
		}
		if !bytes.Equal(dst, src) {
			t.Fatal("round trip drifted")
		}
		// The same bytes must also decode as a hostile stream of the
		// wrong length without panicking.
		if len(src) > 0 {
			short := make([]byte, len(src)-1)
			_ = decodeLZ(short, comp)
		}
	})
}

// FuzzLZDecode drives raw fuzz bytes straight into the decoder.
func FuzzLZDecode(f *testing.F) {
	tab := new(lzTable)
	f.Add(appendLZ(nil, bytes.Repeat([]byte("ab"), 100), tab), 200)
	f.Add([]byte{0x10, 'x'}, 1)
	f.Add([]byte{}, 0)
	f.Fuzz(func(t *testing.T, payload []byte, n int) {
		if n < 0 || n > 1<<16 {
			return
		}
		dst := make([]byte, n)
		if err := decodeLZ(dst, payload); err == nil {
			// A stream the decoder accepts must re-encode losslessly.
			comp := appendLZ(nil, dst, tab)
			back := make([]byte, n)
			if err := decodeLZ(back, comp); err != nil || !bytes.Equal(back, dst) {
				t.Fatalf("accepted stream did not re-round-trip (err=%v)", err)
			}
		}
	})
}
