package particle

import "fmt"

// Projection supports reading only a subset of a dataset's variables —
// visualization typically wants positions (and maybe one scalar), not
// the full 124-byte Uintah record. Records on disk are AoS, so the
// *bytes* still stream in whole; projection saves decode time and, more
// importantly, memory: a position-only projection of a Uintah dataset
// keeps 24 of every 124 bytes.

// Projection maps a source schema onto a subset of its fields.
type Projection struct {
	src *Schema
	sub *Schema
	// srcField[i] is the source-schema index of the i-th projected field.
	srcField []int
	// srcOffset[i] is the byte offset of that field within a source
	// record.
	srcOffset []int
}

// Project builds a projection keeping the named fields. The position
// field is always included (first), whether or not it is named. Unknown
// names are an error.
func (s *Schema) Project(names []string) (*Projection, error) {
	keep := []int{0} // position always first
	seen := map[int]bool{0: true}
	for _, name := range names {
		fi := s.FieldIndex(name)
		if fi < 0 {
			return nil, fmt.Errorf("particle: schema has no field %q", name)
		}
		if seen[fi] {
			continue
		}
		seen[fi] = true
		keep = append(keep, fi)
	}
	fields := make([]Field, len(keep))
	for i, fi := range keep {
		fields[i] = s.Field(fi)
	}
	sub, err := NewSchema(fields)
	if err != nil {
		return nil, err
	}
	offsets := make([]int, s.NumFields())
	off := 0
	for i := 0; i < s.NumFields(); i++ {
		offsets[i] = off
		off += s.Field(i).Bytes()
	}
	p := &Projection{src: s, sub: sub, srcField: keep}
	for _, fi := range keep {
		p.srcOffset = append(p.srcOffset, offsets[fi])
	}
	return p, nil
}

// Source returns the full schema the projection reads from.
func (p *Projection) Source() *Schema { return p.src }

// Schema returns the projected (subset) schema.
func (p *Projection) Schema() *Schema { return p.sub }

// DecodeRecords decodes source-schema records, keeping only the
// projected fields, and appends them to a buffer with the projection's
// schema.
func (p *Projection) DecodeRecords(dst *Buffer, data []byte) error {
	if !dst.Schema().Equal(p.sub) {
		return fmt.Errorf("particle: projection target has schema %v, want %v", dst.Schema(), p.sub)
	}
	stride := p.src.Stride()
	if len(data)%stride != 0 {
		return fmt.Errorf("particle: %d bytes is not a multiple of source record size %d", len(data), stride)
	}
	count := len(data) / stride
	for i := 0; i < count; i++ {
		rec := data[i*stride : (i+1)*stride]
		for k := range p.srcField {
			f := p.sub.Field(k)
			field := rec[p.srcOffset[k] : p.srcOffset[k]+f.Bytes()]
			if err := dst.appendFieldBytes(k, f, field); err != nil {
				return err
			}
		}
		dst.n++
	}
	return nil
}

// Apply projects an in-memory buffer (full schema) onto the subset.
func (p *Projection) Apply(src *Buffer) (*Buffer, error) {
	if !src.Schema().Equal(p.src) {
		return nil, fmt.Errorf("particle: buffer schema %v does not match projection source %v", src.Schema(), p.src)
	}
	dst := NewBuffer(p.sub, src.Len())
	for k, fi := range p.srcField {
		f := p.src.Field(fi)
		switch f.Kind {
		case Float64:
			dst.f64[dst.fieldSlot[k]] = append(dst.f64[dst.fieldSlot[k]], src.f64[src.fieldSlot[fi]]...)
		case Float32:
			dst.f32[dst.fieldSlot[k]] = append(dst.f32[dst.fieldSlot[k]], src.f32[src.fieldSlot[fi]]...)
		}
	}
	dst.n = src.Len()
	return dst, nil
}
