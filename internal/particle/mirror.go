package particle

import "fmt"

// Encoded mirror: a buffer assembled from wire payloads can carry the
// AoS record encoding of its contents alongside the SoA columns, because
// the assembler already had those exact bytes in hand. Record encoding
// is bit-lossless both ways, so re-encoding a decoded buffer reproduces
// the wire bytes — the mirror just skips that whole SoA -> AoS transpose
// for consumers that want the encoded form (the data-file writer).
//
// The mirror is a cache of the buffer's current contents: every mutating
// Buffer method drops it. Two aliasing holes the methods cannot see are
// part of the caller contract instead: writing through a slice obtained
// from Float64Field/Float32Field, and DecodeRecordsAt (which runs
// concurrently from the decode pool and therefore must not touch shared
// mirror state) — callers on those paths must attach the mirror only
// after all such writes are done, which is how the exchange uses it.

// SetEncodedMirror attaches data as the buffer's cached record encoding,
// taking ownership of the slice. data must be exactly the encoded
// payload size (Bytes()) and must hold the encoding of the buffer's
// current contents; attaching anything else corrupts downstream writers.
func (b *Buffer) SetEncodedMirror(data []byte) {
	if int64(len(data)) != b.Bytes() {
		panic(fmt.Sprintf("particle: encoded mirror has %d bytes, buffer encodes to %d", len(data), b.Bytes()))
	}
	b.aos = data
}

// EncodedMirror returns the cached record encoding attached by
// SetEncodedMirror, or nil. The slice aliases buffer-owned memory: it is
// valid until the buffer is mutated or recycled.
func (b *Buffer) EncodedMirror() []byte { return b.aos }

// dropMirror invalidates the cached encoding; every mutating method
// calls it. The slice goes back to the AoS pool — the owner mutating the
// buffer is single-threaded by the Buffer's general contract, so nothing
// can still be reading the mirror.
func (b *Buffer) dropMirror() {
	if b.aos != nil {
		putAoS(b.aos)
		b.aos = nil
	}
}
