package particle

import (
	"encoding/binary"
	"fmt"
	"math"

	"spio/internal/geom"
)

// Buffer holds the particles of one rank (or one file) in
// structure-of-arrays form: one flat component slice per field. SoA keeps
// the aggregation algorithm's hot loop — scanning positions to bin
// particles into aggregation partitions — sequential in memory.
type Buffer struct {
	schema *Schema
	n      int
	f64    [][]float64 // one entry per Float64 field, len n*components
	f32    [][]float32 // one entry per Float32 field
	// fieldSlot[i] indexes into f64 or f32 depending on the field's kind.
	fieldSlot []int
	// aos, when non-nil, is the cached AoS record encoding of the
	// buffer's current contents (exactly n*Stride() bytes) — see
	// SetEncodedMirror. Mutating methods drop it.
	aos []byte
}

// NewBuffer returns an empty buffer with capacity hint cap particles.
func NewBuffer(schema *Schema, capHint int) *Buffer {
	if schema == nil {
		panic("particle: nil schema")
	}
	b := &Buffer{schema: schema, fieldSlot: make([]int, schema.NumFields())}
	for i := 0; i < schema.NumFields(); i++ {
		f := schema.Field(i)
		switch f.Kind {
		case Float64:
			b.fieldSlot[i] = len(b.f64)
			b.f64 = append(b.f64, make([]float64, 0, capHint*f.Components))
		case Float32:
			b.fieldSlot[i] = len(b.f32)
			b.f32 = append(b.f32, make([]float32, 0, capHint*f.Components))
		}
	}
	return b
}

// Schema returns the buffer's schema.
func (b *Buffer) Schema() *Schema { return b.schema }

// Len returns the number of particles.
func (b *Buffer) Len() int { return b.n }

// Bytes returns the encoded payload size of the buffer.
func (b *Buffer) Bytes() int64 { return int64(b.n) * int64(b.schema.Stride()) }

// Position returns the position of particle i.
func (b *Buffer) Position(i int) geom.Vec3 {
	p := b.f64[b.fieldSlot[0]]
	return geom.Vec3{X: p[3*i], Y: p[3*i+1], Z: p[3*i+2]}
}

// SetPosition overwrites the position of particle i.
func (b *Buffer) SetPosition(i int, v geom.Vec3) {
	b.dropMirror()
	p := b.f64[b.fieldSlot[0]]
	p[3*i], p[3*i+1], p[3*i+2] = v.X, v.Y, v.Z
}

// Float64Field returns the flat component slice of a Float64 field by
// schema index. The slice aliases the buffer; it is valid until the next
// Append.
func (b *Buffer) Float64Field(field int) []float64 {
	f := b.schema.Field(field)
	if f.Kind != Float64 {
		panic(fmt.Sprintf("particle: field %q is %v, not float64", f.Name, f.Kind))
	}
	return b.f64[b.fieldSlot[field]]
}

// Float32Field returns the flat component slice of a Float32 field by
// schema index, aliasing the buffer.
func (b *Buffer) Float32Field(field int) []float32 {
	f := b.schema.Field(field)
	if f.Kind != Float32 {
		panic(fmt.Sprintf("particle: field %q is %v, not float32", f.Name, f.Kind))
	}
	return b.f32[b.fieldSlot[field]]
}

// Append adds one particle given per-field component values. vals must
// have one []float64 per field (Float32 fields are converted); each entry
// must have exactly the field's component count.
func (b *Buffer) Append(vals ...[]float64) {
	b.dropMirror()
	if len(vals) != b.schema.NumFields() {
		panic(fmt.Sprintf("particle: Append got %d fields, schema has %d", len(vals), b.schema.NumFields()))
	}
	for i, v := range vals {
		f := b.schema.Field(i)
		if len(v) != f.Components {
			panic(fmt.Sprintf("particle: field %q wants %d components, got %d", f.Name, f.Components, len(v)))
		}
		switch f.Kind {
		case Float64:
			b.f64[b.fieldSlot[i]] = append(b.f64[b.fieldSlot[i]], v...)
		case Float32:
			s := b.f32[b.fieldSlot[i]]
			for _, x := range v {
				s = append(s, float32(x))
			}
			b.f32[b.fieldSlot[i]] = s
		}
	}
	b.n++
}

// AppendFrom copies particle i of src onto the end of b. Schemas must
// match (same pointer or Equal).
func (b *Buffer) AppendFrom(src *Buffer, i int) {
	b.dropMirror()
	if b.schema != src.schema && !b.schema.Equal(src.schema) {
		panic("particle: AppendFrom across different schemas")
	}
	for fi := 0; fi < b.schema.NumFields(); fi++ {
		f := b.schema.Field(fi)
		switch f.Kind {
		case Float64:
			s := src.f64[src.fieldSlot[fi]]
			b.f64[b.fieldSlot[fi]] = append(b.f64[b.fieldSlot[fi]], s[i*f.Components:(i+1)*f.Components]...)
		case Float32:
			s := src.f32[src.fieldSlot[fi]]
			b.f32[b.fieldSlot[fi]] = append(b.f32[b.fieldSlot[fi]], s[i*f.Components:(i+1)*f.Components]...)
		}
	}
	b.n++
}

// AppendBuffer copies all particles of src onto the end of b.
func (b *Buffer) AppendBuffer(src *Buffer) {
	b.dropMirror()
	if b.schema != src.schema && !b.schema.Equal(src.schema) {
		panic("particle: AppendBuffer across different schemas")
	}
	for fi := 0; fi < b.schema.NumFields(); fi++ {
		switch b.schema.Field(fi).Kind {
		case Float64:
			b.f64[b.fieldSlot[fi]] = append(b.f64[b.fieldSlot[fi]], src.f64[src.fieldSlot[fi]]...)
		case Float32:
			b.f32[b.fieldSlot[fi]] = append(b.f32[b.fieldSlot[fi]], src.f32[src.fieldSlot[fi]]...)
		}
	}
	b.n += src.n
}

// Swap exchanges particles i and j in place. It is the primitive the LOD
// reshuffle is built on (paper Section 3.4: "the particles are reordered
// in-place").
func (b *Buffer) Swap(i, j int) {
	b.dropMirror()
	if i == j {
		return
	}
	for fi := 0; fi < b.schema.NumFields(); fi++ {
		f := b.schema.Field(fi)
		c := f.Components
		switch f.Kind {
		case Float64:
			s := b.f64[b.fieldSlot[fi]]
			for k := 0; k < c; k++ {
				s[i*c+k], s[j*c+k] = s[j*c+k], s[i*c+k]
			}
		case Float32:
			s := b.f32[b.fieldSlot[fi]]
			for k := 0; k < c; k++ {
				s[i*c+k], s[j*c+k] = s[j*c+k], s[i*c+k]
			}
		}
	}
}

// Select returns a new buffer holding the particles at the given indices,
// in order. The copy is columnar — one gather pass per field — rather
// than a per-index AppendFrom walk, so the per-particle schema dispatch
// is hoisted out of the loop.
func (b *Buffer) Select(indices []int) *Buffer {
	// Overwrite-allocated: the gathers below fill every component of
	// every selected particle, so zeroed (or fresh) columns buy nothing.
	out := NewBufferOverwrite(b.schema, len(indices))
	for fi := 0; fi < b.schema.NumFields(); fi++ {
		f := b.schema.Field(fi)
		switch f.Kind {
		case Float64:
			gather64(out.f64[out.fieldSlot[fi]], b.f64[b.fieldSlot[fi]], indices, f.Components)
		case Float32:
			gather32(out.f32[out.fieldSlot[fi]], b.f32[b.fieldSlot[fi]], indices, f.Components)
		}
	}
	return out
}

// Slice returns a new buffer holding particles [lo, hi).
func (b *Buffer) Slice(lo, hi int) *Buffer {
	if lo < 0 || hi > b.n || lo > hi {
		panic(fmt.Sprintf("particle: Slice[%d:%d] of %d", lo, hi, b.n))
	}
	out := NewBuffer(b.schema, hi-lo)
	for fi := 0; fi < b.schema.NumFields(); fi++ {
		f := b.schema.Field(fi)
		c := f.Components
		switch f.Kind {
		case Float64:
			s := b.f64[b.fieldSlot[fi]]
			out.f64[out.fieldSlot[fi]] = append(out.f64[out.fieldSlot[fi]], s[lo*c:hi*c]...)
		case Float32:
			s := b.f32[b.fieldSlot[fi]]
			out.f32[out.fieldSlot[fi]] = append(out.f32[out.fieldSlot[fi]], s[lo*c:hi*c]...)
		}
	}
	out.n = hi - lo
	return out
}

// Bounds returns the closed bounding box of all particle positions, or an
// empty box for an empty buffer. This implements the paper's note that
// the I/O system "can easily compute this information by finding the
// bounding box of the particles on the process". The scan shares the
// plain-comparison min/max kernel with FieldRanges, seeded with the
// EmptyBox sentinels so results are bit-identical to folding Extend.
func (b *Buffer) Bounds() geom.Box {
	box := geom.EmptyBox()
	p := b.f64[b.fieldSlot[0]]
	lo := [3]float64{box.Lo.X, box.Lo.Y, box.Lo.Z}
	hi := [3]float64{box.Hi.X, box.Hi.Y, box.Hi.Z}
	for i := 0; i < b.n; i++ {
		rangeScan(p[3*i], &lo[0], &hi[0])
		rangeScan(p[3*i+1], &lo[1], &hi[1])
		rangeScan(p[3*i+2], &lo[2], &hi[2])
	}
	return geom.Box{
		Lo: geom.Vec3{X: lo[0], Y: lo[1], Z: lo[2]},
		Hi: geom.Vec3{X: hi[0], Y: hi[1], Z: hi[2]},
	}
}

// CheckFinite returns an error naming the first particle whose position
// has a NaN or infinite component. Simulations occasionally produce such
// particles after a blow-up; writing them poisons spatial metadata (a
// NaN never falls inside any partition box).
func (b *Buffer) CheckFinite() error {
	for i := 0; i < b.n; i++ {
		if !b.Position(i).IsFinite() {
			return fmt.Errorf("particle: particle %d has non-finite position %v", i, b.Position(i))
		}
	}
	return nil
}

// CheckInside returns an error naming the first particle outside the
// closed box.
func (b *Buffer) CheckInside(box geom.Box) error {
	for i := 0; i < b.n; i++ {
		if !box.ContainsClosed(b.Position(i)) {
			return fmt.Errorf("particle: particle %d at %v outside %v", i, b.Position(i), box)
		}
	}
	return nil
}

// EncodeRecords appends the AoS record encoding of particles [lo, hi) to
// dst and returns the extended slice. Records are the schema's fields in
// order, components little-endian. It is a thin wrapper over the
// EncodeRecordsInto kernel.
func (b *Buffer) EncodeRecords(dst []byte, lo, hi int) []byte {
	if lo < 0 || hi > b.n || lo > hi {
		panic(fmt.Sprintf("particle: EncodeRecords[%d:%d] of %d", lo, hi, b.n))
	}
	need := (hi - lo) * b.schema.Stride()
	base := len(dst)
	if cap(dst)-base < need {
		grown := make([]byte, base, base+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+need]
	b.EncodeRecordsInto(dst[base:], lo, hi)
	return dst
}

// Encode returns the AoS record encoding of the whole buffer.
func (b *Buffer) Encode() []byte {
	return b.EncodeRecords(make([]byte, 0, b.n*b.schema.Stride()), 0, b.n)
}

// DecodeRecords appends the particles encoded in data (which must be a
// whole number of records) to the buffer. It is a thin wrapper over the
// DecodeRecordsAt kernel: extend the buffer once, decode in place.
func (b *Buffer) DecodeRecords(data []byte) error {
	b.dropMirror()
	stride := b.schema.Stride()
	if len(data)%stride != 0 {
		return fmt.Errorf("particle: %d bytes is not a multiple of record size %d", len(data), stride)
	}
	at := b.n
	b.SetLen(at + len(data)/stride)
	return b.DecodeRecordsAt(data, at)
}

// appendFieldBytes decodes one field's little-endian component bytes
// onto the end of field slot k, without advancing the particle count
// (the caller appends every field of a record, then bumps n).
func (b *Buffer) appendFieldBytes(k int, f Field, data []byte) error {
	if len(data) != f.Bytes() {
		return fmt.Errorf("particle: field %q wants %d bytes, got %d", f.Name, f.Bytes(), len(data))
	}
	switch f.Kind {
	case Float64:
		s := b.f64[b.fieldSlot[k]]
		for c := 0; c < f.Components; c++ {
			s = append(s, math.Float64frombits(binary.LittleEndian.Uint64(data[c*8:])))
		}
		b.f64[b.fieldSlot[k]] = s
	case Float32:
		s := b.f32[b.fieldSlot[k]]
		for c := 0; c < f.Components; c++ {
			s = append(s, math.Float32frombits(binary.LittleEndian.Uint32(data[c*4:])))
		}
		b.f32[b.fieldSlot[k]] = s
	}
	return nil
}

// Decode builds a buffer from an AoS record encoding.
func Decode(schema *Schema, data []byte) (*Buffer, error) {
	b := NewBuffer(schema, len(data)/schema.Stride())
	if err := b.DecodeRecords(data); err != nil {
		return nil, err
	}
	return b, nil
}

// Equal reports whether two buffers hold bit-identical particle
// sequences.
func (b *Buffer) Equal(o *Buffer) bool {
	if b.n != o.n || !b.schema.Equal(o.schema) {
		return false
	}
	for fi := 0; fi < b.schema.NumFields(); fi++ {
		switch b.schema.Field(fi).Kind {
		case Float64:
			x, y := b.f64[b.fieldSlot[fi]], o.f64[o.fieldSlot[fi]]
			for i := range x {
				if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
					return false
				}
			}
		case Float32:
			x, y := b.f32[b.fieldSlot[fi]], o.f32[o.fieldSlot[fi]]
			for i := range x {
				if math.Float32bits(x[i]) != math.Float32bits(y[i]) {
					return false
				}
			}
		}
	}
	return true
}
