package particle

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file holds the hot-path encode/decode kernels. The wire format is
// the AoS record encoding (schema fields in order, components
// little-endian); the buffer is SoA. The naive transposition walks the
// schema once per particle — a switch and a bounds-checked append per
// field per record. The kernels below hoist the schema walk out of the
// per-particle loop: one tight per-field/per-component inner loop over a
// pre-sized destination, no append, no per-record dispatch. Encode and
// decode stay exact mirrors of each other (the wiresym invariant), they
// just iterate field-major instead of record-major — the bytes produced
// and consumed are identical.

// Grow reserves capacity for n additional particles without changing the
// buffer's length, like the append-capacity contract of the standard
// library's slices.Grow.
func (b *Buffer) Grow(n int) {
	b.dropMirror()
	if n <= 0 {
		return
	}
	for fi := 0; fi < b.schema.NumFields(); fi++ {
		f := b.schema.Field(fi)
		want := (b.n + n) * f.Components
		switch f.Kind {
		case Float64:
			s := b.f64[b.fieldSlot[fi]]
			if cap(s) < want {
				ns := make([]float64, len(s), want)
				copy(ns, s)
				b.f64[b.fieldSlot[fi]] = ns
			}
		case Float32:
			s := b.f32[b.fieldSlot[fi]]
			if cap(s) < want {
				ns := make([]float32, len(s), want)
				copy(ns, s)
				b.f32[b.fieldSlot[fi]] = ns
			}
		}
	}
}

// SetLen resizes the buffer to exactly n particles. Growing extends every
// column with zero values; shrinking truncates. It is the pre-sizing
// primitive of the arrival-order aggregation path: the aggregator sizes
// its buffer once from the announced counts, then concurrent
// DecodeRecordsAt calls fill disjoint regions in place.
func (b *Buffer) SetLen(n int) {
	b.dropMirror()
	if n < 0 {
		panic(fmt.Sprintf("particle: SetLen(%d)", n))
	}
	for fi := 0; fi < b.schema.NumFields(); fi++ {
		f := b.schema.Field(fi)
		want := n * f.Components
		switch f.Kind {
		case Float64:
			s := b.f64[b.fieldSlot[fi]]
			if want <= len(s) {
				s = s[:want]
			} else if want <= cap(s) {
				tail := s[len(s):want]
				for i := range tail {
					tail[i] = 0
				}
				s = s[:want]
			} else {
				ns := make([]float64, want)
				copy(ns, s)
				s = ns
			}
			b.f64[b.fieldSlot[fi]] = s
		case Float32:
			s := b.f32[b.fieldSlot[fi]]
			if want <= len(s) {
				s = s[:want]
			} else if want <= cap(s) {
				tail := s[len(s):want]
				for i := range tail {
					tail[i] = 0
				}
				s = s[:want]
			} else {
				ns := make([]float32, want)
				copy(ns, s)
				s = ns
			}
			b.f32[b.fieldSlot[fi]] = s
		}
	}
	b.n = n
}

// CopyFrom overwrites particles [at, at+src.Len()) of b with the
// particles of src, column by column. The buffer must already be sized
// (SetLen) to cover the region. Schemas must match. It is the in-memory
// sibling of DecodeRecordsAt, used for self-sends that never hit the
// wire.
func (b *Buffer) CopyFrom(at int, src *Buffer) {
	b.dropMirror()
	if b.schema != src.schema && !b.schema.Equal(src.schema) {
		panic("particle: CopyFrom across different schemas")
	}
	if at < 0 || at+src.n > b.n {
		panic(fmt.Sprintf("particle: CopyFrom[%d:%d] of %d", at, at+src.n, b.n))
	}
	for fi := 0; fi < b.schema.NumFields(); fi++ {
		f := b.schema.Field(fi)
		c := f.Components
		switch f.Kind {
		case Float64:
			copy(b.f64[b.fieldSlot[fi]][at*c:], src.f64[src.fieldSlot[fi]])
		case Float32:
			copy(b.f32[b.fieldSlot[fi]][at*c:], src.f32[src.fieldSlot[fi]])
		}
	}
}

// Permute reorders the buffer in place so that the particle that was at
// perm[i] ends up at position i. perm must be a permutation of
// [0, Len()).
//
// The reorder is a column-by-column gather, not a per-element Swap walk:
// Swap touches every field of both particles per exchange, which for a
// wide schema means a strided cache miss per field per swap. The gather
// streams one column at a time into a scratch column and then swaps the
// scratch in as the new column, so each field costs one pass and no
// copy-back; the displaced column becomes the scratch for the next field
// of the same kind.
func (b *Buffer) Permute(perm []int) {
	b.dropMirror()
	if len(perm) != b.n {
		panic(fmt.Sprintf("particle: permutation length %d != buffer length %d", len(perm), b.n))
	}
	var sp64 []float64
	var sp32 []float32
	for fi := 0; fi < b.schema.NumFields(); fi++ {
		f := b.schema.Field(fi)
		c := f.Components
		switch f.Kind {
		case Float64:
			col := b.f64[b.fieldSlot[fi]]
			if cap(sp64) < len(col) {
				sp64 = make([]float64, len(col))
			}
			tmp := sp64[:len(col)]
			gather64(tmp, col, perm, c)
			b.f64[b.fieldSlot[fi]] = tmp
			sp64 = col
		case Float32:
			col := b.f32[b.fieldSlot[fi]]
			if cap(sp32) < len(col) {
				sp32 = make([]float32, len(col))
			}
			tmp := sp32[:len(col)]
			gather32(tmp, col, perm, c)
			b.f32[b.fieldSlot[fi]] = tmp
			sp32 = col
		}
	}
}

// gather64 writes src's records at the given indices into dst in order:
// dst particle i gets src particle idx[i]. The 1- and 3-component cases
// are unrolled — a copy call per 8- or 24-byte record costs more than the
// moves themselves.
func gather64(dst, src []float64, idx []int, c int) {
	switch c {
	case 1:
		for i, p := range idx {
			dst[i] = src[p]
		}
	case 3:
		for i, p := range idx {
			j := p * 3
			dst[i*3] = src[j]
			dst[i*3+1] = src[j+1]
			dst[i*3+2] = src[j+2]
		}
	case 9:
		for i, p := range idx {
			d := dst[i*9 : i*9+9]
			j := p * 9
			d[0] = src[j]
			d[1] = src[j+1]
			d[2] = src[j+2]
			d[3] = src[j+3]
			d[4] = src[j+4]
			d[5] = src[j+5]
			d[6] = src[j+6]
			d[7] = src[j+7]
			d[8] = src[j+8]
		}
	default:
		// An element loop, not copy: at a handful of components per
		// record, the memmove call costs more than the moves.
		for i, p := range idx {
			d := dst[i*c : i*c+c]
			s := src[p*c : p*c+c]
			for k := range d {
				d[k] = s[k]
			}
		}
	}
}

// gather32 is gather64 for float32 columns.
func gather32(dst, src []float32, idx []int, c int) {
	switch c {
	case 1:
		for i, p := range idx {
			dst[i] = src[p]
		}
	case 3:
		for i, p := range idx {
			j := p * 3
			dst[i*3] = src[j]
			dst[i*3+1] = src[j+1]
			dst[i*3+2] = src[j+2]
		}
	default:
		for i, p := range idx {
			d := dst[i*c : i*c+c]
			s := src[p*c : p*c+c]
			for k := range d {
				d[k] = s[k]
			}
		}
	}
}

// transposeBlock is the particle count per cache block of the AoS<->SoA
// transposition kernels. The kernels iterate field-major (the schema walk
// hoisted out of the particle loop) but over blocks of this many records
// at a time, so each AoS row is touched while it is still cache-resident
// instead of once per field across a multi-megabyte payload — the
// field-major sweep over the full payload would otherwise read and write
// every row cache line NumFields times from memory.
const transposeBlock = 256

// EncodeRecordsInto writes the AoS record encoding of particles [lo, hi)
// into dst, which must be exactly (hi-lo)*Stride() bytes. Unlike
// EncodeRecords it never allocates: the caller owns the destination, so
// chunked writers can reuse one scratch buffer across the whole payload.
func (b *Buffer) EncodeRecordsInto(dst []byte, lo, hi int) {
	if lo < 0 || hi > b.n || lo > hi {
		panic(fmt.Sprintf("particle: EncodeRecordsInto[%d:%d] of %d", lo, hi, b.n))
	}
	stride := b.schema.Stride()
	if len(dst) != (hi-lo)*stride {
		panic(fmt.Sprintf("particle: EncodeRecordsInto dst has %d bytes, want %d", len(dst), (hi-lo)*stride))
	}
	for blo := lo; blo < hi; blo += transposeBlock {
		bhi := blo + transposeBlock
		if bhi > hi {
			bhi = hi
		}
		b.encodeBlock(dst[(blo-lo)*stride:(bhi-lo)*stride], blo, bhi)
	}
}

// encodeBlock transposes one block of records SoA -> AoS, field-major.
func (b *Buffer) encodeBlock(dst []byte, lo, hi int) {
	stride := b.schema.Stride()
	n := hi - lo
	for fi := 0; fi < b.schema.NumFields(); fi++ {
		f := b.schema.Field(fi)
		c := f.Components
		off := b.schema.Offset(fi)
		switch f.Kind {
		case Float64:
			s := b.f64[b.fieldSlot[fi]][lo*c : hi*c]
			switch c {
			case 1:
				for i := 0; i < n; i++ {
					binary.LittleEndian.PutUint64(dst[i*stride+off:], math.Float64bits(s[i]))
				}
			case 3:
				for i := 0; i < n; i++ {
					row := dst[i*stride+off : i*stride+off+24]
					binary.LittleEndian.PutUint64(row[0:], math.Float64bits(s[i*3]))
					binary.LittleEndian.PutUint64(row[8:], math.Float64bits(s[i*3+1]))
					binary.LittleEndian.PutUint64(row[16:], math.Float64bits(s[i*3+2]))
				}
			case 9:
				for i := 0; i < n; i++ {
					row := dst[i*stride+off : i*stride+off+72]
					j := i * 9
					binary.LittleEndian.PutUint64(row[0:], math.Float64bits(s[j]))
					binary.LittleEndian.PutUint64(row[8:], math.Float64bits(s[j+1]))
					binary.LittleEndian.PutUint64(row[16:], math.Float64bits(s[j+2]))
					binary.LittleEndian.PutUint64(row[24:], math.Float64bits(s[j+3]))
					binary.LittleEndian.PutUint64(row[32:], math.Float64bits(s[j+4]))
					binary.LittleEndian.PutUint64(row[40:], math.Float64bits(s[j+5]))
					binary.LittleEndian.PutUint64(row[48:], math.Float64bits(s[j+6]))
					binary.LittleEndian.PutUint64(row[56:], math.Float64bits(s[j+7]))
					binary.LittleEndian.PutUint64(row[64:], math.Float64bits(s[j+8]))
				}
			default:
				for i := 0; i < n; i++ {
					row := dst[i*stride+off : i*stride+off+c*8]
					for k := 0; k < c; k++ {
						binary.LittleEndian.PutUint64(row[k*8:], math.Float64bits(s[i*c+k]))
					}
				}
			}
		case Float32:
			s := b.f32[b.fieldSlot[fi]][lo*c : hi*c]
			for i := 0; i < n; i++ {
				row := dst[i*stride+off:]
				for k := 0; k < c; k++ {
					binary.LittleEndian.PutUint32(row[k*4:], math.Float32bits(s[i*c+k]))
				}
			}
		}
	}
}

// EncodeRecordsGather writes the AoS record encoding of the particles at
// the given indices, in order, into dst, which must be exactly
// len(idx)*Stride() bytes. It is EncodeRecordsInto composed with a
// gather: record i of dst is particle idx[i]. Streaming writers use it
// to emit a permuted payload without materializing the permuted buffer —
// the random-order column reads happen once, during the encode, instead
// of once in a Permute pass and again in a sequential encode.
func (b *Buffer) EncodeRecordsGather(dst []byte, idx []int) {
	stride := b.schema.Stride()
	if len(dst) != len(idx)*stride {
		panic(fmt.Sprintf("particle: EncodeRecordsGather dst has %d bytes, want %d", len(dst), len(idx)*stride))
	}
	for blo := 0; blo < len(idx); blo += transposeBlock {
		bhi := blo + transposeBlock
		if bhi > len(idx) {
			bhi = len(idx)
		}
		b.encodeGatherBlock(dst[blo*stride:bhi*stride], idx[blo:bhi])
	}
}

// encodeGatherBlock transposes one block of records SoA -> AoS through
// an index gather, field-major.
func (b *Buffer) encodeGatherBlock(dst []byte, idx []int) {
	stride := b.schema.Stride()
	for fi := 0; fi < b.schema.NumFields(); fi++ {
		f := b.schema.Field(fi)
		c := f.Components
		off := b.schema.Offset(fi)
		switch f.Kind {
		case Float64:
			s := b.f64[b.fieldSlot[fi]]
			switch c {
			case 1:
				for i, p := range idx {
					binary.LittleEndian.PutUint64(dst[i*stride+off:], math.Float64bits(s[p]))
				}
			case 3:
				for i, p := range idx {
					row := dst[i*stride+off : i*stride+off+24]
					j := p * 3
					binary.LittleEndian.PutUint64(row[0:], math.Float64bits(s[j]))
					binary.LittleEndian.PutUint64(row[8:], math.Float64bits(s[j+1]))
					binary.LittleEndian.PutUint64(row[16:], math.Float64bits(s[j+2]))
				}
			case 9:
				// Unrolled so the nine loads of one gathered record issue
				// in parallel: the gather is latency-bound on random reads,
				// and a record's nine components span at most two cache
				// lines.
				for i, p := range idx {
					row := dst[i*stride+off : i*stride+off+72]
					j := p * 9
					binary.LittleEndian.PutUint64(row[0:], math.Float64bits(s[j]))
					binary.LittleEndian.PutUint64(row[8:], math.Float64bits(s[j+1]))
					binary.LittleEndian.PutUint64(row[16:], math.Float64bits(s[j+2]))
					binary.LittleEndian.PutUint64(row[24:], math.Float64bits(s[j+3]))
					binary.LittleEndian.PutUint64(row[32:], math.Float64bits(s[j+4]))
					binary.LittleEndian.PutUint64(row[40:], math.Float64bits(s[j+5]))
					binary.LittleEndian.PutUint64(row[48:], math.Float64bits(s[j+6]))
					binary.LittleEndian.PutUint64(row[56:], math.Float64bits(s[j+7]))
					binary.LittleEndian.PutUint64(row[64:], math.Float64bits(s[j+8]))
				}
			default:
				for i, p := range idx {
					row := dst[i*stride+off : i*stride+off+c*8]
					j := p * c
					for k := 0; k < c; k++ {
						binary.LittleEndian.PutUint64(row[k*8:], math.Float64bits(s[j+k]))
					}
				}
			}
		case Float32:
			s := b.f32[b.fieldSlot[fi]]
			for i, p := range idx {
				row := dst[i*stride+off:]
				j := p * c
				for k := 0; k < c; k++ {
					binary.LittleEndian.PutUint32(row[k*4:], math.Float32bits(s[j+k]))
				}
			}
		}
	}
}

// DecodeRecordsAt decodes the records in data (a whole number of
// records) into particles [at, at+count) of the buffer, which must
// already be sized (SetLen) to cover the region. It does not change the
// buffer's length, so concurrent calls decoding into disjoint regions
// are safe — that is the arrival-order aggregation contract: placement
// is fixed by the metadata counts, arrival order only picks which region
// fills next.
func (b *Buffer) DecodeRecordsAt(data []byte, at int) error {
	stride := b.schema.Stride()
	if len(data)%stride != 0 {
		return fmt.Errorf("particle: %d bytes is not a multiple of record size %d", len(data), stride)
	}
	count := len(data) / stride
	if at < 0 || at+count > b.n {
		return fmt.Errorf("particle: DecodeRecordsAt[%d:%d] of %d", at, at+count, b.n)
	}
	for blo := 0; blo < count; blo += transposeBlock {
		bhi := blo + transposeBlock
		if bhi > count {
			bhi = count
		}
		b.decodeBlock(data[blo*stride:bhi*stride], at+blo, bhi-blo)
	}
	return nil
}

// decodeBlock transposes one block of records AoS -> SoA, field-major.
func (b *Buffer) decodeBlock(data []byte, at, count int) {
	stride := b.schema.Stride()
	for fi := 0; fi < b.schema.NumFields(); fi++ {
		f := b.schema.Field(fi)
		c := f.Components
		off := b.schema.Offset(fi)
		switch f.Kind {
		case Float64:
			s := b.f64[b.fieldSlot[fi]][at*c : (at+count)*c]
			switch c {
			case 1:
				for i := 0; i < count; i++ {
					s[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*stride+off:]))
				}
			case 3:
				for i := 0; i < count; i++ {
					row := data[i*stride+off : i*stride+off+24]
					s[i*3] = math.Float64frombits(binary.LittleEndian.Uint64(row[0:]))
					s[i*3+1] = math.Float64frombits(binary.LittleEndian.Uint64(row[8:]))
					s[i*3+2] = math.Float64frombits(binary.LittleEndian.Uint64(row[16:]))
				}
			case 9:
				for i := 0; i < count; i++ {
					row := data[i*stride+off : i*stride+off+72]
					j := i * 9
					s[j] = math.Float64frombits(binary.LittleEndian.Uint64(row[0:]))
					s[j+1] = math.Float64frombits(binary.LittleEndian.Uint64(row[8:]))
					s[j+2] = math.Float64frombits(binary.LittleEndian.Uint64(row[16:]))
					s[j+3] = math.Float64frombits(binary.LittleEndian.Uint64(row[24:]))
					s[j+4] = math.Float64frombits(binary.LittleEndian.Uint64(row[32:]))
					s[j+5] = math.Float64frombits(binary.LittleEndian.Uint64(row[40:]))
					s[j+6] = math.Float64frombits(binary.LittleEndian.Uint64(row[48:]))
					s[j+7] = math.Float64frombits(binary.LittleEndian.Uint64(row[56:]))
					s[j+8] = math.Float64frombits(binary.LittleEndian.Uint64(row[64:]))
				}
			default:
				for i := 0; i < count; i++ {
					row := data[i*stride+off : i*stride+off+c*8]
					for k := 0; k < c; k++ {
						s[i*c+k] = math.Float64frombits(binary.LittleEndian.Uint64(row[k*8:]))
					}
				}
			}
		case Float32:
			s := b.f32[b.fieldSlot[fi]][at*c : (at+count)*c]
			for i := 0; i < count; i++ {
				row := data[i*stride+off:]
				for k := 0; k < c; k++ {
					s[i*c+k] = math.Float32frombits(binary.LittleEndian.Uint32(row[k*4:]))
				}
			}
		}
	}
}

// FieldRanges returns the per-component minima and maxima of every field,
// flattened in schema order — the scan behind the metadata's range-query
// rows. A NaN component value propagates to that component's min and max
// (matching math.Min/math.Max), and -0 orders below +0, but the scan uses
// plain comparisons in the common path instead of a math.Min/math.Max
// call per element. An empty buffer yields nil: min/max of nothing is
// undefined, not ±Inf.
func (b *Buffer) FieldRanges() (mins, maxs []float64) {
	if b.n == 0 {
		return nil, nil
	}
	base := 0
	for fi := 0; fi < b.schema.NumFields(); fi++ {
		f := b.schema.Field(fi)
		c := f.Components
		for k := 0; k < c; k++ {
			mins = append(mins, math.Inf(1))
			maxs = append(maxs, math.Inf(-1))
		}
		switch f.Kind {
		case Float64:
			s := b.f64[b.fieldSlot[fi]]
			for i := 0; i < b.n; i++ {
				for k := 0; k < c; k++ {
					rangeScan(s[i*c+k], &mins[base+k], &maxs[base+k])
				}
			}
		case Float32:
			s := b.f32[b.fieldSlot[fi]]
			for i := 0; i < b.n; i++ {
				for k := 0; k < c; k++ {
					rangeScan(float64(s[i*c+k]), &mins[base+k], &maxs[base+k])
				}
			}
		}
		base += c
	}
	return mins, maxs
}

// rangeScan folds one value into a running (min, max) pair with plain
// comparisons, preserving the semantics of math.Min/math.Max: a NaN
// poisons both (v < NaN and v > NaN are always false, so the pair stays
// NaN for the rest of the column), and -0 orders below +0.
func rangeScan(v float64, mn, mx *float64) {
	neg := math.Signbit(v)
	if v != v {
		*mn = v
		*mx = v
	} else if v < *mn || (v == *mn && neg) {
		*mn = v
		if v > *mx {
			*mx = v
		}
	} else if v > *mx || (v == *mx && !neg) {
		*mx = v
	}
}
