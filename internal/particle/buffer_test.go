package particle

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"spio/internal/geom"
)

func testBuffer(t *testing.T, n int, seed int64) *Buffer {
	t.Helper()
	return Uniform(Uintah(), geom.NewBox(geom.V3(0, 0, 0), geom.V3(2, 3, 4)), n, seed, 0)
}

func TestBufferAppendAndPosition(t *testing.T) {
	b := NewBuffer(PositionOnly(), 4)
	b.Append([]float64{1, 2, 3})
	b.Append([]float64{4, 5, 6})
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	if got := b.Position(0); got != geom.V3(1, 2, 3) {
		t.Errorf("Position(0) = %v", got)
	}
	if got := b.Position(1); got != geom.V3(4, 5, 6) {
		t.Errorf("Position(1) = %v", got)
	}
	b.SetPosition(0, geom.V3(9, 9, 9))
	if got := b.Position(0); got != geom.V3(9, 9, 9) {
		t.Errorf("after SetPosition = %v", got)
	}
}

func TestBufferBytes(t *testing.T) {
	b := testBuffer(t, 10, 1)
	if got := b.Bytes(); got != 10*124 {
		t.Errorf("Bytes = %d, want %d", got, 10*124)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := testBuffer(t, 57, 42)
	data := b.Encode()
	if len(data) != 57*124 {
		t.Fatalf("encoded %d bytes, want %d", len(data), 57*124)
	}
	back, err := Decode(Uintah(), data)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Equal(back) {
		t.Error("decode(encode(b)) != b")
	}
}

func TestDecodePartialRecordFails(t *testing.T) {
	b := testBuffer(t, 3, 1)
	data := b.Encode()
	if _, err := Decode(Uintah(), data[:len(data)-1]); err == nil {
		t.Error("truncated record should fail to decode")
	}
}

func TestEncodeRecordsSubrange(t *testing.T) {
	b := testBuffer(t, 20, 9)
	mid := b.EncodeRecords(nil, 5, 15)
	back, err := Decode(Uintah(), mid)
	if err != nil {
		t.Fatal(err)
	}
	want := b.Slice(5, 15)
	if !back.Equal(want) {
		t.Error("EncodeRecords subrange mismatch")
	}
}

func TestSwapIsInvolution(t *testing.T) {
	b := testBuffer(t, 16, 3)
	orig := b.Slice(0, b.Len())
	b.Swap(2, 11)
	if b.Equal(orig) {
		t.Fatal("swap of distinct particles should change the buffer")
	}
	b.Swap(2, 11)
	if !b.Equal(orig) {
		t.Error("double swap should restore the buffer")
	}
	b.Swap(5, 5)
	if !b.Equal(orig) {
		t.Error("self swap should be a no-op")
	}
}

func TestSwapMovesWholeRecord(t *testing.T) {
	b := testBuffer(t, 8, 4)
	id := b.schema.FieldIndex("id")
	p0, p1 := b.Position(0), b.Position(1)
	id0, id1 := b.Float64Field(id)[0], b.Float64Field(id)[1]
	b.Swap(0, 1)
	if b.Position(0) != p1 || b.Position(1) != p0 {
		t.Error("positions not swapped")
	}
	if b.Float64Field(id)[0] != id1 || b.Float64Field(id)[1] != id0 {
		t.Error("auxiliary field not swapped with its particle")
	}
}

func TestAppendFromAndAppendBuffer(t *testing.T) {
	src := testBuffer(t, 10, 5)
	dst := NewBuffer(Uintah(), 0)
	dst.AppendFrom(src, 3)
	dst.AppendFrom(src, 7)
	if dst.Len() != 2 {
		t.Fatalf("Len = %d", dst.Len())
	}
	if dst.Position(0) != src.Position(3) || dst.Position(1) != src.Position(7) {
		t.Error("AppendFrom copied wrong particles")
	}
	dst2 := NewBuffer(Uintah(), 0)
	dst2.AppendBuffer(src)
	if !dst2.Equal(src) {
		t.Error("AppendBuffer mismatch")
	}
}

func TestAppendFromSchemaMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuffer(PositionOnly(), 0).AppendFrom(testBuffer(t, 1, 1), 0)
}

func TestSelectAndSlice(t *testing.T) {
	b := testBuffer(t, 10, 6)
	sel := b.Select([]int{9, 0, 4})
	if sel.Len() != 3 {
		t.Fatalf("Select Len = %d", sel.Len())
	}
	if sel.Position(0) != b.Position(9) || sel.Position(1) != b.Position(0) || sel.Position(2) != b.Position(4) {
		t.Error("Select order wrong")
	}
	sl := b.Slice(2, 5)
	for i := 0; i < 3; i++ {
		if sl.Position(i) != b.Position(2+i) {
			t.Errorf("Slice particle %d mismatch", i)
		}
	}
}

func TestSliceBoundsPanics(t *testing.T) {
	b := testBuffer(t, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Slice(2, 5)
}

func TestBounds(t *testing.T) {
	b := NewBuffer(PositionOnly(), 3)
	b.Append([]float64{1, 5, -2})
	b.Append([]float64{-3, 2, 7})
	b.Append([]float64{0, 0, 0})
	got := b.Bounds()
	want := geom.NewBox(geom.V3(-3, 0, -2), geom.V3(1, 5, 7))
	if got != want {
		t.Errorf("Bounds = %v, want %v", got, want)
	}
	if !NewBuffer(PositionOnly(), 0).Bounds().IsEmpty() {
		t.Error("empty buffer Bounds should be empty")
	}
}

func TestBoundsContainAllGenerated(t *testing.T) {
	patch := geom.NewBox(geom.V3(1, 1, 1), geom.V3(3, 3, 3))
	b := Uniform(Uintah(), patch, 500, 77, 3)
	bounds := b.Bounds()
	if !patch.ContainsBox(bounds) {
		t.Errorf("generated bounds %v escape patch %v", bounds, patch)
	}
	for i := 0; i < b.Len(); i++ {
		if !bounds.ContainsClosed(b.Position(i)) {
			t.Fatalf("particle %d outside Bounds", i)
		}
	}
}

func TestQuickEncodeDecodeAnyFloats(t *testing.T) {
	// Property: any particle record, including NaN and ±Inf components,
	// round-trips bit-exactly.
	schema := MustSchema([]Field{
		{Name: PositionField, Kind: Float64, Components: 3},
		{Name: "v32", Kind: Float32, Components: 2},
	})
	f := func(x, y, z float64, a, c float32) bool {
		b := NewBuffer(schema, 1)
		b.Append([]float64{x, y, z}, []float64{float64(a), float64(c)})
		back, err := Decode(schema, b.Encode())
		if err != nil {
			return false
		}
		return b.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualDetectsBitFlips(t *testing.T) {
	b := testBuffer(t, 12, 8)
	data := b.Encode()
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		i := r.Intn(len(data))
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[i] ^= 1 << uint(r.Intn(8))
		back, err := Decode(Uintah(), mut)
		if err != nil {
			t.Fatal(err)
		}
		if b.Equal(back) {
			t.Fatalf("bit flip at byte %d not detected by Equal", i)
		}
	}
}

func TestFloat64FieldWrongKindPanics(t *testing.T) {
	b := testBuffer(t, 1, 1)
	typeIdx := b.schema.FieldIndex("type")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Float64Field(typeIdx)
}

func TestNaNPositionsSurviveEqual(t *testing.T) {
	b := NewBuffer(PositionOnly(), 1)
	b.Append([]float64{math.NaN(), 0, 0})
	c := NewBuffer(PositionOnly(), 1)
	c.Append([]float64{math.NaN(), 0, 0})
	if !b.Equal(c) {
		t.Error("NaN payloads with identical bits should be Equal")
	}
}
