package particle

import (
	"testing"

	"spio/internal/geom"
)

func BenchmarkEncode32K(b *testing.B) {
	buf := Uniform(Uintah(), geom.UnitBox(), 32768, 7, 0)
	b.SetBytes(buf.Bytes())
	var scratch []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = buf.EncodeRecords(scratch[:0], 0, buf.Len())
	}
}

func BenchmarkDecode32K(b *testing.B) {
	buf := Uniform(Uintah(), geom.UnitBox(), 32768, 7, 0)
	data := buf.Encode()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := NewBuffer(Uintah(), buf.Len())
		if err := dst.DecodeRecords(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBounds32K(b *testing.B) {
	buf := Uniform(Uintah(), geom.UnitBox(), 32768, 7, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = buf.Bounds()
	}
}

func BenchmarkGenerateUniform32K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Uniform(Uintah(), geom.UnitBox(), 32768, int64(i), 0)
	}
}

func BenchmarkAppendFrom(b *testing.B) {
	src := Uniform(Uintah(), geom.UnitBox(), 4096, 7, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := NewBuffer(Uintah(), 4096)
		for j := 0; j < src.Len(); j++ {
			dst.AppendFrom(src, j)
		}
	}
}
