package particle

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"spio/internal/geom"
)

func TestEncodeRecordsIntoMatchesEncodeRecords(t *testing.T) {
	b := testBuffer(t, 41, 7)
	want := b.EncodeRecords(nil, 5, 30)
	got := make([]byte, (30-5)*b.Schema().Stride())
	b.EncodeRecordsInto(got, 5, 30)
	if !bytes.Equal(got, want) {
		t.Error("EncodeRecordsInto differs from EncodeRecords")
	}
}

func TestEncodeRecordsIntoSizePanics(t *testing.T) {
	b := testBuffer(t, 4, 1)
	for _, tc := range []struct {
		name string
		dst  int
		lo   int
		hi   int
	}{
		{"short dst", 3 * 124, 0, 4},
		{"long dst", 5 * 124, 0, 4},
		{"bad range", 2 * 124, 3, 5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			b.EncodeRecordsInto(make([]byte, tc.dst), tc.lo, tc.hi)
		}()
	}
}

func TestDecodeRecordsAtRoundTrip(t *testing.T) {
	src := testBuffer(t, 23, 11)
	data := src.Encode()

	dst := NewBuffer(Uintah(), 0)
	dst.SetLen(30)
	if err := dst.DecodeRecordsAt(data, 4); err != nil {
		t.Fatal(err)
	}
	if got, want := dst.Slice(4, 27), src; !got.Equal(want) {
		t.Error("decoded region differs from source")
	}
	// Surrounding particles stay zero.
	for _, i := range []int{0, 3, 27, 29} {
		if p := dst.Position(i); p.X != 0 || p.Y != 0 || p.Z != 0 {
			t.Errorf("particle %d disturbed: %v", i, p)
		}
	}
}

func TestDecodeRecordsAtErrors(t *testing.T) {
	b := NewBuffer(Uintah(), 0)
	b.SetLen(2)
	rec := make([]byte, 124)
	if err := b.DecodeRecordsAt(rec[:100], 0); err == nil {
		t.Error("misaligned payload: no error")
	}
	if err := b.DecodeRecordsAt(rec, 2); err == nil {
		t.Error("out-of-range region: no error")
	}
	if err := b.DecodeRecordsAt(rec, -1); err == nil {
		t.Error("negative offset: no error")
	}
}

func TestSetLenZerosAndTruncates(t *testing.T) {
	b := testBuffer(t, 8, 3)
	keep := b.Slice(0, 4)
	b.SetLen(4)
	if !b.Equal(keep) {
		t.Error("truncation changed surviving particles")
	}
	b.SetLen(6)
	if b.Len() != 6 {
		t.Fatalf("Len = %d", b.Len())
	}
	if !b.Slice(0, 4).Equal(keep) {
		t.Error("growth changed surviving particles")
	}
	// Regrown region must be zero even though the old capacity held the
	// truncated particles' values.
	for i := 4; i < 6; i++ {
		if p := b.Position(i); p.X != 0 || p.Y != 0 || p.Z != 0 {
			t.Errorf("regrown particle %d not zeroed: %v", i, p)
		}
	}
}

func TestGrowPreservesContent(t *testing.T) {
	b := testBuffer(t, 5, 2)
	want := b.Slice(0, 5)
	b.Grow(1000)
	if b.Len() != 5 || !b.Equal(want) {
		t.Error("Grow changed length or content")
	}
}

func TestCopyFrom(t *testing.T) {
	src := testBuffer(t, 6, 4)
	dst := NewBuffer(Uintah(), 0)
	dst.SetLen(10)
	dst.CopyFrom(2, src)
	if !dst.Slice(2, 8).Equal(src) {
		t.Error("CopyFrom region differs from source")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range CopyFrom: no panic")
			}
		}()
		dst.CopyFrom(5, src)
	}()
}

func TestFieldRangesMatchesNaiveScan(t *testing.T) {
	b := testBuffer(t, 100, 17)
	mins, maxs := b.FieldRanges()
	s := b.Schema()
	col := 0
	for fi := 0; fi < s.NumFields(); fi++ {
		f := s.Field(fi)
		for k := 0; k < f.Components; k++ {
			mn, mx := math.Inf(1), math.Inf(-1)
			for i := 0; i < b.Len(); i++ {
				var v float64
				if f.Kind == Float64 {
					v = b.Float64Field(fi)[i*f.Components+k]
				} else {
					v = float64(b.Float32Field(fi)[i*f.Components+k])
				}
				mn = math.Min(mn, v)
				mx = math.Max(mx, v)
			}
			if mins[col] != mn || maxs[col] != mx {
				t.Errorf("field %d comp %d: got [%v,%v], want [%v,%v]", fi, k, mins[col], maxs[col], mn, mx)
			}
			col++
		}
	}
}

// TestFieldRangesNaNPropagates pins the NaN contract: one NaN component
// poisons that component's min and max, exactly as folding math.Min and
// math.Max would.
func TestFieldRangesNaNPropagates(t *testing.T) {
	b := NewBuffer(PositionOnly(), 4)
	b.Append([]float64{1, 2, 3})
	b.Append([]float64{math.NaN(), 5, 6})
	b.Append([]float64{-7, 8, 9})
	mins, maxs := b.FieldRanges()
	if !math.IsNaN(mins[0]) || !math.IsNaN(maxs[0]) {
		t.Errorf("NaN column: got [%v,%v], want [NaN,NaN]", mins[0], maxs[0])
	}
	if mins[1] != 2 || maxs[1] != 8 {
		t.Errorf("clean column y: got [%v,%v]", mins[1], maxs[1])
	}
	if mins[2] != 3 || maxs[2] != 9 {
		t.Errorf("clean column z: got [%v,%v]", mins[2], maxs[2])
	}
}

func TestFieldRangesSignedZero(t *testing.T) {
	negZero := math.Copysign(0, -1)
	b := NewBuffer(PositionOnly(), 2)
	b.Append([]float64{0, negZero, 1})
	b.Append([]float64{negZero, 0, 2})
	mins, maxs := b.FieldRanges()
	// -0 orders below +0 for both min and max, like math.Min/math.Max.
	if !math.Signbit(mins[0]) || math.Signbit(maxs[0]) {
		t.Errorf("x: min=%v (signbit %v) max=%v (signbit %v)",
			mins[0], math.Signbit(mins[0]), maxs[0], math.Signbit(maxs[0]))
	}
	if !math.Signbit(mins[1]) || math.Signbit(maxs[1]) {
		t.Errorf("y: min=%v (signbit %v) max=%v (signbit %v)",
			mins[1], math.Signbit(mins[1]), maxs[1], math.Signbit(maxs[1]))
	}
}

func TestFieldRangesEmpty(t *testing.T) {
	b := NewBuffer(Uintah(), 0)
	if mins, maxs := b.FieldRanges(); mins != nil || maxs != nil {
		t.Errorf("empty buffer: got %v/%v, want nil/nil", mins, maxs)
	}
}

func TestDecodePoolDisjointRegions(t *testing.T) {
	const parts = 8
	srcs := make([]*Buffer, parts)
	total := 0
	for i := range srcs {
		srcs[i] = testBuffer(t, 50+i, int64(i))
		total += srcs[i].Len()
	}
	dst := NewBuffer(Uintah(), 0)
	dst.SetLen(total)
	pool := NewDecodePool(dst, 4)
	at := 0
	offs := make([]int, parts)
	for i, s := range srcs {
		offs[i] = at
		pool.Go(s.Encode(), at)
		at += s.Len()
	}
	if err := pool.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, s := range srcs {
		if !dst.Slice(offs[i], offs[i]+s.Len()).Equal(s) {
			t.Errorf("region %d differs", i)
		}
	}
	if p := pool.PeakConcurrency(); p < 1 || p > 4 {
		t.Errorf("PeakConcurrency = %d, want in [1,4]", p)
	}
}

// TestDecodePoolInlinePath pins the single-worker fast path: decodes
// run synchronously in Go, regions land intact, PeakConcurrency
// reports 1, and a decode error still surfaces from Wait while
// leaving earlier regions untouched. The inline path shares the
// worker path's mutex discipline on err/peak (racegate's dogfood
// finding), so this doubles as its regression pin.
func TestDecodePoolInlinePath(t *testing.T) {
	const parts = 4
	srcs := make([]*Buffer, parts)
	total := 0
	for i := range srcs {
		srcs[i] = testBuffer(t, 30+i, int64(i))
		total += srcs[i].Len()
	}
	dst := NewBuffer(Uintah(), 0)
	dst.SetLen(total)
	pool := NewDecodePool(dst, 1)
	at := 0
	offs := make([]int, parts)
	for i, s := range srcs {
		offs[i] = at
		pool.Go(s.Encode(), at)
		at += s.Len()
	}
	if err := pool.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, s := range srcs {
		if !dst.Slice(offs[i], offs[i]+s.Len()).Equal(s) {
			t.Errorf("region %d differs", i)
		}
	}
	if p := pool.PeakConcurrency(); p != 1 {
		t.Errorf("PeakConcurrency = %d, want 1 on the inline path", p)
	}

	bad := NewBuffer(Uintah(), 0)
	bad.SetLen(1)
	badPool := NewDecodePool(bad, 1)
	badPool.Go(make([]byte, 124), 1) // out of range
	if err := badPool.Wait(); err == nil {
		t.Error("out-of-range inline decode: Wait returned nil")
	}
}

func TestDecodePoolReportsError(t *testing.T) {
	dst := NewBuffer(Uintah(), 0)
	dst.SetLen(1)
	pool := NewDecodePool(dst, 2)
	pool.Go(make([]byte, 124), 0)
	pool.Go(make([]byte, 124), 1) // out of range
	if err := pool.Wait(); err == nil {
		t.Error("out-of-range decode: Wait returned nil")
	}
}

func TestDecodePoolBoundsConcurrency(t *testing.T) {
	dst := NewBuffer(Uintah(), 0)
	dst.SetLen(64)
	pool := NewDecodePool(dst, 2)
	for i := 0; i < 64; i++ {
		pool.Go(make([]byte, 124), i)
	}
	if err := pool.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := pool.PeakConcurrency(); p > 2 {
		t.Errorf("PeakConcurrency = %d, want <= 2", p)
	}
}

func BenchmarkDecodeRecordsAt(b *testing.B) {
	src := Uniform(Uintah(), geom.NewBox(geom.V3(0, 0, 0), geom.V3(2, 3, 4)), 8192, 1, 0)
	data := src.Encode()
	dst := NewBuffer(Uintah(), 0)
	dst.SetLen(8192)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.DecodeRecordsAt(data, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeRecordsInto(b *testing.B) {
	src := Uniform(Uintah(), geom.NewBox(geom.V3(0, 0, 0), geom.V3(2, 3, 4)), 8192, 1, 0)
	dst := make([]byte, 8192*src.Schema().Stride())
	b.SetBytes(int64(len(dst)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.EncodeRecordsInto(dst, 0, 8192)
	}
}

func ExampleBuffer_SetLen() {
	b := NewBuffer(PositionOnly(), 0)
	b.SetLen(3)
	fmt.Println(b.Len())
	// Output: 3
}
