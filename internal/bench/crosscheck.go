package bench

import (
	"fmt"

	"spio/internal/agg"
	"spio/internal/desim"
	"spio/internal/machine"
	"spio/internal/perfmodel"
)

// CrossCheck compares the analytic model against the discrete-event
// simulation for every configuration at one scale — the evidence that
// the regenerated figures are not artifacts of either engine's
// idealization (DESIGN.md §6).
func CrossCheck(m machine.Profile, nRanks int, ppc int64) (*Table, error) {
	factors := perfmodel.MiraFactors()
	if m.Name == "Theta" {
		factors = perfmodel.ThetaFactors()
	}
	t := &Table{
		Title: fmt.Sprintf("Model cross-check — analytic vs discrete-event, %s, %d ranks, %dK ppc",
			m.Name, nRanks, ppc/1024),
		Note:   "Write time per engine (seconds, excluding the metadata write); ratio near 1 means the engines agree.",
		Header: []string{"config", "analytic (s)", "DES (s)", "ratio"},
	}
	for _, f := range factors {
		if nRanks%f.Group() != 0 {
			continue
		}
		plan, err := agg.UniformPlan(nRanks, f.Group(), ppc, perfmodel.UintahBytesPerParticle)
		if err != nil {
			return nil, err
		}
		analytic, err := perfmodel.PriceWrite(m, plan, f.String())
		if err != nil {
			return nil, err
		}
		sim, err := desim.SimulateWrite(m, plan)
		if err != nil {
			return nil, err
		}
		a := (analytic.Total() - analytic.Meta).Seconds()
		d := sim.Time.Seconds()
		t.AddRow(f.String(),
			fmt.Sprintf("%.3f", a),
			fmt.Sprintf("%.3f", d),
			fmt.Sprintf("%.2f", d/a))
	}
	return t, nil
}
