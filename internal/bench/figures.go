package bench

import (
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"time"

	"spio/internal/agg"
	"spio/internal/core"
	"spio/internal/format"
	"spio/internal/geom"
	"spio/internal/lod"
	"spio/internal/machine"
	"spio/internal/mpi"
	"spio/internal/particle"
	"spio/internal/perfmodel"
	"spio/internal/render"
	"spio/internal/stats"
)

// Fig5 builds the weak-scaling write-throughput table for one machine
// and particles-per-core workload (paper Fig. 5 has four panels:
// {Mira, Theta} × {32K, 64K}).
func Fig5(m machine.Profile, ppc int64) (*Table, error) {
	factors := perfmodel.MiraFactors()
	if m.Name == "Theta" {
		factors = perfmodel.ThetaFactors()
	}
	rows, err := perfmodel.Fig5(m, ppc, factors, perfmodel.Fig5Scales())
	if err != nil {
		return nil, err
	}
	// Pivot: one row per rank count, one column per strategy.
	strategies := []string{}
	seen := map[string]bool{}
	byKey := map[int]map[string]float64{}
	for _, r := range rows {
		if !seen[r.Strategy] {
			seen[r.Strategy] = true
			strategies = append(strategies, r.Strategy)
		}
		if byKey[r.Ranks] == nil {
			byKey[r.Ranks] = map[string]float64{}
		}
		byKey[r.Ranks][r.Strategy] = r.Result.ThroughputGBs()
	}
	t := &Table{
		Title: fmt.Sprintf("Fig. 5 — parallel write weak scaling, %s, %dK particles/core (GB/s)", m.Name, ppc/1024),
		Note:  "Modeled throughput; columns are aggregation configs plus baselines.",
	}
	t.Header = append([]string{"procs"}, strategies...)
	ranks := make([]int, 0, len(byKey))
	for n := range byKey {
		ranks = append(ranks, n)
	}
	sort.Ints(ranks)
	for _, n := range ranks {
		row := []string{fmt.Sprintf("%d", n)}
		for _, s := range strategies {
			if v, ok := byKey[n][s]; ok {
				row = append(row, fmt.Sprintf("%.2f", v))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig6 builds the aggregation-vs-I/O time profile table (paper Fig. 6)
// at 32,768 ranks.
func Fig6(m machine.Profile, ppc int64) (*Table, error) {
	factors := perfmodel.MiraFactors()
	if m.Name == "Theta" {
		factors = perfmodel.ThetaFactors()
	}
	rows, err := perfmodel.Fig6(m, ppc, factors)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig. 6 — time profile at 32768 ranks, %s, %dK particles/core", m.Name, ppc/1024),
		Note:   "Share of (aggregation + file I/O) time per phase, as in the paper's stacked bars.",
		Header: []string{"config", "aggregation %", "file I/O %", "agg (s)", "file I/O (s)"},
	}
	for _, r := range rows {
		t.AddRow(r.Strategy,
			fmt.Sprintf("%.1f", r.AggPct),
			fmt.Sprintf("%.1f", r.IOPct),
			fmt.Sprintf("%.3f", r.Result.Aggregation.Seconds()),
			fmt.Sprintf("%.3f", r.Result.IO.Seconds()))
	}
	return t, nil
}

// Fig7 builds the visualization-read strong-scaling table (paper
// Fig. 7) for Theta or the SSD workstation.
func Fig7(m machine.Profile) *Table {
	readers := []int{64, 128, 256, 512, 1024, 2048}
	if m.Name != "Theta" {
		readers = []int{1, 2, 4, 8, 16, 32, 64}
	}
	rows := perfmodel.Fig7(m, perfmodel.DefaultFig7Dataset(), readers)
	t := &Table{
		Title: fmt.Sprintf("Fig. 7 — visualization read strong scaling, %s (seconds)", m.Name),
		Note:  "2-billion-particle dataset written at 64K ranks; three read strategies.",
		Header: []string{"readers",
			string(perfmodel.Case222WithMeta),
			string(perfmodel.Case222NoMeta),
			string(perfmodel.Case111WithMeta)},
	}
	byReaders := map[int]map[perfmodel.Fig7Case]time.Duration{}
	for _, r := range rows {
		if byReaders[r.Readers] == nil {
			byReaders[r.Readers] = map[perfmodel.Fig7Case]time.Duration{}
		}
		byReaders[r.Readers][r.Case] = r.Time
	}
	for _, n := range readers {
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", byReaders[n][perfmodel.Case222WithMeta].Seconds()),
			fmt.Sprintf("%.2f", byReaders[n][perfmodel.Case222NoMeta].Seconds()),
			fmt.Sprintf("%.2f", byReaders[n][perfmodel.Case111WithMeta].Seconds()))
	}
	return t
}

// Fig8 builds the LOD read-time table (paper Fig. 8) for one machine.
func Fig8(m machine.Profile) *Table {
	rows := perfmodel.Fig8(m, perfmodel.DefaultFig7Dataset())
	t := &Table{
		Title:  fmt.Sprintf("Fig. 8 — level of detail reads, %s, 64 readers (seconds)", m.Name),
		Note:   "Time to read levels 0..L of the 2-billion-particle dataset (P=32, S=2).",
		Header: []string{"levels", "particles", "time (s)"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Levels),
			fmt.Sprintf("%d", r.Particles),
			fmt.Sprintf("%.3f", r.Time.Seconds()))
	}
	return t
}

// Fig9 runs the progressive-visualization study on the local engine: an
// injection-style dataset (the coal-injection scenario of Fig. 9,
// scaled to this machine) is written through the full pipeline, then
// prefixes of 25/50/75/100% are read back and scored for spatial
// coverage and density error — the quantitative stand-in for the
// paper's rendered images.
func Fig9(dir string, nRanks, perRank int) (*Table, error) {
	simDims, err := cubeDims(nRanks)
	if err != nil {
		return nil, err
	}
	domain := geom.UnitBox()
	grid := geom.NewGrid(domain, simDims)
	cfg := core.WriteConfig{
		Agg:  agg.Config{Domain: domain, SimDims: simDims, Factor: geom.I3(2, 2, 1)},
		Seed: 42,
	}
	err = mpi.Run(nRanks, func(c *mpi.Comm) error {
		patch := grid.CellBox(geom.Unlinear(c.Rank(), simDims))
		local := particle.Injection(particle.Uintah(), domain, patch, perRank, 0.6, 9, c.Rank())
		_, werr := core.Write(c, dir, cfg, local)
		return werr
	})
	if err != nil {
		return nil, err
	}

	meta, err := format.ReadMeta(dir)
	if err != nil {
		return nil, err
	}
	// Read the full LOD-ordered content of every file, concatenated.
	full := particle.NewBuffer(meta.Schema, int(meta.Total))
	var files []*format.DataFile
	for _, fe := range meta.Files {
		df, err := format.OpenDataFile(filepath.Join(dir, fe.Name))
		if err != nil {
			return nil, err
		}
		files = append(files, df)
		buf, err := df.ReadAll()
		if err != nil {
			return nil, err
		}
		full.AppendBuffer(buf)
	}
	defer func() {
		for _, df := range files {
			_ = df.Close() // read-only handles
		}
	}()

	t := &Table{
		Title:  "Fig. 9 — progressive LOD quality (injection dataset, local engine)",
		Note:   "Per-file LOD prefixes vs the full data: spatial coverage, density RMSE, and rendered-image PSNR (the paper shows the renderings; PGMs land next to the dataset).",
		Header: []string{"fraction", "particles", "coverage %", "density RMSE", "image PSNR (dB)", "read time"},
	}
	renderOpts := render.Options{Width: 256, Height: 256}
	ref := render.Render(full, meta.Domain, renderOpts)
	if err := ref.WritePGM(filepath.Join(dir, "render_100.pgm")); err != nil {
		return nil, err
	}
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		start := time.Now()
		subset := particle.NewBuffer(meta.Schema, int(frac*float64(meta.Total)))
		for _, df := range files {
			n := int64(frac * float64(df.Header.Count))
			buf, err := df.ReadPrefix(n)
			if err != nil {
				return nil, err
			}
			subset.AppendBuffer(buf)
		}
		elapsed := time.Since(start)
		rep, err := stats.Compare(subset, full, histDims(int(meta.Total)))
		if err != nil {
			return nil, err
		}
		opts := renderOpts
		opts.SampleFraction = frac
		img := render.Render(subset, meta.Domain, opts)
		psnr, err := render.PSNR(ref, img)
		if err != nil {
			return nil, err
		}
		if err := img.WritePGM(filepath.Join(dir, fmt.Sprintf("render_%03.0f.pgm", frac*100))); err != nil {
			return nil, err
		}
		psnrStr := "inf"
		if !math.IsInf(psnr, 1) {
			psnrStr = fmt.Sprintf("%.1f", psnr)
		}
		t.AddRow(fmt.Sprintf("%.0f%%", frac*100),
			fmt.Sprintf("%d", subset.Len()),
			fmt.Sprintf("%.1f", rep.Coverage*100),
			fmt.Sprintf("%.4f", rep.DensityRMSE),
			psnrStr,
			elapsed.Round(time.Microsecond).String())
	}
	return t, nil
}

// Fig11 builds the adaptive-aggregation write-time table (paper
// Fig. 11) for one machine.
func Fig11(m machine.Profile, ppc int64) (*Table, error) {
	rows, err := perfmodel.Fig11(m, ppc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig. 11 — adaptive vs non-adaptive aggregation, %s, 4096 ranks (seconds)", m.Name),
		Note:   "Aggregation + file I/O time as particles concentrate into a shrinking fraction of the domain.",
		Header: []string{"occupied %", "non-adaptive (s)", "adaptive (s)"},
	}
	nonAdaptive := map[float64]float64{}
	adaptive := map[float64]float64{}
	var order []float64
	for _, r := range rows {
		if r.Adaptive {
			adaptive[r.OccupancyPct] = r.Result.AggPlusIO().Seconds()
		} else {
			if nonAdaptive[r.OccupancyPct] == 0 {
				order = append(order, r.OccupancyPct)
			}
			nonAdaptive[r.OccupancyPct] = r.Result.AggPlusIO().Seconds()
		}
	}
	for _, q := range order {
		t.AddRow(fmt.Sprintf("%.1f", q),
			fmt.Sprintf("%.3f", nonAdaptive[q]),
			fmt.Sprintf("%.3f", adaptive[q]))
	}
	return t, nil
}

// Reorder measures the Section 3.4 LOD reorder cost on this machine and
// reports the modeled Mira/Theta estimates next to it.
func Reorder() *Table {
	const n = 32768
	buf := particle.Uniform(particle.Uintah(), geom.UnitBox(), n, 7, 0)
	// Warm up once, then time the shuffle.
	lod.Shuffle(buf, 1)
	start := time.Now()
	lod.Shuffle(buf, 2)
	local := time.Since(start)

	t := &Table{
		Title:  "Section 3.4 — LOD reorder time for 32K particles",
		Note:   "Paper: 33 ms on a Mira core, 80 ms on a Theta core.",
		Header: []string{"platform", "time"},
	}
	t.AddRow("this machine (measured)", local.Round(time.Microsecond).String())
	t.AddRow("Mira (model)", perfmodel.ReorderEstimate(machine.Mira(), n).Round(time.Millisecond).String())
	t.AddRow("Theta (model)", perfmodel.ReorderEstimate(machine.Theta(), n).Round(time.Millisecond).String())
	return t
}

// histDims sizes the Fig. 9 quality histogram so occupied cells hold
// enough particles for the coverage metric to be meaningful (~100 per
// cell on average for the full data).
func histDims(total int) geom.Idx3 {
	side := 2
	for side < 16 && (side+1)*(side+1)*(side+1)*100 <= total {
		side++
	}
	return geom.I3(side, side, side)
}

// cubeDims factors nRanks into a near-square 3D grid with X and Y even
// (so the 2x2x1 partition factor divides it).
func cubeDims(nRanks int) (geom.Idx3, error) {
	for x := 2; x <= nRanks; x += 2 {
		for y := 2; x*y <= nRanks; y += 2 {
			if nRanks%(x*y) == 0 {
				z := nRanks / (x * y)
				if x >= y && y >= z {
					return geom.I3(x, y, z), nil
				}
			}
		}
	}
	return geom.Idx3{}, fmt.Errorf("bench: cannot factor %d ranks into an even grid", nRanks)
}
