package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"spio/internal/machine"
)

func renderTable(t *testing.T, tab *Table) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tab.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestFig5Tables(t *testing.T) {
	for _, m := range []machine.Profile{machine.Mira(), machine.Theta()} {
		for _, ppc := range []int64{32768, 65536} {
			tab, err := Fig5(m, ppc)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) != 10 { // 512..262144
				t.Errorf("%s: %d scale rows, want 10", m.Name, len(tab.Rows))
			}
			out := renderTable(t, tab)
			for _, want := range []string{"IOR FPP", "IOR collective", "Parallel HDF5", "1x1x1", "262144"} {
				if !strings.Contains(out, want) {
					t.Errorf("%s table missing %q", m.Name, want)
				}
			}
		}
	}
}

func TestFig6Tables(t *testing.T) {
	tab, err := Fig6(machine.Theta(), 32768)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Errorf("Theta Fig6 rows = %d, want 7 configs", len(tab.Rows))
	}
	// Percentages parse and sum to ~100.
	for _, row := range tab.Rows {
		a, err1 := strconv.ParseFloat(row[1], 64)
		b, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil || a+b < 99.5 || a+b > 100.5 {
			t.Errorf("row %v: bad percentages", row)
		}
	}
}

func TestFig7And8Tables(t *testing.T) {
	for _, m := range []machine.Profile{machine.Theta(), machine.Workstation()} {
		t7 := Fig7(m)
		if len(t7.Rows) == 0 {
			t.Errorf("%s Fig7 empty", m.Name)
		}
		t8 := Fig8(m)
		if len(t8.Rows) != 21 {
			t.Errorf("%s Fig8 rows = %d, want 21 levels", m.Name, len(t8.Rows))
		}
	}
}

func TestFig9LocalRun(t *testing.T) {
	tab, err := Fig9(t.TempDir(), 8, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Fig9 rows = %d", len(tab.Rows))
	}
	// The 100% row must have coverage 100 and RMSE 0.
	last := tab.Rows[3]
	if last[2] != "100.0" || last[3] != "0.0000" {
		t.Errorf("100%% row = %v", last)
	}
	// The 25% row should already cover most of the occupied space.
	cov, err := strconv.ParseFloat(tab.Rows[0][2], 64)
	if err != nil || cov < 75 {
		t.Errorf("25%% coverage = %v", tab.Rows[0])
	}
}

func TestFig11Tables(t *testing.T) {
	for _, m := range []machine.Profile{machine.Mira(), machine.Theta()} {
		tab, err := Fig11(m, 32768)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 4 {
			t.Fatalf("%s Fig11 rows = %d", m.Name, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			non, _ := strconv.ParseFloat(row[1], 64)
			ad, _ := strconv.ParseFloat(row[2], 64)
			if ad > non*1.02 {
				t.Errorf("%s q=%s: adaptive %v > non-adaptive %v", m.Name, row[0], ad, non)
			}
		}
	}
}

func TestCrossCheckAgreement(t *testing.T) {
	for _, m := range []machine.Profile{machine.Mira(), machine.Theta()} {
		tab, err := CrossCheck(m, 32768, 32768)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) < 4 {
			t.Fatalf("%s: %d rows", m.Name, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			ratio, err := strconv.ParseFloat(row[3], 64)
			if err != nil || ratio < 0.5 || ratio > 1.2 {
				t.Errorf("%s %s: engines disagree (ratio %s)", m.Name, row[0], row[3])
			}
		}
	}
}

func TestReorderTable(t *testing.T) {
	tab := Reorder()
	out := renderTable(t, tab)
	if !strings.Contains(out, "Mira (model)") || !strings.Contains(out, "33ms") {
		t.Errorf("reorder table:\n%s", out)
	}
}

func TestCubeDims(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		d, err := cubeDims(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d.Volume() != n {
			t.Errorf("n=%d: dims %v", n, d)
		}
		if d.X%2 != 0 || d.Y%2 != 0 {
			t.Errorf("n=%d: dims %v not even in x/y", n, d)
		}
	}
	if _, err := cubeDims(7); err == nil {
		t.Error("odd prime rank count should fail")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Note: "n", Header: []string{"a", "long-header"}}
	tab.AddRow("xxxxxxx", "1")
	out := renderTable(t, tab)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, note, header, rule, row
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "## T") {
		t.Errorf("title line %q", lines[0])
	}
}

func TestWriteCSV(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "b"}}
	tab.AddRow("1", "x,y") // embedded comma must be quoted
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# T\n") {
		t.Errorf("missing title comment: %q", out)
	}
	if !strings.Contains(out, "\"x,y\"") {
		t.Errorf("comma not quoted: %q", out)
	}
}
