// Package bench regenerates the paper's evaluation artifacts: one
// generator per figure, each returning a Table whose rows are the series
// the figure plots. Model-driven experiments (Figs. 5–8, 11) price plans
// on the machine profiles; local experiments (Fig. 9, reorder timing)
// execute the real pipeline on this machine.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table as aligned ASCII.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s\n", t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Note); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV with a leading comment line naming
// the experiment.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
