package mpi

import (
	"fmt"
	"sync"
)

// AnySource matches messages from any rank, like MPI_ANY_SOURCE.
const AnySource = -1

// AnyTag matches messages with any user tag, like MPI_ANY_TAG.
const AnyTag = -1

// Status describes a received message.
type Status struct {
	Source int
	Tag    int
}

type message struct {
	src, tag int
	data     []byte
}

// mailbox is an unbounded, mutex-protected queue with (source, tag)
// matching. Unboundedness makes sends asynchronous — the buffered-send
// semantics a well-provisioned MPI eager protocol gives small and
// mid-sized messages — which is what lets the paper's aggregation phase
// post all sends before any receive completes.
//
// Blocked receivers park on per-waiter condition variables and put
// delivers a matching message directly to the first matching waiter (in
// posting order). The earlier design had one shared cond that put
// Broadcast: with w waiters every delivery woke all of them, and each
// loser rescanned the whole queue before sleeping again — O(w·q) work
// per message once collectives pile up Irecv waiters. Direct handoff
// wakes exactly one goroutine per message and never rescans.
type mailbox struct {
	mu      sync.Mutex
	ab      *abortState
	queue   []message
	waiters []*waiter
}

// waiter is one blocked take: its match criteria and a private cond
// (sharing the mailbox mutex) that put signals on delivery.
type waiter struct {
	src   int
	match func(wireTag int) bool
	cond  *sync.Cond
	msg   message
	ready bool
}

func newMailbox(ab *abortState) *mailbox {
	return &mailbox{ab: ab}
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	for _, w := range m.waiters {
		if !w.ready && (w.src == AnySource || msg.src == w.src) && w.match(msg.tag) {
			w.msg = msg
			w.ready = true
			w.cond.Signal()
			m.mu.Unlock()
			return
		}
	}
	m.queue = append(m.queue, msg)
	m.mu.Unlock()
}

// take blocks until a message matching the predicate arrives, removes
// the first match in arrival order, and returns it. When several takes
// with overlapping criteria block concurrently (Irecv), messages are
// handed out in the order the takes were posted.
func (m *mailbox) take(src int, match func(wireTag int) bool) message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, msg := range m.queue {
		if (src == AnySource || msg.src == src) && match(msg.tag) {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			return msg
		}
	}
	m.ab.check()
	w := &waiter{src: src, match: match, cond: sync.NewCond(&m.mu)}
	m.waiters = append(m.waiters, w)
	defer func() {
		for i, x := range m.waiters {
			if x == w {
				m.waiters = append(m.waiters[:i], m.waiters[i+1:]...)
				break
			}
		}
	}()
	for !w.ready {
		w.cond.Wait()
		if !w.ready {
			// Spurious-looking wake: only wakeAll (world abort) does this.
			m.ab.check()
		}
	}
	return w.msg
}

// wakeAll wakes every parked waiter so it can observe a world abort.
func (m *mailbox) wakeAll() {
	m.mu.Lock()
	for _, w := range m.waiters {
		w.cond.Signal()
	}
	m.mu.Unlock()
}

// tagSpace is the per-namespace tag range: user tags must be below it,
// and a communicator namespace shifts its wire tags by ns·tagSpace so
// duplicated communicators (Dup) never match each other's traffic.
const tagSpace = 1 << 20

// Comm is one rank's handle onto the world, the analogue of an MPI
// communicator bound to a rank.
type Comm struct {
	world    *World
	rank     int
	collSeq  uint64 // per-rank collective sequence number, see coll.go
	ns       int    // tag namespace (0 for the world communicator)
	dupCount int    // children handed out by Dup
}

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Dup returns a duplicate communicator with an isolated tag namespace —
// the analogue of MPI_Comm_dup. Traffic on the duplicate can never match
// receives on the parent (or any other duplicate), which is what lets a
// library operation such as an asynchronous checkpoint run concurrently
// with the caller's own communication. All ranks must call Dup in the
// same order on the same communicator (the usual SPMD contract) so the
// duplicates correspond.
func (c *Comm) Dup() *Comm {
	c.stampColl(collDup)
	c.dupCount++
	if c.dupCount >= 64 {
		panic("mpi: too many duplicates of one communicator")
	}
	ns := c.ns*64 + c.dupCount
	if ns >= 1<<20 {
		panic("mpi: communicator duplication too deep")
	}
	return &Comm{world: c.world, rank: c.rank, ns: ns}
}

// wireTag maps a user tag into this communicator's namespace.
func (c *Comm) wireTag(tag int) int {
	if tag < 0 || tag >= tagSpace {
		panic(fmt.Sprintf("mpi: user tag %d out of [0,%d)", tag, tagSpace))
	}
	return c.ns*tagSpace + tag
}

// matcher returns the wire-tag predicate for a Recv of the given user
// tag (or AnyTag, which matches only user messages of this namespace).
func (c *Comm) matcher(tag int) func(int) bool {
	if tag == AnyTag {
		lo, hi := c.ns*tagSpace, (c.ns+1)*tagSpace
		return func(wire int) bool { return wire >= lo && wire < hi }
	}
	want := c.wireTag(tag)
	return func(wire int) bool { return wire == want }
}

// Send delivers data to dst with the given user tag (tag >= 0). The data
// is copied, so the caller may immediately reuse its buffer; the send
// never blocks (eager buffered semantics).
func (c *Comm) Send(dst, tag int, data []byte) {
	c.send(dst, c.wireTag(tag), data)
}

func (c *Comm) send(dst, tag int, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	c.sendOwned(dst, tag, cp)
}

// SendOwned is Send for payloads the caller is done with: ownership of
// data transfers to the receiver and the slice is enqueued without the
// defensive copy Send makes. The caller must not read or write data
// afterwards — use it for freshly encoded payloads that exist only to be
// sent, where the copy would double the wire traffic's memory cost.
func (c *Comm) SendOwned(dst, tag int, data []byte) {
	c.sendOwned(dst, c.wireTag(tag), data)
}

func (c *Comm) sendOwned(dst, tag int, data []byte) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d (world size %d)", dst, c.world.size))
	}
	if fn := c.world.sendDelay; fn != nil {
		fn(c.rank, dst, len(data))
	}
	c.world.msgCount.Add(1)
	c.world.byteCount.Add(int64(len(data)))
	c.world.mailboxes[dst].put(message{src: c.rank, tag: tag, data: data})
}

// Recv blocks until a message from src (or AnySource) with tag (or
// AnyTag, which matches any user tag on this communicator) arrives and
// returns its payload and status.
func (c *Comm) Recv(src, tag int) ([]byte, Status) {
	if src != AnySource && (src < 0 || src >= c.world.size) {
		panic(fmt.Sprintf("mpi: recv from invalid rank %d (world size %d)", src, c.world.size))
	}
	msg := c.world.mailboxes[c.rank].take(src, c.matcher(tag))
	return msg.data, Status{Source: msg.src, Tag: msg.tag - c.ns*tagSpace}
}

// recvWire receives a message with an exact wire tag (used by the
// collectives, whose tags are already namespaced).
func (c *Comm) recvWire(src, wire int) []byte {
	msg := c.world.mailboxes[c.rank].take(src, func(t int) bool { return t == wire })
	return msg.data
}

// Request is a handle to a non-blocking operation, the analogue of
// MPI_Request.
type Request struct {
	done   chan struct{}
	data   []byte
	status Status
}

// Wait blocks until the operation completes and returns the received
// payload (nil for sends) and status.
func (r *Request) Wait() ([]byte, Status) {
	<-r.done
	return r.data, r.status
}

// Isend posts a non-blocking send. Because sends are eager and buffered,
// the returned request is already complete; it exists so call sites can
// mirror the paper's Isend/Irecv structure.
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	c.send(dst, c.wireTag(tag), data)
	r := &Request{done: make(chan struct{})}
	close(r.done)
	return r
}

// Irecv posts a non-blocking receive that matches like Recv. The match
// is performed by a background goroutine; Wait returns its result.
func (c *Comm) Irecv(src, tag int) *Request {
	r := &Request{done: make(chan struct{})}
	go func() {
		r.data, r.status = c.Recv(src, tag)
		close(r.done)
	}()
	return r
}

// WaitAll waits for every request and returns their payloads in order.
func WaitAll(reqs []*Request) [][]byte {
	out := make([][]byte, len(reqs))
	for i, r := range reqs {
		out[i], _ = r.Wait()
	}
	return out
}

// SendRecv performs a combined send to dst and receive from src with the
// same tag, without deadlock regardless of ordering.
func (c *Comm) SendRecv(dst, src, tag int, data []byte) ([]byte, Status) {
	c.send(dst, c.wireTag(tag), data)
	return c.Recv(src, tag)
}

// Probe reports whether a message matching (src, tag) is currently
// queued, without receiving it.
func (c *Comm) Probe(src, tag int) bool {
	match := c.matcher(tag)
	m := c.world.mailboxes[c.rank]
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, msg := range m.queue {
		if (src == AnySource || msg.src == src) && match(msg.tag) {
			return true
		}
	}
	return false
}

// P2PMethods returns the names of every point-to-point method of *Comm.
// Like CollectiveMethods it is a machine-readable contract for static
// analysis: once a function has issued any of these (or a collective),
// it has entered the communication phase, and a local-error early
// return can strand peers (the collabort analyzer's rule).
func P2PMethods() []string {
	return []string{"Send", "Isend", "Recv", "Irecv", "SendRecv", "Probe"}
}
