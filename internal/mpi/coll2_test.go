package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestScatter(t *testing.T) {
	const n, root = 6, 2
	err := Run(n, func(c *Comm) error {
		var parts [][]byte
		if c.Rank() == root {
			for i := 0; i < n; i++ {
				parts = append(parts, []byte(fmt.Sprintf("part-%d", i)))
			}
		}
		got := c.Scatter(root, parts)
		want := fmt.Sprintf("part-%d", c.Rank())
		if string(got) != want {
			return fmt.Errorf("rank %d got %q", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterSelfCopyIndependent(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		var parts [][]byte
		if c.Rank() == 0 {
			parts = [][]byte{{1}, {2}}
		}
		got := c.Scatter(0, parts)
		if c.Rank() == 0 {
			parts[0][0] = 9
			if got[0] == 9 {
				return errors.New("scatter self payload aliases input")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExscanSum(t *testing.T) {
	const n = 9
	err := Run(n, func(c *Comm) error {
		// Each rank contributes rank+1; exclusive prefix sums are the
		// triangular numbers.
		got := c.Exscan(int64(c.Rank()+1), OpSum)
		want := int64(c.Rank() * (c.Rank() + 1) / 2)
		if got != want {
			return fmt.Errorf("rank %d exscan = %d, want %d", c.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExscanEstablishesDisjointExtents(t *testing.T) {
	// The shared-file use case: offsets from Exscan tile [0, total).
	const n = 7
	counts := []int64{5, 0, 12, 3, 3, 9, 1}
	offsets := make([]int64, n)
	err := Run(n, func(c *Comm) error {
		offsets[c.Rank()] = c.Exscan(counts[c.Rank()], OpSum)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var expect int64
	for r := 0; r < n; r++ {
		if offsets[r] != expect {
			t.Fatalf("rank %d offset %d, want %d", r, offsets[r], expect)
		}
		expect += counts[r]
	}
}

func TestRunTimeoutCompletes(t *testing.T) {
	w := NewWorld(4)
	err := w.RunTimeout(5*time.Second, func(c *Comm) error {
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTimeoutDetectsDeadlock(t *testing.T) {
	w := NewWorld(2)
	err := w.RunTimeout(100*time.Millisecond, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Recv(1, 0) // rank 1 never sends: deadlock
		}
		return nil
	})
	var te *ErrTimeout
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestTrafficCounters(t *testing.T) {
	w := NewWorld(4)
	if tr := w.Traffic(); tr.Messages != 0 || tr.Bytes != 0 {
		t.Fatalf("fresh world traffic %+v", tr)
	}
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]byte, 100))
		}
		if c.Rank() == 1 {
			c.Recv(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Traffic()
	if tr.Messages != 1 || tr.Bytes != 100 {
		t.Errorf("traffic after one send: %+v", tr)
	}
	// Collectives move wire messages too.
	err = w.Run(func(c *Comm) error { c.Allreduce(1, OpSum); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if tr2 := w.Traffic(); tr2.Messages <= tr.Messages {
		t.Errorf("collective moved no messages: %+v", tr2)
	}
}
