package mpi

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Additional collectives and diagnostics beyond the core set.

// Scatter distributes root's per-rank payloads: rank i receives
// parts[i]. Non-root ranks pass nil.
func (c *Comm) Scatter(root int, parts [][]byte) []byte {
	tag := c.nextCollTag(collScatter)
	if c.rank == root {
		if len(parts) != c.world.size {
			panic(fmt.Sprintf("mpi: Scatter needs %d parts, got %d", c.world.size, len(parts)))
		}
		for dst, p := range parts {
			if dst == root {
				continue
			}
			c.send(dst, tag, p)
		}
		cp := make([]byte, len(parts[root]))
		copy(cp, parts[root])
		return cp
	}
	return c.recvWire(root, tag)
}

// Exscan computes the exclusive prefix reduction of value over ranks:
// rank r receives op(value_0, …, value_{r-1}); rank 0 receives 0 (for
// OpSum — callers using Min/Max must special-case rank 0 themselves).
// It is the offset-establishing collective shared-file writers use.
func (c *Comm) Exscan(value int64, op ReduceOp) int64 {
	c.stampColl(collExscan)
	// Gather-then-scan through rank 0: simple and O(n), adequate for the
	// scales the local engine runs.
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(value))
	parts := c.Gather(0, buf[:])
	if c.rank == 0 {
		out := make([][]byte, c.world.size)
		acc := int64(0)
		for r := 0; r < c.world.size; r++ {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(acc))
			out[r] = b[:]
			v := int64(binary.LittleEndian.Uint64(parts[r]))
			if r == 0 {
				acc = v
			} else {
				acc = op.combineI64(acc, v)
			}
		}
		res := c.Scatter(0, out)
		return int64(binary.LittleEndian.Uint64(res))
	}
	res := c.Scatter(0, nil)
	return int64(binary.LittleEndian.Uint64(res))
}

// ErrTimeout reports that RunTimeout's deadline passed before every
// rank returned — almost always a communication deadlock (mismatched
// sends/receives or a rank that skipped a collective).
type ErrTimeout struct {
	Timeout time.Duration
}

func (e *ErrTimeout) Error() string {
	return fmt.Sprintf("mpi: world did not complete within %v (deadlocked ranks?)", e.Timeout)
}

// RunTimeout is Run with a watchdog: if the ranks do not all finish
// within timeout it returns *ErrTimeout. The stuck rank goroutines are
// abandoned (they hold no OS resources beyond their stacks), so this is
// a diagnostic for tests and tools, not a recovery mechanism.
func (w *World) RunTimeout(timeout time.Duration, fn func(c *Comm) error) error {
	done := make(chan error, 1)
	go func() { done <- w.Run(fn) }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		return &ErrTimeout{Timeout: timeout}
	}
}
