package mpi

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestMailboxManyWaiters parks many receivers with distinct tags on one
// mailbox and delivers their messages one at a time. Every waiter must
// get exactly the message matching its tag — the scenario the per-waiter
// handoff replaced the shared Broadcast for (every put used to wake all
// waiters and make each rescan the queue).
func TestMailboxManyWaiters(t *testing.T) {
	const n = 32
	m := newMailbox(&abortState{})
	var wg sync.WaitGroup
	got := make([]message, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(tag int) {
			defer wg.Done()
			got[tag] = m.take(AnySource, func(wire int) bool { return wire == tag })
		}(i)
	}
	// Let the waiters park, then deliver in reverse tag order so queue
	// order and waiter order disagree.
	time.Sleep(10 * time.Millisecond)
	for tag := n - 1; tag >= 0; tag-- {
		m.put(message{src: 0, tag: tag, data: []byte{byte(tag)}})
	}
	wg.Wait()
	for tag := 0; tag < n; tag++ {
		if got[tag].tag != tag || len(got[tag].data) != 1 || got[tag].data[0] != byte(tag) {
			t.Errorf("waiter %d got tag %d data %v", tag, got[tag].tag, got[tag].data)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.waiters) != 0 {
		t.Errorf("%d waiters still registered", len(m.waiters))
	}
	if len(m.queue) != 0 {
		t.Errorf("%d messages still queued", len(m.queue))
	}
}

// TestMailboxDirectHandoffSkipsQueue checks that a message matching a
// parked waiter is handed over directly and never lands in the queue, so
// a later non-matching take cannot steal it.
func TestMailboxDirectHandoffSkipsQueue(t *testing.T) {
	m := newMailbox(&abortState{})
	done := make(chan message, 1)
	go func() {
		done <- m.take(3, func(wire int) bool { return wire == 7 })
	}()
	time.Sleep(10 * time.Millisecond)
	m.put(message{src: 3, tag: 7})
	msg := <-done
	if msg.src != 3 || msg.tag != 7 {
		t.Fatalf("got src %d tag %d", msg.src, msg.tag)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) != 0 {
		t.Errorf("message also queued: %v", m.queue)
	}
}

// TestMailboxWaitersServedInPostingOrder pins the concurrent-Irecv
// contract: when several takes with the same match criteria are parked,
// messages go to them in the order the takes were posted.
func TestMailboxWaitersServedInPostingOrder(t *testing.T) {
	m := newMailbox(&abortState{})
	const n = 8
	order := make(chan int, n)
	ready := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			// Register the waiter under the lock ourselves so posting
			// order is deterministic, then wait like take does.
			m.mu.Lock()
			w := &waiter{src: AnySource, match: func(int) bool { return true }, cond: sync.NewCond(&m.mu)}
			m.waiters = append(m.waiters, w)
			ready <- struct{}{}
			for !w.ready {
				w.cond.Wait()
			}
			for j, x := range m.waiters {
				if x == w {
					m.waiters = append(m.waiters[:j], m.waiters[j+1:]...)
					break
				}
			}
			m.mu.Unlock()
			order <- i
			// Each waiter's message must carry its own index.
			if w.msg.tag != i {
				t.Errorf("waiter %d got message %d", i, w.msg.tag)
			}
		}(i)
		<-ready
	}
	for i := 0; i < n; i++ {
		m.put(message{src: 0, tag: i})
		if got := <-order; got != i {
			t.Fatalf("delivery %d went to waiter %d", i, got)
		}
	}
}

// TestConcurrentAnySourceRecv exercises the waiter path end-to-end:
// many ranks send to rank 0 while it receives AnySource; every payload
// must arrive exactly once.
func TestConcurrentAnySourceRecv(t *testing.T) {
	const ranks = 9
	err := Run(ranks, func(c *Comm) error {
		if c.Rank() != 0 {
			c.Send(0, 1, []byte{byte(c.Rank())})
			return nil
		}
		seen := make(map[int]bool)
		for i := 0; i < ranks-1; i++ {
			data, st := c.Recv(AnySource, 1)
			if seen[st.Source] {
				return fmt.Errorf("duplicate from %d", st.Source)
			}
			seen[st.Source] = true
			if len(data) != 1 || int(data[0]) != st.Source {
				return fmt.Errorf("payload %v from %d", data, st.Source)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSendDelayPreservesPairFIFO installs a delay hook that slows only
// the first message of one pair and checks the receiver still sees that
// pair's messages in send order.
func TestSendDelayPreservesPairFIFO(t *testing.T) {
	w := NewWorld(2)
	var delayed bool
	var mu sync.Mutex
	w.SetSendDelay(func(src, dst, bytes int) {
		mu.Lock()
		first := !delayed
		delayed = true
		mu.Unlock()
		if first {
			time.Sleep(5 * time.Millisecond)
		}
	})
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("first"))
			c.Send(1, 1, []byte("second"))
			return nil
		}
		a, _ := c.Recv(0, 1)
		b, _ := c.Recv(0, 1)
		if string(a) != "first" || string(b) != "second" {
			return fmt.Errorf("got %q then %q", a, b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
