package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 5, []byte("hello"))
		} else {
			data, st := c.Recv(0, 5)
			if string(data) != "hello" {
				return fmt.Errorf("got %q", data)
			}
			if st.Source != 0 || st.Tag != 5 {
				return fmt.Errorf("status %+v", st)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesData(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte("aaaa")
			c.Send(1, 0, buf)
			copy(buf, "zzzz") // mutate after send; receiver must see "aaaa"
			c.Barrier()
		} else {
			c.Barrier()
			data, _ := c.Recv(0, 0)
			if string(data) != "aaaa" {
				return fmt.Errorf("send did not copy: got %q", data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("seven"))
			c.Send(1, 3, []byte("three"))
		} else {
			// Receive out of send order by tag.
			d3, _ := c.Recv(0, 3)
			d7, _ := c.Recv(0, 7)
			if string(d3) != "three" || string(d7) != "seven" {
				return fmt.Errorf("tag matching failed: %q %q", d3, d7)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerSourceAndTag(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		const k = 100
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				c.Send(1, 0, []byte{byte(i)})
			}
		} else {
			for i := 0; i < k; i++ {
				d, _ := c.Recv(0, 0)
				if d[0] != byte(i) {
					return fmt.Errorf("message %d arrived as %d", i, d[0])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		if c.Rank() != 0 {
			c.Send(0, c.Rank(), []byte{byte(c.Rank())})
			return nil
		}
		seen := make(map[int]bool)
		for i := 0; i < 3; i++ {
			d, st := c.Recv(AnySource, AnyTag)
			if int(d[0]) != st.Source || st.Tag != st.Source {
				return fmt.Errorf("mismatched status %+v payload %v", st, d)
			}
			seen[st.Source] = true
		}
		if len(seen) != 3 {
			return fmt.Errorf("saw %d sources", len(seen))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWaitAll(t *testing.T) {
	err := Run(8, func(c *Comm) error {
		n := c.Size()
		// Everyone sends its rank to everyone (including itself via loop
		// skip), non-blocking, then receives all — the paper's particle
		// exchange pattern.
		for dst := 0; dst < n; dst++ {
			if dst != c.Rank() {
				c.Isend(dst, 1, []byte{byte(c.Rank())})
			}
		}
		var reqs []*Request
		for src := 0; src < n; src++ {
			if src != c.Rank() {
				reqs = append(reqs, c.Irecv(src, 1))
			}
		}
		for i, data := range WaitAll(reqs) {
			want := i
			if i >= c.Rank() {
				want = i + 1
			}
			if int(data[0]) != want {
				return fmt.Errorf("recv %d: got %d want %d", i, data[0], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdersPhases(t *testing.T) {
	var phase1 atomic.Int64
	err := Run(16, func(c *Comm) error {
		phase1.Add(1)
		c.Barrier()
		if got := phase1.Load(); got != 16 {
			return fmt.Errorf("rank %d passed barrier with only %d arrivals", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierReusable(t *testing.T) {
	var counter atomic.Int64
	err := Run(8, func(c *Comm) error {
		for round := int64(1); round <= 5; round++ {
			counter.Add(1)
			c.Barrier()
			if got := counter.Load(); got != 8*round {
				return fmt.Errorf("round %d: counter %d", round, got)
			}
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastVariousRootsAndSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16, 33} {
		for _, root := range []int{0, n - 1, n / 2} {
			payload := []byte(fmt.Sprintf("payload-from-%d", root))
			err := Run(n, func(c *Comm) error {
				var in []byte
				if c.Rank() == root {
					in = payload
				}
				out := c.Bcast(root, in)
				if !bytes.Equal(out, payload) {
					return fmt.Errorf("rank %d got %q", c.Rank(), out)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
		}
	}
}

func TestGather(t *testing.T) {
	const n, root = 9, 4
	err := Run(n, func(c *Comm) error {
		data := []byte(fmt.Sprintf("r%d", c.Rank()))
		parts := c.Gather(root, data)
		if c.Rank() != root {
			if parts != nil {
				return fmt.Errorf("non-root got %v", parts)
			}
			return nil
		}
		for i, p := range parts {
			if string(p) != fmt.Sprintf("r%d", i) {
				return fmt.Errorf("slot %d = %q", i, p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16} {
		err := Run(n, func(c *Comm) error {
			// Variable-size contributions, including empty.
			data := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank())
			parts := c.Allgather(data)
			if len(parts) != n {
				return fmt.Errorf("got %d parts", len(parts))
			}
			for i, p := range parts {
				if len(p) != i {
					return fmt.Errorf("part %d has len %d", i, len(p))
				}
				for _, b := range p {
					if b != byte(i) {
						return fmt.Errorf("part %d corrupt", i)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestAlltoall(t *testing.T) {
	const n = 6
	err := Run(n, func(c *Comm) error {
		bufs := make([][]byte, n)
		for dst := range bufs {
			bufs[dst] = []byte{byte(c.Rank()), byte(dst)}
		}
		out := c.Alltoall(bufs)
		for src, p := range out {
			if len(p) != 2 || int(p[0]) != src || int(p[1]) != c.Rank() {
				return fmt.Errorf("from %d: got %v", src, p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallSelfCopyIndependent(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		bufs := [][]byte{{1}, {2}}
		out := c.Alltoall(bufs)
		bufs[c.Rank()][0] = 99
		if out[c.Rank()][0] == 99 {
			return errors.New("self payload aliases input")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	const n = 13
	err := Run(n, func(c *Comm) error {
		v := int64(c.Rank() + 1)
		sum := c.Reduce(0, v, OpSum)
		if c.Rank() == 0 && sum != n*(n+1)/2 {
			return fmt.Errorf("sum = %d", sum)
		}
		all := c.Allreduce(v, OpMax)
		if all != n {
			return fmt.Errorf("allreduce max = %d", all)
		}
		mn := c.Allreduce(v, OpMin)
		if mn != 1 {
			return fmt.Errorf("allreduce min = %d", mn)
		}
		f := c.AllreduceF64(float64(c.Rank()), OpSum)
		if f != float64(n*(n-1)/2) {
			return fmt.Errorf("allreduce f64 sum = %v", f)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvExchange(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		right := (c.Rank() + 1) % c.Size()
		left := (c.Rank() + c.Size() - 1) % c.Size()
		got, st := c.SendRecv(right, left, 2, []byte{byte(c.Rank())})
		if int(got[0]) != left || st.Source != left {
			return fmt.Errorf("ring exchange got %v from %d", got, st.Source)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbe(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if c.Probe(1, 0) {
				return errors.New("probe true before send")
			}
			c.Barrier()
			c.Barrier()
			if !c.Probe(1, 9) {
				return errors.New("probe false after send+barrier")
			}
			data, _ := c.Recv(1, 9)
			if string(data) != "x" {
				return fmt.Errorf("got %q", data)
			}
		} else {
			c.Barrier()
			c.Send(0, 9, []byte("x"))
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		return nil
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 2 || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("kaboom")
		}
		return nil
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 {
		t.Fatalf("err = %v", err)
	}
}

func TestInvalidRanksPanic(t *testing.T) {
	w := NewWorld(2)
	c := w.Comm(0)
	for name, fn := range map[string]func(){
		"send":      func() { c.Send(2, 0, nil) },
		"recv":      func() { c.Recv(5, 0) },
		"comm":      func() { w.Comm(2) },
		"worldsize": func() { NewWorld(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestQuickPackUnpackSlices(t *testing.T) {
	f := func(parts [][]byte) bool {
		out, err := unpackSlices(packSlices(parts))
		if err != nil {
			return false
		}
		if len(out) != len(parts) {
			return false
		}
		for i := range parts {
			if !bytes.Equal(out[i], parts[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnpackSlicesCorrupt(t *testing.T) {
	if _, err := unpackSlices(nil); err == nil {
		t.Error("nil payload should fail")
	}
	good := packSlices([][]byte{{1, 2, 3}})
	if _, err := unpackSlices(good[:len(good)-1]); err == nil {
		t.Error("truncated payload should fail")
	}
	if _, err := unpackSlices(append(good, 0)); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestLargeWorldSmoke(t *testing.T) {
	// 1024 goroutine ranks doing a collective round trip: the scale the
	// local engine needs for integration tests.
	const n = 1024
	err := Run(n, func(c *Comm) error {
		sum := c.Allreduce(1, OpSum)
		if sum != n {
			return fmt.Errorf("sum = %d", sum)
		}
		parts := c.Allgather([]byte{byte(c.Rank() % 251)})
		if len(parts) != n || parts[17][0] != 17 {
			return errors.New("allgather wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
