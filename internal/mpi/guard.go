package mpi

import (
	"fmt"
	"sync"
)

// Runtime collective-mismatch guard. The SPMD contract says every rank
// of a communicator calls the same collectives in the same order; a
// program that breaks it (say rank 0 enters Barrier while rank 3 enters
// Bcast) would otherwise deadlock silently, because mismatched
// collectives simply wait for messages that never come. Instead, every
// collective stamps its operation kind into the world's collective
// ledger (and into its wire tags, see nextCollTag): the first rank to
// arrive at sequence number s records what collective s is; any rank
// arriving at s with a different kind proves the mismatch, panics with
// both kinds by name, and aborts the world so the ranks blocked inside
// the orphaned collective fail fast instead of hanging.
//
// The guard catches kind mismatches at the same sequence position. A
// rank that skips a collective entirely desynchronizes its sequence
// numbers, which the ledger usually exposes at the *next* collective
// (the kinds at that position then disagree); a skip followed by
// nothing — or by an identical collective sequence — still deadlocks,
// and remains the static analyzer's (collorder) job to reject.

// collKey addresses one collective operation: its communicator
// namespace and per-rank sequence number.
type collKey struct {
	ns  int
	seq uint64
}

// collEntry records what the first arrivals at a collective position
// claimed it to be.
type collEntry struct {
	kind collKind
	rank int // first rank to arrive
	n    int // ranks arrived so far
}

// abortState is the world-wide kill switch collective mismatches pull.
type abortState struct {
	mu  sync.Mutex
	msg string
}

func (a *abortState) set(msg string) {
	a.mu.Lock()
	if a.msg == "" {
		a.msg = msg
	}
	a.mu.Unlock()
}

func (a *abortState) message() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.msg
}

// checkAborted panics if the world has been aborted. It is called at
// every blocking point (mailbox receive, barrier) so that ranks parked
// inside an orphaned collective unwind promptly after a mismatch
// elsewhere.
func (a *abortState) check() {
	if msg := a.message(); msg != "" {
		panic("mpi: world aborted: " + msg)
	}
}

// stampCollective registers that rank entered collective kind at
// sequence seq on communicator namespace ns, and panics — aborting the
// whole world — if another rank already entered a different collective
// at that position.
func (w *World) stampCollective(ns int, seq uint64, kind collKind, rank int) {
	key := collKey{ns: ns, seq: seq}
	w.collMu.Lock()
	e, ok := w.collLedger[key]
	if !ok {
		w.collLedger[key] = &collEntry{kind: kind, rank: rank, n: 1}
		w.collMu.Unlock()
		return
	}
	if e.kind != kind {
		first := *e
		w.collMu.Unlock()
		msg := fmt.Sprintf("mpi: rank %d entered %s while rank %d entered %s (collective #%d, communicator namespace %d)",
			rank, kind, first.rank, first.kind, seq, ns)
		w.abort(msg)
		panic(msg)
	}
	e.n++
	if e.n == w.size {
		// Every rank agreed on this position; forget it so the ledger
		// stays bounded by the world's collective skew, not its history.
		delete(w.collLedger, key)
	}
	w.collMu.Unlock()
}

// abort records the fatal message and wakes every blocked rank so it
// can observe the abort and panic instead of waiting forever.
func (w *World) abort(msg string) {
	w.ab.set(msg)
	for _, m := range w.mailboxes {
		m.wakeAll()
	}
	w.barrierMu.Lock()
	bs := make([]*barrier, 0, len(w.barriers))
	for _, b := range w.barriers {
		bs = append(bs, b)
	}
	w.barrierMu.Unlock()
	for _, b := range bs {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

// stampColl advances this rank's collective sequence number and
// registers the collective's kind with the guard. Every collective
// method calls it exactly once on entry; the primitive collectives
// additionally fold the kind into their wire tags via nextCollTag.
func (c *Comm) stampColl(kind collKind) {
	c.collSeq++
	if c.collSeq >= tagSpace {
		panic("mpi: collective sequence space exhausted")
	}
	c.world.stampCollective(c.ns, c.collSeq, kind, c.rank)
}
