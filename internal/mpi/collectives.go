package mpi

// This file is the single source of truth for which *Comm methods are
// collective. The runtime mismatch guard (guard.go) and the static
// analyzer (internal/analysis, surfaced as cmd/spiolint) both read this
// table, so the linter's idea of "collective" can never drift from the
// runtime's.

// collKind identifies a collective operation kind. Primitive kinds are
// stamped into collective wire tags and into the world's collective
// ledger; composite kinds are implemented in terms of primitives and
// inherit their stamps.
type collKind uint8

// Collective operation kinds. The zero value is reserved so a missing
// stamp is distinguishable from Barrier.
const (
	collNone collKind = iota
	collBarrier
	collBcast
	collGather
	collAllgather
	collAlltoall
	collScatter
	collReduce
	collAllreduce
	collAllreduceF64
	collExscan
	collDup
	collKindLimit // one past the last kind; must stay <= collKindSpace
)

// collKindSpace is the number of kind slots encodable in a collective
// wire tag (see nextCollTag).
const collKindSpace = 16

// collectiveSpec describes one collective method of *Comm.
type collectiveSpec struct {
	name string
	kind collKind
	// primitive collectives move bytes themselves and stamp their kind
	// into wire tags and the ledger; composite ones delegate to
	// primitives.
	primitive bool
}

// collectives lists every collective method of *Comm, in declaration
// order. Every rank of a communicator must call these methods in the
// same order (the SPMD contract); guard.go enforces the kind part of
// that contract at runtime, and the collorder analyzer enforces the
// control-flow part statically.
var collectives = []collectiveSpec{
	{"Barrier", collBarrier, true},
	{"Bcast", collBcast, true},
	{"Gather", collGather, true},
	{"Allgather", collAllgather, false},
	{"Alltoall", collAlltoall, true},
	{"Scatter", collScatter, true},
	{"Reduce", collReduce, false},
	{"Allreduce", collAllreduce, false},
	{"AllreduceF64", collAllreduceF64, false},
	{"Exscan", collExscan, false},
	{"Dup", collDup, false},
}

func (k collKind) String() string {
	for _, spec := range collectives {
		if spec.kind == k {
			return spec.name
		}
	}
	return "unknown-collective"
}

// CollectiveMethods returns the names of every collective method of
// *Comm, in declaration order. It is the machine-readable contract
// consumed by the collorder static analyzer: a call to any of these must
// be issued by every rank of the communicator in the same order.
func CollectiveMethods() []string {
	out := make([]string, len(collectives))
	for i, spec := range collectives {
		out[i] = spec.name
	}
	return out
}

// UserTagSpace is the exclusive upper bound of the user point-to-point
// tag space: user tags must lie in [0, UserTagSpace). Everything outside
// — all negative wire tags — is the reserved collective tag namespace
// (see coll.go), which user code must never send on. The tagclash
// analyzer enforces this statically; wireTag enforces it at runtime.
const UserTagSpace = tagSpace
