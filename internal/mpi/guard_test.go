package mpi

import (
	"strings"
	"testing"
	"time"
)

// A kind mismatch at the same collective position must panic with both
// kinds by name instead of deadlocking, and the panic must surface
// through Run as a rank error.
func TestCollectiveMismatchPanics(t *testing.T) {
	w := NewWorld(2)
	err := w.RunTimeout(10*time.Second, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Barrier()
		} else {
			c.Bcast(1, []byte("x"))
		}
		return nil
	})
	if err == nil {
		t.Fatal("mismatched collectives completed without error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "entered Barrier") && !strings.Contains(msg, "entered Bcast") {
		t.Fatalf("error does not name the mismatched collectives: %v", msg)
	}
	if strings.Contains(msg, "did not complete within") {
		t.Fatalf("mismatch hit the watchdog instead of the guard: %v", msg)
	}
}

// The rank parked inside the orphaned collective must be woken and
// unwound by the world abort, not left hanging until a watchdog fires.
func TestCollectiveMismatchReleasesBlockedRanks(t *testing.T) {
	cases := []struct {
		name  string
		wrong func(c *Comm)
	}{
		// Rank 1 parks in a barrier, rank 0 proves the mismatch.
		{"blocked-in-barrier", func(c *Comm) { c.Barrier() }},
		// Rank 1 parks in a receive inside Gather (root waiting for
		// contributions that never come).
		{"blocked-in-gather", func(c *Comm) { c.Gather(1, []byte("x")) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := NewWorld(3)
			err := w.RunTimeout(10*time.Second, func(c *Comm) error {
				if c.Rank() == 1 {
					tc.wrong(c)
				} else {
					c.Alltoall(make([][]byte, 3))
				}
				return nil
			})
			if err == nil {
				t.Fatal("mismatched collectives completed without error")
			}
			if strings.Contains(err.Error(), "did not complete within") {
				t.Fatalf("blocked rank was not released: %v", err)
			}
		})
	}
}

// Composite collectives stamp their own kind, so a composite mismatched
// against its own first primitive is still caught at entry.
func TestCompositeCollectiveMismatch(t *testing.T) {
	w := NewWorld(2)
	err := w.RunTimeout(10*time.Second, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Allgather([]byte("a"))
		} else {
			c.Gather(0, []byte("a")) // Allgather's first primitive
		}
		return nil
	})
	if err == nil {
		t.Fatal("Allgather-vs-Gather mismatch completed without error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "Allgather") || !strings.Contains(msg, "Gather") {
		t.Fatalf("error does not name both collectives: %v", msg)
	}
}

// The same Allgather-vs-Gather kind mismatch at three ranks: the ranks
// already parked inside the Allgather when the mismatch is proven must
// be unwound by the guard's abort, not left for the watchdog.
func TestCompositeCollectiveMismatchAbortsBlockedRanks(t *testing.T) {
	w := NewWorld(3)
	err := w.RunTimeout(10*time.Second, func(c *Comm) error {
		if c.Rank() == 1 {
			c.Gather(0, []byte("a"))
		} else {
			c.Allgather([]byte("a"))
		}
		return nil
	})
	if err == nil {
		t.Fatal("Allgather-vs-Gather mismatch completed without error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "Allgather") || !strings.Contains(msg, "Gather") {
		t.Fatalf("error does not name both collectives: %v", msg)
	}
	if strings.Contains(msg, "did not complete within") {
		t.Fatalf("blocked ranks hit the watchdog instead of the guard abort: %v", msg)
	}
}

// Matched collectives must leave no ledger entries behind: every
// position is forgotten once all ranks have stamped it.
func TestCollectiveLedgerBounded(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		for i := 0; i < 10; i++ {
			c.Barrier()
			c.Allreduce(int64(c.Rank()), OpSum)
			c.Allgather([]byte{byte(c.Rank())})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	w.collMu.Lock()
	n := len(w.collLedger)
	w.collMu.Unlock()
	if n != 0 {
		t.Fatalf("ledger holds %d entries after matched collectives, want 0", n)
	}
}

// The machine-readable collective list must cover exactly the methods
// the guard knows, with unique kinds in the tag-encodable range.
func TestCollectiveMethodsTable(t *testing.T) {
	names := CollectiveMethods()
	if len(names) != len(collectives) {
		t.Fatalf("CollectiveMethods returned %d names, table has %d", len(names), len(collectives))
	}
	seenKind := map[collKind]string{}
	for _, spec := range collectives {
		if spec.kind == collNone || spec.kind >= collKindLimit {
			t.Errorf("%s: kind %d out of range", spec.name, spec.kind)
		}
		if prev, dup := seenKind[spec.kind]; dup {
			t.Errorf("%s and %s share kind %d", prev, spec.name, spec.kind)
		}
		seenKind[spec.kind] = spec.name
		if spec.kind.String() != spec.name {
			t.Errorf("kind %d stringifies to %q, want %q", spec.kind, spec.kind.String(), spec.name)
		}
	}
	if collKindLimit > collKindSpace {
		t.Fatalf("collKindLimit %d exceeds tag kind space %d", collKindLimit, collKindSpace)
	}
}
