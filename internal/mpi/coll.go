package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Collectives are built from point-to-point messages. Every rank must
// call the same collectives in the same order (the usual SPMD contract);
// matching is done with a per-rank collective sequence number carried in
// negative tags, which never collide with user tags (>= 0). A rank must
// not have a Recv(AnyTag) outstanding across a collective.

// nextCollTag returns the internal wire tag for this rank's next
// collective operation. All ranks call collectives in the same order, so
// their sequence numbers — and therefore tags — agree. Collective tags
// are negative (disjoint from every user namespace) and carry the
// communicator namespace, the sequence number, and the operation kind:
// stamping the kind into the tag means a mismatched collective's traffic
// can never be mistaken for the right operation's, and registering it
// with the guard (stampColl) turns the mismatch into an immediate named
// panic instead of a deadlock.
func (c *Comm) nextCollTag(kind collKind) int {
	c.stampColl(kind)
	// < 0 always; AnyTag (-1) unused because seq starts at 1.
	return -((c.ns*tagSpace+int(c.collSeq))*collKindSpace + int(kind)) - 1
}

// Barrier blocks until every rank has entered it (on this
// communicator's namespace — duplicated communicators have independent
// barriers).
func (c *Comm) Barrier() {
	c.stampColl(collBarrier) // keep sequence numbers aligned across collective kinds
	c.world.barrierFor(c.ns).await()
}

// Bcast distributes root's data to every rank over a binomial tree and
// returns it. Non-root ranks pass nil (their argument is ignored). On the
// root the returned slice aliases the input.
func (c *Comm) Bcast(root int, data []byte) []byte {
	tag := c.nextCollTag(collBcast)
	n := c.world.size
	vrank := (c.rank - root + n) % n
	// Receive phase: a non-root rank receives from the parent at its
	// lowest set bit; the root falls through with mask = 2^ceil(log2 n).
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			src := (vrank - mask + root) % n
			data = c.recvWire(src, tag)
			break
		}
		mask <<= 1
	}
	// Forward phase: relay to children at decreasing bit positions.
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vrank+mask < n {
			dst := (vrank + mask + root) % n
			c.send(dst, tag, data)
		}
	}
	return data
}

// Gather collects each rank's data at root. On root, the returned slice
// has one entry per rank (in rank order); on other ranks it is nil.
func (c *Comm) Gather(root int, data []byte) [][]byte {
	tag := c.nextCollTag(collGather)
	if c.rank != root {
		c.send(root, tag, data)
		return nil
	}
	out := make([][]byte, c.world.size)
	cp := make([]byte, len(data))
	copy(cp, data)
	out[root] = cp
	for i := 0; i < c.world.size; i++ {
		if i == root {
			continue
		}
		out[i] = c.recvWire(i, tag)
	}
	return out
}

// Allgather collects every rank's data on every rank, implemented as a
// Gather to rank 0 followed by a Bcast — the same two-step structure the
// paper uses for the metadata file (Section 3.5).
func (c *Comm) Allgather(data []byte) [][]byte {
	c.stampColl(collAllgather)
	parts := c.Gather(0, data)
	var packed []byte
	if c.rank == 0 {
		packed = packSlices(parts)
	}
	packed = c.Bcast(0, packed)
	out, err := unpackSlices(packed)
	if err != nil {
		panic(fmt.Sprintf("mpi: corrupt allgather payload: %v", err))
	}
	return out
}

// Alltoall sends bufs[i] to rank i and returns the n payloads received,
// indexed by source rank. bufs must have world-size entries. Payloads may
// be empty and of different lengths (the MPI_Alltoallv case).
func (c *Comm) Alltoall(bufs [][]byte) [][]byte {
	if len(bufs) != c.world.size {
		panic(fmt.Sprintf("mpi: Alltoall needs %d buffers, got %d", c.world.size, len(bufs)))
	}
	tag := c.nextCollTag(collAlltoall)
	for dst, b := range bufs {
		if dst == c.rank {
			continue
		}
		c.send(dst, tag, b)
	}
	out := make([][]byte, c.world.size)
	cp := make([]byte, len(bufs[c.rank]))
	copy(cp, bufs[c.rank])
	out[c.rank] = cp
	for i := 0; i < c.world.size; i++ {
		if i == c.rank {
			continue
		}
		out[i] = c.recvWire(i, tag)
	}
	return out
}

// ReduceOp is a reduction operator for Reduce/Allreduce.
type ReduceOp int

// Reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func (op ReduceOp) combineI64(a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	}
	panic(fmt.Sprintf("mpi: unknown reduce op %d", op))
}

func (op ReduceOp) combineF64(a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	}
	panic(fmt.Sprintf("mpi: unknown reduce op %d", op))
}

// Reduce combines every rank's value at root. Non-root ranks get 0.
func (c *Comm) Reduce(root int, value int64, op ReduceOp) int64 {
	c.stampColl(collReduce)
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(value))
	parts := c.Gather(root, buf)
	if c.rank != root {
		return 0
	}
	acc := value
	for i, p := range parts {
		if i == root {
			continue
		}
		acc = op.combineI64(acc, int64(binary.LittleEndian.Uint64(p)))
	}
	return acc
}

// Allreduce combines every rank's value and returns the result on all
// ranks.
func (c *Comm) Allreduce(value int64, op ReduceOp) int64 {
	c.stampColl(collAllreduce)
	res := c.Reduce(0, value, op)
	buf := make([]byte, 8)
	if c.rank == 0 {
		binary.LittleEndian.PutUint64(buf, uint64(res))
	}
	buf = c.Bcast(0, buf)
	return int64(binary.LittleEndian.Uint64(buf))
}

// AllreduceF64 is Allreduce for float64 values.
func (c *Comm) AllreduceF64(value float64, op ReduceOp) float64 {
	c.stampColl(collAllreduceF64)
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(value))
	parts := c.Allgather(buf)
	acc := math.Float64frombits(binary.LittleEndian.Uint64(parts[0]))
	for _, p := range parts[1:] {
		acc = op.combineF64(acc, math.Float64frombits(binary.LittleEndian.Uint64(p)))
	}
	return acc
}

// packSlices encodes a list of byte slices with uvarint length prefixes.
func packSlices(parts [][]byte) []byte {
	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(parts)))
	out = append(out, tmp[:n]...)
	for _, p := range parts {
		n = binary.PutUvarint(tmp[:], uint64(len(p)))
		out = append(out, tmp[:n]...)
		out = append(out, p...)
	}
	return out
}

// unpackSlices inverts packSlices.
func unpackSlices(data []byte) ([][]byte, error) {
	count, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("bad slice count")
	}
	data = data[k:]
	out := make([][]byte, count)
	for i := range out {
		l, k := binary.Uvarint(data)
		if k <= 0 {
			return nil, fmt.Errorf("bad length prefix at slice %d", i)
		}
		data = data[k:]
		if uint64(len(data)) < l {
			return nil, fmt.Errorf("short payload at slice %d", i)
		}
		out[i] = data[:l:l]
		data = data[l:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%d trailing bytes", len(data))
	}
	return out, nil
}
