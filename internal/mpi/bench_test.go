package mpi

import (
	"fmt"
	"testing"
)

func BenchmarkSendRecvPingPong(b *testing.B) {
	payload := make([]byte, 4096)
	b.SetBytes(int64(len(payload)))
	err := Run(2, func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				c.Send(1, 0, payload)
				c.Recv(1, 0)
			} else {
				c.Recv(0, 0)
				c.Send(0, 0, payload)
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkIncast16to1(b *testing.B) {
	// The aggregation hot pattern: 15 senders, one receiver.
	payload := make([]byte, 64<<10)
	b.SetBytes(15 * int64(len(payload)))
	err := Run(16, func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				for src := 1; src < 16; src++ {
					c.Recv(src, 0)
				}
			} else {
				c.Isend(0, 0, payload)
			}
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func benchCollective(b *testing.B, n int, fn func(c *Comm)) {
	err := Run(n, func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			fn(c)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkBarrier64(b *testing.B) {
	benchCollective(b, 64, func(c *Comm) { c.Barrier() })
}

func BenchmarkBcast64(b *testing.B) {
	payload := make([]byte, 4096)
	benchCollective(b, 64, func(c *Comm) {
		var in []byte
		if c.Rank() == 0 {
			in = payload
		}
		c.Bcast(0, in)
	})
}

func BenchmarkAllgather64(b *testing.B) {
	benchCollective(b, 64, func(c *Comm) {
		c.Allgather([]byte(fmt.Sprintf("rank-%d", c.Rank())))
	})
}

func BenchmarkAllreduce64(b *testing.B) {
	benchCollective(b, 64, func(c *Comm) {
		c.Allreduce(int64(c.Rank()), OpSum)
	})
}
