package mpi

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestDupIsolatesUserTags(t *testing.T) {
	// The same (src, tag) on parent and duplicate must not cross-match,
	// regardless of send order.
	err := Run(2, func(c *Comm) error {
		d := c.Dup()
		if c.Rank() == 0 {
			// Send on the duplicate first, then the parent, same tag.
			d.Send(1, 7, []byte("dup"))
			c.Send(1, 7, []byte("parent"))
		} else {
			// Receive parent first: must get the parent message even
			// though the duplicate's arrived earlier.
			got, _ := c.Recv(0, 7)
			if string(got) != "parent" {
				return fmt.Errorf("parent recv got %q", got)
			}
			got, _ = d.Recv(0, 7)
			if string(got) != "dup" {
				return fmt.Errorf("dup recv got %q", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDupIsolatesCollectives(t *testing.T) {
	// Interleaved collectives on parent and duplicate complete with the
	// right payloads even when ranks issue them in different relative
	// orders across the two communicators.
	err := Run(4, func(c *Comm) error {
		d := c.Dup()
		var parentOut, dupOut []byte
		if c.Rank()%2 == 0 {
			parentOut = c.Bcast(0, []byte("P"))
			dupOut = d.Bcast(0, []byte("D"))
		} else {
			dupOut = d.Bcast(0, nil)
			parentOut = c.Bcast(0, nil)
		}
		if !bytes.Equal(parentOut, []byte("P")) || !bytes.Equal(dupOut, []byte("D")) {
			return fmt.Errorf("rank %d: parent %q dup %q", c.Rank(), parentOut, dupOut)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDupIsolatesAnyTag(t *testing.T) {
	// AnyTag on the duplicate must not steal parent messages.
	err := Run(2, func(c *Comm) error {
		d := c.Dup()
		if c.Rank() == 0 {
			c.Send(1, 3, []byte("for-parent"))
			d.Send(1, 9, []byte("for-dup"))
		} else {
			got, st := d.Recv(0, AnyTag)
			if string(got) != "for-dup" || st.Tag != 9 {
				return fmt.Errorf("dup wildcard got %q tag %d", got, st.Tag)
			}
			got, st = c.Recv(0, AnyTag)
			if string(got) != "for-parent" || st.Tag != 3 {
				return fmt.Errorf("parent wildcard got %q tag %d", got, st.Tag)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDupBarriersIndependentUnderConcurrency(t *testing.T) {
	// The asynchronous-checkpoint pattern: each rank runs a background
	// flow on the duplicate concurrently with a foreground flow on the
	// parent, both of which use barriers. With a shared barrier the
	// mixed arrivals would corrupt the generation count (early release
	// or a hang); with per-namespace barriers both flows complete and
	// observe full attendance.
	const rounds = 25
	var fg, bg atomic.Int64
	err := RunWorldTimeout(t, 4, func(c *Comm) error {
		d := c.Dup()
		done := make(chan error, 1)
		go func() {
			for i := 0; i < rounds; i++ {
				bg.Add(1)
				d.Barrier()
				// After the barrier all 4 ranks of this round arrived.
				if n := bg.Load(); n < int64(4*(i+1)) {
					done <- fmt.Errorf("dup barrier released with %d arrivals at round %d", n, i)
					return
				}
			}
			done <- nil
		}()
		for i := 0; i < rounds; i++ {
			fg.Add(1)
			c.Barrier()
			if n := fg.Load(); n < int64(4*(i+1)) {
				return fmt.Errorf("parent barrier released with %d arrivals at round %d", n, i)
			}
		}
		return <-done
	})
	if err != nil {
		t.Fatal(err)
	}
}

// RunWorldTimeout runs fn with a watchdog so a regression deadlock fails
// the test instead of hanging the suite.
func RunWorldTimeout(t *testing.T, n int, fn func(c *Comm) error) error {
	t.Helper()
	return NewWorld(n).RunTimeout(30*time.Second, fn)
}

func TestDupSequenceAgreesAcrossRanks(t *testing.T) {
	// Two Dups in the same order yield corresponding communicators.
	err := Run(3, func(c *Comm) error {
		a := c.Dup()
		b := c.Dup()
		ab := a.Dup()
		for i, comm := range []*Comm{a, b, ab} {
			sum := comm.Allreduce(int64(c.Rank()), OpSum)
			if sum != 3 {
				return fmt.Errorf("dup %d allreduce = %d", i, sum)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUserTagBoundsPanic(t *testing.T) {
	w := NewWorld(2)
	c := w.Comm(0)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized tag should panic")
		}
	}()
	c.Send(1, tagSpace, nil)
}
