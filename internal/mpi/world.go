// Package mpi is an in-process message-passing runtime standing in for
// MPI, which has no production-grade Go implementation. Ranks are
// goroutines; each rank owns an unbounded mailbox; point-to-point
// messages are matched by (source, tag) in arrival order; the collectives
// the paper relies on (Barrier, Bcast, Gather, Allgather, Alltoall,
// Reduce) are built from point-to-point messages exactly as a simple MPI
// layer would build them.
//
// The substitution preserves the properties the paper's algorithm
// depends on: every rank has a private address space (messages are
// copied on send), sends are asynchronous ("non-blocking MPI
// point-to-point communication", Section 3.3), receives block until a
// matching message arrives, and collective operations synchronize all
// ranks. What it does not model is wire time — performance of the
// large-scale runs is priced separately by internal/perfmodel.
package mpi

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// World is a set of ranks that can exchange messages, the analogue of
// MPI_COMM_WORLD.
type World struct {
	size      int
	mailboxes []*mailbox
	// barriers are per communicator namespace, so duplicated
	// communicators synchronize independently.
	barrierMu sync.Mutex
	barriers  map[int]*barrier
	// Traffic counters (all cross-rank messages, including those sent on
	// behalf of collectives).
	msgCount  atomic.Int64
	byteCount atomic.Int64
	// Collective-mismatch guard state (guard.go).
	collMu     sync.Mutex
	collLedger map[collKey]*collEntry
	ab         *abortState
	// sendDelay, when set, runs in the sender's goroutine before each
	// cross-rank message is enqueued (see SetSendDelay).
	sendDelay func(src, dst int, bytes int)
}

// SetSendDelay installs a hook called synchronously in the sender's
// goroutine before every cross-rank message is enqueued, with the source
// rank, destination rank and payload size. A hook that sleeps delays
// that one delivery without breaking per-pair FIFO order — the seam
// adversarial tests use to scramble cross-pair arrival order and prove
// that results do not depend on it. Install the hook before Run starts
// the rank goroutines; it must be safe for concurrent calls.
func (w *World) SetSendDelay(fn func(src, dst int, bytes int)) {
	//spio:allow racegate -- documented contract: the hook is installed before Run spawns the rank goroutines and is read-only afterwards
	w.sendDelay = fn
}

// barrierFor returns (creating on demand) the barrier of one
// communicator namespace.
func (w *World) barrierFor(ns int) *barrier {
	w.barrierMu.Lock()
	defer w.barrierMu.Unlock()
	b, ok := w.barriers[ns]
	if !ok {
		b = newBarrier(w.size, w.ab)
		w.barriers[ns] = b
	}
	return b
}

// TrafficStats is a snapshot of the world's cross-rank traffic.
type TrafficStats struct {
	Messages int64
	Bytes    int64
}

// Traffic returns the cumulative message and payload-byte counts of all
// point-to-point sends so far (self-deliveries inside higher-level
// protocols do not cross the wire and are not counted). It lets tests
// compare the communication volume a plan predicts against what the
// algorithm actually moved.
func (w *World) Traffic() TrafficStats {
	return TrafficStats{Messages: w.msgCount.Load(), Bytes: w.byteCount.Load()}
}

// NewWorld creates a world with n ranks. n must be positive.
func NewWorld(n int) *World {
	if n <= 0 {
		panic(fmt.Sprintf("mpi: world size must be positive, got %d", n))
	}
	w := &World{
		size:       n,
		mailboxes:  make([]*mailbox, n),
		barriers:   make(map[int]*barrier),
		collLedger: make(map[collKey]*collEntry),
		ab:         &abortState{},
	}
	for i := range w.mailboxes {
		w.mailboxes[i] = newMailbox(w.ab)
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Comm returns the communicator handle for one rank. Each rank goroutine
// must use only its own communicator.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, w.size))
	}
	return &Comm{world: w, rank: rank}
}

// RankError carries a panic or error raised by a rank's function during
// Run.
type RankError struct {
	Rank int
	Err  error
}

func (e *RankError) Error() string { return fmt.Sprintf("mpi: rank %d: %v", e.Rank, e.Err) }

func (e *RankError) Unwrap() error { return e.Err }

// Run executes fn once per rank, each in its own goroutine, and waits for
// all of them. It returns the first error (by rank order) returned by any
// fn; a panic in a rank is recovered and reported as that rank's error.
// A deadlocked rank deadlocks Run, exactly as a hung MPI job hangs.
func (w *World) Run(fn func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	wg.Add(w.size)
	for rank := 0; rank < w.size; rank++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					buf := make([]byte, 8192)
					n := runtime.Stack(buf, false)
					errs[rank] = fmt.Errorf("panic: %v\n%s", r, buf[:n])
				}
			}()
			errs[rank] = fn(w.Comm(rank))
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			return &RankError{Rank: rank, Err: err}
		}
	}
	return nil
}

// Run is a convenience that builds a world of n ranks and runs fn on it.
func Run(n int, fn func(c *Comm) error) error {
	return NewWorld(n).Run(fn)
}

// barrier is a reusable counting barrier with generations.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ab    *abortState
	n     int
	count int
	gen   uint64
}

func newBarrier(n int, ab *abortState) *barrier {
	b := &barrier{n: n, ab: ab}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.ab.check()
		b.cond.Wait()
	}
}
