package query

import (
	"testing"

	"spio/internal/agg"
	"spio/internal/core"
	"spio/internal/geom"
	"spio/internal/mpi"
	"spio/internal/particle"
	"spio/internal/reader"
)

func BenchmarkKNN(b *testing.B) {
	// Reuse the test fixture writer via a minimal inline dataset.
	ds := benchDataset(b)
	p := geom.V3(0.4, 0.6, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := KNN(ds, p, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHalo(b *testing.B) {
	ds := benchDataset(b)
	patch := geom.NewBox(geom.V3(0.25, 0.25, 0), geom.V3(0.5, 0.5, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Halo(ds, patch, 0.05, reader.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDataset writes a 16-rank dataset once per benchmark run and opens
// it with a warm file cache.
func benchDataset(b *testing.B) *reader.Dataset {
	b.Helper()
	dir := b.TempDir()
	simDims := geom.I3(4, 4, 1)
	grid := geom.NewGrid(geom.UnitBox(), simDims)
	cfg := core.WriteConfig{
		Agg: agg.Config{Domain: geom.UnitBox(), SimDims: simDims, Factor: geom.I3(2, 2, 1)},
	}
	err := mpi.Run(16, func(c *mpi.Comm) error {
		local := particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(c.Rank(), simDims)), 2000, 7, c.Rank())
		_, werr := core.Write(c, dir, cfg, local)
		return werr
	})
	if err != nil {
		b.Fatal(err)
	}
	ds, err := reader.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	ds.SetFileCache(8)
	b.Cleanup(func() { ds.Close() })
	return ds
}
