package query

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"spio/internal/agg"
	"spio/internal/core"
	"spio/internal/geom"
	"spio/internal/mpi"
	"spio/internal/particle"
	"spio/internal/reader"
)

// dataset writes a 16-rank clustered dataset and returns it opened, plus
// every particle for brute-force comparison.
func dataset(t *testing.T) (*reader.Dataset, *particle.Buffer) {
	t.Helper()
	dir := t.TempDir()
	simDims := geom.I3(4, 4, 1)
	grid := geom.NewGrid(geom.UnitBox(), simDims)
	cfg := core.WriteConfig{
		Agg: agg.Config{Domain: geom.UnitBox(), SimDims: simDims, Factor: geom.I3(2, 2, 1)},
	}
	err := mpi.Run(16, func(c *mpi.Comm) error {
		local := particle.Clustered(particle.Uintah(), grid.CellBox(geom.Unlinear(c.Rank(), simDims)), 300, 2, 7, c.Rank())
		_, werr := core.Write(c, dir, cfg, local)
		return werr
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := reader.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	all, _, err := ds.ReadAll(reader.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ds, all
}

func TestKNNMatchesBruteForce(t *testing.T) {
	ds, all := dataset(t)
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		p := geom.V3(r.Float64(), r.Float64(), r.Float64())
		k := 1 + r.Intn(20)
		got, dists, _, err := KNN(ds, p, k)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != k || len(dists) != k {
			t.Fatalf("trial %d: got %d neighbours, want %d", trial, got.Len(), k)
		}
		// Brute force distances.
		bf := make([]float64, all.Len())
		for i := range bf {
			bf[i] = p.Dist(all.Position(i))
		}
		sort.Float64s(bf)
		for i := 0; i < k; i++ {
			if math.Abs(dists[i]-bf[i]) > 1e-12 {
				t.Fatalf("trial %d: neighbour %d distance %v, brute force %v", trial, i, dists[i], bf[i])
			}
			if p.Dist(got.Position(i)) != dists[i] {
				t.Fatalf("trial %d: reported distance inconsistent with particle", trial)
			}
		}
		// Sorted ascending.
		for i := 1; i < k; i++ {
			if dists[i] < dists[i-1] {
				t.Fatalf("trial %d: distances unsorted", trial)
			}
		}
	}
}

func TestKNNQueryOutsideClusterStillWorks(t *testing.T) {
	ds, all := dataset(t)
	// A corner point far from most mass forces box expansion.
	p := geom.V3(0.999, 0.999, 0.999)
	got, dists, _, err := KNN(ds, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	bf := make([]float64, all.Len())
	for i := range bf {
		bf[i] = p.Dist(all.Position(i))
	}
	sort.Float64s(bf)
	for i := 0; i < 5; i++ {
		if math.Abs(dists[i]-bf[i]) > 1e-12 {
			t.Fatalf("neighbour %d: %v vs %v", i, dists[i], bf[i])
		}
	}
	_ = got
}

func TestKNNErrors(t *testing.T) {
	ds, _ := dataset(t)
	if _, _, _, err := KNN(ds, geom.V3(0.5, 0.5, 0.5), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, _, err := KNN(ds, geom.V3(0.5, 0.5, 0.5), 1<<30); err == nil {
		t.Error("k > dataset size accepted")
	}
}

func TestHaloSplitsOwnAndGhost(t *testing.T) {
	ds, all := dataset(t)
	patch := geom.NewBox(geom.V3(0.25, 0.25, 0), geom.V3(0.5, 0.5, 1))
	const h = 0.05
	own, ghost, _, err := Halo(ds, patch, h, reader.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < own.Len(); i++ {
		if !patch.Contains(own.Position(i)) {
			t.Fatal("own particle outside patch")
		}
	}
	grown := geom.NewBox(patch.Lo.Sub(geom.V3(h, h, h)), patch.Hi.Add(geom.V3(h, h, h)))
	for i := 0; i < ghost.Len(); i++ {
		p := ghost.Position(i)
		if patch.Contains(p) {
			t.Fatal("ghost particle inside patch")
		}
		if !grown.ContainsClosed(p) {
			t.Fatal("ghost particle outside halo")
		}
	}
	// Completeness: own+ghost equals the brute-force count in grown.
	want := 0
	for i := 0; i < all.Len(); i++ {
		if grown.Contains(all.Position(i)) || grown.ContainsClosed(all.Position(i)) {
			want++
		}
	}
	if own.Len()+ghost.Len() != want {
		t.Errorf("halo returned %d, brute force %d", own.Len()+ghost.Len(), want)
	}
	if _, _, _, err := Halo(ds, patch, -1, reader.Options{}); err == nil {
		t.Error("negative halo accepted")
	}
}

func TestDensityGridExactAndSampled(t *testing.T) {
	ds, all := dataset(t)
	dims := geom.I3(4, 4, 2)
	exact, frac, _, err := DensityGrid(ds, dims, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 1 {
		t.Errorf("full read fraction = %v", frac)
	}
	var sum float64
	for _, c := range exact {
		sum += c
	}
	if int(sum) != all.Len() {
		t.Errorf("exact density sums to %v, want %d", sum, all.Len())
	}

	approx, frac, _, err := DensityGrid(ds, dims, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if frac >= 1 || frac <= 0 {
		t.Fatalf("sampled fraction = %v", frac)
	}
	// The scaled estimate should total ≈ the dataset size and correlate
	// with the exact field.
	sum = 0
	for _, c := range approx {
		sum += c
	}
	if math.Abs(sum-float64(all.Len())) > 1 {
		t.Errorf("approx density sums to %v, want ≈%d", sum, all.Len())
	}
	var num, dx, dy float64
	var mx, my float64
	for i := range exact {
		mx += exact[i]
		my += approx[i]
	}
	mx /= float64(len(exact))
	my /= float64(len(approx))
	for i := range exact {
		num += (exact[i] - mx) * (approx[i] - my)
		dx += (exact[i] - mx) * (exact[i] - mx)
		dy += (approx[i] - my) * (approx[i] - my)
	}
	if corr := num / math.Sqrt(dx*dy); corr < 0.7 {
		t.Errorf("sampled density decorrelated from exact (r=%.2f)", corr)
	}
}
