// Package query builds the region-based analysis operations the paper
// cites as the consumers of its layout (Section 3: "a range of standard
// analysis and visualization tasks are dependent on region-based
// queries, e.g.: nearest neighbour search, vector field integration,
// stencil operations") on top of the metadata-driven reader:
//
//   - KNN: k-nearest-neighbour search that grows its query box until the
//     k-th neighbour is provably inside the searched region, reading
//     only the files the metadata says intersect it.
//   - Halo: a patch read plus a ghost margin, the access pattern of
//     stencil operations and distributed-rendering tiles.
//   - DensityGrid: an approximate density field computed from a low LOD
//     level, scaled by the sampling fraction.
package query

import (
	"fmt"
	"math"
	"sort"

	"spio/internal/geom"
	"spio/internal/particle"
	"spio/internal/reader"
)

// KNNResult is one neighbour.
type KNNResult struct {
	// Index is the neighbour's position in the returned buffer.
	Index int
	// Distance is the Euclidean distance to the query point.
	Distance float64
}

// KNN returns the k particles nearest to p as a buffer (nearest first)
// plus their distances. It expands a box around p until it provably
// contains the k nearest particles: once k candidates exist and the
// k-th distance is no larger than the box's clearance, no closer
// particle can be outside.
func KNN(ds *reader.Dataset, p geom.Vec3, k int) (*particle.Buffer, []float64, reader.Stats, error) {
	var st reader.Stats
	if k <= 0 {
		return nil, nil, st, fmt.Errorf("query: k must be positive, got %d", k)
	}
	meta := ds.Meta()
	if meta.Total < int64(k) {
		return nil, nil, st, fmt.Errorf("query: dataset holds %d particles, asked for %d", meta.Total, k)
	}
	// Initial radius from the mean density, with slack.
	volume := meta.Domain.Volume()
	r := 1.5 * math.Cbrt(float64(k)/float64(meta.Total)*volume/(4.0/3.0*math.Pi))
	if r <= 0 || math.IsNaN(r) {
		r = meta.Domain.Size().Len() / 16
	}
	maxR := meta.Domain.Size().Len() // covers everything

	for {
		box := geom.NewBox(p.Sub(geom.V3(r, r, r)), p.Add(geom.V3(r, r, r)))
		buf, qst, err := ds.QueryBox(box, reader.Options{})
		if err != nil {
			return nil, nil, st, err
		}
		st = qst // keep the stats of the final (successful) pass
		if buf.Len() >= k {
			type cand struct {
				idx  int
				dist float64
			}
			cands := make([]cand, buf.Len())
			for i := 0; i < buf.Len(); i++ {
				cands[i] = cand{idx: i, dist: p.Dist(buf.Position(i))}
			}
			sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
			kth := cands[k-1].dist
			// The box guarantees correctness only within its clearance
			// around p (it is clipped mentally to the sphere of radius r).
			if kth <= r || r >= maxR {
				out := particle.NewBuffer(buf.Schema(), k)
				dists := make([]float64, k)
				for i := 0; i < k; i++ {
					out.AppendFrom(buf, cands[i].idx)
					dists[i] = cands[i].dist
				}
				return out, dists, st, nil
			}
		}
		if r >= maxR {
			return nil, nil, st, fmt.Errorf("query: exhausted domain with %d of %d neighbours", buf.Len(), k)
		}
		r *= 2
	}
}

// Halo reads the particles of a patch plus those within `halo` of it —
// the ghost layer a stencil operation needs. It returns the owned and
// ghost particles separately.
func Halo(ds *reader.Dataset, patch geom.Box, halo float64, opts reader.Options) (own, ghost *particle.Buffer, st reader.Stats, err error) {
	if halo < 0 {
		return nil, nil, st, fmt.Errorf("query: negative halo %v", halo)
	}
	grown := geom.NewBox(
		patch.Lo.Sub(geom.V3(halo, halo, halo)),
		patch.Hi.Add(geom.V3(halo, halo, halo)),
	)
	all, st, err := ds.QueryBox(grown, opts)
	if err != nil {
		return nil, nil, st, err
	}
	own = particle.NewBuffer(all.Schema(), all.Len())
	ghost = particle.NewBuffer(all.Schema(), 0)
	for i := 0; i < all.Len(); i++ {
		if patch.Contains(all.Position(i)) {
			own.AppendFrom(all, i)
		} else {
			ghost.AppendFrom(all, i)
		}
	}
	return own, ghost, st, nil
}

// DensityGrid estimates the particle count per cell of a dims grid over
// the domain by reading only the first `levels` LOD levels and scaling
// by the inverse sampling fraction. levels <= 0 reads everything (exact
// counts). Returns the estimated counts and the sampled fraction.
func DensityGrid(ds *reader.Dataset, dims geom.Idx3, levels, readers int) ([]float64, float64, reader.Stats, error) {
	counts, sampled, st, err := DensityGridRaw(ds, dims, reader.Options{Levels: levels, Readers: readers})
	if err != nil {
		return nil, 0, st, err
	}
	frac := ScaleDensity(counts, sampled, ds.Meta().Total)
	return counts, frac, st, nil
}

// DensityGridRaw is the unscaled half of DensityGrid: it reads the LOD
// prefix selected by opts and returns the per-cell raw sample counts
// plus the number of particles sampled, without dividing by the
// sampling fraction. A gateway sums raw counts across shards and scales
// once against the merged total — scaling per shard and summing would
// both bias the estimate (shards sample at different effective
// fractions) and break bit-identity with the single-node answer.
func DensityGridRaw(ds *reader.Dataset, dims geom.Idx3, opts reader.Options) ([]float64, int64, reader.Stats, error) {
	sub, st, err := ds.ReadAll(opts)
	if err != nil {
		return nil, 0, st, err
	}
	grid := geom.NewGrid(ds.Meta().Domain, dims)
	counts := make([]float64, grid.Cells())
	for i := 0; i < sub.Len(); i++ {
		counts[grid.LocateLinear(sub.Position(i))]++
	}
	return counts, int64(sub.Len()), st, nil
}

// ScaleDensity converts raw sample counts into density estimates in
// place: every cell is divided by the sampling fraction sampled/total.
// It returns the fraction. The arithmetic — one float64 division of the
// two counts, then one division per cell — is shared by the local and
// gateway paths so their results are bit-identical.
func ScaleDensity(counts []float64, sampled, total int64) float64 {
	frac := 1.0
	if total > 0 {
		frac = float64(sampled) / float64(total)
	}
	if frac > 0 {
		for i := range counts {
			counts[i] /= frac
		}
	}
	return frac
}
