package server

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// countingReaderAt counts ReadAt calls into an in-memory byte slice.
type countingReaderAt struct {
	data  []byte
	reads atomic.Int64
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	c.reads.Add(1)
	if off >= int64(len(c.data)) {
		return 0, io.EOF
	}
	n := copy(p, c.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func randomBytes(n int, seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestBlockCacheReadAtMatchesBase(t *testing.T) {
	data := randomBytes(10_000, 1)
	base := &countingReaderAt{data: data}
	c := NewBlockCache(1<<20, 512)
	ra := c.ReaderFor("f", base)
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		off := r.Int63n(int64(len(data) + 100))
		n := r.Intn(2000)
		got := make([]byte, n)
		want := make([]byte, n)
		gn, gerr := ra.ReadAt(got, off)
		wn, werr := base.ReadAt(want, off)
		if gn != wn || (gerr == nil) != (werr == nil) {
			t.Fatalf("off=%d n=%d: cache (%d, %v) vs base (%d, %v)", off, n, gn, gerr, wn, werr)
		}
		if !bytes.Equal(got[:gn], want[:wn]) {
			t.Fatalf("off=%d n=%d: content mismatch", off, n)
		}
	}
}

func TestBlockCacheHitsAvoidBaseReads(t *testing.T) {
	data := randomBytes(8192, 3)
	base := &countingReaderAt{data: data}
	c := NewBlockCache(1<<20, 1024)
	ra := c.ReaderFor("f", base)
	buf := make([]byte, len(data))
	for i := 0; i < 5; i++ {
		if _, err := ra.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := base.reads.Load(); got != 8 {
		t.Errorf("base read %d times, want 8 (one per block)", got)
	}
	st := c.Stats()
	if st.Misses != 8 || st.Hits != 32 {
		t.Errorf("stats: %+v", st)
	}
	if st.BytesFromDisk != 8192 || st.BytesFromCache != 4*8192 {
		t.Errorf("byte split: %+v", st)
	}
}

func TestBlockCacheEviction(t *testing.T) {
	data := randomBytes(64*1024, 4)
	base := &countingReaderAt{data: data}
	// Capacity of 4 blocks over a 64-block file: sweeps must evict.
	c := NewBlockCache(4*1024, 1024)
	ra := c.ReaderFor("f", base)
	buf := make([]byte, len(data))
	for i := 0; i < 3; i++ {
		if _, err := ra.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions under capacity pressure")
	}
	if st.Used > 4*1024 {
		t.Errorf("cache overgrew: %d bytes", st.Used)
	}
	if st.Blocks > 4 {
		t.Errorf("cache holds %d blocks, capacity 4", st.Blocks)
	}
}

func TestBlockCacheSingleflight(t *testing.T) {
	// A base that blocks until all readers arrive would deadlock; instead
	// verify the invariant post-hoc: N concurrent cold reads of the same
	// block perform exactly one base read.
	data := randomBytes(4096, 5)
	base := &countingReaderAt{data: data}
	c := NewBlockCache(1<<20, 4096)
	ra := c.ReaderFor("f", base)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 4096)
			if _, err := ra.ReadAt(buf, 0); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := base.reads.Load(); got != 1 {
		t.Errorf("%d base reads for one block under 32 concurrent readers", got)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 31 {
		t.Errorf("stats: %+v", st)
	}
}

// gatedReaderAt serves a deterministic pattern, parking the read of one
// designated offset until the gate is closed — the lever that holds a
// singleflight load in flight while the test drives evictions past it.
type gatedReaderAt struct {
	size    int64
	gate    chan struct{}
	gateOff int64
}

func patternByte(off int64) byte { return byte(off*7 + off>>8) }

func (g *gatedReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if g.gate != nil && off == g.gateOff {
		<-g.gate
	}
	n := 0
	for ; n < len(p) && off+int64(n) < g.size; n++ {
		p[n] = patternByte(off + int64(n))
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// TestBlockCacheEvictionRacesSingleflight drives the hard interleaving
// directly (run it under -race): block 0's singleflight load is parked
// on the gate while other goroutines sweep enough distinct blocks
// through a one-block cache to evict everything repeatedly — including
// block 0 the moment it lands. Waiters parked on the flight must still
// get the right bytes (evicted slices stay valid; the cache only
// forgets them), and the byte accounting must balance afterwards.
func TestBlockCacheEvictionRacesSingleflight(t *testing.T) {
	const bs = 512
	const nBlocks = 8
	base := &gatedReaderAt{size: bs * nBlocks, gate: make(chan struct{}), gateOff: 0}
	c := NewBlockCache(bs, bs) // capacity: exactly one block
	ra := c.ReaderFor("f", base)

	check := func(off int64) error {
		buf := make([]byte, bs)
		if _, err := ra.ReadAt(buf, off); err != nil {
			return err
		}
		for i, b := range buf {
			if want := patternByte(off + int64(i)); b != want {
				t.Errorf("byte %d of block at %d: got %#x want %#x", i, off, b, want)
				break
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Waiters on block 0: one starts the gated load, the rest park on
	// the flight.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := check(0); err != nil {
				errs <- err
			}
		}()
	}
	// Sweepers: churn the other blocks through the one-block cache,
	// forcing evictions while block 0's load is still in flight.
	var sweeps sync.WaitGroup
	for g := 0; g < 4; g++ {
		sweeps.Add(1)
		go func(seed int64) {
			defer sweeps.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				off := (1 + r.Int63n(nBlocks-1)) * bs
				if err := check(off); err != nil {
					errs <- err
				}
			}
		}(int64(g))
	}
	sweeps.Wait()
	close(base.gate) // release block 0's load into the churn
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Block 0 was likely evicted already; a fresh read must reload it
	// correctly.
	if err := check(0); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions: the race this test exists for never happened")
	}
	if st.Used > bs || st.Blocks > 1 {
		t.Errorf("accounting drifted: used=%d blocks=%d, capacity is one %d-byte block", st.Used, st.Blocks, bs)
	}
	if st.Used != int64(st.Blocks)*bs {
		t.Errorf("used bytes %d inconsistent with %d resident blocks", st.Used, st.Blocks)
	}
}

func TestBlockCacheTailEOF(t *testing.T) {
	data := randomBytes(1000, 6) // not block-aligned
	c := NewBlockCache(1<<20, 512)
	ra := c.ReaderFor("f", &countingReaderAt{data: data})
	// Read exactly to the end: full read, nil or EOF per contract.
	buf := make([]byte, 1000)
	if n, err := ra.ReadAt(buf, 0); n != 1000 || (err != nil && err != io.EOF) {
		t.Fatalf("full read: %d, %v", n, err)
	}
	// Read past the end: short count with EOF.
	if n, err := ra.ReadAt(buf, 600); n != 400 || err != io.EOF {
		t.Fatalf("tail read: %d, %v", n, err)
	}
	// Read entirely past the end.
	if n, err := ra.ReadAt(buf, 5000); n != 0 || err != io.EOF {
		t.Fatalf("past-end read: %d, %v", n, err)
	}
}

func TestBlockCacheKeysAreIsolated(t *testing.T) {
	a := &countingReaderAt{data: bytes.Repeat([]byte{0xAA}, 1024)}
	b := &countingReaderAt{data: bytes.Repeat([]byte{0xBB}, 1024)}
	c := NewBlockCache(1<<20, 512)
	ra := c.ReaderFor("a", a)
	rb := c.ReaderFor("b", b)
	bufA := make([]byte, 1024)
	bufB := make([]byte, 1024)
	if _, err := ra.ReadAt(bufA, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := rb.ReadAt(bufB, 0); err != nil {
		t.Fatal(err)
	}
	if bufA[0] != 0xAA || bufB[0] != 0xBB {
		t.Fatal("cache mixed content across keys")
	}
}

// TestBlockCacheNoEmptyTailBlocks is the regression test for the
// zero-length tail-block leak: a file sized an exact multiple of
// blockSize ends with an empty block at EOF, which added 0 to used —
// unreclaimable by the byte-based evictor — so Stats().Blocks grew
// without bound under series churn.
func TestBlockCacheNoEmptyTailBlocks(t *testing.T) {
	const bs = 512
	c := NewBlockCache(1<<20, bs)
	buf := make([]byte, bs)
	for series := 0; series < 50; series++ {
		data := randomBytes(4*bs, int64(series)) // exact multiple of bs
		ra := c.ReaderFor(string(rune('a'+series)), &countingReaderAt{data: data})
		// Read exactly at EOF: lands on the empty block past the data.
		if n, err := ra.ReadAt(buf, 4*bs); n != 0 || err != io.EOF {
			t.Fatalf("series %d: EOF read: %d, %v", series, n, err)
		}
	}
	st := c.Stats()
	if st.Blocks != 0 {
		t.Errorf("%d zero-length blocks cached; empty tails must not be cached", st.Blocks)
	}
	if st.Used != 0 {
		t.Errorf("used = %d after caching only empty tails", st.Used)
	}
	// The same EOF block re-read still answers correctly (it just misses).
	data := randomBytes(4*bs, 99)
	ra := c.ReaderFor("z", &countingReaderAt{data: data})
	for i := 0; i < 3; i++ {
		if n, err := ra.ReadAt(buf, 4*bs); n != 0 || err != io.EOF {
			t.Fatalf("repeat EOF read: %d, %v", n, err)
		}
	}
	if st := c.Stats(); st.Blocks != 0 || st.Used != 0 {
		t.Errorf("empty tail crept into the cache: %+v", st)
	}
}

func TestBlockCacheNegativeOffset(t *testing.T) {
	c := NewBlockCache(1<<20, 512)
	ra := c.ReaderFor("f", &countingReaderAt{data: randomBytes(1024, 7)})
	n, err := ra.ReadAt(make([]byte, 16), -1)
	if n != 0 || err == nil {
		t.Fatalf("negative offset: %d, %v", n, err)
	}
	// os.File.ReadAt semantics: an invalid offset is a *fs.PathError, not
	// a truncation signal.
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		t.Errorf("negative offset misreported as truncation: %v", err)
	}
	var pe *fs.PathError
	if !errors.As(err, &pe) {
		t.Errorf("negative offset error is %T, want *fs.PathError", err)
	}
}
