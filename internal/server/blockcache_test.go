package server

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// countingReaderAt counts ReadAt calls into an in-memory byte slice.
type countingReaderAt struct {
	data  []byte
	reads atomic.Int64
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	c.reads.Add(1)
	if off >= int64(len(c.data)) {
		return 0, io.EOF
	}
	n := copy(p, c.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func randomBytes(n int, seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestBlockCacheReadAtMatchesBase(t *testing.T) {
	data := randomBytes(10_000, 1)
	base := &countingReaderAt{data: data}
	c := NewBlockCache(1<<20, 512)
	ra := c.ReaderFor("f", base)
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		off := r.Int63n(int64(len(data) + 100))
		n := r.Intn(2000)
		got := make([]byte, n)
		want := make([]byte, n)
		gn, gerr := ra.ReadAt(got, off)
		wn, werr := base.ReadAt(want, off)
		if gn != wn || (gerr == nil) != (werr == nil) {
			t.Fatalf("off=%d n=%d: cache (%d, %v) vs base (%d, %v)", off, n, gn, gerr, wn, werr)
		}
		if !bytes.Equal(got[:gn], want[:wn]) {
			t.Fatalf("off=%d n=%d: content mismatch", off, n)
		}
	}
}

func TestBlockCacheHitsAvoidBaseReads(t *testing.T) {
	data := randomBytes(8192, 3)
	base := &countingReaderAt{data: data}
	c := NewBlockCache(1<<20, 1024)
	ra := c.ReaderFor("f", base)
	buf := make([]byte, len(data))
	for i := 0; i < 5; i++ {
		if _, err := ra.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := base.reads.Load(); got != 8 {
		t.Errorf("base read %d times, want 8 (one per block)", got)
	}
	st := c.Stats()
	if st.Misses != 8 || st.Hits != 32 {
		t.Errorf("stats: %+v", st)
	}
	if st.BytesFromDisk != 8192 || st.BytesFromCache != 4*8192 {
		t.Errorf("byte split: %+v", st)
	}
}

func TestBlockCacheEviction(t *testing.T) {
	data := randomBytes(64*1024, 4)
	base := &countingReaderAt{data: data}
	// Capacity of 4 blocks over a 64-block file: sweeps must evict.
	c := NewBlockCache(4*1024, 1024)
	ra := c.ReaderFor("f", base)
	buf := make([]byte, len(data))
	for i := 0; i < 3; i++ {
		if _, err := ra.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions under capacity pressure")
	}
	if st.Used > 4*1024 {
		t.Errorf("cache overgrew: %d bytes", st.Used)
	}
	if st.Blocks > 4 {
		t.Errorf("cache holds %d blocks, capacity 4", st.Blocks)
	}
}

func TestBlockCacheSingleflight(t *testing.T) {
	// A base that blocks until all readers arrive would deadlock; instead
	// verify the invariant post-hoc: N concurrent cold reads of the same
	// block perform exactly one base read.
	data := randomBytes(4096, 5)
	base := &countingReaderAt{data: data}
	c := NewBlockCache(1<<20, 4096)
	ra := c.ReaderFor("f", base)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 4096)
			if _, err := ra.ReadAt(buf, 0); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := base.reads.Load(); got != 1 {
		t.Errorf("%d base reads for one block under 32 concurrent readers", got)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 31 {
		t.Errorf("stats: %+v", st)
	}
}

func TestBlockCacheTailEOF(t *testing.T) {
	data := randomBytes(1000, 6) // not block-aligned
	c := NewBlockCache(1<<20, 512)
	ra := c.ReaderFor("f", &countingReaderAt{data: data})
	// Read exactly to the end: full read, nil or EOF per contract.
	buf := make([]byte, 1000)
	if n, err := ra.ReadAt(buf, 0); n != 1000 || (err != nil && err != io.EOF) {
		t.Fatalf("full read: %d, %v", n, err)
	}
	// Read past the end: short count with EOF.
	if n, err := ra.ReadAt(buf, 600); n != 400 || err != io.EOF {
		t.Fatalf("tail read: %d, %v", n, err)
	}
	// Read entirely past the end.
	if n, err := ra.ReadAt(buf, 5000); n != 0 || err != io.EOF {
		t.Fatalf("past-end read: %d, %v", n, err)
	}
}

func TestBlockCacheKeysAreIsolated(t *testing.T) {
	a := &countingReaderAt{data: bytes.Repeat([]byte{0xAA}, 1024)}
	b := &countingReaderAt{data: bytes.Repeat([]byte{0xBB}, 1024)}
	c := NewBlockCache(1<<20, 512)
	ra := c.ReaderFor("a", a)
	rb := c.ReaderFor("b", b)
	bufA := make([]byte, 1024)
	bufB := make([]byte, 1024)
	if _, err := ra.ReadAt(bufA, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := rb.ReadAt(bufB, 0); err != nil {
		t.Fatal(err)
	}
	if bufA[0] != 0xAA || bufB[0] != 0xBB {
		t.Fatal("cache mixed content across keys")
	}
}
