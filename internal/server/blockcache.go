// Package server is spio's resident dataset-serving subsystem: a
// long-lived daemon (cmd/spiod) that mounts dataset directories and
// serves the existing query surface — box reads, KNN, halos, density
// grids, progressive LOD streams — to many concurrent clients over a
// compact length-prefixed binary protocol on TCP or Unix sockets.
//
// The subsystem owns what the in-process read path cannot provide to a
// fleet of independent clients:
//
//   - a shared, size-bounded block cache layered under each dataset's
//     open-file cache, with singleflight loads so concurrent queries
//     for the same file region do one disk read (blockcache.go);
//   - an admission controller — bounded worker pool, queue-depth limit
//     with fast-fail (ErrOverloaded), per-request response byte
//     budgets, graceful drain on shutdown (admission.go, server.go);
//   - level-by-level progressive streaming with explicit client
//     backpressure, reusing the reader's LOD prefix machinery
//     (server.go, client.go);
//   - an observability surface: per-request counters aggregated into a
//     JSON /metrics snapshot (metrics.go).
//
// The wire format is a thin, symmetric reuse of the internal/format
// encoding idiom (wire.go), so `spiolint wiresym` checks every
// request/response pair statically.
package server

import (
	"container/list"
	"errors"
	"io"
	"io/fs"
	"sync"
)

// BlockCacheStats is the shared block cache's counter snapshot.
type BlockCacheStats struct {
	// Hits counts block lookups served from memory (including waits on
	// another request's in-flight load).
	Hits int64 `json:"hits"`
	// Misses counts block loads that went to disk.
	Misses int64 `json:"misses"`
	// Evictions counts blocks pushed out by the capacity bound.
	Evictions int64 `json:"evictions"`
	// BytesFromCache and BytesFromDisk split served block bytes by
	// origin.
	BytesFromCache int64 `json:"bytes_from_cache"`
	BytesFromDisk  int64 `json:"bytes_from_disk"`
	// Used and Blocks describe current occupancy.
	Used   int64 `json:"used_bytes"`
	Blocks int   `json:"blocks"`
}

// BlockCache is a shared, size-bounded cache of fixed-size file blocks,
// layered under the per-dataset open-file caches: every payload read of
// every mounted dataset goes through it, so concurrent clients querying
// overlapping regions hit memory instead of multiplying disk reads.
// Loads are singleflighted per block — N queries racing on a cold block
// do one disk read and share the bytes.
//
// Cached blocks are immutable once inserted; the cache assumes data
// files are immutable once published (spio writes them via atomic
// rename and never mutates them in place).
type BlockCache struct {
	blockSize int64
	capacity  int64

	mu       sync.Mutex
	used     int64
	lru      *list.List // front = most recently used; values *cacheBlock
	blocks   map[blockKey]*list.Element
	inflight map[blockKey]*blockFlight
	stats    BlockCacheStats
}

type blockKey struct {
	file string
	idx  int64
}

type cacheBlock struct {
	key  blockKey
	data []byte // immutable after insert
}

// blockFlight is one in-progress singleflighted block load.
type blockFlight struct {
	done chan struct{}
	data []byte
	err  error
}

// DefaultBlockSize is the block granularity when none is configured.
const DefaultBlockSize = 256 << 10

// NewBlockCache returns a cache bounded to capacityBytes of block data,
// loading blockSize-aligned blocks (0 means DefaultBlockSize).
func NewBlockCache(capacityBytes int64, blockSize int) *BlockCache {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if capacityBytes < int64(blockSize) {
		capacityBytes = int64(blockSize)
	}
	return &BlockCache{
		blockSize: int64(blockSize),
		capacity:  capacityBytes,
		lru:       list.New(),
		blocks:    make(map[blockKey]*list.Element),
		inflight:  make(map[blockKey]*blockFlight),
	}
}

// Stats returns a snapshot of the cache counters.
func (c *BlockCache) Stats() BlockCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Used = c.used
	st.Blocks = c.lru.Len()
	return st
}

// ReaderFor returns an io.ReaderAt serving key's bytes from the cache,
// falling back to base block-by-block on misses. key must uniquely
// identify base's content (spiod uses the data file's path).
func (c *BlockCache) ReaderFor(key string, base io.ReaderAt) io.ReaderAt {
	return &cachedReaderAt{c: c, key: key, base: base}
}

type cachedReaderAt struct {
	c    *BlockCache
	key  string
	base io.ReaderAt
}

// ReadAt implements io.ReaderAt over the cached blocks. A read past the
// end of the underlying file returns io.EOF with the bytes that exist,
// per the io.ReaderAt contract.
func (r *cachedReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		// Match os.File.ReadAt semantics: a negative offset is a caller
		// bug, not a truncation — don't misreport it as one.
		return 0, &fs.PathError{Op: "readat", Path: r.key, Err: errors.New("negative offset")}
	}
	bs := r.c.blockSize
	n := 0
	for len(p) > 0 {
		data, err := r.c.blockFor(r.key, off/bs, r.base)
		if err != nil {
			return n, err
		}
		bo := off % bs
		if int64(len(data)) <= bo {
			return n, io.EOF
		}
		m := copy(p, data[bo:])
		n += m
		off += int64(m)
		p = p[m:]
		if len(p) > 0 && int64(len(data)) < bs {
			// Short (tail) block with bytes still wanted: end of file.
			return n, io.EOF
		}
	}
	return n, nil
}

// blockFor returns block idx of file, loading it through base on a miss.
// Concurrent callers for the same cold block share one disk read.
func (c *BlockCache) blockFor(file string, idx int64, base io.ReaderAt) ([]byte, error) {
	k := blockKey{file: file, idx: idx}
	c.mu.Lock()
	if el, ok := c.blocks[k]; ok {
		b := el.Value.(*cacheBlock)
		c.lru.MoveToFront(el)
		c.stats.Hits++
		c.stats.BytesFromCache += int64(len(b.data))
		c.mu.Unlock()
		return b.data, nil
	}
	if f, ok := c.inflight[k]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		c.mu.Lock()
		c.stats.Hits++
		c.stats.BytesFromCache += int64(len(f.data))
		c.mu.Unlock()
		return f.data, nil
	}
	f := &blockFlight{done: make(chan struct{})}
	c.inflight[k] = f
	c.stats.Misses++
	c.mu.Unlock()

	buf := make([]byte, c.blockSize)
	n, err := base.ReadAt(buf, idx*c.blockSize)
	if err == io.EOF {
		err = nil // a short tail block is a valid block
	}
	if err != nil {
		f.err = err
		c.mu.Lock()
		delete(c.inflight, k)
		c.mu.Unlock()
		close(f.done)
		return nil, err
	}
	f.data = buf[:n:n]

	c.mu.Lock()
	delete(c.inflight, k)
	// A read exactly at EOF (any file sized a multiple of blockSize ends
	// with one) yields a zero-length block. Don't cache it: it adds 0 to
	// used, so the byte-based eviction loop could never reclaim it, and
	// Stats().Blocks would grow without bound under series churn.
	if n > 0 {
		el := c.lru.PushFront(&cacheBlock{key: k, data: f.data})
		c.blocks[k] = el
		c.used += int64(n)
		c.stats.BytesFromDisk += int64(n)
		c.evictLocked()
	}
	c.mu.Unlock()
	close(f.done)
	return f.data, nil
}

// evictLocked shrinks the cache to capacity. Evicted blocks stay valid
// for readers already holding their slices (slices are immutable; the
// cache only forgets them).
func (c *BlockCache) evictLocked() {
	for c.used > c.capacity {
		back := c.lru.Back()
		if back == nil {
			return
		}
		b := back.Value.(*cacheBlock)
		c.lru.Remove(back)
		delete(c.blocks, b.key)
		c.used -= int64(len(b.data))
		c.stats.Evictions++
	}
}
