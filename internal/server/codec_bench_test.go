package server

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"spio/internal/format"
	"spio/internal/geom"
	"spio/internal/lod"
	"spio/internal/particle"
)

// The BENCH_PR8 benchmarks measure what the codec layer buys, in the
// two places it pays rent: bytes on the wire per query response, and
// disk traffic through a byte-bounded block cache that now holds
// compressed blocks.

func benchWireQueryResp(b *testing.B, codec uint8) {
	buf := particle.Clustered(particle.Uintah(), geom.UnitBox(), 32768, 3, 11, 0)
	lod.Shuffle(buf, 5)
	resp := &queryResp{Buf: buf}
	raw := int64(buf.Len() * buf.Schema().Stride())
	var frame bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame.Reset()
		e := newWriter(&frame)
		encodeQueryResp(e, resp, codec)
		if e.err != nil {
			b.Fatal(e.err)
		}
	}
	b.SetBytes(raw)
	b.ReportMetric(float64(frame.Len()), "wire_B/op")
	b.ReportMetric(float64(frame.Len())/float64(raw), "wire_ratio")
}

func BenchmarkWireQueryRespRaw(b *testing.B)      { benchWireQueryResp(b, wireCodecRaw) }
func BenchmarkWireQueryRespLossless(b *testing.B) { benchWireQueryResp(b, wireCodecLossless) }

func benchCachedRangeReads(b *testing.B, codec particle.Spec, decodedBytes int64) {
	dir := b.TempDir()
	const n = 32768
	const span = 8192 // one codec block, so raw and compressed fetch the same records
	buf := particle.Clustered(particle.Uintah(), geom.UnitBox(), n, 3, 11, 0)
	lod.Shuffle(buf, 5)
	path := filepath.Join(dir, format.DataFileName(0))
	hdr := format.DataHeader{LOD: lod.DefaultParams(), Heuristic: lod.Random, Seed: 5, Codec: codec}
	if err := format.WriteDataFile(nil, path, hdr, buf); err != nil {
		b.Fatal(err)
	}
	df, err := format.OpenDataFile(path)
	if err != nil {
		b.Fatal(err)
	}
	defer df.Close()

	// A cache holding a quarter of the *uncompressed* payload: raw
	// blocks thrash under a working set of the whole file, while the
	// same byte budget keeps a multiple of the working set resident
	// once the cache holds compressed blocks.
	cache := NewBlockCache(int64(n*buf.Schema().Stride()/4), 16<<10)
	df.SetReaderAt(cache.ReaderFor(path, df.ReaderAt()))
	dcache := NewDecodedCache(decodedBytes)
	if dcache != nil {
		df.SetDecodedCache(dcache.ForFile(path))
	}

	r := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := span * r.Int63n(n/span)
		if _, err := df.ReadRange(lo, lo+span); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := cache.Stats()
	b.ReportMetric(float64(st.BytesFromDisk)/float64(b.N), "disk_B/op")
	b.ReportMetric(float64(st.Hits)/float64(st.Hits+st.Misses), "cache_hit_ratio")
	b.ReportMetric(float64(df.PayloadBytes()), "payload_B")
	if dcache != nil {
		dst := dcache.Stats()
		b.ReportMetric(float64(dst.Hits)/float64(dst.Hits+dst.Misses), "decoded_hit_ratio")
	}
}

func BenchmarkCachedRangeReadRaw(b *testing.B) {
	benchCachedRangeReads(b, particle.Spec{}, 0)
}

// Quantized positions/velocities (1e-3 absolute bound) are the case
// the cache-capacity-multiplication argument is about: the compressed
// working set fits where the raw one thrashes.
func BenchmarkCachedRangeReadCompressed(b *testing.B) {
	benchCachedRangeReads(b, particle.LossySpec(particle.Uintah(), 1e-3), 0)
}

// The decoded-block tier in front of the same compressed cache: the
// hot working set is served as plain record bytes, paying inflate only
// on first touch, so repeat reads approach the raw path's latency.
func BenchmarkCachedRangeReadDecodedTier(b *testing.B) {
	benchCachedRangeReads(b, particle.LossySpec(particle.Uintah(), 1e-3), 8<<20)
}
