package server

import (
	"errors"
	"sync/atomic"
	"time"
)

// ErrOverloaded is returned — and carried on the wire as a distinct
// status code — when the server's request queue is full. Clients should
// back off and retry; the fast-fail is the admission controller
// shedding load instead of queueing unboundedly.
var ErrOverloaded = errors.New("spiod: overloaded: request queue is full")

// errDraining marks a request refused because the server is shutting
// down (SIGTERM drain): in-flight work completes, new work is turned
// away.
var errDraining = errors.New("spiod: draining: server is shutting down")

// admission is the bounded worker pool in front of request execution:
// at most `workers` requests run at once, at most `queueDepth` wait,
// and everything beyond that fails fast with ErrOverloaded.
type admission struct {
	slots    chan struct{}
	maxQueue int32
	waiting  atomic.Int32
}

func newAdmission(workers, queueDepth int) *admission {
	if workers <= 0 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{
		slots:    make(chan struct{}, workers),
		maxQueue: int32(queueDepth),
	}
}

// acquire claims a worker slot, reporting the time spent queued. It
// fails immediately with ErrOverloaded when queueDepth requests are
// already waiting, and with errDraining when stop closes first.
func (a *admission) acquire(stop <-chan struct{}) (time.Duration, error) {
	select {
	case a.slots <- struct{}{}:
		return 0, nil
	default:
	}
	if a.waiting.Add(1) > a.maxQueue {
		a.waiting.Add(-1)
		return 0, ErrOverloaded
	}
	start := time.Now()
	select {
	case a.slots <- struct{}{}:
		a.waiting.Add(-1)
		return time.Since(start), nil
	case <-stop:
		a.waiting.Add(-1)
		return time.Since(start), errDraining
	}
}

// release returns a slot claimed by acquire.
func (a *admission) release() { <-a.slots }
