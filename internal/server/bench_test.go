package server

import (
	"sync"
	"testing"

	"spio/internal/geom"
	"spio/internal/particle"
	rdr "spio/internal/reader"
)

// benchRemote drives b.N operations through `clients` concurrent
// connections against a freshly served dataset and reports bytes/op
// from a calibration run of the same operation.
func benchRemote(b *testing.B, clients int, op func(ds *RemoteDataset) (*particle.Buffer, error)) {
	dir := b.TempDir()
	writeDataset(b, dir, geom.I3(4, 4, 1), geom.I3(2, 2, 1), 500) // ~1 MB dataset
	s := New(Config{Workers: clients})
	if err := s.Mount("sim", dir); err != nil {
		b.Fatal(err)
	}
	addr := startServer(b, s)

	conns := make([]*RemoteDataset, clients)
	for i := range conns {
		ds, err := OpenRemote(addr, "sim")
		if err != nil {
			b.Fatal(err)
		}
		defer ds.Close()
		conns[i] = ds
	}
	// Calibrate bytes/op (and warm the block cache) off the clock.
	buf, err := op(conns[0])
	if err != nil {
		b.Fatal(err)
	}
	if buf != nil {
		b.SetBytes(int64(len(buf.Encode())))
	}

	work := make(chan struct{})
	b.ResetTimer()
	go func() {
		for i := 0; i < b.N; i++ {
			work <- struct{}{}
		}
		close(work)
	}()
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for _, ds := range conns {
		wg.Add(1)
		go func(ds *RemoteDataset) {
			defer wg.Done()
			for range work {
				if _, err := op(ds); err != nil {
					errc <- err
					return
				}
			}
		}(ds)
	}
	wg.Wait()
	b.StopTimer()
	close(errc)
	for err := range errc {
		b.Fatal(err)
	}
}

func octant() geom.Box { return geom.NewBox(geom.V3(0, 0, 0), geom.V3(0.5, 0.5, 1)) }

func BenchmarkServerQueryBox1Client(b *testing.B) {
	benchRemote(b, 1, func(ds *RemoteDataset) (*particle.Buffer, error) {
		buf, _, err := ds.QueryBox(octant(), rdr.Options{})
		return buf, err
	})
}

func BenchmarkServerQueryBox8Clients(b *testing.B) {
	benchRemote(b, 8, func(ds *RemoteDataset) (*particle.Buffer, error) {
		buf, _, err := ds.QueryBox(octant(), rdr.Options{})
		return buf, err
	})
}

func BenchmarkServerKNN8Clients(b *testing.B) {
	benchRemote(b, 8, func(ds *RemoteDataset) (*particle.Buffer, error) {
		buf, _, _, err := ds.KNN(geom.V3(0.4, 0.6, 0.5), 16)
		return buf, err
	})
}

func BenchmarkServerStream8Clients(b *testing.B) {
	benchRemote(b, 8, func(ds *RemoteDataset) (*particle.Buffer, error) {
		st, err := ds.ProgressiveBox(ds.Meta().Domain, 0, 2)
		if err != nil {
			return nil, err
		}
		total := particle.NewBuffer(ds.Meta().Schema, 0)
		for {
			buf, ok, err := st.NextLevel()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			total.AppendBuffer(buf)
			if st.Done() {
				break
			}
		}
		return total, nil
	})
}
