package server

// Wire shims for internal/gateway. The gateway front speaks the spiod
// protocol to its own clients, so it needs the frame and message codecs
// that live (unexported) in this package. These are aliases and thin
// Marshal/Unmarshal wrappers over the name-paired encode/decode
// functions — symmetry is still enforced where it matters, on the
// underlying pairs the wiresym analyzer checks.

import (
	"bytes"
	"io"
)

// Exported protocol constants for the gateway front.
const (
	ProtoVersion = protoVersion

	OpMeta        = opMeta
	OpQueryBox    = opQueryBox
	OpKNN         = opKNN
	OpHalo        = opHalo
	OpDensityGrid = opDensityGrid
	OpProgressive = opProgressive
	OpStats       = opStats
	OpList        = opList

	StatusOK         = statusOK
	StatusError      = statusError
	StatusOverloaded = statusOverloaded
	StatusDraining   = statusDraining
	StatusBudget     = statusBudget

	AckNext   = ackNext
	AckCancel = ackCancel

	// ReqFlagRawDensity marks a density request as raw (unscaled counts
	// plus sampled total) — what a gateway sends its shards, and what a
	// nested gateway may be asked for itself.
	ReqFlagRawDensity = reqFlagRawDensity

	// GatewayFeatures is the feature set a gateway front advertises: the
	// same extensions the server build implements, since the gateway
	// fans every one of them out.
	GatewayFeatures = serverFeatures

	// FeatureBaseOverride and friends let a gateway check that a backend
	// implements the extension its merge semantics depend on.
	FeatureBaseOverride   = featureBaseOverride
	FeaturePartialResults = featurePartialResults
	FeatureRawDensity     = featureRawDensity
	FeatureDrainNotice    = featureDrainNotice

	// HelloFrameMax bounds the hello frame a front accepts.
	HelloFrameMax = 64
	// AckFrameMax bounds a progressive-stream ack frame.
	AckFrameMax = 16
)

// Aliased wire records (fields are exported on the underlying types).
type (
	Hello       = hello
	Request     = request
	WireStats   = wireStats
	QueryResp   = queryResp
	KNNResp     = knnResp
	HaloResp    = haloResp
	DensityResp = densityResp
	StreamFrame = streamFrame
)

// FrameRead receives one length-prefixed frame, refusing bodies larger
// than max.
func FrameRead(r io.Reader, max uint32) ([]byte, error) {
	return readFrame(r, max)
}

// FrameWrite sends one length-prefixed frame.
func FrameWrite(w io.Writer, body []byte) error {
	return writeFrame(w, body)
}

// UnmarshalHello decodes a client hello frame body (magic, version,
// codec, features).
func UnmarshalHello(body []byte) (*Hello, error) {
	return decodeHello(newReader(bytes.NewReader(body)))
}

// UnmarshalRequest decodes a request frame body with the same bounds
// the server enforces.
func UnmarshalRequest(body []byte) (*Request, error) {
	return decodeRequest(newReader(bytes.NewReader(body)))
}

// UnmarshalAck decodes a progressive-stream ack frame body.
func UnmarshalAck(body []byte) (uint8, error) {
	return decodeAck(newReader(bytes.NewReader(body)))
}

// marshalResp builds a response frame body: header then payload.
func marshalResp(status uint8, msg string, payload func(e *writer)) ([]byte, error) {
	var fb frameBuf
	e := newWriter(&fb)
	encodeRespHeader(e, &respHeader{Status: status, Msg: msg})
	if payload != nil {
		payload(e)
	}
	if e.err != nil {
		return nil, e.err
	}
	return fb.b, nil
}

// MarshalStatusFrame builds a header-only response frame body.
func MarshalStatusFrame(status uint8, msg string) ([]byte, error) {
	return marshalResp(status, msg, nil)
}

// MarshalHelloAckFrame builds the hello response frame body advertising
// the given feature bits.
func MarshalHelloAckFrame(features uint32) ([]byte, error) {
	return marshalResp(statusOK, "", func(e *writer) {
		encodeHelloAck(e, &helloAck{Features: features})
	})
}

// MarshalBlobFrame builds an OK response carrying an opaque blob
// (metadata images, stats JSON).
func MarshalBlobFrame(blob []byte) ([]byte, error) {
	return marshalResp(statusOK, "", func(e *writer) { encodeBlob(e, blob) })
}

// MarshalNamesFrame builds an OK response carrying a name list (opList).
func MarshalNamesFrame(names []string) ([]byte, error) {
	return marshalResp(statusOK, "", func(e *writer) { encodeNames(e, names) })
}

// MarshalQueryRespFrame builds an OK opQueryBox response frame body.
func MarshalQueryRespFrame(r *QueryResp, codec uint8) ([]byte, error) {
	return marshalResp(statusOK, "", func(e *writer) { encodeQueryResp(e, r, codec) })
}

// MarshalKNNRespFrame builds an OK opKNN response frame body.
func MarshalKNNRespFrame(r *KNNResp, codec uint8) ([]byte, error) {
	return marshalResp(statusOK, "", func(e *writer) { encodeKNNResp(e, r, codec) })
}

// MarshalHaloRespFrame builds an OK opHalo response frame body.
func MarshalHaloRespFrame(r *HaloResp, codec uint8) ([]byte, error) {
	return marshalResp(statusOK, "", func(e *writer) { encodeHaloResp(e, r, codec) })
}

// MarshalDensityRespFrame builds an OK opDensityGrid response frame
// body.
func MarshalDensityRespFrame(r *DensityResp) ([]byte, error) {
	return marshalResp(statusOK, "", func(e *writer) { encodeDensityResp(e, r) })
}

// MarshalStreamFrame builds an OK progressive level frame body.
func MarshalStreamFrame(f *StreamFrame, codec uint8) ([]byte, error) {
	return marshalResp(statusOK, "", func(e *writer) { encodeStreamFrame(e, f, codec) })
}

// ClampWireCodec applies the maxWireCodec bound to a requested codec,
// falling back to raw for unknown values.
func ClampWireCodec(codec uint8) uint8 {
	if codec > maxWireCodec {
		return wireCodecRaw
	}
	return codec
}
