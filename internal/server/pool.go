package server

import (
	"errors"
	"sync"
)

// ErrPoolClosed is returned by Get on a closed ClientPool.
var ErrPoolClosed = errors.New("spiod: client pool closed")

// ClientPool is a bounded pool of Clients to one spiod address. Get
// checks a client out for exclusive use; Put returns it. The pool caps
// live connections: when every slot is checked out, Get blocks until a
// Put frees one — the per-backend fan-out bound of a gateway. Broken
// clients (transport desync, server drain) are closed on Put instead of
// being reused, so a pooled checkout is always a connection whose
// stream position is known-good, and a redial happens lazily on the
// next Get.
type ClientPool struct {
	addr string
	opts []DialOption
	sem  chan struct{} // one token per live-connection slot

	mu     sync.Mutex
	idle   []*Client
	closed bool
}

// NewClientPool builds a pool of at most max live connections to addr
// (max <= 0 defaults to 4). Connections are dialed lazily.
func NewClientPool(addr string, max int, opts ...DialOption) *ClientPool {
	if max <= 0 {
		max = 4
	}
	return &ClientPool{addr: addr, opts: opts, sem: make(chan struct{}, max)}
}

// Get checks out a client for exclusive use, dialing a fresh connection
// when no idle one exists. It blocks while all slots are checked out.
// The caller must Put the client back (even after errors — Put handles
// broken clients).
func (p *ClientPool) Get() (*Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	p.mu.Unlock()
	p.sem <- struct{}{} // acquire a live-connection slot
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.sem
		return nil, ErrPoolClosed
	}
	var reuse *Client
	var stale []*Client // broken idle conns, closed after unlock
	for len(p.idle) > 0 {
		c := p.idle[len(p.idle)-1]
		p.idle = p.idle[:len(p.idle)-1]
		if c.Broken() {
			stale = append(stale, c) // e.g. server drained under us
			continue
		}
		reuse = c
		break
	}
	p.mu.Unlock()
	for _, c := range stale {
		_ = c.Close() // stale conn; nothing to report
	}
	if reuse != nil {
		return reuse, nil
	}
	c, err := Dial(p.addr, p.opts...)
	if err != nil {
		<-p.sem // dial failed: the slot is free again
		return nil, err
	}
	return c, nil
}

// Put returns a checked-out client. Broken (or nil) clients are closed;
// healthy ones go back on the idle list. Every Get must be matched by
// exactly one Put.
func (p *ClientPool) Put(c *Client) {
	defer func() { <-p.sem }()
	if c == nil {
		return
	}
	if c.Broken() {
		_ = c.Close() // desynced conn: never reuse
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = c.Close() // pool closed while checked out
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// Close closes the idle connections and fails future Gets. Clients
// currently checked out are closed by their Put.
func (p *ClientPool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, c := range idle {
		_ = c.Close() // pool shutdown; nothing to report per conn
	}
	return nil
}
