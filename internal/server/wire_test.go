package server

import (
	"bytes"
	"math"
	"testing"

	"spio/internal/geom"
	"spio/internal/particle"
	rdr "spio/internal/reader"
)

func roundTrip(t *testing.T, enc func(e *writer)) *reader {
	t.Helper()
	var fb frameBuf
	e := newWriter(&fb)
	enc(e)
	if e.err != nil {
		t.Fatalf("encode: %v", e.err)
	}
	return newReader(bytes.NewReader(fb.b))
}

func TestRequestRoundTrip(t *testing.T) {
	want := &request{
		Op:       opHalo,
		Dataset:  "sim@42",
		Box:      geom.NewBox(geom.V3(0.1, 0.2, 0.3), geom.V3(0.9, 0.8, 0.7)),
		Point:    geom.V3(0.5, math.Inf(1), -0.5),
		K:        17,
		Halo:     0.0625,
		Dims:     geom.I3(8, 4, 2),
		Levels:   3,
		Readers:  4,
		NoFilter: true,
		Fields:   []string{"id", "density"},
	}
	d := roundTrip(t, func(e *writer) { encodeRequest(e, want) })
	got, err := decodeRequest(d)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != want.Op || got.Dataset != want.Dataset || got.Box != want.Box ||
		got.Point != want.Point || got.K != want.K || got.Halo != want.Halo ||
		got.Dims != want.Dims || got.Levels != want.Levels || got.Readers != want.Readers ||
		got.NoFilter != want.NoFilter || len(got.Fields) != 2 ||
		got.Fields[0] != "id" || got.Fields[1] != "density" {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestHelloRoundTripAndBadMagic(t *testing.T) {
	d := roundTrip(t, func(e *writer) { encodeHello(e, &hello{Version: protoVersion}) })
	h, err := decodeHello(d)
	if err != nil || h.Version != protoVersion {
		t.Fatalf("hello: %v %+v", err, h)
	}
	bad := newReader(bytes.NewReader([]byte("HTTP/1.1 GET /")))
	if _, err := decodeHello(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestStatsRoundTrip(t *testing.T) {
	want := &wireStats{
		Read: rdr.Stats{
			FilesOpened: 3, ParticlesRead: 1000, BytesRead: 124000,
			ParticlesKept: 900, CacheHits: 2, BytesFromCache: 4096,
		},
		QueueWait: 12345, Service: 67890,
	}
	d := roundTrip(t, func(e *writer) { encodeStats(e, want) })
	got, err := decodeStats(d)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

func TestBufferRoundTripBitExact(t *testing.T) {
	buf := particle.Uniform(particle.Uintah(), geom.UnitBox(), 257, 7, 0)
	for _, codec := range []uint8{wireCodecRaw, wireCodecLossless} {
		d := roundTrip(t, func(e *writer) { encodeBuffer(e, buf, codec) })
		got, err := decodeBuffer(d, 1<<26)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(buf) {
			t.Fatalf("codec %d: decoded buffer differs", codec)
		}
		if !bytes.Equal(got.Encode(), buf.Encode()) {
			t.Fatalf("codec %d: decoded buffer is not byte-identical", codec)
		}
	}
}

func TestBufferLosslessCodecShrinksFrame(t *testing.T) {
	buf := particle.Uniform(particle.Uintah(), geom.UnitBox(), 4096, 7, 0)
	size := func(codec uint8) int {
		var fb frameBuf
		e := newWriter(&fb)
		encodeBuffer(e, buf, codec)
		if e.err != nil {
			t.Fatal(e.err)
		}
		return len(fb.b)
	}
	raw, comp := size(wireCodecRaw), size(wireCodecLossless)
	if comp >= raw {
		t.Errorf("lossless frame did not shrink: %d -> %d bytes", raw, comp)
	}
	t.Logf("wire frame: %d -> %d bytes (%.1f%%)", raw, comp, 100*float64(comp)/float64(raw))
}

func TestBufferDecodeRespectsLimit(t *testing.T) {
	buf := particle.Uniform(particle.Uintah(), geom.UnitBox(), 64, 7, 0)
	for _, codec := range []uint8{wireCodecRaw, wireCodecLossless} {
		d := roundTrip(t, func(e *writer) { encodeBuffer(e, buf, codec) })
		if _, err := decodeBuffer(d, 16); err == nil {
			t.Fatal("oversized buffer accepted")
		}
	}
}

// TestBufferDecodeHostileCodecFrames rejects malformed codec framing:
// an unknown codec id, a raw payload length that disagrees with the
// record count, and a compressed payload claiming more bytes than raw.
func TestBufferDecodeHostileCodecFrames(t *testing.T) {
	schema := particle.PositionOnly()
	hostile := func(name string, enc func(e *writer)) {
		t.Helper()
		d := roundTrip(t, enc)
		if _, err := decodeBuffer(d, 1<<20); err == nil {
			t.Errorf("%s: hostile buffer frame accepted", name)
		}
	}
	hostile("unknown codec", func(e *writer) {
		encodeWireSchema(e, schema)
		e.u64(1)
		e.u8(maxWireCodec + 1)
		e.uvarint(24)
		e.bytes(make([]byte, 24))
	})
	hostile("raw length mismatch", func(e *writer) {
		encodeWireSchema(e, schema)
		e.u64(2)
		e.u8(wireCodecRaw)
		e.uvarint(24)
		e.bytes(make([]byte, 24))
	})
	hostile("oversized compressed claim", func(e *writer) {
		encodeWireSchema(e, schema)
		e.u64(1)
		e.u8(wireCodecLossless)
		e.uvarint(1 << 18)
		e.bytes(make([]byte, 1<<18))
	})
	hostile("garbage compressed payload", func(e *writer) {
		encodeWireSchema(e, schema)
		e.u64(4)
		e.u8(wireCodecLossless)
		e.uvarint(10)
		e.bytes([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	})
}

// TestBufferMultiBlockRoundTrip crosses the wireBlockRecords split
// (protocol v3 cuts lossless payloads into parallel codec blocks): a
// buffer spanning several wire blocks — including a ragged tail — must
// round-trip bit-exactly, and the decoder must reconstruct the block
// counts from the record total alone.
func TestBufferMultiBlockRoundTrip(t *testing.T) {
	for _, n := range []int{wireBlockRecords, wireBlockRecords + 1, 2*wireBlockRecords + 137} {
		buf := particle.Uniform(particle.Uintah(), geom.UnitBox(), n, 7, 0)
		d := roundTrip(t, func(e *writer) { encodeBuffer(e, buf, wireCodecLossless) })
		got, err := decodeBuffer(d, 1<<26)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got.Encode(), buf.Encode()) {
			t.Fatalf("n=%d: multi-block wire round trip is not byte-identical", n)
		}
	}
}

// TestBufferMultiBlockHostile corrupts a multi-block lossless frame
// structurally: a torn frame and a payload padded past the last block
// must both be rejected — the decoder must never misalign block
// boundaries. (A flipped byte inside a field payload is content
// corruption, the payload CRC's job, not the wire framing's.)
func TestBufferMultiBlockHostile(t *testing.T) {
	buf := particle.Uniform(particle.Uintah(), geom.UnitBox(), wireBlockRecords+200, 7, 0)
	var fb frameBuf
	e := newWriter(&fb)
	encodeBuffer(e, buf, wireCodecLossless)
	if e.err != nil {
		t.Fatal(e.err)
	}
	torn := append([]byte(nil), fb.b[:len(fb.b)-50]...)
	if _, err := decodeBuffer(newReader(bytes.NewReader(torn)), 1<<26); err == nil {
		t.Error("torn second block accepted")
	}

	// Rebuild the frame with garbage appended inside the length-prefixed
	// payload: SplitFrames must report the trailing bytes.
	data := make([]byte, buf.Len()*buf.Schema().Stride())
	buf.EncodeRecordsInto(data, 0, buf.Len())
	payload, ok := compressWirePayload(buf.Schema(), data, nil)
	if !ok {
		t.Fatal("lossless wire payload did not shrink")
	}
	var padded frameBuf
	pe := newWriter(&padded)
	encodeWireSchema(pe, buf.Schema())
	pe.u64(uint64(buf.Len()))
	pe.u8(wireCodecLossless)
	pe.uvarint(uint64(len(payload) + 8))
	pe.bytes(append(append([]byte(nil), payload...), 1, 2, 3, 4, 5, 6, 7, 8))
	if pe.err != nil {
		t.Fatal(pe.err)
	}
	if _, err := decodeBuffer(newReader(bytes.NewReader(padded.b)), 1<<26); err == nil {
		t.Error("payload with trailing bytes after the last block accepted")
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	for _, s := range []*particle.Schema{particle.Uintah(), particle.PositionOnly()} {
		d := roundTrip(t, func(e *writer) { encodeWireSchema(e, s) })
		got, err := decodeWireSchema(d)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(s) {
			t.Fatalf("schema %v decoded as %v", s, got)
		}
	}
}

func TestStreamFrameRoundTrip(t *testing.T) {
	buf := particle.Uniform(particle.PositionOnly(), geom.UnitBox(), 33, 3, 1)
	want := &streamFrame{
		Level: 2, Done: true,
		Stats: wireStats{Read: rdr.Stats{ParticlesRead: 33, BytesRead: 33 * 24}},
		Buf:   buf,
	}
	d := roundTrip(t, func(e *writer) { encodeStreamFrame(e, want, wireCodecLossless) })
	got, err := decodeStreamFrame(d, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got.Level != want.Level || got.Done != want.Done || got.Stats != want.Stats || !got.Buf.Equal(buf) {
		t.Fatalf("stream frame mismatch: %+v", got)
	}
}

func TestFloatsBlobNamesRoundTrip(t *testing.T) {
	d := roundTrip(t, func(e *writer) { encodeFloats(e, []float64{1, math.NaN(), math.Copysign(0, -1)}) })
	fs, err := decodeFloats(d, 10)
	if err != nil || len(fs) != 3 || fs[0] != 1 || !math.IsNaN(fs[1]) || math.Signbit(fs[2]) == false {
		t.Fatalf("floats: %v %v", fs, err)
	}
	d = roundTrip(t, func(e *writer) { encodeBlob(e, []byte("json-ish")) })
	b, err := decodeBlob(d, 100)
	if err != nil || string(b) != "json-ish" {
		t.Fatalf("blob: %q %v", b, err)
	}
	d = roundTrip(t, func(e *writer) { encodeNames(e, []string{"a", "b@3"}) })
	ns, err := decodeNames(d)
	if err != nil || len(ns) != 2 || ns[1] != "b@3" {
		t.Fatalf("names: %v %v", ns, err)
	}
}

func TestFrameLimit(t *testing.T) {
	var out bytes.Buffer
	if err := writeFrame(&out, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(bytes.NewReader(out.Bytes()), 50); err == nil {
		t.Fatal("oversized frame accepted")
	}
	body, err := readFrame(bytes.NewReader(out.Bytes()), 100)
	if err != nil || len(body) != 100 {
		t.Fatalf("frame: %d bytes, %v", len(body), err)
	}
}

// TestRequestBoundsEnforced pins the server-side request-parameter
// bounds added after wiretaint flagged the unchecked path: a hostile K
// or Dims in a single request frame used to reach make() sizes in the
// query layer (KNN result buffers, DensityGrid cell arrays) before any
// dataset was even resolved — a one-frame denial of service.
func TestRequestBoundsEnforced(t *testing.T) {
	cases := []struct {
		name string
		req  request
	}{
		{"knn k", request{Op: opKNN, Dataset: "sim", K: maxReqK + 1}},
		{"grid axis", request{Op: opDensityGrid, Dataset: "sim", Dims: geom.I3(maxReqGridAxis+1, 1, 1)}},
		{"grid cells", request{Op: opDensityGrid, Dataset: "sim", Dims: geom.I3(1<<12, 1<<12, 2)}},
		{"levels", request{Op: opQueryBox, Dataset: "sim", Levels: maxReqLevels + 1}},
		{"readers", request{Op: opQueryBox, Dataset: "sim", Readers: maxReqReaders + 1}},
	}
	for _, tc := range cases {
		d := roundTrip(t, func(e *writer) { encodeRequest(e, &tc.req) })
		if _, err := decodeRequest(d); err == nil {
			t.Errorf("%s: hostile request decoded without error: %+v", tc.name, tc.req)
		}
	}
	// The limits admit every legitimate request: a maximal one still
	// round-trips.
	ok := request{
		Op: opDensityGrid, Dataset: "sim",
		K: maxReqK, Dims: geom.I3(1<<11, 1<<11, 1),
		Levels: maxReqLevels, Readers: maxReqReaders,
	}
	d := roundTrip(t, func(e *writer) { encodeRequest(e, &ok) })
	if _, err := decodeRequest(d); err != nil {
		t.Fatalf("maximal legitimate request rejected: %v", err)
	}
}

// TestSchemaComponentBound rejects a schema field claiming a hostile
// component count: stride arithmetic multiplies by it, so an unchecked
// value scales every later allocation.
func TestSchemaComponentBound(t *testing.T) {
	d := roundTrip(t, func(e *writer) {
		e.uvarint(1)
		e.str("pos")
		e.u8(uint8(particle.Float64))
		e.uvarint(maxWireComponents + 1)
	})
	if _, err := decodeWireSchema(d); err == nil {
		t.Fatal("schema with hostile component count accepted")
	}
}

func TestTruncatedDecodeFailsCleanly(t *testing.T) {
	var fb frameBuf
	e := newWriter(&fb)
	encodeRequest(e, &request{Op: opQueryBox, Dataset: "x"})
	if e.err != nil {
		t.Fatal(e.err)
	}
	for cut := 0; cut < len(fb.b); cut += 7 {
		d := newReader(bytes.NewReader(fb.b[:cut]))
		if _, err := decodeRequest(d); err == nil {
			t.Fatalf("truncation at %d of %d decoded without error", cut, len(fb.b))
		}
	}
}
