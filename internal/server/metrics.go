package server

import (
	"encoding/json"
	"sync/atomic"
	"time"

	rdr "spio/internal/reader"
)

// metrics is the server's live counter set, updated per request with
// atomics (many worker goroutines, no lock).
type metrics struct {
	startNano int64

	requests   atomic.Int64
	errors     atomic.Int64
	overloaded atomic.Int64
	drained    atomic.Int64

	bytesServed atomic.Int64

	filesOpened    atomic.Int64
	particlesRead  atomic.Int64
	bytesRead      atomic.Int64
	cacheHits      atomic.Int64
	bytesFromCache atomic.Int64

	queueWaitNs atomic.Int64
	serviceNs   atomic.Int64

	streams       atomic.Int64
	streamLevels  atomic.Int64
	streamCancels atomic.Int64

	activeConns atomic.Int64
}

// note records one completed request's telemetry.
func (m *metrics) note(st *wireStats) {
	m.requests.Add(1)
	m.filesOpened.Add(int64(st.Read.FilesOpened))
	m.particlesRead.Add(st.Read.ParticlesRead)
	m.bytesRead.Add(st.Read.BytesRead)
	m.cacheHits.Add(st.Read.CacheHits)
	m.bytesFromCache.Add(st.Read.BytesFromCache)
	m.queueWaitNs.Add(st.QueueWait)
	m.serviceNs.Add(st.Service)
}

// DatasetMetrics is one mounted dataset's slice of the metrics snapshot.
type DatasetMetrics struct {
	// Dir is the dataset directory being served.
	Dir string `json:"dir"`
	// Particles and Files describe the dataset's size.
	Particles int64 `json:"particles"`
	Files     int   `json:"files"`
	// FileCache is the dataset's open-file cache counters, including
	// the eviction and bytes-from-cache satellites.
	FileCache rdr.CacheStats `json:"file_cache"`
}

// MetricsSnapshot is the JSON image served on /metrics, by `spiod
// stats`, and published to expvar — the Darshan-style aggregate view of
// what the daemon's I/O has been doing.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	Requests   int64 `json:"requests"`
	Errors     int64 `json:"errors"`
	Overloaded int64 `json:"overloaded"`
	Drained    int64 `json:"drained"`

	BytesServed int64 `json:"bytes_served"`

	FilesOpened    int64 `json:"files_opened"`
	ParticlesRead  int64 `json:"particles_read"`
	BytesRead      int64 `json:"bytes_read"`
	CacheHits      int64 `json:"cache_hits"`
	BytesFromCache int64 `json:"bytes_from_cache"`

	QueueWaitNs int64 `json:"queue_wait_ns"`
	ServiceNs   int64 `json:"service_ns"`

	Streams       int64 `json:"streams"`
	StreamLevels  int64 `json:"stream_levels"`
	StreamCancels int64 `json:"stream_cancels"`

	ActiveConns int64 `json:"active_conns"`

	BlockCache   BlockCacheStats           `json:"block_cache"`
	DecodedCache DecodedCacheStats         `json:"decoded_cache"`
	Datasets     map[string]DatasetMetrics `json:"datasets"`
}

// Snapshot assembles the current metrics image: request counters, the
// shared block cache, and every mounted dataset's file-cache counters.
func (s *Server) Snapshot() MetricsSnapshot {
	m := &s.metrics
	snap := MetricsSnapshot{
		UptimeSeconds:  time.Duration(time.Now().UnixNano() - m.startNano).Seconds(),
		Requests:       m.requests.Load(),
		Errors:         m.errors.Load(),
		Overloaded:     m.overloaded.Load(),
		Drained:        m.drained.Load(),
		BytesServed:    m.bytesServed.Load(),
		FilesOpened:    m.filesOpened.Load(),
		ParticlesRead:  m.particlesRead.Load(),
		BytesRead:      m.bytesRead.Load(),
		CacheHits:      m.cacheHits.Load(),
		BytesFromCache: m.bytesFromCache.Load(),
		QueueWaitNs:    m.queueWaitNs.Load(),
		ServiceNs:      m.serviceNs.Load(),
		Streams:        m.streams.Load(),
		StreamLevels:   m.streamLevels.Load(),
		StreamCancels:  m.streamCancels.Load(),
		ActiveConns:    m.activeConns.Load(),
		BlockCache:     s.cache.Stats(),
		DecodedCache:   s.dcache.Stats(),
		Datasets:       map[string]DatasetMetrics{},
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, mt := range s.mounts {
		mt.mu.Lock()
		for ref, ds := range mt.open {
			key := name
			if mt.series {
				key = name + "@" + ref
			}
			snap.Datasets[key] = DatasetMetrics{
				Dir:       ds.Dir(),
				Particles: ds.Meta().Total,
				Files:     len(ds.Meta().Files),
				FileCache: ds.CacheStats(),
			}
		}
		mt.mu.Unlock()
	}
	return snap
}

// snapshotJSON is the /metrics and opStats body.
func (s *Server) snapshotJSON() []byte {
	b, err := json.MarshalIndent(s.Snapshot(), "", "  ")
	if err != nil {
		// The snapshot is plain counters; marshaling cannot fail. Keep the
		// wire alive anyway.
		return []byte("{}")
	}
	return append(b, '\n')
}
