package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"spio/internal/geom"
	"spio/internal/particle"
	rdr "spio/internal/reader"
)

// Wire protocol. Every message travels in a length-prefixed frame:
//
//	frame length u32 | body
//
// The connection opens with a hello (magic + protocol version) from the
// client, acknowledged by a response header; after that the client
// sends one request frame at a time and reads the response frame(s).
// Progressive streams interleave server level-frames with client ack
// frames — the explicit backpressure that lets a renderer cancel after
// a coarse prefix.
//
// Bodies are encoded with the same sticky-error writer/reader idiom as
// internal/format's binio (little-endian, uvarint lengths), kept in
// deliberately name-paired encode/decode functions so the spiolint
// wiresym analyzer statically checks every pair for width/order/count
// symmetry — the scda position: the wire format is a checkable
// writer/reader pact, not two hand-maintained halves.

const (
	protoMagic   = "SPIOSRV1"
	protoVersion = 4 // v4 added the gateway extensions: hello feature bits, per-file base override, raw density, partial-result flag, drain notices
)

// Feature bits exchanged in the hello (client advertises, server
// answers with its own set). They exist so a gateway can verify its
// backends speak the scatter-gather extensions before routing to them;
// a plain client can ignore them entirely.
const (
	// featureBaseOverride: the server honors request.Base as the per-file
	// LOD level-0 budget instead of deriving it from its own file count.
	featureBaseOverride uint32 = 1 << 0
	// featurePartialResults: response stats carry the partial-result
	// flag a gateway sets when a shard's region is missing.
	featurePartialResults uint32 = 1 << 1
	// featureRawDensity: the server honors reqFlagRawDensity, returning
	// unscaled density counts plus the sampled-particle count.
	featureRawDensity uint32 = 1 << 2
	// featureDrainNotice: on graceful shutdown the server sends idle
	// connections a statusDraining frame before closing them, so the
	// next caller sees ErrDraining instead of a raw connection error.
	featureDrainNotice uint32 = 1 << 3

	// serverFeatures is everything this build implements.
	serverFeatures = featureBaseOverride | featurePartialResults | featureRawDensity | featureDrainNotice
)

// Wire buffer codecs. The client requests one in its hello; every
// buffer frame then carries the codec actually used (self-describing),
// so the server can fall back to raw per buffer whenever compression
// doesn't pay — the stream shape is identical either way, which keeps
// the encode/decode pair symmetric for the wiresym analyzer.
const (
	wireCodecRaw      = 0 // raw AoS record image
	wireCodecLossless = 1 // per-field lossless compression (particle.LosslessSpec)
	maxWireCodec      = wireCodecLossless
)

// Request op codes.
const (
	opMeta        = 1 // resolve a dataset reference, return its metadata image
	opQueryBox    = 2 // box query (QueryBox / ReadAll via NoFilter)
	opKNN         = 3 // k-nearest-neighbour search
	opHalo        = 4 // patch + ghost-margin read
	opDensityGrid = 5 // approximate density field from a LOD prefix
	opProgressive = 6 // level-by-level stream with per-level acks
	opStats       = 7 // server metrics snapshot (JSON)
	opList        = 8 // list mounted dataset references
)

// Response status codes.
const (
	statusOK         = 0
	statusError      = 1 // generic failure; message carries the error
	statusOverloaded = 2 // admission queue full: back off and retry
	statusDraining   = 3 // server shutting down: redial later
	statusBudget     = 4 // response exceeds the per-request byte budget
)

// Progressive stream acks (client -> server between level frames).
const (
	ackNext   = 1
	ackCancel = 2
)

// Decode-side sanity bounds (the frame length bounds total size; these
// bound individual allocations before their bytes arrive).
const (
	maxWireString = 4096
	maxWireFields = 256
	maxWireNames  = 1 << 16
	// maxWireComponents caps a decoded field's component count; it must
	// be checked before the value lands in particle.Field, because the
	// component count multiplies into every per-record stride and
	// per-field allocation downstream.
	maxWireComponents = 1024
)

// Request-parameter bounds, enforced in decodeRequest before the values
// are stored. Each of these sizes an allocation or a fan-out on the
// server before any dataset byte is read (K sizes KNN result buffers,
// Dims sizes the density grid, Levels/Readers size the LOD schedule),
// so an unchecked value is a one-frame denial of service.
const (
	maxReqK        = 1 << 20 // KNN neighbours
	maxReqGridAxis = 1 << 20 // density grid cells per axis
	maxReqCells    = 1 << 22 // density grid cells total (32 MiB of float64)
	maxReqLevels   = 1 << 10 // LOD levels
	maxReqReaders  = 1 << 16 // simulated reader fan-out
	maxReqBase     = 1 << 40 // per-file LOD base override (sizes prefix reads)
)

// Request flag bits (request.Flags).
const (
	// reqFlagRawDensity asks a density-grid op for unscaled per-cell
	// sample counts plus the sampled-particle count, so a gateway can sum
	// shards and scale once against the merged total.
	reqFlagRawDensity uint8 = 1 << 0
)

// writer is a sticky-error little-endian encoder, the wire twin of
// internal/format's binio writer.
type writer struct {
	w   io.Writer
	err error
}

func newWriter(w io.Writer) *writer { return &writer{w: w} }

func (e *writer) bytes(p []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(p)
}

func (e *writer) u8(v uint8) { e.bytes([]byte{v}) }

func (e *writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.bytes(b[:])
}

func (e *writer) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.bytes(b[:])
}

func (e *writer) i64(v int64) { e.u64(uint64(v)) }

func (e *writer) uvarint(v uint64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	e.bytes(b[:n])
}

func (e *writer) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *writer) str(s string) {
	e.uvarint(uint64(len(s)))
	e.bytes([]byte(s))
}

func (e *writer) vec3(v geom.Vec3) {
	e.f64(v.X)
	e.f64(v.Y)
	e.f64(v.Z)
}

func (e *writer) box(b geom.Box) {
	e.vec3(b.Lo)
	e.vec3(b.Hi)
}

func (e *writer) idx3(i geom.Idx3) {
	e.uvarint(uint64(i.X))
	e.uvarint(uint64(i.Y))
	e.uvarint(uint64(i.Z))
}

// reader is the sticky-error decoding counterpart of writer. It
// decodes bytes that arrived over the network, so every value it
// produces is attacker-controlled until a bound check proves
// otherwise.
//
//spio:untrusted-input
type reader struct {
	r   io.Reader
	n   int64
	err error
}

func newReader(r io.Reader) *reader { return &reader{r: r} }

func (d *reader) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *reader) bytes(p []byte) {
	if d.err != nil {
		return
	}
	if _, err := io.ReadFull(d.r, p); err != nil {
		d.err = fmt.Errorf("spiod: short read at offset %d: %w", d.n, err)
		return
	}
	d.n += int64(len(p))
}

func (d *reader) u8() uint8 {
	var b [1]byte
	d.bytes(b[:])
	return b[0]
}

func (d *reader) u32() uint32 {
	var b [4]byte
	d.bytes(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (d *reader) u64() uint64 {
	var b [8]byte
	d.bytes(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (d *reader) i64() int64 { return int64(d.u64()) }

func (d *reader) uvarint() uint64 {
	v, err := binary.ReadUvarint(wireByteReader{d})
	if err != nil && d.err == nil {
		d.err = fmt.Errorf("spiod: bad varint at offset %d: %w", d.n, err)
	}
	return v
}

func (d *reader) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *reader) str(maxLen uint64) string {
	n := d.uvarint()
	if n > maxLen {
		d.fail(fmt.Errorf("spiod: string length %d exceeds limit %d", n, maxLen))
		return ""
	}
	b := make([]byte, n)
	d.bytes(b)
	return string(b)
}

func (d *reader) vec3() geom.Vec3 {
	return geom.Vec3{X: d.f64(), Y: d.f64(), Z: d.f64()}
}

func (d *reader) boxv() geom.Box {
	return geom.Box{Lo: d.vec3(), Hi: d.vec3()}
}

func (d *reader) idx3() geom.Idx3 {
	return geom.Idx3{X: int(d.uvarint()), Y: int(d.uvarint()), Z: int(d.uvarint())}
}

// wireByteReader adapts reader for binary.ReadUvarint.
type wireByteReader struct{ d *reader }

func (b wireByteReader) ReadByte() (byte, error) {
	var buf [1]byte
	b.d.bytes(buf[:])
	if b.d.err != nil {
		return 0, b.d.err
	}
	return buf[0], nil
}

// frameBuf accumulates one frame body in memory.
type frameBuf struct{ b []byte }

func (f *frameBuf) Write(p []byte) (int, error) {
	f.b = append(f.b, p...)
	return len(p), nil
}

// writeFrame sends one length-prefixed frame.
func writeFrame(w io.Writer, body []byte) error {
	e := newWriter(w)
	e.u32(uint32(len(body)))
	e.bytes(body)
	return e.err
}

// readFrame receives one length-prefixed frame, refusing bodies larger
// than max.
func readFrame(r io.Reader, max uint32) ([]byte, error) {
	d := newReader(r)
	n := d.u32()
	if d.err != nil {
		return nil, d.err
	}
	if n > max {
		return nil, fmt.Errorf("spiod: frame of %d bytes exceeds limit %d", n, max)
	}
	body := make([]byte, n)
	d.bytes(body)
	if d.err != nil {
		return nil, d.err
	}
	return body, nil
}

// hello opens every connection: magic, protocol version, the response
// codec the client requests for buffer payloads (the server may still
// answer raw — frames are self-describing), and the feature bits the
// client implements.
type hello struct {
	Version  uint32
	Codec    uint8
	Features uint32
}

func encodeHello(e *writer, h *hello) {
	e.bytes([]byte(protoMagic))
	e.u32(h.Version)
	e.u8(h.Codec)
	e.u32(h.Features)
}

func decodeHello(d *reader) (*hello, error) {
	magic := make([]byte, len(protoMagic))
	d.bytes(magic)
	if d.err == nil && string(magic) != protoMagic {
		return nil, fmt.Errorf("spiod: not a spio serving connection (magic %q)", magic)
	}
	var h hello
	h.Version = d.u32()
	h.Codec = d.u8()
	h.Features = d.u32()
	if d.err == nil && h.Codec > maxWireCodec {
		return nil, fmt.Errorf("spiod: unknown wire codec %d requested", h.Codec)
	}
	if d.err != nil {
		return nil, d.err
	}
	return &h, nil
}

// helloAck is the payload of the server's hello response: the feature
// bits the server implements. A gateway checks its backends advertise
// the scatter-gather extensions here before building a shard map over
// them.
type helloAck struct {
	Features uint32
}

func encodeHelloAck(e *writer, a *helloAck) {
	e.u32(a.Features)
}

func decodeHelloAck(d *reader) (*helloAck, error) {
	var a helloAck
	a.Features = d.u32()
	if d.err != nil {
		return nil, d.err
	}
	return &a, nil
}

// request is the flat request record: one op code plus the union of
// every op's parameters, always encoded in full so the stream shape is
// identical for all ops.
type request struct {
	Op      uint8
	Dataset string // dataset reference: name, name@N, name@latest
	Box     geom.Box
	Point   geom.Vec3
	K       int
	Halo    float64
	Dims    geom.Idx3
	Levels  int
	Readers int
	// NoFilter returns whole files without box filtering (ReadAll).
	NoFilter bool
	// Fields projects the result onto the named fields.
	Fields []string
	// Base overrides the per-file LOD level-0 budget (0 = derive from
	// this server's own file count). A gateway passes the merged
	// dataset's base so every shard cuts the same level boundaries.
	Base int64
	// Flags carries the reqFlag* bits.
	Flags uint8
}

func encodeRequest(e *writer, r *request) {
	e.u8(r.Op)
	e.str(r.Dataset)
	e.box(r.Box)
	e.vec3(r.Point)
	e.uvarint(uint64(r.K))
	e.f64(r.Halo)
	e.idx3(r.Dims)
	e.uvarint(uint64(r.Levels))
	e.uvarint(uint64(r.Readers))
	var nf uint8
	if r.NoFilter {
		nf = 1
	}
	e.u8(nf)
	e.uvarint(uint64(len(r.Fields)))
	for _, f := range r.Fields {
		e.str(f)
	}
	e.uvarint(uint64(r.Base))
	e.u8(r.Flags)
}

func decodeRequest(d *reader) (*request, error) {
	var r request
	r.Op = d.u8()
	r.Dataset = d.str(maxWireString)
	r.Box = d.boxv()
	r.Point = d.vec3()
	k := d.uvarint()
	if k > maxReqK {
		d.fail(fmt.Errorf("spiod: k=%d exceeds limit %d", k, maxReqK))
	}
	r.K = int(k)
	r.Halo = d.f64()
	dims := d.idx3()
	if dims.X < 0 || dims.X > maxReqGridAxis ||
		dims.Y < 0 || dims.Y > maxReqGridAxis ||
		dims.Z < 0 || dims.Z > maxReqGridAxis ||
		int64(dims.X)*int64(dims.Y)*int64(dims.Z) > maxReqCells {
		d.fail(fmt.Errorf("spiod: grid dims %dx%dx%d exceed limit %d cells", dims.X, dims.Y, dims.Z, maxReqCells))
	}
	r.Dims = dims
	levels := d.uvarint()
	if levels > maxReqLevels {
		d.fail(fmt.Errorf("spiod: levels=%d exceeds limit %d", levels, maxReqLevels))
	}
	r.Levels = int(levels)
	readers := d.uvarint()
	if readers > maxReqReaders {
		d.fail(fmt.Errorf("spiod: readers=%d exceeds limit %d", readers, maxReqReaders))
	}
	r.Readers = int(readers)
	r.NoFilter = d.u8() != 0
	n := d.uvarint()
	if n > maxWireFields {
		d.fail(fmt.Errorf("spiod: %d projected fields exceeds limit %d", n, maxWireFields))
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		r.Fields = append(r.Fields, d.str(maxWireString))
	}
	base := d.uvarint()
	if base > maxReqBase {
		d.fail(fmt.Errorf("spiod: base=%d exceeds limit %d", base, maxReqBase))
	}
	r.Base = int64(base)
	r.Flags = d.u8()
	if d.err != nil {
		return nil, d.err
	}
	return &r, nil
}

// respHeader opens every response.
type respHeader struct {
	Status uint8
	Msg    string // error text when Status != statusOK
}

func encodeRespHeader(e *writer, h *respHeader) {
	e.u8(h.Status)
	e.str(h.Msg)
}

func decodeRespHeader(d *reader) (*respHeader, error) {
	var h respHeader
	h.Status = d.u8()
	h.Msg = d.str(1 << 20)
	if d.err != nil {
		return nil, d.err
	}
	return &h, nil
}

// wireStats is the per-request I/O telemetry attached to responses.
type wireStats struct {
	Read      rdr.Stats
	QueueWait int64 // nanoseconds spent queued before a worker slot freed
	Service   int64 // nanoseconds of execution on the worker
}

func encodeStats(e *writer, st *wireStats) {
	e.i64(int64(st.Read.FilesOpened))
	e.i64(st.Read.ParticlesRead)
	e.i64(st.Read.BytesRead)
	e.i64(st.Read.ParticlesKept)
	e.i64(st.Read.CacheHits)
	e.i64(st.Read.BytesFromCache)
	e.i64(st.QueueWait)
	e.i64(st.Service)
	var partial uint8
	if st.Read.Partial {
		partial = 1
	}
	e.u8(partial)
}

func decodeStats(d *reader) (*wireStats, error) {
	var st wireStats
	st.Read.FilesOpened = int(d.i64())
	st.Read.ParticlesRead = d.i64()
	st.Read.BytesRead = d.i64()
	st.Read.ParticlesKept = d.i64()
	st.Read.CacheHits = d.i64()
	st.Read.BytesFromCache = d.i64()
	st.QueueWait = d.i64()
	st.Service = d.i64()
	st.Read.Partial = d.u8() != 0
	if d.err != nil {
		return nil, d.err
	}
	return &st, nil
}

// Schema on the wire: field count, then (name, kind, components) per
// field.
func encodeWireSchema(e *writer, s *particle.Schema) {
	e.uvarint(uint64(s.NumFields()))
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		e.str(f.Name)
		e.u8(uint8(f.Kind))
		e.uvarint(uint64(f.Components))
	}
}

func decodeWireSchema(d *reader) (*particle.Schema, error) {
	n := d.uvarint()
	if n > maxWireFields {
		d.fail(fmt.Errorf("spiod: schema with %d fields exceeds limit %d", n, maxWireFields))
	}
	var fields []particle.Field
	for i := uint64(0); i < n && d.err == nil; i++ {
		var f particle.Field
		f.Name = d.str(maxWireString)
		f.Kind = particle.Kind(d.u8())
		comps := d.uvarint()
		if comps > maxWireComponents {
			d.fail(fmt.Errorf("spiod: field with %d components exceeds limit %d", comps, maxWireComponents))
		}
		f.Components = int(comps)
		if d.err == nil && f.Kind.Size() == 0 {
			d.fail(fmt.Errorf("spiod: unknown field kind %d", f.Kind))
		}
		fields = append(fields, f)
	}
	if d.err != nil {
		return nil, d.err
	}
	return particle.NewSchema(fields)
}

// Buffer on the wire: schema, record count, actual codec, payload
// length, then the payload — the raw AoS record image (wireCodecRaw) or
// a concatenation of particle block frames (wireCodecLossless), cut
// every wireBlockRecords records. The split is deterministic from the
// record count, so the decoder reconstructs the block boundaries from
// the self-describing frames alone and both sides can run the blocks
// through the parallel batch codec. A raw payload is exactly the
// data-file encoding, so a streamed level is bit-identical to the file
// prefix it came from; a compressed one decodes to it. The server
// encodes with the negotiated codec but keeps raw whenever compression
// doesn't shrink the buffer, so codec is a ceiling, not a promise.

// wireBlockRecords cuts egress buffers into codec blocks: small enough
// that encode/decode parallelism has work units, large enough that the
// per-block framing stays noise.
const wireBlockRecords = 8192

func encodeBuffer(e *writer, buf *particle.Buffer, codec uint8) {
	encodeWireSchema(e, buf.Schema())
	e.u64(uint64(buf.Len()))
	data := make([]byte, buf.Len()*buf.Schema().Stride())
	buf.EncodeRecordsInto(data, 0, buf.Len())
	payload, actual := data, uint8(wireCodecRaw)
	var scratch *[]byte
	if codec == wireCodecLossless {
		scratch, _ = wireCompPool.Get().(*[]byte)
		if scratch == nil {
			scratch = new([]byte)
		}
		if comp, ok := compressWirePayload(buf.Schema(), data, (*scratch)[:0]); ok {
			payload, actual = comp, wireCodecLossless
			*scratch = comp
		}
	}
	e.u8(actual)
	e.uvarint(uint64(len(payload)))
	e.bytes(payload)
	if scratch != nil {
		// e.bytes copied the payload into the frame; the scratch (and
		// whatever capacity it grew) goes back to the pool.
		wireCompPool.Put(scratch)
	}
}

// wireCompPool recycles the compressed-payload staging buffers of
// encodeBuffer: egress compression is per-response, and a fresh
// multi-megabyte slice per response is pure allocator churn.
var wireCompPool sync.Pool // *[]byte

// compressWirePayload compresses an AoS image into the concatenated
// block frames of a lossless wire payload appended onto dst (callers
// pass recycled scratch), compressing the blocks in parallel when
// there are spare cores. The egress codec is the throughput-first
// FastSpec, narrowed by a probe of the leading records so noisy
// columns that would not pay for their codec ride raw instead of
// costing full LZ time every block — the frames are self-describing,
// so neither the spec choice nor the narrowing ever reaches the wire
// contract. ok is false when compression does not shrink the image.
func compressWirePayload(schema *particle.Schema, data []byte, dst []byte) ([]byte, bool) {
	stride := schema.Stride()
	count := len(data) / stride
	blocks := make([][]byte, 0, count/wireBlockRecords+1)
	for lo := 0; lo < count; lo += wireBlockRecords {
		hi := min(lo+wireBlockRecords, count)
		blocks = append(blocks, data[lo*stride:hi*stride])
	}
	spec := particle.NarrowSpec(schema, particle.FastSpec(schema), data)
	out, err := particle.AppendCompressedBlocks(dst, schema, spec, blocks, 0)
	if err != nil || len(out)-len(dst) >= len(data) {
		return nil, false
	}
	return out, true
}

// decompressWirePayload reverses compressWirePayload into dst (the raw
// AoS image of count records): it reconstructs the deterministic block
// split, walks the frame boundaries, and decodes the blocks in parallel
// into disjoint regions of dst.
func decompressWirePayload(schema *particle.Schema, stream []byte, count int, dst []byte) error {
	counts := make([]int, 0, count/wireBlockRecords+1)
	for lo := 0; lo < count; lo += wireBlockRecords {
		counts = append(counts, min(wireBlockRecords, count-lo))
	}
	blocks, err := particle.SplitFrames(schema, stream, counts)
	if err != nil {
		return err
	}
	return particle.DecompressBlocks(schema, blocks, dst, 0)
}

// decodeBuffer decodes a buffer, refusing decoded payloads larger than
// limit bytes (the caller's frame bound; the frame is already in
// memory, the limit guards the record-count allocation).
func decodeBuffer(d *reader, limit int64) (*particle.Buffer, error) {
	schema, err := decodeWireSchema(d)
	if err != nil {
		return nil, err
	}
	n := d.u64()
	if n > uint64(limit) {
		// Stride is at least the position field, so n records never fit
		// under limit bytes; checking n first keeps size from overflowing.
		d.fail(fmt.Errorf("spiod: buffer of %d records exceeds limit %d bytes", n, limit))
	}
	size := n * uint64(schema.Stride())
	if d.err == nil && size > uint64(limit) {
		d.fail(fmt.Errorf("spiod: buffer payload of %d bytes exceeds limit %d", size, limit))
	}
	codec := d.u8()
	plen := d.uvarint()
	if d.err == nil && codec > maxWireCodec {
		d.fail(fmt.Errorf("spiod: unknown buffer codec %d", codec))
	}
	if d.err == nil && codec == wireCodecRaw && plen != size {
		d.fail(fmt.Errorf("spiod: raw buffer payload of %d bytes, want %d", plen, size))
	}
	// The per-field raw fallback bounds any compressed stream by the raw
	// column bytes plus the per-block, per-field framing.
	nblocks := (n + wireBlockRecords - 1) / wireBlockRecords
	if d.err == nil && plen > size+nblocks*uint64(schema.NumFields())*16 {
		d.fail(fmt.Errorf("spiod: compressed payload of %d bytes exceeds raw size %d", plen, size))
	}
	if d.err != nil {
		return nil, d.err
	}
	data := make([]byte, plen)
	d.bytes(data)
	if d.err != nil {
		return nil, d.err
	}
	if codec == wireCodecLossless {
		raw := make([]byte, size)
		if err := decompressWirePayload(schema, data, int(n), raw); err != nil {
			return nil, fmt.Errorf("spiod: %w", err)
		}
		data = raw
	}
	return particle.Decode(schema, data)
}

// Float slices (KNN distances, density grids).
func encodeFloats(e *writer, v []float64) {
	e.uvarint(uint64(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

func decodeFloats(d *reader, limit int) ([]float64, error) {
	n := d.uvarint()
	if n > uint64(limit) {
		d.fail(fmt.Errorf("spiod: float slice of %d exceeds limit %d", n, limit))
	}
	if d.err != nil {
		return nil, d.err
	}
	v := make([]float64, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		v = append(v, d.f64())
	}
	if d.err != nil {
		return nil, d.err
	}
	return v, nil
}

// Opaque byte payloads (metadata images, JSON snapshots).
func encodeBlob(e *writer, b []byte) {
	e.uvarint(uint64(len(b)))
	e.bytes(b)
}

func decodeBlob(d *reader, limit uint64) ([]byte, error) {
	n := d.uvarint()
	if n > limit {
		d.fail(fmt.Errorf("spiod: blob of %d bytes exceeds limit %d", n, limit))
	}
	if d.err != nil {
		return nil, d.err
	}
	b := make([]byte, n)
	d.bytes(b)
	if d.err != nil {
		return nil, d.err
	}
	return b, nil
}

// Name lists (opList).
func encodeNames(e *writer, names []string) {
	e.uvarint(uint64(len(names)))
	for _, n := range names {
		e.str(n)
	}
}

func decodeNames(d *reader) ([]string, error) {
	n := d.uvarint()
	if n > maxWireNames {
		d.fail(fmt.Errorf("spiod: %d names exceeds limit %d", n, maxWireNames))
	}
	var names []string
	for i := uint64(0); i < n && d.err == nil; i++ {
		names = append(names, d.str(maxWireString))
	}
	if d.err != nil {
		return nil, d.err
	}
	return names, nil
}

// queryResp answers opQueryBox.
type queryResp struct {
	Stats wireStats
	Buf   *particle.Buffer
}

func encodeQueryResp(e *writer, r *queryResp, codec uint8) {
	encodeStats(e, &r.Stats)
	encodeBuffer(e, r.Buf, codec)
}

func decodeQueryResp(d *reader, limit int64) (*queryResp, error) {
	st, err := decodeStats(d)
	if err != nil {
		return nil, err
	}
	buf, err := decodeBuffer(d, limit)
	if err != nil {
		return nil, err
	}
	return &queryResp{Stats: *st, Buf: buf}, nil
}

// knnResp answers opKNN.
type knnResp struct {
	Stats wireStats
	Buf   *particle.Buffer
	Dists []float64
}

func encodeKNNResp(e *writer, r *knnResp, codec uint8) {
	encodeStats(e, &r.Stats)
	encodeBuffer(e, r.Buf, codec)
	encodeFloats(e, r.Dists)
}

func decodeKNNResp(d *reader, limit int64) (*knnResp, error) {
	st, err := decodeStats(d)
	if err != nil {
		return nil, err
	}
	buf, err := decodeBuffer(d, limit)
	if err != nil {
		return nil, err
	}
	dists, err := decodeFloats(d, int(limit/8)+1)
	if err != nil {
		return nil, err
	}
	return &knnResp{Stats: *st, Buf: buf, Dists: dists}, nil
}

// haloResp answers opHalo: the owned and ghost particles separately.
type haloResp struct {
	Stats wireStats
	Own   *particle.Buffer
	Ghost *particle.Buffer
}

func encodeHaloResp(e *writer, r *haloResp, codec uint8) {
	encodeStats(e, &r.Stats)
	encodeBuffer(e, r.Own, codec)
	encodeBuffer(e, r.Ghost, codec)
}

func decodeHaloResp(d *reader, limit int64) (*haloResp, error) {
	st, err := decodeStats(d)
	if err != nil {
		return nil, err
	}
	own, err := decodeBuffer(d, limit)
	if err != nil {
		return nil, err
	}
	ghost, err := decodeBuffer(d, limit)
	if err != nil {
		return nil, err
	}
	return &haloResp{Stats: *st, Own: own, Ghost: ghost}, nil
}

// densityResp answers opDensityGrid. For a raw request
// (reqFlagRawDensity) Counts are unscaled per-cell sample counts,
// Fraction is 1, and Sampled is the number of particles sampled — the
// inputs a gateway needs to sum shards and scale once against the
// merged total.
type densityResp struct {
	Stats    wireStats
	Counts   []float64
	Fraction float64
	Sampled  int64
}

func encodeDensityResp(e *writer, r *densityResp) {
	encodeStats(e, &r.Stats)
	encodeFloats(e, r.Counts)
	e.f64(r.Fraction)
	e.i64(r.Sampled)
}

func decodeDensityResp(d *reader, limit int64) (*densityResp, error) {
	st, err := decodeStats(d)
	if err != nil {
		return nil, err
	}
	counts, err := decodeFloats(d, int(limit/8)+1)
	if err != nil {
		return nil, err
	}
	frac := d.f64()
	sampled := d.i64()
	if d.err != nil {
		return nil, d.err
	}
	return &densityResp{Stats: *st, Counts: counts, Fraction: frac, Sampled: sampled}, nil
}

// streamFrame is one level increment of a progressive stream. Done
// marks the final frame; its buffer may be empty.
type streamFrame struct {
	Level int
	Done  bool
	Stats wireStats // cumulative over the stream so far
	Buf   *particle.Buffer
}

func encodeStreamFrame(e *writer, f *streamFrame, codec uint8) {
	e.uvarint(uint64(f.Level))
	var done uint8
	if f.Done {
		done = 1
	}
	e.u8(done)
	encodeStats(e, &f.Stats)
	encodeBuffer(e, f.Buf, codec)
}

func decodeStreamFrame(d *reader, limit int64) (*streamFrame, error) {
	var f streamFrame
	f.Level = int(d.uvarint())
	f.Done = d.u8() != 0
	st, err := decodeStats(d)
	if err != nil {
		return nil, err
	}
	f.Stats = *st
	buf, err := decodeBuffer(d, limit)
	if err != nil {
		return nil, err
	}
	f.Buf = buf
	return &f, nil
}

// Stream acks (client -> server between level frames).
func encodeAck(e *writer, ack uint8) {
	e.u8(ack)
}

func decodeAck(d *reader) (uint8, error) {
	ack := d.u8()
	if d.err != nil {
		return 0, d.err
	}
	return ack, nil
}
