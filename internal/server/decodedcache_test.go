package server

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"spio/internal/format"
	"spio/internal/geom"
	"spio/internal/lod"
	"spio/internal/particle"
	rdr "spio/internal/reader"
)

func TestDecodedCacheDisabled(t *testing.T) {
	for _, cap := range []int64{0, -1} {
		if c := NewDecodedCache(cap); c != nil {
			t.Errorf("NewDecodedCache(%d) != nil", cap)
		}
	}
	var c *DecodedCache
	if st := c.Stats(); st != (DecodedCacheStats{}) {
		t.Errorf("nil Stats() = %+v", st)
	}
}

func TestDecodedCacheHitMissEvict(t *testing.T) {
	c := NewDecodedCache(100)
	f := c.ForFile("a")
	if f.GetBlock(0) != nil {
		t.Fatal("hit on empty cache")
	}
	f.PutBlock(0, make([]byte, 40))
	f.PutBlock(1, make([]byte, 40))
	if f.GetBlock(0) == nil || f.GetBlock(1) == nil {
		t.Fatal("resident blocks missing")
	}
	// Touch 0 so 1 is LRU, then overflow: 1 must go, 0 must stay.
	f.GetBlock(0)
	f.PutBlock(2, make([]byte, 40))
	if f.GetBlock(1) != nil {
		t.Error("LRU block survived eviction")
	}
	if f.GetBlock(0) == nil || f.GetBlock(2) == nil {
		t.Error("MRU blocks evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
	if st.Used > 100 {
		t.Errorf("Used = %d exceeds capacity", st.Used)
	}
	if st.Blocks != 2 {
		t.Errorf("Blocks = %d, want 2", st.Blocks)
	}
	if st.Hits == 0 || st.Misses == 0 || st.BytesFromCache == 0 || st.BytesDecoded != 120 {
		t.Errorf("counters off: %+v", st)
	}
}

func TestDecodedCacheFilesAreIsolated(t *testing.T) {
	c := NewDecodedCache(1 << 10)
	a, b := c.ForFile("a"), c.ForFile("b")
	blk := []byte{1, 2, 3}
	a.PutBlock(7, blk)
	if b.GetBlock(7) != nil {
		t.Error("block leaked across files")
	}
	if got := a.GetBlock(7); !bytes.Equal(got, blk) {
		t.Errorf("GetBlock = %v", got)
	}
}

func TestDecodedCacheDuplicateAndEmptyPuts(t *testing.T) {
	c := NewDecodedCache(1 << 10)
	f := c.ForFile("a")
	first := []byte{1, 1, 1}
	f.PutBlock(0, first)
	f.PutBlock(0, []byte{2, 2, 2}) // raced duplicate: first insert wins
	if got := f.GetBlock(0); !bytes.Equal(got, first) {
		t.Errorf("duplicate put replaced the shared slice: %v", got)
	}
	f.PutBlock(1, nil) // uncollectable by byte-based eviction: dropped
	if f.GetBlock(1) != nil {
		t.Error("empty block cached")
	}
	if st := c.Stats(); st.Blocks != 1 || st.Used != 3 {
		t.Errorf("occupancy %+v after dup/empty puts", st)
	}
}

// TestDecodedTierEndToEnd wires the real two-tier stack the way spiod
// does — BlockCache under the ra seam, DecodedCache in front — and
// hammers it concurrently with both tiers too small for the payload.
// Every read must match ground truth, and both tiers must show real
// traffic. Run under -race this is the serving-layer half of the
// concurrency satellite.
func TestDecodedTierEndToEnd(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	dir := t.TempDir()
	buf := particle.Uniform(particle.Uintah(), geom.UnitBox(), 4000, 19, 0)
	lod.Shuffle(buf, 9)
	path := filepath.Join(dir, format.DataFileName(0))
	hdr := format.DataHeader{LOD: lod.DefaultParams(), Heuristic: lod.Random, Seed: 9,
		Codec: particle.LosslessSpec(particle.Uintah())}
	if err := format.WriteDataFile(nil, path, hdr, buf); err != nil {
		t.Fatal(err)
	}
	df, err := format.OpenDataFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	want, err := df.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	truth := want.Encode()
	stride := int64(want.Schema().Stride())

	cache := NewBlockCache(16<<10, 2<<10)
	dcache := NewDecodedCache(64 << 10) // a few decoded blocks: constant eviction
	df.SetReaderAt(cache.ReaderFor(path, df.ReaderAt()))
	df.SetDecodedCache(dcache.ForFile(path))

	count := df.Header.Count
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				lo := r.Int63n(count)
				hi := lo + 1 + r.Int63n(count-lo)
				got, err := df.ReadRange(lo, hi)
				if err != nil {
					t.Errorf("range [%d,%d): %v", lo, hi, err)
					return
				}
				ref, err := particle.Decode(want.Schema(), truth[lo*stride:hi*stride])
				if err != nil {
					t.Error(err)
					return
				}
				if !got.Equal(ref) {
					t.Errorf("range [%d,%d): two-tier read diverged", lo, hi)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	st := dcache.Stats()
	if st.Hits == 0 || st.BytesDecoded == 0 {
		t.Errorf("decoded tier saw no traffic: %+v", st)
	}
	if st.Used > 64<<10 {
		t.Errorf("decoded tier overgrew its capacity: %d bytes", st.Used)
	}
	if cache.Stats().Misses == 0 {
		t.Error("compressed tier never read the disk")
	}
}

// TestServerDecodedCacheWiring checks the config plumbing: a server on
// a compressed dataset reports decoded-tier traffic in its snapshot,
// and DecodedCacheBytes < 0 disables the tier.
func TestServerDecodedCacheWiring(t *testing.T) {
	dir := t.TempDir()
	writeDatasetCodec(t, dir, geom.I3(2, 2, 1), geom.I3(2, 1, 1), 400,
		particle.LosslessSpec(particle.Uintah()))

	s := New(Config{Workers: 2})
	if err := s.Mount("sim", dir); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)
	ds, err := OpenRemote(addr, "sim")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	box := geom.NewBox(geom.V3(0, 0, 0), geom.V3(0.6, 0.6, 1))
	for i := 0; i < 3; i++ {
		if _, _, err := ds.QueryBox(box, rdr.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	if snap.DecodedCache.BytesDecoded == 0 {
		t.Error("default decoded tier saw no inserts on a compressed dataset")
	}
	if snap.DecodedCache.Hits == 0 {
		t.Error("repeat queries produced no decoded-tier hits")
	}

	off := New(Config{Workers: 2, DecodedCacheBytes: -1})
	if off.dcache != nil {
		t.Error("DecodedCacheBytes < 0 did not disable the tier")
	}
}
