package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spio/internal/agg"
	"spio/internal/core"
	"spio/internal/fault"
	"spio/internal/geom"
	"spio/internal/mpi"
	"spio/internal/particle"
	"spio/internal/query"
	rdr "spio/internal/reader"
)

// TestRemoteMatchesLocalConcurrent is the tentpole acceptance test: 8
// concurrent clients against a daemon whose block cache is smaller than
// the working set must all receive byte-identical answers to the same
// queries via the local Dataset.
func TestRemoteMatchesLocalConcurrent(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, geom.I3(4, 4, 1), geom.I3(2, 2, 1), 200) // ~397 KB working set

	s := New(Config{
		Workers:    4,
		CacheBytes: 32 << 10, // far smaller than the working set: eviction under load
		BlockBytes: 4 << 10,
	})
	if err := s.Mount("sim", dir); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)

	local, err := rdr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	domain := local.Meta().Domain

	type check struct {
		name string
		q    geom.Box
	}
	boxes := []check{
		{"octant", geom.NewBox(geom.V3(0, 0, 0), geom.V3(0.5, 0.5, 1))},
		{"center", geom.NewBox(geom.V3(0.3, 0.3, 0), geom.V3(0.7, 0.7, 1))},
		{"all", domain},
	}

	const clients = 8
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ds, err := OpenRemote(addr, "sim")
			if err != nil {
				errc <- err
				return
			}
			defer ds.Close()
			for round := 0; round < 3; round++ {
				c := boxes[(g+round)%len(boxes)]
				wantBuf, _, err := local.QueryBox(c.q, rdr.Options{})
				if err != nil {
					errc <- err
					return
				}
				gotBuf, st, err := ds.QueryBox(c.q, rdr.Options{})
				if err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(gotBuf.Encode(), wantBuf.Encode()) {
					errc <- errors.New(c.name + ": remote result not byte-identical to local")
					return
				}
				if st.FilesOpened == 0 && st.CacheHits == 0 {
					errc <- errors.New(c.name + ": remote stats empty")
					return
				}

				p := geom.V3(0.2+0.1*float64(g%4), 0.6, 0.5)
				wantNN, wantD, _, err := query.KNN(local, p, 8)
				if err != nil {
					errc <- err
					return
				}
				gotNN, gotD, _, err := ds.KNN(p, 8)
				if err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(gotNN.Encode(), wantNN.Encode()) {
					errc <- errors.New("KNN: remote neighbours not byte-identical")
					return
				}
				for i := range wantD {
					if gotD[i] != wantD[i] {
						errc <- errors.New("KNN: distances differ")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// The block cache saw real pressure. With the working set an order
	// of magnitude over capacity, eight concurrent full sweeps thrash, so
	// hits are not guaranteed here — misses, evictions, and the capacity
	// bound are.
	cs := s.cache.Stats()
	if cs.Misses == 0 {
		t.Errorf("block cache uninvolved: %+v", cs)
	}
	if cs.Evictions == 0 {
		t.Errorf("no evictions with a 32 KiB cache over a ~400 KB working set: %+v", cs)
	}
	if cs.Used > 32<<10 {
		t.Errorf("block cache exceeded capacity: %+v", cs)
	}

	// Back-to-back reads of a region that fits in the cache do hit.
	ds, err := OpenRemote(addr, "sim")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	// A coarse (level-1) read touches only each file's LOD prefix — a
	// footprint that fits the cache, unlike a full sweep.
	tiny := geom.NewBox(geom.V3(0, 0, 0), geom.V3(0.2, 0.2, 1))
	before := s.cache.Stats().Hits
	for i := 0; i < 2; i++ {
		if _, _, err := ds.QueryBox(tiny, rdr.Options{Levels: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if after := s.cache.Stats().Hits; after <= before {
		t.Errorf("repeat query produced no block-cache hits (%d -> %d)", before, after)
	}
}

func TestRemoteHaloAndDensityMatchLocal(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, geom.I3(2, 2, 1), geom.I3(1, 1, 1), 150)
	s := New(Config{})
	if err := s.Mount("sim", dir); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)
	local, err := rdr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := OpenRemote(addr, "sim")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	patch := geom.NewBox(geom.V3(0.25, 0.25, 0), geom.V3(0.75, 0.75, 1))
	wantOwn, wantGhost, _, err := query.Halo(local, patch, 0.1, rdr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotOwn, gotGhost, _, err := ds.Halo(patch, 0.1, rdr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotOwn.Encode(), wantOwn.Encode()) || !bytes.Equal(gotGhost.Encode(), wantGhost.Encode()) {
		t.Fatal("halo results differ from local")
	}

	wantCounts, wantFrac, _, err := query.DensityGrid(local, geom.I3(4, 4, 1), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotCounts, gotFrac, _, err := ds.DensityGrid(geom.I3(4, 4, 1), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gotFrac != wantFrac || len(gotCounts) != len(wantCounts) {
		t.Fatalf("density shape: frac %v vs %v", gotFrac, wantFrac)
	}
	for i := range wantCounts {
		if gotCounts[i] != wantCounts[i] {
			t.Fatal("density counts differ from local")
		}
	}

	// The served metadata is the exact on-disk image.
	if ds.Meta().Total != local.Meta().Total || len(ds.Meta().Files) != len(local.Meta().Files) {
		t.Fatal("remote meta differs from local")
	}
	if ds.LevelCount(4) != local.LevelCount(4) {
		t.Fatal("remote LevelCount differs from local")
	}
}

// TestProgressiveStreamMatchesLocal streams level-by-level and checks
// each increment and the reassembled whole against the local
// progressive reader, then exercises cancel-after-coarse-prefix.
func TestProgressiveStreamMatchesLocal(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, geom.I3(2, 2, 1), geom.I3(1, 1, 1), 300)
	s := New(Config{})
	if err := s.Mount("sim", dir); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)
	local, err := rdr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := OpenRemote(addr, "sim")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	q := local.Meta().Domain
	entries := local.Meta().FilesIntersecting(q)
	lp, err := local.Progressive(entries, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer lp.Close()
	st, err := ds.ProgressiveBox(q, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	levels := 0
	for {
		wantBuf, wantOK, err := lp.NextLevel()
		if err != nil {
			t.Fatal(err)
		}
		gotBuf, gotOK, err := st.NextLevel()
		if err != nil {
			t.Fatal(err)
		}
		if !wantOK {
			if gotOK && gotBuf.Len() > 0 {
				t.Fatal("remote stream longer than local")
			}
			break
		}
		if !gotOK {
			t.Fatalf("remote stream ended at level %d, local continues", levels)
		}
		if !bytes.Equal(gotBuf.Encode(), wantBuf.Encode()) {
			t.Fatalf("level %d increment not byte-identical", levels)
		}
		levels++
		if st.Done() && lp.Done() {
			break
		}
	}
	if levels < 2 {
		t.Fatalf("stream delivered only %d levels", levels)
	}
	if st.Stats().ParticlesRead == 0 {
		t.Error("stream reported no read telemetry")
	}

	// Cancel after the coarse prefix: the server abandons the remaining
	// levels and the connection stays usable.
	st2, err := ds.ProgressiveBox(q, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	coarse, ok, err := st2.NextLevel()
	if err != nil || !ok || coarse.Len() == 0 {
		t.Fatalf("coarse prefix: %v ok=%v", err, ok)
	}
	if err := st2.Cancel(); err != nil {
		t.Fatal(err)
	}
	if s.metrics.streamCancels.Load() != 1 {
		t.Errorf("cancel not recorded: %d", s.metrics.streamCancels.Load())
	}
	// The connection serves plain requests again after the cancel.
	if _, _, err := ds.QueryBox(q, rdr.Options{Levels: 1}); err != nil {
		t.Fatalf("query after cancel: %v", err)
	}
}

// TestOverloadFastFail drives more concurrency than workers+queue can
// hold and expects immediate ErrOverloaded rejections instead of
// unbounded queueing.
func TestOverloadFastFail(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, geom.I3(2, 1, 1), geom.I3(1, 1, 1), 50)
	s := New(Config{Workers: 1, QueueDepth: 1})
	s.requestDelay = 150 * time.Millisecond // hold the single worker busy
	if err := s.Mount("sim", dir); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)

	const clients = 8
	var ok, overloaded, other atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ds, err := OpenRemote(addr, "sim") // opMeta occupies the worker briefly too
			if err != nil {
				if errors.Is(err, ErrOverloaded) {
					overloaded.Add(1)
				} else {
					other.Add(1)
				}
				return
			}
			defer ds.Close()
			_, _, err = ds.QueryBox(ds.Meta().Domain, rdr.Options{})
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrOverloaded):
				overloaded.Add(1)
			default:
				other.Add(1)
			}
		}()
	}
	wg.Wait()
	if other.Load() != 0 {
		t.Fatalf("unexpected errors: ok=%d overloaded=%d other=%d", ok.Load(), overloaded.Load(), other.Load())
	}
	if ok.Load() == 0 || overloaded.Load() == 0 {
		t.Fatalf("want both successes and fast-fails: ok=%d overloaded=%d", ok.Load(), overloaded.Load())
	}
	if s.metrics.overloaded.Load() != overloaded.Load() {
		t.Errorf("metrics disagree: %d vs %d", s.metrics.overloaded.Load(), overloaded.Load())
	}
}

// TestGracefulDrainCompletesStream starts a progressive stream, begins
// a drain mid-stream, and verifies (a) the stream runs to completion,
// (b) new requests are refused with ErrDraining, (c) Shutdown returns
// only after the stream finished.
func TestGracefulDrainCompletesStream(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, geom.I3(2, 2, 1), geom.I3(1, 1, 1), 300)
	s := New(Config{Workers: 2})
	if err := s.Mount("sim", dir); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)

	ds, err := OpenRemote(addr, "sim")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	bystander, err := OpenRemote(addr, "sim") // dialed before the drain begins
	if err != nil {
		t.Fatal(err)
	}
	defer bystander.Close()

	st, err := ds.ProgressiveBox(ds.Meta().Domain, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	first, ok, err := st.NextLevel()
	if err != nil || !ok {
		t.Fatalf("first level: %v ok=%v", err, ok)
	}
	total := first.Len()

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Shutdown(ctx)
	}()
	// Wait until the drain is visible.
	for !s.draining.Load() {
		time.Sleep(time.Millisecond)
	}

	// New work is refused while the stream is still open.
	if _, _, err := bystander.QueryBox(bystander.Meta().Domain, rdr.Options{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("request during drain: %v, want ErrDraining", err)
	}
	select {
	case err := <-drained:
		t.Fatalf("Shutdown returned with the stream still open: %v", err)
	default:
	}

	// The in-flight stream completes through the drain.
	for !st.Done() {
		buf, ok, err := st.NextLevel()
		if err != nil {
			t.Fatalf("stream during drain: %v", err)
		}
		if !ok {
			break
		}
		total += buf.Len()
	}
	local, err := rdr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if int64(total) != local.Meta().Total {
		t.Fatalf("drained stream delivered %d of %d particles", total, local.Meta().Total)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestFsckMountPolicy leaves a crash artifact via fault injection (a
// failed atomic rename whose cleanup also fails, stranding a .spio-tmp
// file) and checks the refuse/warn/off policies.
func TestFsckMountPolicy(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, geom.I3(2, 1, 1), geom.I3(1, 1, 1), 60)

	// Re-checkpoint into the same directory with an injected crash: the
	// data file's rename fails and so does the temp cleanup, modelling a
	// writer that died mid-publish.
	in := fault.NewInjector()
	in.Add(fault.AllRanks, fault.Fault{Op: fault.OpRename, Path: ".spd"})
	// Model a hard crash: once the publish fails, no cleanup runs either,
	// so the abort path can neither reap the temp nor unpublish the old
	// (still consistent) dataset.
	in.Add(fault.AllRanks, fault.Fault{Op: fault.OpRemove})
	cfg := core.WriteConfig{
		Agg:  agg.Config{Domain: geom.UnitBox(), SimDims: geom.I3(2, 1, 1), Factor: geom.I3(1, 1, 1)},
		Seed: 21,
	}
	grid := geom.NewGrid(cfg.Agg.Domain, geom.I3(2, 1, 1))
	err := mpi.Run(2, func(c *mpi.Comm) error {
		cfg := cfg
		cfg.FS = in.FS(c.Rank())
		local := particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(c.Rank(), geom.I3(2, 1, 1))), 60, 13, c.Rank())
		_, err := core.Write(c, dir, cfg, local)
		return err
	})
	if err == nil {
		t.Fatal("injected write unexpectedly succeeded")
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "*.spio-tmp"))
	if err != nil || len(leftovers) == 0 {
		t.Fatalf("no leftover temp file after injected crash (%v)", err)
	}

	// Default policy refuses the dataset.
	if err := New(Config{}).Mount("sim", dir); err == nil {
		t.Fatal("mount of a dirty dataset succeeded under the refuse policy")
	}

	// Warn serves it (the canonical files are still consistent).
	var warned atomic.Int64
	s := New(Config{Fsck: FsckWarn, Logf: func(string, ...any) { warned.Add(1) }})
	if err := s.Mount("sim", dir); err != nil {
		t.Fatalf("warn-policy mount: %v", err)
	}
	if warned.Load() == 0 {
		t.Error("warn policy logged nothing")
	}
	addr := startServer(t, s)
	ds, err := OpenRemote(addr, "sim")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if _, _, err := ds.QueryBox(ds.Meta().Domain, rdr.Options{}); err != nil {
		t.Fatalf("query against warn-mounted dataset: %v", err)
	}

	// Off skips the check entirely.
	if err := New(Config{Fsck: FsckOff}).Mount("sim", dir); err != nil {
		t.Fatalf("off-policy mount: %v", err)
	}
}

// TestSeriesMountAndLatest mounts a step-series base and resolves
// name, name@N, and name@latest.
func TestSeriesMountAndLatest(t *testing.T) {
	base := t.TempDir()
	writeDataset(t, base+"/t000000", geom.I3(2, 1, 1), geom.I3(1, 1, 1), 40)
	writeDataset(t, base+"/t000003", geom.I3(2, 1, 1), geom.I3(1, 1, 1), 70) // gap: steps 1, 2 absent

	s := New(Config{})
	if err := s.Mount("sim", base); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	oldest, err := c.Open("sim@0")
	if err != nil {
		t.Fatal(err)
	}
	latest, err := c.Open("sim@latest")
	if err != nil {
		t.Fatal(err)
	}
	bare, err := c.Open("sim")
	if err != nil {
		t.Fatal(err)
	}
	if oldest.Meta().Total != 80 {
		t.Errorf("sim@0 holds %d particles, want 80", oldest.Meta().Total)
	}
	if latest.Meta().Total != 140 || bare.Meta().Total != 140 {
		t.Errorf("latest resolution: %d / %d particles, want 140", latest.Meta().Total, bare.Meta().Total)
	}
	if _, err := c.Open("sim@1"); err == nil {
		t.Error("gap step sim@1 resolved")
	}
	refs, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 || refs[0] != "sim@0" || refs[1] != "sim@3" {
		t.Errorf("List = %v", refs)
	}
}

// TestBudgetFastFail: a query whose response exceeds the per-request
// byte budget is refused without materializing on the wire.
func TestBudgetFastFail(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, geom.I3(2, 1, 1), geom.I3(1, 1, 1), 200)
	s := New(Config{MaxRespBytes: 4096})
	if err := s.Mount("sim", dir); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)
	ds, err := OpenRemote(addr, "sim")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if _, _, err := ds.QueryBox(ds.Meta().Domain, rdr.Options{}); !errors.Is(err, ErrBudget) {
		t.Fatalf("oversized query: %v, want ErrBudget", err)
	}
	// A level-limited read fits.
	if _, _, err := ds.QueryBox(ds.Meta().Domain, rdr.Options{Levels: 1}); err != nil {
		t.Fatalf("level-limited query: %v", err)
	}
}

// TestClientMaxFrameOption pins the client-side frame cap: a response
// larger than the dialed cap is refused by the client before it
// allocates the body, and the default cap admits normal traffic. The
// cap is the client's guard against a garbage or hostile length prefix
// — the server-side byte budget cannot protect a client talking to a
// compromised or corrupt peer.
func TestClientMaxFrameOption(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, geom.I3(2, 1, 1), geom.I3(1, 1, 1), 300)
	s := New(Config{})
	if err := s.Mount("sim", dir); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)

	// A cap big enough for the handshake and the meta blob but far
	// smaller than the query payload: the query must fail client-side.
	ds, err := OpenRemote(addr, "sim", WithMaxFrame(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if _, _, err := ds.QueryBox(ds.Meta().Domain, rdr.Options{}); err == nil {
		t.Fatal("response over the client frame cap accepted")
	} else if !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("capped query failed with %v, want a frame-limit error", err)
	}

	// The default cap admits the same query.
	ds2, err := OpenRemote(addr, "sim")
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	if _, _, err := ds2.QueryBox(ds2.Meta().Domain, rdr.Options{}); err != nil {
		t.Fatalf("default-cap query: %v", err)
	}
}

// TestStatsSurface checks the metrics snapshot over the wire: request
// counters, block cache counters, and the per-dataset file-cache
// counters (the satellite eviction / bytes-from-cache extensions).
func TestStatsSurface(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, geom.I3(2, 2, 1), geom.I3(2, 2, 1), 100)
	s := New(Config{})
	if err := s.Mount("sim", dir); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)
	ds, err := OpenRemote(addr, "sim")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	for i := 0; i < 3; i++ {
		if _, _, err := ds.QueryBox(ds.Meta().Domain, rdr.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	// Per-request stats show the server-side file cache working.
	_, st, err := ds.QueryBox(ds.Meta().Domain, rdr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits == 0 || st.BytesFromCache == 0 {
		t.Errorf("repeat remote query reported no cache reuse: %+v", st)
	}

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	blob, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatalf("stats JSON: %v\n%s", err, blob)
	}
	if snap.Requests < 4 {
		t.Errorf("snapshot requests = %d", snap.Requests)
	}
	if snap.BlockCache.Misses == 0 {
		t.Errorf("block cache uninvolved: %+v", snap.BlockCache)
	}
	dm, ok := snap.Datasets["sim"]
	if !ok {
		t.Fatalf("snapshot lacks dataset entry: %v", snap.Datasets)
	}
	if dm.FileCache.Hits == 0 || dm.FileCache.BytesFromCache == 0 {
		t.Errorf("dataset file-cache counters empty: %+v", dm.FileCache)
	}
	if snap.QueueWaitNs < 0 || snap.ServiceNs == 0 {
		t.Errorf("timing counters: wait=%d service=%d", snap.QueueWaitNs, snap.ServiceNs)
	}
}
