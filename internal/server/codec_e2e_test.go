package server

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"spio/internal/format"
	"spio/internal/geom"
	"spio/internal/lod"
	"spio/internal/particle"
	rdr "spio/internal/reader"
)

// TestCompressedBlockCacheEvictionRace is the compressed twin of
// TestBlockCacheEvictionRacesSingleflight (run under -race): a
// compressed data file is served through a block cache far smaller than
// its payload, so the cache holds compressed bytes that decode on
// egress while concurrent readers span codec-block boundaries and force
// constant eviction. Every read must still match the uncompressed
// ground truth.
func TestCompressedBlockCacheEvictionRace(t *testing.T) {
	dir := t.TempDir()
	buf := particle.Uniform(particle.Uintah(), geom.UnitBox(), 4000, 17, 0)
	lod.Shuffle(buf, 9)
	path := filepath.Join(dir, format.DataFileName(0))
	hdr := format.DataHeader{LOD: lod.DefaultParams(), Heuristic: lod.Random, Seed: 9,
		Codec: particle.LosslessSpec(particle.Uintah())}
	if err := format.WriteDataFile(nil, path, hdr, buf); err != nil {
		t.Fatal(err)
	}
	df, err := format.OpenDataFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	if !df.Compressed() {
		t.Fatal("test file is not compressed")
	}
	want, err := df.ReadAll()
	if err != nil {
		t.Fatal(err)
	}

	// A cache of a few tiny blocks under a payload of hundreds of KB:
	// nearly every block access evicts something.
	cache := NewBlockCache(4<<10, 1<<10)
	df.SetReaderAt(cache.ReaderFor(path, df.ReaderAt()))

	count := df.Header.Count
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				lo := r.Int63n(count)
				hi := lo + 1 + r.Int63n(count-lo)
				got, err := df.ReadRange(lo, hi)
				if err != nil {
					errs <- err
					return
				}
				ref, err := particle.Decode(want.Schema(), want.Encode()[lo*int64(want.Schema().Stride()):hi*int64(want.Schema().Stride())])
				if err != nil {
					errs <- err
					return
				}
				if !got.Equal(ref) {
					t.Errorf("range [%d,%d): compressed read through churning cache diverged", lo, hi)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions: the cache was not under pressure")
	}
	if st.Used > 4<<10 {
		t.Errorf("cache overgrew its capacity: %d bytes", st.Used)
	}
}

// TestRemoteMatchesLocalCompressed holds the full acceptance criterion:
// the dataset is compressed on disk (block cache holds compressed
// blocks, decode on egress) and the wire codec is explicitly negotiated
// on — and every remote answer is byte-identical to the local one. A
// raw-requesting client and a server forced to raw must agree too.
func TestRemoteMatchesLocalCompressed(t *testing.T) {
	dir := t.TempDir()
	writeDatasetCodec(t, dir, geom.I3(2, 2, 1), geom.I3(2, 1, 1), 400,
		particle.LosslessSpec(particle.Uintah()))

	s := New(Config{
		Workers:    2,
		CacheBytes: 16 << 10, // much smaller than the compressed payload: eviction under load
		BlockBytes: 2 << 10,
	})
	if err := s.Mount("sim", dir); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)

	local, err := rdr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	domain := local.Meta().Domain
	boxes := []geom.Box{
		geom.NewBox(geom.V3(0, 0, 0), geom.V3(0.5, 0.5, 1)),
		geom.NewBox(geom.V3(0.25, 0.25, 0.25), geom.V3(0.8, 0.9, 1)),
		domain,
	}

	for _, opt := range [][]DialOption{
		{WithWireCodec(WireCodecLossless)},
		{WithWireCodec(WireCodecRaw)},
		nil, // default (lossless)
	} {
		ds, err := OpenRemote(addr, "sim", opt...)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range boxes {
			want, _, err := local.QueryBox(q, rdr.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := ds.QueryBox(q, rdr.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("remote query diverges from local for %v (opts %v)", q, opt)
			}
		}
		ds.Close()
	}

	// Server policy "none" forces raw responses; answers must not change.
	s2 := New(Config{WireCodec: "none"})
	if err := s2.Mount("sim", dir); err != nil {
		t.Fatal(err)
	}
	addr2 := startServer(t, s2)
	ds, err := OpenRemote(addr2, "sim", WithWireCodec(WireCodecLossless))
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	want, _, err := local.QueryBox(domain, rdr.Options{NoFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ds.ReadAll(rdr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("forced-raw server diverges from local")
	}
}
