package server

import (
	"errors"
	"sync"
	"testing"
	"time"

	"spio/internal/geom"
	rdr "spio/internal/reader"
)

// TestClientPoolConcurrent hammers one pool from many goroutines (run
// under -race in CI): checkouts are bounded, every client works, and
// clients broken mid-flight are replaced instead of reused.
func TestClientPoolConcurrent(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, geom.I3(2, 2, 1), geom.I3(2, 2, 1), 100)
	s := New(Config{Workers: 2})
	if err := s.Mount("sim", dir); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)

	const max = 3
	pool := NewClientPool(addr, max)
	defer pool.Close()
	q := geom.NewBox(geom.V3(0, 0, 0), geom.V3(0.5, 0.5, 1))

	const workers = 12
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				c, err := pool.Get()
				if err != nil {
					errc <- err
					return
				}
				ds := c.Attach("sim", nil)
				_, _, err = ds.QueryBox(q, rdr.Options{})
				if err == nil && w%4 == 0 && round == 2 {
					// Sabotage some checkouts: a closed conn makes the next
					// exchange fail and mark the client broken; Put must
					// retire it, and later Gets must still succeed.
					_ = c.Close()
					_, _, qerr := ds.QueryBox(q, rdr.Options{})
					if qerr == nil {
						errc <- errors.New("query on a closed client succeeded")
					}
					if !c.Broken() {
						errc <- errors.New("failed exchange did not mark the client broken")
					}
				}
				pool.Put(c)
				if err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestClientPoolBounds checks the checkout cap and the closed-pool
// contract.
func TestClientPoolBounds(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, geom.I3(2, 2, 1), geom.I3(2, 2, 1), 20)
	s := New(Config{Workers: 1})
	if err := s.Mount("sim", dir); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)

	pool := NewClientPool(addr, 1)
	c1, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	// With the single slot held, a second Get must block until Put.
	got := make(chan *Client)
	go func() {
		c, err := pool.Get()
		if err != nil {
			t.Errorf("second Get: %v", err)
		}
		got <- c
	}()
	time.Sleep(50 * time.Millisecond)
	select {
	case <-got:
		t.Fatal("Get returned while the pool's only slot was checked out")
	default:
	}
	pool.Put(c1)
	c2 := <-got
	pool.Put(c2)

	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Get(); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Get on closed pool: %v, want ErrPoolClosed", err)
	}
}
