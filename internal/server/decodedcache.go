package server

import (
	"container/list"
	"sync"

	"spio/internal/format"
)

// DecodedCacheStats is the decoded-block tier's counter snapshot.
type DecodedCacheStats struct {
	// Hits counts block lookups served already decoded; Misses counts
	// lookups that fell through to the compressed tier.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts decoded blocks pushed out by the capacity bound.
	Evictions int64 `json:"evictions"`
	// BytesFromCache counts decoded bytes served from the tier;
	// BytesDecoded counts decoded bytes inserted into it (each insert is
	// one inflate the working set will not pay again while it stays).
	BytesFromCache int64 `json:"bytes_from_cache"`
	BytesDecoded   int64 `json:"bytes_decoded"`
	// Used and Blocks describe current occupancy.
	Used   int64 `json:"used_bytes"`
	Blocks int   `json:"blocks"`
}

// DecodedCache is the decoded-block cache tier: whole decoded codec
// blocks (AoS record bytes), keyed by (file, block index), in front of
// the compressed-resident BlockCache. The two tiers trade capacity for
// latency — the compressed tier holds 3-5× more data per byte, the
// decoded tier answers without touching flate — so a hot working set
// pays inflate once while the long tail still avoids the disk.
//
// Unlike the compressed tier there is no singleflight: the racing
// window is one block decode (the underlying read is already
// singleflighted by the BlockCache), and a duplicated decode costs CPU
// once while a flight table would cost a map operation on every hit.
// Cached slices are immutable once inserted (format.DecodedBlockCache
// ownership contract).
type DecodedCache struct {
	capacity int64

	mu     sync.Mutex
	used   int64
	lru    *list.List // front = most recently used; values *decodedBlock
	blocks map[blockKey]*list.Element
	stats  DecodedCacheStats
}

type decodedBlock struct {
	key  blockKey
	recs []byte // immutable after insert
}

// NewDecodedCache returns a decoded-block tier bounded to capacityBytes
// of decoded records. capacityBytes <= 0 disables the tier (nil return).
func NewDecodedCache(capacityBytes int64) *DecodedCache {
	if capacityBytes <= 0 {
		return nil
	}
	return &DecodedCache{
		capacity: capacityBytes,
		lru:      list.New(),
		blocks:   make(map[blockKey]*list.Element),
	}
}

// Stats returns a snapshot of the tier's counters.
func (c *DecodedCache) Stats() DecodedCacheStats {
	if c == nil {
		return DecodedCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Used = c.used
	st.Blocks = c.lru.Len()
	return st
}

// ForFile returns the per-file view a DataFile's SetDecodedCache wants;
// key must uniquely identify the file's content (spiod uses its path).
func (c *DecodedCache) ForFile(key string) format.DecodedBlockCache {
	return &fileDecodedCache{c: c, key: key}
}

type fileDecodedCache struct {
	c   *DecodedCache
	key string
}

func (f *fileDecodedCache) GetBlock(bi int) []byte {
	return f.c.get(blockKey{file: f.key, idx: int64(bi)})
}

func (f *fileDecodedCache) PutBlock(bi int, recs []byte) {
	f.c.put(blockKey{file: f.key, idx: int64(bi)}, recs)
}

func (c *DecodedCache) get(k blockKey) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.blocks[k]
	if !ok {
		c.stats.Misses++
		return nil
	}
	b := el.Value.(*decodedBlock)
	c.lru.MoveToFront(el)
	c.stats.Hits++
	c.stats.BytesFromCache += int64(len(b.recs))
	return b.recs
}

func (c *DecodedCache) put(k blockKey, recs []byte) {
	if len(recs) == 0 {
		// A zero-length block adds 0 to used, so eviction could never
		// reclaim it; there is also nothing to save by caching it.
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.blocks[k]; dup {
		// Two callers raced on the same cold block; the first insert won
		// and its slice may already be shared. Keep it.
		return
	}
	el := c.lru.PushFront(&decodedBlock{key: k, recs: recs})
	c.blocks[k] = el
	c.used += int64(len(recs))
	c.stats.BytesDecoded += int64(len(recs))
	for c.used > c.capacity {
		back := c.lru.Back()
		if back == nil {
			return
		}
		b := back.Value.(*decodedBlock)
		c.lru.Remove(back)
		delete(c.blocks, b.key)
		c.used -= int64(len(b.recs))
		c.stats.Evictions++
	}
}
