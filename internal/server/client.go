package server

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"spio/internal/format"
	"spio/internal/geom"
	"spio/internal/lod"
	"spio/internal/particle"
	rdr "spio/internal/reader"
)

// ErrDraining is returned by client calls refused because the server is
// shutting down; redial (or retry elsewhere) later.
var ErrDraining = errors.New("spiod: server is draining")

// ErrClientBroken is returned by calls on a client whose connection is
// no longer trustworthy: a previous exchange failed at the transport
// level (or the server announced drain), so the stream position is
// unknown. Pools close broken clients instead of reusing them.
var ErrClientBroken = errors.New("spiod: connection broken by earlier failure")

// ErrBudget is returned when a query's response would exceed the
// server's per-request byte budget; narrow the box or read fewer
// levels.
var ErrBudget = errors.New("spiod: response exceeds the server's byte budget")

// DefaultMaxFrame bounds the response frames (and the blobs inside
// them) a client accepts unless WithMaxFrame overrides it. Response
// size is governed server-side by the byte budget; this cap is the
// client's own defense against a garbage or hostile length prefix,
// which would otherwise commit it to a multi-GiB allocation before the
// first payload byte.
const DefaultMaxFrame int64 = 256 << 20

// maxFrameCeiling is the hard upper bound WithMaxFrame clamps to: the
// length prefix is a u32, and staying under 2^31 keeps every frame
// length representable as an int on 32-bit platforms too.
const maxFrameCeiling int64 = 1<<31 - 1

// DialOption customizes a dialed Client.
type DialOption func(*Client)

// WithMaxFrame overrides the largest response frame the client will
// accept, in bytes. Values outside (0, 2^31) are clamped to the
// protocol's hard frame ceiling.
func WithMaxFrame(n int64) DialOption {
	return func(c *Client) {
		if n <= 0 || n > maxFrameCeiling {
			n = maxFrameCeiling
		}
		//spio:allow racegate -- dial options run before Dial publishes the client; the field is read-only afterwards
		c.maxFrame = n
	}
}

// Wire codecs a client can request at dial time (WithWireCodec).
const (
	// WireCodecRaw asks for uncompressed buffer payloads.
	WireCodecRaw uint8 = wireCodecRaw
	// WireCodecLossless (the default) asks for per-field lossless
	// compression; results are byte-identical to raw, just cheaper to
	// ship. The server may still answer raw per buffer when compression
	// doesn't pay, or unconditionally under a "none" policy.
	WireCodecLossless uint8 = wireCodecLossless
)

// WithWireCodec selects the response codec requested in the hello.
// Unknown values fall back to raw.
func WithWireCodec(codec uint8) DialOption {
	return func(c *Client) {
		if codec > maxWireCodec {
			codec = wireCodecRaw
		}
		c.codec = codec
	}
}

// WithCallTimeout bounds each request/response exchange (and each
// progressive-stream level exchange) with a connection deadline. A
// timeout surfaces as a transport error and marks the client broken —
// the response may still be in flight, so the connection cannot be
// reused. Zero (the default) means no deadline.
func WithCallTimeout(d time.Duration) DialOption {
	//spio:allow racegate -- dial options run before Dial publishes the client; the field is read-only afterwards
	return func(c *Client) { c.callTimeout = d }
}

// ParseAddr splits a dial/listen address into (network, address):
// "unix:/path" and "tcp:host:port" are explicit; anything containing a
// path separator dials unix, the rest tcp.
func ParseAddr(addr string) (network, address string, err error) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return "unix", addr[len("unix:"):], nil
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", addr[len("tcp:"):], nil
	case strings.ContainsAny(addr, "/\\"):
		return "unix", addr, nil
	case addr == "":
		return "", "", fmt.Errorf("spiod: empty address")
	default:
		return "tcp", addr, nil
	}
}

// Client is one connection to a spiod server. Calls are serialized per
// client (the protocol is sequential); open one client per concurrent
// consumer, or check clients out of a ClientPool.
type Client struct {
	mu          sync.Mutex // serializes request/response exchanges
	conn        net.Conn
	maxFrame    int64 // largest acceptable response frame (DefaultMaxFrame unless overridden)
	codec       uint8 // response codec requested in the hello
	callTimeout time.Duration
	features    uint32 // server feature bits from the hello ack
	broken      bool   // transport desync: the conn must not be reused
}

// Dial connects to a spiod server ("unix:/path", "tcp:host:port", or a
// bare socket path / host:port) and performs the protocol handshake.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	network, address, err := ParseAddr(addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.Dial(network, address)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, maxFrame: DefaultMaxFrame, codec: WireCodecLossless}
	for _, opt := range opts {
		opt(c)
	}
	// The handshake gets the same deadline as calls: a listener whose
	// process died with connections still in the accept backlog would
	// otherwise hang the dial forever.
	c.armDeadline()
	defer c.disarmDeadline()
	var fb frameBuf
	e := newWriter(&fb)
	encodeHello(e, &hello{Version: protoVersion, Codec: c.codec, Features: serverFeatures})
	if e.err == nil {
		err = writeFrame(conn, fb.b)
	} else {
		err = e.err
	}
	if err == nil {
		var d *reader
		if _, d, err = c.readResp(); err == nil {
			var ack *helloAck
			if ack, err = decodeHelloAck(d); err == nil {
				c.features = ack.Features
			}
		}
	}
	if err != nil {
		_ = conn.Close() // handshake failed; the handshake error is the one to report
		return nil, err
	}
	return c, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// Broken reports whether a transport-level failure (or a server drain
// notice) has desynchronized the connection. A broken client fails all
// further calls with ErrClientBroken; pools close it instead of reusing
// it. Request-level errors (overload, budget, bad query) do NOT break
// the client — those exchanges completed cleanly.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// ServerFeatures returns the feature bits the server advertised in its
// hello ack.
func (c *Client) ServerFeatures() uint32 { return c.features }

// armDeadline applies the per-call timeout to the connection; callers
// hold c.mu.
func (c *Client) armDeadline() {
	if c.callTimeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.callTimeout))
	}
}

func (c *Client) disarmDeadline() {
	if c.callTimeout > 0 {
		_ = c.conn.SetDeadline(time.Time{})
	}
}

// sendRequest writes one request frame.
func (c *Client) sendRequest(req *request) error {
	var fb frameBuf
	e := newWriter(&fb)
	encodeRequest(e, req)
	if e.err != nil {
		return e.err
	}
	return writeFrame(c.conn, fb.b)
}

// readResp reads one response frame and maps its status to an error;
// the returned decoder is positioned at the payload.
func (c *Client) readResp() (*respHeader, *reader, error) {
	body, err := readFrame(c.conn, uint32(c.maxFrame))
	if err != nil {
		return nil, nil, err
	}
	d := newReader(bytes.NewReader(body))
	h, err := decodeRespHeader(d)
	if err != nil {
		return nil, nil, err
	}
	switch h.Status {
	case statusOK:
		return h, d, nil
	case statusOverloaded:
		return h, nil, fmt.Errorf("%w (%s)", ErrOverloaded, h.Msg)
	case statusDraining:
		return h, nil, fmt.Errorf("%w (%s)", ErrDraining, h.Msg)
	case statusBudget:
		return h, nil, fmt.Errorf("%w (%s)", ErrBudget, h.Msg)
	default:
		return h, nil, errors.New(h.Msg)
	}
}

// call performs one request/response exchange under the client lock.
func (c *Client) call(req *request) (*reader, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return nil, ErrClientBroken
	}
	// The lock intentionally spans the conn I/O (deadline arming
	// included): it is what serializes whole request/response exchanges
	// on the shared connection, and every waiter is another caller of
	// the same exchange.
	//spio:allow lockorder -- mu serializes request/response exchanges on the shared conn; holding it across the I/O is the protocol
	c.armDeadline()
	defer c.disarmDeadline()
	if err := c.sendRequest(req); err != nil {
		// The write can fail because the server drained and closed the
		// socket — in which case its goodbye frame is sitting in our
		// receive buffer. Salvage it so the caller sees ErrDraining (a
		// clean "go elsewhere") instead of a raw reset.
		c.broken = true
		if _, _, rerr := c.readResp(); errors.Is(rerr, ErrDraining) {
			return nil, rerr
		}
		return nil, err
	}
	h, d, err := c.readResp()
	if err != nil && (h == nil || h.Status == statusDraining) {
		// Transport failure (desync) or the server is going away; either
		// way this connection must not carry another exchange.
		c.broken = true
	}
	return d, err
}

// List returns the dataset references the server is currently willing
// to serve.
func (c *Client) List() ([]string, error) {
	d, err := c.call(&request{Op: opList})
	if err != nil {
		return nil, err
	}
	return decodeNames(d)
}

// Stats fetches the server's metrics snapshot as JSON.
func (c *Client) Stats() ([]byte, error) {
	d, err := c.call(&request{Op: opStats})
	if err != nil {
		return nil, err
	}
	return decodeBlob(d, uint64(c.maxFrame))
}

// Open resolves a dataset reference ("name", "name@N", "name@latest")
// into a RemoteDataset mirroring the local Dataset query surface.
func (c *Client) Open(ref string) (*RemoteDataset, error) {
	d, err := c.call(&request{Op: opMeta, Dataset: ref})
	if err != nil {
		return nil, err
	}
	blob, err := decodeBlob(d, uint64(c.maxFrame))
	if err != nil {
		return nil, err
	}
	// The blob is the exact EncodeMeta image the daemon read from disk:
	// the remote and local views of the dataset cannot drift.
	meta, err := format.DecodeMeta(bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	return &RemoteDataset{c: c, ref: ref, meta: meta}, nil
}

// Attach binds an already-fetched metadata image to a dataset reference
// on this client without the opMeta round trip. A gateway fetches each
// shard's metadata once at mount and attaches it to every pooled
// connection it checks out afterwards.
func (c *Client) Attach(ref string, meta *format.Meta) *RemoteDataset {
	return &RemoteDataset{c: c, ref: ref, meta: meta}
}

// RemoteDataset is a dataset served by a remote spiod, implementing the
// same query surface as the local rdr.Dataset.
type RemoteDataset struct {
	c    *Client
	ref  string
	meta *format.Meta
	// ownsConn marks datasets opened via the package-level convenience
	// dial: their Close also closes the client connection.
	ownsConn bool
}

// OpenRemote dials addr and opens one dataset in a single step; Close
// on the result closes the connection.
func OpenRemote(addr, ref string, opts ...DialOption) (*RemoteDataset, error) {
	c, err := Dial(addr, opts...)
	if err != nil {
		return nil, err
	}
	ds, err := c.Open(ref)
	if err != nil {
		_ = c.Close() // open failed; the open error is the one to report
		return nil, err
	}
	ds.ownsConn = true
	return ds, nil
}

// Meta exposes the dataset's spatial metadata (decoded from the exact
// on-disk bytes).
func (r *RemoteDataset) Meta() *format.Meta { return r.meta }

// Ref returns the dataset reference this handle resolves on the server.
func (r *RemoteDataset) Ref() string { return r.ref }

// Close releases the handle (and the connection, for OpenRemote
// handles).
func (r *RemoteDataset) Close() error {
	if r.ownsConn {
		return r.c.Close()
	}
	return nil
}

// LevelCount mirrors rdr.Dataset.LevelCount from the fetched
// metadata.
func (r *RemoteDataset) LevelCount(nReaders int) int {
	if nReaders <= 0 {
		nReaders = 1
	}
	base := int64(nReaders) * int64(r.meta.LOD.BasePerReader)
	return lod.NumLevels(r.meta.Total, base, r.meta.LOD.Scale)
}

func (r *RemoteDataset) req(op uint8) *request {
	return &request{Op: op, Dataset: r.ref}
}

func fillOpts(req *request, opts rdr.Options) {
	req.Levels = opts.Levels
	req.Readers = opts.Readers
	req.NoFilter = opts.NoFilter
	req.Fields = opts.Fields
	req.Base = opts.PerFileBase
}

// QueryBox reads the particles intersecting q, server-side.
func (r *RemoteDataset) QueryBox(q geom.Box, opts rdr.Options) (*particle.Buffer, rdr.Stats, error) {
	req := r.req(opQueryBox)
	req.Box = q
	fillOpts(req, opts)
	d, err := r.c.call(req)
	if err != nil {
		return nil, rdr.Stats{}, err
	}
	resp, err := decodeQueryResp(d, r.c.maxFrame)
	if err != nil {
		return nil, rdr.Stats{}, err
	}
	return resp.Buf, resp.Stats.Read, nil
}

// ReadAll reads the whole dataset (optionally only some LOD levels).
func (r *RemoteDataset) ReadAll(opts rdr.Options) (*particle.Buffer, rdr.Stats, error) {
	opts.NoFilter = true
	return r.QueryBox(r.meta.Domain, opts)
}

// KNN returns the k particles nearest p and their distances.
func (r *RemoteDataset) KNN(p geom.Vec3, k int) (*particle.Buffer, []float64, rdr.Stats, error) {
	req := r.req(opKNN)
	req.Point = p
	req.K = k
	d, err := r.c.call(req)
	if err != nil {
		return nil, nil, rdr.Stats{}, err
	}
	resp, err := decodeKNNResp(d, r.c.maxFrame)
	if err != nil {
		return nil, nil, rdr.Stats{}, err
	}
	return resp.Buf, resp.Dists, resp.Stats.Read, nil
}

// Halo reads a patch's particles plus the ghost layer within halo of
// it, separately.
func (r *RemoteDataset) Halo(patch geom.Box, halo float64, opts rdr.Options) (own, ghost *particle.Buffer, st rdr.Stats, err error) {
	req := r.req(opHalo)
	req.Box = patch
	req.Halo = halo
	fillOpts(req, opts)
	d, err := r.c.call(req)
	if err != nil {
		return nil, nil, rdr.Stats{}, err
	}
	resp, err := decodeHaloResp(d, r.c.maxFrame)
	if err != nil {
		return nil, nil, rdr.Stats{}, err
	}
	return resp.Own, resp.Ghost, resp.Stats.Read, nil
}

// DensityGrid estimates per-cell particle counts over the domain from
// the first levels LOD levels; the sampling fraction is also returned.
func (r *RemoteDataset) DensityGrid(dims geom.Idx3, levels, readers int) ([]float64, float64, rdr.Stats, error) {
	req := r.req(opDensityGrid)
	req.Dims = dims
	req.Levels = levels
	req.Readers = readers
	d, err := r.c.call(req)
	if err != nil {
		return nil, 0, rdr.Stats{}, err
	}
	resp, err := decodeDensityResp(d, r.c.maxFrame)
	if err != nil {
		return nil, 0, rdr.Stats{}, err
	}
	return resp.Counts, resp.Fraction, resp.Stats.Read, nil
}

// DensityGridRaw asks the server for unscaled per-cell sample counts
// plus the sampled-particle count (reqFlagRawDensity). A gateway sums
// these across shards and scales once against the merged total, which
// keeps the result bit-identical to a single-node DensityGrid.
func (r *RemoteDataset) DensityGridRaw(dims geom.Idx3, opts rdr.Options) ([]float64, int64, rdr.Stats, error) {
	req := r.req(opDensityGrid)
	req.Dims = dims
	req.Flags |= reqFlagRawDensity
	fillOpts(req, opts)
	d, err := r.c.call(req)
	if err != nil {
		return nil, 0, rdr.Stats{}, err
	}
	resp, err := decodeDensityResp(d, r.c.maxFrame)
	if err != nil {
		return nil, 0, rdr.Stats{}, err
	}
	return resp.Counts, resp.Sampled, resp.Stats.Read, nil
}

// RemoteStream is a progressive LOD stream served level-by-level; each
// NextLevel call acks the previous level (backpressure) and receives
// the next increment. Cancel (or Close) after any prefix to stop the
// server from reading further levels.
type RemoteStream struct {
	c        *Client
	done     bool
	released bool
	level    int
	stats    rdr.Stats
}

// ProgressiveBox opens a progressive stream over the files intersecting
// q. levels > 0 bounds the stream; readers is n in the LOD formula. The
// client connection is dedicated to the stream until it finishes or is
// cancelled.
func (r *RemoteDataset) ProgressiveBox(q geom.Box, levels, readers int) (*RemoteStream, error) {
	return r.ProgressiveBoxBase(q, levels, readers, 0)
}

// ProgressiveBoxBase is ProgressiveBox with an explicit per-file LOD
// base override (0 = server derives it). A gateway passes the merged
// dataset's base so every shard's level boundaries line up.
func (r *RemoteDataset) ProgressiveBoxBase(q geom.Box, levels, readers int, base int64) (*RemoteStream, error) {
	req := r.req(opProgressive)
	req.Box = q
	req.Levels = levels
	req.Readers = readers
	req.Base = base
	r.c.mu.Lock()
	if r.c.broken {
		r.c.mu.Unlock()
		return nil, ErrClientBroken
	}
	// As in Client.call, the lock deliberately spans the stream's conn
	// I/O (deadline arming included): the connection is dedicated to
	// this stream until release().
	//spio:allow lockorder -- mu dedicates the shared conn to this stream until release(); holding it across the I/O is the protocol
	r.c.armDeadline()
	if err := r.c.sendRequest(req); err != nil {
		r.c.broken = true
		r.c.disarmDeadline()
		r.c.mu.Unlock()
		return nil, err
	}
	if h, _, err := r.c.readResp(); err != nil {
		if h == nil || h.Status == statusDraining {
			r.c.broken = true
		}
		r.c.disarmDeadline()
		r.c.mu.Unlock()
		return nil, err
	}
	r.c.disarmDeadline()
	// The lock stays held: the connection speaks this stream until done.
	return &RemoteStream{c: r.c}, nil
}

// Level returns the number of levels already delivered.
func (st *RemoteStream) Level() int { return st.level }

// Done reports whether the stream has ended.
func (st *RemoteStream) Done() bool { return st.done }

// Stats returns the cumulative server-side read telemetry received so
// far.
func (st *RemoteStream) Stats() rdr.Stats { return st.stats }

// NextLevel acks and receives the next level increment; ok is false
// once the stream is exhausted.
func (st *RemoteStream) NextLevel() (*particle.Buffer, bool, error) {
	if st.done {
		return nil, false, nil
	}
	f, err := st.exchange(ackNext)
	if err != nil {
		// An aborted stream leaves un-acked levels on the wire; the conn
		// cannot return to request/response use.
		//spio:allow racegate -- the stream holds c.mu from ProgressiveBox until release(); the write is lock-protected across functions
		st.c.broken = true
		st.release()
		return nil, false, err
	}
	st.level = f.Level + 1
	st.stats = f.Stats.Read
	if f.Done {
		st.done = true
		st.release()
	}
	return f.Buf, true, nil
}

// Cancel stops the stream after the levels already received; the server
// abandons the remaining levels. Safe to call at any point; Close
// implies it.
func (st *RemoteStream) Cancel() error {
	if st.done {
		return nil
	}
	f, err := st.exchange(ackCancel)
	st.done = true
	if err != nil {
		st.c.broken = true // cancel didn't complete: stream position unknown
		st.release()
		return err
	}
	st.release()
	st.stats = f.Stats.Read
	return nil
}

// Close ends the stream (cancelling it if still running).
func (st *RemoteStream) Close() error { return st.Cancel() }

// exchange sends one ack and reads one level frame.
func (st *RemoteStream) exchange(ack uint8) (*streamFrame, error) {
	st.c.armDeadline()
	defer st.c.disarmDeadline()
	var fb frameBuf
	e := newWriter(&fb)
	encodeAck(e, ack)
	if e.err != nil {
		return nil, e.err
	}
	if err := writeFrame(st.c.conn, fb.b); err != nil {
		return nil, err
	}
	_, d, err := st.c.readResp()
	if err != nil {
		return nil, err
	}
	return decodeStreamFrame(d, st.c.maxFrame)
}

// release returns the connection to request/response use.
func (st *RemoteStream) release() {
	if !st.released {
		st.released = true
		st.c.mu.Unlock()
	}
}
