package server

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"spio/internal/agg"
	"spio/internal/core"
	"spio/internal/geom"
	"spio/internal/mpi"
	"spio/internal/particle"
)

// writeDataset writes a uniform dataset into dir (creating it) and
// returns the concatenation of all rank inputs for brute-force
// comparison.
func writeDataset(t testing.TB, dir string, simDims, factor geom.Idx3, perRank int) *particle.Buffer {
	return writeDatasetCodec(t, dir, simDims, factor, perRank, particle.Spec{})
}

// writeDatasetCodec is writeDataset with a per-field compression spec:
// the served files then exercise the decode-on-egress path.
func writeDatasetCodec(t testing.TB, dir string, simDims, factor geom.Idx3, perRank int, codec particle.Spec) *particle.Buffer {
	t.Helper()
	cfg := core.WriteConfig{
		Agg:   agg.Config{Domain: geom.UnitBox(), SimDims: simDims, Factor: factor},
		Seed:  21,
		Codec: codec,
	}
	grid := geom.NewGrid(cfg.Agg.Domain, simDims)
	nRanks := simDims.Volume()
	all := particle.NewBuffer(particle.Uintah(), nRanks*perRank)
	for rank := 0; rank < nRanks; rank++ {
		all.AppendBuffer(particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(rank, simDims)), perRank, 13, rank))
	}
	err := mpi.Run(nRanks, func(c *mpi.Comm) error {
		local := particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(c.Rank(), simDims)), perRank, 13, c.Rank())
		_, err := core.Write(c, dir, cfg, local)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return all
}

// sockAddr returns a fresh, short unix socket address (unix socket
// paths are limited to ~100 bytes; t.TempDir can exceed that).
func sockAddr(t testing.TB) string {
	t.Helper()
	dir, err := os.MkdirTemp("", "spiod")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	return "unix:" + filepath.Join(dir, "s.sock")
}

// startServer serves s on a fresh unix socket and returns the dial
// address. Shutdown runs at test cleanup.
func startServer(t testing.TB, s *Server) string {
	t.Helper()
	addr := sockAddr(t)
	_, path, err := ParseAddr(addr)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := s.Serve(l); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return addr
}
