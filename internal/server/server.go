package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spio/internal/format"
	"spio/internal/particle"
	"spio/internal/query"
	rdr "spio/internal/reader"
)

// Fsck policies for Mount (Config.Fsck).
const (
	// FsckRefuse (the default) fails Mount/resolution for datasets with
	// integrity problems — leftover .spio-tmp files, torn data files,
	// metadata mismatches.
	FsckRefuse = "refuse"
	// FsckWarn logs the problems and serves the dataset anyway.
	FsckWarn = "warn"
	// FsckOff skips the mount-time check entirely.
	FsckOff = "off"
)

// Config tunes a Server. The zero value serves with sane defaults.
type Config struct {
	// Workers bounds concurrently executing requests (default 2×CPU via
	// nothing fancy: 8).
	Workers int
	// QueueDepth bounds requests waiting for a worker; one more fails
	// fast with ErrOverloaded (default 4×Workers).
	QueueDepth int
	// MaxRespBytes is the per-request response byte budget: a query
	// whose particle payload exceeds it fails with a budget status
	// instead of materializing (default 1 GiB). Progressive streams end
	// early (Done) at the budget — a coarse prefix is a valid result.
	MaxRespBytes int64
	// MaxReqBytes bounds one request frame (default 1 MiB).
	MaxReqBytes int64
	// CacheBytes bounds the shared block cache (default 256 MiB).
	CacheBytes int64
	// BlockBytes is the block cache granularity (default DefaultBlockSize).
	BlockBytes int
	// DecodedCacheBytes bounds the decoded-block cache tier in front of
	// the compressed one: whole decoded codec blocks, so repeat queries
	// over a hot working set pay inflate once (default CacheBytes/4;
	// < 0 disables the tier).
	DecodedCacheBytes int64
	// FileCacheSlots is each mounted dataset's open-file cache capacity
	// (default 64).
	FileCacheSlots int
	// Fsck selects the mount-time integrity policy: FsckRefuse (default),
	// FsckWarn, or FsckOff.
	Fsck string
	// WireCodec is the response-compression policy: "" or "any" honors
	// the codec each client requested in its hello; "none" forces raw
	// responses regardless of the request (e.g. when CPU is scarcer than
	// bandwidth).
	WireCodec string
	// Logf, when non-nil, receives server log lines (log.Printf shaped).
	Logf func(format string, args ...any)
}

func (c *Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 8
}

func (c *Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 4 * c.workers()
}

func (c *Config) maxRespBytes() int64 {
	if c.MaxRespBytes > 0 {
		return c.MaxRespBytes
	}
	return 1 << 30
}

func (c *Config) maxReqBytes() uint32 {
	if c.MaxReqBytes > 0 {
		return uint32(c.MaxReqBytes)
	}
	return 1 << 20
}

func (c *Config) cacheBytes() int64 {
	if c.CacheBytes > 0 {
		return c.CacheBytes
	}
	return 256 << 20
}

func (c *Config) decodedCacheBytes() int64 {
	if c.DecodedCacheBytes < 0 {
		return 0
	}
	if c.DecodedCacheBytes > 0 {
		return c.DecodedCacheBytes
	}
	return c.cacheBytes() / 4
}

// wireCodecFor clamps a client's requested codec by the server policy.
func (c *Config) wireCodecFor(requested uint8) uint8 {
	if c.WireCodec == "none" {
		return wireCodecRaw
	}
	return requested
}

func (c *Config) fileCacheSlots() int {
	if c.FileCacheSlots > 0 {
		return c.FileCacheSlots
	}
	return 64
}

// mount is one served name: either a plain dataset directory or a
// time-series base (StepDir convention), resolved per request.
type mount struct {
	name   string
	dir    string
	series bool

	mu sync.Mutex
	// open caches opened datasets: key "" for a plain mount, the decimal
	// step for a series mount.
	open map[string]*rdr.Dataset
}

// Server is the resident serving state: mounted datasets over a shared
// block cache, behind an admission controller.
type Server struct {
	cfg    Config
	cache  *BlockCache
	dcache *DecodedCache // decoded-block tier; nil when disabled
	adm    *admission

	mu        sync.Mutex
	mounts    map[string]*mount
	listeners []net.Listener
	conns     map[*srvConn]struct{}

	stop     chan struct{}
	draining atomic.Bool
	reqWG    sync.WaitGroup // in-flight requests and streams
	connWG   sync.WaitGroup // connection handlers
	acceptWG sync.WaitGroup // accept loops

	metrics metrics

	// requestDelay artificially lengthens request service (tests: holds
	// workers busy to provoke queueing and overload).
	requestDelay time.Duration
}

// New builds a Server; Mount datasets, then Serve listeners.
func New(cfg Config) *Server {
	return &Server{
		cfg:    cfg,
		cache:  NewBlockCache(cfg.cacheBytes(), cfg.BlockBytes),
		dcache: NewDecodedCache(cfg.decodedCacheBytes()),
		adm:    newAdmission(cfg.workers(), cfg.queueDepth()),
		mounts: map[string]*mount{},
		conns:  map[*srvConn]struct{}{},
		stop:   make(chan struct{}),
		metrics: metrics{
			startNano: time.Now().UnixNano(),
		},
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Mount serves dir under name. A directory holding meta.spmd mounts as
// a plain dataset; a directory holding t000000-style step directories
// mounts as a series whose steps resolve as "name@N" ("name" and
// "name@latest" follow the newest readable step). The mount-time fsck
// policy (Config.Fsck) applies to the dataset — for a series, to its
// newest step now and to every step when first served.
func (s *Server) Mount(name, dir string) error {
	if name == "" || strings.ContainsAny(name, "@ \t\n") {
		return fmt.Errorf("spiod: invalid mount name %q", name)
	}
	m := &mount{name: name, dir: dir, open: map[string]*rdr.Dataset{}}
	if _, err := os.Stat(filepath.Join(dir, format.MetaFileName)); err == nil {
		if _, err := s.openDataset(m, ""); err != nil {
			return err
		}
	} else {
		steps, err := rdr.Steps(dir)
		if err != nil {
			return fmt.Errorf("spiod: mount %s: %w", name, err)
		}
		if len(steps) == 0 {
			return fmt.Errorf("spiod: mount %s: %s is neither a dataset nor a step series", name, dir)
		}
		m.series = true
		// Sanity-check the newest step now so a broken series fails at
		// mount, not at first query.
		if _, err := s.openDataset(m, strconv.Itoa(steps[len(steps)-1])); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.mounts[name]; dup {
		return fmt.Errorf("spiod: mount %s: name already in use", name)
	}
	s.mounts[name] = m
	s.logf("spiod: mounted %s -> %s (series=%v)", name, dir, m.series)
	return nil
}

// openDataset opens (or returns the cached) dataset for one mount key,
// applying the fsck policy and wiring the caches. Callers need not hold
// s.mu. m.mu guards only the open map, never the open itself: mount
// fsck reads every file (through the parallel decode pool for
// compressed payloads), and holding the mount lock across that would
// stall every request on the mount. Two concurrent first opens of the
// same key may both do the work; the second to finish closes its copy.
func (s *Server) openDataset(m *mount, key string) (*rdr.Dataset, error) {
	m.mu.Lock()
	ds, ok := m.open[key]
	m.mu.Unlock()
	if ok {
		return ds, nil
	}
	dir := m.dir
	if m.series {
		step, err := strconv.Atoi(key)
		if err != nil {
			return nil, fmt.Errorf("spiod: %s@%s: bad step reference", m.name, key)
		}
		dir = rdr.StepDir(m.dir, step)
	}
	ds, err := rdr.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("spiod: %s: %w", m.name, err)
	}
	if err := s.checkDataset(m.name, ds); err != nil {
		_ = ds.Close() // refusing to serve; the fsck error is the one to report
		return nil, err
	}
	if err := ds.SetFileCache(s.cfg.fileCacheSlots()); err != nil {
		_ = ds.Close() // unwinding a failed mount
		return nil, err
	}
	// Layer the shared block cache under the file cache: every data-file
	// handle the dataset opens reroutes payload reads through it. The
	// decoded tier sits in front of it for compressed files, holding
	// whole decoded blocks so the hot set pays inflate once.
	ds.SetOpenHook(func(df *format.DataFile) {
		df.SetReaderAt(s.cache.ReaderFor(df.Path(), df.ReaderAt()))
		if s.dcache != nil && df.Compressed() {
			df.SetDecodedCache(s.dcache.ForFile(df.Path()))
		}
	})
	m.mu.Lock()
	if cached, ok := m.open[key]; ok {
		// Lost the open race: serve the published copy, discard ours.
		m.mu.Unlock()
		_ = ds.Close()
		return cached, nil
	}
	m.open[key] = ds
	m.mu.Unlock()
	return ds, nil
}

// checkDataset applies the mount-time fsck policy.
func (s *Server) checkDataset(name string, ds *rdr.Dataset) error {
	mode := s.cfg.Fsck
	if mode == "" {
		mode = FsckRefuse
	}
	if mode == FsckOff {
		return nil
	}
	problems := ds.Fsck(rdr.FsckOptions{})
	if len(problems) == 0 {
		return nil
	}
	for _, p := range problems {
		s.logf("spiod: fsck %s (%s): %s", name, ds.Dir(), p.String())
	}
	if mode == FsckWarn {
		return nil
	}
	return fmt.Errorf("spiod: refusing to serve %s: %d fsck problem(s), first: %s (use -fsck=warn to serve anyway)",
		name, len(problems), problems[0].String())
}

// resolve maps a dataset reference — "name", "name@N", "name@latest" —
// to an open dataset.
func (s *Server) resolve(ref string) (*rdr.Dataset, error) {
	name, sel := ref, ""
	if i := strings.IndexByte(ref, '@'); i >= 0 {
		name, sel = ref[:i], ref[i+1:]
	}
	s.mu.Lock()
	m, ok := s.mounts[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("spiod: no dataset mounted as %q", name)
	}
	if !m.series {
		if sel != "" {
			return nil, fmt.Errorf("spiod: %s is not a series (reference %q)", name, ref)
		}
		return s.openDataset(m, "")
	}
	switch sel {
	case "", "latest":
		step, ok, err := rdr.LatestStep(m.dir)
		if err != nil {
			return nil, fmt.Errorf("spiod: %s: %w", name, err)
		}
		if !ok {
			return nil, fmt.Errorf("spiod: %s: no readable steps", name)
		}
		return s.openDataset(m, strconv.Itoa(step))
	default:
		step, err := strconv.Atoi(sel)
		if err != nil || step < 0 {
			return nil, fmt.Errorf("spiod: %s: bad step reference %q", name, sel)
		}
		return s.openDataset(m, strconv.Itoa(step))
	}
}

// list returns the currently servable dataset references.
func (s *Server) list() []string {
	s.mu.Lock()
	mounts := make([]*mount, 0, len(s.mounts))
	for _, m := range s.mounts {
		mounts = append(mounts, m)
	}
	s.mu.Unlock()
	var refs []string
	for _, m := range mounts {
		if !m.series {
			refs = append(refs, m.name)
			continue
		}
		steps, err := rdr.Steps(m.dir)
		if err != nil {
			continue
		}
		for _, st := range steps {
			refs = append(refs, fmt.Sprintf("%s@%d", m.name, st))
		}
	}
	sort.Strings(refs)
	return refs
}

// Serve accepts connections on l until Shutdown. It returns nil on
// drain-triggered listener close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		return errDraining
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	s.acceptWG.Add(1)
	defer s.acceptWG.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			_ = conn.Close() // drain raced the accept: turn the client away
			return nil
		}
		sc := &srvConn{Conn: conn}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handleConn(sc)
		}()
	}
}

// srvConn is one accepted connection plus the mutex that serializes
// frame writes on it. The request loop is sequential, but graceful
// drain writes an unsolicited statusDraining frame from the Shutdown
// goroutine — without the lock that frame could interleave with a late
// handler response and corrupt the stream.
type srvConn struct {
	net.Conn
	wmu sync.Mutex
}

// writeLockedFrame sends one frame under the connection's write lock.
func (c *srvConn) writeLockedFrame(body []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	//spio:allow lockorder -- wmu serializes whole frame writes on this conn; holding it across the I/O is the point
	return writeFrame(c.Conn, body)
}

// Shutdown drains the server: stop accepting, fail queued admissions,
// let in-flight requests and streams finish, then notify and close
// connections. The context bounds the wait.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	close(s.stop)
	s.mu.Lock()
	for _, l := range s.listeners {
		_ = l.Close() // unblocks Accept; drain is the reported outcome
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.reqWG.Wait() // every admitted request/stream completes
		// Snapshot under the lock, notify and close outside it: the
		// notice write and Close can stall on a wedged peer, and holding
		// s.mu through that would freeze accept bookkeeping and the
		// stats path for every other caller.
		s.mu.Lock()
		idle := make([]*srvConn, 0, len(s.conns))
		for c := range s.conns {
			idle = append(idle, c)
		}
		s.mu.Unlock()
		for _, c := range idle {
			// Drain handshake: tell the idle peer we are going away
			// before cutting the connection, so its next call reads a
			// clean statusDraining frame (ErrDraining, retried or routed
			// around) instead of a raw reset. Best effort, bounded by a
			// short deadline — a wedged peer gets the abrupt close.
			var fb frameBuf
			e := newWriter(&fb)
			encodeRespHeader(e, &respHeader{Status: statusDraining, Msg: errDraining.Error()})
			if e.err == nil {
				_ = c.SetWriteDeadline(time.Now().Add(time.Second))
				_ = c.writeLockedFrame(fb.b) // best effort; close follows either way
			}
			_ = c.Close() // idle connections blocked in read
		}
		s.connWG.Wait()
		s.acceptWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// handleConn speaks the protocol on one connection: hello, then a
// request loop.
func (s *Server) handleConn(conn *srvConn) {
	s.metrics.activeConns.Add(1)
	defer s.metrics.activeConns.Add(-1)
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close() // second close after drain is harmless
	}()

	body, err := readFrame(conn, 64)
	if err != nil {
		return
	}
	h, err := decodeHello(newReader(bytes.NewReader(body)))
	if err != nil {
		_ = s.sendStatus(conn, statusError, err.Error())
		return
	}
	if h.Version != protoVersion {
		_ = s.sendStatus(conn, statusError,
			fmt.Sprintf("spiod: protocol version %d not supported (want %d)", h.Version, protoVersion))
		return
	}
	codec := s.cfg.wireCodecFor(h.Codec)
	if err := s.send(conn, statusOK, "", func(e *writer) {
		encodeHelloAck(e, &helloAck{Features: serverFeatures})
	}); err != nil {
		return
	}

	for {
		body, err := readFrame(conn, s.cfg.maxReqBytes())
		if err != nil {
			return // client closed (or drain closed us)
		}
		req, err := decodeRequest(newReader(bytes.NewReader(body)))
		if err != nil {
			_ = s.sendStatus(conn, statusError, err.Error())
			return
		}
		if err := s.handleRequest(conn, req, codec); err != nil {
			return
		}
	}
}

// sendStatus writes a header-only response frame.
func (s *Server) sendStatus(conn *srvConn, status uint8, msg string) error {
	return s.send(conn, status, msg, nil)
}

// send writes one response frame: header, then the payload encoded by
// body (which must leave the writer clean on success).
func (s *Server) send(conn *srvConn, status uint8, msg string, body func(e *writer)) error {
	var fb frameBuf
	e := newWriter(&fb)
	encodeRespHeader(e, &respHeader{Status: status, Msg: msg})
	if body != nil {
		body(e)
	}
	if e.err != nil {
		return e.err
	}
	s.metrics.bytesServed.Add(int64(len(fb.b)) + 4)
	return conn.writeLockedFrame(fb.b)
}

// handleRequest admits and executes one request. A non-nil return tears
// the connection down (wire-level failure); request-level errors travel
// back as status frames.
func (s *Server) handleRequest(conn *srvConn, req *request, codec uint8) error {
	s.reqWG.Add(1)
	defer s.reqWG.Done()
	// Recheck after Add: Shutdown flips draining before waiting, so a
	// request that saw draining==false here is inside the wait.
	if s.draining.Load() {
		s.metrics.drained.Add(1)
		return s.sendStatus(conn, statusDraining, errDraining.Error())
	}
	wait, err := s.adm.acquire(s.stop)
	switch {
	case errors.Is(err, ErrOverloaded):
		s.metrics.overloaded.Add(1)
		return s.sendStatus(conn, statusOverloaded, err.Error())
	case errors.Is(err, errDraining):
		s.metrics.drained.Add(1)
		return s.sendStatus(conn, statusDraining, err.Error())
	case err != nil:
		return s.sendStatus(conn, statusError, err.Error())
	}
	defer s.adm.release()
	if s.requestDelay > 0 {
		time.Sleep(s.requestDelay)
	}
	start := time.Now()
	werr := s.execute(conn, req, codec, wait, start)
	if werr != nil {
		s.metrics.errors.Add(1)
	}
	return werr
}

// execute dispatches an admitted request.
func (s *Server) execute(conn *srvConn, req *request, codec uint8, wait time.Duration, start time.Time) error {
	// Ops that need no dataset first.
	switch req.Op {
	case opStats:
		blob := s.snapshotJSON()
		s.metrics.requests.Add(1)
		return s.send(conn, statusOK, "", func(e *writer) { encodeBlob(e, blob) })
	case opList:
		names := s.list()
		s.metrics.requests.Add(1)
		return s.send(conn, statusOK, "", func(e *writer) { encodeNames(e, names) })
	}

	ds, err := s.resolve(req.Dataset)
	if err != nil {
		s.metrics.errors.Add(1)
		return s.sendStatus(conn, statusError, err.Error())
	}
	opts := rdr.Options{
		Levels:      req.Levels,
		Readers:     req.Readers,
		NoFilter:    req.NoFilter,
		Fields:      req.Fields,
		PerFileBase: req.Base,
	}

	finish := func(st rdr.Stats) wireStats {
		ws := wireStats{Read: st, QueueWait: int64(wait), Service: int64(time.Since(start))}
		s.metrics.note(&ws)
		return ws
	}

	switch req.Op {
	case opMeta:
		var mb bytes.Buffer
		if err := format.EncodeMeta(&mb, ds.Meta()); err != nil {
			s.metrics.errors.Add(1)
			return s.sendStatus(conn, statusError, err.Error())
		}
		s.metrics.requests.Add(1)
		return s.send(conn, statusOK, "", func(e *writer) { encodeBlob(e, mb.Bytes()) })

	case opQueryBox:
		buf, st, err := ds.QueryBox(req.Box, opts)
		if err != nil {
			s.metrics.errors.Add(1)
			return s.sendStatus(conn, statusError, err.Error())
		}
		if buf.Bytes() > s.cfg.maxRespBytes() {
			s.metrics.errors.Add(1)
			return s.sendStatus(conn, statusBudget, budgetMsg(buf.Bytes(), s.cfg.maxRespBytes()))
		}
		resp := &queryResp{Stats: finish(st), Buf: buf}
		return s.send(conn, statusOK, "", func(e *writer) { encodeQueryResp(e, resp, codec) })

	case opKNN:
		buf, dists, st, err := query.KNN(ds, req.Point, req.K)
		if err != nil {
			s.metrics.errors.Add(1)
			return s.sendStatus(conn, statusError, err.Error())
		}
		resp := &knnResp{Stats: finish(st), Buf: buf, Dists: dists}
		return s.send(conn, statusOK, "", func(e *writer) { encodeKNNResp(e, resp, codec) })

	case opHalo:
		own, ghost, st, err := query.Halo(ds, req.Box, req.Halo, opts)
		if err != nil {
			s.metrics.errors.Add(1)
			return s.sendStatus(conn, statusError, err.Error())
		}
		if own.Bytes()+ghost.Bytes() > s.cfg.maxRespBytes() {
			s.metrics.errors.Add(1)
			return s.sendStatus(conn, statusBudget, budgetMsg(own.Bytes()+ghost.Bytes(), s.cfg.maxRespBytes()))
		}
		resp := &haloResp{Stats: finish(st), Own: own, Ghost: ghost}
		return s.send(conn, statusOK, "", func(e *writer) { encodeHaloResp(e, resp, codec) })

	case opDensityGrid:
		if req.Flags&reqFlagRawDensity != 0 {
			counts, sampled, st, err := query.DensityGridRaw(ds, req.Dims, opts)
			if err != nil {
				s.metrics.errors.Add(1)
				return s.sendStatus(conn, statusError, err.Error())
			}
			resp := &densityResp{Stats: finish(st), Counts: counts, Fraction: 1, Sampled: sampled}
			return s.send(conn, statusOK, "", func(e *writer) { encodeDensityResp(e, resp) })
		}
		counts, frac, st, err := query.DensityGrid(ds, req.Dims, req.Levels, req.Readers)
		if err != nil {
			s.metrics.errors.Add(1)
			return s.sendStatus(conn, statusError, err.Error())
		}
		resp := &densityResp{Stats: finish(st), Counts: counts, Fraction: frac}
		return s.send(conn, statusOK, "", func(e *writer) { encodeDensityResp(e, resp) })

	case opProgressive:
		return s.executeStream(conn, req, ds, codec, wait, start)

	default:
		s.metrics.errors.Add(1)
		return s.sendStatus(conn, statusError, fmt.Sprintf("spiod: unknown op %d", req.Op))
	}
}

func budgetMsg(got, budget int64) string {
	return fmt.Sprintf("spiod: response of %d bytes exceeds the per-request budget of %d", got, budget)
}

// executeStream serves a progressive LOD stream: one level increment
// per client ack, so the client's consumption rate is the server's send
// rate (backpressure), and an ackCancel stops after any prefix. The
// worker slot is held for the stream's whole duration.
func (s *Server) executeStream(conn *srvConn, req *request, ds *rdr.Dataset, codec uint8, wait time.Duration, start time.Time) error {
	var entries []*format.FileEntry
	if req.NoFilter {
		m := ds.Meta()
		for i := range m.Files {
			entries = append(entries, &m.Files[i])
		}
	} else {
		entries = ds.Meta().FilesIntersecting(req.Box)
	}
	if len(entries) == 0 {
		s.metrics.errors.Add(1)
		return s.sendStatus(conn, statusError, "spiod: no files intersect the requested box")
	}
	p, err := ds.ProgressiveBase(entries, req.Readers, req.Base)
	if err != nil {
		s.metrics.errors.Add(1)
		return s.sendStatus(conn, statusError, err.Error())
	}
	defer func() {
		_ = p.Close() // stream already answered; close is best-effort
	}()
	if err := s.sendStatus(conn, statusOK, ""); err != nil {
		return err
	}
	s.metrics.streams.Add(1)

	var cum wireStats
	cum.Read.FilesOpened = len(entries)
	var sent int64
	budget := s.cfg.maxRespBytes()
	for {
		ab, err := readFrame(conn, 16)
		if err != nil {
			return err
		}
		ack, err := decodeAck(newReader(bytes.NewReader(ab)))
		if err != nil {
			return s.sendStatus(conn, statusError, err.Error())
		}
		if ack == ackCancel {
			s.metrics.streamCancels.Add(1)
			s.metrics.note(&cum)
			f := &streamFrame{Level: p.Level(), Done: true, Stats: cum,
				Buf: particle.NewBuffer(ds.Meta().Schema, 0)}
			return s.send(conn, statusOK, "", func(e *writer) { encodeStreamFrame(e, f, codec) })
		}
		buf, ok, err := p.NextLevel()
		if err != nil {
			return s.sendStatus(conn, statusError, err.Error())
		}
		if !ok {
			// Client acked past the end; close the stream cleanly.
			f := &streamFrame{Level: p.Level(), Done: true, Stats: cum,
				Buf: particle.NewBuffer(ds.Meta().Schema, 0)}
			return s.send(conn, statusOK, "", func(e *writer) { encodeStreamFrame(e, f, codec) })
		}
		sent += buf.Bytes()
		cum.Read.ParticlesRead += int64(buf.Len())
		cum.Read.ParticlesKept += int64(buf.Len())
		cum.Read.BytesRead += buf.Bytes()
		cum.QueueWait = int64(wait)
		cum.Service = int64(time.Since(start))
		done := p.Done() ||
			(req.Levels > 0 && p.Level() >= req.Levels) ||
			sent >= budget // LOD semantics: any prefix is a valid subset
		f := &streamFrame{Level: p.Level() - 1, Done: done, Stats: cum, Buf: buf}
		if err := s.send(conn, statusOK, "", func(e *writer) { encodeStreamFrame(e, f, codec) }); err != nil {
			return err
		}
		s.metrics.streamLevels.Add(1)
		if done {
			s.metrics.note(&cum)
			return nil
		}
	}
}
