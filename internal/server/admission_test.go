package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmissionBoundsConcurrencyAndQueue(t *testing.T) {
	a := newAdmission(2, 1)
	stop := make(chan struct{})

	// Fill both worker slots.
	for i := 0; i < 2; i++ {
		if _, err := a.acquire(stop); err != nil {
			t.Fatal(err)
		}
	}

	// One waiter fits in the queue; it blocks until a release.
	var queuedDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	queued := make(chan struct{})
	go func() {
		defer wg.Done()
		close(queued)
		wait, err := a.acquire(stop)
		if err != nil {
			t.Errorf("queued acquire: %v", err)
		}
		if wait <= 0 {
			t.Errorf("queued acquire reported no wait")
		}
		queuedDone.Store(true)
	}()
	<-queued
	// Let the goroutine reach its blocking select.
	time.Sleep(20 * time.Millisecond)

	// Queue is full: the next acquire fails fast.
	if _, err := a.acquire(stop); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-queue acquire: %v, want ErrOverloaded", err)
	}
	if queuedDone.Load() {
		t.Fatal("queued acquire ran before any release")
	}

	a.release()
	wg.Wait()
	if !queuedDone.Load() {
		t.Fatal("queued acquire never completed")
	}
}

func TestAdmissionDrainFailsQueuedAcquires(t *testing.T) {
	a := newAdmission(1, 4)
	stop := make(chan struct{})
	if _, err := a.acquire(stop); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := a.acquire(stop)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	select {
	case err := <-errc:
		if !errors.Is(err, errDraining) {
			t.Fatalf("drained acquire: %v, want errDraining", err)
		}
	case <-time.After(time.Second):
		t.Fatal("queued acquire did not observe drain")
	}
}
