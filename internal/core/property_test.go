package core

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"spio/internal/agg"
	"spio/internal/format"
	"spio/internal/geom"
	"spio/internal/lod"
	"spio/internal/mpi"
	"spio/internal/particle"
)

// Randomized end-to-end property tests: for random decompositions,
// factors, schemas and LOD parameters, a write must produce a dataset
// whose files conserve the input multiset and respect spatial locality.

// randomSchema builds a schema with 1-5 random extra fields.
func randomSchema(r *rand.Rand) *particle.Schema {
	fields := []particle.Field{{Name: particle.PositionField, Kind: particle.Float64, Components: 3}}
	n := 1 + r.Intn(5)
	for i := 0; i < n; i++ {
		kind := particle.Float64
		if r.Intn(2) == 0 {
			kind = particle.Float32
		}
		fields = append(fields, particle.Field{
			Name:       fmt.Sprintf("v%d", i),
			Kind:       kind,
			Components: 1 + r.Intn(4),
		})
	}
	return particle.MustSchema(fields)
}

// randomConfig picks a random decomposition (≤ 32 ranks) and a factor
// dividing it.
func randomConfig(r *rand.Rand) (geom.Idx3, geom.Idx3) {
	pick := func() (int, int) {
		dims := []int{1, 2, 4}
		d := dims[r.Intn(len(dims))]
		var fs []int
		for _, f := range []int{1, 2, 4} {
			if d%f == 0 {
				fs = append(fs, f)
			}
		}
		return d, fs[r.Intn(len(fs))]
	}
	dx, fx := pick()
	dy, fy := pick()
	dz, fz := pick()
	return geom.I3(dx, dy, dz), geom.I3(fx, fy, fz)
}

func TestRandomizedWriteInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 12; trial++ {
		simDims, factor := randomConfig(r)
		nRanks := simDims.Volume()
		schema := randomSchema(r)
		perRank := 10 + r.Intn(200)
		lodParams := lod.Params{BasePerReader: 1 + r.Intn(64), Scale: 2 + r.Intn(3)}
		heuristic := lod.Random
		if r.Intn(2) == 0 {
			heuristic = lod.DensityStratified
		}
		dir := t.TempDir()
		cfg := WriteConfig{
			Agg:         agg.Config{Domain: geom.UnitBox(), SimDims: simDims, Factor: factor},
			LOD:         lodParams,
			Heuristic:   heuristic,
			Seed:        int64(trial),
			FieldRanges: r.Intn(2) == 0,
			Checksum:    r.Intn(2) == 0,
		}
		grid := geom.NewGrid(geom.UnitBox(), simDims)
		err := mpi.Run(nRanks, func(c *mpi.Comm) error {
			local := particle.Uniform(schema, grid.CellBox(geom.Unlinear(c.Rank(), simDims)), perRank, int64(trial), c.Rank())
			_, err := Write(c, dir, cfg, local)
			return err
		})
		if err != nil {
			t.Fatalf("trial %d (%v/%v, %v): %v", trial, simDims, factor, schema, err)
		}

		meta, err := format.ReadMeta(dir)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if meta.Total != int64(nRanks*perRank) {
			t.Fatalf("trial %d: total %d, want %d", trial, meta.Total, nRanks*perRank)
		}
		if len(meta.Files) != cfg.Agg.NumFiles() {
			t.Fatalf("trial %d: %d files, want %d", trial, len(meta.Files), cfg.Agg.NumFiles())
		}
		if !meta.Schema.Equal(schema) {
			t.Fatalf("trial %d: schema corrupted", trial)
		}
		// Every file's particles are inside its partition and counted.
		var sum int64
		for _, fe := range meta.Files {
			df, err := format.OpenDataFile(filepath.Join(dir, fe.Name))
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if cfg.Checksum {
				if err := df.VerifyPayload(); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
			}
			buf, err := df.ReadAll()
			df.Close()
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			sum += int64(buf.Len())
			for i := 0; i < buf.Len(); i++ {
				p := buf.Position(i)
				if !fe.Partition.Contains(p) && !fe.Partition.ContainsClosed(p) {
					t.Fatalf("trial %d: particle outside partition", trial)
				}
			}
		}
		if sum != meta.Total {
			t.Fatalf("trial %d: files hold %d, metadata says %d", trial, sum, meta.Total)
		}
	}
}

func TestUnusualLODParamsEndToEnd(t *testing.T) {
	// A dataset written with P=8, S=4 must honour its own schedule when
	// read back.
	dir := t.TempDir()
	simDims := geom.I3(2, 1, 1)
	cfg := WriteConfig{
		Agg: agg.Config{Domain: geom.UnitBox(), SimDims: simDims, Factor: geom.I3(2, 1, 1)},
		LOD: lod.Params{BasePerReader: 8, Scale: 4},
	}
	grid := geom.NewGrid(geom.UnitBox(), simDims)
	err := mpi.Run(2, func(c *mpi.Comm) error {
		local := particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(c.Rank(), simDims)), 100, 1, c.Rank())
		_, err := Write(c, dir, cfg, local)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := format.ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.LOD.BasePerReader != 8 || meta.LOD.Scale != 4 {
		t.Errorf("LOD params = %+v", meta.LOD)
	}
	df, err := format.OpenDataFile(filepath.Join(dir, meta.Files[0].Name))
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	// Single file of 200 particles, per-file base 8, S=4: levels are
	// 8, 32, 128, 32.
	for i, want := range []int64{8, 40, 168, 200} {
		buf, err := df.ReadLevels(8, i+1)
		if err != nil {
			t.Fatal(err)
		}
		if int64(buf.Len()) != want {
			t.Errorf("levels %d: %d particles, want %d", i+1, buf.Len(), want)
		}
	}
}
