package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spio/internal/agg"
	"spio/internal/fault"
	"spio/internal/format"
	"spio/internal/geom"
	"spio/internal/mpi"
	"spio/internal/particle"
	"spio/internal/reader"
)

// runWithWatchdog runs a collective under a deadline: if the ranks do
// not all return, the abort protocol has deadlocked and the test fails
// loudly instead of hanging the suite.
func runWithWatchdog(t *testing.T, n int, timeout time.Duration, fn func(c *mpi.Comm) error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- mpi.Run(n, fn) }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		t.Fatalf("collective write did not terminate within %v (abort-path deadlock)", timeout)
		return nil
	}
}

// listDatasetFiles returns the names in dir (empty slice if dir is
// missing, which is also a valid post-abort state).
func listDatasetFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// TestFaultDataWriteAbortsAllRanks is the deadlock regression of the
// error-agreement protocol: one aggregator's data-file write fails
// persistently, and every one of the 8 ranks — including the 6 that
// performed no I/O at all — must observe a non-nil error, promptly, with
// no partial outputs left visible. The same directory must then accept
// a clean write.
func TestFaultDataWriteAbortsAllRanks(t *testing.T) {
	dir := t.TempDir()
	simDims := geom.I3(8, 1, 1)
	cfg := WriteConfig{
		Agg:  agg.Config{Domain: geom.UnitBox(), SimDims: simDims, Factor: geom.I3(4, 1, 1)},
		Seed: 7,
	}
	inj := fault.NewInjector()
	inj.Add(4, fault.Fault{Op: fault.OpWrite, Path: format.DataFileName(4)})

	grid := geom.NewGrid(geom.UnitBox(), simDims)
	errs := make([]error, 8)
	err := runWithWatchdog(t, 8, 60*time.Second, func(c *mpi.Comm) error {
		local := particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(c.Rank(), simDims)), 40, 5, c.Rank())
		rcfg := cfg
		rcfg.FS = inj.FS(c.Rank())
		_, errs[c.Rank()] = Write(c, dir, rcfg, local)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, werr := range errs {
		if werr == nil {
			t.Errorf("rank %d returned nil from an agreed-failed write", r)
		}
	}
	// The failing rank reports its own cause; the others an agreed
	// summary naming the phase.
	if !errors.Is(errs[4], fault.ErrNoSpace) {
		t.Errorf("rank 4 error %v does not wrap the injected ENOSPC", errs[4])
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "data file write") {
		t.Errorf("bystander rank error %v does not name the failed phase", errs[1])
	}
	if inj.Injected() == 0 {
		t.Fatal("fault was never injected")
	}

	// Fail-stop: no metadata, no data files (aggregator 0's already
	// published file must have been removed by the abort), no temps.
	for _, name := range listDatasetFiles(t, dir) {
		t.Errorf("aborted write left %q visible", name)
	}

	// The aborted directory must accept a clean write that reads back.
	err = mpi.Run(8, func(c *mpi.Comm) error {
		local := particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(c.Rank(), simDims)), 40, 5, c.Rank())
		_, err := Write(c, dir, cfg, local)
		return err
	})
	if err != nil {
		t.Fatalf("clean write after abort: %v", err)
	}
	meta, err := format.ReadMeta(dir)
	if err != nil {
		t.Fatalf("reading back after abort+rewrite: %v", err)
	}
	if meta.Total != 8*40 {
		t.Errorf("total = %d, want 320", meta.Total)
	}
	ds, err := reader.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if problems := ds.Fsck(reader.FsckOptions{Deep: true}); len(problems) != 0 {
		t.Errorf("rewritten dataset fails fsck: %v", problems)
	}
}

// TestFaultMetaWriteAbortsAllRanks fails the final metadata rename on
// rank 0: the write is fully done on every aggregator, yet the agreed
// outcome is failure, and the abort removes the already-published data
// files so no metadata-less orphans remain.
func TestFaultMetaWriteAbortsAllRanks(t *testing.T) {
	dir := t.TempDir()
	simDims := geom.I3(4, 1, 1)
	cfg := WriteConfig{
		Agg: agg.Config{Domain: geom.UnitBox(), SimDims: simDims, Factor: geom.I3(2, 1, 1)},
	}
	inj := fault.NewInjector()
	inj.Add(0, fault.Fault{Op: fault.OpRename, Path: format.MetaFileName})

	grid := geom.NewGrid(geom.UnitBox(), simDims)
	errs := make([]error, 4)
	err := runWithWatchdog(t, 4, 60*time.Second, func(c *mpi.Comm) error {
		local := particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(c.Rank(), simDims)), 25, 3, c.Rank())
		rcfg := cfg
		rcfg.FS = inj.FS(c.Rank())
		_, errs[c.Rank()] = Write(c, dir, rcfg, local)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, werr := range errs {
		if werr == nil {
			t.Errorf("rank %d returned nil from an agreed-failed write", r)
		}
	}
	for _, name := range listDatasetFiles(t, dir) {
		t.Errorf("aborted write left %q visible", name)
	}
}

// TestFaultTransientWriteRetries injects a single transient write error
// on an aggregator: the bounded retry inside the atomic writer must
// absorb it and the collective write must succeed end to end.
func TestFaultTransientWriteRetries(t *testing.T) {
	dir := t.TempDir()
	simDims := geom.I3(2, 1, 1)
	cfg := WriteConfig{
		Agg: agg.Config{Domain: geom.UnitBox(), SimDims: simDims, Factor: geom.I3(2, 1, 1)},
	}
	inj := fault.NewInjector()
	inj.Add(0, fault.Fault{
		Op:    fault.OpWrite,
		Path:  format.DataFileName(0),
		Err:   fault.Transient(fmt.Errorf("injected flaky write")),
		Count: 1,
	})

	grid := geom.NewGrid(geom.UnitBox(), simDims)
	err := runWithWatchdog(t, 2, 60*time.Second, func(c *mpi.Comm) error {
		local := particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(c.Rank(), simDims)), 30, 9, c.Rank())
		rcfg := cfg
		rcfg.FS = inj.FS(c.Rank())
		_, err := Write(c, dir, rcfg, local)
		return err
	})
	if err != nil {
		t.Fatalf("write with one transient fault: %v", err)
	}
	if got := inj.Injected(); got != 1 {
		t.Errorf("injected %d faults, want 1", got)
	}
	meta, err := format.ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Total != 60 {
		t.Errorf("total = %d, want 60", meta.Total)
	}
}

// TestFsckDetectsTornAndPartialWrites simulates a crash after a
// successful write — a data file truncated mid-record and a leftover
// temp file — and requires Fsck to call out both.
func TestFsckDetectsTornAndPartialWrites(t *testing.T) {
	dir := writeUniform(t, geom.I3(4, 1, 1), geom.I3(2, 1, 1), 30, nil)

	// Tear the first data file: keep the header but cut the payload.
	name := format.DataFileName(0)
	path := filepath.Join(dir, name)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	// Leave a stray temp file as an interrupted atomic write would.
	tmp := filepath.Join(dir, format.DataFileName(2)+format.TempSuffix)
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	ds, err := reader.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	problems := ds.Fsck(reader.FsckOptions{Deep: true})
	var sawTorn, sawTemp bool
	for _, p := range problems {
		if strings.Contains(p.Err.Error(), "torn or truncated") {
			sawTorn = true
		}
		if strings.Contains(p.Err.Error(), "leftover temp file") {
			sawTemp = true
		}
	}
	if !sawTorn {
		t.Errorf("fsck missed the torn data file; problems: %v", problems)
	}
	if !sawTemp {
		t.Errorf("fsck missed the leftover temp file; problems: %v", problems)
	}
}

// TestWriteAdaptiveRejectsZeroFactor is the divide-by-zero regression:
// an adaptive write with a zero factor component must fail config
// validation on every rank, not panic while deriving the grid shape.
func TestWriteAdaptiveRejectsZeroFactor(t *testing.T) {
	errs := make([]error, 4)
	err := runWithWatchdog(t, 4, 60*time.Second, func(c *mpi.Comm) error {
		cfg := WriteConfig{
			Agg:      agg.Config{Domain: geom.UnitBox(), SimDims: geom.I3(4, 1, 1), Factor: geom.I3(0, 1, 1)},
			Adaptive: true,
		}
		_, errs[c.Rank()] = Write(c, t.TempDir(), cfg, particle.NewBuffer(particle.Uintah(), 0))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, werr := range errs {
		if werr == nil {
			t.Errorf("rank %d accepted a zero factor component", r)
		}
	}
}

// TestWriteEmptyAggregatorRoundTrip drives an aggregator that receives
// zero particles (the nil-buffer crash regression) with field ranges on
// (the ±Inf sentinel regression): the write must succeed, the empty
// file must carry no range rows, range queries must skip it, and the
// dataset must read back whole.
func TestWriteEmptyAggregatorRoundTrip(t *testing.T) {
	dir := t.TempDir()
	simDims := geom.I3(4, 1, 1)
	cfg := WriteConfig{
		Agg:         agg.Config{Domain: geom.UnitBox(), SimDims: simDims, Factor: geom.I3(2, 1, 1)},
		FieldRanges: true,
	}
	grid := geom.NewGrid(geom.UnitBox(), simDims)
	err := runWithWatchdog(t, 4, 60*time.Second, func(c *mpi.Comm) error {
		// Only the left half of the domain holds particles: aggregator 2's
		// partition (right half) receives nothing from anyone.
		local := particle.NewBuffer(particle.Uintah(), 0)
		if c.Rank() < 2 {
			local = particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(c.Rank(), simDims)), 50, 13, c.Rank())
		}
		_, err := Write(c, dir, cfg, local)
		return err
	})
	if err != nil {
		t.Fatalf("write with an empty aggregator: %v", err)
	}

	meta, err := format.ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Files) != 2 {
		t.Fatalf("%d files, want 2", len(meta.Files))
	}
	if meta.Total != 100 {
		t.Errorf("total = %d, want 100", meta.Total)
	}
	var empty *format.FileEntry
	for i := range meta.Files {
		fe := &meta.Files[i]
		if fe.Count == 0 {
			empty = fe
		} else if len(fe.FieldMin) == 0 {
			t.Errorf("populated file %s lost its field ranges", fe.Name)
		}
	}
	if empty == nil {
		t.Fatal("no empty file entry; test premise broken")
	}
	if len(empty.FieldMin) != 0 || len(empty.FieldMax) != 0 {
		t.Errorf("empty file %s stores %d range rows (would be ±Inf sentinels)", empty.Name, len(empty.FieldMin))
	}

	ds, err := reader.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	// Range queries must skip the empty file outright…
	hits, err := ds.QueryFieldRange("position", 0, -1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range hits {
		if e.Count == 0 {
			t.Errorf("range query returned empty file %s", e.Name)
		}
	}
	// …and plain reads must tolerate it.
	buf, _, err := ds.ReadAll(reader.Options{})
	if err != nil {
		t.Fatalf("reading a dataset with an empty file: %v", err)
	}
	if buf.Len() != 100 {
		t.Errorf("read back %d particles, want 100", buf.Len())
	}
	if problems := ds.Fsck(reader.FsckOptions{Deep: true, Checksums: true}); len(problems) != 0 {
		t.Errorf("dataset with empty file fails fsck: %v", problems)
	}
}
