package core

import (
	"math"
	"strings"
	"testing"

	"spio/internal/agg"
	"spio/internal/geom"
	"spio/internal/mpi"
	"spio/internal/particle"
)

func TestValidateInputRejectsNaN(t *testing.T) {
	cfg := WriteConfig{
		Agg:           agg.Config{Domain: geom.UnitBox(), SimDims: geom.I3(2, 1, 1), Factor: geom.I3(1, 1, 1)},
		ValidateInput: true,
	}
	err := mpi.Run(2, func(c *mpi.Comm) error {
		local := particle.Uniform(particle.Uintah(), geom.UnitBox(), 10, 1, c.Rank())
		if c.Rank() == 1 {
			local.SetPosition(3, geom.V3(math.NaN(), 0.5, 0.5))
		}
		_, werr := Write(c, t.TempDir(), cfg, local)
		if werr == nil {
			t.Errorf("rank %d: NaN position accepted", c.Rank())
			return nil
		}
		if c.Rank() == 1 && !strings.Contains(werr.Error(), "non-finite") {
			t.Errorf("unexpected error %v", werr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestValidateInputRejectsOutOfDomain(t *testing.T) {
	cfg := WriteConfig{
		Agg:           agg.Config{Domain: geom.UnitBox(), SimDims: geom.I3(2, 1, 1), Factor: geom.I3(1, 1, 1)},
		ValidateInput: true,
	}
	err := mpi.Run(2, func(c *mpi.Comm) error {
		local := particle.Uniform(particle.Uintah(), geom.UnitBox(), 5, 1, c.Rank())
		if c.Rank() == 0 {
			local.SetPosition(0, geom.V3(1.5, 0.5, 0.5))
		}
		_, werr := Write(c, t.TempDir(), cfg, local)
		if werr == nil {
			t.Errorf("rank %d: out-of-domain particle accepted", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestValidateInputPassesCleanData(t *testing.T) {
	dir := writeUniform(t, geom.I3(2, 2, 1), geom.I3(2, 1, 1), 20, func(cfg *WriteConfig) {
		cfg.ValidateInput = true
	})
	if dir == "" {
		t.Fatal("no dataset")
	}
}
