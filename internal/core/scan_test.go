package core

import (
	"fmt"
	"path/filepath"
	"testing"

	"spio/internal/agg"
	"spio/internal/format"
	"spio/internal/geom"
	"spio/internal/mpi"
	"spio/internal/particle"
)

func TestWriteScanNonAligned(t *testing.T) {
	// A 3x1x1 aggregation-grid over a 4x2x1 simulation: patches straddle
	// partitions, forcing the per-particle scan path of Section 3.
	dir := t.TempDir()
	simDims := geom.I3(4, 2, 1)
	cfg := WriteConfig{
		Agg:     agg.Config{Domain: geom.UnitBox(), SimDims: simDims, Factor: geom.I3(1, 1, 1)},
		AggDims: geom.I3(3, 1, 1),
		Seed:    5,
	}
	grid := geom.NewGrid(geom.UnitBox(), simDims)
	err := mpi.Run(8, func(c *mpi.Comm) error {
		local := particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(c.Rank(), simDims)), 100, 3, c.Rank())
		_, err := Write(c, dir, cfg, local)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := format.ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Files) != 3 {
		t.Fatalf("%d files, want 3", len(meta.Files))
	}
	if meta.Total != 800 {
		t.Errorf("total = %d", meta.Total)
	}
	// Non-aligned writes record a zero partition factor as the marker.
	if meta.PartitionFactor != (geom.Idx3{}) {
		t.Errorf("partition factor = %v, want zero marker", meta.PartitionFactor)
	}
	if meta.AggDims != geom.I3(3, 1, 1) {
		t.Errorf("agg dims = %v", meta.AggDims)
	}
	// Spatial locality still holds: each file's particles sit inside its
	// partition.
	for _, fe := range meta.Files {
		df, err := format.OpenDataFile(filepath.Join(dir, fe.Name))
		if err != nil {
			t.Fatal(err)
		}
		buf, _ := df.ReadAll()
		df.Close()
		for i := 0; i < buf.Len(); i++ {
			p := buf.Position(i)
			if !fe.Partition.Contains(p) && !fe.Partition.ContainsClosed(p) {
				t.Fatalf("file %s holds out-of-partition particle", fe.Name)
			}
		}
	}
}

func TestWriteScanAndAdaptiveExclusive(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		cfg := WriteConfig{
			Agg:      agg.Config{Domain: geom.UnitBox(), SimDims: geom.I3(2, 1, 1), Factor: geom.I3(1, 1, 1)},
			AggDims:  geom.I3(2, 1, 1),
			Adaptive: true,
		}
		_, err := Write(c, t.TempDir(), cfg, particle.NewBuffer(particle.Uintah(), 0))
		if err == nil {
			return fmt.Errorf("exclusive options accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriteScanRejectsTooManyPartitions(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		cfg := WriteConfig{
			Agg:     agg.Config{Domain: geom.UnitBox(), SimDims: geom.I3(2, 1, 1), Factor: geom.I3(1, 1, 1)},
			AggDims: geom.I3(4, 1, 1),
		}
		_, err := Write(c, t.TempDir(), cfg, particle.NewBuffer(particle.Uintah(), 0))
		if err == nil {
			return fmt.Errorf("4 partitions on 2 ranks accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
