package core

import (
	"testing"

	"spio/internal/agg"
	"spio/internal/format"
	"spio/internal/geom"
	"spio/internal/mpi"
	"spio/internal/particle"
)

// TestWrite512Ranks smoke-tests the local engine at the paper's smallest
// evaluation scale: 512 goroutine ranks writing through a (2,2,2)
// aggregation-grid. It keeps per-rank loads small so the test stays
// fast, but every protocol step runs at full width.
func TestWrite512Ranks(t *testing.T) {
	if testing.Short() {
		t.Skip("512-rank smoke test skipped in -short mode")
	}
	dir := t.TempDir()
	simDims := geom.I3(8, 8, 8)
	const nRanks = 512
	const perRank = 64
	grid := geom.NewGrid(geom.UnitBox(), simDims)
	cfg := WriteConfig{
		Agg: agg.Config{Domain: geom.UnitBox(), SimDims: simDims, Factor: geom.I3(2, 2, 2)},
	}
	err := mpi.Run(nRanks, func(c *mpi.Comm) error {
		local := particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(c.Rank(), simDims)), perRank, 3, c.Rank())
		_, err := Write(c, dir, cfg, local)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := format.ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Files) != 64 {
		t.Errorf("files = %d, want 64", len(meta.Files))
	}
	if meta.Total != nRanks*perRank {
		t.Errorf("total = %d, want %d", meta.Total, nRanks*perRank)
	}
	for _, fe := range meta.Files {
		if fe.Count != 8*perRank {
			t.Errorf("file %s holds %d, want %d", fe.Name, fe.Count, 8*perRank)
		}
	}
}

// TestWrite512RanksAdaptive runs the adaptive path at the same width
// with a half-occupied domain.
func TestWrite512RanksAdaptive(t *testing.T) {
	if testing.Short() {
		t.Skip("512-rank smoke test skipped in -short mode")
	}
	dir := t.TempDir()
	simDims := geom.I3(8, 8, 8)
	const nRanks = 512
	grid := geom.NewGrid(geom.UnitBox(), simDims)
	cfg := WriteConfig{
		Agg:      agg.Config{Domain: geom.UnitBox(), SimDims: simDims, Factor: geom.I3(2, 2, 2)},
		Adaptive: true,
	}
	err := mpi.Run(nRanks, func(c *mpi.Comm) error {
		patch := grid.CellBox(geom.Unlinear(c.Rank(), simDims))
		local := particle.Occupancy(particle.Uintah(), geom.UnitBox(), patch, 64, 0.5, 7, c.Rank())
		_, err := Write(c, dir, cfg, local)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := format.ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Total != 512*64 {
		t.Errorf("total = %d", meta.Total)
	}
	empty := 0
	for _, fe := range meta.Files {
		if fe.Count == 0 {
			empty++
		}
	}
	if empty != 0 {
		t.Errorf("%d of %d adaptive files empty", empty, len(meta.Files))
	}
}
