package core

import (
	"fmt"
	"testing"

	"spio/internal/agg"
	"spio/internal/format"
	"spio/internal/geom"
	"spio/internal/mpi"
	"spio/internal/particle"
)

func TestWriteAsyncOverlapsForegroundCommunication(t *testing.T) {
	dir := t.TempDir()
	simDims := geom.I3(4, 2, 1)
	grid := geom.NewGrid(geom.UnitBox(), simDims)
	cfg := WriteConfig{
		Agg: agg.Config{Domain: geom.UnitBox(), SimDims: simDims, Factor: geom.I3(2, 2, 1)},
	}
	err := mpi.Run(8, func(c *mpi.Comm) error {
		local := particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(c.Rank(), simDims)), 500, 3, c.Rank())
		pending := WriteAsync(c, dir, cfg, local)

		// Foreground continues with its own collectives and P2P while the
		// checkpoint drains in the background.
		for i := 0; i < 20; i++ {
			if sum := c.Allreduce(1, mpi.OpSum); sum != 8 {
				return fmt.Errorf("foreground allreduce = %d", sum)
			}
			c.Barrier()
			right := (c.Rank() + 1) % c.Size()
			left := (c.Rank() + c.Size() - 1) % c.Size()
			got, _ := c.SendRecv(right, left, 5, []byte{byte(c.Rank())})
			if int(got[0]) != left {
				return fmt.Errorf("foreground ring got %d", got[0])
			}
		}

		res, err := pending.Wait()
		if err != nil {
			return err
		}
		if !pending.Done() {
			return fmt.Errorf("Done false after Wait")
		}
		if c.Rank() == 0 && res.Partition != 0 {
			return fmt.Errorf("rank 0 partition = %d", res.Partition)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := format.ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Total != 8*500 {
		t.Errorf("total = %d", meta.Total)
	}
}

func TestTwoConcurrentAsyncWrites(t *testing.T) {
	// Two checkpoints in flight at once (double-buffered simulation):
	// each lands complete and correct in its own directory.
	dirA, dirB := t.TempDir(), t.TempDir()
	simDims := geom.I3(2, 2, 1)
	grid := geom.NewGrid(geom.UnitBox(), simDims)
	cfg := WriteConfig{
		Agg: agg.Config{Domain: geom.UnitBox(), SimDims: simDims, Factor: geom.I3(2, 1, 1)},
	}
	err := mpi.Run(4, func(c *mpi.Comm) error {
		bufA := particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(c.Rank(), simDims)), 300, 1, c.Rank())
		bufB := particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(c.Rank(), simDims)), 200, 2, c.Rank())
		pa := WriteAsync(c, dirA, cfg, bufA)
		pb := WriteAsync(c, dirB, cfg, bufB)
		if _, err := pb.Wait(); err != nil {
			return err
		}
		if _, err := pa.Wait(); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for dir, want := range map[string]int64{dirA: 4 * 300, dirB: 4 * 200} {
		meta, err := format.ReadMeta(dir)
		if err != nil {
			t.Fatal(err)
		}
		if meta.Total != want {
			t.Errorf("%s total = %d, want %d", dir, meta.Total, want)
		}
	}
}

func TestWriteAsyncMatchesSyncOutput(t *testing.T) {
	// Async and sync writes of identical input produce identical files.
	simDims := geom.I3(2, 1, 1)
	grid := geom.NewGrid(geom.UnitBox(), simDims)
	cfg := WriteConfig{
		Agg:  agg.Config{Domain: geom.UnitBox(), SimDims: simDims, Factor: geom.I3(2, 1, 1)},
		Seed: 5,
	}
	dirSync, dirAsync := t.TempDir(), t.TempDir()
	err := mpi.Run(2, func(c *mpi.Comm) error {
		mk := func() *particle.Buffer {
			return particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(c.Rank(), simDims)), 150, 9, c.Rank())
		}
		if _, err := Write(c, dirSync, cfg, mk()); err != nil {
			return err
		}
		_, err := WriteAsync(c, dirAsync, cfg, mk()).Wait()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := format.OpenDataFile(dirSync + "/" + format.DataFileName(0))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := format.OpenDataFile(dirAsync + "/" + format.DataFileName(0))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ba, _ := a.ReadAll()
	bb, _ := b.ReadAll()
	if !ba.Equal(bb) {
		t.Error("async write produced different content than sync")
	}
}
