package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"spio/internal/agg"
	"spio/internal/format"
	"spio/internal/geom"
	"spio/internal/lod"
	"spio/internal/mpi"
	"spio/internal/particle"
)

// writeUniform writes a uniform dataset and returns its directory.
func writeUniform(t *testing.T, simDims, factor geom.Idx3, perRank int, cfgMut func(*WriteConfig)) string {
	t.Helper()
	dir := t.TempDir()
	cfg := WriteConfig{
		Agg:  agg.Config{Domain: geom.UnitBox(), SimDims: simDims, Factor: factor},
		Seed: 11,
	}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	nRanks := simDims.Volume()
	grid := geom.NewGrid(cfg.Agg.Domain, simDims)
	err := mpi.Run(nRanks, func(c *mpi.Comm) error {
		local := particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(c.Rank(), simDims)), perRank, 5, c.Rank())
		_, err := Write(c, dir, cfg, local)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestWriteProducesExpectedFiles(t *testing.T) {
	dir := writeUniform(t, geom.I3(4, 4, 1), geom.I3(2, 2, 1), 50, nil)
	meta, err := format.ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Files) != 4 {
		t.Fatalf("%d files, want 4", len(meta.Files))
	}
	if meta.Total != 16*50 {
		t.Errorf("total = %d, want 800", meta.Total)
	}
	// Aggregator ranks follow the paper's uniform selection: 0, 4, 8, 12.
	wantRanks := map[int]bool{0: true, 4: true, 8: true, 12: true}
	for _, fe := range meta.Files {
		if !wantRanks[fe.AggRank] {
			t.Errorf("unexpected aggregator rank %d", fe.AggRank)
		}
		if fe.Name != format.DataFileName(fe.AggRank) {
			t.Errorf("file name %q does not derive from agg rank %d", fe.Name, fe.AggRank)
		}
		if _, err := os.Stat(filepath.Join(dir, fe.Name)); err != nil {
			t.Errorf("data file missing: %v", err)
		}
	}
}

func TestWriteSpatialLocalityOnDisk(t *testing.T) {
	// The end-to-end claim of Fig. 1: every particle in every written
	// file lies inside that file's metadata partition box.
	dir := writeUniform(t, geom.I3(4, 2, 2), geom.I3(2, 2, 2), 64, nil)
	meta, err := format.ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, fe := range meta.Files {
		df, err := format.OpenDataFile(filepath.Join(dir, fe.Name))
		if err != nil {
			t.Fatal(err)
		}
		buf, err := df.ReadAll()
		df.Close()
		if err != nil {
			t.Fatal(err)
		}
		if int64(buf.Len()) != fe.Count {
			t.Errorf("file %s holds %d particles, meta says %d", fe.Name, buf.Len(), fe.Count)
		}
		for i := 0; i < buf.Len(); i++ {
			p := buf.Position(i)
			if !fe.Partition.Contains(p) && !fe.Partition.ContainsClosed(p) {
				t.Fatalf("file %s has particle %v outside partition %v", fe.Name, p, fe.Partition)
			}
			if !fe.Bounds.ContainsClosed(p) {
				t.Fatalf("file %s has particle %v outside tight bounds %v", fe.Name, p, fe.Bounds)
			}
		}
	}
}

func TestWriteConservesParticlesGlobally(t *testing.T) {
	simDims := geom.I3(2, 2, 2)
	dir := writeUniform(t, simDims, geom.I3(2, 1, 1), 30, nil)
	meta, err := format.ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	grid := geom.NewGrid(geom.UnitBox(), simDims)
	want := make(map[float64]bool)
	for rank := 0; rank < 8; rank++ {
		b := particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(rank, simDims)), 30, 5, rank)
		for _, id := range b.Float64Field(b.Schema().FieldIndex("id")) {
			want[id] = true
		}
	}
	got := make(map[float64]bool)
	for _, fe := range meta.Files {
		df, err := format.OpenDataFile(filepath.Join(dir, fe.Name))
		if err != nil {
			t.Fatal(err)
		}
		buf, _ := df.ReadAll()
		df.Close()
		for _, id := range buf.Float64Field(buf.Schema().FieldIndex("id")) {
			if got[id] {
				t.Fatalf("duplicate particle id %v on disk", id)
			}
			got[id] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("disk holds %d particles, inputs had %d", len(got), len(want))
	}
}

func TestWriteLODIsDeterministicShuffle(t *testing.T) {
	// The file payload must equal the LOD reorder of the aggregated
	// buffer — verify by rebuilding the expected content for a
	// single-aggregator dataset.
	simDims := geom.I3(2, 1, 1)
	dir := writeUniform(t, simDims, geom.I3(2, 1, 1), 25, nil)
	meta, _ := format.ReadMeta(dir)
	df, err := format.OpenDataFile(filepath.Join(dir, meta.Files[0].Name))
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	got, _ := df.ReadAll()

	grid := geom.NewGrid(geom.UnitBox(), simDims)
	expect := particle.NewBuffer(particle.Uintah(), 50)
	for rank := 0; rank < 2; rank++ {
		expect.AppendBuffer(particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(rank, simDims)), 25, 5, rank))
	}
	lod.Reorder(expect, lod.Random, reorderSeed(11, 0))
	if !got.Equal(expect) {
		t.Error("on-disk order is not the deterministic LOD reorder of the aggregation")
	}
	if df.Header.Seed != reorderSeed(11, 0) {
		t.Error("header seed mismatch")
	}
}

func TestWriteFilePerProcessAndSharedFile(t *testing.T) {
	// The two degenerate configurations of Fig. 3.
	fpp := writeUniform(t, geom.I3(2, 2, 1), geom.I3(1, 1, 1), 10, nil)
	meta, _ := format.ReadMeta(fpp)
	if len(meta.Files) != 4 {
		t.Errorf("fpp: %d files, want 4", len(meta.Files))
	}
	shared := writeUniform(t, geom.I3(2, 2, 1), geom.I3(2, 2, 1), 10, nil)
	meta, _ = format.ReadMeta(shared)
	if len(meta.Files) != 1 {
		t.Errorf("shared: %d files, want 1", len(meta.Files))
	}
	if meta.Total != 40 {
		t.Errorf("shared total = %d", meta.Total)
	}
}

func TestWriteFieldRangesExtension(t *testing.T) {
	dir := writeUniform(t, geom.I3(2, 2, 1), geom.I3(2, 1, 1), 40, func(cfg *WriteConfig) {
		cfg.FieldRanges = true
	})
	meta, err := format.ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, fe := range meta.Files {
		if len(fe.FieldMin) != 16 {
			t.Fatalf("file %s has %d range entries, want 16", fe.Name, len(fe.FieldMin))
		}
		// Verify against actual file content: position.x min/max are the
		// first flattened component.
		df, err := format.OpenDataFile(filepath.Join(dir, fe.Name))
		if err != nil {
			t.Fatal(err)
		}
		buf, _ := df.ReadAll()
		df.Close()
		mn, mx := 2.0, -2.0
		for i := 0; i < buf.Len(); i++ {
			x := buf.Position(i).X
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
		if fe.FieldMin[0] != mn || fe.FieldMax[0] != mx {
			t.Errorf("file %s: stored x range [%v,%v], actual [%v,%v]",
				fe.Name, fe.FieldMin[0], fe.FieldMax[0], mn, mx)
		}
	}
}

func TestWriteDensityHeuristic(t *testing.T) {
	dir := writeUniform(t, geom.I3(2, 2, 1), geom.I3(2, 2, 1), 60, func(cfg *WriteConfig) {
		cfg.Heuristic = lod.DensityStratified
	})
	meta, err := format.ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Heuristic != lod.DensityStratified {
		t.Error("heuristic not recorded in metadata")
	}
	if meta.Total != 240 {
		t.Errorf("total = %d", meta.Total)
	}
}

func TestWriteAdaptive(t *testing.T) {
	dir := t.TempDir()
	simDims := geom.I3(4, 2, 1)
	cfg := WriteConfig{
		Agg:      agg.Config{Domain: geom.UnitBox(), SimDims: simDims, Factor: geom.I3(2, 1, 1)},
		Adaptive: true,
		Seed:     3,
	}
	grid := geom.NewGrid(geom.UnitBox(), simDims)
	err := mpi.Run(8, func(c *mpi.Comm) error {
		patch := grid.CellBox(geom.Unlinear(c.Rank(), simDims))
		local := particle.Occupancy(particle.Uintah(), geom.UnitBox(), patch, 80, 0.5, 9, c.Rank())
		_, err := Write(c, dir, cfg, local)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := format.ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Total != 8*80 {
		t.Errorf("total = %d, want 640", meta.Total)
	}
	if len(meta.Files) != 4 {
		t.Errorf("%d files, want 4", len(meta.Files))
	}
	for _, fe := range meta.Files {
		if fe.Count == 0 {
			t.Errorf("adaptive file %s is empty", fe.Name)
		}
		// Adaptive partitions hug the occupied half of the domain.
		if fe.Partition.Hi.X > 0.55 {
			t.Errorf("adaptive partition %v extends past occupied region", fe.Partition)
		}
	}
}

func TestWriteTimingsPopulated(t *testing.T) {
	dir := t.TempDir()
	simDims := geom.I3(2, 2, 1)
	cfg := WriteConfig{Agg: agg.Config{Domain: geom.UnitBox(), SimDims: simDims, Factor: geom.I3(2, 2, 1)}}
	grid := geom.NewGrid(geom.UnitBox(), simDims)
	err := mpi.Run(4, func(c *mpi.Comm) error {
		local := particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(c.Rank(), simDims)), 100, 1, c.Rank())
		res, err := Write(c, dir, cfg, local)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if res.Partition != 0 || res.FileParticles != 400 {
				return fmt.Errorf("rank 0 result %+v", res)
			}
			if res.Timing.FileIO <= 0 || res.Timing.Reorder < 0 {
				return fmt.Errorf("rank 0 timing %+v", res.Timing)
			}
		} else if res.Partition != -1 {
			return fmt.Errorf("rank %d claims partition %d", c.Rank(), res.Partition)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriteRejectsBadConfig(t *testing.T) {
	err := mpi.Run(4, func(c *mpi.Comm) error {
		cfg := WriteConfig{Agg: agg.Config{Domain: geom.UnitBox(), SimDims: geom.I3(3, 1, 1), Factor: geom.I3(1, 1, 1)}}
		_, err := Write(c, t.TempDir(), cfg, particle.NewBuffer(particle.Uintah(), 0))
		if err == nil {
			return fmt.Errorf("bad config accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriteMultiTimestep(t *testing.T) {
	// A simulation-style loop: advect + checkpoint into per-step dirs.
	base := t.TempDir()
	simDims := geom.I3(2, 2, 1)
	cfg := WriteConfig{Agg: agg.Config{Domain: geom.UnitBox(), SimDims: simDims, Factor: geom.I3(2, 1, 1)}}
	grid := geom.NewGrid(geom.UnitBox(), simDims)
	err := mpi.Run(4, func(c *mpi.Comm) error {
		local := particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(c.Rank(), simDims)), 50, 2, c.Rank())
		for step := 0; step < 3; step++ {
			dir := filepath.Join(base, fmt.Sprintf("t%04d", step))
			if _, err := Write(c, dir, cfg, local); err != nil {
				return err
			}
			// A real simulation would migrate particles between ranks
			// after advection; here we only verify that repeated
			// checkpoints are independent and complete.
			particle.Advect(local, geom.UnitBox(), geom.V3(0.3, 0.1, 0), 0.2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		meta, err := format.ReadMeta(filepath.Join(base, fmt.Sprintf("t%04d", step)))
		if err != nil {
			t.Fatal(err)
		}
		if meta.Total != 200 {
			t.Errorf("step %d total = %d", step, meta.Total)
		}
	}
}

func TestWriteCompressedMatchesRaw(t *testing.T) {
	// The codec sits strictly after the LOD reorder, so a compressed
	// write must read back record-identical to the raw write of the same
	// input — file by file, record by record.
	rawDir := writeUniform(t, geom.I3(2, 2, 1), geom.I3(2, 1, 1), 200, nil)
	compDir := writeUniform(t, geom.I3(2, 2, 1), geom.I3(2, 1, 1), 200, func(cfg *WriteConfig) {
		cfg.Codec = particle.LosslessSpec(particle.Uintah())
		cfg.Checksum = true
	})
	meta, err := format.ReadMeta(rawDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, fe := range meta.Files {
		rf, err := format.OpenDataFile(filepath.Join(rawDir, fe.Name))
		if err != nil {
			t.Fatal(err)
		}
		cf, err := format.OpenDataFile(filepath.Join(compDir, fe.Name))
		if err != nil {
			t.Fatal(err)
		}
		if !cf.Compressed() {
			t.Fatalf("%s: not compressed", fe.Name)
		}
		if err := cf.VerifyPayload(); err != nil {
			t.Fatalf("%s: %v", fe.Name, err)
		}
		want, err := rf.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		got, err := cf.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: compressed write diverges from raw", fe.Name)
		}
		if cf.PayloadBytes() >= rf.PayloadBytes() {
			t.Errorf("%s: compressed payload %d >= raw %d", fe.Name, cf.PayloadBytes(), rf.PayloadBytes())
		}
		rf.Close()
		cf.Close()
	}
}
