package core

import (
	"spio/internal/mpi"
	"spio/internal/particle"
)

// Asynchronous checkpointing: the paper benchmarks without fsync "with
// the consideration that a simulation would not wait ... before
// continuing on to the next timestep" (Section 5.1). WriteAsync takes
// that idea to its conclusion — the whole checkpoint (aggregation, LOD
// reorder, file writes, metadata) runs on a duplicated communicator in
// the background while the simulation continues computing and
// communicating on the original one.

// PendingWrite is a handle to an in-flight asynchronous write.
type PendingWrite struct {
	done chan struct{}
	res  WriteResult
	err  error
}

// Wait blocks until the write finishes and returns its result.
func (p *PendingWrite) Wait() (WriteResult, error) {
	<-p.done
	return p.res, p.err
}

// Done reports whether the write has finished, without blocking.
func (p *PendingWrite) Done() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// WriteAsync starts Write in the background on a duplicate of c, so the
// caller can overlap simulation work — including its own communication
// on c — with the checkpoint. Collective: every rank must call
// WriteAsync in the same order relative to its other operations on c.
//
// Ownership of local transfers to the write until Wait returns: the
// caller must not modify the buffer in between (a simulation
// double-buffers or snapshots instead).
func WriteAsync(c *mpi.Comm, dir string, cfg WriteConfig, local *particle.Buffer) *PendingWrite {
	dup := c.Dup()
	p := &PendingWrite{done: make(chan struct{})}
	go func() {
		defer close(p.done)
		p.res, p.err = Write(dup, dir, cfg, local)
	}()
	return p
}
