// Package core wires the substrates into the paper's end-to-end I/O
// pipeline. The write side is the eight-step scheme of Section 3:
//
//	(1) set up the aggregation-grid        (agg.NewLayout / BuildAdaptive)
//	(2) select aggregators                 (agg, uniform over rank space)
//	(3) exchange metadata                  (counts, non-blocking P2P)
//	(4) allocate aggregation buffers       (sized from the counts)
//	(5) exchange particles                 (non-blocking P2P)
//	(6) shuffle particles into LOD order   (lod.Reorder, in place)
//	(7) write each aggregator's data file  (format.WriteDataFile)
//	(8) gather + write spatial metadata    (Allgather to rank 0, format.WriteMeta)
//
// Each rank reports per-phase timings; the aggregation-vs-file-I/O split
// is the quantity Fig. 6 reports.
package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"path/filepath"
	"time"

	"spio/internal/agg"
	"spio/internal/fault"
	"spio/internal/format"
	"spio/internal/geom"
	"spio/internal/lod"
	"spio/internal/mpi"
	"spio/internal/particle"
)

// WriteConfig configures one dataset write.
type WriteConfig struct {
	// Agg is the aggregation setup: domain, per-rank patch decomposition
	// and partition factor.
	Agg agg.Config
	// LOD configures the level-of-detail layout; zero value means
	// lod.DefaultParams().
	LOD lod.Params
	// Heuristic selects the reorder strategy (paper default: Random).
	Heuristic lod.Heuristic
	// Seed makes the LOD reorder deterministic; each aggregator derives
	// its own stream from (Seed, partition).
	Seed int64
	// Adaptive enables the Section 6 adaptive aggregation-grid. The
	// partition-grid shape is SimDims/Factor, re-fitted to the occupied
	// subdomain.
	Adaptive bool
	// AggDims, when non-zero, imposes an arbitrary (generally
	// non-aligned) aggregation-grid of this shape over the domain
	// instead of the Factor-derived aligned grid; ranks then scan their
	// particles into partitions (the general case of Section 3). Its
	// volume must not exceed the world size. Mutually exclusive with
	// Adaptive. Particles must lie within their rank's patch.
	AggDims geom.Idx3
	// FieldRanges additionally stores per-file min/max summaries of every
	// field in the metadata (the Section 3.5 range-query extension).
	FieldRanges bool
	// Checksum additionally stores a CRC32 of each data file's payload,
	// verifiable with spioinspect -verify or DataFile.VerifyPayload.
	Checksum bool
	// Codec is the per-field compression spec each aggregator applies to
	// its data file, strictly after the LOD reorder (so every compressed
	// block stays a valid LOD prefix). The zero value writes the classic
	// uncompressed layout.
	Codec particle.Spec
	// CodecWorkers bounds the concurrent block compressions of each
	// aggregator's data-file write (<= 0 means GOMAXPROCS). The bytes
	// written do not depend on it.
	CodecWorkers int
	// ValidateInput rejects the write up front if any local particle has
	// a non-finite position or lies outside the domain (which would
	// silently land in the wrong file under the aligned exchange).
	ValidateInput bool
	// FS, when non-nil, routes every mutating filesystem operation of
	// this rank's write through it — the fault-injection seam of
	// internal/fault. Nil means the real filesystem.
	FS fault.WriteFS
}

func (cfg *WriteConfig) withDefaults() WriteConfig {
	out := *cfg
	if out.LOD == (lod.Params{}) {
		out.LOD = lod.DefaultParams()
	}
	return out
}

// fs resolves the possibly-nil injected filesystem to a usable one.
func (cfg *WriteConfig) fs() fault.WriteFS {
	if cfg.FS == nil {
		return fault.OS()
	}
	return cfg.FS
}

// WriteResult reports one rank's view of a completed write.
type WriteResult struct {
	// Timing holds this rank's per-phase durations.
	Timing agg.Timing
	// Partition is the aggregation partition this rank wrote, or -1 if
	// the rank was not an aggregator.
	Partition int
	// FileParticles is the particle count of the written file (0 if not
	// an aggregator).
	FileParticles int64
}

// Write runs the full pipeline on the calling rank. Every rank of the
// world must call it collectively with the same dir and cfg. dir must
// exist. local holds the rank's particles.
func Write(c *mpi.Comm, dir string, cfg WriteConfig, local *particle.Buffer) (WriteResult, error) {
	cfg = cfg.withDefaults()
	res := WriteResult{Partition: -1}
	if err := cfg.LOD.Validate(); err != nil {
		return res, err
	}
	if cfg.Adaptive && cfg.AggDims != (geom.Idx3{}) {
		return res, fmt.Errorf("core: Adaptive and AggDims are mutually exclusive")
	}
	// For the aligned path, build the layout before any communication:
	// layout errors are pure config errors, identical on every rank, so
	// an early return here is symmetric and cannot strand a peer in a
	// collective.
	var layout *agg.Layout
	if !cfg.Adaptive && cfg.AggDims == (geom.Idx3{}) {
		var err error
		layout, err = agg.NewLayout(cfg.Agg, c.Size())
		if err != nil {
			return res, err
		}
	}
	if cfg.ValidateInput {
		// Collective validation: every rank learns whether any rank's
		// input is bad, so a failure aborts the write everywhere instead
		// of deadlocking the healthy ranks in the exchange.
		verr := local.CheckFinite()
		if verr == nil {
			verr = local.CheckInside(cfg.Agg.Domain)
		}
		if err := agreeOnError(c, "input validation", verr); err != nil {
			return res, err
		}
	}
	if cfg.Adaptive {
		return writeAdaptive(c, dir, cfg, local)
	}
	if cfg.AggDims != (geom.Idx3{}) {
		return writeScan(c, dir, cfg, local)
	}

	// Steps 1–5. The mirrored exchange assembles the aggregation
	// buffer's encoded (AoS) image from the wire payloads as a side
	// effect, so the data-file write below skips re-encoding it.
	aggBuf, tm, exchErr := agg.ExchangeAlignedMirrored(c, layout, local)
	res.Timing = tm
	part, isAgg := layout.IsAggregator(c.Rank())
	var partBox geom.Box
	if isAgg {
		partBox = layout.PartitionBox(part)
	}

	// Steps 6–8 plus error agreement.
	err := finishWrite(c, dir, cfg, layout.SimDims, cfg.Agg.Factor, layout.AggGrid.Dims,
		local.Schema(), isAgg, part, partBox, aggBuf, exchErr, &res)
	return res, err
}

// writeScan runs the pipeline over an imposed non-aligned
// aggregation-grid (WriteConfig.AggDims).
func writeScan(c *mpi.Comm, dir string, cfg WriteConfig, local *particle.Buffer) (WriteResult, error) {
	res := WriteResult{Partition: -1}
	if v := cfg.Agg.SimDims.Volume(); v != c.Size() {
		return res, fmt.Errorf("core: sim dims %v cover %d patches, world has %d ranks", cfg.Agg.SimDims, v, c.Size())
	}
	simGrid := geom.NewGrid(cfg.Agg.Domain, cfg.Agg.SimDims)
	patches := make([]geom.Box, c.Size())
	for r := range patches {
		patches[r] = simGrid.CellBox(geom.Unlinear(r, cfg.Agg.SimDims))
	}
	layout, err := agg.NewScanLayout(cfg.Agg.Domain, cfg.AggDims, patches)
	if err != nil {
		return res, err
	}
	aggBuf, tm, exchErr := layout.ExchangeMirrored(c, local)
	res.Timing = tm

	part, isAgg := layout.IsAggregator(c.Rank())
	var partBox geom.Box
	if isAgg {
		partBox = layout.PartitionBox(part)
	}
	// A non-aligned grid has no meaningful partition factor; record
	// zeros so readers can tell the difference.
	err = finishWrite(c, dir, cfg, cfg.Agg.SimDims, geom.Idx3{}, cfg.AggDims,
		local.Schema(), isAgg, part, partBox, aggBuf, exchErr, &res)
	return res, err
}

func writeAdaptive(c *mpi.Comm, dir string, cfg WriteConfig, local *particle.Buffer) (WriteResult, error) {
	res := WriteResult{Partition: -1}
	// Validate before deriving the partition-grid shape: a zero factor
	// component must be rejected here, not divided by below.
	if err := cfg.Agg.Validate(c.Size()); err != nil {
		return res, err
	}
	parts := geom.Idx3{
		X: cfg.Agg.SimDims.X / cfg.Agg.Factor.X,
		Y: cfg.Agg.SimDims.Y / cfg.Agg.Factor.Y,
		Z: cfg.Agg.SimDims.Z / cfg.Agg.Factor.Z,
	}
	layout, err := agg.BuildAdaptive(c, cfg.Agg.Domain, parts, local)
	if err != nil {
		return res, err
	}
	aggBuf, tm, exchErr := layout.ExchangeMirrored(c, local)
	res.Timing = tm

	part, isAgg := layout.IsAggregator(c.Rank())
	var partBox geom.Box
	if isAgg {
		partBox = layout.PartitionBox(part)
	}
	err = finishWrite(c, dir, cfg, cfg.Agg.SimDims, cfg.Agg.Factor, parts,
		local.Schema(), isAgg, part, partBox, aggBuf, exchErr, &res)
	return res, err
}

// finishWrite runs steps 6–8 plus the collective error-agreement
// protocol (DESIGN §9). Every exit path between the particle exchange
// and the metadata write passes through an agreement round, so a
// failure on any rank surfaces as a non-nil error on every rank and no
// rank is left blocked in a collective its peers skipped.
func finishWrite(c *mpi.Comm, dir string, cfg WriteConfig,
	simDims, factor, aggDims geom.Idx3, schema *particle.Schema,
	isAgg bool, part int, partBox geom.Box,
	aggBuf *particle.Buffer, exchErr error, res *WriteResult) error {

	// Agreement point 1: the exchange itself. Nothing has been written
	// yet, so there is nothing to clean up.
	if err := agreePoint(c, "particle exchange", exchErr, dir, cfg, isAgg, false, &res.Timing); err != nil {
		return err
	}

	var entry fileEntryMsg
	var werr error
	if isAgg {
		res.Partition = part
		res.FileParticles = int64(aggBuf.Len())
		entry, werr = reorderAndWrite(cfg.fs(), dir, cfg, c.Rank(), part, partBox, aggBuf, &res.Timing)
		// The aggregation buffer is dead once its file entry is built
		// (Bounds is a value, FieldRanges returns fresh slices): recycle
		// its columns for the next write's exchange.
		particle.Recycle(aggBuf)
	}
	// Agreement point 2: the data-file writes. Some aggregators may have
	// already published their file; an agreed failure removes them.
	if err := agreePoint(c, "data file write", werr, dir, cfg, isAgg, true, &res.Timing); err != nil {
		return err
	}

	start := time.Now()
	merr := writeMetaCollective(c, dir, cfg, simDims, factor, aggDims, schema, isAgg, entry)
	res.Timing.MetaIO = time.Since(start)
	// Agreement point 3: the metadata write (only rank 0 writes the
	// file, so only rank 0 can fail it locally).
	return agreePoint(c, "metadata write", merr, dir, cfg, isAgg, true, &res.Timing)
}

// agreeOnError is one round of the error-agreement protocol: every rank
// contributes its local error flag to an Allreduce, and if any rank
// failed, every rank returns a non-nil error — ranks that failed
// locally report their own cause, the rest a summary. The result is
// symmetric by construction, so callers may return on it without
// stranding peers.
func agreeOnError(c *mpi.Comm, phase string, local error) error {
	flag := int64(0)
	if local != nil {
		flag = 1
	}
	failed := c.Allreduce(flag, mpi.OpSum)
	if failed == 0 {
		return nil
	}
	if local != nil {
		return fmt.Errorf("core: rank %d: %s failed: %w", c.Rank(), phase, local)
	}
	return fmt.Errorf("core: %s failed on %d of %d ranks", phase, failed, c.Size())
}

// agreePoint is agreeOnError plus abort bookkeeping: on an agreed
// failure it optionally removes this rank's published outputs and
// charges the time to the Abort phase.
func agreePoint(c *mpi.Comm, phase string, local error, dir string, cfg WriteConfig,
	isAgg, cleanup bool, tm *agg.Timing) error {
	start := time.Now()
	err := agreeOnError(c, phase, local)
	if err == nil {
		return nil
	}
	if cleanup {
		abortWrite(c, dir, cfg, isAgg)
	}
	tm.Abort += time.Since(start)
	return err
}

// abortWrite removes this rank's visible contribution to a failed
// write: each aggregator its (possibly already renamed) data file,
// rank 0 the metadata file. Removal is best-effort — the fail-stop
// contract is carried by the absent meta.spmd, which readers require.
// Temp files need no handling here: writeFileOnce already removed them
// on the failing rank.
func abortWrite(c *mpi.Comm, dir string, cfg WriteConfig, isAgg bool) {
	fsys := cfg.fs()
	if isAgg {
		_ = fsys.Remove(filepath.Join(dir, format.DataFileName(c.Rank())))
	}
	if c.Rank() == 0 {
		_ = fsys.Remove(filepath.Join(dir, format.MetaFileName))
	}
}

// reorderAndWrite performs steps 6–7 on an aggregator. The LOD reorder
// is fused into the file write: only the index permutation is computed
// here, and WriteDataFileOrdered gathers the payload through it as it
// streams out, so the permuted buffer is never materialized (the bytes
// on disk are identical to reordering in place first). The buffer itself
// stays in arrival order — the bounds and field-range scans below are
// order-independent.
func reorderAndWrite(fsys fault.WriteFS, dir string, cfg WriteConfig, aggRank, part int, partBox geom.Box, aggBuf *particle.Buffer, tm *agg.Timing) (fileEntryMsg, error) {
	start := time.Now()
	order := lod.Permutation(aggBuf, cfg.Heuristic, reorderSeed(cfg.Seed, part))
	tm.Reorder = time.Since(start)

	start = time.Now()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fileEntryMsg{}, err
	}
	name := format.DataFileName(aggRank)
	hdr := format.DataHeader{
		LOD:          cfg.LOD,
		Heuristic:    cfg.Heuristic,
		Seed:         reorderSeed(cfg.Seed, part),
		PayloadCRC:   cfg.Checksum,
		Codec:        cfg.Codec,
		CodecWorkers: cfg.CodecWorkers,
	}
	if err := format.WriteDataFileOrdered(fsys, filepath.Join(dir, name), hdr, aggBuf, order); err != nil {
		return fileEntryMsg{}, err
	}
	tm.FileIO = time.Since(start)

	entry := fileEntryMsg{
		boxIndex:  part,
		count:     int64(aggBuf.Len()),
		partition: partBox,
		bounds:    aggBuf.Bounds(),
	}
	// An aggregator with no particles has no field values: skip the
	// range row rather than storing the ±Inf scan sentinels.
	if cfg.FieldRanges && aggBuf.Len() > 0 {
		entry.fieldMin, entry.fieldMax = fieldRanges(aggBuf)
	}
	return entry, nil
}

// reorderSeed derives the per-partition shuffle seed.
func reorderSeed(seed int64, part int) int64 {
	z := uint64(seed) ^ (0x9e3779b97f4a7c15 * uint64(part+1))
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return int64(z ^ (z >> 27))
}

// fieldRanges computes per-component minima and maxima across all
// particles, flattened in schema order. An empty buffer yields no
// ranges: min/max of nothing is undefined, not ±Inf. It delegates to the
// buffer's single-pass-per-field scan, which preserves the old
// math.Min/math.Max semantics (NaN propagates, -0 < +0) with plain
// comparisons.
func fieldRanges(b *particle.Buffer) (mins, maxs []float64) {
	return b.FieldRanges()
}

// fileEntryMsg is the Allgather payload each aggregator contributes for
// the metadata file (Section 3.5): its partition id, count, boxes, and
// optional field ranges. Non-aggregators contribute an empty payload.
type fileEntryMsg struct {
	boxIndex  int
	count     int64
	partition geom.Box
	bounds    geom.Box
	fieldMin  []float64
	fieldMax  []float64
}

func (m *fileEntryMsg) encode() []byte {
	out := make([]byte, 0, 16+12*8+len(m.fieldMin)*16)
	var tmp [8]byte
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		out = append(out, tmp[:]...)
	}
	putF64 := func(v float64) { putU64(math.Float64bits(v)) }
	putBox := func(b geom.Box) {
		putF64(b.Lo.X)
		putF64(b.Lo.Y)
		putF64(b.Lo.Z)
		putF64(b.Hi.X)
		putF64(b.Hi.Y)
		putF64(b.Hi.Z)
	}
	putU64(uint64(m.boxIndex))
	putU64(uint64(m.count))
	putBox(m.partition)
	putBox(m.bounds)
	putU64(uint64(len(m.fieldMin)))
	for i := range m.fieldMin {
		putF64(m.fieldMin[i])
		putF64(m.fieldMax[i])
	}
	return out
}

func decodeFileEntryMsg(data []byte) (fileEntryMsg, error) {
	var m fileEntryMsg
	off := 0
	getU64 := func() uint64 {
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v
	}
	getF64 := func() float64 { return math.Float64frombits(getU64()) }
	getBox := func() geom.Box {
		return geom.Box{
			Lo: geom.Vec3{X: getF64(), Y: getF64(), Z: getF64()},
			Hi: geom.Vec3{X: getF64(), Y: getF64(), Z: getF64()},
		}
	}
	if len(data) < 16+12*8+8 {
		return m, fmt.Errorf("core: file entry message too short (%d bytes)", len(data))
	}
	m.boxIndex = int(getU64())
	m.count = int64(getU64())
	m.partition = getBox()
	m.bounds = getBox()
	nRanges := int(getU64())
	if len(data) != off+nRanges*16 {
		return m, fmt.Errorf("core: file entry message has %d bytes, want %d", len(data), off+nRanges*16)
	}
	for i := 0; i < nRanges; i++ {
		m.fieldMin = append(m.fieldMin, getF64())
		m.fieldMax = append(m.fieldMax, getF64())
	}
	return m, nil
}

// writeMetaCollective gathers all aggregators' file entries and writes
// the metadata file on rank 0.
func writeMetaCollective(c *mpi.Comm, dir string, cfg WriteConfig,
	simDims, factor, aggDims geom.Idx3, schema *particle.Schema,
	isAgg bool, entry fileEntryMsg) error {

	var payload []byte
	if isAgg {
		payload = entry.encode()
	}
	gathered := c.Allgather(payload)
	if c.Rank() != 0 {
		return nil
	}

	meta := &format.Meta{
		Domain:          cfg.Agg.Domain,
		SimDims:         simDims,
		PartitionFactor: factor,
		AggDims:         aggDims,
		Schema:          schema,
		LOD:             cfg.LOD,
		Heuristic:       cfg.Heuristic,
	}
	for rank, msg := range gathered {
		if len(msg) == 0 {
			continue
		}
		m, err := decodeFileEntryMsg(msg)
		if err != nil {
			return fmt.Errorf("core: rank %d metadata entry: %w", rank, err)
		}
		meta.Total += m.count
		meta.Files = append(meta.Files, format.FileEntry{
			BoxIndex:  m.boxIndex,
			AggRank:   rank,
			Name:      format.DataFileName(rank),
			Partition: m.partition,
			Bounds:    m.bounds,
			Count:     m.count,
			FieldMin:  m.fieldMin,
			FieldMax:  m.fieldMax,
		})
	}
	fsys := cfg.fs()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return format.WriteMeta(fsys, dir, meta)
}
