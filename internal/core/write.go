// Package core wires the substrates into the paper's end-to-end I/O
// pipeline. The write side is the eight-step scheme of Section 3:
//
//	(1) set up the aggregation-grid        (agg.NewLayout / BuildAdaptive)
//	(2) select aggregators                 (agg, uniform over rank space)
//	(3) exchange metadata                  (counts, non-blocking P2P)
//	(4) allocate aggregation buffers       (sized from the counts)
//	(5) exchange particles                 (non-blocking P2P)
//	(6) shuffle particles into LOD order   (lod.Reorder, in place)
//	(7) write each aggregator's data file  (format.WriteDataFile)
//	(8) gather + write spatial metadata    (Allgather to rank 0, format.WriteMeta)
//
// Each rank reports per-phase timings; the aggregation-vs-file-I/O split
// is the quantity Fig. 6 reports.
package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"spio/internal/agg"
	"spio/internal/format"
	"spio/internal/geom"
	"spio/internal/lod"
	"spio/internal/mpi"
	"spio/internal/particle"
)

// WriteConfig configures one dataset write.
type WriteConfig struct {
	// Agg is the aggregation setup: domain, per-rank patch decomposition
	// and partition factor.
	Agg agg.Config
	// LOD configures the level-of-detail layout; zero value means
	// lod.DefaultParams().
	LOD lod.Params
	// Heuristic selects the reorder strategy (paper default: Random).
	Heuristic lod.Heuristic
	// Seed makes the LOD reorder deterministic; each aggregator derives
	// its own stream from (Seed, partition).
	Seed int64
	// Adaptive enables the Section 6 adaptive aggregation-grid. The
	// partition-grid shape is SimDims/Factor, re-fitted to the occupied
	// subdomain.
	Adaptive bool
	// AggDims, when non-zero, imposes an arbitrary (generally
	// non-aligned) aggregation-grid of this shape over the domain
	// instead of the Factor-derived aligned grid; ranks then scan their
	// particles into partitions (the general case of Section 3). Its
	// volume must not exceed the world size. Mutually exclusive with
	// Adaptive. Particles must lie within their rank's patch.
	AggDims geom.Idx3
	// FieldRanges additionally stores per-file min/max summaries of every
	// field in the metadata (the Section 3.5 range-query extension).
	FieldRanges bool
	// Checksum additionally stores a CRC32 of each data file's payload,
	// verifiable with spioinspect -verify or DataFile.VerifyPayload.
	Checksum bool
	// ValidateInput rejects the write up front if any local particle has
	// a non-finite position or lies outside the domain (which would
	// silently land in the wrong file under the aligned exchange).
	ValidateInput bool
}

func (cfg *WriteConfig) withDefaults() WriteConfig {
	out := *cfg
	if out.LOD == (lod.Params{}) {
		out.LOD = lod.DefaultParams()
	}
	return out
}

// WriteResult reports one rank's view of a completed write.
type WriteResult struct {
	// Timing holds this rank's per-phase durations.
	Timing agg.Timing
	// Partition is the aggregation partition this rank wrote, or -1 if
	// the rank was not an aggregator.
	Partition int
	// FileParticles is the particle count of the written file (0 if not
	// an aggregator).
	FileParticles int64
}

// Write runs the full pipeline on the calling rank. Every rank of the
// world must call it collectively with the same dir and cfg. dir must
// exist. local holds the rank's particles.
func Write(c *mpi.Comm, dir string, cfg WriteConfig, local *particle.Buffer) (WriteResult, error) {
	cfg = cfg.withDefaults()
	res := WriteResult{Partition: -1}
	if err := cfg.LOD.Validate(); err != nil {
		return res, err
	}
	if cfg.Adaptive && cfg.AggDims != (geom.Idx3{}) {
		return res, fmt.Errorf("core: Adaptive and AggDims are mutually exclusive")
	}
	if cfg.ValidateInput {
		// Collective validation: every rank learns whether any rank's
		// input is bad, so a failure aborts the write everywhere instead
		// of deadlocking the healthy ranks in the exchange.
		verr := local.CheckFinite()
		if verr == nil {
			verr = local.CheckInside(cfg.Agg.Domain)
		}
		flag := int64(0)
		if verr != nil {
			flag = 1
		}
		if c.Allreduce(flag, mpi.OpSum) > 0 {
			if verr != nil {
				return res, fmt.Errorf("core: rank %d: %w", c.Rank(), verr)
			}
			return res, fmt.Errorf("core: input validation failed on another rank")
		}
	}
	if cfg.Adaptive {
		return writeAdaptive(c, dir, cfg, local)
	}
	if cfg.AggDims != (geom.Idx3{}) {
		return writeScan(c, dir, cfg, local)
	}
	layout, err := agg.NewLayout(cfg.Agg, c.Size())
	if err != nil {
		return res, err
	}

	// Steps 1–5.
	aggBuf, tm, err := agg.ExchangeAligned(c, layout, local)
	if err != nil {
		return res, err
	}
	res.Timing = tm

	part, isAgg := layout.IsAggregator(c.Rank())
	var entry fileEntryMsg
	if isAgg {
		res.Partition = part
		res.FileParticles = int64(aggBuf.Len())
		entry, err = reorderAndWrite(dir, cfg, c.Rank(), part, layout.PartitionBox(part), aggBuf, &res.Timing)
		if err != nil {
			return res, err
		}
	}

	// Step 8: gather every aggregator's entry on rank 0 and write the
	// metadata file.
	start := time.Now()
	err = writeMetaCollective(c, dir, cfg, layout.SimDims, cfg.Agg.Factor, layout.AggGrid.Dims,
		local.Schema(), isAgg, entry)
	res.Timing.MetaIO = time.Since(start)
	return res, err
}

// writeScan runs the pipeline over an imposed non-aligned
// aggregation-grid (WriteConfig.AggDims).
func writeScan(c *mpi.Comm, dir string, cfg WriteConfig, local *particle.Buffer) (WriteResult, error) {
	res := WriteResult{Partition: -1}
	if v := cfg.Agg.SimDims.Volume(); v != c.Size() {
		return res, fmt.Errorf("core: sim dims %v cover %d patches, world has %d ranks", cfg.Agg.SimDims, v, c.Size())
	}
	simGrid := geom.NewGrid(cfg.Agg.Domain, cfg.Agg.SimDims)
	patches := make([]geom.Box, c.Size())
	for r := range patches {
		patches[r] = simGrid.CellBox(geom.Unlinear(r, cfg.Agg.SimDims))
	}
	layout, err := agg.NewScanLayout(cfg.Agg.Domain, cfg.AggDims, patches)
	if err != nil {
		return res, err
	}
	aggBuf, tm, err := layout.Exchange(c, local)
	if err != nil {
		return res, err
	}
	res.Timing = tm

	part, isAgg := layout.IsAggregator(c.Rank())
	var entry fileEntryMsg
	if isAgg {
		res.Partition = part
		res.FileParticles = int64(aggBuf.Len())
		entry, err = reorderAndWrite(dir, cfg, c.Rank(), part, layout.PartitionBox(part), aggBuf, &res.Timing)
		if err != nil {
			return res, err
		}
	}

	start := time.Now()
	// A non-aligned grid has no meaningful partition factor; record
	// zeros so readers can tell the difference.
	err = writeMetaCollective(c, dir, cfg, cfg.Agg.SimDims, geom.Idx3{}, cfg.AggDims,
		local.Schema(), isAgg, entry)
	res.Timing.MetaIO = time.Since(start)
	return res, err
}

func writeAdaptive(c *mpi.Comm, dir string, cfg WriteConfig, local *particle.Buffer) (WriteResult, error) {
	res := WriteResult{Partition: -1}
	parts := geom.Idx3{
		X: cfg.Agg.SimDims.X / cfg.Agg.Factor.X,
		Y: cfg.Agg.SimDims.Y / cfg.Agg.Factor.Y,
		Z: cfg.Agg.SimDims.Z / cfg.Agg.Factor.Z,
	}
	if err := cfg.Agg.Validate(c.Size()); err != nil {
		return res, err
	}
	layout, err := agg.BuildAdaptive(c, cfg.Agg.Domain, parts, local)
	if err != nil {
		return res, err
	}
	aggBuf, tm, err := layout.Exchange(c, local)
	if err != nil {
		return res, err
	}
	res.Timing = tm

	part, isAgg := layout.IsAggregator(c.Rank())
	var entry fileEntryMsg
	if isAgg {
		res.Partition = part
		res.FileParticles = int64(aggBuf.Len())
		entry, err = reorderAndWrite(dir, cfg, c.Rank(), part, layout.PartitionBox(part), aggBuf, &res.Timing)
		if err != nil {
			return res, err
		}
	}

	start := time.Now()
	err = writeMetaCollective(c, dir, cfg, cfg.Agg.SimDims, cfg.Agg.Factor, parts,
		local.Schema(), isAgg, entry)
	res.Timing.MetaIO = time.Since(start)
	return res, err
}

// reorderAndWrite performs steps 6–7 on an aggregator.
func reorderAndWrite(dir string, cfg WriteConfig, aggRank, part int, partBox geom.Box, aggBuf *particle.Buffer, tm *agg.Timing) (fileEntryMsg, error) {
	start := time.Now()
	lod.Reorder(aggBuf, cfg.Heuristic, reorderSeed(cfg.Seed, part))
	tm.Reorder = time.Since(start)

	start = time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fileEntryMsg{}, err
	}
	name := format.DataFileName(aggRank)
	hdr := format.DataHeader{
		LOD:        cfg.LOD,
		Heuristic:  cfg.Heuristic,
		Seed:       reorderSeed(cfg.Seed, part),
		PayloadCRC: cfg.Checksum,
	}
	if err := format.WriteDataFile(filepath.Join(dir, name), hdr, aggBuf); err != nil {
		return fileEntryMsg{}, err
	}
	tm.FileIO = time.Since(start)

	entry := fileEntryMsg{
		boxIndex:  part,
		count:     int64(aggBuf.Len()),
		partition: partBox,
		bounds:    aggBuf.Bounds(),
	}
	if cfg.FieldRanges {
		entry.fieldMin, entry.fieldMax = fieldRanges(aggBuf)
	}
	return entry, nil
}

// reorderSeed derives the per-partition shuffle seed.
func reorderSeed(seed int64, part int) int64 {
	z := uint64(seed) ^ (0x9e3779b97f4a7c15 * uint64(part+1))
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return int64(z ^ (z >> 27))
}

// fieldRanges computes per-component minima and maxima across all
// particles, flattened in schema order.
func fieldRanges(b *particle.Buffer) (mins, maxs []float64) {
	s := b.Schema()
	for fi := 0; fi < s.NumFields(); fi++ {
		f := s.Field(fi)
		for k := 0; k < f.Components; k++ {
			mn, mx := math.Inf(1), math.Inf(-1)
			switch f.Kind {
			case particle.Float64:
				vals := b.Float64Field(fi)
				for i := 0; i < b.Len(); i++ {
					v := vals[i*f.Components+k]
					mn = math.Min(mn, v)
					mx = math.Max(mx, v)
				}
			case particle.Float32:
				vals := b.Float32Field(fi)
				for i := 0; i < b.Len(); i++ {
					v := float64(vals[i*f.Components+k])
					mn = math.Min(mn, v)
					mx = math.Max(mx, v)
				}
			}
			mins = append(mins, mn)
			maxs = append(maxs, mx)
		}
	}
	return mins, maxs
}

// fileEntryMsg is the Allgather payload each aggregator contributes for
// the metadata file (Section 3.5): its partition id, count, boxes, and
// optional field ranges. Non-aggregators contribute an empty payload.
type fileEntryMsg struct {
	boxIndex  int
	count     int64
	partition geom.Box
	bounds    geom.Box
	fieldMin  []float64
	fieldMax  []float64
}

func (m *fileEntryMsg) encode() []byte {
	out := make([]byte, 0, 16+12*8+len(m.fieldMin)*16)
	var tmp [8]byte
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		out = append(out, tmp[:]...)
	}
	putF64 := func(v float64) { putU64(math.Float64bits(v)) }
	putBox := func(b geom.Box) {
		putF64(b.Lo.X)
		putF64(b.Lo.Y)
		putF64(b.Lo.Z)
		putF64(b.Hi.X)
		putF64(b.Hi.Y)
		putF64(b.Hi.Z)
	}
	putU64(uint64(m.boxIndex))
	putU64(uint64(m.count))
	putBox(m.partition)
	putBox(m.bounds)
	putU64(uint64(len(m.fieldMin)))
	for i := range m.fieldMin {
		putF64(m.fieldMin[i])
		putF64(m.fieldMax[i])
	}
	return out
}

func decodeFileEntryMsg(data []byte) (fileEntryMsg, error) {
	var m fileEntryMsg
	off := 0
	getU64 := func() uint64 {
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v
	}
	getF64 := func() float64 { return math.Float64frombits(getU64()) }
	getBox := func() geom.Box {
		return geom.Box{
			Lo: geom.Vec3{X: getF64(), Y: getF64(), Z: getF64()},
			Hi: geom.Vec3{X: getF64(), Y: getF64(), Z: getF64()},
		}
	}
	if len(data) < 16+12*8+8 {
		return m, fmt.Errorf("core: file entry message too short (%d bytes)", len(data))
	}
	m.boxIndex = int(getU64())
	m.count = int64(getU64())
	m.partition = getBox()
	m.bounds = getBox()
	nRanges := int(getU64())
	if len(data) != off+nRanges*16 {
		return m, fmt.Errorf("core: file entry message has %d bytes, want %d", len(data), off+nRanges*16)
	}
	for i := 0; i < nRanges; i++ {
		m.fieldMin = append(m.fieldMin, getF64())
		m.fieldMax = append(m.fieldMax, getF64())
	}
	return m, nil
}

// writeMetaCollective gathers all aggregators' file entries and writes
// the metadata file on rank 0.
func writeMetaCollective(c *mpi.Comm, dir string, cfg WriteConfig,
	simDims, factor, aggDims geom.Idx3, schema *particle.Schema,
	isAgg bool, entry fileEntryMsg) error {

	var payload []byte
	if isAgg {
		payload = entry.encode()
	}
	gathered := c.Allgather(payload)
	if c.Rank() != 0 {
		return nil
	}

	meta := &format.Meta{
		Domain:          cfg.Agg.Domain,
		SimDims:         simDims,
		PartitionFactor: factor,
		AggDims:         aggDims,
		Schema:          schema,
		LOD:             cfg.LOD,
		Heuristic:       cfg.Heuristic,
	}
	for rank, msg := range gathered {
		if len(msg) == 0 {
			continue
		}
		m, err := decodeFileEntryMsg(msg)
		if err != nil {
			return fmt.Errorf("core: rank %d metadata entry: %w", rank, err)
		}
		meta.Total += m.count
		meta.Files = append(meta.Files, format.FileEntry{
			BoxIndex:  m.boxIndex,
			AggRank:   rank,
			Name:      format.DataFileName(rank),
			Partition: m.partition,
			Bounds:    m.bounds,
			Count:     m.count,
			FieldMin:  m.fieldMin,
			FieldMax:  m.fieldMax,
		})
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return format.WriteMeta(dir, meta)
}
