package core

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"spio/internal/agg"
	"spio/internal/geom"
	"spio/internal/mpi"
	"spio/internal/particle"
)

// goldenScanHashes pins the exact bytes a fixed 16-rank multi-aggregator
// scan write produces. They were captured from the rank-order assembly
// path before the arrival-order exchange landed, so they also prove the
// new path is byte-identical to the old one, not merely self-consistent.
var goldenScanHashes = map[string]string{
	"file_0.spd":  "c867d04bf342ab1f093104db14855a75c4a43c329bf0da7ba083ad15699d0da4",
	"file_10.spd": "7f97b91397f36e2afbbb4053591fdb98dfe34c82a524b85a9cf025e70c22b495",
	"file_5.spd":  "592484190efc3285830f53a34e7a861c9e191c16eab37f5a28fca77e579da9a5",
	"meta.spmd":   "e395f9b9726c353471922012d45beccfb674a84d746cf18df72101b64812bf7a",
}

// goldenScanWrite runs the pinned 16-rank write into dir on world w.
func goldenScanWrite(w *mpi.World, dir string) error {
	simDims := geom.I3(4, 4, 1)
	grid := geom.NewGrid(geom.UnitBox(), simDims)
	cfg := WriteConfig{
		Agg:         agg.Config{Domain: geom.UnitBox(), SimDims: simDims, Factor: geom.I3(2, 2, 1)},
		AggDims:     geom.I3(3, 1, 1),
		Seed:        42,
		FieldRanges: true,
		Checksum:    true,
	}
	return w.Run(func(c *mpi.Comm) error {
		local := particle.Uniform(particle.Uintah(), grid.CellBoxLinear(c.Rank()), 512, 3, c.Rank())
		_, err := Write(c, dir, cfg, local)
		return err
	})
}

func hashDir(t *testing.T, dir string) map[string]string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(ents))
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = fmt.Sprintf("%x", sha256.Sum256(data))
	}
	return out
}

// TestWriteScanDeterministicUnderAdversarialDelivery writes the same
// dataset twice — once plainly, once with a send-delay injector that
// scrambles cross-pair message arrival order — and requires every output
// file to match the pinned golden hashes both times. This is the
// end-to-end proof that the AnySource arrival-order exchange places
// every payload by its sender's precomputed offset: delivery order is
// free to change, the bytes on disk are not.
func TestWriteScanDeterministicUnderAdversarialDelivery(t *testing.T) {
	check := func(name string, got map[string]string) {
		if len(got) != len(goldenScanHashes) {
			var names []string
			for n := range got {
				names = append(names, n)
			}
			sort.Strings(names)
			t.Fatalf("%s: wrote %v, want %d files", name, names, len(goldenScanHashes))
		}
		for n, want := range goldenScanHashes {
			if got[n] != want {
				t.Errorf("%s: %s hash %s, want %s", name, n, got[n], want)
			}
		}
	}

	plain := t.TempDir()
	if err := goldenScanWrite(mpi.NewWorld(16), plain); err != nil {
		t.Fatal(err)
	}
	check("plain", hashDir(t, plain))

	// Adversarial run: deterministic per-(src,dst) delays invert likely
	// arrival orders (high ranks fast, low ranks slow, with extra jitter
	// from the payload size) so the aggregators' AnySource receives see a
	// different interleaving than the plain run.
	adv := t.TempDir()
	w := mpi.NewWorld(16)
	w.SetSendDelay(func(src, dst, bytes int) {
		h := uint32(src*131071 + dst*8191 + bytes)
		h ^= h >> 7
		time.Sleep(time.Duration(h%5) * 300 * time.Microsecond)
	})
	if err := goldenScanWrite(w, adv); err != nil {
		t.Fatal(err)
	}
	check("adversarial", hashDir(t, adv))
}
