package machine

import (
	"encoding/json"
	"fmt"
	"os"
)

// Profiles are plain data, so users can calibrate the model to their own
// system without recompiling — the model-side analogue of the paper
// exposing the partition factor "as a tuneable parameter". SaveProfile
// writes a profile as JSON; LoadProfile reads one back (fields omitted
// in the JSON keep their zero values, so start from a saved built-in).

// SaveProfile writes p as indented JSON.
func SaveProfile(path string, p Profile) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadProfile reads a profile written by SaveProfile (or hand-edited).
func LoadProfile(path string) (Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Profile{}, err
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return Profile{}, fmt.Errorf("machine: %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return Profile{}, fmt.Errorf("machine: %s: %w", path, err)
	}
	return p, nil
}

// Validate checks that a (possibly hand-edited) profile is usable.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("profile has no name")
	}
	if p.Network.InjectionBW <= 0 {
		return fmt.Errorf("profile %q: InjectionBW must be positive", p.Name)
	}
	if p.Network.IncastCongestion < 0 {
		return fmt.Errorf("profile %q: negative IncastCongestion", p.Name)
	}
	if p.Network.CongestionByBytes && p.Network.CongestionRefBytes <= 0 {
		return fmt.Errorf("profile %q: byte-driven congestion needs CongestionRefBytes", p.Name)
	}
	if p.Storage.PeakBW <= 0 || p.Storage.WriterBW <= 0 {
		return fmt.Errorf("profile %q: storage bandwidths must be positive", p.Name)
	}
	if p.Storage.ReaderBW <= 0 || p.Storage.PeakReadBW <= 0 {
		return fmt.Errorf("profile %q: read bandwidths must be positive", p.Name)
	}
	if p.ReorderPerParticle <= 0 {
		return fmt.Errorf("profile %q: ReorderPerParticle must be positive", p.Name)
	}
	return nil
}

// ByName returns a built-in profile by (case-sensitive) name.
func ByName(name string) (Profile, error) {
	switch name {
	case "Mira", "mira":
		return Mira(), nil
	case "Theta", "theta":
		return Theta(), nil
	case "Workstation", "workstation", "ssd":
		return Workstation(), nil
	}
	return Profile{}, fmt.Errorf("machine: no built-in profile %q (Mira, Theta, Workstation)", name)
}
