// Package machine provides first-order performance models of the three
// platforms in the paper's evaluation (Section 5.1): Mira (IBM BG/Q, 5D
// torus, GPFS with dedicated I/O nodes), Theta (Cray XC40, Dragonfly,
// Lustre with 48 OSTs), and an SSD workstation used for reads.
//
// The models are deliberately simple — a handful of calibrated terms per
// platform — but they carry the effects the paper's conclusions rest on:
//
//   - Incast congestion at aggregators. On Mira (torus, dedicated I/O
//     nodes) congestion grows with the number of concurrent sender
//     streams; on Theta (shared Dragonfly links) it grows with the
//     volume pulled through the shared links. Either way, larger
//     aggregation groups cost more network time, and systematically more
//     on Theta than Mira — the Fig. 6 contrast, and the reason Theta
//     prefers small partition factors while Mira prefers large ones.
//   - File-count costs: GPFS degrades once the file count crosses a soft
//     limit (directory/IO-node contention); Lustre serializes creates at
//     the metadata server. Both penalize file-per-process at scale
//     (Fig. 5).
//   - Burst-size efficiency: small files waste bandwidth; larger
//     aggregated bursts approach peak (Section 5.2's "bigger I/O burst
//     size" argument). GPFS wants much larger bursts than Lustre.
//   - Shared-file contention: single-file collective writes lose
//     bandwidth with writer count (the IOR-collective and PHDF5 curves).
//   - Read costs: per-file open latency (expensive on Lustre, cheap on
//     SSD) plus per-client and aggregate bandwidth caps (Fig. 7/8).
//
// Absolute numbers are calibrated to the same order of magnitude as the
// paper's; the reproduction targets are the curve shapes, crossovers and
// winners, which internal/perfmodel's calibration tests pin down.
package machine

import (
	"fmt"
	"math"
	"time"
)

// Network models point-to-point aggregation traffic.
type Network struct {
	// MsgLatency is the per-message software+wire latency α.
	MsgLatency time.Duration
	// InjectionBW is a node's injection bandwidth in bytes/sec.
	InjectionBW float64
	// IncastCongestion is the congestion growth coefficient c in the
	// effective-bandwidth divisor 1 + c·log2(x).
	IncastCongestion float64
	// CongestionByBytes selects what x is: false (Mira-style) uses the
	// concurrent sender-stream count; true (Theta-style) uses the pulled
	// volume in units of CongestionRefBytes.
	CongestionByBytes bool
	// CongestionRefBytes is the volume unit for byte-driven congestion.
	CongestionRefBytes float64
	// SharedBWBase and SharedContention model single-shared-file
	// collective writes: effective bandwidth =
	// SharedBWBase / (1 + SharedContention·nWriters).
	SharedBWBase     float64
	SharedContention float64
}

// IncastBW returns the effective receive bandwidth at an aggregator
// pulling totalBytes from `senders` concurrent sources.
func (n Network) IncastBW(senders int, totalBytes int64) float64 {
	if senders < 1 {
		senders = 1
	}
	var x float64
	if n.CongestionByBytes {
		x = float64(totalBytes) / n.CongestionRefBytes
	} else {
		x = float64(senders)
	}
	if x < 1 {
		x = 1
	}
	return n.InjectionBW / (1 + n.IncastCongestion*math.Log2(x))
}

// GatherTime prices receiving totalBytes from `senders` sources.
func (n Network) GatherTime(senders int, totalBytes int64) time.Duration {
	if senders <= 0 || totalBytes <= 0 {
		return 0
	}
	t := float64(senders)*n.MsgLatency.Seconds() + float64(totalBytes)/n.IncastBW(senders, totalBytes)
	return dur(t)
}

// SharedWriteBW returns the effective bandwidth of nWriters writing one
// shared file collectively.
func (n Network) SharedWriteBW(nWriters int) float64 {
	if nWriters < 1 {
		nWriters = 1
	}
	return n.SharedBWBase / (1 + n.SharedContention*float64(nWriters))
}

// Storage models a parallel file system's write and read behaviour.
type Storage struct {
	// PeakBW is the file system's aggregate write ceiling (bytes/s).
	PeakBW float64
	// WriterBW is the bandwidth one writer stream can sustain (bytes/s).
	WriterBW float64
	// BurstHalf is the file size at which per-file efficiency reaches
	// 50%: eff(s) = s/(s+BurstHalf). Encodes the "bigger burst" benefit.
	BurstHalf float64
	// CreatePerFile is the cost of creating one file.
	CreatePerFile time.Duration
	// CreateSoftLimit is the file count beyond which creation degrades
	// (GPFS directory contention); 0 disables the penalty.
	CreateSoftLimit int
	// CreateSerialized, when true, serializes all creates through one
	// metadata server (Lustre MDS); otherwise creates proceed in
	// parallel across the I/O nodes with only 1/CreateParallelism of the
	// nominal cost.
	CreateSerialized  bool
	CreateParallelism int
	// OpenPerFile is the cost of opening an existing file for reading.
	OpenPerFile time.Duration
	// ReaderBW is the per-reader read bandwidth cap (bytes/s).
	ReaderBW float64
	// PeakReadBW is the aggregate read ceiling (bytes/s).
	PeakReadBW float64
}

// Eff is the burst-size efficiency of writing files of the given size.
func (s Storage) Eff(fileBytes int64) float64 {
	if fileBytes <= 0 {
		return 1
	}
	return float64(fileBytes) / (float64(fileBytes) + s.BurstHalf)
}

// CreateTime prices creating nFiles new files.
func (s Storage) CreateTime(nFiles int) time.Duration {
	if nFiles <= 0 {
		return 0
	}
	t := float64(nFiles) * s.CreatePerFile.Seconds()
	if !s.CreateSerialized {
		p := s.CreateParallelism
		if p <= 0 {
			p = 1
		}
		t /= float64(p)
	}
	if s.CreateSoftLimit > 0 && nFiles > s.CreateSoftLimit {
		t *= float64(nFiles) / float64(s.CreateSoftLimit)
	}
	return dur(t)
}

// AggregateWriteBW returns the effective aggregate bandwidth of nFiles
// concurrent writers producing files of avgFileBytes.
func (s Storage) AggregateWriteBW(nFiles int, avgFileBytes int64) float64 {
	bw := s.PeakBW
	if streams := float64(nFiles) * s.WriterBW; streams < bw {
		bw = streams
	}
	return bw * s.Eff(avgFileBytes)
}

// WriteTime prices nFiles concurrent independent file writes moving
// totalBytes in total, with the largest single file maxFileBytes (the
// straggler bound: one writer cannot finish faster than its own file).
func (s Storage) WriteTime(nFiles int, totalBytes, maxFileBytes int64) time.Duration {
	if nFiles <= 0 || totalBytes <= 0 {
		return 0
	}
	avg := totalBytes / int64(nFiles)
	transfer := float64(totalBytes) / s.AggregateWriteBW(nFiles, avg)
	if maxFileBytes > 0 {
		straggler := float64(maxFileBytes) / (s.WriterBW * s.Eff(maxFileBytes))
		if straggler > transfer {
			transfer = straggler
		}
	}
	return s.CreateTime(nFiles) + dur(transfer)
}

// ReadBW returns the per-reader bandwidth when nReaders read
// concurrently.
func (s Storage) ReadBW(nReaders int) float64 {
	if nReaders < 1 {
		nReaders = 1
	}
	bw := s.ReaderBW
	if share := s.PeakReadBW / float64(nReaders); share < bw {
		bw = share
	}
	return bw
}

// ReadTime prices one reader opening `opens` files and reading
// bytesPerReader while nReaders run concurrently.
func (s Storage) ReadTime(nReaders, opens int, bytesPerReader int64) time.Duration {
	t := float64(opens) * s.OpenPerFile.Seconds()
	if bytesPerReader > 0 {
		t += float64(bytesPerReader) / s.ReadBW(nReaders)
	}
	return dur(t)
}

// Profile is a complete machine model.
type Profile struct {
	Name    string
	Network Network
	Storage Storage
	// ReorderPerParticle is the single-core LOD reshuffle cost
	// (Section 3.4 reports 33 ms / 32K particles on Mira and 80 ms on
	// Theta — about 1.0 and 2.4 µs per particle).
	ReorderPerParticle time.Duration
	// MaxRanks is the machine's core count (Mira: 786K, Theta: 280K).
	MaxRanks int
}

func (p Profile) String() string { return fmt.Sprintf("machine %s", p.Name) }

// Mira models ALCF Mira: IBM Blue Gene/Q, 5D torus with dedicated I/O
// nodes, GPFS. Dedicated I/O nodes and the torus make aggregation cheap
// relative to file I/O, and GPFS strongly prefers few large bursts —
// hence the paper's finding that Mira favours large partition factors.
func Mira() Profile {
	return Profile{
		Name: "Mira",
		Network: Network{
			MsgLatency:       3 * time.Microsecond,
			InjectionBW:      1.8e9,
			IncastCongestion: 0.6, // sender-stream driven (torus paths)
			SharedBWBase:     12e9,
			SharedContention: 0.002,
		},
		Storage: Storage{
			PeakBW:            200e9,
			WriterBW:          1.5e9,
			BurstHalf:         64e6,
			CreatePerFile:     3 * time.Millisecond,
			CreateParallelism: 64,
			CreateSoftLimit:   65536,
			OpenPerFile:       4 * time.Millisecond,
			ReaderBW:          0.30e9,
			PeakReadBW:        200e9,
		},
		ReorderPerParticle: 1007 * time.Nanosecond, // 33 ms / 32768
		MaxRanks:           786432,
	}
}

// Theta models ALCF Theta: Cray XC40 (KNL), Dragonfly, Lustre with 48
// OSTs. Shared network links make aggregation volume expensive (Fig. 6),
// the Lustre MDS serializes file creates (flattening FPP at scale), and
// per-file bursts saturate quickly — hence small partition factors win.
func Theta() Profile {
	return Profile{
		Name: "Theta",
		Network: Network{
			MsgLatency:         6 * time.Microsecond,
			InjectionBW:        0.8e9,
			IncastCongestion:   3.0, // volume driven (shared dragonfly links)
			CongestionByBytes:  true,
			CongestionRefBytes: 8e6,
			SharedBWBase:       40e9,
			SharedContention:   0.004,
		},
		Storage: Storage{
			PeakBW:           250e9,
			WriterBW:         0.2e9,
			BurstHalf:        4e6,
			CreatePerFile:    8 * time.Microsecond,
			CreateSerialized: true,
			OpenPerFile:      10 * time.Millisecond,
			ReaderBW:         0.25e9,
			PeakReadBW:       240e9,
		},
		ReorderPerParticle: 2441 * time.Nanosecond, // 80 ms / 32768
		MaxRanks:           280320,
	}
}

// Workstation models the paper's read platform: 4×18-core Xeon, 3 TB
// RAM, two SSDs. Opens are cheap; bandwidth is modest and shared.
func Workstation() Profile {
	return Profile{
		Name: "SSD workstation",
		Network: Network{
			MsgLatency:       1 * time.Microsecond,
			InjectionBW:      8e9,
			IncastCongestion: 0.1,
			SharedBWBase:     2e9,
			SharedContention: 0.01,
		},
		Storage: Storage{
			PeakBW:            2.5e9,
			WriterBW:          1.0e9,
			BurstHalf:         0.5e6,
			CreatePerFile:     30 * time.Microsecond,
			CreateParallelism: 4,
			OpenPerFile:       150 * time.Microsecond,
			ReaderBW:          1.2e9,
			PeakReadBW:        3.5e9,
		},
		ReorderPerParticle: 1200 * time.Nanosecond,
		MaxRanks:           72,
	}
}

func dur(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second))
}
