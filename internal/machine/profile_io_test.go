package machine

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestProfileSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "theta.json")
	want := Theta()
	if err := SaveProfile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round trip changed profile:\n got %+v\nwant %+v", got, want)
	}
}

func TestLoadProfileHandEdited(t *testing.T) {
	// Start from a saved built-in, edit one knob like a user would.
	path := filepath.Join(t.TempDir(), "custom.json")
	if err := SaveProfile(path, Mira()); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	edited := strings.Replace(string(raw), `"Name": "Mira"`, `"Name": "MySystem"`, 1)
	os.WriteFile(path, []byte(edited), 0o644)
	p, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "MySystem" {
		t.Errorf("name = %q", p.Name)
	}
	if p.Storage.PeakBW != Mira().Storage.PeakBW {
		t.Error("unedited fields changed")
	}
}

func TestLoadProfileRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"Name":"x"}`), 0o644) // missing bandwidths
	if _, err := LoadProfile(bad); err == nil {
		t.Error("invalid profile accepted")
	}
	garbage := filepath.Join(dir, "garbage.json")
	os.WriteFile(garbage, []byte("not json"), 0o644)
	if _, err := LoadProfile(garbage); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadProfile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestValidateCatchesBadKnobs(t *testing.T) {
	mutations := map[string]func(*Profile){
		"no name":        func(p *Profile) { p.Name = "" },
		"zero injection": func(p *Profile) { p.Network.InjectionBW = 0 },
		"neg congestion": func(p *Profile) { p.Network.IncastCongestion = -1 },
		"byte ref":       func(p *Profile) { p.Network.CongestionByBytes = true; p.Network.CongestionRefBytes = 0 },
		"zero peak":      func(p *Profile) { p.Storage.PeakBW = 0 },
		"zero reader":    func(p *Profile) { p.Storage.ReaderBW = 0 },
		"zero reorder":   func(p *Profile) { p.ReorderPerParticle = 0 },
	}
	for name, mutate := range mutations {
		p := Mira()
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("%s: invalid profile validated", name)
		}
	}
	for _, p := range []Profile{Mira(), Theta(), Workstation()} {
		if err := p.Validate(); err != nil {
			t.Errorf("built-in %s invalid: %v", p.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Mira", "theta", "ssd", "Workstation"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("Summit"); err == nil {
		t.Error("unknown machine accepted")
	}
}
