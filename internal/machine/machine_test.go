package machine

import (
	"testing"
	"time"
)

func TestIncastBWDegradesWithSenders(t *testing.T) {
	n := Mira().Network // sender-driven congestion
	if n.CongestionByBytes {
		t.Fatal("Mira should use sender-driven congestion")
	}
	one := n.IncastBW(1, 1<<20)
	eight := n.IncastBW(8, 1<<20)
	sixtyFour := n.IncastBW(64, 1<<20)
	if !(one > eight && eight > sixtyFour) {
		t.Errorf("incast bw should fall with senders: %v %v %v", one, eight, sixtyFour)
	}
	if one != n.InjectionBW {
		t.Errorf("single sender should see full injection bw: %v vs %v", one, n.InjectionBW)
	}
}

func TestIncastBWDegradesWithVolumeOnTheta(t *testing.T) {
	n := Theta().Network
	if !n.CongestionByBytes {
		t.Fatal("Theta should use volume-driven congestion")
	}
	small := n.IncastBW(8, 8<<20)
	big := n.IncastBW(8, 256<<20)
	if small <= big {
		t.Errorf("Theta incast bw should fall with volume: %v vs %v", small, big)
	}
	// Sender count alone does not matter on Theta.
	if a, b := n.IncastBW(2, 64<<20), n.IncastBW(64, 64<<20); a != b {
		t.Errorf("Theta incast should be volume-driven only: %v vs %v", a, b)
	}
}

func TestGatherTimeEdgeCases(t *testing.T) {
	n := Mira().Network
	if n.GatherTime(0, 100) != 0 || n.GatherTime(5, 0) != 0 {
		t.Error("degenerate gathers should cost nothing")
	}
	if n.GatherTime(8, 1<<20) <= 0 {
		t.Error("real gather should take time")
	}
	// More bytes, more time.
	if n.GatherTime(8, 1<<24) <= n.GatherTime(8, 1<<20) {
		t.Error("gather time should grow with volume")
	}
}

func TestSharedWriteBWCollapses(t *testing.T) {
	for _, p := range []Profile{Mira(), Theta()} {
		small := p.Network.SharedWriteBW(512)
		big := p.Network.SharedWriteBW(262144)
		if big >= small/10 {
			t.Errorf("%s: shared-file bw should collapse at scale: %v vs %v", p.Name, small, big)
		}
	}
}

func TestEffMonotone(t *testing.T) {
	s := Mira().Storage
	if s.Eff(0) != 1 {
		t.Error("zero-size eff should be 1 (no penalty)")
	}
	if !(s.Eff(4<<20) < s.Eff(64<<20) && s.Eff(64<<20) < s.Eff(1<<30)) {
		t.Error("eff should grow with burst size")
	}
	if s.Eff(int64(s.BurstHalf)) < 0.49 || s.Eff(int64(s.BurstHalf)) > 0.51 {
		t.Errorf("eff(BurstHalf) = %v, want 0.5", s.Eff(int64(s.BurstHalf)))
	}
}

func TestCreateTimeModels(t *testing.T) {
	lustre := Theta().Storage
	// Serialized creates scale linearly with the file count.
	t1 := lustre.CreateTime(1000)
	t2 := lustre.CreateTime(2000)
	if diff := t2.Seconds() / t1.Seconds(); diff < 1.9 || diff > 2.1 {
		t.Errorf("serialized create should be linear, ratio %v", diff)
	}
	gpfs := Mira().Storage
	// GPFS creates are parallel below the soft limit...
	below := gpfs.CreateTime(1024)
	if below.Seconds() >= float64(1024)*gpfs.CreatePerFile.Seconds() {
		t.Error("parallel create should beat serial cost")
	}
	// ... and degrade superlinearly beyond it.
	atLimit := gpfs.CreateTime(gpfs.CreateSoftLimit)
	past := gpfs.CreateTime(4 * gpfs.CreateSoftLimit)
	if past.Seconds() < 8*atLimit.Seconds() {
		t.Errorf("past-soft-limit create should degrade superlinearly: %v vs %v", atLimit, past)
	}
	if gpfs.CreateTime(0) != 0 {
		t.Error("zero files cost nothing")
	}
}

func TestWriteTimeProperties(t *testing.T) {
	s := Theta().Storage
	if s.WriteTime(0, 100, 0) != 0 || s.WriteTime(10, 0, 0) != 0 {
		t.Error("degenerate writes cost nothing")
	}
	// Weak scaling with constant per-file size: time should stay roughly
	// flat once the aggregate cap binds (throughput grows to peak).
	t1 := s.WriteTime(1024, 1024*64<<20, 64<<20)
	t2 := s.WriteTime(2048, 2048*64<<20, 64<<20)
	if t2.Seconds() > 2.2*t1.Seconds() {
		t.Errorf("weak-scaled write should not blow up: %v -> %v", t1, t2)
	}
	// A straggler file bounds the time from below.
	balanced := s.WriteTime(64, 64<<25, 1<<25)
	skewed := s.WriteTime(64, 64<<25, 40<<25)
	if skewed <= balanced {
		t.Errorf("a giant file should slow the write: %v vs %v", balanced, skewed)
	}
}

func TestReadBWSharesPeak(t *testing.T) {
	s := Theta().Storage
	if s.ReadBW(1) != s.ReaderBW {
		t.Error("single reader gets the per-client cap")
	}
	many := s.ReadBW(1 << 20)
	if many >= s.ReadBW(2048) {
		t.Error("per-reader bw should shrink when the aggregate cap binds")
	}
}

func TestReadTimeComposition(t *testing.T) {
	s := Theta().Storage
	opensOnly := s.ReadTime(64, 128, 0)
	want := 128 * s.OpenPerFile.Seconds()
	if d := opensOnly.Seconds() - want; d > 1e-9 || d < -1e-9 {
		t.Errorf("opens-only read = %v, want %v", opensOnly.Seconds(), want)
	}
	withBytes := s.ReadTime(64, 128, 1<<30)
	if withBytes <= opensOnly {
		t.Error("payload should add time")
	}
}

func TestProfilesSane(t *testing.T) {
	for _, p := range []Profile{Mira(), Theta(), Workstation()} {
		if p.Name == "" || p.MaxRanks <= 0 {
			t.Errorf("profile %+v incomplete", p)
		}
		if p.Network.InjectionBW <= 0 || p.Storage.PeakBW <= 0 {
			t.Errorf("%s: non-positive bandwidths", p.Name)
		}
		if p.ReorderPerParticle <= 0 {
			t.Errorf("%s: no reorder cost", p.Name)
		}
		if p.String() == "" {
			t.Error("empty String()")
		}
	}
	// Paper-anchored facts.
	if Mira().MaxRanks != 786432 {
		t.Error("Mira is a 786,432-core machine; the paper used 1/3 of it")
	}
	if Theta().ReorderPerParticle <= Mira().ReorderPerParticle {
		t.Error("Theta single-core reorder is slower than Mira's (80ms vs 33ms per 32K)")
	}
	if Theta().Storage.OpenPerFile <= Workstation().Storage.OpenPerFile {
		t.Error("Lustre opens must dwarf SSD opens (Fig. 7's contrast)")
	}
}

func TestDur(t *testing.T) {
	if dur(1.5) != 1500*time.Millisecond {
		t.Errorf("dur(1.5) = %v", dur(1.5))
	}
}
