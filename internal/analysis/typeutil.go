package analysis

import (
	"go/ast"
	"go/types"
)

// Import paths the analyzers key on. The root package re-exports most
// of the internal API through aliases, so type-identity checks against
// the internal paths cover both spellings.
const (
	mpiPath      = "spio/internal/mpi"
	corePath     = "spio/internal/core"
	particlePath = "spio/internal/particle"
	rootPath     = "spio"
)

// isNamed reports whether t (after stripping pointers) is the named
// type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// funcObj resolves the function or method a call invokes, or nil.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// methodOn reports whether call invokes a method with the given name
// whose receiver is (a pointer to) the named type pkgPath.typeName.
func methodOn(info *types.Info, call *ast.CallExpr, pkgPath, typeName, method string) bool {
	fn := funcObj(info, call)
	if fn == nil || fn.Name() != method {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamed(sig.Recv().Type(), pkgPath, typeName)
}

// commMethodName returns the method name if call invokes a method on
// (a pointer to) mpi.Comm, else "".
func commMethodName(info *types.Info, call *ast.CallExpr) string {
	fn := funcObj(info, call)
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if !isNamed(sig.Recv().Type(), mpiPath, "Comm") {
		return ""
	}
	return fn.Name()
}

// pkgFunc reports whether call invokes the package-level function
// pkgPath.name.
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := funcObj(info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath
}

// identObj resolves an expression to the object of the plain identifier
// it denotes, or nil for anything more structured.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// funcBodies yields every function body in the file: declarations and
// function literals, each as an independent analysis root (a literal
// runs on its own goroutine's schedule, so cross-boundary sequencing is
// meaningless for our per-function checks).
func funcBodies(file *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Body)
			}
		case *ast.FuncLit:
			fn(d.Body)
		}
		return true
	})
}
