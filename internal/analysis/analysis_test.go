package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation pattern from a `// want "..."`
// comment in a fixture file.
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// expectation is one `// want` comment: a diagnostic must appear on
// this file:line with a message matching pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

func parseWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &expectation{
					file:    filepath.Base(pos.Filename),
					line:    pos.Line,
					pattern: re,
				})
			}
		}
	}
	return wants
}

// TestAnalyzerFixtures runs each analyzer over its golden fixture
// package and checks the diagnostics against the `// want` comments:
// every want must be hit, and every diagnostic must be wanted. Each
// fixture contains at least two true positives and at least one
// deliberately clean shape (for collorder, the rank-0-writes-metadata
// pattern used by internal/core).
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			pkg := loadFixture(t, a.Name)
			wants := parseWants(t, pkg)
			if len(wants) < 2 {
				t.Fatalf("fixture for %s declares %d wants; need at least 2 true positives", a.Name, len(wants))
			}
			diags := Run([]*Analyzer{a}, []*Package{pkg})
			for _, d := range diags {
				if d.Analyzer != a.Name {
					t.Errorf("diagnostic from unexpected analyzer %s: %s", d.Analyzer, d)
					continue
				}
				matched := false
				for _, w := range wants {
					if w.file == filepath.Base(d.Position.Filename) && w.line == d.Position.Line && w.pattern.MatchString(d.Message) {
						w.matched = true
						matched = true
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic (no matching want): %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("want %q at %s:%d: no diagnostic reported", w.pattern, w.file, w.line)
				}
			}
		})
	}
}

// TestRepoClean dogfoods the full analyzer suite over the whole module
// and requires zero unsuppressed diagnostics: the repo itself is the
// largest negative fixture, and a true positive found later must be
// fixed, not suppressed. The few deliberate exceptions (a mutex that
// *dedicates* a conn to one exchange by protocol) stay visible as
// suppressed findings and must each carry their reason.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	pkgs, err := Load([]string{"spio/..."})
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	diags := Run(Analyzers(), pkgs)
	var live []Diagnostic
	for _, d := range diags {
		if d.Suppressed {
			if d.SuppressReason == "" {
				t.Errorf("suppressed finding without a reason: %s", d)
			}
			continue
		}
		live = append(live, d)
	}
	if len(live) > 0 {
		var b strings.Builder
		for _, d := range live {
			fmt.Fprintf(&b, "\n  %s", d)
		}
		t.Errorf("spiolint reports %d unsuppressed diagnostics on the repo (must be clean):%s", len(live), b.String())
	}
}

// TestSuppression runs the suite over the suppress fixture and checks
// the //spio:allow contract: covered findings are marked Suppressed
// with the directive's reason, uncovered ones stay live, and malformed
// or stale directives are findings of the pseudo-analyzer "directive".
func TestSuppression(t *testing.T) {
	pkg := loadFixture(t, "suppress")
	diags := Run(Analyzers(), []*Package{pkg})

	find := func(analyzer, msgPart string) *Diagnostic {
		t.Helper()
		for i := range diags {
			d := &diags[i]
			if d.Analyzer == analyzer && strings.Contains(d.Message, msgPart) {
				return d
			}
		}
		t.Fatalf("no %s diagnostic containing %q in:\n%v", analyzer, msgPart, diags)
		return nil
	}

	suppressed := 0
	live := 0
	for _, d := range diags {
		if d.Analyzer != "collorder" {
			continue
		}
		if d.Suppressed {
			suppressed++
			if want := "demo: deliberate rank-0 barrier"; d.SuppressReason != want {
				t.Errorf("suppressed finding carries reason %q, want %q", d.SuppressReason, want)
			}
		} else {
			live++
		}
	}
	if suppressed != 1 {
		t.Errorf("got %d suppressed collorder findings, want 1", suppressed)
	}
	if live != 3 {
		// unsuppressedBarrier, missingReason, unknownAnalyzer
		t.Errorf("got %d live collorder findings, want 3", live)
	}

	find(directiveAnalyzer, "missing its reason")
	find(directiveAnalyzer, `unknown analyzer "collorderr"`)
	find(directiveAnalyzer, "suppresses no finding")

	// Suppressed findings are hidden from plain text output, shown with
	// the flag, and always present (marked) in JSON.
	var plain, withFlag, asJSON strings.Builder
	WriteText(&plain, diags, false)
	WriteText(&withFlag, diags, true)
	if strings.Contains(plain.String(), "[suppressed:") {
		t.Errorf("default text output leaks suppressed findings:\n%s", plain.String())
	}
	if !strings.Contains(withFlag.String(), "[suppressed: demo: deliberate rank-0 barrier]") {
		t.Errorf("-show-suppressed text output misses the suppressed finding:\n%s", withFlag.String())
	}
	if err := WriteJSON(&asJSON, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(asJSON.String(), `"suppressed": true`) {
		t.Errorf("JSON output does not mark the suppressed finding:\n%s", asJSON.String())
	}

	// The summary line counts suppressed findings separately.
	if sum := Summarize(Analyzers(), diags); !strings.Contains(sum, "suppressed=1") {
		t.Errorf("Summarize = %q, want suppressed=1", sum)
	}
}

// TestExitCodes pins the engine's three-way exit contract: clean runs
// exit 0, unsuppressed findings exit 1, suppressed-only runs exit 0,
// and load failures are the caller's ExitLoadError (2), distinct from
// both.
func TestExitCodes(t *testing.T) {
	if ExitClean != 0 || ExitFindings != 1 || ExitLoadError != 2 {
		t.Fatalf("exit code constants changed: clean=%d findings=%d load=%d", ExitClean, ExitFindings, ExitLoadError)
	}
	if got := ExitCode(nil); got != ExitClean {
		t.Errorf("ExitCode(nil) = %d, want %d", got, ExitClean)
	}
	if got := ExitCode([]Diagnostic{{Analyzer: "collorder", Suppressed: true}}); got != ExitClean {
		t.Errorf("ExitCode(suppressed-only) = %d, want %d", got, ExitClean)
	}
	if got := ExitCode([]Diagnostic{{Analyzer: "collorder", Suppressed: true}, {Analyzer: "errdrop"}}); got != ExitFindings {
		t.Errorf("ExitCode(mixed) = %d, want %d", got, ExitFindings)
	}
	// A load failure never produces diagnostics; the loader's error is
	// what the CLI maps to ExitLoadError.
	if _, err := Load([]string{"spio/internal/nosuchpackage"}); err == nil {
		t.Error("Load of a missing package: want error (CLI exit 2), got nil")
	}
}

// TestSummarize pins the one-line per-analyzer count format ci.sh
// surfaces.
func TestSummarize(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "collorder"},
		{Analyzer: "collorder"},
		{Analyzer: "wiresym", Suppressed: true},
		{Analyzer: "directive"},
	}
	got := Summarize(Analyzers(), diags)
	want := "collorder=2 bufhandoff=0 errdrop=0 tagclash=0 wiresym=0 collabort=0 lockorder=0 wiretaint=0 goleak=0 racegate=0 directive=1 suppressed=1"
	if got != want {
		t.Fatalf("Summarize = %q, want %q", got, want)
	}
}

// TestLoadDirRejectsMissing covers the fixture loader's error path.
func TestLoadDirRejectsMissing(t *testing.T) {
	if _, err := LoadDir(filepath.Join("testdata", "src", "nosuch"), "fixture/nosuch"); err == nil {
		t.Fatal("LoadDir on a missing directory: want error, got nil")
	}
}

// TestDiagnosticString pins the file:line:col prefix format the CI
// gate greps for.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "collorder",
		Position: token.Position{Filename: "x.go", Line: 3, Column: 7},
		Message:  "boom",
	}
	if got, want := d.String(), "x.go:3:7: collorder: boom"; got != want {
		t.Fatalf("Diagnostic.String() = %q, want %q", got, want)
	}
}
