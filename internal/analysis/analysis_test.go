package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation pattern from a `// want "..."`
// comment in a fixture file.
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// expectation is one `// want` comment: a diagnostic must appear on
// this file:line with a message matching pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

func parseWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &expectation{
					file:    filepath.Base(pos.Filename),
					line:    pos.Line,
					pattern: re,
				})
			}
		}
	}
	return wants
}

// TestAnalyzerFixtures runs each analyzer over its golden fixture
// package and checks the diagnostics against the `// want` comments:
// every want must be hit, and every diagnostic must be wanted. Each
// fixture contains at least two true positives and at least one
// deliberately clean shape (for collorder, the rank-0-writes-metadata
// pattern used by internal/core).
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			pkg := loadFixture(t, a.Name)
			wants := parseWants(t, pkg)
			if len(wants) < 2 {
				t.Fatalf("fixture for %s declares %d wants; need at least 2 true positives", a.Name, len(wants))
			}
			diags := Run([]*Analyzer{a}, []*Package{pkg})
			for _, d := range diags {
				if d.Analyzer != a.Name {
					t.Errorf("diagnostic from unexpected analyzer %s: %s", d.Analyzer, d)
					continue
				}
				matched := false
				for _, w := range wants {
					if w.file == filepath.Base(d.Position.Filename) && w.line == d.Position.Line && w.pattern.MatchString(d.Message) {
						w.matched = true
						matched = true
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic (no matching want): %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("want %q at %s:%d: no diagnostic reported", w.pattern, w.file, w.line)
				}
			}
		})
	}
}

// TestRepoClean dogfoods the full analyzer suite over the whole module
// and requires zero diagnostics: the repo itself is the largest
// negative fixture, and any true positive found later must be fixed,
// not suppressed.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	pkgs, err := Load([]string{"spio/..."})
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	diags := Run(Analyzers(), pkgs)
	if len(diags) > 0 {
		var b strings.Builder
		for _, d := range diags {
			fmt.Fprintf(&b, "\n  %s", d)
		}
		t.Errorf("spiolint reports %d diagnostics on the repo (must be clean):%s", len(diags), b.String())
	}
}

// TestLoadDirRejectsMissing covers the fixture loader's error path.
func TestLoadDirRejectsMissing(t *testing.T) {
	if _, err := LoadDir(filepath.Join("testdata", "src", "nosuch"), "fixture/nosuch"); err == nil {
		t.Fatal("LoadDir on a missing directory: want error, got nil")
	}
}

// TestDiagnosticString pins the file:line:col prefix format the CI
// gate greps for.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "collorder",
		Position: token.Position{Filename: "x.go", Line: 3, Column: 7},
		Message:  "boom",
	}
	if got, want := d.String(), "x.go:3:7: collorder: boom"; got != want {
		t.Fatalf("Diagnostic.String() = %q, want %q", got, want)
	}
}
