package analysis

import (
	"go/token"
	"regexp"
	"strings"
)

// Suppression directives. A comment of the form
//
//	//spio:allow <analyzer> -- <reason>
//
// on the flagged line, or on the line directly above it, suppresses
// that analyzer's findings there. The reason is mandatory: an allow
// without a justification is itself reported (analyzer "directive"),
// as is an allow naming an unknown analyzer — a typo must not silently
// stop suppressing. Suppressed findings stay in the result set, marked
// Suppressed, so -json consumers and the summary line can audit them;
// only unsuppressed findings affect the exit code.

// directiveAnalyzer is the pseudo-analyzer name malformed directives
// are reported under.
const directiveAnalyzer = "directive"

// directiveRe matches the directive comment body after "//".
var directiveRe = regexp.MustCompile(`^spio:allow(?:\s+(\S+))?(?:\s+--\s*(.*))?$`)

// directive is one parsed, well-formed //spio:allow comment.
type directive struct {
	analyzer string
	reason   string
	used     bool
	pos      token.Pos
}

// directiveKey addresses the lines a directive covers.
type directiveKey struct {
	file string
	line int
}

// applyDirectives parses every //spio:allow comment in pkgs, marks the
// diagnostics they cover as suppressed, and appends findings for
// malformed or unused directives.
func applyDirectives(pkgs []*Package, analyzers []*Analyzer, diags *[]Diagnostic) {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	active := make(map[string]bool)
	for _, a := range analyzers {
		active[a.Name] = true
	}

	byLine := make(map[directiveKey][]*directive)
	report := func(pkg *Package, pos token.Pos, format string, args ...any) {
		pass := &Pass{
			Analyzer: &Analyzer{Name: directiveAnalyzer},
			Fset:     pkg.Fset,
			Pkg:      pkg.Types,
			diags:    diags,
		}
		pass.Reportf(pos, format, args...)
	}

	var all []*directive
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					text, ok := strings.CutPrefix(c.Text, "//")
					if !ok {
						continue
					}
					m := directiveRe.FindStringSubmatch(text)
					if m == nil {
						continue
					}
					name, reason := m[1], strings.TrimSpace(m[2])
					switch {
					case name == "":
						report(pkg, c.Pos(), "spio:allow directive names no analyzer: want //spio:allow <analyzer> -- <reason>")
						continue
					case !known[name]:
						report(pkg, c.Pos(), "spio:allow directive names unknown analyzer %q", name)
						continue
					case reason == "":
						report(pkg, c.Pos(), "spio:allow %s directive is missing its reason: want //spio:allow %s -- <reason>", name, name)
						continue
					}
					d := &directive{analyzer: name, reason: reason, pos: c.Pos()}
					all = append(all, d)
					p := pkg.Fset.Position(c.Pos())
					// The directive covers its own line and the next one
					// (the "directive on the line above" form).
					byLine[directiveKey{p.Filename, p.Line}] = append(byLine[directiveKey{p.Filename, p.Line}], d)
					byLine[directiveKey{p.Filename, p.Line + 1}] = append(byLine[directiveKey{p.Filename, p.Line + 1}], d)
					if !active[name] {
						// The named analyzer is not in this run's set; the
						// directive cannot match, and must not be reported
						// as unused either.
						d.used = true
					}
				}
			}
		}
	}
	if len(all) == 0 {
		return
	}

	for i := range *diags {
		d := &(*diags)[i]
		for _, dir := range byLine[directiveKey{d.Position.Filename, d.Position.Line}] {
			if dir.analyzer != d.Analyzer {
				continue
			}
			d.Suppressed = true
			d.SuppressReason = dir.reason
			dir.used = true
			break
		}
	}

	// An allow that suppresses nothing is stale: the hazard it excused
	// is gone, or the directive never matched. Surfacing it keeps the
	// suppression inventory honest.
	for _, pkg := range pkgs {
		for _, dir := range all {
			if dir.used || !posInPackage(pkg, dir.pos) {
				continue
			}
			report(pkg, dir.pos, "spio:allow %s directive suppresses no finding: remove it", dir.analyzer)
			dir.used = true
		}
	}
}

// posInPackage reports whether pos falls inside one of pkg's files.
func posInPackage(pkg *Package, pos token.Pos) bool {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return true
		}
	}
	return false
}
