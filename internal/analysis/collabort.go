package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"spio/internal/mpi"
)

// CollAbort flags the abort-path deadlock: an early `return` on a
// locally-scoped error, taken after the function has entered the
// communication phase, that skips a collective the other ranks will
// still enter. The healthy ranks block in that collective forever —
// the failure mode DESIGN.md §9 calls unagreed abort.
//
// The analyzer is a conservative per-function walk with three pieces of
// interprocedural state from the Program summaries:
//
//   - entered: the function has issued point-to-point or collective
//     communication (directly or through a loaded callee, per
//     mayColl/mayP2P). Before that point, early returns are presumed
//     config-deterministic — identical on every rank — and stay silent.
//   - error classes: an error value is *agreed* when it was produced by
//     (or wrapped around) a call that transitively issues a collective
//     — the agreement round itself made it symmetric — and *local* when
//     it came from a loaded or external function that cannot issue spio
//     collectives. Unresolvable producers (interface methods, func
//     values, parameters) are unknown, and unknown never flags.
//   - the guarded tail: a guard `if <err> { ... return }` is reported
//     only when the statements after it (including, for a fall-through
//     block, the enclosing region's tail) issue a collective, and the
//     guard body itself does not — a body that runs an agreement
//     collective before returning is the sanctioned abort shape.
//
// Function literals are analyzed as their own scopes — the rank body
// passed to mpi.Run is where most user communication lives. A literal
// starts with no error classes: errors captured from the enclosing
// function are unknown and stay silent.
var CollAbort = &Analyzer{
	Name: "collabort",
	Doc:  "flags local-error early returns that skip collectives peers will enter (abort-path deadlocks)",
	Run:  runCollAbort,
}

// p2pSet is the machine-readable point-to-point list shared with the
// runtime, mirroring collectiveSet.
var p2pSet = func() map[string]bool {
	m := make(map[string]bool)
	for _, name := range mpi.P2PMethods() {
		m[name] = true
	}
	return m
}()

// errClass is what the analyzer knows about the rank-symmetry of an
// error value.
type errClass int

const (
	// errClassUnknown: cannot tell; never flag.
	errClassUnknown errClass = iota
	// errClassLocal: produced without any collective — other ranks may
	// hold nil where this rank holds an error.
	errClassLocal
	// errClassAgreed: passed through a collective, symmetric across
	// ranks by construction.
	errClassAgreed
)

func runCollAbort(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			w := &abortWalker{
				pass:    pass,
				cls:     make(map[types.Object]errClass),
				flagged: make(map[token.Pos]bool),
			}
			w.walk(body.List, false)
			return true // descend: nested literals get their own scope
		})
	}
}

type abortWalker struct {
	pass *Pass
	// cls tracks the class of every error-typed local seen assigned.
	cls map[types.Object]errClass
	// entered: communication has been issued on the current path.
	entered bool
	flagged map[token.Pos]bool
}

// walk processes one statement list. outerColl reports whether the
// region that continues after this list (the enclosing block's tail)
// issues a collective.
func (w *abortWalker) walk(stmts []ast.Stmt, outerColl bool) {
	for i, s := range stmts {
		rest := stmts[i+1:]
		switch st := s.(type) {
		case *ast.IfStmt:
			w.walkIf(st, rest, outerColl)
		case *ast.BlockStmt:
			w.walk(st.List, w.tailHasColl(rest, outerColl))
		case *ast.LabeledStmt:
			w.walk([]ast.Stmt{st.Stmt}, w.tailHasColl(rest, outerColl))
			continue // classes and entered were updated by the recursion
		case *ast.ForStmt:
			w.walkLoopBody(st.Init, st.Body, rest, outerColl)
		case *ast.RangeStmt:
			w.walkLoopBody(nil, st.Body, rest, outerColl)
		case *ast.SwitchStmt:
			w.walkCases(st.Init, st.Body, rest, outerColl)
		case *ast.TypeSwitchStmt:
			w.walkCases(st.Init, st.Body, rest, outerColl)
		case *ast.SelectStmt:
			w.walkCases(nil, st.Body, rest, outerColl)
		}
		w.updateClasses(s)
		if w.stmtComms(s) {
			w.entered = true
		}
	}
}

// walkIf evaluates the guard shape against the enclosing tail, then
// recurses into both arms.
func (w *abortWalker) walkIf(ifs *ast.IfStmt, rest []ast.Stmt, outerColl bool) {
	// The init statement runs before the condition: its classes and any
	// communication it issues are visible to the guard itself
	// (`if err := helper(c); err != nil { return err }`).
	if ifs.Init != nil {
		w.updateClasses(ifs.Init)
		if w.stmtComms(ifs.Init) {
			w.entered = true
		}
	}
	w.checkGuard(ifs, rest, outerColl)
	inner := w.tailHasColl(rest, outerColl)
	w.walk(ifs.Body.List, inner)
	switch e := ifs.Else.(type) {
	case *ast.BlockStmt:
		w.walk(e.List, inner)
	case *ast.IfStmt:
		w.walkIf(e, rest, outerColl)
	}
}

// checkGuard flags `if <local err> { ...; return }` when communication
// has started, the body issues no collective of its own, and the tail
// still holds one for the healthy ranks to block in.
func (w *abortWalker) checkGuard(ifs *ast.IfStmt, rest []ast.Stmt, outerColl bool) {
	if !w.entered || ifs.Else != nil || w.flagged[ifs.Pos()] {
		return
	}
	n := len(ifs.Body.List)
	if n == 0 {
		return
	}
	if _, ok := ifs.Body.List[n-1].(*ast.ReturnStmt); !ok {
		return
	}
	errName, ok := w.condLocalError(ifs.Cond)
	if !ok {
		return
	}
	if len(exprCollsNode(w.pass, ifs.Body).calls) > 0 {
		return // the body agrees (or at least communicates) before leaving
	}
	cc, ok := w.firstTailColl(rest, outerColl)
	if !ok {
		return
	}
	w.flagged[ifs.Pos()] = true
	where := ""
	if pos := w.pass.Fset.Position(cc.pos); pos.IsValid() {
		where = fmt.Sprintf(" (line %d)", pos.Line)
	}
	w.pass.Reportf(ifs.Pos(),
		"early return on local error %q skips collective %s%s that ranks without the error still enter; agree on the error first (e.g. Allreduce an error flag) so every rank aborts together",
		errName, cc.name, where)
}

// walkLoopBody recurses into a loop. A return inside the body also
// skips later iterations' collectives, so the body's own collectives
// count toward its tail.
func (w *abortWalker) walkLoopBody(init ast.Stmt, body *ast.BlockStmt, rest []ast.Stmt, outerColl bool) {
	if init != nil {
		w.updateClasses(init)
		if w.stmtComms(init) {
			w.entered = true
		}
	}
	inner := len(exprCollsNode(w.pass, body).calls) > 0 || w.tailHasColl(rest, outerColl)
	w.walk(body.List, inner)
}

// walkCases recurses into each case clause of a switch/select.
func (w *abortWalker) walkCases(init ast.Stmt, body *ast.BlockStmt, rest []ast.Stmt, outerColl bool) {
	if init != nil {
		w.updateClasses(init)
		if w.stmtComms(init) {
			w.entered = true
		}
	}
	inner := w.tailHasColl(rest, outerColl)
	for _, cc := range body.List {
		switch cl := cc.(type) {
		case *ast.CaseClause:
			w.walk(cl.Body, inner)
		case *ast.CommClause:
			w.walk(cl.Body, inner)
		}
	}
}

// tailHasColl reports whether the statements after the current one
// issue a collective, falling through to the enclosing region's tail
// when the list does not end in a return.
func (w *abortWalker) tailHasColl(rest []ast.Stmt, outerColl bool) bool {
	_, ok := w.firstTailColl(rest, outerColl)
	return ok
}

// firstTailColl returns the first collective call in the tail, for the
// diagnostic. A synthetic entry stands in for the enclosing tail when
// the list falls through into it.
func (w *abortWalker) firstTailColl(rest []ast.Stmt, outerColl bool) (collCall, bool) {
	for _, s := range rest {
		if r := exprCollsNode(w.pass, s); len(r.calls) > 0 {
			return r.calls[0], true
		}
	}
	if outerColl && fallsThrough(rest) {
		return collCall{name: "in the enclosing block", pos: token.NoPos}, true
	}
	return collCall{}, false
}

// fallsThrough reports whether control can run off the end of the list
// into the enclosing region (conservatively: it can unless the list
// provably leaves the function).
func fallsThrough(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return true
	}
	switch stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return false
	}
	return true
}

// stmtComms reports whether the statement issues any communication —
// collective or point-to-point, directly or via a loaded callee.
func (w *abortWalker) stmtComms(n ast.Node) bool {
	found := false
	scanCalls(w.pass.Info, n, func(call *ast.CallExpr) {
		if found {
			return
		}
		name := commMethodName(w.pass.Info, call)
		if collectiveSet[name] || p2pSet[name] {
			found = true
			return
		}
		callee := w.pass.Prog.calleeFunc(w.pass.Info, call)
		if callee == nil {
			return
		}
		if _, loaded := w.pass.Prog.Funcs[callee]; !loaded {
			return
		}
		w.pass.Prog.ensureMayColl()
		w.pass.Prog.ensureMayP2P()
		if w.pass.Prog.mayColl[callee] || w.pass.Prog.mayP2P[callee] {
			found = true
		}
	})
	return found
}

// updateClasses records the class of every error-typed local assigned
// anywhere under n, in source order.
func (w *abortWalker) updateClasses(n ast.Node) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					w.assignClass(x.Lhs[i], w.classifyExpr(x.Rhs[i]))
				}
			} else if len(x.Rhs) == 1 {
				cls := w.classifyExpr(x.Rhs[0])
				for _, lhs := range x.Lhs {
					w.assignClass(lhs, cls)
				}
			}
		case *ast.ValueSpec:
			if len(x.Names) == len(x.Values) {
				for i, name := range x.Names {
					w.assignClass(name, w.classifyExpr(x.Values[i]))
				}
			} else if len(x.Values) == 1 {
				cls := w.classifyExpr(x.Values[0])
				for _, name := range x.Names {
					w.assignClass(name, cls)
				}
			}
		}
		return true
	})
}

func (w *abortWalker) assignClass(lhs ast.Expr, cls errClass) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := identObj(w.pass.Info, id)
	if obj == nil || !isErrorType(obj.Type()) {
		return
	}
	w.cls[obj] = cls
}

// classifyExpr derives the class of a value from its producer.
func (w *abortWalker) classifyExpr(e ast.Expr) errClass {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := identObj(w.pass.Info, e); obj != nil {
			if c, ok := w.cls[obj]; ok {
				return c
			}
		}
		return errClassUnknown
	case *ast.CallExpr:
		if collectiveSet[commMethodName(w.pass.Info, e)] {
			return errClassAgreed
		}
		callee := w.pass.Prog.calleeFunc(w.pass.Info, e)
		if callee == nil {
			return errClassUnknown // interface or func-value call
		}
		if _, loaded := w.pass.Prog.Funcs[callee]; loaded {
			w.pass.Prog.ensureMayColl()
			if w.pass.Prog.mayColl[callee] {
				return errClassAgreed
			}
			return errClassLocal
		}
		// External callee (stdlib): it cannot issue spio collectives,
		// but wrapping an agreed error keeps the agreement
		// (`fmt.Errorf("…: %w", agreedErr)`).
		for _, a := range e.Args {
			if id, ok := ast.Unparen(a).(*ast.Ident); ok {
				if obj := identObj(w.pass.Info, id); obj != nil && w.cls[obj] == errClassAgreed {
					return errClassAgreed
				}
			}
		}
		return errClassLocal
	default:
		return errClassUnknown
	}
}

// condLocalError reports whether the condition's error operands are all
// known-local: at least one error-typed identifier, every one classed
// local. Any agreed or unknown operand keeps the guard silent.
func (w *abortWalker) condLocalError(cond ast.Expr) (string, bool) {
	name := ""
	ok := true
	ast.Inspect(cond, func(x ast.Node) bool {
		if !ok {
			return false
		}
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		id, isIdent := x.(*ast.Ident)
		if !isIdent {
			return true
		}
		obj := identObj(w.pass.Info, id)
		if obj == nil || !isErrorType(obj.Type()) {
			return true
		}
		if w.cls[obj] != errClassLocal {
			ok = false
			return false
		}
		name = id.Name
		return true
	})
	return name, ok && name != ""
}
