package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// WireSym checks writer/reader symmetry of the on-disk format. The
// format package encodes and decodes every file through the sticky-
// error writer/reader pair in binio.go; a field written u64 but read
// u32, written before a sibling but read after it, or written and never
// read, silently corrupts every checkpoint that crosses the asymmetry.
// The runtime round-trip tests only cover the values they happen to
// write; wiresym makes the symmetry a static contract (the position
// scda takes: a serial-equivalent format is a statically checkable
// writer/reader pact).
//
// For every package-level function pair matched by name convention —
// encodeX/decodeX, EncodeX/DecodeX, WriteX/ReadX, WriteX/OpenX and the
// unexported spellings — the analyzer extracts the ordered sequence of
// fixed-width field operations each side performs on a sticky writer
// (type named "writer") or reader (type named "reader"): u8, u32, u64,
// i64, f64, uvarint, str, bytes, vec3, box (the reader's boxv
// normalizes to box), idx3. Extraction is interprocedural over the
// loaded call graph:
//
//   - a call passing a writer/reader to a helper splices the helper's
//     op stream in place (so encodeSchema's fields appear inside
//     WriteMeta's stream exactly where the call sits);
//   - a call to a loaded function with no writer/reader argument
//     splices that function's whole stream (so OpenDataFile inherits
//     readDataFileHeader's reads);
//   - the pre-encode idiom — encode the body into a buffer with one
//     writer, then write magic/version/CRC and the buffer with another
//     — is stitched: a bytes() of a buffer another writer wraps
//     substitutes that writer's stream.
//
// Control flow is canonicalized like collorder's signatures: loop
// bodies collapse to for{...}, both arms of an if are kept as
// if{then|else} after factoring their common prefix (so "write the
// flag then branch" and "branch on the flag just read" compare equal),
// and branches with no field operations vanish. Byte-slice writes
// compare lengths when both are compile-time constants (the magic).
//
// A pair is compared only when both streams are non-empty and at least
// one side performs field operations directly (not only through
// splices): that keeps high-level wrappers that merely call into the
// format package out of the comparison.
var WireSym = &Analyzer{
	Name: "wiresym",
	Doc:  "flags width/order/count asymmetries between paired writer/reader functions of the on-disk format",
	Run:  runWireSym,
}

// wireOps maps sticky writer/reader method names to canonical field
// tokens. The reader's boxv is the writer's box.
var wireOps = map[string]string{
	"bytes":   "bytes",
	"u8":      "u8",
	"u16":     "u16",
	"u32":     "u32",
	"u64":     "u64",
	"i64":     "i64",
	"f32":     "f32",
	"f64":     "f64",
	"uvarint": "uvarint",
	"varint":  "varint",
	"str":     "str",
	"vec3":    "vec3",
	"box":     "box",
	"boxv":    "box",
	"idx3":    "idx3",
}

// wireTok is one canonical field operation (or a composite like
// "for{u8,u32}").
type wireTok struct {
	name string
	pos  token.Pos
	// ref is set on "@buf" stitch markers: the writer variable whose
	// stream replaces the marker (the pre-encode idiom).
	ref types.Object
}

// wireSummary is a function's ordered field-operation streams, one per
// direction.
type wireSummary struct {
	w, r []wireTok
	// directW/directR report that the function performs field ops on a
	// writer/reader itself rather than only through spliced callees.
	directW, directR bool
}

// wireItem is one extracted operation attributed to a stream variable.
type wireItem struct {
	obj    types.Object // the writer/reader variable; nil = anonymous
	kind   byte         // 'w' or 'r'
	tok    wireTok
	direct bool
}

// wireStreamKind classifies a type as sticky writer or reader by the
// binio naming idiom: a (pointer to a) named type called "writer" or
// "reader".
func wireStreamKind(t types.Type) (byte, bool) {
	if t == nil {
		return 0, false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return 0, false
	}
	switch named.Obj().Name() {
	case "writer":
		return 'w', true
	case "reader":
		return 'r', true
	}
	return 0, false
}

// wireSummaryOf computes fn's field-operation streams, memoized on the
// program. Cycles degrade to an empty summary.
func (p *Program) wireSummaryOf(fn *types.Func) *wireSummary {
	if s, ok := p.wireSums[fn]; ok {
		return s
	}
	fi, ok := p.Funcs[fn]
	if !ok {
		return &wireSummary{}
	}
	if p.wireVisiting[fn] {
		return &wireSummary{}
	}
	p.wireVisiting[fn] = true
	defer delete(p.wireVisiting, fn)

	x := &wireExtractor{prog: p, fi: fi, wraps: wireWraps(fi)}
	items := x.walkStmts(fi.Decl.Body.List)
	s := stitchWire(items)
	p.wireSums[fn] = s
	return s
}

// wireWraps maps each sticky-writer/reader variable created in fi's
// body to the buffer variable it wraps (`e := newWriter(&body)` maps
// e's object to body's object), for the pre-encode stitch.
func wireWraps(fi *FuncInfo) map[types.Object]types.Object {
	info := fi.Pkg.Info
	wraps := make(map[types.Object]types.Object)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return
		}
		fnObj := funcObj(info, call)
		if fnObj == nil {
			return
		}
		switch fnObj.Name() {
		case "newWriter", "NewWriter", "newReader", "NewReader":
		default:
			return
		}
		streamObj := identObj(info, lhs)
		if streamObj == nil {
			return
		}
		arg := ast.Unparen(call.Args[0])
		if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
			arg = ast.Unparen(u.X)
		}
		if bufObj := identObj(info, arg); bufObj != nil {
			wraps[streamObj] = bufObj
		}
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i := range n.Names {
				if i < len(n.Values) {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return wraps
}

// wireExtractor walks one function body collecting wireItems in source
// order.
type wireExtractor struct {
	prog  *Program
	fi    *FuncInfo
	wraps map[types.Object]types.Object
}

func (x *wireExtractor) walkStmts(stmts []ast.Stmt) []wireItem {
	var out []wireItem
	for _, s := range stmts {
		out = append(out, x.walkStmt(s)...)
	}
	return out
}

func (x *wireExtractor) walkStmt(s ast.Stmt) []wireItem {
	switch s := s.(type) {
	case nil:
		return nil
	case *ast.BlockStmt:
		return x.walkStmts(s.List)
	case *ast.LabeledStmt:
		return x.walkStmt(s.Stmt)
	case *ast.IfStmt:
		var out []wireItem
		out = append(out, x.walkStmt(s.Init)...)
		out = append(out, x.exprItems(s.Cond)...)
		then := x.walkStmts(s.Body.List)
		var els []wireItem
		if s.Else != nil {
			els = x.walkStmt(s.Else)
		}
		return append(out, mergeBranches(s.Pos(), "if", [][]wireItem{then, els})...)
	case *ast.ForStmt:
		var out []wireItem
		out = append(out, x.walkStmt(s.Init)...)
		out = append(out, x.exprItems(s.Cond)...)
		inner := x.walkStmts(s.Body.List)
		inner = append(inner, x.walkStmt(s.Post)...)
		return append(out, wrapLoop(s.Pos(), inner)...)
	case *ast.RangeStmt:
		return wrapLoop(s.Pos(), x.walkStmts(s.Body.List))
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return x.walkSwitch(s)
	default:
		return x.exprItems(s)
	}
}

func (x *wireExtractor) walkSwitch(s ast.Stmt) []wireItem {
	var out []wireItem
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		out = append(out, x.walkStmt(s.Init)...)
		out = append(out, x.exprItems(s.Tag)...)
		body = s.Body
	case *ast.TypeSwitchStmt:
		out = append(out, x.walkStmt(s.Init)...)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var arms [][]wireItem
	for _, cc := range body.List {
		switch cl := cc.(type) {
		case *ast.CaseClause:
			arms = append(arms, x.walkStmts(cl.Body))
		case *ast.CommClause:
			arms = append(arms, x.walkStmts(cl.Body))
		}
	}
	return append(out, mergeBranches(s.Pos(), "switch", arms)...)
}

// mergeBranches canonicalizes a multi-way branch per stream: the common
// prefix of all arms is emitted unconditionally, the remainders become
// one "if{a|b}" / "switch{a|b|c}" token, and branches that agree (or
// are all empty) dissolve entirely.
func mergeBranches(pos token.Pos, label string, arms [][]wireItem) []wireItem {
	type key struct {
		obj  types.Object
		kind byte
	}
	var order []key
	seen := make(map[key]bool)
	byArm := make([]map[key][]wireTok, len(arms))
	direct := make(map[key]bool)
	for i, arm := range arms {
		byArm[i] = make(map[key][]wireTok)
		for _, it := range arm {
			k := key{it.obj, it.kind}
			if !seen[k] {
				seen[k] = true
				order = append(order, k)
			}
			byArm[i][k] = append(byArm[i][k], it.tok)
			direct[k] = direct[k] || it.direct
		}
	}
	var out []wireItem
	for _, k := range order {
		toks := make([][]wireTok, len(arms))
		for i := range arms {
			toks[i] = byArm[i][k]
		}
		// Factor the common prefix across all arms.
		for {
			var first *wireTok
			same := true
			for _, ts := range toks {
				if len(ts) == 0 {
					same = false
					break
				}
				if first == nil {
					first = &ts[0]
				} else if ts[0].name != first.name {
					same = false
					break
				}
			}
			if !same || first == nil {
				break
			}
			out = append(out, wireItem{obj: k.obj, kind: k.kind, tok: *first, direct: direct[k]})
			for i := range toks {
				toks[i] = toks[i][1:]
			}
		}
		allEmpty := true
		allEqual := true
		for i, ts := range toks {
			if len(ts) > 0 {
				allEmpty = false
			}
			if i > 0 && tokNames(ts) != tokNames(toks[0]) {
				allEqual = false
			}
		}
		if allEmpty {
			continue
		}
		if allEqual {
			for _, t := range toks[0] {
				out = append(out, wireItem{obj: k.obj, kind: k.kind, tok: t, direct: direct[k]})
			}
			continue
		}
		parts := make([]string, len(toks))
		for i, ts := range toks {
			parts[i] = tokNames(ts)
		}
		out = append(out, wireItem{
			obj:    k.obj,
			kind:   k.kind,
			tok:    wireTok{name: label + "{" + strings.Join(parts, "|") + "}", pos: pos},
			direct: direct[k],
		})
	}
	return out
}

// wrapLoop collapses a loop body to one for{...} token per stream.
func wrapLoop(pos token.Pos, inner []wireItem) []wireItem {
	type key struct {
		obj  types.Object
		kind byte
	}
	var order []key
	grouped := make(map[key][]wireTok)
	direct := make(map[key]bool)
	for _, it := range inner {
		k := key{it.obj, it.kind}
		if _, ok := grouped[k]; !ok {
			order = append(order, k)
		}
		grouped[k] = append(grouped[k], it.tok)
		direct[k] = direct[k] || it.direct
	}
	var out []wireItem
	for _, k := range order {
		out = append(out, wireItem{
			obj:    k.obj,
			kind:   k.kind,
			tok:    wireTok{name: "for{" + tokNames(grouped[k]) + "}", pos: pos},
			direct: direct[k],
		})
	}
	return out
}

func tokNames(ts []wireTok) string {
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.name
	}
	return strings.Join(names, ",")
}

// exprItems extracts field operations under an arbitrary node in source
// order: direct writer/reader method calls, helper splices, and
// pre-encode stitch markers.
func (x *wireExtractor) exprItems(n ast.Node) []wireItem {
	if n == nil {
		return nil
	}
	info := x.fi.Pkg.Info
	var out []wireItem
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcObj(info, call)
		if fn == nil {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			if kind, ok := wireStreamKind(sig.Recv().Type()); ok {
				if tok, isOp := wireOps[fn.Name()]; isOp {
					out = append(out, x.opItem(call, fn, kind, tok))
					return true // args may nest further calls; keep walking
				}
			}
		}
		switch fn.Name() {
		case "newWriter", "NewWriter", "newReader", "NewReader":
			return true
		}
		// Helper splice: a loaded callee contributes its streams, either
		// onto the writer/reader argument it receives or anonymously.
		callee := x.prog.calleeFunc(info, call)
		if callee == nil {
			return true
		}
		if _, loaded := x.prog.Funcs[callee]; !loaded {
			return true
		}
		sum := x.prog.wireSummaryOf(callee)
		if len(sum.w) == 0 && len(sum.r) == 0 {
			return true
		}
		var wObj, rObj types.Object
		haveW, haveR := false, false
		for _, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Uses[id]
			if obj == nil {
				continue
			}
			if kind, ok := wireStreamKind(obj.Type()); ok {
				if kind == 'w' && !haveW {
					wObj, haveW = obj, true
				}
				if kind == 'r' && !haveR {
					rObj, haveR = obj, true
				}
			}
		}
		for _, t := range sum.w {
			out = append(out, wireItem{obj: wObj, kind: 'w', tok: wireTok{name: t.name, pos: call.Pos(), ref: t.ref}})
		}
		for _, t := range sum.r {
			out = append(out, wireItem{obj: rObj, kind: 'r', tok: wireTok{name: t.name, pos: call.Pos(), ref: t.ref}})
		}
		return true
	})
	return out
}

// opItem renders one direct writer/reader method call as a token,
// handling the two special bytes() forms: a constant-length payload
// ("bytes:8") and the pre-encode stitch (bytes of a buffer another
// writer wraps).
func (x *wireExtractor) opItem(call *ast.CallExpr, fn *types.Func, kind byte, tok string) wireItem {
	info := x.fi.Pkg.Info
	var recvObj types.Object
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recvObj = identObj(info, sel.X)
	}
	it := wireItem{obj: recvObj, kind: kind, tok: wireTok{name: tok, pos: call.Pos()}, direct: true}
	if tok != "bytes" || len(call.Args) == 0 {
		return it
	}
	arg := ast.Unparen(call.Args[0])
	// Pre-encode stitch: bytes(buf…) where another stream wraps buf.
	var ref types.Object
	ast.Inspect(arg, func(n ast.Node) bool {
		if ref != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		for streamObj, bufObj := range x.wraps {
			if bufObj == obj && streamObj != recvObj {
				ref = streamObj
				return false
			}
		}
		return true
	})
	if ref != nil {
		it.tok = wireTok{name: "@buf", pos: call.Pos(), ref: ref}
		it.direct = false
		return it
	}
	if n, ok := x.constByteLen(arg); ok {
		it.tok.name = fmt.Sprintf("bytes:%d", n)
	}
	return it
}

// constByteLen statically sizes a bytes() argument: a []byte conversion
// of a constant string, or a variable assigned make([]byte, N) with
// constant N.
func (x *wireExtractor) constByteLen(arg ast.Expr) (int64, bool) {
	info := x.fi.Pkg.Info
	if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
		if tv, ok := info.Types[conv.Fun]; ok && tv.IsType() {
			if inner, ok := info.Types[conv.Args[0]]; ok && inner.Value != nil && inner.Value.Kind() == constant.String {
				return int64(len(constant.StringVal(inner.Value))), true
			}
		}
	}
	obj := identObj(info, arg)
	if obj == nil {
		return 0, false
	}
	var n int64
	found := false
	ast.Inspect(x.fi.Decl.Body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok || found || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			if identObj(info, lhs) != obj {
				continue
			}
			mk, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || len(mk.Args) < 2 {
				continue
			}
			if id, ok := mk.Fun.(*ast.Ident); !ok || id.Name != "make" {
				continue
			}
			if tv, ok := info.Types[mk.Args[1]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
				if v, exact := constant.Int64Val(tv.Value); exact {
					n, found = v, true
				}
			}
		}
		return true
	})
	return n, found
}

// stitchWire groups extracted items into per-variable streams, expands
// pre-encode markers, and concatenates what remains into the function's
// writer and reader streams.
func stitchWire(items []wireItem) *wireSummary {
	type key struct {
		obj  types.Object
		kind byte
	}
	type stream struct {
		key      key
		toks     []wireTok
		consumed bool
	}
	var order []*stream
	byKey := make(map[key]*stream)
	s := &wireSummary{}
	for _, it := range items {
		k := key{it.obj, it.kind}
		st, ok := byKey[k]
		if !ok {
			st = &stream{key: k}
			byKey[k] = st
			order = append(order, st)
		}
		st.toks = append(st.toks, it.tok)
		if it.direct {
			if it.kind == 'w' {
				s.directW = true
			} else {
				s.directR = true
			}
		}
	}
	// Expand @buf markers (bounded: each expansion consumes a stream).
	for pass := 0; pass < len(order)+1; pass++ {
		expanded := false
		for _, st := range order {
			for i := 0; i < len(st.toks); i++ {
				t := st.toks[i]
				if t.name != "@buf" || t.ref == nil {
					continue
				}
				src, ok := byKey[key{t.ref, st.key.kind}]
				if !ok || src == st {
					st.toks[i] = wireTok{name: "bytes", pos: t.pos}
					continue
				}
				src.consumed = true
				rest := append([]wireTok{}, st.toks[i+1:]...)
				st.toks = append(append(st.toks[:i], src.toks...), rest...)
				expanded = true
			}
		}
		if !expanded {
			break
		}
	}
	for _, st := range order {
		if st.consumed {
			continue
		}
		if st.key.kind == 'w' {
			s.w = append(s.w, st.toks...)
		} else {
			s.r = append(s.r, st.toks...)
		}
	}
	return s
}

// wireCounterparts returns the reader-side names a writer-side function
// name pairs with.
func wireCounterparts(name string) []string {
	for _, p := range []struct{ w, r1, r2 string }{
		{"encode", "decode", ""},
		{"Encode", "Decode", ""},
		{"Write", "Read", "Open"},
		{"write", "read", "open"},
	} {
		if rest, ok := strings.CutPrefix(name, p.w); ok && rest != "" {
			out := []string{p.r1 + rest}
			if p.r2 != "" {
				out = append(out, p.r2+rest)
			}
			return out
		}
	}
	return nil
}

func runWireSym(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	// Package-level functions of this package, by name.
	funcs := make(map[string]*types.Func)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				funcs[fd.Name.Name] = fn
			}
		}
	}
	for name, wfn := range funcs {
		for _, rname := range wireCounterparts(name) {
			rfn, ok := funcs[rname]
			if !ok {
				continue
			}
			ws := pass.Prog.wireSummaryOf(wfn)
			rs := pass.Prog.wireSummaryOf(rfn)
			if len(ws.w) == 0 || len(rs.r) == 0 {
				continue
			}
			if !ws.directW && !rs.directR {
				// Both sides only wrap deeper format calls; the deep pair
				// is (or will be) compared on its own.
				continue
			}
			compareWire(pass, name, rname, ws.w, rs.r)
		}
	}
}

// tokEqual compares one writer token against one reader token. A sized
// bytes matches an unsized one (the length is unknown on that side).
func tokEqual(w, r string) bool {
	if w == r {
		return true
	}
	if strings.HasPrefix(w, "bytes") && strings.HasPrefix(r, "bytes") {
		return w == "bytes" || r == "bytes"
	}
	return false
}

// compareWire reports the first asymmetry between a writer stream and
// its paired reader stream, if any.
func compareWire(pass *Pass, wname, rname string, w, r []wireTok) {
	n := len(w)
	if len(r) < n {
		n = len(r)
	}
	for i := 0; i < n; i++ {
		if !tokEqual(w[i].name, r[i].name) {
			pass.Reportf(w[i].pos, "wire-format asymmetry between %s (writer) and %s (reader) at field %d: writer emits %s, reader consumes %s (%s)",
				wname, rname, i, w[i].name, r[i].name, pass.Fset.Position(r[i].pos))
			return
		}
	}
	if len(w) != len(r) {
		if len(w) > len(r) {
			pass.Reportf(w[n].pos, "wire-format asymmetry between %s (writer) and %s (reader): writer emits %d field ops, reader consumes %d — first unread field is %s",
				wname, rname, len(w), len(r), w[n].name)
		} else {
			pass.Reportf(r[n].pos, "wire-format asymmetry between %s (writer) and %s (reader): writer emits %d field ops, reader consumes %d — first unwritten field is %s",
				wname, rname, len(w), len(r), r[n].name)
		}
	}
}
