package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WireTaint tracks untrusted integers from decode sources to allocation
// and loop-bound sinks. A value is untrusted when it was produced by a
// method on a declared untrusted-input type (a type whose declaration
// carries a `//spio:untrusted-input` comment — wire.go's frame decoder,
// any fixture twin), by encoding/binary's integer readers applied to
// already-tainted bytes, or read from a struct field some decode path
// stored an untrusted value into. Source roots are
// explicit on purpose: a structural "anything wrapping io.Reader" rule
// would taint the format package's file reader and drown the serving
// tier's real exposure under every trusted writer/bench path in the
// module. Taint is cleared only by a dominating bound check — a
// comparison against a trusted value (constant, parameter, len/cap) —
// or a min/max clamp. Sinks are make() size/cap arguments and for-loop
// bounds: the two places where a hostile 2⁶⁴-ish integer becomes an
// allocation or a spin before a single payload byte has arrived.
//
// The analysis is a whole-program fixpoint with three kinds of
// propagation: per-function summaries (taint in, taint out — so a
// helper like `func alloc(n int) []byte { return make([]byte, n) }`
// sinks its caller's taint), field-based tracking (a tainted store to
// request.K taints every later read of .K, context-insensitively), and
// source rounds until no new tainted field appears. Soundness
// boundaries — any comparison counts as a bound check, taint does not
// survive unresolvable calls — are in DESIGN.md §8.3.
var WireTaint = &Analyzer{
	Name: "wiretaint",
	Doc:  "flags untrusted wire/decode integers reaching allocations or loop bounds without a bound check",
	Run:  runWireTaint,
}

func runWireTaint(pass *Pass) {
	p := pass.Prog
	p.ensureTaint()
	pkgPath := pass.Pkg.Path()
	for _, d := range p.taintFindings {
		if d.pkg == pkgPath {
			pass.Reportf(d.pos, "%s", d.msg)
		}
	}
}

// taintVal tracks where a value's bits may come from: a decode source
// (src) and/or the enclosing function's parameters (params, a bitmask
// by parameter index — the currency of the interprocedural summaries).
type taintVal struct {
	src    bool
	params uint64
}

func (v taintVal) or(o taintVal) taintVal {
	return taintVal{src: v.src || o.src, params: v.params | o.params}
}

func (v taintVal) zero() bool { return !v.src && v.params == 0 }

// taintSummary is a function's taint behaviour as seen by callers.
type taintSummary struct {
	// retSrc: some return value carries decode-source taint
	// unconditionally (the function is itself a source to callers).
	retSrc bool
	// retParams: parameters whose taint flows into a return value.
	retParams uint64
	// sinkParams: parameters that reach a sink (make size, loop bound)
	// without a bound check, keyed by parameter index.
	sinkParams map[int]*taintSink
	// paramFields: struct fields a parameter's taint is stored into
	// (NewGrid storing its dims parameter into Grid.Dims).
	paramFields map[int][]string
}

type taintSink struct {
	desc string
	path []string
}

func newTaintSummary() *taintSummary {
	return &taintSummary{sinkParams: make(map[int]*taintSink), paramFields: make(map[int][]string)}
}

// fingerprint summarizes the summary for fixpoint-stability checks
// (all components grow monotonically).
func (s *taintSummary) fingerprint() string {
	nf := 0
	for _, fs := range s.paramFields {
		nf += len(fs)
	}
	return fmt.Sprintf("%v/%x/%d/%d", s.retSrc, s.retParams, len(s.sinkParams), nf)
}

// ensureTaint runs the whole-program taint fixpoint once: repeat
// per-function walks until no summary and no tainted-field set
// changes, then keep the final round's findings.
func (p *Program) ensureTaint() {
	if p.taintReady {
		return
	}
	p.taintReady = true
	p.scanUntrustedTypes()
	fns := make([]*FuncInfo, 0, len(p.Funcs))
	for _, fi := range p.Funcs {
		fns = append(fns, fi)
	}
	// Deterministic order keeps rounds (and finding order) stable.
	sort.Slice(fns, func(i, j int) bool { return fns[i].Decl.Pos() < fns[j].Decl.Pos() })

	for round := 0; round < 12; round++ {
		p.taintFindings = nil
		changed := false
		for _, fi := range fns {
			old := ""
			if s := p.taintSums[fi.Obj]; s != nil {
				old = s.fingerprint()
			}
			w := &taintWalker{
				prog:        p,
				fi:          fi,
				info:        fi.Pkg.Info,
				fnName:      funcDisplayName(fi.Obj),
				vals:        make(map[types.Object]taintVal),
				cleanFields: make(map[string]bool),
				sum:         newTaintSummary(),
				flagged:     make(map[token.Pos]bool),
			}
			for i, obj := range paramObjs(fi) {
				if obj != nil && i < 64 {
					w.vals[obj] = taintVal{params: 1 << i}
				}
			}
			w.walkStmts(fi.Decl.Body.List)
			if w.fieldChanged {
				changed = true
			}
			if w.sum.fingerprint() != old {
				changed = true
			}
			p.taintSums[fi.Obj] = w.sum
		}
		if !changed {
			break
		}
	}
	sort.Slice(p.taintFindings, func(i, j int) bool { return p.taintFindings[i].pos < p.taintFindings[j].pos })
}

// scanUntrustedTypes records every named type whose declaration carries
// a //spio:untrusted-input comment. Methods on these types are the
// taint roots: the marker is how a decoder over hostile bytes (the
// server's wire reader) is distinguished from the byte-identical
// decoder over trusted local files (format's binio reader).
func (p *Program) scanUntrustedTypes() {
	p.taintTypes = make(map[string]bool)
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				declMarked := commentHasUntrusted(gd.Doc)
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if declMarked || commentHasUntrusted(ts.Doc) || commentHasUntrusted(ts.Comment) {
						p.taintTypes[pkg.Types.Path()+"."+ts.Name.Name] = true
					}
				}
			}
		}
	}
}

func commentHasUntrusted(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, "spio:untrusted-input") {
			return true
		}
	}
	return false
}

// paramObjs lists a function's parameter objects in declaration order,
// receiver first for methods. Unnamed and blank parameters contribute a
// nil placeholder so indices stay aligned with call-site argument
// positions. Tracking the receiver as parameter 0 is what lets
// `grid.Cells()` return its receiver's taint — a method reading a
// tainted struct is a pass-through, not a laundering point.
func paramObjs(fi *FuncInfo) []types.Object {
	var out []types.Object
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				out = append(out, nil)
				continue
			}
			for _, name := range field.Names {
				out = append(out, fi.Pkg.Info.Defs[name])
			}
		}
	}
	add(fi.Decl.Recv)
	add(fi.Decl.Type.Params)
	return out
}

// taintWalker interprets one function body, one fixpoint round.
type taintWalker struct {
	prog   *Program
	fi     *FuncInfo
	info   *types.Info
	fnName string
	// vals is the local taint environment; cleanFields holds field
	// classes bound-checked in this function (reads of them evaluate
	// clean from the check onward).
	vals        map[types.Object]taintVal
	cleanFields map[string]bool
	sum         *taintSummary
	flagged     map[token.Pos]bool
	// fieldChanged notes a new globally-tainted field this round.
	fieldChanged bool
}

func (w *taintWalker) report(pos token.Pos, format string, args ...any) {
	if w.flagged[pos] {
		return
	}
	w.flagged[pos] = true
	w.prog.taintFindings = append(w.prog.taintFindings, progDiag{
		pkg: w.fi.Pkg.Types.Path(),
		pos: pos,
		msg: fmt.Sprintf(format, args...),
	})
}

// markFieldTaint records that a field class received tainted bits:
// source taint goes to the global set, parameter taint to the
// function's summary.
func (w *taintWalker) markFieldTaint(key string, val taintVal) {
	if key == "" || val.zero() {
		return
	}
	if val.src && !w.prog.taintFields[key] {
		w.prog.taintFields[key] = true
		w.fieldChanged = true
	}
	for i := 0; i < 64; i++ {
		if val.params&(1<<i) == 0 {
			continue
		}
		already := false
		for _, k := range w.sum.paramFields[i] {
			if k == key {
				already = true
				break
			}
		}
		if !already {
			w.sum.paramFields[i] = append(w.sum.paramFields[i], key)
		}
	}
}

// sinkHit handles tainted bits reaching a sink: source taint is a
// finding here, parameter taint becomes a summary entry so the finding
// surfaces at the caller passing untrusted data.
func (w *taintWalker) sinkHit(pos token.Pos, desc string, val taintVal, path []string) {
	if val.src {
		loc := ""
		if len(path) > 0 {
			loc = " (via " + strings.Join(path, " → ") + ")"
		}
		w.report(pos, "%s reaches %s in %s without a dominating bound check — a hostile length becomes a huge allocation or spin%s",
			"untrusted decode value", desc, w.fnName, loc)
	}
	for i := 0; i < 64; i++ {
		if val.params&(1<<i) == 0 {
			continue
		}
		if _, ok := w.sum.sinkParams[i]; !ok {
			w.sum.sinkParams[i] = &taintSink{desc: desc, path: append([]string{w.fnName}, path...)}
		}
	}
}

func (w *taintWalker) walkStmts(stmts []ast.Stmt) {
	for _, st := range stmts {
		w.walkStmt(st)
	}
}

func (w *taintWalker) walkStmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		w.eval(st.X)
	case *ast.AssignStmt:
		w.walkAssign(st)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				var val taintVal
				for _, v := range vs.Values {
					val = val.or(w.eval(v))
				}
				for _, name := range vs.Names {
					if obj := w.info.Defs[name]; obj != nil {
						w.vals[obj] = val
					}
				}
			}
		}
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		w.eval(st.Cond)
		w.sanitizeCond(st.Cond)
		w.walkStmts(st.Body.List)
		switch e := st.Else.(type) {
		case *ast.BlockStmt:
			w.walkStmts(e.List)
		case *ast.IfStmt:
			w.walkStmt(e)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		if st.Cond != nil {
			w.checkLoopBound(st.Cond)
			w.eval(st.Cond)
		}
		w.walkStmts(st.Body.List)
		if st.Post != nil {
			w.walkStmt(st.Post)
		}
	case *ast.RangeStmt:
		w.eval(st.X)
		w.walkStmts(st.Body.List)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		if st.Tag != nil {
			w.eval(st.Tag)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.eval(e)
			}
			w.walkStmts(cc.Body)
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		for _, c := range st.Body.List {
			w.walkStmts(c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				w.walkStmt(cc.Comm)
			}
			w.walkStmts(cc.Body)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			v := w.eval(e)
			if v.src {
				w.sum.retSrc = true
			}
			w.sum.retParams |= v.params
		}
	case *ast.SendStmt:
		w.eval(st.Chan)
		w.eval(st.Value)
	case *ast.BlockStmt:
		w.walkStmts(st.List)
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt)
	case *ast.DeferStmt:
		w.eval(st.Call)
	case *ast.GoStmt:
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List) // captured locals keep their taint
		} else {
			w.eval(st.Call)
		}
	case *ast.IncDecStmt:
		w.eval(st.X)
	}
}

func (w *taintWalker) walkAssign(st *ast.AssignStmt) {
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		// Multi-value call: one coarse value for every left-hand side.
		val := w.eval(st.Rhs[0])
		for _, l := range st.Lhs {
			w.assignTo(l, val, st.Tok)
		}
		return
	}
	for i, l := range st.Lhs {
		if i < len(st.Rhs) {
			w.assignTo(l, w.eval(st.Rhs[i]), st.Tok)
		}
	}
}

func (w *taintWalker) assignTo(lhs ast.Expr, val taintVal, tok token.Token) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := w.info.Defs[l]
		if obj == nil {
			obj = w.info.Uses[l]
		}
		if obj == nil {
			return
		}
		if tok != token.ASSIGN && tok != token.DEFINE {
			val = val.or(w.vals[obj]) // compound assignment mixes old bits in
		}
		w.vals[obj] = val
	case *ast.SelectorExpr:
		w.eval(l.X)
		w.markFieldTaint(w.fieldKeyOf(l), val)
	case *ast.IndexExpr:
		w.eval(l.X)
		w.eval(l.Index)
	case *ast.StarExpr:
		w.eval(l.X)
	}
}

// sanitizeCond treats a comparison between tainted and trusted
// operands as the bound check: every identifier and field read on the
// tainted side is considered clean from here on. (Parameter taint
// counts as trusted here — the caller vouches for its own bound — and
// this is exactly what lets wire.go's `if n > maxLen { fail }` clear
// n.) For-loop conditions never come through here; they are sinks.
func (w *taintWalker) sanitizeCond(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		x, y := w.eval(be.X), w.eval(be.Y)
		if x.src && !y.src {
			w.clearExpr(be.X)
		}
		if y.src && !x.src {
			w.clearExpr(be.Y)
		}
		return true
	})
}

// clearExpr marks every identifier and field class mentioned in a
// bound-checked expression as clean.
func (w *taintWalker) clearExpr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := w.info.Uses[n]; obj != nil {
				if v, ok := w.vals[obj]; ok && v.src {
					w.vals[obj] = taintVal{params: v.params}
				}
			}
		case *ast.SelectorExpr:
			if key := w.fieldKeyOf(n); key != "" {
				w.cleanFields[key] = true
			}
		}
		return true
	})
}

// checkLoopBound flags tainted operands in a for-loop condition.
func (w *taintWalker) checkLoopBound(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			if v := w.eval(side); !v.zero() {
				w.sinkHit(side.Pos(), "a loop bound", v, nil)
			}
		}
		return true
	})
}

// eval computes an expression's taint, recording sink hits and field
// stores along the way.
func (w *taintWalker) eval(e ast.Expr) taintVal {
	switch e := e.(type) {
	case nil:
		return taintVal{}
	case *ast.Ident:
		if obj := w.info.Uses[e]; obj != nil {
			return w.vals[obj]
		}
		return taintVal{}
	case *ast.ParenExpr:
		return w.eval(e.X)
	case *ast.StarExpr:
		return w.eval(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND || e.Op == token.ARROW {
			w.eval(e.X)
			return taintVal{}
		}
		return w.eval(e.X)
	case *ast.BinaryExpr:
		x, y := w.eval(e.X), w.eval(e.Y)
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ,
			token.LAND, token.LOR:
			return taintVal{} // booleans carry no size
		}
		return x.or(y)
	case *ast.SelectorExpr:
		base := w.eval(e.X)
		key := w.fieldKeyOf(e)
		if key != "" && w.prog.taintFields[key] && !w.cleanFields[key] {
			return base.or(taintVal{src: true})
		}
		return base
	case *ast.IndexExpr:
		w.eval(e.Index)
		return w.eval(e.X)
	case *ast.SliceExpr:
		w.eval(e.Low)
		w.eval(e.High)
		w.eval(e.Max)
		return w.eval(e.X)
	case *ast.TypeAssertExpr:
		return w.eval(e.X)
	case *ast.CompositeLit:
		// A literal built from tainted parts is tainted as a value, but
		// does NOT mark its type's fields globally: `geom.Idx3{X: d.n()}`
		// poisons that one value, not every Idx3 in the module. Global
		// field taint comes only from field-write statements, which name
		// a long-lived struct the decode path owns.
		var val taintVal
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				val = val.or(w.eval(kv.Value))
				continue
			}
			val = val.or(w.eval(el))
		}
		return val
	case *ast.CallExpr:
		return w.evalCall(e)
	case *ast.FuncLit:
		// Not this schedule; literals are walked where they run (go) or
		// treated as opaque values otherwise.
		return taintVal{}
	default:
		return taintVal{}
	}
}

func (w *taintWalker) evalCall(call *ast.CallExpr) taintVal {
	// Conversion: T(x) keeps x's taint.
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return w.eval(call.Args[0])
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				for _, sizeArg := range call.Args[1:] {
					if v := w.eval(sizeArg); !v.zero() {
						w.sinkHit(sizeArg.Pos(), "a make() size", v, nil)
					}
				}
				return taintVal{}
			case "len", "cap":
				w.eval(call.Args[0])
				return taintVal{} // bounded by data that actually exists
			case "min", "max":
				var val taintVal
				sawClean := false
				for _, a := range call.Args {
					v := w.eval(a)
					if v.zero() {
						sawClean = true
					}
					val = val.or(v)
				}
				if sawClean {
					return taintVal{} // clamped against a trusted bound
				}
				return val
			case "append", "copy":
				var val taintVal
				for _, a := range call.Args {
					val = val.or(w.eval(a))
				}
				return val
			default:
				for _, a := range call.Args {
					w.eval(a)
				}
				return taintVal{}
			}
		}
	}
	// encoding/binary integer readers launder bytes into sizes: the
	// result carries whatever taint the input bytes do. They are
	// propagators, not roots — Uint64 over a locally-built buffer is
	// clean, the same call over conn-read bytes is not.
	if isBinaryIntReader(w.info, call) {
		var val taintVal
		for _, a := range call.Args {
			val = val.or(w.eval(a))
		}
		return val
	}
	// Source roots: any method on a declared untrusted-input type.
	if w.isDecoderSource(call) {
		for _, a := range call.Args {
			w.eval(a)
		}
		return taintVal{src: true}
	}
	// Resolved callee: apply its summary.
	callee := w.prog.calleeFunc(w.info, call)
	var sum *taintSummary
	if callee != nil {
		if _, loaded := w.prog.Funcs[callee]; loaded {
			sum = w.prog.taintSums[callee]
		}
	}
	if sum == nil {
		// Unknown or external: evaluate arguments for nested sinks, and
		// return clean — taint does not survive calls the analysis
		// cannot see (an under-approximation, documented).
		for _, a := range call.Args {
			w.eval(a)
		}
		return taintVal{}
	}
	calleeName := funcDisplayName(callee)
	sig, _ := callee.Type().(*types.Signature)
	nParams := 0
	hasRecv := false
	if sig != nil {
		nParams = sig.Params().Len()
		hasRecv = sig.Recv() != nil
	}
	// Pair every taint-carrying input with its parameter index in the
	// callee's paramObjs numbering: receiver (if any) is 0, declared
	// parameters follow, the variadic tail collapses onto the last.
	type argPair struct {
		e ast.Expr
		j int
	}
	var pairs []argPair
	off := 0
	if hasRecv {
		off = 1
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			pairs = append(pairs, argPair{sel.X, 0})
		}
	}
	for a, arg := range call.Args {
		j := a
		if nParams > 0 && j >= nParams {
			j = nParams - 1
		}
		if nParams == 0 {
			w.eval(arg)
			continue
		}
		pairs = append(pairs, argPair{arg, j + off})
	}
	val := taintVal{src: sum.retSrc}
	for _, p := range pairs {
		av := w.eval(p.e)
		if av.zero() {
			continue
		}
		if sum.retParams&(1<<p.j) != 0 {
			val = val.or(av)
		}
		if sink, ok := sum.sinkParams[p.j]; ok {
			w.sinkHit(call.Pos(), sink.desc+" in "+calleeName, av, sink.path)
		}
		for _, fk := range sum.paramFields[p.j] {
			w.markFieldTaint(fk, av)
		}
	}
	return val
}

// fieldKeyOf names the field class a selector reads/writes:
// "pkg/path.Type.Field"; "" for non-field selections.
func (w *taintWalker) fieldKeyOf(sel *ast.SelectorExpr) string {
	s, ok := w.info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	return fieldClassKey(s.Recv(), s.Obj().Name())
}

// fieldClassKey renders a (receiver type, field name) pair as the
// global field-taint key.
func fieldClassKey(t types.Type, field string) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + field
}

// isBinaryIntReader matches encoding/binary's integer readers:
// LittleEndian/BigEndian.UintNN and the varint decoders.
func isBinaryIntReader(info *types.Info, call *ast.CallExpr) bool {
	fn := funcObj(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
		return false
	}
	switch fn.Name() {
	case "Uint16", "Uint32", "Uint64", "ReadUvarint", "ReadVarint", "Uvarint", "Varint":
		return true
	}
	return false
}

// isDecoderSource matches methods on declared untrusted-input types:
// every result of such a method is decode-source tainted (integers are
// hostile sizes, byte slices are hostile bytes for isBinaryIntReader to
// launder).
func (w *taintWalker) isDecoderSource(call *ast.CallExpr) bool {
	fn := funcObj(w.info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return w.prog.taintTypes[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}
