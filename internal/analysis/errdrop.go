package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags discarded error and WriteResult returns from the spio
// API surface: the root package, and the internal packages whose types
// it re-exports (core, format, reader, particle, profile, mpi). The
// write pipeline reports partial failure only through these returns —
// an aggregator whose file write failed, a reader that decoded a
// truncated record — so dropping them silently breaks the "every rank
// observed the same outcome" reasoning the collective pipeline depends
// on.
//
// Two shapes are flagged:
//
//   - a call used as a bare statement whose results include an error or
//     core.WriteResult (everything dropped);
//   - a multi-value assignment that blanks the error position while
//     binding other results (`buf, _ := ds.QueryBox(...)`).
//
// Deliberately not flagged: deferred and go'd calls (`defer ds.Close()`
// is idiomatic teardown), single-value `_ = f()` (an explicit,
// greppable discard), assignments that blank every position (the same
// explicit discard, spelled across a tuple), and `_, err :=` (dropping
// the WriteResult while keeping the error is the documented
// non-aggregator pattern).
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flags discarded error/WriteResult returns from the spio public API and internal encode/decode calls",
	Run:  runErrDrop,
}

// errDropPackages is the API surface errdrop watches.
var errDropPackages = map[string]bool{
	rootPath:                 true,
	corePath:                 true,
	particlePath:             true,
	mpiPath:                  true,
	"spio/internal/format":   true,
	"spio/internal/reader":   true,
	"spio/internal/profile":  true,
	"spio/internal/baseline": true,
}

func runErrDrop(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn, path, droppable := watchedOrPropagating(pass, call)
				if !droppable {
					return true
				}
				if len(path) > 0 {
					pass.Reportf(call.Pos(), "result of %s is dropped: its error propagates the result of %s (call path: %s)", callName(fn), path[len(path)-1], strings.Join(path, " → "))
					return true
				}
				pass.Reportf(call.Pos(), "result of %s is dropped: it reports %s", callName(fn), droppedWhat(fn))
			case *ast.AssignStmt:
				checkBlankedError(pass, n)
			}
			return true
		})
	}
}

// watchedOrPropagating resolves call's callee and reports whether its
// results must not be dropped: a member of the watched API surface, or
// a loaded helper whose error result (per its summary) may carry a
// watched call's error. The returned path is non-nil only in the
// helper case.
func watchedOrPropagating(pass *Pass, call *ast.CallExpr) (*types.Func, []string, bool) {
	if fn, ok := watchedCall(pass.Info, call); ok {
		return fn, nil, true
	}
	if pass.Prog == nil {
		return nil, nil, false
	}
	callee := pass.Prog.calleeFunc(pass.Info, call)
	if callee == nil {
		return nil, nil, false
	}
	if s := pass.Prog.errSummaryOf(callee); s != nil && s.propagates {
		return callee, s.path, true
	}
	return nil, nil, false
}

// checkBlankedError flags `x, _ := watched(...)` where the blanked
// position is error-typed and at least one other position is bound.
func checkBlankedError(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 || len(as.Lhs) < 2 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn, path, droppable := watchedOrPropagating(pass, call)
	if !droppable {
		return
	}
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() != len(as.Lhs) {
		return
	}
	someBound := false
	for _, lhs := range as.Lhs {
		if !isBlank(lhs) {
			someBound = true
		}
	}
	if !someBound {
		return // `_, _ =` is an explicit whole-tuple discard
	}
	for i, lhs := range as.Lhs {
		if isBlank(lhs) && isErrorType(sig.Results().At(i).Type()) {
			if len(path) > 0 {
				pass.Reportf(lhs.Pos(), "error from %s is blanked while other results are used (propagates %s; call path: %s)", callName(fn), path[len(path)-1], strings.Join(path, " → "))
				continue
			}
			pass.Reportf(lhs.Pos(), "error from %s is blanked while other results are used", callName(fn))
		}
	}
}

// watchedCall resolves call's callee and reports whether it belongs to
// the watched API surface and returns an error or WriteResult.
func watchedCall(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	fn := funcObj(info, call)
	if fn == nil || fn.Pkg() == nil || !errDropPackages[fn.Pkg().Path()] {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		t := res.At(i).Type()
		if isErrorType(t) || isNamed(t, corePath, "WriteResult") {
			return fn, true
		}
	}
	return nil, false
}

func droppedWhat(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	res := sig.Results()
	hasErr, hasWR := false, false
	for i := 0; i < res.Len(); i++ {
		t := res.At(i).Type()
		hasErr = hasErr || isErrorType(t)
		hasWR = hasWR || isNamed(t, corePath, "WriteResult")
	}
	switch {
	case hasErr && hasWR:
		return "both an error and the rank's WriteResult"
	case hasWR:
		return "the rank's WriteResult"
	default:
		return "an error"
	}
}

func callName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
