package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Whole-program layer. PR 1's analyzers were strictly intraprocedural:
// a collective, a buffer handoff, or a dropped API error hidden one
// function deep escaped every check. Program closes that hole with a
// conservative call graph over every loaded package plus lazily
// computed per-function summaries (summary.go) the analyzers propagate
// through call sites.
//
// Call resolution is deliberately modest and therefore predictable:
//
//   - package-level function calls and method calls whose receiver has
//     a concrete (non-interface) type resolve to their *types.Func —
//     go/types has already done the work via Uses;
//   - interface method calls, calls of func-typed values, and calls of
//     function literals do not resolve. They degrade the caller to
//     "may do anything we cannot see": the summary is marked imprecise
//     (Unknown) but no phantom behaviour is invented, because inventing
//     it would flag every rank-guarded log statement and bury the real
//     findings. DESIGN.md §8 spells out this soundness trade.
//   - calls that resolve to functions outside the loaded package set
//     (the standard library) are treated as behaviour-free for the
//     spio contracts: an external package cannot issue spio collectives
//     or spio API calls except through a func value, which is already
//     an unknown call.
type Program struct {
	Pkgs []*Package
	// Funcs indexes every function and method declared (with a body) in
	// the loaded packages.
	Funcs map[*types.Func]*FuncInfo
	// byKey indexes the same functions by a package-path-qualified name.
	// The source importer type-checks each loaded package in its own
	// world, so a cross-package reference resolves to the importer's
	// *types.Func copy — a different pointer from the one Funcs was
	// built with. Identity must therefore be canonicalized by name
	// (canon) before any map keyed on *types.Func is consulted;
	// without this every cross-package call silently degraded to an
	// external leaf.
	byKey map[string]*FuncInfo

	collSums map[*types.Func]*collSummary
	bufSums  map[*types.Func]*bufSummary
	errSums  map[*types.Func]*errSummary
	wireSums map[*types.Func]*wireSummary
	mayColl  map[*types.Func]bool
	mayP2P   map[*types.Func]bool

	collVisiting map[*types.Func]bool
	bufVisiting  map[*types.Func]bool
	errVisiting  map[*types.Func]bool
	wireVisiting map[*types.Func]bool

	// The concurrency/taint pack (lockorder, wiretaint, goleak) runs as
	// whole-program fixpoints: the first pass to ask triggers one
	// analysis over every loaded function, findings are stored here
	// tagged with their owning package, and each per-package pass
	// reports only its own. lockSums/exitSums/taintSums are the
	// propagated per-function summaries (lock sets, goroutine-exit
	// evidence, taint flow) the fixpoints build.
	lockSums      map[*types.Func]*lockSummary
	lockFindings  []progDiag
	lockReady     bool
	exitSums      map[*types.Func]*exitSummary
	exitReady     bool
	taintSums     map[*types.Func]*taintSummary
	taintFields   map[string]bool
	taintTypes    map[string]bool
	taintFindings []progDiag
	taintReady    bool
	raceFindings  []progDiag
	raceReady     bool
}

// progDiag is a finding produced by a whole-program fixpoint, held on
// the Program until the owning package's pass reports it.
type progDiag struct {
	pkg string
	pos token.Pos
	msg string
}

// FuncInfo is one call-graph node: a declared function with a body,
// together with the package context needed to analyze it.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// BuildProgram indexes every function declaration in pkgs.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:         pkgs,
		Funcs:        make(map[*types.Func]*FuncInfo),
		byKey:        make(map[string]*FuncInfo),
		collSums:     make(map[*types.Func]*collSummary),
		bufSums:      make(map[*types.Func]*bufSummary),
		errSums:      make(map[*types.Func]*errSummary),
		wireSums:     make(map[*types.Func]*wireSummary),
		collVisiting: make(map[*types.Func]bool),
		bufVisiting:  make(map[*types.Func]bool),
		errVisiting:  make(map[*types.Func]bool),
		wireVisiting: make(map[*types.Func]bool),
		lockSums:     make(map[*types.Func]*lockSummary),
		exitSums:     make(map[*types.Func]*exitSummary),
		taintSums:    make(map[*types.Func]*taintSummary),
		taintFields:  make(map[string]bool),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: fn, Decl: fd, Pkg: pkg}
				prog.Funcs[fn] = fi
				if k := funcKey(fn); k != "" {
					prog.byKey[k] = fi
				}
			}
		}
	}
	return prog
}

// funcKey renders fn's package-path-qualified identity:
// "pkg/path.Func" or "pkg/path.Recv.Func". It is the cross-package
// canonical key: two *types.Func copies of the same declaration (one
// from the declaring package's check, one from an importing package's
// importer world) render identically.
func funcKey(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		recv = named.Obj().Name() + "."
	}
	return pkg.Path() + "." + recv + fn.Name()
}

// canon maps fn to the Program's own *types.Func for the same
// declaration, so pointer-keyed maps (Funcs, the summary memos) agree
// across packages. Functions outside the loaded set pass through
// unchanged.
func (p *Program) canon(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	if _, ok := p.Funcs[fn]; ok {
		return fn
	}
	if fi, ok := p.byKey[funcKey(fn)]; ok {
		return fi.Obj
	}
	return fn
}

// callee resolves a call expression to a loaded function's FuncInfo.
// It returns nil for unresolvable calls (interface methods, func
// values, literals) and for functions outside the loaded set; unknown
// additionally distinguishes the former — the "may do anything" case —
// from a benign external leaf.
func (p *Program) callee(info *types.Info, call *ast.CallExpr) (fi *FuncInfo, unknown bool) {
	fn := p.calleeFunc(info, call)
	if fn == nil {
		return nil, true
	}
	if fi, ok := p.Funcs[fn]; ok {
		return fi, false
	}
	return nil, false
}

// calleeFunc resolves a call to the Program's canonical *types.Func
// (staticCallee + canon): the result is safe to use as a key into
// Funcs and the summary memos even when the call crosses packages.
func (p *Program) calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	return p.canon(staticCallee(info, call))
}

// staticCallee resolves the called *types.Func when the call target is
// statically known: a package-level function or a method invoked on a
// concrete receiver. Interface method calls and func-value calls
// return nil. The result is the type-checker's object for the calling
// package's world — use Program.calleeFunc for a canonical identity.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fn := funcObj(info, call)
	if fn == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return nil
		}
	}
	return fn
}

// passFor builds the per-package analysis context summaries are
// computed under. Diagnostics reported through it are discarded: the
// summary walkers share the analyzers' walking code but never report.
func (p *Program) passFor(a *Analyzer, pkg *Package) *Pass {
	var discard []Diagnostic
	return &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Prog:     p,
		diags:    &discard,
	}
}

// funcDisplayName renders fn for call-path diagnostics:
// "pkg.Func" or "Type.Method".
func funcDisplayName(fn *types.Func) string {
	return callName(fn)
}
