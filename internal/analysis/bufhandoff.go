package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BufHandoff enforces the WriteAsync ownership transfer documented in
// spio.go: "Ownership of local transfers to the write until Wait
// returns: the caller must not modify the buffer in between." Any use
// of a *particle.Buffer between passing it to WriteAsync (spio or
// internal/core spelling) and calling Wait on the returned handle races
// with the background checkpoint, so it is flagged.
//
// The check is per function and straight-line: statements are ordered
// by source position, a buffer is tainted from the WriteAsync call to
// the Wait on that call's result (or to the end of the function if the
// handle is discarded or never waited on), and reassigning the buffer
// variable ends its taint (the old buffer is no longer reachable
// through it). Uses inside function literals are flagged too — a
// closure reading the buffer while the checkpoint runs is exactly the
// race — but literal bodies are scanned only for uses, not for Waits,
// since their execution time is unknown.
var BufHandoff = &Analyzer{
	Name: "bufhandoff",
	Doc:  "flags uses of a particle.Buffer between WriteAsync handoff and Wait (ownership race)",
	Run:  runBufHandoff,
}

// handoff is one WriteAsync call's taint interval.
type handoff struct {
	bufObj  types.Object // the buffer variable handed off
	pendObj types.Object // the PendingWrite variable, if bound
	start   token.Pos    // end of the WriteAsync call
	end     token.Pos    // position of the matching Wait (or NoPos = function end)
}

func runBufHandoff(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkHandoffs(pass, fd.Body)
			return true
		})
	}
}

func checkHandoffs(pass *Pass, body *ast.BlockStmt) {
	var handoffs []*handoff

	// Pass 1: find WriteAsync calls and bind them to their result
	// variable when the call is the sole RHS of an assignment.
	ast.Inspect(body, func(n ast.Node) bool {
		var call *ast.CallExpr
		var pend types.Object
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if c, ok := n.Rhs[0].(*ast.CallExpr); ok && isWriteAsync(pass.Info, c) {
					call = c
					if len(n.Lhs) == 1 {
						pend = identObj(pass.Info, n.Lhs[0])
					}
				}
			}
		case *ast.ExprStmt:
			if c, ok := n.X.(*ast.CallExpr); ok && isWriteAsync(pass.Info, c) {
				call = c
			}
		}
		if call == nil || len(call.Args) == 0 {
			return true
		}
		bufObj := identObj(pass.Info, call.Args[len(call.Args)-1])
		if bufObj == nil {
			return true
		}
		handoffs = append(handoffs, &handoff{bufObj: bufObj, pendObj: pend, start: call.End()})
		return true
	})
	if len(handoffs) == 0 {
		return
	}

	// Pass 2: close each interval at the first Wait on its handle, and
	// at any reassignment of the buffer variable.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !methodOn(pass.Info, n, corePath, "PendingWrite", "Wait") {
				return true
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := identObj(pass.Info, sel.X)
			if recv == nil {
				return true
			}
			for _, h := range handoffs {
				if h.pendObj == recv && n.Pos() > h.start && (h.end == token.NoPos || n.Pos() < h.end) {
					h.end = n.Pos()
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				obj := identObj(pass.Info, lhs)
				if obj == nil {
					continue
				}
				for _, h := range handoffs {
					if h.bufObj == obj && n.Pos() > h.start && (h.end == token.NoPos || n.Pos() < h.end) {
						h.end = n.Pos()
					}
				}
			}
		}
		return true
	})

	// Pass 3: flag every use of a tainted buffer inside its interval.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		for _, h := range handoffs {
			if h.bufObj != obj || id.Pos() <= h.start {
				continue
			}
			if h.end != token.NoPos && id.Pos() >= h.end {
				continue
			}
			waited := "before Wait on the pending write"
			if h.pendObj == nil && h.end == token.NoPos {
				waited = "and the PendingWrite handle is never waited on"
			}
			pass.Reportf(id.Pos(), "buffer %s is used after being handed off to WriteAsync %s: ownership transfers to the checkpoint until Wait returns", id.Name, waited)
		}
		return true
	})
}

// isWriteAsync reports whether call is spio.WriteAsync or
// core.WriteAsync.
func isWriteAsync(info *types.Info, call *ast.CallExpr) bool {
	return pkgFunc(info, call, rootPath, "WriteAsync") || pkgFunc(info, call, corePath, "WriteAsync")
}
