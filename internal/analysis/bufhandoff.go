package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BufHandoff enforces the asynchronous buffer-ownership transfers of
// the API. Two hand-offs open an ownership window:
//
//   - WriteAsync (spio or internal/core spelling): "Ownership of local
//     transfers to the write until Wait returns: the caller must not
//     modify the buffer in between."
//   - particle.NewDecodePool: the destination buffer belongs to the
//     pool's decode workers from construction until DecodePool.Wait
//     returns (the arrival-order aggregation contract).
//
// Any use of the *particle.Buffer between the hand-off and the matching
// Wait races with the background goroutines, so it is flagged.
//
// The check is per function and straight-line: statements are ordered
// by source position, a buffer is tainted from the WriteAsync call to
// the Wait on that call's result (or to the end of the function if the
// handle is discarded or never waited on), and reassigning the buffer
// variable ends its taint (the old buffer is no longer reachable
// through it). Uses inside function literals are flagged too — a
// closure reading the buffer while the checkpoint runs is exactly the
// race — but literal bodies are scanned only for uses, not for Waits,
// since their execution time is unknown.
var BufHandoff = &Analyzer{
	Name: "bufhandoff",
	Doc:  "flags uses of a particle.Buffer between an async handoff (WriteAsync, NewDecodePool) and Wait (ownership race)",
	Run:  runBufHandoff,
}

// handoff is one hand-off call's taint interval.
type handoff struct {
	bufObj  types.Object // the buffer variable handed off
	pendObj types.Object // the handle variable (PendingWrite / DecodePool), if bound
	start   token.Pos    // end of the hand-off call
	end     token.Pos    // position of the matching Wait (or NoPos = function end)
	// what names the hand-off call and owner names who holds the buffer,
	// for the diagnostic ("WriteAsync"/"the checkpoint",
	// "NewDecodePool"/"the decode pool").
	what, owner, handle string
	// viaPath is set when the handoff happened through a helper whose
	// summary passes the buffer on; it names the chain for the
	// diagnostic.
	viaPath []string
}

func runBufHandoff(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkHandoffs(pass, fd.Body)
			return true
		})
	}
}

func checkHandoffs(pass *Pass, body *ast.BlockStmt) {
	var handoffs []*handoff

	// Pass 1: find handoff calls — WriteAsync itself, or a helper whose
	// summary passes a buffer argument on to WriteAsync — and bind them
	// to their result variable when the call is the RHS of an
	// assignment. The PendingWrite result is identified by type, so
	// helpers returning (handle, error) tuples still bind.
	ast.Inspect(body, func(n ast.Node) bool {
		var call *ast.CallExpr
		var lhs []ast.Expr
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if c, ok := n.Rhs[0].(*ast.CallExpr); ok {
					call = c
					lhs = n.Lhs
				}
			}
		case *ast.ExprStmt:
			if c, ok := n.X.(*ast.CallExpr); ok {
				call = c
			}
		}
		if call == nil {
			return true
		}
		h, ok := handoffTarget(pass, call)
		if !ok {
			return true
		}
		for _, l := range lhs {
			obj := identObj(pass.Info, l)
			if obj != nil && (isNamed(obj.Type(), corePath, "PendingWrite") || isNamed(obj.Type(), particlePath, "DecodePool")) {
				h.pendObj = obj
				break
			}
		}
		h.start = call.End()
		handoffs = append(handoffs, h)
		return true
	})
	if len(handoffs) == 0 {
		return
	}

	// Pass 2: close each interval at the first Wait on its handle, and
	// at any reassignment of the buffer variable.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !methodOn(pass.Info, n, corePath, "PendingWrite", "Wait") &&
				!methodOn(pass.Info, n, particlePath, "DecodePool", "Wait") {
				return true
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := identObj(pass.Info, sel.X)
			if recv == nil {
				return true
			}
			for _, h := range handoffs {
				if h.pendObj == recv && n.Pos() > h.start && (h.end == token.NoPos || n.Pos() < h.end) {
					h.end = n.Pos()
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				obj := identObj(pass.Info, lhs)
				if obj == nil {
					continue
				}
				for _, h := range handoffs {
					if h.bufObj == obj && n.Pos() > h.start && (h.end == token.NoPos || n.Pos() < h.end) {
						h.end = n.Pos()
					}
				}
			}
		}
		return true
	})

	// Deep uses: a tainted buffer passed whole to a loaded function
	// whose summary touches that parameter gets its diagnostic enriched
	// with the call path to the use inside the helper.
	deepUse := make(map[*ast.Ident][]string)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || pass.Prog == nil {
			return true
		}
		callee := pass.Prog.calleeFunc(pass.Info, call)
		if callee == nil {
			return true
		}
		sum := pass.Prog.bufSummaryOf(callee)
		if sum == nil {
			return true
		}
		csig, ok := callee.Type().(*types.Signature)
		if !ok {
			return true
		}
		for a, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			j := a
			if j >= csig.Params().Len() {
				j = csig.Params().Len() - 1
			}
			if j >= 0 && sum.touches[j] {
				deepUse[id] = sum.touchPath[j]
			}
		}
		return true
	})

	// Pass 3: flag every use of a tainted buffer inside its interval.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		for _, h := range handoffs {
			if h.bufObj != obj || id.Pos() <= h.start {
				continue
			}
			if h.end != token.NoPos && id.Pos() >= h.end {
				continue
			}
			waited := "before Wait on the pending write"
			if h.pendObj == nil && h.end == token.NoPos {
				waited = "and the " + h.handle + " handle is never waited on"
			}
			via := ""
			if len(h.viaPath) > 0 {
				via = " (handed off via " + strings.Join(h.viaPath, " → ") + ")"
			}
			if path, ok := deepUse[id]; ok {
				pass.Reportf(id.Pos(), "buffer %s is used after being handed off to %s%s %s (use path: %s): ownership transfers to %s until Wait returns", id.Name, h.what, via, waited, strings.Join(path, " → "), h.owner)
			} else {
				pass.Reportf(id.Pos(), "buffer %s is used after being handed off to %s%s %s: ownership transfers to %s until Wait returns", id.Name, h.what, via, waited, h.owner)
			}
		}
		return true
	})
}

// checkpointHandoff and poolHandoff describe the two hand-off shapes
// for diagnostics.
func checkpointHandoff(bufObj types.Object, viaPath []string) *handoff {
	return &handoff{bufObj: bufObj, viaPath: viaPath, what: "WriteAsync", owner: "the checkpoint", handle: "PendingWrite"}
}

func poolHandoff(bufObj types.Object, viaPath []string) *handoff {
	return &handoff{bufObj: bufObj, viaPath: viaPath, what: "NewDecodePool", owner: "the decode pool", handle: "DecodePool"}
}

// handoffTarget reports whether call transfers a buffer's ownership to a
// background owner: a direct WriteAsync call (last argument is the
// buffer), a direct particle.NewDecodePool call (first argument is the
// destination buffer), or a call to a loaded helper whose summary hands
// a buffer argument off. For helpers the returned handoff carries the
// call path to the underlying hand-off.
func handoffTarget(pass *Pass, call *ast.CallExpr) (*handoff, bool) {
	if isWriteAsync(pass.Info, call) {
		if len(call.Args) == 0 {
			return nil, false
		}
		obj := identObj(pass.Info, call.Args[len(call.Args)-1])
		return checkpointHandoff(obj, nil), obj != nil
	}
	if isNewDecodePool(pass.Info, call) {
		if len(call.Args) == 0 {
			return nil, false
		}
		obj := identObj(pass.Info, call.Args[0])
		return poolHandoff(obj, nil), obj != nil
	}
	if pass.Prog == nil {
		return nil, false
	}
	callee := pass.Prog.calleeFunc(pass.Info, call)
	if callee == nil {
		return nil, false
	}
	sum := pass.Prog.bufSummaryOf(callee)
	if sum == nil || len(sum.handoff) == 0 {
		return nil, false
	}
	csig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil, false
	}
	for a, arg := range call.Args {
		obj := identObj(pass.Info, arg)
		if obj == nil {
			continue
		}
		j := a
		if j >= csig.Params().Len() {
			j = csig.Params().Len() - 1
		}
		if j >= 0 && sum.handoff[j] {
			path := sum.handoffPath[j]
			if len(path) > 0 && strings.HasPrefix(path[len(path)-1], "NewDecodePool") {
				return poolHandoff(obj, path), true
			}
			return checkpointHandoff(obj, path), true
		}
	}
	return nil, false
}

// isWriteAsync reports whether call is spio.WriteAsync or
// core.WriteAsync.
func isWriteAsync(info *types.Info, call *ast.CallExpr) bool {
	return pkgFunc(info, call, rootPath, "WriteAsync") || pkgFunc(info, call, corePath, "WriteAsync")
}

// isNewDecodePool reports whether call is particle.NewDecodePool.
func isNewDecodePool(info *types.Info, call *ast.CallExpr) bool {
	return pkgFunc(info, call, particlePath, "NewDecodePool")
}
