package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BufHandoff enforces the WriteAsync ownership transfer documented in
// spio.go: "Ownership of local transfers to the write until Wait
// returns: the caller must not modify the buffer in between." Any use
// of a *particle.Buffer between passing it to WriteAsync (spio or
// internal/core spelling) and calling Wait on the returned handle races
// with the background checkpoint, so it is flagged.
//
// The check is per function and straight-line: statements are ordered
// by source position, a buffer is tainted from the WriteAsync call to
// the Wait on that call's result (or to the end of the function if the
// handle is discarded or never waited on), and reassigning the buffer
// variable ends its taint (the old buffer is no longer reachable
// through it). Uses inside function literals are flagged too — a
// closure reading the buffer while the checkpoint runs is exactly the
// race — but literal bodies are scanned only for uses, not for Waits,
// since their execution time is unknown.
var BufHandoff = &Analyzer{
	Name: "bufhandoff",
	Doc:  "flags uses of a particle.Buffer between WriteAsync handoff and Wait (ownership race)",
	Run:  runBufHandoff,
}

// handoff is one WriteAsync call's taint interval.
type handoff struct {
	bufObj  types.Object // the buffer variable handed off
	pendObj types.Object // the PendingWrite variable, if bound
	start   token.Pos    // end of the WriteAsync call
	end     token.Pos    // position of the matching Wait (or NoPos = function end)
	// viaPath is set when the handoff happened through a helper whose
	// summary passes the buffer on to WriteAsync; it names the chain for
	// the diagnostic.
	viaPath []string
}

func runBufHandoff(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkHandoffs(pass, fd.Body)
			return true
		})
	}
}

func checkHandoffs(pass *Pass, body *ast.BlockStmt) {
	var handoffs []*handoff

	// Pass 1: find handoff calls — WriteAsync itself, or a helper whose
	// summary passes a buffer argument on to WriteAsync — and bind them
	// to their result variable when the call is the RHS of an
	// assignment. The PendingWrite result is identified by type, so
	// helpers returning (handle, error) tuples still bind.
	ast.Inspect(body, func(n ast.Node) bool {
		var call *ast.CallExpr
		var lhs []ast.Expr
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if c, ok := n.Rhs[0].(*ast.CallExpr); ok {
					call = c
					lhs = n.Lhs
				}
			}
		case *ast.ExprStmt:
			if c, ok := n.X.(*ast.CallExpr); ok {
				call = c
			}
		}
		if call == nil {
			return true
		}
		bufObj, viaPath, ok := handoffTarget(pass, call)
		if !ok {
			return true
		}
		var pend types.Object
		for _, l := range lhs {
			obj := identObj(pass.Info, l)
			if obj != nil && isNamed(obj.Type(), corePath, "PendingWrite") {
				pend = obj
				break
			}
		}
		handoffs = append(handoffs, &handoff{bufObj: bufObj, pendObj: pend, start: call.End(), viaPath: viaPath})
		return true
	})
	if len(handoffs) == 0 {
		return
	}

	// Pass 2: close each interval at the first Wait on its handle, and
	// at any reassignment of the buffer variable.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !methodOn(pass.Info, n, corePath, "PendingWrite", "Wait") {
				return true
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := identObj(pass.Info, sel.X)
			if recv == nil {
				return true
			}
			for _, h := range handoffs {
				if h.pendObj == recv && n.Pos() > h.start && (h.end == token.NoPos || n.Pos() < h.end) {
					h.end = n.Pos()
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				obj := identObj(pass.Info, lhs)
				if obj == nil {
					continue
				}
				for _, h := range handoffs {
					if h.bufObj == obj && n.Pos() > h.start && (h.end == token.NoPos || n.Pos() < h.end) {
						h.end = n.Pos()
					}
				}
			}
		}
		return true
	})

	// Deep uses: a tainted buffer passed whole to a loaded function
	// whose summary touches that parameter gets its diagnostic enriched
	// with the call path to the use inside the helper.
	deepUse := make(map[*ast.Ident][]string)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || pass.Prog == nil {
			return true
		}
		callee := calleeFunc(pass.Info, call)
		if callee == nil {
			return true
		}
		sum := pass.Prog.bufSummaryOf(callee)
		if sum == nil {
			return true
		}
		csig, ok := callee.Type().(*types.Signature)
		if !ok {
			return true
		}
		for a, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			j := a
			if j >= csig.Params().Len() {
				j = csig.Params().Len() - 1
			}
			if j >= 0 && sum.touches[j] {
				deepUse[id] = sum.touchPath[j]
			}
		}
		return true
	})

	// Pass 3: flag every use of a tainted buffer inside its interval.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		for _, h := range handoffs {
			if h.bufObj != obj || id.Pos() <= h.start {
				continue
			}
			if h.end != token.NoPos && id.Pos() >= h.end {
				continue
			}
			waited := "before Wait on the pending write"
			if h.pendObj == nil && h.end == token.NoPos {
				waited = "and the PendingWrite handle is never waited on"
			}
			via := ""
			if len(h.viaPath) > 0 {
				via = " (handed off via " + strings.Join(h.viaPath, " → ") + ")"
			}
			if path, ok := deepUse[id]; ok {
				pass.Reportf(id.Pos(), "buffer %s is used after being handed off to WriteAsync%s %s (use path: %s): ownership transfers to the checkpoint until Wait returns", id.Name, via, waited, strings.Join(path, " → "))
			} else {
				pass.Reportf(id.Pos(), "buffer %s is used after being handed off to WriteAsync%s %s: ownership transfers to the checkpoint until Wait returns", id.Name, via, waited)
			}
		}
		return true
	})
}

// handoffTarget reports whether call transfers a buffer's ownership to
// the background checkpoint: a direct WriteAsync call (last argument is
// the buffer), or a call to a loaded helper whose summary hands a
// buffer argument off. It returns the handed-off buffer variable and,
// for helpers, the call path to the underlying WriteAsync.
func handoffTarget(pass *Pass, call *ast.CallExpr) (types.Object, []string, bool) {
	if isWriteAsync(pass.Info, call) {
		if len(call.Args) == 0 {
			return nil, nil, false
		}
		obj := identObj(pass.Info, call.Args[len(call.Args)-1])
		return obj, nil, obj != nil
	}
	if pass.Prog == nil {
		return nil, nil, false
	}
	callee := calleeFunc(pass.Info, call)
	if callee == nil {
		return nil, nil, false
	}
	sum := pass.Prog.bufSummaryOf(callee)
	if sum == nil || len(sum.handoff) == 0 {
		return nil, nil, false
	}
	csig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil, nil, false
	}
	for a, arg := range call.Args {
		obj := identObj(pass.Info, arg)
		if obj == nil {
			continue
		}
		j := a
		if j >= csig.Params().Len() {
			j = csig.Params().Len() - 1
		}
		if j >= 0 && sum.handoff[j] {
			return obj, sum.handoffPath[j], true
		}
	}
	return nil, nil, false
}

// isWriteAsync reports whether call is spio.WriteAsync or
// core.WriteAsync.
func isWriteAsync(info *types.Info, call *ast.CallExpr) bool {
	return pkgFunc(info, call, rootPath, "WriteAsync") || pkgFunc(info, call, corePath, "WriteAsync")
}
