package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoLeak flags `go` statements that spawn a goroutine with no visible
// exit discipline: nothing in the goroutine's body (or in any function
// it statically calls) ties its lifetime to a WaitGroup.Done, a channel
// operation (close, send, receive, select, range), or a context /
// stop-flag check. Such a goroutine cannot be waited for, cannot be
// told to stop, and — in a resident server — accumulates across
// reloads: the leak is structural, visible before the process ever
// runs.
//
// Evidence is collected transitively through the call graph (a
// goroutine whose body is just `s.handleConn(conn)` is tracked if
// handleConn checks the server's stop channel), and the check is
// deliberately one-sided: *any* evidence anywhere in the body clears
// the goroutine, so the analyzer under-reports rather than drowning
// real leaks in path-sensitivity noise. Goroutines whose target cannot
// be resolved (func values, interface methods) are skipped for the
// same reason. DESIGN.md §8.3 records both boundaries.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "flags goroutines whose exit is not tied to a WaitGroup, channel, or stop-flag check",
	Run:  runGoLeak,
}

// exitSummary records whether a function provides goroutine-exit
// evidence, and a representative path to it.
type exitSummary struct {
	evidence bool
	desc     string
	path     []string
}

func runGoLeak(pass *Pass) {
	prog := pass.Prog
	prog.ensureExitEvidence()
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			pass.checkGoStmt(st)
			return true
		})
	}
}

func (pass *Pass) checkGoStmt(st *ast.GoStmt) {
	prog := pass.Prog
	if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
		if _, ok := prog.exitEvidenceInBody(pass.Info, lit.Body); ok {
			return
		}
		pass.Reportf(st.Pos(), "goroutine has no exit discipline: no WaitGroup.Done, channel operation, or stop-flag check ties its lifetime to anything — it can be neither awaited nor cancelled")
		return
	}
	callee := prog.calleeFunc(pass.Info, st.Call)
	if callee == nil {
		return // func value / interface method: target unknown, stay silent
	}
	fi, loaded := prog.Funcs[callee]
	if !loaded {
		return // external function: body invisible, stay silent
	}
	sum := prog.exitSums[fi.Obj]
	if sum != nil && sum.evidence {
		return
	}
	pass.Reportf(st.Pos(), "goroutine running %s has no exit discipline: nothing in its call tree performs a WaitGroup.Done, channel operation, or stop-flag check", funcDisplayName(callee))
}

// ensureExitEvidence computes, for every loaded function, whether it
// (transitively) contains goroutine-exit evidence: one direct scan per
// function, then a closure over the call graph.
func (p *Program) ensureExitEvidence() {
	if p.exitReady {
		return
	}
	p.exitReady = true
	callees := make(map[*types.Func][]*types.Func)
	for fn, fi := range p.Funcs {
		s := &exitSummary{}
		name := funcDisplayName(fn)
		if desc, ok := p.directExitEvidence(fi.Pkg.Info, fi.Decl.Body); ok {
			s.evidence = true
			s.desc = desc
			s.path = []string{name, desc}
		}
		scanCalls(fi.Pkg.Info, fi.Decl.Body, func(call *ast.CallExpr) {
			if callee := p.calleeFunc(fi.Pkg.Info, call); callee != nil {
				if _, loaded := p.Funcs[callee]; loaded {
					callees[fn] = append(callees[fn], callee)
				}
			}
		})
		p.exitSums[fn] = s
	}
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			s := p.exitSums[fn]
			if s.evidence {
				continue
			}
			for _, c := range cs {
				if csum := p.exitSums[c]; csum != nil && csum.evidence {
					s.evidence = true
					s.desc = csum.desc
					s.path = append([]string{funcDisplayName(fn)}, csum.path...)
					changed = true
					break
				}
			}
		}
	}
}

// exitEvidenceInBody checks a goroutine literal's body for direct
// evidence plus evidence through statically-resolved calls.
func (p *Program) exitEvidenceInBody(info *types.Info, body *ast.BlockStmt) (string, bool) {
	if desc, ok := p.directExitEvidence(info, body); ok {
		return desc, true
	}
	found := ""
	scanCalls(info, body, func(call *ast.CallExpr) {
		if found != "" {
			return
		}
		if callee := p.calleeFunc(info, call); callee != nil {
			if sum := p.exitSums[callee]; sum != nil && sum.evidence {
				found = "via " + strings.Join(sum.path, " → ")
			}
		}
	})
	if found != "" {
		return found, true
	}
	return "", false
}

// directExitEvidence scans one body (skipping nested literals and go
// statements — they run on other schedules) for the exit alphabet:
// WaitGroup.Done, close(ch), channel send/receive/select/range,
// context.Context.Done, and atomic flag loads.
func (p *Program) directExitEvidence(info *types.Info, body ast.Node) (string, bool) {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			found = "channel send"
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = "channel receive"
			}
		case *ast.SelectStmt:
			found = "select"
		case *ast.RangeStmt:
			if isChanType(info.Types[n.X].Type) {
				found = "range over channel"
			}
		case *ast.CallExpr:
			switch {
			case methodOn(info, n, "sync", "WaitGroup", "Done"):
				found = "WaitGroup.Done"
			case isCloseCall(info, n):
				found = "close(chan)"
			case isContextDone(info, n):
				found = "context.Done"
			case isAtomicFlagLoad(info, n):
				found = "atomic flag load"
			}
		}
		return true
	})
	return found, found != ""
}

// isCloseCall matches the close builtin applied to a channel.
func isCloseCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
		return false
	}
	return isChanType(info.Types[call.Args[0]].Type)
}

// isContextDone matches ctx.Done() on context.Context.
func isContextDone(info *types.Info, call *ast.CallExpr) bool {
	fn := funcObj(info, call)
	if fn == nil || fn.Name() != "Done" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamed(sig.Recv().Type(), "context", "Context")
}

// isAtomicFlagLoad matches Load on the sync/atomic wrapper types — the
// draining/closing-flag idiom. A counter's Load also matches; false
// evidence only makes the analyzer quieter, never noisier.
func isAtomicFlagLoad(info *types.Info, call *ast.CallExpr) bool {
	fn := funcObj(info, call)
	if fn == nil || fn.Name() != "Load" || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}
