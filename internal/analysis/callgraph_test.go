package analysis

import (
	"go/ast"
	"testing"
)

// firstCall returns the first call expression anywhere in the named
// fixture function, including inside defer and go statements.
func firstCall(t *testing.T, pkg *Package, fnName string) *ast.CallExpr {
	t.Helper()
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != fnName {
				continue
			}
			var call *ast.CallExpr
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call != nil {
					return false
				}
				if c, ok := n.(*ast.CallExpr); ok {
					call = c
					return false
				}
				return true
			})
			if call == nil {
				t.Fatalf("%s: no call expression in body", fnName)
			}
			return call
		}
	}
	t.Fatalf("fixture function %s not found", fnName)
	return nil
}

// TestCalleeResolutionEdges pins which call shapes the conservative
// resolver sees through and which it deliberately refuses: direct and
// deferred method calls on concrete receivers resolve; method-value
// bindings (f := c.Close; f()) and calls through func-typed fields
// (go c.hook()) are func-value calls and resolve to nil, surfacing as
// unknown — the "may do anything we cannot see" degradation, never a
// phantom edge.
func TestCalleeResolutionEdges(t *testing.T) {
	pkg := loadFixture(t, "callgraph")
	prog := BuildProgram([]*Package{pkg})

	cases := []struct {
		fn      string
		resolve string // expected callee name, "" for nil
		unknown bool   // expected unknown flag from Program.callee
	}{
		{fn: "Direct", resolve: "Close", unknown: false},
		{fn: "Deferred", resolve: "Close", unknown: false},
		{fn: "MethodValue", resolve: "", unknown: true},
		{fn: "GoField", resolve: "", unknown: true},
	}
	for _, tc := range cases {
		call := firstCall(t, pkg, tc.fn)
		got := prog.calleeFunc(pkg.Info, call)
		switch {
		case tc.resolve == "" && got != nil:
			t.Errorf("%s: call resolved to %s, want nil (conservative)", tc.fn, got.Name())
		case tc.resolve != "" && got == nil:
			t.Errorf("%s: call did not resolve, want %s", tc.fn, tc.resolve)
		case tc.resolve != "" && got.Name() != tc.resolve:
			t.Errorf("%s: call resolved to %s, want %s", tc.fn, got.Name(), tc.resolve)
		}
		if tc.resolve != "" {
			if fi, _ := prog.callee(pkg.Info, call); fi == nil || fi.Obj != got {
				t.Errorf("%s: callee() did not return the loaded FuncInfo for %s", tc.fn, tc.resolve)
			}
		}
		if _, unknown := prog.callee(pkg.Info, call); unknown != tc.unknown {
			t.Errorf("%s: callee() unknown = %v, want %v", tc.fn, unknown, tc.unknown)
		}
	}
}

// TestUnresolvedSpawnStaysSilent pins the downstream contract of the
// nil resolutions: a goroutine spawned through a func-typed field is
// invisible to the whole-program passes, so goleak reports no exit
// evidence for it and racegate derives no origin from it — degraded
// knowledge stays silent rather than guessing.
func TestUnresolvedSpawnStaysSilent(t *testing.T) {
	pkg := loadFixture(t, "callgraph")
	diags := Run([]*Analyzer{GoLeak, RaceGate}, []*Package{pkg})
	for _, d := range diags {
		t.Errorf("unexpected diagnostic on conservative-edge fixture: %s", d)
	}
}
