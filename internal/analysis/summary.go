package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Per-function summaries, computed lazily and memoized on the Program.
// Each summary answers one analyzer's question about a whole call tree:
//
//   - collSummary: the ordered collective sequence a call to this
//     function issues (collorder inlines it at call sites, so a
//     rank-guarded call to a helper that hides a Barrier is flagged
//     exactly like a rank-guarded Barrier);
//   - bufSummary: which *particle.Buffer parameters the function may
//     use, and which it (transitively) hands off to WriteAsync
//     (bufhandoff opens the ownership window at wrapper calls and
//     reports deep uses with a call path);
//   - errSummary: whether the function's error result may carry an
//     error from the watched spio API surface (errdrop then treats the
//     function itself as watched).
//
// Recursion is handled per summary kind: collective signatures collapse
// a cycle to an opaque "rec:…" element (still non-empty, so guarded
// recursive helpers are flagged; opaque, so identical helpers on both
// arms still balance), buffer-touch cycles degrade to "touches"
// (over-approximate, never hides a race), and handoff/error cycles
// degrade to "no" (under-approximate: they can only miss, never invent,
// a finding).

// collSummary is a function's transitive collective behaviour.
type collSummary struct {
	// sig is the canonical collective signature of one call to the
	// function (helper calls inlined, loops collapsed, balanced guards
	// resolved), in the same alphabet collorder compares branch arms in.
	sig []string
	// path is a representative call path from the function to a
	// collective call site, for diagnostics: ["core.helper", "Comm.Barrier"].
	path []string
}

// mayColl is the boolean closure "fn may (transitively) issue a
// collective", computed for the whole program at once so the signature
// builder can collapse recursion without losing that bit.
func (p *Program) ensureMayColl() {
	if p.mayColl != nil {
		return
	}
	p.mayColl = make(map[*types.Func]bool)
	callees := make(map[*types.Func][]*types.Func)
	for fn, fi := range p.Funcs {
		direct := false
		scanCalls(fi.Pkg.Info, fi.Decl.Body, func(call *ast.CallExpr) {
			if collectiveSet[commMethodName(fi.Pkg.Info, call)] {
				direct = true
				return
			}
			if callee := p.calleeFunc(fi.Pkg.Info, call); callee != nil {
				if _, loaded := p.Funcs[callee]; loaded {
					callees[fn] = append(callees[fn], callee)
				}
			}
		})
		if direct {
			p.mayColl[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			if p.mayColl[fn] {
				continue
			}
			for _, c := range cs {
				if p.mayColl[c] {
					p.mayColl[fn] = true
					changed = true
					break
				}
			}
		}
	}
}

// mayP2P is the matching closure for point-to-point communication:
// "fn may (transitively) issue a Send/Recv-family call". The collabort
// analyzer unions it with mayColl to decide that a function has entered
// the communication phase.
func (p *Program) ensureMayP2P() {
	if p.mayP2P != nil {
		return
	}
	p.mayP2P = make(map[*types.Func]bool)
	callees := make(map[*types.Func][]*types.Func)
	for fn, fi := range p.Funcs {
		direct := false
		scanCalls(fi.Pkg.Info, fi.Decl.Body, func(call *ast.CallExpr) {
			if p2pSet[commMethodName(fi.Pkg.Info, call)] {
				direct = true
				return
			}
			if callee := p.calleeFunc(fi.Pkg.Info, call); callee != nil {
				if _, loaded := p.Funcs[callee]; loaded {
					callees[fn] = append(callees[fn], callee)
				}
			}
		})
		if direct {
			p.mayP2P[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			if p.mayP2P[fn] {
				continue
			}
			for _, c := range cs {
				if p.mayP2P[c] {
					p.mayP2P[fn] = true
					changed = true
					break
				}
			}
		}
	}
}

// scanCalls visits every call expression under n in source order,
// skipping function literals (their bodies run on their own schedule —
// the same exclusion the intraprocedural walkers apply) and go
// statements (unsequenced with the caller).
func scanCalls(info *types.Info, n ast.Node, f func(*ast.CallExpr)) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			f(x)
		}
		return true
	})
}

// collSummaryOf returns fn's collective summary, or nil when fn is not
// a loaded function.
func (p *Program) collSummaryOf(fn *types.Func) *collSummary {
	if s, ok := p.collSums[fn]; ok {
		return s
	}
	fi, ok := p.Funcs[fn]
	if !ok {
		return nil
	}
	p.ensureMayColl()
	if !p.mayColl[fn] {
		s := &collSummary{}
		p.collSums[fn] = s
		return s
	}
	if p.collVisiting[fn] {
		// Recursive cycle: opaque but non-empty, so the caller's guard
		// comparison neither hides the collective nor pretends to know
		// its shape.
		name := funcDisplayName(fn)
		return &collSummary{
			sig:  []string{"rec:" + name},
			path: []string{name, "…"},
		}
	}
	p.collVisiting[fn] = true
	// Analyzer is nil: the summary walker shares collorder's walking code
	// but reports nothing (silent), and naming CollOrder here would form
	// an initialization cycle with its Run function.
	pass := p.passFor(nil, fi.Pkg)
	w := &collWalker{
		pass:     pass,
		rankObjs: rankDerivedVars(pass, fi.Decl.Body),
		flagged:  make(map[token.Pos]bool),
		silent:   true,
	}
	res := w.walkStmts(fi.Decl.Body.List)
	s := &collSummary{sig: res.sig, path: p.collPath(fi)}
	delete(p.collVisiting, fn)
	p.collSums[fn] = s
	return s
}

// collPath builds a representative path from fi to a collective call:
// the first direct collective in the body, or the first helper call
// whose own summary issues one.
func (p *Program) collPath(fi *FuncInfo) []string {
	info := fi.Pkg.Info
	var path []string
	scanCalls(info, fi.Decl.Body, func(call *ast.CallExpr) {
		if path != nil {
			return
		}
		if name := commMethodName(info, call); collectiveSet[name] {
			path = []string{funcDisplayName(fi.Obj), "Comm." + name}
			return
		}
		callee := p.calleeFunc(info, call)
		if callee == nil {
			return
		}
		if _, loaded := p.Funcs[callee]; !loaded {
			return
		}
		if cs := p.collSummaryOf(callee); cs != nil && len(cs.sig) > 0 {
			path = append([]string{funcDisplayName(fi.Obj)}, cs.path...)
		}
	})
	if path == nil {
		path = []string{funcDisplayName(fi.Obj)}
	}
	return path
}

// bufSummary records how a function treats its *particle.Buffer
// parameters, by parameter index.
type bufSummary struct {
	// touches[i]: parameter i may be read, written, or escape to code
	// the call graph cannot see.
	touches map[int]bool
	// touchPath[i]: representative path to the deepest known use.
	touchPath map[int][]string
	// handoff[i]: parameter i is (transitively) handed to WriteAsync.
	handoff map[int]bool
	// handoffPath[i]: path to the WriteAsync call.
	handoffPath map[int][]string
}

// isBufferType reports whether t is *particle.Buffer (or the alias the
// root package re-exports).
func isBufferType(t types.Type) bool {
	return isNamed(t, particlePath, "Buffer")
}

// bufParamObjs maps each buffer-typed parameter's object to its index
// in fn's signature.
func bufParamObjs(fi *FuncInfo) map[types.Object]int {
	out := make(map[types.Object]int)
	sig := fi.Obj.Type().(*types.Signature)
	idx := 0
	if fi.Decl.Type.Params == nil {
		return out
	}
	for _, field := range fi.Decl.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter still occupies a slot
		}
		for j := 0; j < n; j++ {
			if idx >= sig.Params().Len() {
				break
			}
			if j < len(field.Names) && isBufferType(sig.Params().At(idx).Type()) {
				if obj := fi.Pkg.Info.Defs[field.Names[j]]; obj != nil {
					out[obj] = idx
				}
			}
			idx++
		}
	}
	return out
}

// bufSummaryOf returns fn's buffer-parameter summary, or nil when fn is
// not a loaded function.
func (p *Program) bufSummaryOf(fn *types.Func) *bufSummary {
	if s, ok := p.bufSums[fn]; ok {
		return s
	}
	fi, ok := p.Funcs[fn]
	if !ok {
		return nil
	}
	params := bufParamObjs(fi)
	if p.bufVisiting[fn] {
		// Cycle: assume every buffer parameter is used (safe), none
		// handed off (a miss at worst).
		s := &bufSummary{touches: make(map[int]bool), touchPath: make(map[int][]string)}
		for _, i := range params {
			s.touches[i] = true
			s.touchPath[i] = []string{funcDisplayName(fn), "…"}
		}
		return s
	}
	p.bufVisiting[fn] = true
	defer delete(p.bufVisiting, fn)

	s := &bufSummary{
		touches:     make(map[int]bool),
		touchPath:   make(map[int][]string),
		handoff:     make(map[int]bool),
		handoffPath: make(map[int][]string),
	}
	if len(params) == 0 {
		p.bufSums[fn] = s
		return s
	}
	info := fi.Pkg.Info
	name := funcDisplayName(fn)

	// consumed marks parameter identifiers that appear as a whole
	// argument to a resolvable call; their effect is the callee's
	// summary at that position rather than a direct local use.
	consumed := make(map[*ast.Ident]bool)

	markTouch := func(i int, path []string) {
		if !s.touches[i] {
			s.touches[i] = true
			s.touchPath[i] = path
		}
	}
	markHandoff := func(i int, path []string) {
		if !s.handoff[i] {
			s.handoff[i] = true
			s.handoffPath[i] = path
		}
	}

	// Buffer parameters inside function literals are real uses (a
	// closure reading the buffer during the ownership window is the
	// race), so literals are scanned for uses below; handoff and call
	// propagation stay restricted to the function's own schedule via
	// scanCalls.
	scanCalls(info, fi.Decl.Body, func(call *ast.CallExpr) {
		argIdx := func(pos int) (int, *ast.Ident, bool) {
			id, ok := ast.Unparen(call.Args[pos]).(*ast.Ident)
			if !ok {
				return 0, nil, false
			}
			obj := info.Uses[id]
			i, isParam := params[obj]
			return i, id, isParam
		}
		if isWriteAsync(info, call) && len(call.Args) > 0 {
			if i, id, ok := argIdx(len(call.Args) - 1); ok {
				consumed[id] = true
				pos := fi.Pkg.Fset.Position(call.Pos())
				markHandoff(i, []string{name, fmt.Sprintf("WriteAsync at %s", pos)})
				return
			}
		}
		if isNewDecodePool(info, call) && len(call.Args) > 0 {
			if i, id, ok := argIdx(0); ok {
				consumed[id] = true
				pos := fi.Pkg.Fset.Position(call.Pos())
				markHandoff(i, []string{name, fmt.Sprintf("NewDecodePool at %s", pos)})
				return
			}
		}
		callee := p.calleeFunc(info, call)
		var calleeSum *bufSummary
		if callee != nil {
			if _, loaded := p.Funcs[callee]; loaded {
				calleeSum = p.bufSummaryOf(callee)
			}
		}
		for a := range call.Args {
			i, id, ok := argIdx(a)
			if !ok {
				continue
			}
			if calleeSum == nil {
				// Unknown, external or func-value callee: the buffer
				// escapes code we cannot see — "may do anything".
				continue
			}
			consumed[id] = true
			// Map the argument position to the callee's parameter index
			// (methods: receiver is not in Args; variadic tail folds onto
			// the last parameter).
			csig := callee.Type().(*types.Signature)
			j := a
			if j >= csig.Params().Len() {
				j = csig.Params().Len() - 1
			}
			if j < 0 {
				continue
			}
			if calleeSum.touches[j] {
				markTouch(i, append([]string{name}, calleeSum.touchPath[j]...))
			}
			if calleeSum.handoff[j] {
				markHandoff(i, append([]string{name}, calleeSum.handoffPath[j]...))
			}
		}
	})

	// Any remaining mention of a buffer parameter is a direct use:
	// selector, method call, composite literal, argument to an
	// unresolvable call, capture by a literal.
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if consumed[id] {
			return true
		}
		obj := info.Uses[id]
		i, isParam := params[obj]
		if !isParam {
			return true
		}
		pos := fi.Pkg.Fset.Position(id.Pos())
		markTouch(i, []string{name, fmt.Sprintf("use of %s at %s", id.Name, pos)})
		return true
	})
	p.bufSums[fn] = s
	return s
}

// errSummary records whether a function's error result may carry an
// error from the watched spio API surface.
type errSummary struct {
	propagates bool
	// path is a representative chain to the watched call:
	// ["run", "Dataset.Close"].
	path []string
}

// errSummaryOf returns fn's error-propagation summary, or nil when fn
// is not a loaded function.
func (p *Program) errSummaryOf(fn *types.Func) *errSummary {
	if s, ok := p.errSums[fn]; ok {
		return s
	}
	fi, ok := p.Funcs[fn]
	if !ok {
		return nil
	}
	if p.errVisiting[fn] {
		return &errSummary{} // cycle: degrade to "does not propagate"
	}
	sig := fn.Type().(*types.Signature)
	returnsErr := false
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			returnsErr = true
		}
	}
	if !returnsErr {
		s := &errSummary{}
		p.errSums[fn] = s
		return s
	}
	p.errVisiting[fn] = true
	defer delete(p.errVisiting, fn)

	info := fi.Pkg.Info
	s := &errSummary{}
	scanCalls(info, fi.Decl.Body, func(call *ast.CallExpr) {
		if s.propagates {
			return
		}
		if watched, ok := watchedCall(info, call); ok {
			s.propagates = true
			s.path = []string{funcDisplayName(fn), callName(watched)}
			return
		}
		callee := p.calleeFunc(info, call)
		if callee == nil {
			return
		}
		if _, loaded := p.Funcs[callee]; !loaded {
			return
		}
		if cs := p.errSummaryOf(callee); cs != nil && cs.propagates {
			s.propagates = true
			s.path = append([]string{funcDisplayName(fn)}, cs.path...)
		}
	})
	p.errSums[fn] = s
	return s
}
