package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Shared lock-set machinery. The abstract held-set interpreter below
// was born inside lockorder (PR 6); racegate reuses it verbatim to
// learn which locks are held at every struct-field access, so the two
// analyzers can never disagree about what "holding a lock" means.
// A walker runs in one of two modes:
//
//   - reporting (hooks == nil): lockorder's original behaviour —
//     self-deadlock findings, held-across-blocking findings, and
//     acquisition-order edges;
//   - observing (hooks != nil): silent. No findings, no edges; instead
//     the hooks receive every struct-field access (with the held set
//     at that point, and whether the access went through sync/atomic),
//     every resolved call site (with the held set), every go statement,
//     and every function literal. racegate builds its access summaries
//     from exactly these events.

// raceHooks receives the events an observing walk emits.
type raceHooks struct {
	// access is called for each struct-field read or write. sel is the
	// field selection, write distinguishes stores (including element
	// stores into a field-held map/slice, delete, copy, and atomic
	// Store/Add/Swap/CAS), atomic marks sync/atomic operations, and held
	// is the lock set at the access.
	access func(sel *ast.SelectorExpr, write, atomic bool, held []heldLock)
	// call is called for each call that resolves to a loaded function.
	// For deferred calls, held is the set at the defer statement: in the
	// dominant Lock-plus-deferred-Unlock idiom the LIFO defer order runs
	// later-registered defers before the unlock, so the site's locks are
	// still held (an approximation — an explicit early Unlock is not
	// modelled).
	call func(call *ast.CallExpr, callee *types.Func, held []heldLock, deferred bool)
	// goStmt is called for each go statement, after its argument
	// expressions were scanned in the spawning goroutine.
	goStmt func(st *ast.GoStmt, held []heldLock)
	// funcLit is called for each function literal that is not the
	// target of a go statement (those go through goStmt). The literal
	// body is not walked by this walker; the hook owner decides.
	funcLit func(lit *ast.FuncLit, held []heldLock)
}

// heldLock is one element of the abstract held set during the
// per-function walk.
type heldLock struct {
	key   string
	write bool
	pos   token.Pos
}

// lockWalker runs the abstract held-set interpretation over one
// function body.
type lockWalker struct {
	prog   *Program
	fi     *FuncInfo
	info   *types.Info
	fnName string
	// flagged dedups findings per position; blocked limits
	// held-across-blocking findings to one per lock per function.
	flagged map[token.Pos]bool
	blocked map[string]bool
	edges   []lockEdge
	// hooks switches the walker into silent observing mode (see the
	// package comment above).
	hooks *raceHooks
}

func (w *lockWalker) report(pos token.Pos, format string, args ...any) {
	if w.hooks != nil || w.flagged[pos] {
		return
	}
	w.flagged[pos] = true
	w.prog.lockFindings = append(w.prog.lockFindings, progDiag{
		pkg: w.fi.Pkg.Types.Path(),
		pos: pos,
		msg: fmt.Sprintf(format, args...),
	})
}

// walkStmts interprets stmts in order, threading the held-lock set
// through; the returned slice is the held set at fall-through.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, st := range stmts {
		held = w.walkStmt(st, held)
	}
	return held
}

func copyHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

// mergeHeld unions fall-through states of sibling branches: a lock held
// on any arm is conservatively held after the join.
func mergeHeld(a, b []heldLock) []heldLock {
	out := copyHeld(a)
	for _, h := range b {
		found := false
		for _, g := range out {
			if g.key == h.key {
				found = true
				break
			}
		}
		if !found {
			out = append(out, h)
		}
	}
	return out
}

// terminates reports whether a statement list cannot fall through
// (trailing return or panic), so its held state is excluded from the
// branch merge.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (w *lockWalker) walkStmt(st ast.Stmt, held []heldLock) []heldLock {
	switch st := st.(type) {
	case *ast.ExprStmt:
		return w.scanExpr(st.X, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			held = w.scanExpr(e, held)
		}
		for _, e := range st.Lhs {
			if w.hooks != nil {
				held = w.scanWrite(e, held)
			} else {
				held = w.scanExpr(e, held)
			}
		}
		return held
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						held = w.scanExpr(e, held)
					}
				}
			}
		}
		return held
	case *ast.SendStmt:
		held = w.scanExpr(st.Value, held)
		w.blockingOp(st.Pos(), "channel send", held)
		return held
	case *ast.IncDecStmt:
		if w.hooks != nil {
			return w.scanWrite(st.X, held)
		}
		return w.scanExpr(st.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock releases at return: for the rest of the walk
		// the lock stays held (which is the point — blocking under a
		// deferred unlock is still blocking under the lock). Deferred
		// Lock calls and other deferred work run outside the statement
		// order, so they are not interpreted.
		if _, ok := lockRelease(w.info, st.Call); ok {
			return held
		}
		if w.hooks != nil {
			if h2, ok := w.raceCall(st.Call, held); ok {
				return h2
			}
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
				w.hooks.funcLit(lit, held)
			} else if callee := w.prog.calleeFunc(w.info, st.Call); callee != nil {
				if _, loaded := w.prog.Funcs[callee]; loaded {
					w.hooks.call(st.Call, callee, held, true)
				}
			}
		}
		for _, a := range st.Call.Args {
			held = w.scanExpr(a, held)
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			held = w.scanExpr(e, held)
		}
		return held
	case *ast.IfStmt:
		if st.Init != nil {
			held = w.walkStmt(st.Init, held)
		}
		held = w.scanExpr(st.Cond, held)
		thenHeld := w.walkStmts(st.Body.List, copyHeld(held))
		elseHeld := copyHeld(held)
		elseTerm := false
		if st.Else != nil {
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				elseHeld = w.walkStmts(e.List, elseHeld)
				elseTerm = terminates(e.List)
			case *ast.IfStmt:
				elseHeld = w.walkStmt(e, elseHeld)
			}
		}
		switch {
		case terminates(st.Body.List) && elseTerm:
			return held // both arms leave; keep entry state for dead code after
		case terminates(st.Body.List):
			return elseHeld
		case elseTerm:
			return thenHeld
		default:
			return mergeHeld(thenHeld, elseHeld)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held = w.walkStmt(st.Init, held)
		}
		if st.Cond != nil {
			held = w.scanExpr(st.Cond, held)
		}
		body := w.walkStmts(st.Body.List, copyHeld(held))
		if st.Post != nil {
			body = w.walkStmt(st.Post, body)
		}
		return mergeHeld(held, body)
	case *ast.RangeStmt:
		held = w.scanExpr(st.X, held)
		if isChanType(w.info.Types[st.X].Type) {
			w.blockingOp(st.Pos(), "range over channel", held)
		}
		body := w.walkStmts(st.Body.List, copyHeld(held))
		return mergeHeld(held, body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = w.walkStmt(st.Init, held)
		}
		if st.Tag != nil {
			held = w.scanExpr(st.Tag, held)
		}
		out := copyHeld(held)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				held = w.scanExpr(e, held)
			}
			arm := w.walkStmts(cc.Body, copyHeld(held))
			if !terminates(cc.Body) {
				out = mergeHeld(out, arm)
			}
		}
		return out
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			held = w.walkStmt(st.Init, held)
		}
		out := copyHeld(held)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			arm := w.walkStmts(cc.Body, copyHeld(held))
			if !terminates(cc.Body) {
				out = mergeHeld(out, arm)
			}
		}
		return out
	case *ast.SelectStmt:
		if !selectHasDefault(st) {
			w.blockingOp(st.Pos(), "select", held)
		}
		out := copyHeld(held)
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			armHeld := copyHeld(held)
			if cc.Comm != nil {
				armHeld = w.walkCommStmt(cc.Comm, armHeld)
			}
			arm := w.walkStmts(cc.Body, armHeld)
			if !terminates(cc.Body) {
				out = mergeHeld(out, arm)
			}
		}
		return out
	case *ast.BlockStmt:
		return w.walkStmts(st.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, held)
	case *ast.GoStmt:
		// The spawned goroutine runs on its own schedule; starting it
		// does not block. Its literal body is walked independently with
		// an empty held set (the caller's locks are not held there in
		// the blocking sense — holding them *is* visible via the data
		// the closure captures, which is the race detector's domain).
		if w.hooks != nil {
			for _, a := range st.Call.Args {
				held = w.scanExpr(a, held)
			}
			w.hooks.goStmt(st, held)
			return held
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, nil)
		}
		return held
	default:
		return held
	}
}

// walkCommStmt interprets one select communication clause. The send or
// receive parks as part of the select itself — reported at the select
// when it has no default clause, and never when it does — so only the
// operand expressions are scanned, with the receive arrow stripped.
func (w *lockWalker) walkCommStmt(st ast.Stmt, held []heldLock) []heldLock {
	switch st := st.(type) {
	case *ast.SendStmt:
		held = w.scanExpr(st.Chan, held)
		return w.scanExpr(st.Value, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			held = w.scanExpr(stripArrow(e), held)
		}
		for _, e := range st.Lhs {
			if w.hooks != nil {
				held = w.scanWrite(e, held)
			} else {
				held = w.scanExpr(e, held)
			}
		}
		return held
	case *ast.ExprStmt:
		return w.scanExpr(stripArrow(st.X), held)
	default:
		return w.walkStmt(st, held)
	}
}

// stripArrow unwraps the receive operator off a comm-clause expression.
func stripArrow(e ast.Expr) ast.Expr {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return u.X
	}
	return e
}

// scanExpr visits an expression in evaluation order, interpreting lock
// operations and blocking operations against the current held set.
func (w *lockWalker) scanExpr(e ast.Expr, held []heldLock) []heldLock {
	if e == nil {
		return held
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		if w.hooks != nil {
			if h2, ok := w.raceCall(e, held); ok {
				return h2
			}
		}
		for _, a := range e.Args {
			held = w.scanExpr(a, held)
		}
		held = w.scanExpr(e.Fun, held)
		return w.applyCall(e, held)
	case *ast.UnaryExpr:
		held = w.scanExpr(e.X, held)
		if e.Op == token.ARROW {
			w.blockingOp(e.Pos(), "channel receive", held)
		}
		return held
	case *ast.BinaryExpr:
		held = w.scanExpr(e.X, held)
		return w.scanExpr(e.Y, held)
	case *ast.ParenExpr:
		return w.scanExpr(e.X, held)
	case *ast.SelectorExpr:
		if w.hooks != nil && w.fieldSel(e) {
			w.hooks.access(e, false, false, held)
		}
		return w.scanExpr(e.X, held)
	case *ast.IndexExpr:
		held = w.scanExpr(e.X, held)
		return w.scanExpr(e.Index, held)
	case *ast.SliceExpr:
		held = w.scanExpr(e.X, held)
		held = w.scanExpr(e.Low, held)
		held = w.scanExpr(e.High, held)
		return w.scanExpr(e.Max, held)
	case *ast.StarExpr:
		return w.scanExpr(e.X, held)
	case *ast.TypeAssertExpr:
		return w.scanExpr(e.X, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			held = w.scanExpr(el, held)
		}
		return held
	case *ast.KeyValueExpr:
		return w.scanExpr(e.Value, held)
	case *ast.FuncLit:
		// The literal's body runs when the value is called, on a schedule
		// this walk does not model; an observing walk hands it to the
		// hook owner instead.
		if w.hooks != nil {
			w.hooks.funcLit(e, held)
		}
		return held
	default:
		// Identifiers and literals are inert.
		return held
	}
}

// fieldSel reports whether sel denotes a struct-field selection (as
// opposed to a method selection or a package qualifier).
func (w *lockWalker) fieldSel(sel *ast.SelectorExpr) bool {
	s := w.info.Selections[sel]
	return s != nil && s.Kind() == types.FieldVal
}

// scanWrite scans an assignment target for an observing walk,
// classifying stores through struct fields — including element stores
// into a field-held map or slice, which mutate the structure the field
// holds — as write accesses.
func (w *lockWalker) scanWrite(e ast.Expr, held []heldLock) []heldLock {
	switch t := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if w.fieldSel(t) {
			w.hooks.access(t, true, false, held)
			return w.scanExpr(t.X, held)
		}
	case *ast.IndexExpr:
		if fsel, ok := ast.Unparen(t.X).(*ast.SelectorExpr); ok && w.fieldSel(fsel) {
			w.hooks.access(fsel, true, false, held)
			held = w.scanExpr(fsel.X, held)
			return w.scanExpr(t.Index, held)
		}
	}
	return w.scanExpr(e, held)
}

// raceCall intercepts, for an observing walk, the calls the race
// analysis classifies itself: sync/atomic operations (methods on
// atomic-wrapper fields and package-level atomic functions applied to
// &field) and the builtins that write through a field (delete, copy).
// It reports the access through the hook and returns ok when the call
// was fully consumed.
func (w *lockWalker) raceCall(call *ast.CallExpr, held []heldLock) ([]heldLock, bool) {
	// Method on an atomic wrapper: s.stats.requests.Add(1) — the
	// receiver field is the accessed location; Load reads, everything
	// else (Store, Add, Swap, CompareAndSwap, Or, And) writes.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if atomicTypeName(w.info.Types[sel.X].Type) != "" {
			if fsel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && w.fieldSel(fsel) {
				w.hooks.access(fsel, sel.Sel.Name != "Load", true, held)
				held = w.scanExpr(fsel.X, held)
			} else {
				held = w.scanExpr(sel.X, held)
			}
			for _, a := range call.Args {
				held = w.scanExpr(a, held)
			}
			return held, true
		}
	}
	// Package-level form: atomic.AddInt64(&s.n, 1), atomic.LoadInt64(&s.n).
	if fn := funcObj(w.info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
		if len(call.Args) > 0 {
			if u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && u.Op == token.AND {
				if fsel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok && w.fieldSel(fsel) {
					w.hooks.access(fsel, !strings.HasPrefix(fn.Name(), "Load"), true, held)
					held = w.scanExpr(fsel.X, held)
				}
			}
			for _, a := range call.Args[1:] {
				held = w.scanExpr(a, held)
			}
		}
		return held, true
	}
	// delete(s.m, k) and copy(s.buf, src) write through their first
	// argument.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && len(call.Args) > 0 {
		if b, isB := w.info.Uses[id].(*types.Builtin); isB && (b.Name() == "delete" || b.Name() == "copy") {
			if fsel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok && w.fieldSel(fsel) {
				w.hooks.access(fsel, true, false, held)
				held = w.scanExpr(fsel.X, held)
				for _, a := range call.Args[1:] {
					held = w.scanExpr(a, held)
				}
				return held, true
			}
		}
	}
	return held, false
}

// applyCall interprets one call against the held set: lock/unlock,
// cond.Wait, direct blocking calls, and summarized callees.
func (w *lockWalker) applyCall(call *ast.CallExpr, held []heldLock) []heldLock {
	if key, write, ok := lockAcquire(w.info, call); ok {
		for _, h := range held {
			if h.key == key && (h.write || write) {
				w.report(call.Pos(), "%s re-acquires %s already held since %s (self-deadlock: sync mutexes are not reentrant)",
					w.fnName, lockShort(key), w.pos(h.pos))
				return held
			}
		}
		// Record order edges against everything currently held.
		if w.hooks == nil {
			for _, h := range held {
				w.edges = append(w.edges, lockEdge{
					pkg: w.fi.Pkg.Types.Path(), pos: call.Pos(), fn: w.fnName, from: h.key, to: key,
				})
			}
		}
		return append(copyHeld(held), heldLock{key: key, write: write, pos: call.Pos()})
	}
	if key, ok := lockRelease(w.info, call); ok {
		out := held[:0:0]
		removed := false
		for _, h := range held {
			if !removed && h.key == key {
				removed = true
				continue
			}
			out = append(out, h)
		}
		// Releasing a lock acquired elsewhere (hand-off idioms) is not
		// interpreted; the set is simply unchanged.
		if !removed {
			return held
		}
		return out
	}
	if isCondWait(w.info, call) {
		// Cond.Wait releases its own mutex while parked; which held
		// lock that is cannot be resolved statically, so no
		// held-across finding is raised here. The enclosing function's
		// summary still says "may block", which flags callers that hold
		// *another* lock across it.
		return held
	}
	if desc, ok := blockingCall(w.info, call); ok {
		w.blockingOp(call.Pos(), desc, held)
		return held
	}
	callee := w.prog.calleeFunc(w.info, call)
	if callee == nil {
		return held
	}
	if w.hooks != nil {
		if _, loaded := w.prog.Funcs[callee]; loaded {
			w.hooks.call(call, callee, held, false)
		}
		return held
	}
	sum := w.prog.lockSums[callee]
	if sum == nil {
		return held
	}
	calleeName := funcDisplayName(callee)
	// Self-deadlock through a helper: the callee may acquire a lock
	// class we already hold.
	for _, h := range held {
		if a, ok := sum.acquires[h.key]; ok && (h.write || a.write) {
			w.report(call.Pos(), "%s calls %s while holding %s, and the callee re-acquires it (self-deadlock; via %s)",
				w.fnName, calleeName, lockShort(h.key), strings.Join(a.path, " → "))
		}
	}
	// Order edges through the helper.
	for _, h := range held {
		for key := range sum.acquires {
			if key == h.key {
				continue
			}
			w.edges = append(w.edges, lockEdge{
				pkg: w.fi.Pkg.Types.Path(), pos: call.Pos(), fn: w.fnName, from: h.key, to: key,
			})
		}
	}
	if sum.blocks != nil && len(held) > 0 {
		w.blockingCallOp(call.Pos(), sum.blocks, held)
	}
	return held
}

// blockingOp reports held locks at a direct blocking operation.
func (w *lockWalker) blockingOp(pos token.Pos, desc string, held []heldLock) {
	if w.hooks != nil || len(held) == 0 {
		return
	}
	h := held[len(held)-1]
	if w.blocked[h.key] {
		return
	}
	w.blocked[h.key] = true
	w.report(pos, "%s holds %s (acquired at %s) across %s — a slow or stuck peer stalls every other acquirer",
		w.fnName, lockShort(h.key), w.pos(h.pos), desc)
}

// blockingCallOp reports held locks at a call whose summary may block.
func (w *lockWalker) blockingCallOp(pos token.Pos, b *lockBlock, held []heldLock) {
	if w.hooks != nil {
		return
	}
	h := held[len(held)-1]
	if w.blocked[h.key] {
		return
	}
	w.blocked[h.key] = true
	w.report(pos, "%s holds %s (acquired at %s) across a call that may block on %s (via %s)",
		w.fnName, lockShort(h.key), w.pos(h.pos), b.desc, strings.Join(b.path, " → "))
}

func (w *lockWalker) pos(p token.Pos) string {
	return w.fi.Pkg.Fset.Position(p).String()
}

// --- lock and blocking-operation recognition ---

// mutexTypeName returns "Mutex" or "RWMutex" when t (after stripping
// pointers) is the sync type, else "".
func mutexTypeName(t types.Type) string {
	for _, name := range []string{"Mutex", "RWMutex"} {
		if isNamed(t, "sync", name) {
			return name
		}
	}
	return ""
}

// atomicTypeName returns the sync/atomic wrapper type's name (Bool,
// Int32, Int64, Uint32, Uint64, Uintptr, Pointer, Value) when t (after
// stripping pointers) is one, else "".
func atomicTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return ""
	}
	return obj.Name()
}

// lockAcquire matches mu.Lock / mu.RLock / mu.TryLock on a sync mutex
// and returns the lock's class key. write distinguishes exclusive
// acquisition from read acquisition.
func lockAcquire(info *types.Info, call *ast.CallExpr) (key string, write bool, ok bool) {
	name, recv, okc := mutexCall(info, call)
	if !okc {
		return "", false, false
	}
	switch name {
	case "Lock", "TryLock":
		write = true
	case "RLock", "TryRLock":
		write = false
	default:
		return "", false, false
	}
	key = lockKey(info, recv)
	if key == "" {
		return "", false, false
	}
	return key, write, true
}

// lockRelease matches mu.Unlock / mu.RUnlock.
func lockRelease(info *types.Info, call *ast.CallExpr) (key string, ok bool) {
	name, recv, okc := mutexCall(info, call)
	if !okc {
		return "", false
	}
	if name != "Unlock" && name != "RUnlock" {
		return "", false
	}
	key = lockKey(info, recv)
	if key == "" {
		return "", false
	}
	return key, true
}

// mutexCall decomposes a method call on a sync.Mutex/RWMutex value
// into (method name, receiver expression).
func mutexCall(info *types.Info, call *ast.CallExpr) (name string, recv ast.Expr, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", nil, false
	}
	t := info.Types[sel.X].Type
	if t == nil || mutexTypeName(t) == "" {
		return "", nil, false
	}
	return sel.Sel.Name, sel.X, true
}

// lockKey names the lock *class* a receiver expression denotes:
//
//   - a struct field ("x.mu", "s.cache.mu"): the owning named type plus
//     the field name — "spio/internal/server.Server.mu";
//   - a package-level variable: "pkg/path.name";
//   - a local variable: "pkg/path.func:name" (function-scoped, so
//     same-named locals in different functions stay distinct).
//
// Identity by class (not instance) is what makes the cross-function
// order graph meaningful; the instance-aliasing imprecision it brings
// is documented in DESIGN.md §8.3.
func lockKey(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		base := info.Types[e.X].Type
		if base == nil {
			return ""
		}
		if ptr, ok := base.(*types.Pointer); ok {
			base = ptr.Elem()
		}
		if named, ok := base.(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
		}
		return ""
	case *ast.Ident:
		obj := identObj(info, e)
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		// Local: qualify by position so distinct locals do not collide
		// across functions (the scope pointer is not stable across
		// loads, the declaration offset is).
		return fmt.Sprintf("%s.local:%s@%d", obj.Pkg().Path(), obj.Name(), obj.Pos())
	default:
		return ""
	}
}

// isCondWait matches sync.Cond.Wait.
func isCondWait(info *types.Info, call *ast.CallExpr) bool {
	return methodOn(info, call, "sync", "Cond", "Wait")
}

// blockingCall classifies calls that park the goroutine: WaitGroup
// waits, collective/point-to-point communication on mpi.Comm, net.Conn
// I/O (directly or as an argument — the conn threaded into a frame
// writer blocks just the same), and time.Sleep.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if methodOn(info, call, "sync", "WaitGroup", "Wait") {
		return "WaitGroup.Wait", true
	}
	if pkgFunc(info, call, "time", "Sleep") {
		return "time.Sleep", true
	}
	if name := commMethodName(info, call); name != "" {
		if collectiveSet[name] {
			return "collective Comm." + name, true
		}
		switch name {
		case "Send", "Recv", "SendRecv", "Probe":
			return "Comm." + name, true
		}
	}
	// net.Conn I/O: a method on a conn, or a conn passed into any
	// non-builtin call (writeFrame(conn, …) blocks on the socket exactly
	// like conn.Write; append(conns, c) does not).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t := info.Types[sel.X].Type; t != nil && isNetConn(t) {
			return "net.Conn." + sel.Sel.Name, true
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return "", false
		}
	}
	for _, arg := range call.Args {
		if t := info.Types[arg].Type; t != nil && isNetConn(t) {
			return "net.Conn I/O", true
		}
	}
	return "", false
}

// isNetConn reports whether t is net.Conn or a concrete net conn type.
func isNetConn(t types.Type) bool {
	for _, name := range []string{"Conn", "TCPConn", "UnixConn", "UDPConn"} {
		if isNamed(t, "net", name) {
			return true
		}
	}
	return false
}

// isChanType reports whether t is a channel type.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// selectHasDefault reports whether a select statement has a default
// clause (making it non-blocking).
func selectHasDefault(st *ast.SelectStmt) bool {
	for _, c := range st.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
