package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	// Path is the import path ("spio/internal/core").
	Path string
	// Dir is the package directory on disk.
	Dir  string
	Fset *token.FileSet
	// Files are the package's non-test Go files.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
}

// listPackages expands Go package patterns ("./...") with the go tool.
// The go command is the only authority on module-aware pattern
// expansion, and it is guaranteed present (the analyzers are run
// through `go run`).
func listPackages(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// Load expands the patterns, parses every matched package's non-test
// files, and type-checks them with the stdlib source importer. The
// importer (and its package cache) is shared across all packages, so a
// dependency is type-checked at most once.
func Load(patterns []string) ([]*Package, error) {
	listed, err := listPackages(patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := checkFiles(fset, imp, lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks every .go file directly inside dir as
// one package under the given import path. It is the fixture loader the
// analyzer tests use for testdata packages `go list` cannot see.
func LoadDir(dir, path string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	if len(matches) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	return checkFiles(fset, imp, path, dir, matches)
}

// checkFiles parses and type-checks one package's files.
func checkFiles(fset *token.FileSet, imp types.Importer, path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := typesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
