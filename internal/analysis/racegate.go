package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// RaceGate is a RacerD-style consistent-lock data-race analyzer over
// struct fields. It infers the set of goroutine origins that can reach
// every function (the main goroutine, plus one origin per `go`
// statement, with "may run multiple instances" tracked for spawns in
// loops and spawns reachable from more than one goroutine), then runs
// the shared lock-set walker (lockset.go) in observing mode to collect,
// for every struct-field access, the locks held at the access and
// whether it went through sync/atomic.
//
// A field is flagged when two accesses — at least one a plain write —
// can run on different goroutines yet share no common lock: the
// *effective* lock set of an access is the locks held locally plus the
// locks held at every loaded call site of the enclosing function (a
// caller-lock-context fixpoint, so `evictLocked`-style helpers that
// rely on the caller's mutex stay clean). A separate check flags fields
// accessed both atomically and plainly: mixing the two defeats the
// atomics.
//
// Confinement idioms that make concurrent reachability safe are
// recognized and excluded (DESIGN.md §8.4):
//
//   - atomic: accesses through sync/atomic types or functions never
//     race with each other;
//   - ownership / init-before-spawn: accesses through a local the
//     function itself allocated (composite literal, new, make, a New*/
//     Open* constructor) are writes to a not-yet-shared object;
//   - channel hand-off: accesses through a local received from a
//     channel — the send synchronized the transfer.
//
// To keep the class-based field identity (one key per Type.field, all
// instances conflated) from drowning the output, a field is only
// examined when something signals concurrent intent: some access to it
// holds a lock (the consistent-lock criterion — "usually locked,
// here not" is the bug shape), or the owning struct declares a mutex,
// atomic, sync helper, or channel field. Plain data structs with no
// synchronization anywhere are the caller's responsibility and stay
// out of scope.
var RaceGate = &Analyzer{
	Name: "racegate",
	Doc:  "flags struct fields written from multiple goroutine origins without a consistent lock, and atomic/plain access mixes",
	Run:  runRaceGate,
}

func runRaceGate(pass *Pass) {
	p := pass.Prog
	p.ensureRaceGate()
	pkgPath := pass.Pkg.Path()
	for _, d := range p.raceFindings {
		if d.pkg == pkgPath {
			pass.Reportf(d.pos, "%s", d.msg)
		}
	}
}

// ensureRaceGate runs the whole-program race analysis once and stores
// the findings on the Program, tagged with their owning package.
func (p *Program) ensureRaceGate() {
	if p.raceReady {
		return
	}
	p.raceReady = true
	a := &raceAnalysis{
		prog:       p,
		fnCtx:      make(map[*types.Func]*rgCtx),
		origins:    map[string]*rgOrigin{"main": {id: "main"}},
		fieldOwner: make(map[string]*types.Named),
		loaded:     make(map[string]bool),
	}
	for _, pkg := range p.Pkgs {
		a.loaded[pkg.Types.Path()] = true
	}
	a.buildContexts()
	a.propagateOrigins()
	a.computeMulti()
	a.computeLambda()
	a.evaluate()
	sort.Slice(p.raceFindings, func(i, j int) bool { return p.raceFindings[i].pos < p.raceFindings[j].pos })
}

// rgOrigin is one inferred goroutine origin: the main goroutine, or one
// `go` statement. multi marks origins that can run several instances
// concurrently (a spawn in a loop, or a spawn whose own function is
// reached from more than one goroutine).
type rgOrigin struct {
	id     string // "main" or "go@file:line"
	pos    token.Pos
	pkg    string
	fnName string // display name of the spawning function
	inLoop bool
	multi  bool
}

// rgCtx is one analysis context: a declared function, or the body of a
// go-statement function literal (which runs as its own origin).
// Function literals not spawned by `go` merge into their enclosing
// context.
type rgCtx struct {
	name string
	pkg  *Package
	fn   *types.Func // nil for go-literal contexts
	// origins is the set of origin ids whose goroutines can execute
	// this context; via records, per origin, the caller that first
	// propagated it here (nil at the origin's root), giving a
	// representative call path for diagnostics.
	origins map[string]bool
	via     map[string]*rgCtx
	// lambda is the caller lock context: locks held at *every* loaded
	// call site (top means "not yet constrained" during the fixpoint).
	lambda map[string]bool
	top    bool
	// seedRoot marks contexts callable from outside the loaded world
	// (exported, main, init): their lambda is pinned to the empty set.
	seedRoot bool

	accesses []*rgAccess
	calls    []rgCall
	spawns   []*rgSpawn
	inEdges  []rgInEdge
}

// rgAccess is one struct-field access.
type rgAccess struct {
	field  string // class key: pkgpath.Type.field
	write  bool
	atomic bool
	held   []string // lock classes held locally at the access (sorted)
	eff    map[string]bool
	pos    token.Pos
	ctx    *rgCtx
}

type rgCall struct {
	callee *types.Func
	held   []string
}

type rgInEdge struct {
	from *rgCtx
	held []string
}

type rgSpawn struct {
	origin  *rgOrigin
	rootFn  *types.Func // resolved `go f()` target, nil otherwise
	rootCtx *rgCtx      // `go func(){…}()` literal context, nil otherwise
}

// rootClass classifies what a local identifier is bound to, for the
// confinement pre-scan.
type rootClass int

const (
	rootShared rootClass = iota
	rootOwned            // fresh allocation: composite literal, new, make, constructor
	rootChanRecv
)

// rgPre is the per-function pre-scan: root classes for confinement and
// the loop spans for multi-instance spawn detection.
type rgPre struct {
	roots map[types.Object]rootClass
	loops [][2]token.Pos
}

type raceAnalysis struct {
	prog       *Program
	ctxs       []*rgCtx
	fnCtx      map[*types.Func]*rgCtx
	origins    map[string]*rgOrigin
	fieldOwner map[string]*types.Named
	loaded     map[string]bool
}

// buildContexts walks every loaded function with an observing lock-set
// walker and populates the contexts: accesses, resolved call edges with
// held sets, spawn sites, and go-literal sub-contexts.
func (a *raceAnalysis) buildContexts() {
	fis := make([]*FuncInfo, 0, len(a.prog.Funcs))
	for _, fi := range a.prog.Funcs {
		fis = append(fis, fi)
	}
	sort.Slice(fis, func(i, j int) bool {
		pi, pj := fis[i].Pkg.Types.Path(), fis[j].Pkg.Types.Path()
		if pi != pj {
			return pi < pj
		}
		return fis[i].Decl.Pos() < fis[j].Decl.Pos()
	})
	for _, fi := range fis {
		fn := fi.Obj
		c := &rgCtx{
			name:    funcDisplayName(fn),
			pkg:     fi.Pkg,
			fn:      fn,
			origins: make(map[string]bool),
			via:     make(map[string]*rgCtx),
		}
		a.ctxs = append(a.ctxs, c)
		a.fnCtx[fn] = c
	}
	for _, fi := range fis {
		c := a.fnCtx[fi.Obj]
		pre := a.preScan(fi)
		a.walkInto(c, fi, pre, fi.Decl.Body.List, nil)
	}
}

// walkInto runs one observing walk of stmts, attributing everything to
// ctx; go-statement literals recurse into fresh contexts of their own.
// held seeds the walker's lock set — nil for function bodies and
// goroutine roots, the capture-site set for nested literals.
func (a *raceAnalysis) walkInto(c *rgCtx, fi *FuncInfo, pre *rgPre, stmts []ast.Stmt, held []heldLock) {
	info := fi.Pkg.Info
	w := &lockWalker{
		prog:   a.prog,
		fi:     fi,
		info:   info,
		fnName: c.name,
	}
	w.hooks = &raceHooks{
		access: func(sel *ast.SelectorExpr, write, atomicAcc bool, held []heldLock) {
			a.noteAccess(c, fi, pre, sel, write, atomicAcc, held)
		},
		call: func(call *ast.CallExpr, callee *types.Func, held []heldLock, deferred bool) {
			c.calls = append(c.calls, rgCall{callee: callee, held: heldKeys(held)})
		},
		goStmt: func(st *ast.GoStmt, held []heldLock) {
			a.noteSpawn(c, fi, pre, st)
		},
		funcLit: func(lit *ast.FuncLit, litHeld []heldLock) {
			// A literal that is not a go target runs on some schedule the
			// caller controls (synchronous callback, defer): its accesses
			// belong to the enclosing context, seeded with the capture
			// site's lock set. For the dominant idioms — deferred cleanup
			// registered after a deferred Unlock, and callbacks invoked
			// synchronously — that set is what the body actually runs
			// under; a closure stored and invoked after the locks drop is
			// a documented false-negative boundary (DESIGN §8.4).
			a.walkInto(c, fi, pre, lit.Body.List, litHeld)
		},
	}
	w.walkStmts(stmts, held)
}

// noteSpawn records one go statement: a new origin plus the spawned
// root it injects that origin into. Unresolvable targets (func values,
// method values) contribute nothing — the spawned body is invisible to
// the call graph, a documented false-negative boundary pinned by the
// callgraph fixture.
func (a *raceAnalysis) noteSpawn(c *rgCtx, fi *FuncInfo, pre *rgPre, st *ast.GoStmt) {
	pos := st.Pos()
	id := "go@" + a.shortPos(fi.Pkg, pos)
	o := a.origins[id]
	if o == nil {
		o = &rgOrigin{
			id:     id,
			pos:    pos,
			pkg:    fi.Pkg.Types.Path(),
			fnName: c.name,
			inLoop: pre.inLoop(pos),
		}
		a.origins[id] = o
	}
	sp := &rgSpawn{origin: o}
	if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
		lc := &rgCtx{
			name:    fmt.Sprintf("go-func@%s (in %s)", a.shortPos(fi.Pkg, pos), c.name),
			pkg:     fi.Pkg,
			fn:      nil,
			origins: make(map[string]bool),
			via:     make(map[string]*rgCtx),
		}
		a.ctxs = append(a.ctxs, lc)
		sp.rootCtx = lc
		a.walkInto(lc, fi, pre, lit.Body.List, nil)
	} else if callee := a.prog.calleeFunc(fi.Pkg.Info, st.Call); callee != nil {
		if _, loaded := a.prog.Funcs[callee]; loaded {
			sp.rootFn = callee
		}
	}
	c.spawns = append(c.spawns, sp)
}

// noteAccess filters and records one field access.
func (a *raceAnalysis) noteAccess(c *rgCtx, fi *FuncInfo, pre *rgPre, sel *ast.SelectorExpr, write, atomicAcc bool, held []heldLock) {
	info := fi.Pkg.Info
	selx := info.Selections[sel]
	if selx == nil || selx.Kind() != types.FieldVal {
		return
	}
	fobj, ok := selx.Obj().(*types.Var)
	if !ok {
		return
	}
	recv := selx.Recv()
	if ptr, isP := recv.(*types.Pointer); isP {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return
	}
	tobj := named.Obj()
	if tobj == nil || tobj.Pkg() == nil || !a.loaded[tobj.Pkg().Path()] {
		return
	}
	// Synchronization primitives are the locks, not the data: plain
	// mentions of mutex/atomic/sync-helper fields (receivers of Lock and
	// Add calls) are not accesses. Atomic operations keep their field.
	if !atomicAcc {
		ft := fobj.Type()
		if mutexTypeName(ft) != "" || atomicTypeName(ft) != "" || isSyncHelper(ft) {
			return
		}
	}
	// Confinement: an access through a local this function allocated
	// (not yet shared — init-before-spawn) or received from a channel
	// (the send was the hand-off) cannot race here.
	if root := rootIdent(sel.X); root != nil {
		if obj := identObj(info, root); obj != nil {
			switch pre.roots[obj] {
			case rootOwned, rootChanRecv:
				return
			}
		}
	}
	key := tobj.Pkg().Path() + "." + tobj.Name() + "." + fobj.Name()
	if a.fieldOwner[key] == nil {
		a.fieldOwner[key] = named
	}
	c.accesses = append(c.accesses, &rgAccess{
		field:  key,
		write:  write,
		atomic: atomicAcc,
		held:   heldKeys(held),
		pos:    sel.Pos(),
		ctx:    c,
	})
}

func heldKeys(held []heldLock) []string {
	if len(held) == 0 {
		return nil
	}
	out := make([]string, 0, len(held))
	for _, h := range held {
		out = append(out, h.key)
	}
	sort.Strings(out)
	return out
}

// rootIdent unwraps a field-access base expression to the identifier it
// is rooted in ("s.cache.entries" → s), or nil when the base is not a
// plain chain (call results, index of call, …).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.TypeAssertExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// isSyncHelper reports whether t (after stripping pointers) is one of
// the sync package's coordination types.
func isSyncHelper(t types.Type) bool {
	for _, name := range []string{"WaitGroup", "Once", "Cond", "Map", "Pool"} {
		if isNamed(t, "sync", name) {
			return true
		}
	}
	return false
}

// preScan computes the per-function confinement classes and loop spans.
// The class map is shared by the function's literals: a captured local
// resolves to the same types.Object.
func (a *raceAnalysis) preScan(fi *FuncInfo) *rgPre {
	info := fi.Pkg.Info
	pre := &rgPre{roots: make(map[types.Object]rootClass)}
	note := func(id *ast.Ident, cls rootClass) {
		if id == nil || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if old, seen := pre.roots[obj]; seen {
			// Sticky shared: one aliasing assignment makes the root
			// shared for good; otherwise the first class stands.
			if cls == rootShared && old != rootShared {
				pre.roots[obj] = rootShared
			}
			return
		}
		pre.roots[obj] = cls
	}
	classify := func(e ast.Expr) rootClass {
		switch e := ast.Unparen(e).(type) {
		case *ast.CompositeLit:
			return rootOwned
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					return rootOwned
				}
			}
			if e.Op == token.ARROW {
				return rootChanRecv
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if b, isB := info.Uses[id].(*types.Builtin); isB && (b.Name() == "new" || b.Name() == "make") {
					return rootOwned
				}
			}
			if fn := funcObj(info, e); fn != nil && constructorName(fn.Name()) {
				return rootOwned
			}
		}
		return rootShared
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			pre.loops = append(pre.loops, [2]token.Pos{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			pre.loops = append(pre.loops, [2]token.Pos{n.Body.Pos(), n.Body.End()})
			if isChanType(info.Types[n.X].Type) {
				if id, ok := n.Key.(*ast.Ident); ok {
					note(id, rootChanRecv)
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					note(id, rootChanRecv)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				note(id, classify(rhs))
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if len(n.Values) > 0 {
					rhs := n.Values[0]
					if len(n.Values) == len(n.Names) {
						rhs = n.Values[i]
					}
					note(id, classify(rhs))
					continue
				}
				// var x T with a value type: x is a fresh object.
				if obj := info.Defs[id]; obj != nil {
					switch obj.Type().Underlying().(type) {
					case *types.Struct, *types.Array, *types.Basic:
						note(id, rootOwned)
					}
				}
			}
		}
		return true
	})
	return pre
}

func (pre *rgPre) inLoop(pos token.Pos) bool {
	for _, s := range pre.loops {
		if pos >= s[0] && pos < s[1] {
			return true
		}
	}
	return false
}

// constructorName reports whether a function name follows the fresh-
// allocation naming conventions the ownership heuristic trusts.
func constructorName(name string) bool {
	for _, p := range []string{"New", "new", "Open", "open", "Make"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// propagateOrigins seeds "main" at every context callable from outside
// the loaded world and flows origins along call and spawn edges to a
// fixpoint, recording a representative propagation parent per
// (context, origin) for diagnostics.
func (a *raceAnalysis) propagateOrigins() {
	// In-edges (needed for both seeding and the lambda fixpoint).
	spawnTargets := make(map[*rgCtx]bool)
	for _, c := range a.ctxs {
		for _, e := range c.calls {
			if t := a.fnCtx[e.callee]; t != nil {
				t.inEdges = append(t.inEdges, rgInEdge{from: c, held: e.held})
			}
		}
		for _, sp := range c.spawns {
			t := sp.rootCtx
			if t == nil && sp.rootFn != nil {
				t = a.fnCtx[sp.rootFn]
			}
			if t != nil {
				spawnTargets[t] = true
			}
		}
	}
	for _, c := range a.ctxs {
		if c.fn == nil {
			continue // go-literal contexts get their origin from the spawn
		}
		switch {
		case c.fn.Name() == "main" || c.fn.Name() == "init" || c.fn.Exported():
			c.seedRoot = true
		case len(c.inEdges) == 0 && !spawnTargets[c]:
			// Unexported, never called, never spawned in the loaded
			// world: it must be invoked dynamically (func value, test);
			// assume the main goroutine rather than leaving it dead.
			c.seedRoot = true
		}
		if c.seedRoot {
			c.origins["main"] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, c := range a.ctxs {
			if len(c.origins) == 0 {
				continue
			}
			for _, e := range c.calls {
				t := a.fnCtx[e.callee]
				if t == nil {
					continue
				}
				for o := range c.origins {
					if !t.origins[o] {
						t.origins[o] = true
						t.via[o] = c
						changed = true
					}
				}
			}
			for _, sp := range c.spawns {
				t := sp.rootCtx
				if t == nil && sp.rootFn != nil {
					t = a.fnCtx[sp.rootFn]
				}
				if t == nil {
					continue
				}
				if !t.origins[sp.origin.id] {
					t.origins[sp.origin.id] = true
					changed = true
				}
			}
		}
	}
}

// computeMulti marks origins that can run several instances at once: a
// spawn lexically inside a loop, or a spawn whose site is itself
// executed by more than one goroutine (counting multi origins twice).
func (a *raceAnalysis) computeMulti() {
	for changed := true; changed; {
		changed = false
		for _, c := range a.ctxs {
			for _, sp := range c.spawns {
				if sp.origin.multi {
					continue
				}
				if sp.origin.inLoop {
					sp.origin.multi = true
					changed = true
					continue
				}
				n := 0
				for o := range c.origins {
					if a.origins[o] != nil && a.origins[o].multi {
						n += 2
					} else {
						n++
					}
				}
				if n >= 2 {
					sp.origin.multi = true
					changed = true
				}
			}
		}
	}
}

// computeLambda runs the caller-lock-context fixpoint: lambda(ctx) is
// the set of locks held at every loaded call site (the intersection
// over in-edges of the caller's lambda plus the locks held at the
// site). Exported functions, main, init, and go-literal bodies are
// pinned to the empty set — the loaded call sites are not all their
// call sites. Sets only shrink, so the iteration terminates.
func (a *raceAnalysis) computeLambda() {
	for _, c := range a.ctxs {
		if c.fn == nil || c.seedRoot || len(c.inEdges) == 0 {
			c.lambda = map[string]bool{}
		} else {
			c.top = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, c := range a.ctxs {
			if !c.top && len(c.lambda) == 0 {
				continue // already empty; cannot shrink further
			}
			if c.fn == nil || c.seedRoot || len(c.inEdges) == 0 {
				continue // pinned
			}
			var acc map[string]bool
			accSet := false
			for _, e := range c.inEdges {
				if e.from.top {
					continue // unconstrained caller contributes nothing yet
				}
				contrib := make(map[string]bool, len(e.from.lambda)+len(e.held))
				for k := range e.from.lambda {
					contrib[k] = true
				}
				for _, k := range e.held {
					contrib[k] = true
				}
				if !accSet {
					acc = contrib
					accSet = true
					continue
				}
				for k := range acc {
					if !contrib[k] {
						delete(acc, k)
					}
				}
			}
			if !accSet {
				continue // every caller still top
			}
			if c.top {
				c.top = false
				c.lambda = acc
				changed = true
				continue
			}
			// Recompute can only shrink; detect a real change.
			if len(acc) != len(c.lambda) {
				c.lambda = acc
				changed = true
				continue
			}
			for k := range c.lambda {
				if !acc[k] {
					c.lambda = acc
					changed = true
					break
				}
			}
		}
	}
	for _, c := range a.ctxs {
		if c.top {
			// Unreachable cycles: no constraint ever arrived. Treat as
			// unprotected rather than inventing phantom locks.
			c.top = false
			c.lambda = map[string]bool{}
		}
	}
}

// evaluate groups the accesses by field and applies the two checks:
// atomic/plain mix, then the consistent-lock race criterion. One
// finding per field, reported at the offending plain access.
func (a *raceAnalysis) evaluate() {
	byField := make(map[string][]*rgAccess)
	var keys []string
	for _, c := range a.ctxs {
		if len(c.origins) == 0 {
			continue // unreached code cannot race
		}
		for _, acc := range c.accesses {
			acc.eff = make(map[string]bool, len(acc.held)+len(c.lambda))
			for _, k := range acc.held {
				acc.eff[k] = true
			}
			for k := range c.lambda {
				acc.eff[k] = true
			}
			if byField[acc.field] == nil {
				keys = append(keys, acc.field)
			}
			byField[acc.field] = append(byField[acc.field], acc)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		accs := byField[key]
		sort.Slice(accs, func(i, j int) bool { return accs[i].pos < accs[j].pos })
		var atomics, plains []*rgAccess
		for _, acc := range accs {
			if acc.atomic {
				atomics = append(atomics, acc)
			} else {
				plains = append(plains, acc)
			}
		}
		if a.checkMix(key, atomics, plains) {
			continue
		}
		a.checkRace(key, accs, plains)
	}
}

// checkMix flags a field accessed both atomically and plainly when the
// two sides can run concurrently and at least one writes. Reported at
// the plain access — that is the side defeating the atomics.
func (a *raceAnalysis) checkMix(key string, atomics, plains []*rgAccess) bool {
	if len(atomics) == 0 || len(plains) == 0 {
		return false
	}
	for _, p := range plains {
		for _, at := range atomics {
			if !p.write && !at.write {
				continue
			}
			if !a.concurrent(p, at) {
				continue
			}
			verb := "read"
			if p.write {
				verb = "write"
			}
			a.prog.raceFindings = append(a.prog.raceFindings, progDiag{
				pkg: p.ctx.pkg.Types.Path(),
				pos: p.pos,
				msg: fmt.Sprintf("field %s is accessed both atomically and plainly: plain %s here in %s can run concurrently with the atomic access at %s in %s — the plain access defeats the atomic discipline; use the atomic API (or one lock) for every access",
					lockShort(key), verb, p.ctx.name, a.posOf(at), at.ctx.name),
			})
			return true
		}
	}
	return false
}

// checkRace applies the consistent-lock criterion: among plain
// accesses, a write that can run concurrently with another access with
// disjoint effective lock sets is a race. Only fields with concurrent
// intent (a *write* under a lock somewhere, or a sync-carrying owner
// struct) are examined — a read that merely happens inside some locked
// region is not evidence the field is meant to be guarded, and counting
// it conflates pure-data structs (geometry values, wire records) whose
// instances the class-level field key cannot tell apart.
func (a *raceAnalysis) checkRace(key string, all, plains []*rgAccess) {
	lockEvidence := false
	for _, acc := range all {
		if acc.write && !acc.atomic && len(acc.eff) > 0 {
			lockEvidence = true
			break
		}
	}
	if !lockEvidence && !a.structHasSync(a.fieldOwner[key]) {
		return
	}
	// Report at the least-protected write: that is where the lock (or
	// the //spio:allow) belongs.
	var writes []*rgAccess
	for _, w := range plains {
		if w.write {
			writes = append(writes, w)
		}
	}
	sort.SliceStable(writes, func(i, j int) bool {
		if len(writes[i].eff) != len(writes[j].eff) {
			return len(writes[i].eff) < len(writes[j].eff)
		}
		return writes[i].pos < writes[j].pos
	})
	for _, w := range writes {
		for _, acc := range plains {
			if !a.concurrent(w, acc) || !disjoint(w.eff, acc.eff) {
				continue
			}
			a.reportRace(key, w, acc)
			return
		}
	}
}

func (a *raceAnalysis) reportRace(key string, w, acc *rgAccess) {
	wo, ao := a.pickOrigins(w, acc)
	if w == acc {
		a.prog.raceFindings = append(a.prog.raceFindings, progDiag{
			pkg: w.ctx.pkg.Types.Path(),
			pos: w.pos,
			msg: fmt.Sprintf("field %s is written here in %s (%s) and %s runs concurrent instances — concurrent writes to the same field race with each other; no common lock protects them and the access is not atomic",
				lockShort(key), w.ctx.name, a.accessDesc(w, wo), a.originDesc(wo)),
		})
		return
	}
	verb := "read"
	if acc.write {
		verb = "written"
	}
	a.prog.raceFindings = append(a.prog.raceFindings, progDiag{
		pkg: w.ctx.pkg.Types.Path(),
		pos: w.pos,
		msg: fmt.Sprintf("field %s is written here in %s (%s) and %s at %s in %s (%s); the accesses share no common lock and are not atomic — schedule-dependent data race",
			lockShort(key), w.ctx.name, a.accessDesc(w, wo), verb, a.posOf(acc), acc.ctx.name, a.accessDesc(acc, ao)),
	})
}

// concurrent reports whether two accesses can execute at the same time:
// they are reached from two distinct origins, or from one shared origin
// that runs multiple instances. The same access races with itself only
// through a multi origin.
func (a *raceAnalysis) concurrent(x, y *rgAccess) bool {
	if x == y {
		for o := range x.ctx.origins {
			if a.origins[o] != nil && a.origins[o].multi {
				return true
			}
		}
		return false
	}
	for o1 := range x.ctx.origins {
		for o2 := range y.ctx.origins {
			if o1 != o2 {
				return true
			}
			if a.origins[o1] != nil && a.origins[o1].multi {
				return true
			}
		}
	}
	return false
}

// pickOrigins chooses a deterministic pair of origins that witnesses
// the concurrency of (w, acc): two distinct ones when possible, else a
// shared multi origin for both sides.
func (a *raceAnalysis) pickOrigins(w, acc *rgAccess) (*rgOrigin, *rgOrigin) {
	wo := sortedKeys(w.ctx.origins)
	ao := sortedKeys(acc.ctx.origins)
	// Prefer witnessing with a go origin on the write side: "written by
	// the spawned handler, read by main" reads better than the reverse.
	for i := len(wo) - 1; i >= 0; i-- {
		for _, o2 := range ao {
			if wo[i] != o2 {
				return a.origins[wo[i]], a.origins[o2]
			}
		}
	}
	for _, o := range wo {
		if a.origins[o] != nil && a.origins[o].multi {
			return a.origins[o], a.origins[o]
		}
	}
	if len(wo) > 0 && len(ao) > 0 {
		return a.origins[wo[0]], a.origins[ao[0]]
	}
	return a.origins["main"], a.origins["main"]
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// structHasSync reports whether the struct under named declares any
// synchronization field (mutex, atomic, sync helper, channel): the
// signal that its fields are meant to be touched concurrently.
func (a *raceAnalysis) structHasSync(named *types.Named) bool {
	if named == nil {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if mutexTypeName(ft) != "" || atomicTypeName(ft) != "" || isSyncHelper(ft) || isChanType(ft) {
			return true
		}
	}
	return false
}

func disjoint(a, b map[string]bool) bool {
	for k := range a {
		if b[k] {
			return false
		}
	}
	return true
}

// accessDesc renders one access's lock and origin context for a
// diagnostic: "holding cache.fileCache.mu; from the main goroutine via
// Server.Snapshot → fileCache.Stats".
func (a *raceAnalysis) accessDesc(acc *rgAccess, o *rgOrigin) string {
	locks := "no lock held"
	if len(acc.eff) > 0 {
		short := make([]string, 0, len(acc.eff))
		for _, k := range sortedKeys(acc.eff) {
			short = append(short, lockShort(k))
		}
		locks = "holding " + strings.Join(short, ", ")
	}
	if o == nil {
		return locks
	}
	return fmt.Sprintf("%s; from %s via %s", locks, a.originDesc(o), a.pathTo(acc.ctx, o.id))
}

// originDesc renders one origin for a diagnostic.
func (a *raceAnalysis) originDesc(o *rgOrigin) string {
	if o == nil || o.id == "main" {
		return "the main goroutine"
	}
	d := fmt.Sprintf("the goroutine spawned at %s in %s", strings.TrimPrefix(o.id, "go@"), o.fnName)
	if o.inLoop {
		d += " (spawned in a loop)"
	} else if o.multi {
		d += " (multiple instances)"
	}
	return d
}

// pathTo reconstructs the representative call path along which origin
// reached ctx, innermost last.
func (a *raceAnalysis) pathTo(c *rgCtx, origin string) string {
	var names []string
	for cur := c; cur != nil && len(names) < 8; cur = cur.via[origin] {
		names = append(names, cur.name)
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}

// posOf renders an access position as file:line using the shared fset.
func (a *raceAnalysis) posOf(acc *rgAccess) string {
	return a.shortPos(acc.ctx.pkg, acc.pos)
}

func (a *raceAnalysis) shortPos(pkg *Package, pos token.Pos) string {
	p := pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
