// Fixture for the wiresym analyzer: a writer/reader pair matched by
// name convention must perform the same ordered sequence of fixed-width
// field operations. The local writer/reader types mirror the sticky
// pair in internal/format/binio.go.
package wiresym

type writer struct {
	b []byte
}

func newWriter(b *writer) *writer { return b }

func (w *writer) u8(v uint8)       { w.b = append(w.b, v) }
func (w *writer) u32(v uint32)     { _ = v }
func (w *writer) u64(v uint64)     { _ = v }
func (w *writer) uvarint(v uint64) { _ = v }
func (w *writer) str(s string)     { _ = s }
func (w *writer) bytes(p []byte)   { w.b = append(w.b, p...) }

type reader struct {
	b []byte
}

func (r *reader) u8() uint8       { return 0 }
func (r *reader) u32() uint32     { return 0 }
func (r *reader) u64() uint64     { return 0 }
func (r *reader) uvarint() uint64 { return 0 }
func (r *reader) str() string     { return "" }
func (r *reader) bytes(p []byte)  { _ = p }

// A symmetric pair: same widths, same order, branch shapes that factor
// to the same canonical stream. No finding.
func encodeGood(w *writer, vals []uint32) {
	w.bytes([]byte("SPIO"))
	w.u32(1)
	if len(vals) > 0 {
		w.u8(1)
		for _, v := range vals {
			w.u32(v)
		}
	} else {
		w.u8(0)
	}
	w.str("trailer")
}

func decodeGood(r *reader) []uint32 {
	magic := make([]byte, 4)
	r.bytes(magic)
	_ = r.u32()
	var vals []uint32
	if r.u8() != 0 {
		for i := 0; i < 3; i++ {
			vals = append(vals, r.u32())
		}
	}
	_ = r.str()
	return vals
}

// Width mismatch: the writer emits a u64 where the reader consumes a
// u32 — the classic silent-truncation corruption.
func encodeWidth(w *writer) {
	w.u32(7)
	w.u64(9) // want "writer emits u64, reader consumes u32"
}

func decodeWidth(r *reader) {
	_ = r.u32()
	_ = r.u32()
}

// Count mismatch: the writer emits a trailing flag byte the reader
// never consumes, shifting every later record.
func WriteTrailer(w *writer) {
	w.u32(3)
	w.u8(1) // want "first unread field is u8"
}

func ReadTrailer(r *reader) {
	_ = r.u32()
}

// Interprocedural: the asymmetric field hides inside a helper the
// writer splices in; the diagnostic lands on the splice site.
func writeNestedBody(w *writer) {
	w.u64(11)
}

func writeNested(w *writer) {
	w.u32(5)
	writeNestedBody(w) // want "writer emits u64, reader consumes uvarint"
}

func readNested(r *reader) {
	_ = r.u32()
	_ = r.uvarint()
}
