// Package racegate is the golden fixture for the consistent-lock race
// analyzer. True positives: a lock-free write in a spawned goroutine
// racing a locked read (direct and through a helper), a lock-free
// write under a spawn-in-a-loop origin racing its own instances, and a
// plain access to a field the rest of the code touches atomically.
// Deliberately clean shapes: all-atomic counters, writes kept under one
// mutex on every path (including via the caller's lock — the
// putLocked idiom), ownership/init-before-spawn, channel hand-off, and
// single-origin code. One deliberate pre-spawn configuration write is
// suppressed with //spio:allow.
package racegate

import (
	"sync"
	"sync/atomic"
)

// --- true positive: lock-free write in a spawned goroutine vs a
// locked read from the main goroutine ---

type Gauge struct {
	mu  sync.Mutex
	val int
}

func (g *Gauge) Watch() {
	go g.poll()
}

func (g *Gauge) poll() {
	for i := 0; i < 8; i++ {
		g.val++ // want "share no common lock"
	}
}

func (g *Gauge) Read() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.val
}

// --- true positive, interprocedural: the unlocked write hides inside a
// helper reached only from the spawned goroutine ---

type Journal struct {
	mu  sync.Mutex
	seq int
}

func (j *Journal) Append() {
	j.mu.Lock()
	j.seq++
	j.mu.Unlock()
}

func (j *Journal) Start() {
	go j.flusher()
}

func (j *Journal) flusher() {
	j.stamp()
}

func (j *Journal) stamp() {
	j.seq++ // want "share no common lock"
}

// --- true positive: spawn in a loop — the handler races its own
// concurrent instances; the locked map write right above stays clean ---

type Hub struct {
	mu    sync.Mutex
	conns map[string]int
	last  string
}

func (h *Hub) Serve() {
	for {
		go h.handle("conn")
	}
}

func (h *Hub) handle(name string) {
	h.mu.Lock()
	h.conns[name] = 1 // clean: every instance holds h.mu here
	h.mu.Unlock()
	h.last = name // want "concurrent instances"
}

// --- atomic/plain mix: the counter is atomic everywhere except one
// plain read ---

type Stats struct {
	hits atomic.Int64
	miss int64
	done chan struct{}
}

func (s *Stats) Record() {
	go func() {
		s.hits.Add(1)
		atomic.AddInt64(&s.miss, 1)
	}()
	s.hits.Add(2) // clean: atomic vs atomic never races
}

func (s *Stats) Dump() int64 {
	return s.hits.Load() + s.miss // want "both atomically and plainly"
}

// --- clean: the helper writes under the *caller's* lock on every call
// path (the putLocked idiom) ---

type Store struct {
	mu    sync.Mutex
	items map[string]int
}

func (s *Store) Put(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putLocked(k)
}

func (s *Store) Drain() {
	go s.loop()
}

func (s *Store) loop() {
	s.mu.Lock()
	s.putLocked("drain")
	s.mu.Unlock()
}

func (s *Store) putLocked(k string) {
	s.items[k] = 1 // clean: every loaded call site holds s.mu
}

// --- clean: ownership / init-before-spawn and channel hand-off ---

type task struct {
	mu sync.Mutex
	n  int
}

func Produce(ch chan *task) {
	t := &task{}
	t.n = 1 // clean: t is still owned by this function
	ch <- t
}

func Consume(ch chan *task) {
	go func() {
		for t := range ch {
			t.n++ // clean: the channel send handed t off
		}
	}()
}

// --- clean: only the main goroutine ever reaches these ---

type Local struct {
	mu sync.Mutex
	n  int
}

func Bump(l *Local) {
	l.n++ // clean: single origin, nothing to race with
}

func BumpLocked(l *Local) {
	l.mu.Lock()
	l.n++
	l.mu.Unlock()
}

// --- suppressed: deliberate set-before-spawn configuration seam ---

type Worker struct {
	mu    sync.Mutex
	delay int
}

// SetDelay must be called before Start by contract; the field is
// read-only once the loop goroutine exists.
func (w *Worker) SetDelay(d int) {
	//spio:allow racegate -- delay is configured before Start spawns the loop and read-only after
	w.delay = d // want "share no common lock"
}

func (w *Worker) Start() {
	go w.run()
}

func (w *Worker) run() {
	for w.delay > 0 {
		return
	}
}
