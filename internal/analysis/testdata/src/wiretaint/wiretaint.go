// Fixture for the wiretaint analyzer: every integer the frame decoder
// hands out is attacker-controlled until a bound check proves
// otherwise, and letting one reach a make() size or a loop bound turns
// a hostile length into a huge allocation or a spin before a single
// payload byte has arrived.
package wiretaint

import "encoding/binary"

// maxBlob is the sanctioned per-value ceiling the bounded shapes
// compare against.
const maxBlob = 1 << 20

// decoder mimics internal/server's frame decoder: it parses integers
// out of a client-supplied frame.
//
//spio:untrusted-input
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) u32() uint32 {
	if d.off+4 > len(d.buf) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// decodeBlob allocates straight off the wire: the hostile length is
// the allocation size.
func decodeBlob(d *decoder) []byte {
	n := d.u32()
	return make([]byte, n) // want "reaches a make"
}

// decodeRows spins off the wire: the loop bound is the sink.
func decodeRows(d *decoder) int {
	rows := int(d.u32())
	total := 0
	for i := 0; i < rows; i++ { // want "reaches a loop bound"
		total += int(d.u32())
	}
	return total
}

// alloc hides the sink behind a helper: its summary records that
// parameter 0 flows into a make() size.
func alloc(n int) []float64 {
	return make([]float64, n)
}

// decodeSeries surfaces alloc's summarized sink at the call site that
// passes wire data in.
func decodeSeries(d *decoder) []float64 {
	return alloc(int(d.u32())) // want "size in wiretaint.alloc"
}

// readCount launders the source through a helper return: the summary
// carries the source taint back to the caller.
func readCount(d *decoder) int {
	return int(d.u32())
}

func decodeTable(d *decoder) []int64 {
	rows := readCount(d)
	return make([]int64, rows) // want "reaches a make"
}

// header carries a decoded count through a struct field: the store in
// parse taints every later read of .count, wherever it happens.
type header struct {
	version int
	count   int
}

func parse(d *decoder) header {
	var h header
	h.version = int(d.u32())
	h.count = int(d.u32())
	return h
}

// allocRows reads the tainted field far from the decode site.
func allocRows(h header) [][]float32 {
	return make([][]float32, h.count) // want "reaches a make"
}

// decodeBounded is the sanctioned shape: the early return dominates the
// allocation, so n is clean at the make. No finding.
func decodeBounded(d *decoder) []byte {
	n := int(d.u32())
	if n < 0 || n > maxBlob {
		return nil
	}
	return make([]byte, n)
}

// decodeCapped trusts the caller's limit: parameters are caller-vouched
// bounds, so comparing against one clears the taint. No finding.
func decodeCapped(d *decoder, limit int) []int32 {
	n := int(d.u32())
	if n > limit {
		n = limit
	}
	return make([]int32, n)
}

// decodeClamped clamps with the min builtin against a constant, which
// bounds the value as surely as a branch. No finding.
func decodeClamped(d *decoder) []byte {
	return make([]byte, min(int(d.u32()), 4096))
}

// decodeScratch deliberately allocates off the wire: the transport
// already rejected frames over its cap, which this analyzer cannot see,
// and the directive records that argument.
func decodeScratch(d *decoder) []byte {
	n := d.u32()
	//spio:allow wiretaint -- fixture: frame cap upstream already bounds n
	return make([]byte, n) // want "reaches a make"
}
