// Fixture for //spio:allow suppression directives (directive.go):
// a well-formed directive marks the covered finding Suppressed, a
// directive without a reason or naming an unknown analyzer is itself a
// finding, and a directive that suppresses nothing is stale.
package suppress

import "spio/internal/mpi"

// Suppressed: the directive on the line above covers the finding.
func suppressedBarrier(c *mpi.Comm) {
	if c.Rank() == 0 {
		//spio:allow collorder -- demo: deliberate rank-0 barrier
		c.Barrier()
	}
}

// The same shape without a directive stays a live finding.
func unsuppressedBarrier(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Barrier()
	}
}

// A directive without a reason suppresses nothing and is reported; the
// barrier stays a live finding too.
func missingReason(c *mpi.Comm) {
	if c.Rank() == 0 {
		//spio:allow collorder
		c.Barrier()
	}
}

// A typo'd analyzer name must not silently stop suppressing.
func unknownAnalyzer(c *mpi.Comm) {
	if c.Rank() == 0 {
		//spio:allow collorderr -- typo
		c.Barrier()
	}
}

// A stale allow: nothing on this or the next line trips tagclash.
//
//spio:allow tagclash -- stale: the hazard is long gone
func nothingHere() {}
