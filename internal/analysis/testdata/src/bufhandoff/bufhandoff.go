// Fixture for the bufhandoff analyzer: the particle buffer belongs to
// the asynchronous checkpoint between WriteAsync and Wait.
package bufhandoff

import (
	"spio/internal/core"
	"spio/internal/mpi"
	"spio/internal/particle"
)

// Reading the buffer while the checkpoint owns it races with the
// background write.
func useAfterHandoff(c *mpi.Comm, cfg core.WriteConfig, buf *particle.Buffer) int {
	p := core.WriteAsync(c, "out", cfg, buf)
	n := buf.Len() // want "used after being handed off to WriteAsync"
	_, _ = p.Wait()
	return n
}

// Handing the buffer to other code before Wait is the same race.
func aliasBeforeWait(c *mpi.Comm, cfg core.WriteConfig, buf *particle.Buffer, sink func(*particle.Buffer)) {
	p := core.WriteAsync(c, "out", cfg, buf)
	sink(buf) // want "used after being handed off to WriteAsync"
	_, _ = p.Wait()
}

// Discarding the PendingWrite handle leaves the buffer owned by the
// checkpoint for the rest of the function.
func neverWaited(c *mpi.Comm, cfg core.WriteConfig, buf *particle.Buffer) int {
	core.WriteAsync(c, "out", cfg, buf)
	return buf.Len() // want "never waited on"
}

// Using the buffer after Wait is the documented ownership return.
func okAfterWait(c *mpi.Comm, cfg core.WriteConfig, buf *particle.Buffer) int {
	p := core.WriteAsync(c, "out", cfg, buf)
	_, _ = p.Wait()
	return buf.Len()
}

// Rebinding the variable to a fresh buffer ends the old buffer's taint:
// the double-buffering pattern a simulation uses.
func okDoubleBuffer(c *mpi.Comm, cfg core.WriteConfig, buf *particle.Buffer, schema *particle.Schema) int {
	p := core.WriteAsync(c, "out", cfg, buf)
	buf = particle.NewBuffer(schema, 0)
	n := buf.Len()
	_, _ = p.Wait()
	return n
}

// startCheckpoint wraps WriteAsync: per its summary, its buffer
// parameter is handed off to the background checkpoint.
func startCheckpoint(c *mpi.Comm, cfg core.WriteConfig, buf *particle.Buffer) *core.PendingWrite {
	return core.WriteAsync(c, "out", cfg, buf)
}

// readLen is a deep use: any buffer passed to it is touched.
func readLen(buf *particle.Buffer) int {
	return buf.Len()
}

// Interprocedural: the handoff hides one call deep. The ownership
// window opens at the wrapper call, and the use is flagged with the
// hand-off chain.
func useAfterHelperHandoff(c *mpi.Comm, cfg core.WriteConfig, buf *particle.Buffer) int {
	p := startCheckpoint(c, cfg, buf)
	n := buf.Len() // want "handed off via bufhandoff.startCheckpoint"
	_, _ = p.Wait()
	return n
}

// Interprocedural: the use hides one call deep too — the diagnostic
// names the path to the touch inside the helper.
func deepUseAfterHandoff(c *mpi.Comm, cfg core.WriteConfig, buf *particle.Buffer) int {
	p := core.WriteAsync(c, "out", cfg, buf)
	n := readLen(buf) // want "use path: bufhandoff.readLen"
	_, _ = p.Wait()
	return n
}

// The helper wrapper used correctly: hand off, wait, then read. The
// summary-driven window closes at Wait exactly like the direct one.
func okHelperHandoff(c *mpi.Comm, cfg core.WriteConfig, buf *particle.Buffer) int {
	p := startCheckpoint(c, cfg, buf)
	_, _ = p.Wait()
	return readLen(buf)
}

// The decode pool owns its destination buffer from construction until
// Wait: reading it in between races with the pool's decode workers.
func useWhilePoolDecodes(dst *particle.Buffer, payloads [][]byte) int {
	pool := particle.NewDecodePool(dst, 4)
	for i, p := range payloads {
		pool.Go(p, i)
	}
	n := dst.Len() // want "used after being handed off to NewDecodePool"
	_ = pool.Wait()
	return n
}

// Discarding the pool handle leaves the buffer owned by the workers for
// the rest of the function.
func poolNeverDrained(dst *particle.Buffer) int {
	particle.NewDecodePool(dst, 1)
	return dst.Len() // want "never waited on"
}

// Waiting returns ownership: the documented contract.
func okAfterPoolWait(dst *particle.Buffer, data []byte) int {
	pool := particle.NewDecodePool(dst, 1)
	pool.Go(data, 0)
	_ = pool.Wait()
	return dst.Len()
}

// startDecode wraps NewDecodePool: per its summary, its buffer
// parameter is handed off to the pool.
func startDecode(dst *particle.Buffer, data []byte) *particle.DecodePool {
	pool := particle.NewDecodePool(dst, 2)
	pool.Go(data, 0)
	return pool
}

// Interprocedural: the pool hand-off hides one call deep; the window
// opens at the wrapper call and the diagnostic names the chain.
func useAfterHelperPoolHandoff(dst *particle.Buffer, data []byte) int {
	pool := startDecode(dst, data)
	n := dst.Len() // want "handed off via bufhandoff.startDecode"
	_ = pool.Wait()
	return n
}
