// Fixture for the bufhandoff analyzer: the particle buffer belongs to
// the asynchronous checkpoint between WriteAsync and Wait.
package bufhandoff

import (
	"spio/internal/core"
	"spio/internal/mpi"
	"spio/internal/particle"
)

// Reading the buffer while the checkpoint owns it races with the
// background write.
func useAfterHandoff(c *mpi.Comm, cfg core.WriteConfig, buf *particle.Buffer) int {
	p := core.WriteAsync(c, "out", cfg, buf)
	n := buf.Len() // want "used after being handed off to WriteAsync"
	_, _ = p.Wait()
	return n
}

// Handing the buffer to other code before Wait is the same race.
func aliasBeforeWait(c *mpi.Comm, cfg core.WriteConfig, buf *particle.Buffer, sink func(*particle.Buffer)) {
	p := core.WriteAsync(c, "out", cfg, buf)
	sink(buf) // want "used after being handed off to WriteAsync"
	_, _ = p.Wait()
}

// Discarding the PendingWrite handle leaves the buffer owned by the
// checkpoint for the rest of the function.
func neverWaited(c *mpi.Comm, cfg core.WriteConfig, buf *particle.Buffer) int {
	core.WriteAsync(c, "out", cfg, buf)
	return buf.Len() // want "never waited on"
}

// Using the buffer after Wait is the documented ownership return.
func okAfterWait(c *mpi.Comm, cfg core.WriteConfig, buf *particle.Buffer) int {
	p := core.WriteAsync(c, "out", cfg, buf)
	_, _ = p.Wait()
	return buf.Len()
}

// Rebinding the variable to a fresh buffer ends the old buffer's taint:
// the double-buffering pattern a simulation uses.
func okDoubleBuffer(c *mpi.Comm, cfg core.WriteConfig, buf *particle.Buffer, schema *particle.Schema) int {
	p := core.WriteAsync(c, "out", cfg, buf)
	buf = particle.NewBuffer(schema, 0)
	n := buf.Len()
	_, _ = p.Wait()
	return n
}
