// Fixture for the goleak analyzer: a goroutine needs visible exit
// discipline — a WaitGroup.Done, a channel operation, or a stop-flag
// check — or it can be neither awaited nor cancelled, and in a resident
// process it accumulates across reloads.
package goleak

import (
	"sync"
	"sync/atomic"
)

// pump spins forever with no exit evidence anywhere in its body: no
// channel, no WaitGroup, no flag.
func pump(counts []int64) {
	for i := 0; ; i++ {
		counts[i%len(counts)]++
	}
}

// collector leaks its literal: nothing ties the goroutine's lifetime to
// anything the parent can wait on or close.
func collector(counts []int64) {
	go func() { // want "no exit discipline"
		for i := 0; ; i++ {
			counts[i%len(counts)]++
		}
	}()
}

// spawnPump leaks through a named function: the analyzer scans pump's
// whole call tree before deciding, and finds nothing there either.
func spawnPump(counts []int64) {
	go pump(counts) // want "no exit discipline"
}

// worker drains a channel under a WaitGroup: the range ends when the
// channel is closed, and Done makes the exit awaitable.
type worker struct {
	jobs chan int
	done *sync.WaitGroup
}

func (w *worker) run() {
	defer w.done.Done()
	for j := range w.jobs {
		_ = j
	}
}

// startWorker is the interprocedural positive: the evidence (Done plus
// range-over-channel) lives in run's body, not at the go statement.
// No finding.
func startWorker(w *worker) {
	go w.run()
}

// serveMetrics is the await-and-cancel idiom: close(done) lets the
// drain path block until the goroutine has really exited. No finding.
func serveMetrics(serve func() error) chan struct{} {
	done := make(chan struct{})
	go func() {
		_ = serve()
		close(done)
	}()
	return done
}

// poll checks an atomic closing flag each round: the spawner can stop
// it by setting the flag. No finding.
func poll(stop *atomic.Bool, f func()) {
	go func() {
		for !stop.Load() {
			f()
		}
	}()
}

// launch spawns a caller-supplied func value: the target is opaque, so
// the analyzer stays silent rather than guessing (a documented
// soundness boundary). No finding either way.
func launch(f func()) {
	go f()
}

// auditLog is fire-and-forget by design — process exit reaps it — and
// the directive records that decision instead of restructuring.
func auditLog(lines []string, sink func(string)) {
	//spio:allow goleak -- fixture: one-shot best-effort logger; process exit reaps it
	go func() { // want "no exit discipline"
		for _, l := range lines {
			sink(l)
		}
	}()
}
