// Fixture for the tagclash analyzer: user point-to-point tags must lie
// in [0, mpi.UserTagSpace); negative wire tags are the reserved
// collective namespace.
package tagclash

import "spio/internal/mpi"

const collidingTag = -7

func sends(c *mpi.Comm, data []byte) {
	c.Send(1, -3, data)            // want "collides with the reserved collective tag namespace"
	c.Isend(1, collidingTag, data) // want "collides with the reserved collective tag namespace"
	c.Send(1, 1<<20, data)         // want "outside the user tag space"
}

func recvs(c *mpi.Comm) {
	c.Recv(0, -2) // want "collides with the reserved collective tag namespace"
}

// Legal tags: in-range constants, wildcard receives, and runtime
// values the analyzer cannot evaluate. No findings.
func okTags(c *mpi.Comm, data []byte, dynamic int) {
	c.Send(1, 42, data)
	c.Recv(0, mpi.AnyTag)
	if c.Probe(0, mpi.AnyTag) {
		c.Recv(0, dynamic)
	}
}

// Boundary: the user tag space is half-open — UserTagSpace itself is
// the first reserved value (wireTag panics on it), UserTagSpace-1 the
// last legal one.
func boundaryTags(c *mpi.Comm, data []byte) {
	c.Send(1, mpi.UserTagSpace, data) // want "outside the user tag space"
	c.Send(1, mpi.UserTagSpace-1, data)
}
