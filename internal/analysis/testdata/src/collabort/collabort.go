// Fixture for the collabort analyzer: once a function has entered the
// communication phase, an early return on a locally-scoped error skips
// collectives the healthy ranks still enter, deadlocking them. The
// sanctioned shape routes the error through an agreement collective
// first, so every rank aborts together.
package collabort

import (
	"fmt"

	"spio/internal/mpi"
)

// exchangeCounts is a point-to-point helper: calling it puts the caller
// in the communication phase, but it issues no collectives, so its
// error is locally scoped.
func exchangeCounts(c *mpi.Comm) error {
	if c.Rank() == 0 {
		c.Isend(1, 7, []byte{1})
		return nil
	}
	if c.Rank() != 1 {
		return nil
	}
	data, _ := c.Recv(0, 7)
	if len(data) != 1 {
		return fmt.Errorf("collabort: malformed count message (%d bytes)", len(data))
	}
	return nil
}

// localWork cannot communicate at all; its error is locally scoped.
func localWork(n int) error {
	if n < 0 {
		return fmt.Errorf("collabort: bad n %d", n)
	}
	return nil
}

// agree is the agreement round: the Allreduce makes the outcome
// symmetric across ranks, so errors derived from it are agreed.
func agree(c *mpi.Comm, local error) error {
	flag := int64(0)
	if local != nil {
		flag = 1
	}
	if c.Allreduce(flag, mpi.OpSum) > 0 {
		return fmt.Errorf("collabort: write failed on some rank")
	}
	return nil
}

// buggyPipeline returns early on local errors after the exchange has
// started: ranks that did not fail proceed into the Barrier and hang.
func buggyPipeline(c *mpi.Comm, n int) error {
	if err := exchangeCounts(c); err != nil { // want "skips collective"
		return err
	}
	if err := localWork(n); err != nil { // want "skips collective"
		return err
	}
	c.Barrier()
	return nil
}

// fixedPipeline routes both failure modes through the agreement round:
// every exit between the exchange and the Barrier is symmetric. No
// finding.
func fixedPipeline(c *mpi.Comm, n int) error {
	exchErr := exchangeCounts(c)
	if err := agree(c, exchErr); err != nil {
		return err
	}
	if err := agree(c, localWork(n)); err != nil {
		return err
	}
	c.Barrier()
	return nil
}

// validate rejects bad input before any communication: the error is
// derived from arguments every rank shares, so the early return is
// symmetric. No finding.
func validate(c *mpi.Comm, n int) error {
	if err := localWork(n); err != nil {
		return err
	}
	c.Barrier()
	return exchangeCounts(c)
}

// abortThenReturn runs the agreement collective inside the guard body
// before leaving, so no peer is stranded. No finding.
func abortThenReturn(c *mpi.Comm, n int) error {
	c.Barrier()
	if err := localWork(n); err != nil {
		return agree(c, err)
	}
	if err := agree(c, nil); err != nil {
		return err
	}
	c.Barrier()
	return nil
}

// run mimics mpi.Run: the analyzer does not resolve the func value, but
// the literal's body is analyzed as its own scope.
func run(n int, fn func(c *mpi.Comm) error) error { return fn(nil) }

// buggyClosure is the common user shape: the rank body lives in a
// literal passed to the runner, and its local-error early return skips
// the Barrier just like a named function's would.
func buggyClosure(n int) error {
	return run(n, func(c *mpi.Comm) error {
		if err := exchangeCounts(c); err != nil { // want "skips collective"
			return err
		}
		c.Barrier()
		return nil
	})
}

// fixedClosure agrees first. No finding.
func fixedClosure(n int) error {
	return run(n, func(c *mpi.Comm) error {
		if err := agree(c, exchangeCounts(c)); err != nil {
			return err
		}
		c.Barrier()
		return nil
	})
}
