// Fixture for the lockorder analyzer: the three static deadlock shapes
// — re-acquiring a held mutex (sync mutexes are not reentrant), holding
// a mutex across a blocking operation, and acquiring two lock classes
// in opposite orders on different paths — plus the sanctioned shapes
// (Cond.Wait mailbox, select with default) that must stay clean.
package lockorder

import (
	"net"
	"sync"
)

// counter exercises self-deadlock, directly and through a helper.
type counter struct {
	mu sync.Mutex
	n  int
}

// Incr is the public locked entry point.
func (c *counter) Incr() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Get is the clean shape: acquire, read, release. No finding.
func (c *counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// reset re-acquires c.mu while already holding it: the goroutine
// deadlocks on itself.
func (c *counter) reset() {
	c.mu.Lock()
	c.mu.Lock() // want "re-acquires lockorder.counter.mu already held"
	c.n = 0
	c.mu.Unlock()
	c.mu.Unlock()
}

// incrLocked hides the second acquisition behind a call: Incr's lock
// summary carries counter.mu up to this call site.
func (c *counter) incrLocked() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Incr() // want "callee re-acquires it"
}

// mailbox exercises lock-held-across-blocking: a channel send parks the
// goroutine while every other acquirer of mu queues behind it.
type mailbox struct {
	mu sync.Mutex
	ch chan int
}

// post sends while holding mu: the consumer's pace decides how long
// every other poster waits.
func (m *mailbox) post(v int) {
	m.mu.Lock()
	m.ch <- v // want "holds lockorder.mailbox.mu .* across channel send"
	m.mu.Unlock()
}

// flush parks on the channel; with no lock held here it is clean on
// its own, but its summary says "may block on channel send".
func (m *mailbox) flush() {
	m.ch <- 0
}

// postAll blocks through the helper: the blocking operation is not
// visible in this body, only in flush's summary.
func (m *mailbox) postAll(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := 0; i < n; i++ {
		m.flush() // want "may block on channel send"
	}
}

// tryPost is the non-blocking variant: a select with a default clause
// never parks, so holding mu across it is fine. No finding.
func (m *mailbox) tryPost(v int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	select {
	case m.ch <- v:
		return true
	default:
		return false
	}
}

// registry and journal exercise the AB/BA inversion: the two functions
// below acquire the two classes in opposite orders, so one goroutine in
// each suffices to deadlock both.
type registry struct {
	mu    sync.Mutex
	names map[int]string
}

type journal struct {
	mu      sync.Mutex
	entries []string
}

func lookupThenLog(r *registry, j *journal, id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j.mu.Lock() // want "lock order inversion"
	defer j.mu.Unlock()
	j.entries = append(j.entries, r.names[id])
}

func logThenLookup(r *registry, j *journal, id int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r.mu.Lock() // want "lock order inversion"
	defer r.mu.Unlock()
	j.entries = append(j.entries, r.names[id])
}

// gate is the sanctioned Cond.Wait mailbox: Wait releases mu while
// parked, so waiting under the lock is the idiom, not a finding.
type gate struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ready bool
}

func (g *gate) await() {
	g.mu.Lock()
	for !g.ready {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

func (g *gate) open() {
	g.mu.Lock()
	g.ready = true
	g.mu.Unlock()
	g.cond.Broadcast()
}

// wire is the deliberate exception: the mutex dedicates the conn to one
// request/response exchange, so holding it across the socket I/O is the
// protocol — recorded with a //spio:allow and its reason.
type wire struct {
	mu   sync.Mutex
	conn net.Conn
}

func (w *wire) exchange(req []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	//spio:allow lockorder -- fixture: mu dedicates the conn to one exchange; holding it across the I/O is the protocol
	_, err := w.conn.Write(req) // want "across net.Conn.Write"
	return err
}
