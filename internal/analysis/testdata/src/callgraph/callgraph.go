// Package callgraph pins the resolver's conservative edges: the shapes
// staticCallee deliberately refuses to resolve (method-value bindings,
// calls through function-valued fields) and the ones it must keep
// resolving (direct calls, deferred direct calls). callgraph_test.go
// asserts the resolution result for each marked call and that the
// analyzers stay silent — degraded knowledge must never invent phantom
// behaviour.
package callgraph

type Conn struct {
	hook func()
	n    int
}

func (c *Conn) Close() {
	c.n++
}

// Direct pins the baseline: a method call on a concrete receiver
// resolves.
func Direct(c *Conn) {
	c.Close()
}

// MethodValue pins the documented hole: binding a method to a variable
// erases the target — the later call is a func-value call and resolves
// to nil even though the binding is one line up.
func MethodValue(c *Conn) {
	f := c.Close
	f()
}

// Deferred pins that defer is transparent to resolution: the call
// target is as statically known as at a plain call site.
func Deferred(c *Conn) {
	defer c.Close()
}

// GoField pins the spawn-through-field hole: the goroutine body lives
// behind a func-typed field, so the go statement resolves to nil — the
// spawned work is invisible to goleak's exit evidence and contributes
// no racegate origin.
func GoField(c *Conn) {
	go c.hook()
}
