// Fixture for the collorder analyzer: rank-guarded collectives are
// flagged; rank-balanced shapes — including the rank-0-writes-metadata
// pattern internal/core uses — are not.
package collorder

import "spio/internal/mpi"

// A collective issued only by rank 0: the other ranks never enter it.
func rankGuardedBarrier(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Barrier() // want "issued by only some ranks"
	}
}

// Rank-dependence tracked through locals: me derives from Rank.
func rankDerivedVar(c *mpi.Comm) {
	r := c.Rank()
	me := r % 2
	if me == 0 {
		c.Bcast(0, nil) // want "issued by only some ranks"
	}
}

// A rank-guarded early return skips the Allreduce on non-zero ranks.
func earlyReturnSkips(c *mpi.Comm) int64 {
	if c.Rank() != 0 {
		return 0
	}
	return c.Allreduce(1, mpi.OpSum) // want "skipped by ranks that leave early"
}

// A rank-dependent loop bound repeats the collective a different number
// of times per rank.
func rankBoundLoop(c *mpi.Comm) {
	for i := 0; i < c.Rank(); i++ {
		c.Barrier() // want "repeats under"
	}
}

// Balanced branches: every rank issues the same collective sequence, so
// the guard is fine (the Exscan root/non-root shape).
func balancedBranches(c *mpi.Comm, parts [][]byte) []byte {
	if c.Rank() == 0 {
		return c.Scatter(0, parts)
	}
	return c.Scatter(0, nil)
}

// The rank-0-writes-metadata pattern used by internal/core: the
// collective runs on every rank first, the rank guard only gates
// rank-local file work afterwards. No finding.
func rank0Metadata(c *mpi.Comm, payload []byte) [][]byte {
	gathered := c.Allgather(payload)
	if c.Rank() != 0 {
		return nil
	}
	return gathered
}

// A rank-uniform condition (same on all ranks) may guard collectives.
func uniformGuard(c *mpi.Comm, everyone bool) {
	if everyone {
		c.Barrier()
	}
}

// syncAndCount hides a collective one call deep: its summary is the
// inlined sequence [Barrier Allreduce].
func syncAndCount(c *mpi.Comm, n int64) int64 {
	c.Barrier()
	return c.Allreduce(n, mpi.OpSum)
}

// Interprocedural: the rank guard is on the helper call, not on any
// visible Comm method. The diagnostic names the helper's collective
// sequence and the call path to the blocking collective.
func rankGuardedHelper(c *mpi.Comm) {
	if c.Rank() == 0 {
		syncAndCount(c, 1) // want "call path: collorder.syncAndCount → Comm.Barrier"
	}
}

// The same helper on both arms balances exactly like a direct
// collective would: the inlined signatures compare equal. No finding.
func balancedHelper(c *mpi.Comm) int64 {
	if c.Rank() == 0 {
		return syncAndCount(c, 1)
	}
	return syncAndCount(c, 0)
}

// Two levels deep: outer wraps syncAndCount, and the early return skips
// it on non-zero ranks.
func deepHelper(c *mpi.Comm) int64 {
	return syncAndCount(c, 2)
}

func earlyReturnSkipsHelper(c *mpi.Comm) int64 {
	if c.Rank() != 0 {
		return 0
	}
	return deepHelper(c) // want "call path: collorder.deepHelper → collorder.syncAndCount → Comm.Barrier"
}
