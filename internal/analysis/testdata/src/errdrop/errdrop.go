// Fixture for the errdrop analyzer: error and WriteResult returns from
// the spio API surface must not be silently dropped.
package errdrop

import (
	"spio/internal/core"
	"spio/internal/format"
	"spio/internal/mpi"
	"spio/internal/particle"
)

// A bare statement drops both the WriteResult and the error.
func droppedWrite(c *mpi.Comm, cfg core.WriteConfig, buf *particle.Buffer) {
	core.Write(c, "out", cfg, buf) // want "is dropped: it reports both an error and the rank's WriteResult"
}

// A format encode call's error silently dropped.
func droppedEncode(path string, hdr format.DataHeader, buf *particle.Buffer) {
	format.WriteDataFile(nil, path, hdr, buf) // want "result of format.WriteDataFile is dropped"
}

// Blanking the error while binding the payload hides decode failures.
func blankedError() *particle.Schema {
	s, _ := particle.NewSchema(nil) // want "error from particle.NewSchema is blanked"
	return s
}

// Keeping the error while discarding the WriteResult is the documented
// non-aggregator pattern. No finding.
func writeResultDiscarded(c *mpi.Comm, cfg core.WriteConfig, buf *particle.Buffer) error {
	_, err := core.Write(c, "out", cfg, buf)
	return err
}

// Deferred teardown and explicit single-value discards are idiomatic.
// No finding.
func deferredClose(df *format.DataFile) {
	defer df.Close()
	_ = df.Close()
}

// writeBoth wraps the watched API: its error result carries
// core.Write's error, so per its summary it is watched too.
func writeBoth(c *mpi.Comm, cfg core.WriteConfig, a, b *particle.Buffer) error {
	if _, err := core.Write(c, "a", cfg, a); err != nil {
		return err
	}
	_, err := core.Write(c, "b", cfg, b)
	return err
}

// Interprocedural: dropping the helper's result drops the API error it
// propagates; the diagnostic names the call path.
func droppedHelper(c *mpi.Comm, cfg core.WriteConfig, a, b *particle.Buffer) {
	writeBoth(c, cfg, a, b) // want "call path: errdrop.writeBoth → core.Write"
}

// countAndWrite returns a count alongside the propagated error.
func countAndWrite(c *mpi.Comm, cfg core.WriteConfig, buf *particle.Buffer) (int, error) {
	_, err := core.Write(c, "out", cfg, buf)
	return buf.Len(), err
}

// Interprocedural: blanking the helper's error while keeping the count
// hides the propagated write failure.
func blankedHelperError(c *mpi.Comm, cfg core.WriteConfig, buf *particle.Buffer) int {
	n, _ := countAndWrite(c, cfg, buf) // want "propagates core.Write"
	return n
}

// Handling the helper's error is the point of the propagation summary.
// No finding.
func okHelperHandled(c *mpi.Comm, cfg core.WriteConfig, buf *particle.Buffer) error {
	return writeBoth(c, cfg, buf, buf)
}
