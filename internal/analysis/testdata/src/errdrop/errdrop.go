// Fixture for the errdrop analyzer: error and WriteResult returns from
// the spio API surface must not be silently dropped.
package errdrop

import (
	"spio/internal/core"
	"spio/internal/format"
	"spio/internal/mpi"
	"spio/internal/particle"
)

// A bare statement drops both the WriteResult and the error.
func droppedWrite(c *mpi.Comm, cfg core.WriteConfig, buf *particle.Buffer) {
	core.Write(c, "out", cfg, buf) // want "is dropped: it reports both an error and the rank's WriteResult"
}

// A format encode call's error silently dropped.
func droppedEncode(path string, hdr format.DataHeader, buf *particle.Buffer) {
	format.WriteDataFile(path, hdr, buf) // want "result of format.WriteDataFile is dropped"
}

// Blanking the error while binding the payload hides decode failures.
func blankedError() *particle.Schema {
	s, _ := particle.NewSchema(nil) // want "error from particle.NewSchema is blanked"
	return s
}

// Keeping the error while discarding the WriteResult is the documented
// non-aggregator pattern. No finding.
func writeResultDiscarded(c *mpi.Comm, cfg core.WriteConfig, buf *particle.Buffer) error {
	_, err := core.Write(c, "out", cfg, buf)
	return err
}

// Deferred teardown and explicit single-value discards are idiomatic.
// No finding.
func deferredClose(df *format.DataFile) {
	defer df.Close()
	_ = df.Close()
}
