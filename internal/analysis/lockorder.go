package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder flags the three static deadlock shapes the serving tier is
// exposed to: re-acquiring a mutex the goroutine already holds
// (sync.Mutex is not reentrant — self-deadlock), holding a mutex across
// a blocking operation (channel send/receive, select, WaitGroup.Wait,
// collective/point-to-point communication, net.Conn I/O), and acquiring
// two mutexes in opposite orders on different code paths (the classic
// AB/BA inversion).
//
// The analysis is interprocedural: every loaded function gets a lock
// summary (the set of mutexes it may transitively acquire, and whether
// it may transitively block), propagated through the call graph, so a
// helper that hides a Lock or a channel receive is seen at every call
// site. Lock identity is by declaration — "pkg.Type.field" for struct
// mutexes, "pkg.func:name" for locals — so two instances of the same
// struct share an identity: the analysis reasons about lock *classes*,
// which is what a global order discipline is about (and a soundness
// boundary DESIGN.md §8.3 spells out).
//
// sync.Cond.Wait is special-cased: it releases its associated mutex
// while parked, so the canonical `mu.Lock(); for !ready { cond.Wait() }`
// mailbox/barrier idiom is not a finding; the function is still marked
// "may block" so a *caller* holding another lock across it is.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "flags self-deadlocks, locks held across blocking operations, and inconsistent lock-acquisition order",
	Run:  runLockOrder,
}

// lockSummary is a function's transitive lock behaviour.
type lockSummary struct {
	// acquires maps each lock class the function may (transitively)
	// acquire to a representative call path.
	acquires map[string]*lockAcq
	// blocks is non-nil when the function may (transitively) perform a
	// blocking operation on its own schedule.
	blocks *lockBlock
}

type lockAcq struct {
	write bool // a write acquisition (Lock, not RLock) exists
	path  []string
}

type lockBlock struct {
	desc string
	path []string
}

// heldLock is one element of the abstract held set during the
// per-function walk.
type heldLock struct {
	key   string
	write bool
	pos   token.Pos
}

func runLockOrder(pass *Pass) {
	p := pass.Prog
	p.ensureLockOrder()
	pkgPath := pass.Pkg.Path()
	for _, d := range p.lockFindings {
		if d.pkg == pkgPath {
			pass.Reportf(d.pos, "%s", d.msg)
		}
	}
}

// lockEdge is one observed acquisition order: to was acquired while
// from was held.
type lockEdge struct {
	pkg  string
	pos  token.Pos
	fn   string
	from string
	to   string
}

// ensureLockOrder runs the whole-program lock analysis once: build
// per-function summaries, walk every function with an abstract held
// set, and cross-check the global acquisition-order graph.
func (p *Program) ensureLockOrder() {
	if p.lockReady {
		return
	}
	p.lockReady = true
	p.buildLockSummaries()

	var edges []lockEdge
	for fn, fi := range p.Funcs {
		w := &lockWalker{
			prog:    p,
			fi:      fi,
			info:    fi.Pkg.Info,
			fnName:  funcDisplayName(fn),
			flagged: make(map[token.Pos]bool),
			blocked: make(map[string]bool),
		}
		w.walkStmts(fi.Decl.Body.List, nil)
		edges = append(edges, w.edges...)
	}

	// Pairwise order check: an AB edge plus a BA edge anywhere in the
	// program is an inversion; report at both sites.
	first := make(map[[2]string]lockEdge)
	for _, e := range edges {
		k := [2]string{e.from, e.to}
		if _, ok := first[k]; !ok {
			first[k] = e
		}
	}
	reported := make(map[[2]string]bool)
	for k, e := range first {
		rk := [2]string{k[1], k[0]}
		rev, ok := first[rk]
		if !ok || reported[k] || reported[rk] {
			continue
		}
		reported[k], reported[rk] = true, true
		p.lockFindings = append(p.lockFindings, progDiag{
			pkg: e.pkg,
			pos: e.pos,
			msg: fmt.Sprintf("lock order inversion: %s acquires %s while holding %s, but %s acquires them in the opposite order at %s",
				e.fn, lockShort(e.to), lockShort(e.from), rev.fn, p.posString(rev.pkg, rev.pos)),
		})
		p.lockFindings = append(p.lockFindings, progDiag{
			pkg: rev.pkg,
			pos: rev.pos,
			msg: fmt.Sprintf("lock order inversion: %s acquires %s while holding %s, but %s acquires them in the opposite order at %s",
				rev.fn, lockShort(rev.to), lockShort(rev.from), e.fn, p.posString(e.pkg, e.pos)),
		})
	}
	sort.Slice(p.lockFindings, func(i, j int) bool { return p.lockFindings[i].pos < p.lockFindings[j].pos })
}

// posString renders pos using the owning package's file set (all loaded
// packages share one).
func (p *Program) posString(pkgPath string, pos token.Pos) string {
	for _, pkg := range p.Pkgs {
		if pkg.Types.Path() == pkgPath {
			return pkg.Fset.Position(pos).String()
		}
	}
	if len(p.Pkgs) > 0 {
		return p.Pkgs[0].Fset.Position(pos).String()
	}
	return "?"
}

// lockShort trims the package path off a lock key for diagnostics.
func lockShort(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// buildLockSummaries computes every function's transitive acquire set
// and may-block bit: one direct scan per function, then a closure over
// the call graph (fixpoint; cycles converge because the sets only
// grow).
func (p *Program) buildLockSummaries() {
	type callOut struct {
		fn   *types.Func
		name string
	}
	callees := make(map[*types.Func][]callOut)
	for fn, fi := range p.Funcs {
		s := &lockSummary{acquires: make(map[string]*lockAcq)}
		name := funcDisplayName(fn)
		info := fi.Pkg.Info
		var visit func(ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.SendStmt:
				s.noteBlock("channel send", name)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					s.noteBlock("channel receive", name)
				}
			case *ast.SelectStmt:
				if !selectHasDefault(n) {
					s.noteBlock("select", name)
					return true
				}
				// A select with a default never parks: its comm clauses
				// are polls, not blocking sends/receives, so only the
				// clause bodies are scanned.
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, st := range cc.Body {
							ast.Inspect(st, visit)
						}
					}
				}
				return false
			case *ast.RangeStmt:
				if isChanType(info.Types[n.X].Type) {
					s.noteBlock("range over channel", name)
				}
			case *ast.CallExpr:
				if key, write, ok := lockAcquire(info, n); ok {
					if a := s.acquires[key]; a == nil {
						s.acquires[key] = &lockAcq{write: write, path: []string{name}}
					} else if write {
						a.write = true
					}
					return true
				}
				if desc, ok := blockingCall(info, n); ok {
					s.noteBlock(desc, name)
					return true
				}
				if callee := p.calleeFunc(info, n); callee != nil {
					if _, loaded := p.Funcs[callee]; loaded {
						callees[fn] = append(callees[fn], callOut{fn: callee, name: funcDisplayName(callee)})
					}
				}
			}
			return true
		}
		ast.Inspect(fi.Decl.Body, visit)
		p.lockSums[fn] = s
	}
	for changed := true; changed; {
		changed = false
		for fn, outs := range callees {
			s := p.lockSums[fn]
			name := funcDisplayName(fn)
			for _, out := range outs {
				cs := p.lockSums[out.fn]
				if cs == nil {
					continue
				}
				for key, ca := range cs.acquires {
					if a := s.acquires[key]; a == nil {
						s.acquires[key] = &lockAcq{write: ca.write, path: append([]string{name}, ca.path...)}
						changed = true
					} else if ca.write && !a.write {
						a.write = true
						changed = true
					}
				}
				if cs.blocks != nil && s.blocks == nil {
					s.blocks = &lockBlock{desc: cs.blocks.desc, path: append([]string{name}, cs.blocks.path...)}
					changed = true
				}
			}
		}
	}
}

func (s *lockSummary) noteBlock(desc, fnName string) {
	if s.blocks == nil {
		s.blocks = &lockBlock{desc: desc, path: []string{fnName}}
	}
}

// lockWalker runs the abstract held-set interpretation over one
// function body.
type lockWalker struct {
	prog   *Program
	fi     *FuncInfo
	info   *types.Info
	fnName string
	// flagged dedups findings per position; blocked limits
	// held-across-blocking findings to one per lock per function.
	flagged map[token.Pos]bool
	blocked map[string]bool
	edges   []lockEdge
}

func (w *lockWalker) report(pos token.Pos, format string, args ...any) {
	if w.flagged[pos] {
		return
	}
	w.flagged[pos] = true
	w.prog.lockFindings = append(w.prog.lockFindings, progDiag{
		pkg: w.fi.Pkg.Types.Path(),
		pos: pos,
		msg: fmt.Sprintf(format, args...),
	})
}

// walkStmts interprets stmts in order, threading the held-lock set
// through; the returned slice is the held set at fall-through.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, st := range stmts {
		held = w.walkStmt(st, held)
	}
	return held
}

func copyHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

// mergeHeld unions fall-through states of sibling branches: a lock held
// on any arm is conservatively held after the join.
func mergeHeld(a, b []heldLock) []heldLock {
	out := copyHeld(a)
	for _, h := range b {
		found := false
		for _, g := range out {
			if g.key == h.key {
				found = true
				break
			}
		}
		if !found {
			out = append(out, h)
		}
	}
	return out
}

// terminates reports whether a statement list cannot fall through
// (trailing return or panic), so its held state is excluded from the
// branch merge.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (w *lockWalker) walkStmt(st ast.Stmt, held []heldLock) []heldLock {
	switch st := st.(type) {
	case *ast.ExprStmt:
		return w.scanExpr(st.X, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			held = w.scanExpr(e, held)
		}
		for _, e := range st.Lhs {
			held = w.scanExpr(e, held)
		}
		return held
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						held = w.scanExpr(e, held)
					}
				}
			}
		}
		return held
	case *ast.SendStmt:
		held = w.scanExpr(st.Value, held)
		w.blockingOp(st.Pos(), "channel send", held)
		return held
	case *ast.IncDecStmt:
		return w.scanExpr(st.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock releases at return: for the rest of the walk
		// the lock stays held (which is the point — blocking under a
		// deferred unlock is still blocking under the lock). Deferred
		// Lock calls and other deferred work run outside the statement
		// order, so they are not interpreted.
		if _, ok := lockRelease(w.info, st.Call); ok {
			return held
		}
		for _, a := range st.Call.Args {
			held = w.scanExpr(a, held)
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			held = w.scanExpr(e, held)
		}
		return held
	case *ast.IfStmt:
		if st.Init != nil {
			held = w.walkStmt(st.Init, held)
		}
		held = w.scanExpr(st.Cond, held)
		thenHeld := w.walkStmts(st.Body.List, copyHeld(held))
		elseHeld := copyHeld(held)
		elseTerm := false
		if st.Else != nil {
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				elseHeld = w.walkStmts(e.List, elseHeld)
				elseTerm = terminates(e.List)
			case *ast.IfStmt:
				elseHeld = w.walkStmt(e, elseHeld)
			}
		}
		switch {
		case terminates(st.Body.List) && elseTerm:
			return held // both arms leave; keep entry state for dead code after
		case terminates(st.Body.List):
			return elseHeld
		case elseTerm:
			return thenHeld
		default:
			return mergeHeld(thenHeld, elseHeld)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held = w.walkStmt(st.Init, held)
		}
		if st.Cond != nil {
			held = w.scanExpr(st.Cond, held)
		}
		body := w.walkStmts(st.Body.List, copyHeld(held))
		if st.Post != nil {
			body = w.walkStmt(st.Post, body)
		}
		return mergeHeld(held, body)
	case *ast.RangeStmt:
		held = w.scanExpr(st.X, held)
		if isChanType(w.info.Types[st.X].Type) {
			w.blockingOp(st.Pos(), "range over channel", held)
		}
		body := w.walkStmts(st.Body.List, copyHeld(held))
		return mergeHeld(held, body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = w.walkStmt(st.Init, held)
		}
		if st.Tag != nil {
			held = w.scanExpr(st.Tag, held)
		}
		out := copyHeld(held)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				held = w.scanExpr(e, held)
			}
			arm := w.walkStmts(cc.Body, copyHeld(held))
			if !terminates(cc.Body) {
				out = mergeHeld(out, arm)
			}
		}
		return out
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			held = w.walkStmt(st.Init, held)
		}
		out := copyHeld(held)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			arm := w.walkStmts(cc.Body, copyHeld(held))
			if !terminates(cc.Body) {
				out = mergeHeld(out, arm)
			}
		}
		return out
	case *ast.SelectStmt:
		if !selectHasDefault(st) {
			w.blockingOp(st.Pos(), "select", held)
		}
		out := copyHeld(held)
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			armHeld := copyHeld(held)
			if cc.Comm != nil {
				armHeld = w.walkCommStmt(cc.Comm, armHeld)
			}
			arm := w.walkStmts(cc.Body, armHeld)
			if !terminates(cc.Body) {
				out = mergeHeld(out, arm)
			}
		}
		return out
	case *ast.BlockStmt:
		return w.walkStmts(st.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, held)
	case *ast.GoStmt:
		// The spawned goroutine runs on its own schedule; starting it
		// does not block. Its literal body is walked independently with
		// an empty held set (the caller's locks are not held there in
		// the blocking sense — holding them *is* visible via the data
		// the closure captures, which is the race detector's domain).
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, nil)
		}
		return held
	default:
		return held
	}
}

// walkCommStmt interprets one select communication clause. The send or
// receive parks as part of the select itself — reported at the select
// when it has no default clause, and never when it does — so only the
// operand expressions are scanned, with the receive arrow stripped.
func (w *lockWalker) walkCommStmt(st ast.Stmt, held []heldLock) []heldLock {
	switch st := st.(type) {
	case *ast.SendStmt:
		held = w.scanExpr(st.Chan, held)
		return w.scanExpr(st.Value, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			held = w.scanExpr(stripArrow(e), held)
		}
		for _, e := range st.Lhs {
			held = w.scanExpr(e, held)
		}
		return held
	case *ast.ExprStmt:
		return w.scanExpr(stripArrow(st.X), held)
	default:
		return w.walkStmt(st, held)
	}
}

// stripArrow unwraps the receive operator off a comm-clause expression.
func stripArrow(e ast.Expr) ast.Expr {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return u.X
	}
	return e
}

// scanExpr visits an expression in evaluation order, interpreting lock
// operations and blocking operations against the current held set.
func (w *lockWalker) scanExpr(e ast.Expr, held []heldLock) []heldLock {
	if e == nil {
		return held
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		for _, a := range e.Args {
			held = w.scanExpr(a, held)
		}
		held = w.scanExpr(e.Fun, held)
		return w.applyCall(e, held)
	case *ast.UnaryExpr:
		held = w.scanExpr(e.X, held)
		if e.Op == token.ARROW {
			w.blockingOp(e.Pos(), "channel receive", held)
		}
		return held
	case *ast.BinaryExpr:
		held = w.scanExpr(e.X, held)
		return w.scanExpr(e.Y, held)
	case *ast.ParenExpr:
		return w.scanExpr(e.X, held)
	case *ast.SelectorExpr:
		return w.scanExpr(e.X, held)
	case *ast.IndexExpr:
		held = w.scanExpr(e.X, held)
		return w.scanExpr(e.Index, held)
	case *ast.SliceExpr:
		held = w.scanExpr(e.X, held)
		held = w.scanExpr(e.Low, held)
		held = w.scanExpr(e.High, held)
		return w.scanExpr(e.Max, held)
	case *ast.StarExpr:
		return w.scanExpr(e.X, held)
	case *ast.TypeAssertExpr:
		return w.scanExpr(e.X, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			held = w.scanExpr(el, held)
		}
		return held
	case *ast.KeyValueExpr:
		return w.scanExpr(e.Value, held)
	default:
		// FuncLit bodies run on their own schedule; identifiers and
		// literals are inert.
		return held
	}
}

// applyCall interprets one call against the held set: lock/unlock,
// cond.Wait, direct blocking calls, and summarized callees.
func (w *lockWalker) applyCall(call *ast.CallExpr, held []heldLock) []heldLock {
	if key, write, ok := lockAcquire(w.info, call); ok {
		for _, h := range held {
			if h.key == key && (h.write || write) {
				w.report(call.Pos(), "%s re-acquires %s already held since %s (self-deadlock: sync mutexes are not reentrant)",
					w.fnName, lockShort(key), w.pos(h.pos))
				return held
			}
		}
		// Record order edges against everything currently held.
		for _, h := range held {
			w.edges = append(w.edges, lockEdge{
				pkg: w.fi.Pkg.Types.Path(), pos: call.Pos(), fn: w.fnName, from: h.key, to: key,
			})
		}
		return append(copyHeld(held), heldLock{key: key, write: write, pos: call.Pos()})
	}
	if key, ok := lockRelease(w.info, call); ok {
		out := held[:0:0]
		removed := false
		for _, h := range held {
			if !removed && h.key == key {
				removed = true
				continue
			}
			out = append(out, h)
		}
		// Releasing a lock acquired elsewhere (hand-off idioms) is not
		// interpreted; the set is simply unchanged.
		if !removed {
			return held
		}
		return out
	}
	if isCondWait(w.info, call) {
		// Cond.Wait releases its own mutex while parked; which held
		// lock that is cannot be resolved statically, so no
		// held-across finding is raised here. The enclosing function's
		// summary still says "may block", which flags callers that hold
		// *another* lock across it.
		return held
	}
	if desc, ok := blockingCall(w.info, call); ok {
		w.blockingOp(call.Pos(), desc, held)
		return held
	}
	callee := w.prog.calleeFunc(w.info, call)
	if callee == nil {
		return held
	}
	sum := w.prog.lockSums[callee]
	if sum == nil {
		return held
	}
	calleeName := funcDisplayName(callee)
	// Self-deadlock through a helper: the callee may acquire a lock
	// class we already hold.
	for _, h := range held {
		if a, ok := sum.acquires[h.key]; ok && (h.write || a.write) {
			w.report(call.Pos(), "%s calls %s while holding %s, and the callee re-acquires it (self-deadlock; via %s)",
				w.fnName, calleeName, lockShort(h.key), strings.Join(a.path, " → "))
		}
	}
	// Order edges through the helper.
	for _, h := range held {
		for key := range sum.acquires {
			if key == h.key {
				continue
			}
			w.edges = append(w.edges, lockEdge{
				pkg: w.fi.Pkg.Types.Path(), pos: call.Pos(), fn: w.fnName, from: h.key, to: key,
			})
		}
	}
	if sum.blocks != nil && len(held) > 0 {
		w.blockingCallOp(call.Pos(), sum.blocks, held)
	}
	return held
}

// blockingOp reports held locks at a direct blocking operation.
func (w *lockWalker) blockingOp(pos token.Pos, desc string, held []heldLock) {
	if len(held) == 0 {
		return
	}
	h := held[len(held)-1]
	if w.blocked[h.key] {
		return
	}
	w.blocked[h.key] = true
	w.report(pos, "%s holds %s (acquired at %s) across %s — a slow or stuck peer stalls every other acquirer",
		w.fnName, lockShort(h.key), w.pos(h.pos), desc)
}

// blockingCallOp reports held locks at a call whose summary may block.
func (w *lockWalker) blockingCallOp(pos token.Pos, b *lockBlock, held []heldLock) {
	h := held[len(held)-1]
	if w.blocked[h.key] {
		return
	}
	w.blocked[h.key] = true
	w.report(pos, "%s holds %s (acquired at %s) across a call that may block on %s (via %s)",
		w.fnName, lockShort(h.key), w.pos(h.pos), b.desc, strings.Join(b.path, " → "))
}

func (w *lockWalker) pos(p token.Pos) string {
	return w.fi.Pkg.Fset.Position(p).String()
}

// --- lock and blocking-operation recognition ---

// mutexTypeName returns "Mutex" or "RWMutex" when t (after stripping
// pointers) is the sync type, else "".
func mutexTypeName(t types.Type) string {
	for _, name := range []string{"Mutex", "RWMutex"} {
		if isNamed(t, "sync", name) {
			return name
		}
	}
	return ""
}

// lockAcquire matches mu.Lock / mu.RLock / mu.TryLock on a sync mutex
// and returns the lock's class key. write distinguishes exclusive
// acquisition from read acquisition.
func lockAcquire(info *types.Info, call *ast.CallExpr) (key string, write bool, ok bool) {
	name, recv, okc := mutexCall(info, call)
	if !okc {
		return "", false, false
	}
	switch name {
	case "Lock", "TryLock":
		write = true
	case "RLock", "TryRLock":
		write = false
	default:
		return "", false, false
	}
	key = lockKey(info, recv)
	if key == "" {
		return "", false, false
	}
	return key, write, true
}

// lockRelease matches mu.Unlock / mu.RUnlock.
func lockRelease(info *types.Info, call *ast.CallExpr) (key string, ok bool) {
	name, recv, okc := mutexCall(info, call)
	if !okc {
		return "", false
	}
	if name != "Unlock" && name != "RUnlock" {
		return "", false
	}
	key = lockKey(info, recv)
	if key == "" {
		return "", false
	}
	return key, true
}

// mutexCall decomposes a method call on a sync.Mutex/RWMutex value
// into (method name, receiver expression).
func mutexCall(info *types.Info, call *ast.CallExpr) (name string, recv ast.Expr, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", nil, false
	}
	t := info.Types[sel.X].Type
	if t == nil || mutexTypeName(t) == "" {
		return "", nil, false
	}
	return sel.Sel.Name, sel.X, true
}

// lockKey names the lock *class* a receiver expression denotes:
//
//   - a struct field ("x.mu", "s.cache.mu"): the owning named type plus
//     the field name — "spio/internal/server.Server.mu";
//   - a package-level variable: "pkg/path.name";
//   - a local variable: "pkg/path.func:name" (function-scoped, so
//     same-named locals in different functions stay distinct).
//
// Identity by class (not instance) is what makes the cross-function
// order graph meaningful; the instance-aliasing imprecision it brings
// is documented in DESIGN.md §8.3.
func lockKey(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		base := info.Types[e.X].Type
		if base == nil {
			return ""
		}
		if ptr, ok := base.(*types.Pointer); ok {
			base = ptr.Elem()
		}
		if named, ok := base.(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
		}
		return ""
	case *ast.Ident:
		obj := identObj(info, e)
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		// Local: qualify by position so distinct locals do not collide
		// across functions (the scope pointer is not stable across
		// loads, the declaration offset is).
		return fmt.Sprintf("%s.local:%s@%d", obj.Pkg().Path(), obj.Name(), obj.Pos())
	default:
		return ""
	}
}

// isCondWait matches sync.Cond.Wait.
func isCondWait(info *types.Info, call *ast.CallExpr) bool {
	return methodOn(info, call, "sync", "Cond", "Wait")
}

// blockingCall classifies calls that park the goroutine: WaitGroup
// waits, collective/point-to-point communication on mpi.Comm, net.Conn
// I/O (directly or as an argument — the conn threaded into a frame
// writer blocks just the same), and time.Sleep.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if methodOn(info, call, "sync", "WaitGroup", "Wait") {
		return "WaitGroup.Wait", true
	}
	if pkgFunc(info, call, "time", "Sleep") {
		return "time.Sleep", true
	}
	if name := commMethodName(info, call); name != "" {
		if collectiveSet[name] {
			return "collective Comm." + name, true
		}
		switch name {
		case "Send", "Recv", "SendRecv", "Probe":
			return "Comm." + name, true
		}
	}
	// net.Conn I/O: a method on a conn, or a conn passed into any
	// non-builtin call (writeFrame(conn, …) blocks on the socket exactly
	// like conn.Write; append(conns, c) does not).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t := info.Types[sel.X].Type; t != nil && isNetConn(t) {
			return "net.Conn." + sel.Sel.Name, true
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return "", false
		}
	}
	for _, arg := range call.Args {
		if t := info.Types[arg].Type; t != nil && isNetConn(t) {
			return "net.Conn I/O", true
		}
	}
	return "", false
}

// isNetConn reports whether t is net.Conn or a concrete net conn type.
func isNetConn(t types.Type) bool {
	for _, name := range []string{"Conn", "TCPConn", "UnixConn", "UDPConn"} {
		if isNamed(t, "net", name) {
			return true
		}
	}
	return false
}

// isChanType reports whether t is a channel type.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// selectHasDefault reports whether a select statement has a default
// clause (making it non-blocking).
func selectHasDefault(st *ast.SelectStmt) bool {
	for _, c := range st.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
