package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder flags the three static deadlock shapes the serving tier is
// exposed to: re-acquiring a mutex the goroutine already holds
// (sync.Mutex is not reentrant — self-deadlock), holding a mutex across
// a blocking operation (channel send/receive, select, WaitGroup.Wait,
// collective/point-to-point communication, net.Conn I/O), and acquiring
// two mutexes in opposite orders on different code paths (the classic
// AB/BA inversion).
//
// The analysis is interprocedural: every loaded function gets a lock
// summary (the set of mutexes it may transitively acquire, and whether
// it may transitively block), propagated through the call graph, so a
// helper that hides a Lock or a channel receive is seen at every call
// site. Lock identity is by declaration — "pkg.Type.field" for struct
// mutexes, "pkg.func:name" for locals — so two instances of the same
// struct share an identity: the analysis reasons about lock *classes*,
// which is what a global order discipline is about (and a soundness
// boundary DESIGN.md §8.3 spells out).
//
// sync.Cond.Wait is special-cased: it releases its associated mutex
// while parked, so the canonical `mu.Lock(); for !ready { cond.Wait() }`
// mailbox/barrier idiom is not a finding; the function is still marked
// "may block" so a *caller* holding another lock across it is.
//
// The abstract held-set interpreter itself lives in lockset.go: it is
// shared with racegate, which runs it in observing mode to learn the
// lock set held at every struct-field access.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "flags self-deadlocks, locks held across blocking operations, and inconsistent lock-acquisition order",
	Run:  runLockOrder,
}

// lockSummary is a function's transitive lock behaviour.
type lockSummary struct {
	// acquires maps each lock class the function may (transitively)
	// acquire to a representative call path.
	acquires map[string]*lockAcq
	// blocks is non-nil when the function may (transitively) perform a
	// blocking operation on its own schedule.
	blocks *lockBlock
}

type lockAcq struct {
	write bool // a write acquisition (Lock, not RLock) exists
	path  []string
}

type lockBlock struct {
	desc string
	path []string
}

func runLockOrder(pass *Pass) {
	p := pass.Prog
	p.ensureLockOrder()
	pkgPath := pass.Pkg.Path()
	for _, d := range p.lockFindings {
		if d.pkg == pkgPath {
			pass.Reportf(d.pos, "%s", d.msg)
		}
	}
}

// lockEdge is one observed acquisition order: to was acquired while
// from was held.
type lockEdge struct {
	pkg  string
	pos  token.Pos
	fn   string
	from string
	to   string
}

// ensureLockOrder runs the whole-program lock analysis once: build
// per-function summaries, walk every function with an abstract held
// set, and cross-check the global acquisition-order graph.
func (p *Program) ensureLockOrder() {
	if p.lockReady {
		return
	}
	p.lockReady = true
	p.buildLockSummaries()

	var edges []lockEdge
	for fn, fi := range p.Funcs {
		w := &lockWalker{
			prog:    p,
			fi:      fi,
			info:    fi.Pkg.Info,
			fnName:  funcDisplayName(fn),
			flagged: make(map[token.Pos]bool),
			blocked: make(map[string]bool),
		}
		w.walkStmts(fi.Decl.Body.List, nil)
		edges = append(edges, w.edges...)
	}

	// Pairwise order check: an AB edge plus a BA edge anywhere in the
	// program is an inversion; report at both sites.
	first := make(map[[2]string]lockEdge)
	for _, e := range edges {
		k := [2]string{e.from, e.to}
		if _, ok := first[k]; !ok {
			first[k] = e
		}
	}
	reported := make(map[[2]string]bool)
	for k, e := range first {
		rk := [2]string{k[1], k[0]}
		rev, ok := first[rk]
		if !ok || reported[k] || reported[rk] {
			continue
		}
		reported[k], reported[rk] = true, true
		p.lockFindings = append(p.lockFindings, progDiag{
			pkg: e.pkg,
			pos: e.pos,
			msg: fmt.Sprintf("lock order inversion: %s acquires %s while holding %s, but %s acquires them in the opposite order at %s",
				e.fn, lockShort(e.to), lockShort(e.from), rev.fn, p.posString(rev.pkg, rev.pos)),
		})
		p.lockFindings = append(p.lockFindings, progDiag{
			pkg: rev.pkg,
			pos: rev.pos,
			msg: fmt.Sprintf("lock order inversion: %s acquires %s while holding %s, but %s acquires them in the opposite order at %s",
				rev.fn, lockShort(rev.to), lockShort(rev.from), e.fn, p.posString(e.pkg, e.pos)),
		})
	}
	sort.Slice(p.lockFindings, func(i, j int) bool { return p.lockFindings[i].pos < p.lockFindings[j].pos })
}

// posString renders pos using the owning package's file set (all loaded
// packages share one).
func (p *Program) posString(pkgPath string, pos token.Pos) string {
	for _, pkg := range p.Pkgs {
		if pkg.Types.Path() == pkgPath {
			return pkg.Fset.Position(pos).String()
		}
	}
	if len(p.Pkgs) > 0 {
		return p.Pkgs[0].Fset.Position(pos).String()
	}
	return "?"
}

// lockShort trims the package path off a lock key for diagnostics.
func lockShort(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// buildLockSummaries computes every function's transitive acquire set
// and may-block bit: one direct scan per function, then a closure over
// the call graph (fixpoint; cycles converge because the sets only
// grow).
func (p *Program) buildLockSummaries() {
	type callOut struct {
		fn   *types.Func
		name string
	}
	callees := make(map[*types.Func][]callOut)
	for fn, fi := range p.Funcs {
		s := &lockSummary{acquires: make(map[string]*lockAcq)}
		name := funcDisplayName(fn)
		info := fi.Pkg.Info
		var visit func(ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.SendStmt:
				s.noteBlock("channel send", name)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					s.noteBlock("channel receive", name)
				}
			case *ast.SelectStmt:
				if !selectHasDefault(n) {
					s.noteBlock("select", name)
					return true
				}
				// A select with a default never parks: its comm clauses
				// are polls, not blocking sends/receives, so only the
				// clause bodies are scanned.
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, st := range cc.Body {
							ast.Inspect(st, visit)
						}
					}
				}
				return false
			case *ast.RangeStmt:
				if isChanType(info.Types[n.X].Type) {
					s.noteBlock("range over channel", name)
				}
			case *ast.CallExpr:
				if key, write, ok := lockAcquire(info, n); ok {
					if a := s.acquires[key]; a == nil {
						s.acquires[key] = &lockAcq{write: write, path: []string{name}}
					} else if write {
						a.write = true
					}
					return true
				}
				if desc, ok := blockingCall(info, n); ok {
					s.noteBlock(desc, name)
					return true
				}
				if callee := p.calleeFunc(info, n); callee != nil {
					if _, loaded := p.Funcs[callee]; loaded {
						callees[fn] = append(callees[fn], callOut{fn: callee, name: funcDisplayName(callee)})
					}
				}
			}
			return true
		}
		ast.Inspect(fi.Decl.Body, visit)
		p.lockSums[fn] = s
	}
	for changed := true; changed; {
		changed = false
		for fn, outs := range callees {
			s := p.lockSums[fn]
			name := funcDisplayName(fn)
			for _, out := range outs {
				cs := p.lockSums[out.fn]
				if cs == nil {
					continue
				}
				for key, ca := range cs.acquires {
					if a := s.acquires[key]; a == nil {
						s.acquires[key] = &lockAcq{write: ca.write, path: append([]string{name}, ca.path...)}
						changed = true
					} else if ca.write && !a.write {
						a.write = true
						changed = true
					}
				}
				if cs.blocks != nil && s.blocks == nil {
					s.blocks = &lockBlock{desc: cs.blocks.desc, path: append([]string{name}, cs.blocks.path...)}
					changed = true
				}
			}
		}
	}
}

func (s *lockSummary) noteBlock(desc, fnName string) {
	if s.blocks == nil {
		s.blocks = &lockBlock{desc: desc, path: []string{fnName}}
	}
}
