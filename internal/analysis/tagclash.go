package analysis

import (
	"go/ast"
	"go/constant"

	"spio/internal/mpi"
)

// TagClash checks hard-coded point-to-point tag arguments against the
// tag namespace contract in internal/mpi: user tags live in
// [0, mpi.UserTagSpace), and every negative wire tag belongs to the
// reserved collective namespace (coll.go stamps communicator, sequence
// number and operation kind into it). A constant tag outside the user
// range either panics at runtime (wireTag rejects it) or — worse, if
// the runtime check ever relaxed — would cross-match collective
// traffic. AnyTag (-1) is accepted where matching is legal: Recv,
// Irecv and Probe.
var TagClash = &Analyzer{
	Name: "tagclash",
	Doc:  "flags hard-coded p2p tags outside the user tag space (reserved collective namespace)",
	Run:  runTagClash,
}

// p2pTagArg maps Comm p2p methods to the index of their tag argument;
// canRecvAny marks the methods whose tag may be AnyTag.
var p2pTagArg = map[string]struct {
	index      int
	canRecvAny bool
}{
	"Send":      {1, false},
	"SendOwned": {1, false},
	"Isend":     {1, false},
	"Recv":      {1, true},
	"Irecv":     {1, true},
	"SendRecv":  {2, false}, // the tag is also used for the send half
	"Probe":     {1, true},
}

func runTagClash(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := commMethodName(pass.Info, call)
			spec, watched := p2pTagArg[name]
			if !watched || len(call.Args) <= spec.index {
				return true
			}
			arg := call.Args[spec.index]
			tv, ok := pass.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
				return true
			}
			tag, exact := constant.Int64Val(tv.Value)
			if !exact {
				return true
			}
			switch {
			case tag == mpi.AnyTag && spec.canRecvAny:
				// fine: wildcard receive
			case tag < 0:
				pass.Reportf(arg.Pos(), "tag %d in %s collides with the reserved collective tag namespace (all negative wire tags): user tags must lie in [0, %d)", tag, name, mpi.UserTagSpace)
			case tag >= mpi.UserTagSpace:
				pass.Reportf(arg.Pos(), "tag %d in %s is outside the user tag space [0, %d): wireTag panics on it at runtime", tag, name, mpi.UserTagSpace)
			}
			return true
		})
	}
}
