package analysis

import (
	"go/ast"
	"go/token"
	"slices"
	"strings"

	"spio/internal/mpi"
)

// CollOrder flags collective Comm calls that are control-dependent on
// the calling rank. The SPMD contract (internal/mpi) requires every
// rank to issue the same collective sequence in the same order; a
// collective reachable by only some ranks deadlocks the others (or, with
// the runtime guard, panics mid-run). The analyzer is a conservative
// per-function approximation:
//
//   - A condition is rank-dependent if it mentions Comm.Rank(), the
//     mpi-internal rank field, or a local variable assigned from either.
//     Arithmetic derivations through other variables are tracked one
//     assignment at a time; data flowing through calls or fields is not.
//   - A rank-guarded branch is allowed only if every path issues the
//     same collective sequence: both arms of an if/else, every case of
//     a switch, or — for the guarded-early-return shape — the returning
//     branch versus the remainder of the block (which must also return,
//     so no divergent path escapes the comparison).
//   - The rank-0-does-the-metadata shape used by internal/core —
//     collectives first, `if c.Rank() != 0 { return }` afterwards, no
//     collectives beyond — is therefore accepted: the guarded exit and
//     the fall-through both issue the empty collective sequence.
//
// Function literals are separate analysis roots, and sequencing across
// goroutines (go statements) is out of scope.
var CollOrder = &Analyzer{
	Name: "collorder",
	Doc:  "flags collective operations control-dependent on the rank (collective-mismatch deadlocks)",
	Run:  runCollOrder,
}

// collectiveSet is the machine-readable collective list shared with the
// runtime guard.
var collectiveSet = func() map[string]bool {
	m := make(map[string]bool)
	for _, name := range mpi.CollectiveMethods() {
		m[name] = true
	}
	return m
}()

// collCall is one collective call site: a direct Comm collective, or a
// call to a helper whose summary (summary.go) issues collectives.
type collCall struct {
	name string
	pos  token.Pos
	// seq and path are set for helper calls only: the helper's inlined
	// collective signature and a representative call path to the
	// underlying collective.
	seq  []string
	path []string
}

// flowResult summarizes the collective behaviour of a statement region.
type flowResult struct {
	// sig is the canonical collective sequence signature of the region
	// (loop bodies collapse to one for{...} element).
	sig []string
	// calls are the individual collective call sites, for reporting.
	calls []collCall
	// term reports that every path through the region leaves the
	// function (return / branch out / panic-free fallthrough ends).
	term bool
	// guard reports that a rank-dependent early exit occurred, so any
	// later collective in an enclosing region is rank-divergent.
	guard bool
}

func runCollOrder(pass *Pass) {
	for _, file := range pass.Files {
		funcBodies(file, func(body *ast.BlockStmt) {
			w := &collWalker{
				pass:     pass,
				rankObjs: rankDerivedVars(pass, body),
				flagged:  make(map[token.Pos]bool),
			}
			w.walkStmts(body.List)
		})
	}
}

type collWalker struct {
	pass *Pass
	// rankObjs holds the types.Objects of locals derived from the rank.
	rankObjs map[any]bool
	flagged  map[token.Pos]bool
	// silent disables reporting: summary.go reuses the walker to compute
	// a function's collective signature without emitting diagnostics.
	silent bool
}

// flag reports one divergent collective call, once. Helper calls are
// reported with the helper's collective sequence and a call path, so
// the reader can see which function deep in the tree actually blocks.
func (w *collWalker) flag(cc collCall, guardPos token.Pos, why string) {
	if w.silent || w.flagged[cc.pos] {
		return
	}
	w.flagged[cc.pos] = true
	g := w.pass.Fset.Position(guardPos)
	if len(cc.seq) > 0 {
		w.pass.Reportf(cc.pos, "call to %s (collective sequence [%s]; call path: %s) %s rank-dependent guard at line %d: every rank must issue the same collective sequence",
			cc.name, strings.Join(cc.seq, " "), strings.Join(cc.path, " → "), why, g.Line)
		return
	}
	w.pass.Reportf(cc.pos, "collective %s %s rank-dependent guard at line %d: every rank must issue the same collective sequence", cc.name, why, g.Line)
}

func (w *collWalker) flagAll(calls []collCall, guardPos token.Pos, why string) {
	for _, cc := range calls {
		w.flag(cc, guardPos, why)
	}
}

// walkStmts analyzes one statement list.
func (w *collWalker) walkStmts(stmts []ast.Stmt) flowResult {
	var out flowResult
	for i, s := range stmts {
		if out.term {
			break // unreachable
		}
		// The guarded-early-return shape needs the tail of this block,
		// so rank-guarded ifs with a terminating branch are handled
		// against stmts[i+1:] here rather than inside walkStmt.
		if ifs, ok := s.(*ast.IfStmt); ok {
			if done, res := w.rankGuardedExit(ifs, stmts[i+1:], out); done {
				out = res
				return out
			}
		}
		r := w.walkStmt(s)
		if out.guard {
			w.flagAll(r.calls, s.Pos(), "is unreachable for ranks taken out by the")
		}
		out.sig = append(out.sig, r.sig...)
		out.calls = append(out.calls, r.calls...)
		out.term = r.term
		out.guard = out.guard || r.guard
	}
	return out
}

// rankGuardedExit handles `if <rank-dep> { ...; return }` (or an else
// arm that returns) against the remainder of the enclosing block. It
// reports whether it consumed the rest of the block.
func (w *collWalker) rankGuardedExit(ifs *ast.IfStmt, tail []ast.Stmt, sofar flowResult) (bool, flowResult) {
	if !w.isRankExpr(ifs.Cond) {
		return false, flowResult{}
	}
	then := w.walkStmts(ifs.Body.List)
	var els flowResult
	hasElse := ifs.Else != nil
	if hasElse {
		els = w.walkElse(ifs.Else)
	}
	if !then.term && !els.term {
		return false, flowResult{}
	}
	// One arm leaves the function. The ranks taking it issue that arm's
	// collectives; everyone else issues the other arm's plus the tail's.
	exit, rest := then, els
	if !then.term {
		exit, rest = els, then
	}
	tailRes := w.walkStmts(tail)
	staySig := append(append([]string{}, rest.sig...), tailRes.sig...)
	balanced := slices.Equal(exit.sig, staySig) && (tailRes.term || rest.term)
	out := sofar
	if cond := exprColls(w.pass, ifs.Cond); len(cond.calls) > 0 {
		out.sig = append(out.sig, cond.sig...)
		out.calls = append(out.calls, cond.calls...)
	}
	out.calls = append(out.calls, exit.calls...)
	out.calls = append(out.calls, rest.calls...)
	out.calls = append(out.calls, tailRes.calls...)
	if balanced {
		out.sig = append(out.sig, exit.sig...)
		out.term = true
		return true, out
	}
	w.flagAll(exit.calls, ifs.Pos(), "is issued by only some ranks under the")
	w.flagAll(rest.calls, ifs.Pos(), "is issued by only some ranks under the")
	w.flagAll(tailRes.calls, ifs.Pos(), "is skipped by ranks that leave early at the")
	out.sig = append(out.sig, staySig...)
	out.term = tailRes.term
	out.guard = true
	return true, out
}

func (w *collWalker) walkElse(s ast.Stmt) flowResult {
	switch e := s.(type) {
	case *ast.BlockStmt:
		return w.walkStmts(e.List)
	default:
		return w.walkStmt(s)
	}
}

func (w *collWalker) walkStmt(s ast.Stmt) flowResult {
	switch s := s.(type) {
	case nil:
		return flowResult{}
	case *ast.BlockStmt:
		return w.walkStmts(s.List)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt)
	case *ast.IfStmt:
		return w.walkIf(s)
	case *ast.ForStmt:
		return w.walkLoop(s.Cond, s.Body, s.Init, s.Post)
	case *ast.RangeStmt:
		return w.walkLoop(nil, s.Body, nil, nil)
	case *ast.SwitchStmt:
		return w.walkSwitch(s.Tag, s.Init, s.Body, s.Pos())
	case *ast.TypeSwitchStmt:
		return w.walkSwitch(nil, s.Init, s.Body, s.Pos())
	case *ast.SelectStmt:
		return w.walkSwitch(nil, nil, s.Body, s.Pos())
	case *ast.ReturnStmt:
		var r flowResult
		for _, e := range s.Results {
			er := exprColls(w.pass, e)
			r.sig = append(r.sig, er.sig...)
			r.calls = append(r.calls, er.calls...)
		}
		r.term = true
		return r
	case *ast.BranchStmt:
		// break/continue/goto end this path's collective stream within
		// the region under comparison.
		return flowResult{term: true}
	case *ast.GoStmt:
		// A goroutine's collectives are not sequenced with ours; its
		// function literal is analyzed as its own root.
		return flowResult{}
	default:
		return exprCollsNode(w.pass, s)
	}
}

func (w *collWalker) walkIf(s *ast.IfStmt) flowResult {
	var out flowResult
	if s.Init != nil {
		r := w.walkStmt(s.Init)
		out.sig = append(out.sig, r.sig...)
		out.calls = append(out.calls, r.calls...)
	}
	cond := exprColls(w.pass, s.Cond)
	out.sig = append(out.sig, cond.sig...)
	out.calls = append(out.calls, cond.calls...)

	then := w.walkStmts(s.Body.List)
	var els flowResult
	if s.Else != nil {
		els = w.walkElse(s.Else)
	}
	out.calls = append(out.calls, then.calls...)
	out.calls = append(out.calls, els.calls...)
	out.guard = then.guard || els.guard
	out.term = then.term && els.term && s.Else != nil

	if w.isRankExpr(s.Cond) {
		// The guarded-early-return shape was handled by the caller; here
		// neither arm terminates, so both arms must issue the same
		// collectives.
		if !slices.Equal(then.sig, els.sig) {
			w.flagAll(then.calls, s.Pos(), "is issued by only some ranks under the")
			w.flagAll(els.calls, s.Pos(), "is issued by only some ranks under the")
			out.guard = true
			return out
		}
		out.sig = append(out.sig, then.sig...)
		return out
	}
	// Rank-uniform condition: every rank takes the same arm, so either
	// arm's sequence is collectively consistent even if they differ.
	if slices.Equal(then.sig, els.sig) {
		out.sig = append(out.sig, then.sig...)
	} else {
		branchSig := "if{" + strings.Join(then.sig, ",") + "|" + strings.Join(els.sig, ",") + "}"
		out.sig = append(out.sig, branchSig)
	}
	return out
}

func (w *collWalker) walkLoop(cond ast.Expr, body *ast.BlockStmt, init, post ast.Stmt) flowResult {
	var out flowResult
	if init != nil {
		r := w.walkStmt(init)
		out.sig = append(out.sig, r.sig...)
		out.calls = append(out.calls, r.calls...)
	}
	inner := w.walkStmts(body.List)
	if post != nil {
		p := w.walkStmt(post)
		inner.sig = append(inner.sig, p.sig...)
		inner.calls = append(inner.calls, p.calls...)
	}
	out.calls = append(out.calls, inner.calls...)
	out.guard = inner.guard
	if cond != nil && w.isRankExpr(cond) && len(inner.calls) > 0 {
		// The iteration count differs per rank, so so does the number of
		// collective rounds.
		w.flagAll(inner.calls, cond.Pos(), "repeats under the")
		out.guard = true
		return out
	}
	if len(inner.sig) > 0 {
		out.sig = append(out.sig, "for{"+strings.Join(inner.sig, ",")+"}")
	}
	return out
}

func (w *collWalker) walkSwitch(tag ast.Expr, init ast.Stmt, body *ast.BlockStmt, pos token.Pos) flowResult {
	var out flowResult
	if init != nil {
		r := w.walkStmt(init)
		out.sig = append(out.sig, r.sig...)
		out.calls = append(out.calls, r.calls...)
	}
	if tag != nil {
		t := exprColls(w.pass, tag)
		out.sig = append(out.sig, t.sig...)
		out.calls = append(out.calls, t.calls...)
	}
	var cases []flowResult
	hasDefault := false
	for _, cc := range body.List {
		var list []ast.Stmt
		switch cl := cc.(type) {
		case *ast.CaseClause:
			list = cl.Body
			hasDefault = hasDefault || cl.List == nil
		case *ast.CommClause:
			list = cl.Body
			hasDefault = hasDefault || cl.Comm == nil
		}
		cases = append(cases, w.walkStmts(list))
	}
	allEqual := true
	for i, cr := range cases {
		out.calls = append(out.calls, cr.calls...)
		out.guard = out.guard || cr.guard
		if i > 0 && !slices.Equal(cr.sig, cases[0].sig) {
			allEqual = false
		}
	}
	rankDep := tag != nil && w.isRankExpr(tag)
	if !rankDep {
		// Also catch `switch { case c.Rank() == 0: ... }`.
		for _, cc := range body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cl.List {
					if w.isRankExpr(e) {
						rankDep = true
					}
				}
			}
		}
	}
	if rankDep {
		balanced := allEqual && len(cases) > 0 && (hasDefault || len(cases[0].sig) == 0)
		if !balanced {
			for _, cr := range cases {
				w.flagAll(cr.calls, pos, "is issued by only some ranks under the")
			}
			out.guard = true
			return out
		}
	}
	if allEqual && len(cases) > 0 {
		out.sig = append(out.sig, cases[0].sig...)
	} else {
		var parts []string
		for _, cr := range cases {
			parts = append(parts, strings.Join(cr.sig, ","))
		}
		if s := strings.Join(parts, "|"); strings.Trim(s, "|,") != "" {
			out.sig = append(out.sig, "switch{"+s+"}")
		}
	}
	return out
}

// exprCollsNode collects collective calls under an arbitrary statement
// node (assignments, expression statements, declarations, defers).
// Direct Comm collectives contribute themselves; calls to loaded
// functions contribute their summary's inlined collective signature, so
// `if rank == 0 { helper() }` is flagged exactly like a rank-guarded
// Barrier when helper (transitively) issues one — and `helper()` on
// both arms still balances.
func exprCollsNode(pass *Pass, n ast.Node) flowResult {
	var out flowResult
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := commMethodName(pass.Info, call); collectiveSet[name] {
			out.sig = append(out.sig, name)
			out.calls = append(out.calls, collCall{name: name, pos: call.Pos()})
			return true
		}
		if pass.Prog == nil {
			return true
		}
		callee := pass.Prog.calleeFunc(pass.Info, call)
		if callee == nil {
			return true
		}
		if s := pass.Prog.collSummaryOf(callee); s != nil && len(s.sig) > 0 {
			out.sig = append(out.sig, s.sig...)
			out.calls = append(out.calls, collCall{
				name: funcDisplayName(callee),
				pos:  call.Pos(),
				seq:  s.sig,
				path: s.path,
			})
		}
		return true
	})
	return out
}

func exprColls(pass *Pass, e ast.Expr) flowResult {
	if e == nil {
		return flowResult{}
	}
	return exprCollsNode(pass, e)
}

// isRankExpr reports whether e mentions the calling rank: Comm.Rank(),
// the mpi-internal rank field, or a local derived from either.
func (w *collWalker) isRankExpr(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if commMethodName(w.pass.Info, x) == "Rank" {
				found = true
			}
			// A call result is not considered rank-derived just because
			// an argument is: `err := write(file(rank))` varies with disk
			// state, not with which collective sequence the rank issues.
			return false
		case *ast.SelectorExpr:
			if isRankFieldSel(w.pass, x) {
				found = true
				return false
			}
		case *ast.Ident:
			if obj := identObj(w.pass.Info, x); obj != nil && w.rankObjs[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isRankFieldSel reports whether sel is the mpi-internal `c.rank` field
// access (visible only when analyzing package mpi itself).
func isRankFieldSel(pass *Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "rank" {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return false
	}
	return isNamed(tv.Type, mpiPath, "Comm")
}

// rankDerivedVars finds local variables (transitively) assigned from
// rank expressions, by iterating simple assignment propagation to a
// fixpoint.
func rankDerivedVars(pass *Pass, body *ast.BlockStmt) map[any]bool {
	objs := make(map[any]bool)
	probe := &collWalker{pass: pass, rankObjs: objs}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok {
							continue
						}
						obj := identObj(pass.Info, id)
						if obj == nil || objs[obj] {
							continue
						}
						if probe.isRankExpr(n.Rhs[i]) {
							objs[obj] = true
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, id := range n.Names {
					if i >= len(n.Values) {
						break
					}
					obj := identObj(pass.Info, id)
					if obj == nil || objs[obj] {
						continue
					}
					if probe.isRankExpr(n.Values[i]) {
						objs[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	return objs
}
