package analysis

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
	"time"
)

// TestWriteSARIF pins the SARIF wire contract for the two finding
// states: an unsuppressed finding carries an explicit empty
// suppressions array ("checked, none apply"), a suppressed one carries
// exactly one inSource suppression with the directive's reason as its
// justification. A viewer filtering on suppression state must agree
// with spiolint's exit code.
func TestWriteSARIF(t *testing.T) {
	diags := []Diagnostic{
		{
			Analyzer: "racegate",
			Package:  "spio/internal/mpi",
			Position: token.Position{Filename: "world.go", Line: 56, Column: 2},
			Message:  "field sendDelay is written without a lock",
		},
		{
			Analyzer:       "racegate",
			Package:        "spio/internal/mpi",
			Position:       token.Position{Filename: "p2p.go", Line: 9, Column: 1},
			Message:        "field queue is written without a lock",
			Suppressed:     true,
			SuppressReason: "set before the rank goroutines start",
		},
	}
	var buf strings.Builder
	if err := WriteSARIF(&buf, Analyzers(), diags); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				Suppressions *[]struct {
					Kind          string `json:"kind"`
					Justification string `json:"justification"`
				} `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version/schema = %q / %q, want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "spiolint" {
		t.Errorf("driver name = %q, want spiolint", run.Tool.Driver.Name)
	}
	if got, want := len(run.Tool.Driver.Rules), len(Analyzers()); got != want {
		t.Errorf("got %d rules, want one per analyzer (%d)", got, want)
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}

	live, silenced := run.Results[0], run.Results[1]
	if live.RuleID != "racegate" || live.Level != "warning" {
		t.Errorf("live result ruleId/level = %q/%q, want racegate/warning", live.RuleID, live.Level)
	}
	loc := live.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "world.go" || loc.Region.StartLine != 56 || loc.Region.StartColumn != 2 {
		t.Errorf("live result location = %s:%d:%d, want world.go:56:2",
			loc.ArtifactLocation.URI, loc.Region.StartLine, loc.Region.StartColumn)
	}
	if live.Suppressions == nil {
		t.Error("live result omits suppressions; want explicit empty array")
	} else if len(*live.Suppressions) != 0 {
		t.Errorf("live result carries %d suppressions, want 0", len(*live.Suppressions))
	}

	if silenced.Suppressions == nil || len(*silenced.Suppressions) != 1 {
		t.Fatalf("suppressed result suppressions = %v, want exactly 1", silenced.Suppressions)
	}
	sup := (*silenced.Suppressions)[0]
	if sup.Kind != "inSource" {
		t.Errorf("suppression kind = %q, want inSource", sup.Kind)
	}
	if sup.Justification != "set before the rank goroutines start" {
		t.Errorf("suppression justification = %q, want the directive reason", sup.Justification)
	}
}

// TestTimingsLine pins the name=<float>ms format bench.sh parses out of
// the -summary output.
func TestTimingsLine(t *testing.T) {
	got := TimingsLine([]AnalyzerTiming{
		{Name: "collorder", Elapsed: 12345 * time.Microsecond},
		{Name: "racegate", Elapsed: 250 * time.Microsecond},
	})
	if want := "collorder=12.3ms racegate=0.2ms"; got != want {
		t.Fatalf("TimingsLine = %q, want %q", got, want)
	}
}
