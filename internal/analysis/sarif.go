package analysis

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 output. The subset emitted here is the stable core CI
// viewers key on: one run, one driver with a rule per analyzer, one
// result per finding with a physical location. Findings silenced by a
// //spio:allow directive are emitted with an inSource suppression
// carrying the directive's reason; live findings carry an explicit
// empty suppressions array ("checked, none apply" — distinct in SARIF
// from the property being absent), so a viewer filtering on suppression
// state sees exactly what spiolint's exit code saw.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// WriteSARIF prints diagnostics as one SARIF 2.1.0 run. analyzers
// populates the driver's rule table (every suite member, found or not,
// so rule metadata is stable across runs); diagnostics from outside the
// list — the directive pseudo-analyzer — still emit results under
// their own ruleId.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		r := sarifResult{
			RuleID:       d.Analyzer,
			Level:        "warning",
			Message:      sarifMessage{Text: d.Message},
			Suppressions: []sarifSuppression{},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.Position.Filename},
					Region:           sarifRegion{StartLine: d.Position.Line, StartColumn: d.Position.Column},
				},
			}},
		}
		if d.Suppressed {
			r.Suppressions = []sarifSuppression{{Kind: "inSource", Justification: d.SuppressReason}}
		}
		results = append(results, r)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "spiolint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
