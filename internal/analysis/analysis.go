// Package analysis is a stdlib-only static-analysis engine (go/ast +
// go/types + go/importer — no external dependencies) carrying the
// project-specific analyzers behind cmd/spiolint.
//
// The analyzers encode the correctness contracts the runtime cannot
// fully enforce:
//
//   - collorder: every rank must issue the same collective sequence, so
//     a collective call control-dependent on the rank is a deadlock in
//     waiting (internal/mpi documents the SPMD contract; guard.go
//     catches kind mismatches at runtime, but a skipped collective can
//     still hang, which only static analysis can reject up front).
//   - bufhandoff: WriteAsync transfers ownership of the particle buffer
//     until Wait returns (spio.go), so any use in between is a data
//     race with the background checkpoint.
//   - errdrop: the write/read APIs report partial failure through
//     error and WriteResult returns; dropping them silently corrupts
//     the "every rank observed the same outcome" reasoning the
//     collective pipeline depends on.
//   - tagclash: user point-to-point tags must stay inside
//     [0, mpi.UserTagSpace); everything else is the reserved collective
//     tag namespace (internal/mpi/coll.go).
//
// The engine is deliberately small: packages are loaded with `go list`,
// parsed and type-checked with the stdlib source importer, and each
// analyzer gets one type-checked package at a time.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
	"time"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's short identifier, prefixed to diagnostics.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects the package in pass and reports findings via
	// pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Prog is the whole-program view (call graph + per-function
	// summaries) shared by every pass of one Run.
	Prog *Program

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Package:  p.Pkg.Path(),
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Package  string
	Position token.Position
	Message  string
	// Suppressed marks a finding covered by a //spio:allow directive
	// (directive.go); SuppressReason carries the directive's reason.
	// Suppressed findings do not fail the run but stay visible in -json
	// output and in the summary counts.
	Suppressed     bool
	SuppressReason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// Analyzers returns the full spiolint suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{CollOrder, BufHandoff, ErrDrop, TagClash, WireSym, CollAbort, LockOrder, WireTaint, GoLeak, RaceGate}
}

// ByName returns the named analyzers, or an error naming the unknown
// one.
func ByName(names []string) ([]*Analyzer, error) {
	all := Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
	}
	return out, nil
}

// Run applies every analyzer to every package and returns the combined
// findings sorted by file position. A whole-program view (call graph +
// summaries) is built once over all packages, so helper functions are
// seen through even when caller and callee live in different packages.
// Findings covered by a //spio:allow directive are marked Suppressed
// (not removed); malformed directives are findings themselves.
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	diags, _ := RunTimed(analyzers, pkgs)
	return diags
}

// AnalyzerTiming is one analyzer's wall-clock cost over a whole run,
// summed across packages. The lazily built whole-program fixpoints
// (lock sets, exit evidence, taint, race) are charged to the analyzer
// whose pass triggered them — the first asker pays, which is the honest
// attribution for "what does adding this analyzer cost".
type AnalyzerTiming struct {
	Name    string
	Elapsed time.Duration
}

// RunTimed is Run plus a per-analyzer timing table, in suite order.
func RunTimed(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, []AnalyzerTiming) {
	prog := BuildProgram(pkgs)
	var diags []Diagnostic
	elapsed := make([]time.Duration, len(analyzers))
	for _, pkg := range pkgs {
		for i, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Prog:     prog,
				diags:    &diags,
			}
			start := time.Now()
			a.Run(pass)
			elapsed[i] += time.Since(start)
		}
	}
	applyDirectives(pkgs, analyzers, &diags)
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].Position, diags[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	timings := make([]AnalyzerTiming, len(analyzers))
	for i, a := range analyzers {
		timings[i] = AnalyzerTiming{Name: a.Name, Elapsed: elapsed[i]}
	}
	return diags, timings
}

// TimingsLine renders the per-analyzer wall times as one parseable
// line, e.g. "collorder=12.3ms bufhandoff=0.4ms ...". ci.sh surfaces it
// under -summary and scripts/bench.sh records it into the benchmark
// JSON, so the format is a contract: space-separated name=<float>ms
// pairs in suite order.
func TimingsLine(timings []AnalyzerTiming) string {
	var b strings.Builder
	for i, tm := range timings {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.1fms", tm.Name, float64(tm.Elapsed.Microseconds())/1000)
	}
	return b.String()
}

// WriteText prints active diagnostics one per line in file:line:col
// form. Suppressed findings are printed only when showSuppressed is
// set, with the directive's reason appended.
func WriteText(w io.Writer, diags []Diagnostic, showSuppressed bool) {
	for _, d := range diags {
		if d.Suppressed {
			if showSuppressed {
				fmt.Fprintf(w, "%s [suppressed: %s]\n", d.String(), d.SuppressReason)
			}
			continue
		}
		fmt.Fprintln(w, d.String())
	}
}

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	Analyzer   string `json:"analyzer"`
	Package    string `json:"package"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// WriteJSON prints diagnostics as a JSON array. Suppressed findings are
// included, marked "suppressed" with the directive's reason, so tooling
// can audit what the directives hide.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, len(diags))
	for i, d := range diags {
		out[i] = jsonDiagnostic{
			Analyzer:   d.Analyzer,
			Package:    d.Package,
			File:       d.Position.Filename,
			Line:       d.Position.Line,
			Column:     d.Position.Column,
			Message:    d.Message,
			Suppressed: d.Suppressed,
			Reason:     d.SuppressReason,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Exit codes of the spiolint command. Load or type-check failures
// (ExitLoadError) are distinct from findings (ExitFindings): CI can
// tell "the code is broken" from "the code is suspect".
const (
	ExitClean     = 0
	ExitFindings  = 1
	ExitLoadError = 2
)

// ExitCode maps a finished run's diagnostics to the spiolint exit
// code: ExitFindings when any unsuppressed diagnostic remains,
// ExitClean otherwise. Load failures never reach here — they are
// ExitLoadError at the caller.
func ExitCode(diags []Diagnostic) int {
	for _, d := range diags {
		if !d.Suppressed {
			return ExitFindings
		}
	}
	return ExitClean
}

// Summarize renders the per-analyzer diagnostic counts as one line,
// e.g. "collorder=1 bufhandoff=0 ... suppressed=2". Analyzer order is
// the suite order; suppressed findings count toward the suppressed
// total, not the per-analyzer count.
func Summarize(analyzers []*Analyzer, diags []Diagnostic) string {
	counts := make(map[string]int)
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
			continue
		}
		counts[d.Analyzer]++
	}
	var b strings.Builder
	for _, a := range analyzers {
		fmt.Fprintf(&b, "%s=%d ", a.Name, counts[a.Name])
		delete(counts, a.Name)
	}
	// Diagnostics from outside the analyzer list (malformed
	// directives) still need to be visible.
	extras := make([]string, 0, len(counts))
	for name := range counts {
		extras = append(extras, name)
	}
	sort.Strings(extras)
	for _, name := range extras {
		fmt.Fprintf(&b, "%s=%d ", name, counts[name])
	}
	fmt.Fprintf(&b, "suppressed=%d", suppressed)
	return b.String()
}

// typesInfo allocates the Info maps the analyzers need.
func typesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
