// Package analysis is a stdlib-only static-analysis engine (go/ast +
// go/types + go/importer — no external dependencies) carrying the
// project-specific analyzers behind cmd/spiolint.
//
// The analyzers encode the correctness contracts the runtime cannot
// fully enforce:
//
//   - collorder: every rank must issue the same collective sequence, so
//     a collective call control-dependent on the rank is a deadlock in
//     waiting (internal/mpi documents the SPMD contract; guard.go
//     catches kind mismatches at runtime, but a skipped collective can
//     still hang, which only static analysis can reject up front).
//   - bufhandoff: WriteAsync transfers ownership of the particle buffer
//     until Wait returns (spio.go), so any use in between is a data
//     race with the background checkpoint.
//   - errdrop: the write/read APIs report partial failure through
//     error and WriteResult returns; dropping them silently corrupts
//     the "every rank observed the same outcome" reasoning the
//     collective pipeline depends on.
//   - tagclash: user point-to-point tags must stay inside
//     [0, mpi.UserTagSpace); everything else is the reserved collective
//     tag namespace (internal/mpi/coll.go).
//
// The engine is deliberately small: packages are loaded with `go list`,
// parsed and type-checked with the stdlib source importer, and each
// analyzer gets one type-checked package at a time.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's short identifier, prefixed to diagnostics.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects the package in pass and reports findings via
	// pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Package:  p.Pkg.Path(),
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Package  string
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// Analyzers returns the full spiolint suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{CollOrder, BufHandoff, ErrDrop, TagClash}
}

// ByName returns the named analyzers, or an error naming the unknown
// one.
func ByName(names []string) ([]*Analyzer, error) {
	all := Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
	}
	return out, nil
}

// Run applies every analyzer to every package and returns the combined
// findings sorted by file position.
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].Position, diags[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// WriteText prints diagnostics one per line in file:line:col form.
func WriteText(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
	}
}

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	Package  string `json:"package"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// WriteJSON prints diagnostics as a JSON array.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, len(diags))
	for i, d := range diags {
		out[i] = jsonDiagnostic{
			Analyzer: d.Analyzer,
			Package:  d.Package,
			File:     d.Position.Filename,
			Line:     d.Position.Line,
			Column:   d.Position.Column,
			Message:  d.Message,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// typesInfo allocates the Info maps the analyzers need.
func typesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
