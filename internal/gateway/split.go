package gateway

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"spio/internal/format"
	rdr "spio/internal/reader"
)

// Split partitions the dataset at srcDir into len(outDirs) shard
// datasets, each a self-contained spio dataset directory a spiod can
// mount: a subset of the data files plus a recomputed metadata file
// (same domain, schema, and LOD parameters; Total and the file table
// restricted to the shard). Files are dealt with reader.AssignFiles —
// Morton order over partition centers, split into contiguous runs — so
// each shard's files tile a compact region and box queries route to few
// shards. The shard datasets together hold exactly the source's files,
// so a gateway mounting all of them serves the identical logical
// dataset.
func Split(srcDir string, outDirs []string) error {
	if len(outDirs) == 0 {
		return fmt.Errorf("spiogate: split: no output directories")
	}
	meta, err := format.ReadMeta(srcDir)
	if err != nil {
		return err
	}
	if len(meta.Files) < len(outDirs) {
		return fmt.Errorf("spiogate: split: %d files cannot fill %d shards", len(meta.Files), len(outDirs))
	}
	for shard, dir := range outDirs {
		entries := rdr.AssignFiles(meta, len(outDirs), shard)
		if len(entries) == 0 {
			return fmt.Errorf("spiogate: split: shard %d would be empty", shard)
		}
		if err := os.MkdirAll(dir, 0o777); err != nil {
			return err
		}
		sub := &format.Meta{
			Domain:          meta.Domain,
			SimDims:         meta.SimDims,
			PartitionFactor: meta.PartitionFactor,
			AggDims:         meta.AggDims,
			Schema:          meta.Schema,
			LOD:             meta.LOD,
			Heuristic:       meta.Heuristic,
		}
		for _, e := range entries {
			sub.Total += e.Count
			sub.Files = append(sub.Files, *e)
			if err := copyFile(filepath.Join(srcDir, e.Name), filepath.Join(dir, e.Name)); err != nil {
				return fmt.Errorf("spiogate: split: shard %d: %w", shard, err)
			}
		}
		if err := format.WriteMeta(nil, dir, sub); err != nil {
			return fmt.Errorf("spiogate: split: shard %d: %w", shard, err)
		}
	}
	return nil
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer func() {
		_ = in.Close() // read-only handle
	}()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		_ = out.Close() // copy failed; the copy error is the one to report
		return err
	}
	return out.Close()
}
