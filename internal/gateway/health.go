package gateway

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// breaker is a per-backend circuit breaker with three states:
//
//   - closed: calls flow; consecutive transport failures are counted.
//   - open: after threshold consecutive failures, calls are rejected
//     until the cooldown elapses.
//   - half-open: after the cooldown, exactly one probe call is let
//     through; its outcome closes or re-opens the breaker.
//
// Only transport-level failures (dead backend, timeout, drain) count —
// a backend that answers "bad query" quickly is healthy.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	fails     int
	openUntil time.Time // zero when closed
	probing   bool      // a half-open probe is in flight
}

// allow reports whether a call may proceed now. In the open state it
// admits a single probe per cooldown interval.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return true
	}
	if now.Before(b.openUntil) || b.probing {
		return false
	}
	b.probing = true // half-open: this caller is the probe
	return true
}

// success records a completed exchange: the breaker closes.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.openUntil = time.Time{}
	b.probing = false
}

// failure records a transport-level failure; at threshold consecutive
// failures the breaker opens for one cooldown.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	b.probing = false
	if b.fails >= b.threshold || !b.openUntil.IsZero() {
		b.openUntil = now.Add(b.cooldown)
	}
}

// open reports whether the breaker currently rejects calls.
func (b *breaker) open(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.openUntil.IsZero() && now.Before(b.openUntil)
}

// gwMetrics is the gateway's observability state, mirroring the spiod
// metrics idiom: monotonic atomics, snapshot as JSON via opStats.
type gwMetrics struct {
	startNano    int64
	requests     atomic.Int64 // completed front requests
	errors       atomic.Int64 // front requests answered with an error status
	partials     atomic.Int64 // requests answered with the partial-result flag
	fanout       atomic.Int64 // shard calls issued
	shardErrors  atomic.Int64 // shard calls that failed (after replica retries)
	breakerSkips atomic.Int64 // replica attempts rejected by an open breaker
	streams      atomic.Int64 // progressive streams opened
	streamLevels atomic.Int64 // level frames sent
	activeConns  atomic.Int64 // front connections currently open
}

// MetricsSnapshot is the JSON shape served for opStats.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	Partials      int64   `json:"partials"`
	Fanout        int64   `json:"fanout"`
	ShardErrors   int64   `json:"shard_errors"`
	BreakerSkips  int64   `json:"breaker_skips"`
	Streams       int64   `json:"streams"`
	StreamLevels  int64   `json:"stream_levels"`
	ActiveConns   int64   `json:"active_conns"`
	OpenBreakers  int     `json:"open_breakers"`
}

// snapshotJSON renders the metrics for opStats.
func (g *Gateway) snapshotJSON() []byte {
	now := time.Now()
	snap := MetricsSnapshot{
		UptimeSeconds: float64(now.UnixNano()-g.metrics.startNano) / 1e9,
		Requests:      g.metrics.requests.Load(),
		Errors:        g.metrics.errors.Load(),
		Partials:      g.metrics.partials.Load(),
		Fanout:        g.metrics.fanout.Load(),
		ShardErrors:   g.metrics.shardErrors.Load(),
		BreakerSkips:  g.metrics.breakerSkips.Load(),
		Streams:       g.metrics.streams.Load(),
		StreamLevels:  g.metrics.streamLevels.Load(),
		ActiveConns:   g.metrics.activeConns.Load(),
	}
	for _, be := range g.backends {
		if be.brk.open(now) {
			snap.OpenBreakers++
		}
	}
	b, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return []byte("{}")
	}
	return b
}
