package gateway

import (
	"context"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"spio/internal/agg"
	"spio/internal/core"
	"spio/internal/geom"
	"spio/internal/mpi"
	"spio/internal/particle"
	"spio/internal/query"
	rdr "spio/internal/reader"
	"spio/internal/server"
)

// writeDataset writes a uniform dataset into dir, mirroring the server
// package's test harness.
func writeDataset(t testing.TB, dir string, simDims, factor geom.Idx3, perRank int) {
	t.Helper()
	cfg := core.WriteConfig{
		Agg:  agg.Config{Domain: geom.UnitBox(), SimDims: simDims, Factor: factor},
		Seed: 21,
	}
	grid := geom.NewGrid(cfg.Agg.Domain, simDims)
	err := mpi.Run(simDims.Volume(), func(c *mpi.Comm) error {
		local := particle.Uniform(particle.Uintah(), grid.CellBox(geom.Unlinear(c.Rank(), simDims)), perRank, 13, c.Rank())
		_, err := core.Write(c, dir, cfg, local)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// sockAddr returns a fresh, short unix socket address (unix socket
// paths are limited to ~100 bytes; t.TempDir can exceed that).
func sockAddr(t testing.TB) string {
	t.Helper()
	dir, err := os.MkdirTemp("", "spiogate")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	return "unix:" + filepath.Join(dir, "s.sock")
}

func listenOn(t testing.TB, addr string) net.Listener {
	t.Helper()
	_, path, err := server.ParseAddr(addr)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// startBackend serves dir as dataset "shard" from a fresh spiod on a
// fresh unix socket. The returned shutdown func is idempotent via
// t.Cleanup but may be called early to simulate a lost backend.
func startBackend(t testing.TB, dir string) (addr string, shutdown func()) {
	t.Helper()
	s := server.New(server.Config{Workers: 2})
	if err := s.Mount("shard", dir); err != nil {
		t.Fatal(err)
	}
	addr = sockAddr(t)
	l := listenOn(t, addr)
	go func() { _ = s.Serve(l) }()
	// Probe until the accept loop is live: a Shutdown racing Serve's
	// listener registration would otherwise leave the socket accepting
	// into a backlog nobody drains.
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	stopped := false
	shutdown = func() {
		if stopped {
			return
		}
		stopped = true
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}
	t.Cleanup(shutdown)
	return addr, shutdown
}

// splitShards splits the dataset at srcDir into n shard directories and
// starts one spiod per shard. It returns the specs for Mount and the
// per-shard shutdown funcs.
func splitShards(t testing.TB, srcDir string, n int) ([]ShardSpec, []func()) {
	t.Helper()
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = filepath.Join(t.TempDir(), "shard")
	}
	if err := Split(srcDir, dirs); err != nil {
		t.Fatal(err)
	}
	specs := make([]ShardSpec, n)
	stops := make([]func(), n)
	for i, dir := range dirs {
		addr, stop := startBackend(t, dir)
		specs[i] = ShardSpec{Ref: "shard", Addrs: []string{addr}}
		stops[i] = stop
	}
	return specs, stops
}

// startGateway mounts the specs as "sim" and serves the gateway on a
// fresh unix socket.
func startGateway(t testing.TB, cfg Config, specs []ShardSpec) (*Gateway, string) {
	t.Helper()
	g := New(cfg)
	if err := g.Mount("sim", specs); err != nil {
		t.Fatal(err)
	}
	addr := sockAddr(t)
	l := listenOn(t, addr)
	go func() {
		if err := g.Serve(l); err != nil {
			t.Errorf("gateway Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := g.Shutdown(ctx); err != nil {
			t.Errorf("gateway Shutdown: %v", err)
		}
	})
	return g, addr
}

// records returns the buffer's particles as canonical-sorted encoded
// records. Sharding reorders files (Split deals them in Morton order),
// so gateway answers match single-node answers up to particle order —
// byte-identity is checked on the sorted record multiset.
func records(b *particle.Buffer) []string {
	stride := b.Schema().Stride()
	enc := b.Encode()
	recs := make([]string, b.Len())
	for i := range recs {
		recs[i] = string(enc[i*stride : (i+1)*stride])
	}
	sort.Strings(recs)
	return recs
}

func sameRecords(t *testing.T, what string, got, want *particle.Buffer) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: got %d particles, want %d", what, got.Len(), want.Len())
	}
	g, w := records(got), records(want)
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: sorted record %d differs", what, i)
		}
	}
}

// TestGatewayByteIdentity is the tentpole acceptance test: every query
// type through a 3-shard gateway answers byte-identically (after
// canonical sort) to the local reader over the unsplit dataset.
func TestGatewayByteIdentity(t *testing.T) {
	src := t.TempDir()
	writeDataset(t, src, geom.I3(4, 4, 2), geom.I3(2, 2, 1), 40) // 8 files
	specs, _ := splitShards(t, src, 3)
	_, addr := startGateway(t, Config{}, specs)

	local, err := rdr.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	remote, err := server.OpenRemote(addr, "sim")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	if remote.Meta().Total != local.Meta().Total {
		t.Fatalf("merged meta total %d, want %d", remote.Meta().Total, local.Meta().Total)
	}
	if len(remote.Meta().Files) != len(local.Meta().Files) {
		t.Fatalf("merged meta has %d files, want %d", len(remote.Meta().Files), len(local.Meta().Files))
	}

	boxes := map[string]geom.Box{
		"octant":   geom.NewBox(geom.V3(0, 0, 0), geom.V3(0.5, 0.5, 1)),
		"straddle": geom.NewBox(geom.V3(0.2, 0.2, 0.2), geom.V3(0.8, 0.8, 0.8)),
		"all":      local.Meta().Domain,
		"sliver":   geom.NewBox(geom.V3(0.49, 0, 0), geom.V3(0.51, 1, 1)),
	}
	for name, q := range boxes {
		for _, opts := range []rdr.Options{{}, {Levels: 2, Readers: 2}, {Fields: []string{"position", "density"}}} {
			want, _, err := local.QueryBox(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, st, err := remote.QueryBox(q, opts)
			if err != nil {
				t.Fatalf("box %s: %v", name, err)
			}
			if st.Partial {
				t.Fatalf("box %s: unexpected partial flag with all shards up", name)
			}
			sameRecords(t, "box "+name, got, want)
		}
	}

	// Zero-shard query: a box outside every partition answers empty
	// without touching a backend.
	out := geom.NewBox(geom.V3(2, 2, 2), geom.V3(3, 3, 3))
	got, _, err := remote.QueryBox(out, rdr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("out-of-domain box: got %d particles, want 0", got.Len())
	}

	// KNN: distances and particle bytes must match exactly, in order.
	for _, p := range []geom.Vec3{geom.V3(0.5, 0.5, 0.5), geom.V3(0.05, 0.9, 0.3), geom.V3(1.5, 1.5, 1.5)} {
		wantBuf, wantD, _, err := query.KNN(local, p, 16)
		if err != nil {
			t.Fatal(err)
		}
		gotBuf, gotD, _, err := remote.KNN(p, 16)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantD {
			if gotD[i] != wantD[i] {
				t.Fatalf("knn %v: dist %d = %v, want %v", p, i, gotD[i], wantD[i])
			}
		}
		sameRecords(t, "knn", gotBuf, wantBuf)
	}

	// Halo: own and ghost sets each match; de-dup at shard boundaries is
	// by construction (disjoint partitions).
	patch := geom.NewBox(geom.V3(0.25, 0.25, 0.25), geom.V3(0.75, 0.75, 0.75))
	wantOwn, wantGhost, _, err := query.Halo(local, patch, 0.1, rdr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotOwn, gotGhost, _, err := remote.Halo(patch, 0.1, rdr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, "halo own", gotOwn, wantOwn)
	sameRecords(t, "halo ghost", gotGhost, wantGhost)

	// Density: summing raw shard counts and scaling once must be
	// bit-identical to the single-node grid, including the fraction.
	wantCounts, wantFrac, _, err := query.DensityGrid(local, geom.I3(4, 4, 4), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	gotCounts, gotFrac, _, err := remote.DensityGrid(geom.I3(4, 4, 4), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gotFrac != wantFrac {
		t.Fatalf("density fraction %v, want %v", gotFrac, wantFrac)
	}
	for i := range wantCounts {
		if gotCounts[i] != wantCounts[i] {
			t.Fatalf("density cell %d: %v, want %v", i, gotCounts[i], wantCounts[i])
		}
	}
}

// TestGatewayPropertyRandom is the routing property test: for random
// boxes (including slivers, boundary-straddling boxes, and boxes
// intersecting no shard) and random KNN queries, the union of the
// routed shards' answers is byte-identical after canonical sort to the
// single-node answer.
func TestGatewayPropertyRandom(t *testing.T) {
	src := t.TempDir()
	writeDataset(t, src, geom.I3(4, 4, 2), geom.I3(2, 2, 1), 30) // 8 files
	specs, _ := splitShards(t, src, 3)
	_, addr := startGateway(t, Config{}, specs)

	local, err := rdr.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	remote, err := server.OpenRemote(addr, "sim")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	rng := rand.New(rand.NewSource(7))
	randBox := func(i int) geom.Box {
		switch {
		case i%7 == 0:
			// Off-domain: routes to zero shards.
			lo := geom.V3(1+rng.Float64(), 1+rng.Float64(), 1+rng.Float64())
			return geom.NewBox(lo, lo.Add(geom.V3(rng.Float64(), rng.Float64(), rng.Float64())))
		case i%3 == 0:
			// Centered: straddles at least two shard boundaries.
			h := 0.1 + 0.4*rng.Float64()
			return geom.NewBox(geom.V3(0.5-h, 0.5-h, 0.5-h), geom.V3(0.5+h, 0.5+h, 0.5+h))
		default:
			lo := geom.V3(rng.Float64(), rng.Float64(), rng.Float64())
			sz := geom.V3(rng.Float64(), rng.Float64(), rng.Float64())
			return geom.NewBox(lo, lo.Add(sz))
		}
	}
	for i := 0; i < 40; i++ {
		q := randBox(i)
		opts := rdr.Options{}
		if i%5 == 0 {
			opts.Levels = 1 + rng.Intn(3)
			opts.Readers = 1 + rng.Intn(4)
		}
		want, _, err := local.QueryBox(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := remote.QueryBox(q, opts)
		if err != nil {
			t.Fatalf("box %d %v: %v", i, q, err)
		}
		if st.Partial {
			t.Fatalf("box %d: unexpected partial flag", i)
		}
		sameRecords(t, "random box", got, want)
	}
	for i := 0; i < 15; i++ {
		p := geom.V3(2*rng.Float64()-0.5, 2*rng.Float64()-0.5, 2*rng.Float64()-0.5)
		k := 1 + rng.Intn(32)
		wantBuf, wantD, _, err := query.KNN(local, p, k)
		if err != nil {
			t.Fatal(err)
		}
		gotBuf, gotD, _, err := remote.KNN(p, k)
		if err != nil {
			t.Fatalf("knn %d at %v k=%d: %v", i, p, k, err)
		}
		for j := range wantD {
			if gotD[j] != wantD[j] {
				t.Fatalf("knn %d: dist %d = %v, want %v", i, j, gotD[j], wantD[j])
			}
		}
		sameRecords(t, "random knn", gotBuf, wantBuf)
	}
}

// TestGatewayProgressive checks the merged LOD stream: level-by-level
// byte-identity against a single-node daemon serving the unsplit
// dataset, strictly coarse-first, with a per-level barrier.
func TestGatewayProgressive(t *testing.T) {
	src := t.TempDir()
	writeDataset(t, src, geom.I3(4, 4, 2), geom.I3(2, 2, 1), 40)
	specs, _ := splitShards(t, src, 3)
	_, gwAddr := startGateway(t, Config{}, specs)
	singleAddr, _ := startBackend(t, src)

	single, err := server.OpenRemote(singleAddr, "shard")
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	viaGW, err := server.OpenRemote(gwAddr, "sim")
	if err != nil {
		t.Fatal(err)
	}
	defer viaGW.Close()

	for _, q := range []geom.Box{
		geom.NewBox(geom.V3(0, 0, 0), geom.V3(0.6, 0.6, 1)),
		single.Meta().Domain,
	} {
		const readers = 2
		wantStream, err := single.ProgressiveBox(q, 0, readers)
		if err != nil {
			t.Fatal(err)
		}
		gotStream, err := viaGW.ProgressiveBox(q, 0, readers)
		if err != nil {
			t.Fatal(err)
		}
		level := 0
		for {
			wantBuf, wantOK, err := wantStream.NextLevel()
			if err != nil {
				t.Fatal(err)
			}
			gotBuf, gotOK, err := gotStream.NextLevel()
			if err != nil {
				t.Fatal(err)
			}
			if gotOK != wantOK {
				t.Fatalf("level %d: ok=%v, want %v", level, gotOK, wantOK)
			}
			if !wantOK {
				break
			}
			if gotStream.Level() != wantStream.Level() {
				t.Fatalf("stream at level %d, want %d", gotStream.Level(), wantStream.Level())
			}
			// The per-level barrier means level L through the gateway is
			// exactly level L of a single node: same increment, not just the
			// same cumulative prefix — strictly coarse-first.
			sameRecords(t, "stream level", gotBuf, wantBuf)
			level++
		}
		if !gotStream.Done() {
			t.Fatal("gateway stream not done after final level")
		}
		if level == 0 {
			t.Fatal("stream delivered no levels")
		}
	}

	// Cancel after one level releases the shard streams cleanly.
	st, err := viaGW.ProgressiveBox(single.Meta().Domain, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.NextLevel(); err != nil || !ok {
		t.Fatalf("first level: ok=%v err=%v", ok, err)
	}
	if err := st.Cancel(); err != nil {
		t.Fatal(err)
	}
}

// TestGatewayDeadShardPartial kills one of three backends and checks
// the contract: queries succeed with the partial flag set and the
// surviving shards' particles, instead of failing.
func TestGatewayDeadShardPartial(t *testing.T) {
	src := t.TempDir()
	writeDataset(t, src, geom.I3(4, 4, 2), geom.I3(2, 2, 1), 30)
	specs, stops := splitShards(t, src, 3)
	_, addr := startGateway(t, Config{CallTimeout: 5 * time.Second}, specs)

	remote, err := server.OpenRemote(addr, "sim")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	domain := remote.Meta().Domain

	// Baseline with all shards up.
	full, st, err := remote.QueryBox(domain, rdr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Partial {
		t.Fatal("partial flag with all shards up")
	}

	stops[1]() // lose the middle shard

	got, st, err := remote.QueryBox(domain, rdr.Options{})
	if err != nil {
		t.Fatalf("query with dead shard: %v", err)
	}
	if !st.Partial {
		t.Fatal("dead shard: partial flag not set")
	}
	if got.Len() == 0 || got.Len() >= full.Len() {
		t.Fatalf("dead shard: got %d particles, want a non-empty strict subset of %d", got.Len(), full.Len())
	}

	// KNN degrades the same way.
	_, dists, st, err := remote.KNN(geom.V3(0.5, 0.5, 0.5), 8)
	if err != nil {
		t.Fatalf("knn with dead shard: %v", err)
	}
	if !st.Partial {
		t.Fatal("dead shard: KNN partial flag not set")
	}
	if len(dists) != 8 {
		t.Fatalf("knn with dead shard: got %d dists, want 8", len(dists))
	}

	// Progressive streams flag partial per frame too.
	stream, err := remote.ProgressiveBox(domain, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := stream.NextLevel(); err != nil || !ok {
		t.Fatalf("stream with dead shard: ok=%v err=%v", ok, err)
	}
	if !stream.Stats().Partial {
		t.Fatal("dead shard: stream partial flag not set")
	}
	if err := stream.Cancel(); err != nil {
		t.Fatal(err)
	}
}

// TestGatewayReplicaFailover lists a shard on a dead primary plus a
// live replica: queries must succeed completely (no partial flag).
func TestGatewayReplicaFailover(t *testing.T) {
	src := t.TempDir()
	writeDataset(t, src, geom.I3(2, 2, 1), geom.I3(2, 2, 1), 50) // 1 file, 1 shard
	dir := filepath.Join(t.TempDir(), "shard")
	if err := Split(src, []string{dir}); err != nil {
		t.Fatal(err)
	}
	liveAddr, _ := startBackend(t, dir)
	deadAddr, deadStop := startBackend(t, dir)
	deadStop()

	_, addr := startGateway(t, Config{CallTimeout: 5 * time.Second},
		[]ShardSpec{{Ref: "shard", Addrs: []string{deadAddr, liveAddr}}})

	local, err := rdr.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	remote, err := server.OpenRemote(addr, "sim")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	want, _, err := local.QueryBox(local.Meta().Domain, rdr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := remote.QueryBox(local.Meta().Domain, rdr.Options{})
	if err != nil {
		t.Fatalf("failover query: %v", err)
	}
	if st.Partial {
		t.Fatal("failover produced a partial result; replica should make it whole")
	}
	sameRecords(t, "failover box", got, want)
}

// TestGatewayDrainRouting drains a backend gracefully mid-session: the
// gateway's pooled connections receive the drain notice and the next
// query fails over to the replica without surfacing an error.
func TestGatewayDrainRouting(t *testing.T) {
	src := t.TempDir()
	writeDataset(t, src, geom.I3(2, 2, 1), geom.I3(2, 2, 1), 50)
	dir := filepath.Join(t.TempDir(), "shard")
	if err := Split(src, []string{dir}); err != nil {
		t.Fatal(err)
	}
	primaryAddr, primaryStop := startBackend(t, dir)
	replicaAddr, _ := startBackend(t, dir)

	_, addr := startGateway(t, Config{CallTimeout: 5 * time.Second},
		[]ShardSpec{{Ref: "shard", Addrs: []string{primaryAddr, replicaAddr}}})

	remote, err := server.OpenRemote(addr, "sim")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	domain := remote.Meta().Domain

	// Warm the pool: this query lands on the primary and leaves the
	// connection idle in the pool.
	if _, _, err := remote.QueryBox(domain, rdr.Options{}); err != nil {
		t.Fatal(err)
	}

	primaryStop() // graceful drain: idle pool conns get the drain notice

	// The pooled connection to the primary is now drained; the gateway
	// must discover that and hedge to the replica, not error out.
	got, st, err := remote.QueryBox(domain, rdr.Options{})
	if err != nil {
		t.Fatalf("query across drain: %v", err)
	}
	if st.Partial {
		t.Fatal("drain surfaced as a partial result; replica should make it whole")
	}
	if got.Len() == 0 {
		t.Fatal("query across drain returned no particles")
	}
}

// TestSplitRoundTrip checks the shard datasets are each valid and
// together hold exactly the source's files and particles.
func TestSplitRoundTrip(t *testing.T) {
	src := t.TempDir()
	writeDataset(t, src, geom.I3(4, 4, 1), geom.I3(2, 2, 1), 25) // 4 files
	dirs := []string{
		filepath.Join(t.TempDir(), "a"),
		filepath.Join(t.TempDir(), "b"),
		filepath.Join(t.TempDir(), "c"),
	}
	if err := Split(src, dirs); err != nil {
		t.Fatal(err)
	}
	local, err := rdr.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	want, _, err := local.ReadAll(rdr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	union := particle.NewBuffer(local.Meta().Schema, 0)
	for _, dir := range dirs {
		ds, err := rdr.Open(dir)
		if err != nil {
			t.Fatalf("shard %s is not a valid dataset: %v", dir, err)
		}
		buf, _, err := ds.ReadAll(rdr.Options{})
		if err != nil {
			t.Fatal(err)
		}
		total += ds.Meta().Total
		union.AppendBuffer(buf)
		ds.Close()
	}
	if total != local.Meta().Total {
		t.Fatalf("shard totals sum to %d, want %d", total, local.Meta().Total)
	}
	sameRecords(t, "split union", union, want)

	// More shards than files must refuse rather than write empty shards.
	many := make([]string, len(local.Meta().Files)+1)
	for i := range many {
		many[i] = filepath.Join(t.TempDir(), "x")
	}
	if err := Split(src, many); err == nil {
		t.Fatal("Split with more shards than files succeeded, want error")
	}
}
