// Package gateway implements spiogate, the scatter-gather front tier
// for sharded spiod serving. A gateway mounts one logical dataset as a
// set of shards — disjoint file subsets served by spiod backends — and
// speaks the unmodified spiod wire protocol on its front, so spio.Dial
// works against a gateway exactly as against a single daemon. For each
// query it computes the minimal shard set whose aggregation partitions
// intersect the request, fans out over bounded per-backend connection
// pools, and merges the shard answers so the result is byte-identical
// (up to particle order) to a single node serving the whole dataset:
// the paper's metadata-driven file pruning, lifted one tier up from
// files to servers.
//
// Failure containment is first-class: per-backend circuit breakers,
// per-call timeouts, retry across replicas when a shard is served by
// more than one backend, and graceful-drain routing. A dead backend
// degrades the answer to a flagged partial result instead of failing
// the query.
package gateway

import (
	"bytes"
	"fmt"
	"time"

	"spio/internal/format"
	"spio/internal/geom"
	"spio/internal/server"
)

// Config tunes a Gateway. The zero value serves with sane defaults.
type Config struct {
	// PoolSize bounds live connections per backend (default 4): the
	// gateway's per-backend fan-out cap.
	PoolSize int
	// CallTimeout bounds each backend exchange; an expired call counts
	// as a backend failure (default 30s; < 0 disables).
	CallTimeout time.Duration
	// FailThreshold is the consecutive-failure count that opens a
	// backend's circuit breaker (default 3).
	FailThreshold int
	// Cooldown is how long an open breaker rejects a backend before
	// letting one probe through (default 5s).
	Cooldown time.Duration
	// MaxFrame bounds response frames accepted from backends and
	// requests accepted on the front (default server.DefaultMaxFrame).
	MaxFrame int64
	// MaxReqBytes bounds one front request frame (default 1 MiB).
	MaxReqBytes int64
	// WireCodec is the front response-compression policy: "" or "any"
	// honors what each client requested; "none" forces raw.
	WireCodec string
	// Logf, when non-nil, receives gateway log lines.
	Logf func(format string, args ...any)
}

func (c *Config) poolSize() int {
	if c.PoolSize > 0 {
		return c.PoolSize
	}
	return 4
}

func (c *Config) callTimeout() time.Duration {
	if c.CallTimeout < 0 {
		return 0
	}
	if c.CallTimeout == 0 {
		return 30 * time.Second
	}
	return c.CallTimeout
}

func (c *Config) failThreshold() int {
	if c.FailThreshold > 0 {
		return c.FailThreshold
	}
	return 3
}

func (c *Config) cooldown() time.Duration {
	if c.Cooldown > 0 {
		return c.Cooldown
	}
	return 5 * time.Second
}

func (c *Config) maxFrame() int64 {
	if c.MaxFrame > 0 {
		return c.MaxFrame
	}
	return server.DefaultMaxFrame
}

func (c *Config) maxReqBytes() uint32 {
	if c.MaxReqBytes > 0 {
		return uint32(c.MaxReqBytes)
	}
	return 1 << 20
}

// ShardSpec names one shard of a mounted dataset: the dataset reference
// the shard's files are served under, and the backends holding it. The
// first address is the primary; any further addresses are replicas the
// gateway retries when the primary fails — listing a shard on two
// backends is what buys a query availability under single-backend loss.
type ShardSpec struct {
	Ref   string
	Addrs []string
}

// Gateway is the resident front-tier state: mounted shard maps over
// pooled backend connections.
type Gateway struct {
	cfg Config

	backends map[string]*backend // keyed by address; shared across mounts
	mounts   map[string]*gwMount

	front   frontState
	metrics gwMetrics
}

// gwMount is one logical dataset assembled from shards.
type gwMount struct {
	name     string
	shards   []*gwShard
	merged   *format.Meta // concatenated shard metadata; the front's opMeta answer
	metaBlob []byte       // EncodeMeta image of merged
}

// gwShard is one shard: a disjoint file subset with its spatial
// geometry and the backends serving it.
type gwShard struct {
	idx      int
	ref      string
	replicas []*backend
	meta     *format.Meta
	bounds   geom.Box // union of the shard's file partitions
}

// backend is one spiod address: its connection pool and health state.
type backend struct {
	addr string
	pool *server.ClientPool
	brk  breaker
}

// New builds a Gateway; Mount shard maps, then Serve listeners.
func New(cfg Config) *Gateway {
	g := &Gateway{
		cfg:      cfg,
		backends: map[string]*backend{},
		mounts:   map[string]*gwMount{},
	}
	g.front.init()
	g.metrics.startNano = time.Now().UnixNano()
	return g
}

func (g *Gateway) logf(format string, args ...any) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
	}
}

// backendFor returns (creating if needed) the shared backend state for
// one address. Mount-time only; not locked.
func (g *Gateway) backendFor(addr string) *backend {
	if be, ok := g.backends[addr]; ok {
		return be
	}
	opts := []server.DialOption{server.WithMaxFrame(g.cfg.maxFrame())}
	if d := g.cfg.callTimeout(); d > 0 {
		opts = append(opts, server.WithCallTimeout(d))
	}
	be := &backend{
		addr: addr,
		pool: server.NewClientPool(addr, g.cfg.poolSize(), opts...),
	}
	be.brk.threshold = g.cfg.failThreshold()
	be.brk.cooldown = g.cfg.cooldown()
	g.backends[addr] = be
	return be
}

// Mount assembles the shards into one logical dataset served under
// name. It contacts one live replica per shard to fetch the shard's
// metadata, verifies the shards agree on schema/domain/LOD and that
// their partitions are disjoint, and precomputes the merged metadata
// image the front serves for opMeta. Mount everything before Serve.
func (g *Gateway) Mount(name string, specs []ShardSpec) error {
	if name == "" {
		return fmt.Errorf("spiogate: empty mount name")
	}
	if _, dup := g.mounts[name]; dup {
		return fmt.Errorf("spiogate: mount %s: name already in use", name)
	}
	if len(specs) == 0 {
		return fmt.Errorf("spiogate: mount %s: no shards", name)
	}
	m := &gwMount{name: name}
	for i, spec := range specs {
		if len(spec.Addrs) == 0 {
			return fmt.Errorf("spiogate: mount %s: shard %d has no backends", name, i)
		}
		sh := &gwShard{idx: i, ref: spec.Ref}
		for _, addr := range spec.Addrs {
			sh.replicas = append(sh.replicas, g.backendFor(addr))
		}
		meta, err := g.fetchShardMeta(sh)
		if err != nil {
			return fmt.Errorf("spiogate: mount %s: shard %d (%s): %w", name, i, spec.Ref, err)
		}
		sh.meta = meta
		sh.bounds = geom.EmptyBox()
		for j := range meta.Files {
			sh.bounds = sh.bounds.Union(meta.Files[j].Partition)
		}
		m.shards = append(m.shards, sh)
	}
	merged, err := mergeMetas(m.shards)
	if err != nil {
		return fmt.Errorf("spiogate: mount %s: %w", name, err)
	}
	var mb bytes.Buffer
	if err := format.EncodeMeta(&mb, merged); err != nil {
		// EncodeMeta validates: overlapping shard partitions or count
		// mismatches are caught here, before the mount is served.
		return fmt.Errorf("spiogate: mount %s: merged metadata invalid: %w", name, err)
	}
	m.merged = merged
	m.metaBlob = mb.Bytes()
	g.mounts[name] = m
	g.logf("spiogate: mounted %s: %d shards, %d files, %d particles",
		name, len(m.shards), len(merged.Files), merged.Total)
	return nil
}

// fetchShardMeta retrieves a shard's metadata from the first replica
// that answers, and checks the backend implements the scatter-gather
// wire extensions the merge semantics depend on.
func (g *Gateway) fetchShardMeta(sh *gwShard) (*format.Meta, error) {
	const need = server.FeatureBaseOverride | server.FeatureRawDensity | server.FeaturePartialResults
	var lastErr error
	for _, be := range sh.replicas {
		c, err := be.pool.Get()
		if err != nil {
			lastErr = err
			continue
		}
		if c.ServerFeatures()&need != need {
			be.pool.Put(c)
			return nil, fmt.Errorf("backend %s lacks gateway wire extensions (features %#x)",
				be.addr, c.ServerFeatures())
		}
		ds, err := c.Open(sh.ref)
		be.pool.Put(c)
		if err != nil {
			lastErr = err
			continue
		}
		return ds.Meta(), nil
	}
	return nil, fmt.Errorf("no replica reachable: %w", lastErr)
}

// mergeMetas concatenates the shard metadata (in mount order) into the
// logical dataset's metadata, verifying the shards agree on everything
// a reader derives semantics from.
func mergeMetas(shards []*gwShard) (*format.Meta, error) {
	first := shards[0].meta
	merged := &format.Meta{
		Domain:          first.Domain,
		SimDims:         first.SimDims,
		PartitionFactor: first.PartitionFactor,
		AggDims:         first.AggDims,
		Schema:          first.Schema,
		LOD:             first.LOD,
		Heuristic:       first.Heuristic,
	}
	for i, sh := range shards {
		m := sh.meta
		if i > 0 {
			if m.Domain != first.Domain {
				return nil, fmt.Errorf("shard %d domain %v disagrees with shard 0 %v", i, m.Domain, first.Domain)
			}
			if m.LOD != first.LOD || m.Heuristic != first.Heuristic {
				return nil, fmt.Errorf("shard %d LOD parameters disagree with shard 0", i)
			}
			if !m.Schema.Equal(first.Schema) {
				return nil, fmt.Errorf("shard %d schema disagrees with shard 0", i)
			}
		}
		merged.Total += m.Total
		merged.Files = append(merged.Files, m.Files...)
	}
	return merged, nil
}

// mount resolves a front dataset reference. Gateways serve plain names
// only — step selection happens at the shard layer, where the series
// lives.
func (g *Gateway) mount(ref string) (*gwMount, error) {
	m, ok := g.mounts[ref]
	if !ok {
		return nil, fmt.Errorf("spiogate: no dataset mounted as %q", ref)
	}
	return m, nil
}

// list returns the mounted dataset names.
func (g *Gateway) list() []string {
	names := make([]string, 0, len(g.mounts))
	for name := range g.mounts {
		names = append(names, name)
	}
	return names
}

// withShard runs fn against the first available replica of sh,
// advancing past open breakers, dead backends, and draining servers. A
// clean request-level failure (budget, bad query) is definitive and
// returned immediately; transport-level failures mark the replica and
// move on.
func (g *Gateway) withShard(sh *gwShard, fn func(ds *server.RemoteDataset) error) error {
	var lastErr error = errShardDown
	for _, be := range sh.replicas {
		if !be.brk.allow(time.Now()) {
			g.metrics.breakerSkips.Add(1)
			continue
		}
		c, err := be.pool.Get()
		if err != nil {
			be.brk.failure(time.Now())
			lastErr = err
			continue
		}
		err = fn(c.Attach(sh.ref, sh.meta))
		broken := c.Broken()
		be.pool.Put(c)
		if err == nil {
			be.brk.success()
			return nil
		}
		lastErr = err
		if broken {
			// Transport failure or drain: this replica is out; hedge to
			// the next one.
			be.brk.failure(time.Now())
			continue
		}
		// The exchange completed: the backend is healthy, the request
		// itself failed. No other replica would answer differently.
		be.brk.success()
		return err
	}
	return lastErr
}

var errShardDown = fmt.Errorf("spiogate: shard unavailable: all replicas down or circuit-broken")
