package gateway

import (
	"time"

	"spio/internal/geom"
	"spio/internal/particle"
	rdr "spio/internal/reader"
	"spio/internal/server"
)

// shardStream is one backend's half of a fanned-out progressive
// stream: the pooled client it holds for the stream's duration, and
// where it is in its level sequence.
type shardStream struct {
	sh     *gwShard
	be     *backend
	c      *server.Client
	stream *server.RemoteStream
	buf    *particle.Buffer // this level's increment
	failed bool
}

// put returns the stream's connection to its pool (broken connections
// are closed there).
func (ss *shardStream) put() {
	if ss.c != nil {
		ss.be.pool.Put(ss.c)
		ss.c = nil
	}
}

// openShardStream starts one shard's progressive stream on its first
// available replica, keeping the pooled connection checked out until
// the stream ends.
func (g *Gateway) openShardStream(sh *gwShard, box geom.Box, levels, readers int, base int64, noFilter bool) (*shardStream, error) {
	var lastErr error = errShardDown
	for _, be := range sh.replicas {
		if !be.brk.allow(time.Now()) {
			g.metrics.breakerSkips.Add(1)
			continue
		}
		c, err := be.pool.Get()
		if err != nil {
			be.brk.failure(time.Now())
			lastErr = err
			continue
		}
		ds := c.Attach(sh.ref, sh.meta)
		q := box
		if noFilter {
			q = sh.meta.Domain
		}
		st, err := ds.ProgressiveBoxBase(q, levels, readers, base)
		if err != nil {
			broken := c.Broken()
			be.pool.Put(c)
			lastErr = err
			if broken {
				be.brk.failure(time.Now())
				continue
			}
			be.brk.success()
			return nil, err // request-level refusal: definitive
		}
		be.brk.success()
		return &shardStream{sh: sh, be: be, c: c, stream: st}, nil
	}
	return nil, lastErr
}

// executeStream serves a progressive LOD stream assembled from shard
// streams with a per-level barrier: level L goes to the client only
// after every contributing shard has delivered its level-L increment,
// so the merged stream is exactly as strictly coarse-first as a
// single node's. Client acks propagate as acks to every shard stream —
// the end consumer's rate is the backends' read rate. A shard failing
// mid-stream drops out (its remaining levels are lost) and flags the
// stream partial; the survivors keep refining.
func (g *Gateway) executeStream(conn *frontConn, m *gwMount, req *server.Request, codec uint8, start time.Time) error {
	targets := m.shardsFor(req.Box, req.NoFilter)
	if len(targets) == 0 {
		g.metrics.errors.Add(1)
		return g.sendStatus(conn, server.StatusError, "spiod: no files intersect the requested box")
	}
	base := m.mergedBase(req.Readers)
	streams := make([]*shardStream, 0, len(targets))
	partial := false
	var openErr error
	for _, sh := range targets {
		ss, err := g.openShardStream(sh, req.Box, req.Levels, req.Readers, base, req.NoFilter)
		if err != nil {
			g.metrics.shardErrors.Add(1)
			partial = true
			openErr = err
			continue
		}
		streams = append(streams, ss)
	}
	if len(streams) == 0 {
		return g.sendErr(conn, openErr)
	}
	defer func() {
		for _, ss := range streams {
			if ss.c != nil && !ss.stream.Done() {
				_ = ss.stream.Cancel() // abandoned stream; conn state handled by put
			}
			ss.put()
		}
	}()
	if err := g.sendStatus(conn, server.StatusOK, ""); err != nil {
		return err
	}
	g.metrics.streams.Add(1)

	level := 0
	sendFinal := func(done bool) error {
		st := g.cumStats(streams, partial, start)
		f := &server.StreamFrame{Level: level, Done: done, Stats: st,
			Buf: particle.NewBuffer(m.merged.Schema, 0)}
		body, err := server.MarshalStreamFrame(f, codec)
		if err != nil {
			return err
		}
		return conn.writeLockedFrame(body)
	}
	for {
		ab, err := server.FrameRead(conn, server.AckFrameMax)
		if err != nil {
			return err
		}
		ack, err := server.UnmarshalAck(ab)
		if err != nil {
			return g.sendStatus(conn, server.StatusError, err.Error())
		}
		if ack == server.AckCancel {
			for _, ss := range streams {
				if !ss.failed {
					_ = ss.stream.Cancel() // client cancelled; best effort
				}
			}
			return sendFinal(true)
		}

		// Per-level barrier: every live shard advances one level before
		// anything is emitted. The fetches run concurrently; each
		// goroutine writes only its own stream's fields and signals done
		// exactly once, so the collector's full drain bounds them all.
		live := 0
		done := make(chan struct{})
		for _, ss := range streams {
			if ss.failed || ss.stream.Done() {
				ss.buf = nil
				continue
			}
			live++
			go func(ss *shardStream) {
				buf, ok, err := ss.stream.NextLevel()
				switch {
				case err != nil:
					ss.failed = true
					ss.buf = nil
					g.metrics.shardErrors.Add(1)
				case !ok:
					ss.buf = nil
				default:
					ss.buf = buf
				}
				done <- struct{}{}
			}(ss)
		}
		for i := 0; i < live; i++ {
			<-done
		}
		if live == 0 {
			// Acked past the end; close out cleanly like the daemon does.
			return sendFinal(true)
		}

		out := particle.NewBuffer(m.merged.Schema, 0)
		allDone := true
		for _, ss := range streams {
			if ss.failed {
				partial = true
				ss.put() // broken conn goes back (and is closed) promptly
				continue
			}
			if ss.buf != nil {
				out.AppendBuffer(ss.buf)
				ss.buf = nil
			}
			if !ss.stream.Done() {
				allDone = false
			} else {
				ss.put() // finished cleanly; the conn is reusable now
			}
		}
		anyLive := false
		for _, ss := range streams {
			if !ss.failed {
				anyLive = true
			}
		}
		if !anyLive {
			// Every shard died mid-stream: nothing left to refine.
			return sendFinal(true)
		}
		st := g.cumStats(streams, partial, start)
		f := &server.StreamFrame{Level: level, Done: allDone, Stats: st, Buf: out}
		body, err := server.MarshalStreamFrame(f, codec)
		if err != nil {
			return err
		}
		if err := conn.writeLockedFrame(body); err != nil {
			return err
		}
		g.metrics.streamLevels.Add(1)
		level++
		if allDone {
			return nil
		}
	}
}

// cumStats sums the shard streams' cumulative read telemetry.
func (g *Gateway) cumStats(streams []*shardStream, partial bool, start time.Time) server.WireStats {
	var read rdr.Stats
	for _, ss := range streams {
		read.Add(ss.stream.Stats())
	}
	read.Partial = read.Partial || partial
	return server.WireStats{Read: read, Service: int64(time.Since(start))}
}
